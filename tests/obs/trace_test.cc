/**
 * @file
 * Unit tests for the Chrome-trace recorder: disabled-mode cost
 * surface (no events), span/instant recording across threads, and the
 * serialized JSON's structural properties (every span an "X" complete
 * event -- balanced by construction, no stray "B"/"E").
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace lazydp {
namespace {

std::string
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::size_t
countOccurrences(const std::string &hay, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t pos = hay.find(needle);
         pos != std::string::npos;
         pos = hay.find(needle, pos + needle.size()))
        ++n;
    return n;
}

class TraceTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        obs::traceStop();
        obs::traceResetForTest();
    }
    void TearDown() override
    {
        obs::traceStop();
        obs::traceResetForTest();
    }
};

TEST_F(TraceTest, DisabledRecordsNothing)
{
    ASSERT_FALSE(obs::traceEnabled());
    {
        LAZYDP_TRACE_SPAN(obs::TraceCat::Trainer, "off_span");
        obs::traceInstant(obs::TraceCat::Serve, "off_instant");
    }
    EXPECT_EQ(obs::traceEventCount(), 0u);
}

TEST_F(TraceTest, SpansAndInstantsAreCounted)
{
    obs::traceStart();
    {
        LAZYDP_TRACE_SPAN1(obs::TraceCat::Trainer, "step", "iter", 3);
        LAZYDP_TRACE_SPAN2(obs::TraceCat::Serve, "batch", "batch", 8,
                           "version", 2);
    }
    obs::traceInstant(obs::TraceCat::Governor, "engage",
                      {"attainment_pm", 512});
    obs::traceStop();
    EXPECT_EQ(obs::traceEventCount(), 3u);
    // A span constructed after stop is disarmed: no event.
    {
        LAZYDP_TRACE_SPAN(obs::TraceCat::Trainer, "late");
    }
    EXPECT_EQ(obs::traceEventCount(), 3u);
}

TEST_F(TraceTest, MultiThreadJsonIsStructurallySound)
{
    obs::traceStart();
    obs::traceSetThreadName("main");
    constexpr std::size_t kThreads = 4;
    constexpr std::size_t kSpansPerThread = 16;
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t)
        threads.emplace_back([] {
            obs::traceSetThreadName("worker");
            for (std::size_t i = 0; i < kSpansPerThread; ++i) {
                LAZYDP_TRACE_SPAN1(obs::TraceCat::Tier, "warm", "rows",
                                   i);
            }
            obs::traceInstant(obs::TraceCat::Serve, "enqueue",
                              {"prio", 1});
        });
    for (auto &th : threads)
        th.join();
    {
        LAZYDP_TRACE_SPAN(obs::TraceCat::Trainer, "apply");
    }
    obs::traceStop();

    const std::string path =
        ::testing::TempDir() + "lazydp_trace_test.json";
    ASSERT_TRUE(obs::traceWriteJson(path));
    const std::string json = readAll(path);

    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    // Spans are complete events only: balanced by construction.
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"X\""),
              kThreads * kSpansPerThread + 1);
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"B\""), 0u);
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"E\""), 0u);
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"i\""), kThreads);
    // Categories + thread-name metadata made it through.
    EXPECT_NE(json.find("\"cat\":\"tier\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"trainer\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"serve\""), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    EXPECT_NE(json.find("\"main\""), std::string::npos);
    // Args serialize under their literal keys.
    EXPECT_NE(json.find("\"rows\""), std::string::npos);
    std::remove(path.c_str());
}

TEST_F(TraceTest, ResetDropsBufferedEvents)
{
    obs::traceStart();
    obs::traceInstant(obs::TraceCat::Sampler, "scrape");
    EXPECT_EQ(obs::traceEventCount(), 1u);
    obs::traceResetForTest();
    EXPECT_EQ(obs::traceEventCount(), 0u);
}

TEST_F(TraceTest, SetArgFillsBothSlots)
{
    obs::traceStart();
    {
        obs::TraceSpan span(obs::TraceCat::Trainer, "publish");
        span.setArg("iter", 9);
        span.setArg("rows_copied", 123);
    }
    obs::traceStop();
    const std::string path =
        ::testing::TempDir() + "lazydp_trace_args.json";
    ASSERT_TRUE(obs::traceWriteJson(path));
    const std::string json = readAll(path);
    EXPECT_NE(json.find("\"iter\""), std::string::npos);
    EXPECT_NE(json.find("\"rows_copied\""), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace lazydp
