/**
 * @file
 * Unit tests for the lock-free metrics registry: intern identity and
 * kind checking, exact counter totals under thread contention (the
 * TSan CI job runs this suite), histogram bucket geometry, and the
 * quantile-vs-exact-percentile error bound.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/stats.h"
#include "obs/metrics.h"

namespace lazydp {
namespace {

/** Registry state is process-global: every test enables metrics for
 *  its own uniquely-named ids and restores the disabled default. */
class MetricsTest : public ::testing::Test
{
  protected:
    void SetUp() override { obs::setMetricsEnabled(true); }
    void TearDown() override { obs::setMetricsEnabled(false); }
};

TEST_F(MetricsTest, InternSameNameReturnsSameId)
{
    const obs::MetricId a =
        obs::internMetric("test.intern.same", obs::MetricKind::Counter);
    const obs::MetricId b =
        obs::internMetric("test.intern.same", obs::MetricKind::Counter);
    EXPECT_EQ(a, b);
    const obs::MetricId c =
        obs::internMetric("test.intern.other", obs::MetricKind::Counter);
    EXPECT_NE(a, c);
}

TEST_F(MetricsTest, KindMismatchPanics)
{
    obs::internMetric("test.intern.kind", obs::MetricKind::Counter);
    setLogThrowMode(true);
    EXPECT_THROW(
        obs::internMetric("test.intern.kind", obs::MetricKind::Gauge),
        std::runtime_error);
    setLogThrowMode(false);
}

TEST_F(MetricsTest, DisabledRecordsNothing)
{
    const obs::MetricId id =
        obs::internMetric("test.disabled.ctr", obs::MetricKind::Counter);
    obs::setMetricsEnabled(false);
    obs::counterAdd(id, 17);
    obs::setMetricsEnabled(true);
    EXPECT_EQ(obs::scrapeMetrics().counter("test.disabled.ctr"), 0u);
    obs::counterAdd(id, 3);
    EXPECT_EQ(obs::scrapeMetrics().counter("test.disabled.ctr"), 3u);
}

TEST_F(MetricsTest, GaugeLastSetWins)
{
    const obs::MetricId id =
        obs::internMetric("test.gauge.g", obs::MetricKind::Gauge);
    obs::gaugeSet(id, 41);
    obs::gaugeSet(id, -7);
    const obs::MetricsSnapshot snap = obs::scrapeMetrics();
    const obs::MetricValue *v = snap.find("test.gauge.g");
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->kind, obs::MetricKind::Gauge);
    EXPECT_EQ(v->gauge, -7);
}

/**
 * The headline concurrency contract: N writer threads hammer one
 * counter while a scraper reads mid-flight (torn-free, possibly
 * partial), and after every writer has JOINED (shards retired into
 * the registry's accumulator) the total is EXACT. TSan runs this.
 */
TEST_F(MetricsTest, ContendedCounterTotalsAreExactAfterJoin)
{
    const obs::MetricId id = obs::internMetric(
        "test.contended.ctr", obs::MetricKind::Counter);
    const obs::MetricId hist = obs::internMetric(
        "test.contended.hist", obs::MetricKind::Histogram);
    constexpr std::size_t kThreads = 8;
    constexpr std::uint64_t kPerThread = 20000;

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> scrapesSeen{0};
    std::thread scraper([&] {
        std::uint64_t last = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            const std::uint64_t now =
                obs::scrapeMetrics().counter("test.contended.ctr");
            // Cumulative counters observed by one scraper are monotone.
            EXPECT_GE(now, last);
            last = now;
            scrapesSeen.fetch_add(1, std::memory_order_relaxed);
        }
    });

    std::vector<std::thread> writers;
    for (std::size_t t = 0; t < kThreads; ++t)
        writers.emplace_back([&, t] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                obs::counterAdd(id);
                obs::histogramRecord(hist, t * kPerThread + i);
            }
        });
    for (auto &w : writers)
        w.join(); // exiting threads retire their shards
    stop.store(true, std::memory_order_relaxed);
    scraper.join();

    const obs::MetricsSnapshot snap = obs::scrapeMetrics();
    EXPECT_EQ(snap.counter("test.contended.ctr"),
              kThreads * kPerThread);
    const obs::MetricValue *h = snap.find("test.contended.hist");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, kThreads * kPerThread);
    EXPECT_GE(scrapesSeen.load(), 1u);
}

TEST_F(MetricsTest, BucketBoundsTileTheDomain)
{
    EXPECT_EQ(obs::histogramBucketLowerBound(0), 0u);
    for (std::size_t b = 0; b + 1 < obs::kHistogramBuckets; ++b) {
        const std::uint64_t hi = obs::histogramBucketUpperBound(b);
        EXPECT_EQ(hi + 1, obs::histogramBucketLowerBound(b + 1))
            << "gap/overlap after bucket " << b;
        EXPECT_EQ(obs::histogramBucketIndex(
                      obs::histogramBucketLowerBound(b)),
                  b);
        EXPECT_EQ(obs::histogramBucketIndex(hi), b);
    }
    EXPECT_EQ(obs::histogramBucketIndex(~0ull),
              obs::kHistogramBuckets - 1);
}

/**
 * quantile() must land in the same log-linear bucket as the exact
 * nearest-rank sample -- i.e. within one bucket width (<= 25%
 * relative error) of what stats::computePercentiles reports.
 */
TEST_F(MetricsTest, QuantilesMatchExactPercentilesWithinOneBucket)
{
    const obs::MetricId id = obs::internMetric(
        "test.quantile.hist", obs::MetricKind::Histogram);
    // Deterministic skewed samples spanning several powers of two.
    std::uint64_t state = 0x9E3779B97F4A7C15ull;
    std::vector<double> exactSamples;
    for (int i = 0; i < 5000; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const std::uint64_t v = 100 + (state >> 40) % 1000000;
        obs::histogramRecord(id, v);
        exactSamples.push_back(static_cast<double>(v));
    }
    const stats::Percentiles exact =
        stats::computePercentiles(exactSamples);
    const obs::MetricsSnapshot snap = obs::scrapeMetrics();
    const obs::MetricValue *h = snap.find("test.quantile.hist");
    ASSERT_NE(h, nullptr);
    ASSERT_EQ(h->count, 5000u);

    const std::pair<double, double> checks[] = {
        {0.50, exact.p50}, {0.95, exact.p95}, {0.99, exact.p99}};
    for (const auto &[q, want] : checks) {
        const std::uint64_t est = h->quantile(q);
        const std::size_t bucket = obs::histogramBucketIndex(
            static_cast<std::uint64_t>(want));
        EXPECT_EQ(obs::histogramBucketIndex(est), bucket)
            << "q=" << q << " est=" << est << " exact=" << want;
        EXPECT_EQ(est, obs::histogramBucketUpperBound(bucket));
    }
}

TEST_F(MetricsTest, HistogramSumAndEmptyQuantile)
{
    const obs::MetricId id =
        obs::internMetric("test.sum.hist", obs::MetricKind::Histogram);
    const obs::MetricsSnapshot before = obs::scrapeMetrics();
    const obs::MetricValue *empty = before.find("test.sum.hist");
    ASSERT_NE(empty, nullptr);
    EXPECT_EQ(empty->quantile(0.99), 0u);

    obs::histogramRecord(id, 10);
    obs::histogramRecord(id, 30);
    const obs::MetricsSnapshot after = obs::scrapeMetrics();
    const obs::MetricValue *h = after.find("test.sum.hist");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 2u);
    EXPECT_EQ(h->sum, 40u);
}

} // namespace
} // namespace lazydp
