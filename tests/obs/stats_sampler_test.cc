/**
 * @file
 * Unit tests for the StatsSampler: hand-driven scrapes (the pattern
 * controllers' unit tests use), JSONL line accounting, observer
 * fan-out, the threaded cadence, and the stop()-always-scrapes
 * guarantee the CI stats smoke gates on.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/stats_sampler.h"

namespace lazydp {
namespace {

std::size_t
countLines(const std::string &path)
{
    std::ifstream in(path);
    std::size_t n = 0;
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            ++n;
    return n;
}

class StatsSamplerTest : public ::testing::Test
{
  protected:
    void SetUp() override { obs::setMetricsEnabled(true); }
    void TearDown() override { obs::setMetricsEnabled(false); }
};

TEST_F(StatsSamplerTest, ManualScrapesAppendOneLineEach)
{
    const std::string path =
        ::testing::TempDir() + "lazydp_sampler_manual.jsonl";
    std::remove(path.c_str());
    const obs::MetricId id = obs::internMetric(
        "test.sampler.manual", obs::MetricKind::Counter);
    {
        obs::SamplerOptions opts;
        opts.outPath = path;
        opts.startThread = false;
        obs::StatsSampler sampler(opts);
        obs::counterAdd(id, 5);
        sampler.sampleOnce();
        sampler.sampleOnce();
        EXPECT_EQ(sampler.scrapes(), 2u);
        sampler.stop(); // final scrape + flush
        EXPECT_EQ(sampler.scrapes(), 3u);
    }
    EXPECT_EQ(countLines(path), 3u);

    // Every line is one object carrying the scrape index and the
    // counter map (the validator tool parses it fully; here we check
    // the shape the schema promises).
    std::ifstream in(path);
    std::string line;
    std::size_t scrape = 0;
    while (std::getline(in, line)) {
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"scrape\":"), std::string::npos);
        EXPECT_NE(line.find("\"counters\":"), std::string::npos);
        EXPECT_NE(line.find("test.sampler.manual"), std::string::npos);
        ++scrape;
    }
    EXPECT_EQ(scrape, 3u);
    std::remove(path.c_str());
}

TEST_F(StatsSamplerTest, ObserversSeeEveryScrape)
{
    const obs::MetricId id = obs::internMetric(
        "test.sampler.observed", obs::MetricKind::Counter);
    obs::counterAdd(id, 7);

    obs::SamplerOptions opts; // no file: observer-only mode
    opts.startThread = false;
    obs::StatsSampler sampler(opts);
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> seen{0};
    sampler.addObserver([&](const obs::MetricsSnapshot &snap) {
        calls.fetch_add(1);
        seen.store(snap.counter("test.sampler.observed"));
    });
    sampler.sampleOnce();
    EXPECT_EQ(calls.load(), 1u);
    EXPECT_EQ(seen.load(), 7u);
    obs::counterAdd(id, 3);
    sampler.sampleOnce();
    EXPECT_EQ(calls.load(), 2u);
    EXPECT_EQ(seen.load(), 10u);
}

TEST_F(StatsSamplerTest, ThreadedCadenceScrapesRepeatedly)
{
    obs::SamplerOptions opts;
    opts.intervalUs = 1000;
    obs::StatsSampler sampler(opts);
    // Generous deadline (CI hosts stall): poll until >= 3 scrapes.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    while (sampler.scrapes() < 3 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    sampler.stop();
    EXPECT_GE(sampler.scrapes(), 3u);
}

TEST_F(StatsSamplerTest, StopAlwaysTakesAFinalScrape)
{
    const std::string path =
        ::testing::TempDir() + "lazydp_sampler_final.jsonl";
    std::remove(path.c_str());
    {
        obs::SamplerOptions opts;
        // One-hour interval: the thread never fires on its own; the
        // line in the file can only come from stop()'s final scrape.
        opts.intervalUs = 3600ull * 1000 * 1000;
        opts.outPath = path;
        obs::StatsSampler sampler(opts);
        sampler.stop();
        EXPECT_GE(sampler.scrapes(), 1u);
    }
    EXPECT_GE(countLines(path), 1u);
    std::remove(path.c_str());
}

TEST_F(StatsSamplerTest, StopIsIdempotent)
{
    obs::SamplerOptions opts;
    opts.startThread = false;
    obs::StatsSampler sampler(opts);
    sampler.stop();
    const std::uint64_t after = sampler.scrapes();
    sampler.stop();
    EXPECT_EQ(sampler.scrapes(), after);
}

} // namespace
} // namespace lazydp
