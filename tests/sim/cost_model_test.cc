/** @file Tests for the roofline cost model. */

#include <gtest/gtest.h>

#include "sim/cost_model.h"

namespace lazydp {
namespace {

MachineSpec
fixedSpec()
{
    MachineSpec s;
    s.memBandwidth = 100e9;  // 100 GB/s
    s.gaussianRate = 1e9;    // 1 Gsamples/s
    return s;
}

TEST(CostModelTest, EagerCostIsLinearInTableSize)
{
    CostModel cm(fixedSpec());
    const auto small = cm.eagerUpdate(1ull << 30, 1000, 128);
    const auto large = cm.eagerUpdate(1ull << 33, 1000, 128);
    EXPECT_NEAR(large.noiseSampling / small.noiseSampling, 8.0, 1e-9);
    EXPECT_NEAR(large.noisyGradUpdate / small.noisyGradUpdate, 8.0,
                1e-9);
    // sparse scatter does not grow with the table
    EXPECT_DOUBLE_EQ(large.noisyGradGen, small.noisyGradGen);
}

TEST(CostModelTest, EagerNumbersMatchHandComputation)
{
    CostModel cm(fixedSpec());
    const std::uint64_t bytes = 4ull * 1000 * 128; // 1000 rows x 128
    const auto m = cm.eagerUpdate(bytes, 10, 128);
    EXPECT_NEAR(m.noiseSampling, 1000.0 * 128 / 1e9, 1e-12);
    EXPECT_NEAR(m.noisyGradUpdate, bytes * 3.0 / 100e9, 1e-12);
    EXPECT_NEAR(m.noisyGradGen, 10.0 * 128 * 4 * 2 / 100e9, 1e-12);
}

TEST(CostModelTest, LazyCostIndependentOfTableSize)
{
    CostModel cm(fixedSpec());
    const auto a = cm.lazyUpdate(1000, 128, true, 1ull << 28);
    const auto b = cm.lazyUpdate(1000, 128, true, 1ull << 34);
    EXPECT_DOUBLE_EQ(a.total(), b.total());
}

TEST(CostModelTest, LazyWithAnsBeatsWithoutAns)
{
    CostModel cm(fixedSpec());
    const std::uint64_t elems = 1ull << 30;
    const auto with = cm.lazyUpdate(1000, 128, true, elems);
    const auto without = cm.lazyUpdate(1000, 128, false, elems);
    EXPECT_LT(with.noiseSampling, without.noiseSampling / 100.0);
}

TEST(CostModelTest, LazyBeatsEagerAtScale)
{
    CostModel cm(fixedSpec());
    const std::uint64_t table_bytes = 96ull << 30;
    const auto eager = cm.eagerUpdate(table_bytes, 2048 * 26, 128);
    const auto lazy =
        cm.lazyUpdate(2048 * 26, 128, true, table_bytes / 4);
    // two orders of magnitude or more, as in the paper
    EXPECT_GT(eager.total() / lazy.total(), 100.0);
}

TEST(CostModelTest, ExtrapolationAddsFixedStages)
{
    CostModel cm(fixedSpec());
    StageTimer measured;
    measured.add(Stage::Forward, 2.0);           // 2 s over 10 iters
    measured.add(Stage::BackwardPerBatch, 3.0);
    measured.add(Stage::NoiseSampling, 100.0);   // replaced by model
    const double secs = cm.extrapolateEagerSeconds(
        measured, 10, /*target=*/1ull << 30, 1000, 128);
    const auto upd = cm.eagerUpdate(1ull << 30, 1000, 128);
    EXPECT_NEAR(secs, 0.5 + upd.total(), 1e-9);
}

TEST(MachineSpecTest, PaperXeonHasDocumentedNumbers)
{
    const auto spec = MachineSpec::paperXeon();
    EXPECT_NEAR(spec.memBandwidth, 68e9, 1e6);
    EXPECT_GT(spec.gaussianRate, 1e8);
}

/** True when the binary carries sanitizer instrumentation (ASan/TSan/
 *  MSan slow the calibration microbenchmarks by an order of magnitude,
 *  so absolute performance floors must scale down). */
constexpr bool
sanitizedBuild()
{
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
    return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) \
    || __has_feature(memory_sanitizer)
    return true;
#else
    return false;
#endif
#else
    return false;
#endif
}

TEST(MachineSpecTest, HostCalibrationProducesSaneNumbers)
{
    const auto &spec = MachineSpec::calibratedHost();
    // any machine this century: 1-2000 GB/s, 0.01-1000 Gsamples/s --
    // except under sanitizers, where the instrumented kernels run an
    // order of magnitude slower than the silicon
    const double floor_scale = sanitizedBuild() ? 0.02 : 1.0;
    EXPECT_GT(spec.memBandwidth, 1e9 * floor_scale);
    EXPECT_LT(spec.memBandwidth, 2e12);
    EXPECT_GT(spec.gaussianRate, 1e7 * floor_scale);
    EXPECT_LT(spec.gaussianRate, 1e12);
    EXPECT_GT(spec.avxPeakFlops, 1e9 * floor_scale);
}

} // namespace
} // namespace lazydp
