/** @file Tests for the energy model. */

#include <gtest/gtest.h>

#include "sim/energy_model.h"

namespace lazydp {
namespace {

MachineSpec
fixedSpec()
{
    MachineSpec s;
    s.computeWatts = 100.0;
    s.memoryWatts = 80.0;
    s.baseWatts = 50.0;
    return s;
}

TEST(EnergyModelTest, StagePowerMapping)
{
    EnergyModel em(fixedSpec());
    EXPECT_DOUBLE_EQ(em.stageWatts(Stage::NoiseSampling), 100.0);
    EXPECT_DOUBLE_EQ(em.stageWatts(Stage::NoisyGradUpdate), 80.0);
    EXPECT_DOUBLE_EQ(em.stageWatts(Stage::Else), 50.0);
    EXPECT_DOUBLE_EQ(em.stageWatts(Stage::Forward), 100.0);
}

TEST(EnergyModelTest, JoulesAreTimeWeightedPower)
{
    EnergyModel em(fixedSpec());
    StageTimer t;
    t.add(Stage::NoiseSampling, 2.0);   // 200 J
    t.add(Stage::NoisyGradUpdate, 1.0); // 80 J
    t.add(Stage::Else, 4.0);            // 200 J
    EXPECT_DOUBLE_EQ(em.joules(t), 480.0);
}

TEST(EnergyModelTest, ZeroTimeZeroEnergy)
{
    EnergyModel em(fixedSpec());
    StageTimer t;
    EXPECT_DOUBLE_EQ(em.joules(t), 0.0);
}

TEST(EnergyModelTest, FasterRunUsesLessEnergy)
{
    // the paper's core energy argument: same power class, less time
    EnergyModel em(fixedSpec());
    StageTimer slow, fast;
    slow.add(Stage::NoiseSampling, 100.0);
    fast.add(Stage::NoiseSampling, 1.0);
    EXPECT_GT(em.joules(slow), 90.0 * em.joules(fast));
}

} // namespace
} // namespace lazydp
