/** @file End-to-end DLRM model tests including a full gradient check. */

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic_dataset.h"
#include "nn/dlrm.h"
#include "nn/loss.h"
#include "tensor/simd_kernels.h"

namespace lazydp {
namespace {

DatasetConfig
datasetFor(const ModelConfig &mc, std::size_t batch)
{
    DatasetConfig dc;
    dc.numDense = mc.numDense;
    dc.numTables = mc.numTables;
    dc.rowsPerTable = mc.rowsPerTable;
    dc.pooling = mc.pooling;
    dc.batchSize = batch;
    dc.seed = 77;
    return dc;
}

TEST(DlrmTest, ForwardProducesFiniteLogits)
{
    const auto mc = ModelConfig::tiny();
    DlrmModel model(mc, 1);
    SyntheticDataset ds(datasetFor(mc, 8));
    const MiniBatch mb = ds.batch(0);
    Tensor logits;
    model.forward(mb, logits);
    EXPECT_EQ(logits.rows(), 8u);
    EXPECT_EQ(logits.cols(), 1u);
    for (std::size_t i = 0; i < logits.size(); ++i)
        EXPECT_TRUE(std::isfinite(logits.data()[i]));
}

TEST(DlrmTest, ForwardIsDeterministic)
{
    const auto mc = ModelConfig::tiny();
    DlrmModel a(mc, 5);
    DlrmModel b(mc, 5);
    SyntheticDataset ds(datasetFor(mc, 4));
    const MiniBatch mb = ds.batch(3);
    Tensor la, lb;
    a.forward(mb, la);
    b.forward(mb, lb);
    for (std::size_t i = 0; i < la.size(); ++i)
        EXPECT_EQ(la.data()[i], lb.data()[i]);
}

TEST(DlrmTest, EmbeddingWeightGradNumericalCheck)
{
    // full-model check: loss derivative wrt an embedding weight
    const auto mc = ModelConfig::tiny();
    DlrmModel model(mc, 9);
    SyntheticDataset ds(datasetFor(mc, 4));
    const MiniBatch mb = ds.batch(0);

    Tensor logits;
    model.forward(mb, logits);
    Tensor d_logits(4, 1);
    BceWithLogitsLoss::backwardPerExample(logits, mb.labels, d_logits);
    model.backward(d_logits);

    SparseGrad grad;
    model.embeddingBackward(mb, 0, grad);
    ASSERT_FALSE(grad.rows.empty());

    auto loss_at = [&]() {
        Tensor l;
        model.forward(mb, l);
        // sum (not mean) to match unscaled per-example grads
        return BceWithLogitsLoss::forward(l, mb.labels) * 4.0;
    };

    const float eps = 2e-3f;
    const std::uint32_t row = grad.rows[0];
    for (std::size_t d = 0; d < std::min<std::size_t>(3, mc.embedDim);
         ++d) {
        float &w = model.tables()[0].rowPtr(row)[d];
        const float orig = w;
        w = orig + eps;
        const double lp = loss_at();
        w = orig - eps;
        const double lm = loss_at();
        w = orig;
        const double num = (lp - lm) / (2.0 * eps);
        EXPECT_NEAR(grad.values.at(0, d), num, 5e-2) << "d=" << d;
    }
}

TEST(DlrmTest, MlpWeightGradNumericalCheck)
{
    const auto mc = ModelConfig::tiny();
    DlrmModel model(mc, 13);
    SyntheticDataset ds(datasetFor(mc, 3));
    const MiniBatch mb = ds.batch(1);

    Tensor logits;
    model.forward(mb, logits);
    Tensor d_logits(3, 1);
    BceWithLogitsLoss::backwardPerExample(logits, mb.labels, d_logits);
    model.backward(d_logits);

    auto loss_at = [&]() {
        Tensor l;
        model.forward(mb, l);
        return BceWithLogitsLoss::forward(l, mb.labels) * 3.0;
    };

    const float eps = 2e-3f;
    // top MLP layer 0, a few weights
    LinearLayer &layer = model.topMlp().layers()[0];
    for (std::size_t k = 0; k < 3; ++k) {
        float &w = layer.weight().data()[k * 7 + k];
        const float orig = w;
        w = orig + eps;
        const double lp = loss_at();
        w = orig - eps;
        const double lm = loss_at();
        w = orig;
        EXPECT_NEAR(layer.weightGrad().data()[k * 7 + k],
                    (lp - lm) / (2.0 * eps), 5e-2);
    }
    // bottom MLP layer 0
    Tensor l2;
    model.forward(mb, l2);
    model.backward(d_logits);
    LinearLayer &blayer = model.bottomMlp().layers()[0];
    for (std::size_t k = 0; k < 3; ++k) {
        float &w = blayer.weight().data()[k];
        const float orig = w;
        w = orig + eps;
        const double lp = loss_at();
        w = orig - eps;
        const double lm = loss_at();
        w = orig;
        EXPECT_NEAR(blayer.weightGrad().data()[k],
                    (lp - lm) / (2.0 * eps), 5e-2);
    }
}

TEST(DlrmTest, GhostNormsMatchPerExampleForFullModel)
{
    const auto mc = ModelConfig::tiny();
    DlrmModel a(mc, 17);
    DlrmModel b(mc, 17);
    SyntheticDataset ds(datasetFor(mc, 6));
    const MiniBatch mb = ds.batch(2);

    Tensor la, lb;
    a.forward(mb, la);
    b.forward(mb, lb);
    Tensor d_logits(6, 1);
    BceWithLogitsLoss::backwardPerExample(la, mb.labels, d_logits);

    std::vector<double> ghost(6, 0.0);
    a.backward(d_logits, &ghost, true);
    a.accumulateEmbeddingGhostNormSq(mb, ghost);

    PerExampleGrads top, bottom;
    b.backwardPerExample(d_logits, top, bottom);
    std::vector<double> ref(6, 0.0);
    auto add = [&](const PerExampleGrads &peg) {
        for (const auto &w : peg.w)
            for (std::size_t e = 0; e < 6; ++e)
                ref[e] += simd::squaredNorm(w.data() + e * w.cols(),
                                            w.cols());
        for (const auto &bias : peg.b)
            for (std::size_t e = 0; e < 6; ++e)
                ref[e] += simd::squaredNorm(
                    bias.data() + e * bias.cols(), bias.cols());
    };
    add(top);
    add(bottom);
    b.accumulateEmbeddingGhostNormSq(mb, ref);

    for (std::size_t e = 0; e < 6; ++e)
        EXPECT_NEAR(ghost[e], ref[e], 1e-4 * (1.0 + ref[e]));
}

TEST(DlrmTest, EmbeddingGhostNormCountsDuplicateMultiplicity)
{
    // pooling 2 with forced duplicate indices: multiplicity m
    // contributes m^2 * ||g||^2
    auto mc = ModelConfig::tiny();
    mc.numTables = 1;
    mc.pooling = 2;
    DlrmModel model(mc, 19);
    MiniBatch mb;
    mb.resize(1, 1, 2, mc.numDense);
    mb.tableIndices(0)[0] = 7;
    mb.tableIndices(0)[1] = 7; // duplicate
    mb.labels[0] = 1.0f;

    Tensor logits;
    model.forward(mb, logits);
    Tensor d_logits(1, 1);
    d_logits.at(0, 0) = 1.0f;
    model.backward(d_logits);

    std::vector<double> ghost(1, 0.0);
    model.accumulateEmbeddingGhostNormSq(mb, ghost);
    const double g2 = simd::squaredNorm(model.embOutGrad(0).data(),
                                        mc.embedDim);
    EXPECT_NEAR(ghost[0], 4.0 * g2, 1e-9); // m=2 -> m^2 = 4
}

TEST(DlrmTest, ApplyMlpsChangesWeights)
{
    const auto mc = ModelConfig::tiny();
    DlrmModel model(mc, 23);
    SyntheticDataset ds(datasetFor(mc, 4));
    const MiniBatch mb = ds.batch(0);
    Tensor logits;
    model.forward(mb, logits);
    Tensor d_logits(4, 1);
    BceWithLogitsLoss::backwardPerExample(logits, mb.labels, d_logits);
    model.backward(d_logits);

    const float before = model.topMlp().layers()[0].weight().at(0, 0);
    model.applyMlps(0.1f);
    const float after = model.topMlp().layers()[0].weight().at(0, 0);
    EXPECT_NE(before, after);
}

TEST(DlrmTest, TableBytesSumsTables)
{
    const auto mc = ModelConfig::tiny();
    DlrmModel model(mc, 29);
    EXPECT_EQ(model.tableBytes(),
              mc.numTables * mc.rowsPerTable * mc.embedDim * 4);
}

} // namespace
} // namespace lazydp
