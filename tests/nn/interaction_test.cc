/** @file Tests for the dot-product feature interaction. */

#include <gtest/gtest.h>

#include "nn/interaction.h"
#include "rng/xoshiro.h"
#include "tensor/simd_kernels.h"

namespace lazydp {
namespace {

Tensor
randomTensor(std::size_t r, std::size_t c, std::uint64_t seed)
{
    Tensor t(r, c);
    Xoshiro256 rng(seed);
    for (std::size_t i = 0; i < t.size(); ++i)
        t.data()[i] = 2.0f * rng.nextFloat() - 1.0f;
    return t;
}

TEST(InteractionTest, OutputDimFormula)
{
    DotInteraction inter(27, 128);
    EXPECT_EQ(inter.outputDim(), 128u + 27u * 26u / 2u);
}

TEST(InteractionTest, ForwardPassThroughAndPairDots)
{
    DotInteraction inter(3, 2);
    Tensor a(1, 2), b(1, 2), c(1, 2);
    a.at(0, 0) = 1.0f;
    a.at(0, 1) = 2.0f;
    b.at(0, 0) = 3.0f;
    b.at(0, 1) = 4.0f;
    c.at(0, 0) = 5.0f;
    c.at(0, 1) = 6.0f;
    Tensor out(1, inter.outputDim());
    inter.forward({&a, &b, &c}, out);
    // passthrough of a
    EXPECT_EQ(out.at(0, 0), 1.0f);
    EXPECT_EQ(out.at(0, 1), 2.0f);
    // dots: a.b = 11, a.c = 17, b.c = 39
    EXPECT_EQ(out.at(0, 2), 11.0f);
    EXPECT_EQ(out.at(0, 3), 17.0f);
    EXPECT_EQ(out.at(0, 4), 39.0f);
}

TEST(InteractionTest, BackwardNumericalCheck)
{
    const std::size_t n_in = 4;
    const std::size_t dim = 3;
    const std::size_t batch = 2;
    DotInteraction inter(n_in, dim);

    std::vector<Tensor> inputs;
    for (std::size_t i = 0; i < n_in; ++i)
        inputs.push_back(randomTensor(batch, dim, 100 + i));
    const Tensor g = randomTensor(batch, inter.outputDim(), 200);

    auto forward_loss = [&]() {
        std::vector<const Tensor *> ptrs;
        for (auto &t : inputs)
            ptrs.push_back(&t);
        Tensor out(batch, inter.outputDim());
        DotInteraction fresh(n_in, dim);
        fresh.forward(ptrs, out);
        return simd::dot(out.data(), g.data(), out.size());
    };

    // analytic grads
    std::vector<const Tensor *> ptrs;
    for (auto &t : inputs)
        ptrs.push_back(&t);
    Tensor out(batch, inter.outputDim());
    inter.forward(ptrs, out);
    std::vector<Tensor> d_inputs;
    std::vector<Tensor *> d_ptrs;
    for (std::size_t i = 0; i < n_in; ++i) {
        d_inputs.emplace_back(batch, dim);
        d_ptrs.push_back(&d_inputs[i]);
    }
    // build pointer list after vector is fully grown (reallocation!)
    d_ptrs.clear();
    for (auto &t : d_inputs)
        d_ptrs.push_back(&t);
    inter.backward(g, d_ptrs);

    const float eps = 1e-3f;
    for (std::size_t i = 0; i < n_in; ++i) {
        for (std::size_t e = 0; e < batch; ++e) {
            for (std::size_t d = 0; d < dim; ++d) {
                const float orig = inputs[i].at(e, d);
                inputs[i].at(e, d) = orig + eps;
                const double lp = forward_loss();
                inputs[i].at(e, d) = orig - eps;
                const double lm = forward_loss();
                inputs[i].at(e, d) = orig;
                const double num = (lp - lm) / (2.0 * eps);
                EXPECT_NEAR(d_inputs[i].at(e, d), num, 6e-2)
                    << "input " << i << " e " << e << " d " << d;
            }
        }
    }
}

TEST(InteractionTest, BackwardZeroGradGivesZero)
{
    DotInteraction inter(2, 2);
    Tensor a = randomTensor(3, 2, 1);
    Tensor b = randomTensor(3, 2, 2);
    Tensor out(3, inter.outputDim());
    inter.forward({&a, &b}, out);
    Tensor g(3, inter.outputDim()); // zeros
    Tensor da(3, 2), db(3, 2);
    inter.backward(g, {&da, &db});
    for (std::size_t i = 0; i < da.size(); ++i) {
        EXPECT_EQ(da.data()[i], 0.0f);
        EXPECT_EQ(db.data()[i], 0.0f);
    }
}

} // namespace
} // namespace lazydp
