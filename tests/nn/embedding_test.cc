/** @file Unit tests for the embedding-bag layer. */

#include <gtest/gtest.h>

#include "nn/embedding.h"

namespace lazydp {
namespace {

TEST(UniqueRowsTest, SortsAndDeduplicates)
{
    const std::uint32_t idx[] = {5, 1, 5, 3, 1, 1};
    std::vector<std::uint32_t> out;
    uniqueRows({idx, 6}, out);
    EXPECT_EQ(out, (std::vector<std::uint32_t>{1, 3, 5}));
}

TEST(UniqueRowsTest, EmptyInput)
{
    std::vector<std::uint32_t> out{9};
    uniqueRows({}, out);
    EXPECT_TRUE(out.empty());
}

TEST(EmbeddingTest, ForwardSumsPooledRows)
{
    EmbeddingTable tbl(4, 2);
    // row r = (r, 10r)
    for (std::uint64_t r = 0; r < 4; ++r) {
        tbl.rowPtr(r)[0] = static_cast<float>(r);
        tbl.rowPtr(r)[1] = static_cast<float>(10 * r);
    }
    const std::uint32_t idx[] = {1, 3, 2, 2}; // example0: {1,3}, ex1: {2,2}
    Tensor out(2, 2);
    tbl.forward({idx, 4}, 2, 2, out);
    EXPECT_EQ(out.at(0, 0), 4.0f);  // 1 + 3
    EXPECT_EQ(out.at(0, 1), 40.0f);
    EXPECT_EQ(out.at(1, 0), 4.0f);  // 2 + 2
    EXPECT_EQ(out.at(1, 1), 40.0f);
}

TEST(EmbeddingTest, BackwardCoalescesDuplicates)
{
    EmbeddingTable tbl(5, 2);
    const std::uint32_t idx[] = {1, 3, 2, 2};
    Tensor d_out(2, 2);
    d_out.at(0, 0) = 1.0f;
    d_out.at(0, 1) = 2.0f;
    d_out.at(1, 0) = 10.0f;
    d_out.at(1, 1) = 20.0f;
    SparseGrad grad;
    tbl.backward({idx, 4}, 2, 2, d_out, grad);

    ASSERT_EQ(grad.rows, (std::vector<std::uint32_t>{1, 2, 3}));
    // row 1: d_out ex0 once
    EXPECT_EQ(grad.values.at(0, 0), 1.0f);
    // row 2: d_out ex1 twice (duplicate within example)
    EXPECT_EQ(grad.values.at(1, 0), 20.0f);
    EXPECT_EQ(grad.values.at(1, 1), 40.0f);
    // row 3: d_out ex0 once
    EXPECT_EQ(grad.values.at(2, 1), 2.0f);
}

TEST(EmbeddingTest, BackwardAccumulatesAcrossExamples)
{
    EmbeddingTable tbl(3, 1);
    const std::uint32_t idx[] = {0, 0}; // both examples hit row 0
    Tensor d_out(2, 1);
    d_out.at(0, 0) = 1.5f;
    d_out.at(1, 0) = 2.5f;
    SparseGrad grad;
    tbl.backward({idx, 2}, 2, 1, d_out, grad);
    ASSERT_EQ(grad.rows.size(), 1u);
    EXPECT_EQ(grad.values.at(0, 0), 4.0f);
}

TEST(EmbeddingTest, ApplySparseUpdatesOnlyListedRows)
{
    EmbeddingTable tbl(4, 2);
    tbl.weights().fill(1.0f);
    SparseGrad grad;
    grad.rows = {1, 3};
    grad.values.resize(2, 2);
    grad.values.fill(2.0f);
    tbl.applySparse(grad, 0.5f);
    EXPECT_EQ(tbl.rowPtr(0)[0], 1.0f); // untouched
    EXPECT_EQ(tbl.rowPtr(1)[0], 0.0f); // 1 - 0.5*2
    EXPECT_EQ(tbl.rowPtr(2)[0], 1.0f); // untouched
    EXPECT_EQ(tbl.rowPtr(3)[1], 0.0f);
}

TEST(EmbeddingTest, InitUniformBoundedByInvSqrtDim)
{
    EmbeddingTable tbl(100, 16);
    tbl.initUniform(3);
    const float bound = 0.25f; // 1/sqrt(16)
    bool any_nonzero = false;
    for (std::uint64_t r = 0; r < 100; ++r) {
        for (std::size_t d = 0; d < 16; ++d) {
            EXPECT_LE(std::abs(tbl.rowPtr(r)[d]), bound);
            any_nonzero |= tbl.rowPtr(r)[d] != 0.0f;
        }
    }
    EXPECT_TRUE(any_nonzero);
}

TEST(EmbeddingTest, BytesReportsTableFootprint)
{
    EmbeddingTable tbl(1000, 128);
    EXPECT_EQ(tbl.bytes(), 1000u * 128u * 4u);
}

TEST(EmbeddingTest, ForwardBackwardRoundTripGradCheck)
{
    // numerical gradient check of the pooled-sum lookup
    EmbeddingTable tbl(6, 3);
    tbl.initUniform(11);
    const std::uint32_t idx[] = {2, 4, 0};
    Tensor out(1, 3);
    tbl.forward({idx, 3}, 1, 3, out);

    Tensor d_out(1, 3);
    d_out.at(0, 0) = 0.3f;
    d_out.at(0, 1) = -0.7f;
    d_out.at(0, 2) = 1.1f;
    SparseGrad grad;
    tbl.backward({idx, 3}, 1, 3, d_out, grad);

    // loss = <out, d_out>; perturb each touched weight and compare
    const float eps = 1e-3f;
    for (std::size_t gi = 0; gi < grad.rows.size(); ++gi) {
        for (std::size_t d = 0; d < 3; ++d) {
            float &w = tbl.rowPtr(grad.rows[gi])[d];
            const float orig = w;
            w = orig + eps;
            Tensor out_p(1, 3);
            tbl.forward({idx, 3}, 1, 3, out_p);
            w = orig - eps;
            Tensor out_m(1, 3);
            tbl.forward({idx, 3}, 1, 3, out_m);
            w = orig;
            double num = 0.0;
            for (std::size_t c = 0; c < 3; ++c)
                num += (out_p.at(0, c) - out_m.at(0, c)) * d_out.at(0, c);
            num /= 2.0 * eps;
            EXPECT_NEAR(grad.values.at(gi, d), num, 1e-2);
        }
    }
}

} // namespace
} // namespace lazydp
