/**
 * @file MLP tests: numerical gradient checks, ghost-norm exactness, and
 * per-example gradient consistency.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/mlp.h"
#include "rng/xoshiro.h"
#include "tensor/simd_kernels.h"

namespace lazydp {
namespace {

Tensor
randomTensor(std::size_t r, std::size_t c, std::uint64_t seed)
{
    Tensor t(r, c);
    Xoshiro256 rng(seed);
    for (std::size_t i = 0; i < t.size(); ++i)
        t.data()[i] = 2.0f * rng.nextFloat() - 1.0f;
    return t;
}

/** loss = <y, G> for fixed G; returns d_y = G. */
double
proxyLoss(const Tensor &y, const Tensor &g)
{
    return simd::dot(y.data(), g.data(), y.size());
}

TEST(LinearLayerTest, ForwardMatchesNaive)
{
    LinearLayer layer(3, 2);
    layer.initUniform(1);
    const Tensor x = randomTensor(4, 3, 2);
    Tensor y(4, 2);
    layer.forward(x, y);
    for (std::size_t e = 0; e < 4; ++e) {
        for (std::size_t o = 0; o < 2; ++o) {
            double ref = layer.bias().at(0, o);
            for (std::size_t i = 0; i < 3; ++i)
                ref += static_cast<double>(x.at(e, i)) *
                       layer.weight().at(o, i);
            EXPECT_NEAR(y.at(e, o), ref, 1e-5);
        }
    }
}

TEST(LinearLayerTest, WeightGradNumericalCheck)
{
    LinearLayer layer(3, 2);
    layer.initUniform(3);
    const Tensor x = randomTensor(5, 3, 4);
    const Tensor g = randomTensor(5, 2, 5);
    Tensor y(5, 2);
    layer.forward(x, y);
    Tensor dx(5, 3);
    layer.backward(g, &dx);

    const float eps = 1e-3f;
    for (std::size_t o = 0; o < 2; ++o) {
        for (std::size_t i = 0; i < 3; ++i) {
            float &w = layer.weight().at(o, i);
            const float orig = w;
            w = orig + eps;
            Tensor yp(5, 2);
            layer.forward(x, yp);
            w = orig - eps;
            Tensor ym(5, 2);
            layer.forward(x, ym);
            w = orig;
            const double num =
                (proxyLoss(yp, g) - proxyLoss(ym, g)) / (2.0 * eps);
            EXPECT_NEAR(layer.weightGrad().at(o, i), num, 5e-2);
        }
    }
}

TEST(LinearLayerTest, InputGradNumericalCheck)
{
    LinearLayer layer(3, 2);
    layer.initUniform(6);
    Tensor x = randomTensor(2, 3, 7);
    const Tensor g = randomTensor(2, 2, 8);
    Tensor y(2, 2);
    layer.forward(x, y);
    Tensor dx(2, 3);
    layer.backward(g, &dx);

    const float eps = 1e-3f;
    for (std::size_t e = 0; e < 2; ++e) {
        for (std::size_t i = 0; i < 3; ++i) {
            const float orig = x.at(e, i);
            x.at(e, i) = orig + eps;
            Tensor yp(2, 2);
            layer.forward(x, yp);
            x.at(e, i) = orig - eps;
            Tensor ym(2, 2);
            layer.forward(x, ym);
            x.at(e, i) = orig;
            const double num =
                (proxyLoss(yp, g) - proxyLoss(ym, g)) / (2.0 * eps);
            EXPECT_NEAR(dx.at(e, i), num, 5e-2);
        }
    }
}

TEST(LinearLayerTest, GhostNormEqualsMaterializedNorm)
{
    // ghost-norm formula must match the norm of actual per-example
    // grads exactly (the DP-SGD(F) correctness cornerstone)
    LinearLayer layer(7, 5);
    layer.initUniform(9);
    const Tensor x = randomTensor(6, 7, 10);
    const Tensor g = randomTensor(6, 5, 11);
    Tensor y(6, 5);
    layer.forward(x, y);

    std::vector<double> ghost(6, 0.0);
    layer.accumulateGhostNormSq(g, ghost);

    Tensor wg, bg;
    layer.perExampleGrads(g, wg, bg);
    for (std::size_t e = 0; e < 6; ++e) {
        const double ref =
            simd::squaredNorm(wg.data() + e * wg.cols(), wg.cols()) +
            simd::squaredNorm(bg.data() + e * bg.cols(), bg.cols());
        EXPECT_NEAR(ghost[e], ref, 1e-6 * (1.0 + ref));
    }
}

TEST(LinearLayerTest, PerExampleGradsSumToBatchGrad)
{
    LinearLayer layer(4, 3);
    layer.initUniform(12);
    const Tensor x = randomTensor(8, 4, 13);
    const Tensor g = randomTensor(8, 3, 14);
    Tensor y(8, 3);
    layer.forward(x, y);
    layer.backward(g, nullptr);

    Tensor wg, bg;
    layer.perExampleGrads(g, wg, bg);
    for (std::size_t o = 0; o < 3; ++o) {
        for (std::size_t i = 0; i < 4; ++i) {
            double sum = 0.0;
            for (std::size_t e = 0; e < 8; ++e)
                sum += wg.at(e, o * 4 + i);
            EXPECT_NEAR(layer.weightGrad().at(o, i), sum, 1e-4);
        }
    }
}

TEST(LinearLayerTest, SkipParamGradsLeavesGradsUntouched)
{
    LinearLayer layer(3, 3);
    layer.initUniform(15);
    const Tensor x = randomTensor(2, 3, 16);
    const Tensor g = randomTensor(2, 3, 17);
    Tensor y(2, 3);
    layer.forward(x, y);
    layer.weightGrad().fill(123.0f);
    Tensor dx(2, 3);
    layer.backward(g, &dx, /*skip_param_grads=*/true);
    EXPECT_EQ(layer.weightGrad().at(0, 0), 123.0f);
}

TEST(LinearLayerTest, ApplyStepsAgainstGradient)
{
    LinearLayer layer(2, 2);
    layer.weight().fill(1.0f);
    layer.weightGrad().fill(2.0f);
    layer.bias().fill(0.5f);
    layer.biasGrad().fill(1.0f);
    layer.apply(0.25f);
    EXPECT_EQ(layer.weight().at(0, 0), 0.5f);
    EXPECT_EQ(layer.bias().at(0, 1), 0.25f);
}

TEST(MlpTest, ForwardBackwardNumericalCheckThroughRelu)
{
    Mlp mlp({3, 5, 2}, 21);
    Tensor x = randomTensor(4, 3, 22);
    const Tensor g = randomTensor(4, 2, 23);
    Tensor y(4, 2);
    mlp.forward(x, y);
    Tensor dx(4, 3);
    mlp.backward(g, &dx);

    const float eps = 1e-3f;
    for (std::size_t e = 0; e < 4; ++e) {
        for (std::size_t i = 0; i < 3; ++i) {
            const float orig = x.at(e, i);
            x.at(e, i) = orig + eps;
            Tensor yp(4, 2);
            mlp.forward(x, yp);
            x.at(e, i) = orig - eps;
            Tensor ym(4, 2);
            mlp.forward(x, ym);
            x.at(e, i) = orig;
            const double num =
                (proxyLoss(yp, g) - proxyLoss(ym, g)) / (2.0 * eps);
            EXPECT_NEAR(dx.at(e, i), num, 6e-2);
        }
    }
}

TEST(MlpTest, WeightGradNumericalCheckDeepStack)
{
    Mlp mlp({2, 4, 4, 1}, 31);
    const Tensor x = randomTensor(3, 2, 32);
    const Tensor g = randomTensor(3, 1, 33);
    Tensor y(3, 1);
    mlp.forward(x, y);
    mlp.backward(g, nullptr);

    const float eps = 1e-3f;
    for (std::size_t li = 0; li < mlp.layers().size(); ++li) {
        LinearLayer &layer = mlp.layers()[li];
        // spot-check a few weights per layer
        for (std::size_t k = 0; k < std::min<std::size_t>(
                                        4, layer.weight().size());
             ++k) {
            float &w = layer.weight().data()[k];
            const float orig = w;
            w = orig + eps;
            Tensor yp(3, 1);
            mlp.forward(x, yp);
            w = orig - eps;
            Tensor ym(3, 1);
            mlp.forward(x, ym);
            w = orig;
            const double num =
                (proxyLoss(yp, g) - proxyLoss(ym, g)) / (2.0 * eps);
            EXPECT_NEAR(layer.weightGrad().data()[k], num, 6e-2)
                << "layer " << li << " weight " << k;
        }
        // re-run backward because the perturbed forwards invalidated
        // the caches
        Tensor y2(3, 1);
        mlp.forward(x, y2);
        mlp.backward(g, nullptr);
    }
}

TEST(MlpTest, GhostNormMatchesPerExampleThroughStack)
{
    Mlp a({3, 6, 2}, 41);
    Mlp b({3, 6, 2}, 41); // identical weights
    const Tensor x = randomTensor(5, 3, 42);
    const Tensor g = randomTensor(5, 2, 43);

    Tensor ya(5, 2), yb(5, 2);
    a.forward(x, ya);
    b.forward(x, yb);

    std::vector<double> ghost(5, 0.0);
    a.backward(g, nullptr, &ghost, /*skip_param_grads=*/true);

    PerExampleGrads peg;
    b.backwardPerExample(g, nullptr, peg);
    for (std::size_t e = 0; e < 5; ++e) {
        double ref = 0.0;
        for (const auto &w : peg.w)
            ref += simd::squaredNorm(w.data() + e * w.cols(), w.cols());
        for (const auto &bias : peg.b)
            ref += simd::squaredNorm(bias.data() + e * bias.cols(),
                                     bias.cols());
        EXPECT_NEAR(ghost[e], ref, 1e-5 * (1.0 + ref)) << "e=" << e;
    }
}

TEST(MlpTest, BackwardNormsOnlyMatchesGhostNorms)
{
    Mlp a({4, 8, 3}, 51);
    Mlp b({4, 8, 3}, 51);
    const Tensor x = randomTensor(6, 4, 52);
    const Tensor g = randomTensor(6, 3, 53);
    Tensor ya(6, 3), yb(6, 3);
    a.forward(x, ya);
    b.forward(x, yb);

    std::vector<double> ghost(6, 0.0);
    a.backward(g, nullptr, &ghost, true);
    std::vector<double> materialized(6, 0.0);
    b.backwardNormsOnly(g, nullptr, materialized);
    for (std::size_t e = 0; e < 6; ++e)
        EXPECT_NEAR(ghost[e], materialized[e],
                    1e-5 * (1.0 + ghost[e]));
}

TEST(MlpTest, ParamCountMatchesShape)
{
    Mlp mlp({3, 5, 2}, 61);
    EXPECT_EQ(mlp.paramCount(), 3u * 5 + 5 + 5 * 2 + 2);
}

TEST(PerExampleGradsTest, BytesAccounting)
{
    Mlp mlp({2, 3, 1}, 71);
    const Tensor x = randomTensor(4, 2, 72);
    const Tensor g = randomTensor(4, 1, 73);
    Tensor y(4, 1);
    mlp.forward(x, y);
    PerExampleGrads peg;
    mlp.backwardPerExample(g, nullptr, peg);
    // layer0: 4 x (3*2) floats, layer1: 4 x (1*3); biases 4x3 + 4x1
    EXPECT_EQ(peg.bytes(), (4 * 6 + 4 * 3 + 4 * 3 + 4 * 1) * 4u);
}

} // namespace
} // namespace lazydp
