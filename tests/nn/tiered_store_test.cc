/**
 * @file Out-of-core TieredStore unit tests: promotion/eviction
 * round-trips, dirty write-back ordering vs checkpointing (flush),
 * crash-safe cold-file re-open, init parity with the dense path, and
 * the prefetch-off worst case.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "nn/embedding.h"
#include "nn/tiered_store.h"

namespace lazydp {
namespace {

class TieredStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "lazydp_tier_" +
                std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".cold";
        std::remove(path_.c_str());
    }

    void TearDown() override { std::remove(path_.c_str()); }

    /** Tiny geometry: 8-row pages so a few rows span many pages. */
    TieredOptions
    options(std::uint64_t hot_bytes) const
    {
        TieredOptions o;
        o.hotBytes = hot_bytes;
        o.coldPath = path_;
        o.pageRows = 8;
        return o;
    }

    std::string path_;
};

constexpr std::uint64_t kRows = 100; // 13 pages of 8, last partial
constexpr std::size_t kDim = 16;

/** One page frame's worth of bytes for the tiny geometry. */
constexpr std::uint64_t
frameBytes(std::size_t frames)
{
    return static_cast<std::uint64_t>(frames) * 8 * kDim *
           sizeof(float);
}

TEST_F(TieredStoreTest, InitParityWithDense)
{
    EmbeddingTable dense(kRows, kDim);
    dense.initUniform(0xABCD);

    EmbeddingTable tiered(kRows, kDim, options(frameBytes(2)));
    tiered.initUniform(0xABCD);

    std::vector<float> got(kRows * kDim);
    tiered.copyRowsOut(0, kRows, got.data());
    EXPECT_EQ(std::memcmp(got.data(), dense.weights().data(),
                          got.size() * sizeof(float)),
              0)
        << "tiered initUniform must produce the dense RNG stream";
}

TEST_F(TieredStoreTest, EvictThenTouchReloadsBitExact)
{
    // One frame: every new page promotion evicts the previous page.
    TieredStore store(kRows, kDim, options(frameBytes(1)));
    ASSERT_EQ(store.numPages(), 13u);

    // Dirty page 0 with a distinctive pattern through the hot frame.
    const std::uint32_t row0 = 3;
    store.ensureResident(std::span<const std::uint32_t>(&row0, 1));
    ASSERT_TRUE(store.resident(0));
    float *w = store.rowPtrMut(row0);
    for (std::size_t i = 0; i < kDim; ++i)
        w[i] = 1000.0f + static_cast<float>(i);

    // Touch enough other pages to force page 0 out (dirty eviction =>
    // write-back), then bring it home again.
    for (std::uint32_t r = 16; r < 80; r += 8) {
        store.ensureResident(std::span<const std::uint32_t>(&r, 1));
        EXPECT_TRUE(store.resident(r / 8));
    }
    EXPECT_FALSE(store.resident(0));
    EXPECT_GT(store.stats().evictions, 0u);
    EXPECT_GT(store.stats().writebacks, 0u);

    store.ensureResident(std::span<const std::uint32_t>(&row0, 1));
    ASSERT_TRUE(store.resident(0));
    const float *back = store.rowPtr(row0);
    for (std::size_t i = 0; i < kDim; ++i)
        EXPECT_EQ(back[i], 1000.0f + static_cast<float>(i)) << i;
}

TEST_F(TieredStoreTest, FlushWritesDirtyPagesBeforeCheckpointRead)
{
    // The write-back ordering contract checkpoint saves rely on: after
    // flush(), reading the cold FILE (not the mapping) sees every
    // dirty hot page -- i.e. a checkpoint taken from the file after
    // flush can never observe pre-write-back bytes.
    std::vector<float> expect(kRows * kDim);
    {
        TieredOptions opts = options(frameBytes(4));
        opts.keepFile = true;
        TieredStore store(kRows, kDim, opts);
        for (std::uint32_t r = 0; r < kRows; ++r) {
            store.ensureResident(
                std::span<const std::uint32_t>(&r, 1));
            float *w = store.rowPtrMut(r);
            for (std::size_t i = 0; i < kDim; ++i)
                w[i] = static_cast<float>(r * kDim + i);
        }
        store.flush();
        store.copyRowsOut(0, kRows, expect.data());

        // Independent read of the data file while the store still
        // holds its resident (post-flush clean) pages.
        std::ifstream f(path_, std::ios::binary);
        ASSERT_TRUE(f.good());
        std::vector<float> file(kRows * kDim);
        f.read(reinterpret_cast<char *>(file.data()),
               static_cast<std::streamsize>(file.size() *
                                            sizeof(float)));
        ASSERT_EQ(static_cast<std::size_t>(f.gcount()),
                  file.size() * sizeof(float));
        EXPECT_EQ(std::memcmp(file.data(), expect.data(),
                              file.size() * sizeof(float)),
                  0);
    }
    std::remove(path_.c_str());
}

TEST_F(TieredStoreTest, CrashSafeReopenRestoresFlushedWeights)
{
    std::vector<float> expect(kRows * kDim);
    {
        TieredOptions opts = options(frameBytes(2));
        opts.keepFile = true; // survive "crash" (destruction)
        EmbeddingTable table(kRows, kDim, opts);
        table.initUniform(0x7E57);
        // Mutate some rows through the sparse path, then flush so the
        // cold file is the complete durable state.
        std::vector<std::uint32_t> rows = {1, 9, 42, 99};
        table.ensureResident(rows);
        for (const std::uint32_t r : rows) {
            float *w = table.rowPtr(r);
            for (std::size_t i = 0; i < kDim; ++i)
                w[i] += 0.5f;
        }
        table.tier().flush();
        table.copyRowsOut(0, kRows, expect.data());
    }

    TieredOptions reopen = options(frameBytes(2));
    reopen.reuseFile = true;
    EmbeddingTable table(kRows, kDim, reopen);
    // No initUniform: the file IS the weight state.
    std::vector<float> got(kRows * kDim);
    table.copyRowsOut(0, kRows, got.data());
    EXPECT_EQ(std::memcmp(got.data(), expect.data(),
                          got.size() * sizeof(float)),
              0);
    // Fresh store: nothing resident until touched.
    EXPECT_EQ(table.tier().stats().promotions, 0u);
}

TEST_F(TieredStoreTest, CopyRowsRoundTripAcrossPageBoundaries)
{
    TieredStore store(kRows, kDim, options(frameBytes(2)));
    std::vector<float> in(37 * kDim); // spans pages 0..5 unaligned
    for (std::size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<float>(i) * 0.25f;
    store.copyRowsIn(5, 37, in.data());
    std::vector<float> out(37 * kDim);
    store.copyRowsOut(5, 37, out.data());
    EXPECT_EQ(
        std::memcmp(in.data(), out.data(), in.size() * sizeof(float)),
        0);
}

TEST_F(TieredStoreTest, WarmAsyncMarksPromotionsWarmed)
{
    ThreadPool pool(2);
    TieredStore store(kRows, kDim, options(frameBytes(2)));
    std::vector<std::uint32_t> rows = {0, 17, 33, 65};
    store.warmAsync(&pool, rows);
    store.joinWarm();
    EXPECT_EQ(store.stats().warmSubmits, 1u);
    EXPECT_GT(store.stats().warmedPages, 0u);

    store.ensureResident(rows);
    EXPECT_GT(store.stats().warmedPromotions, 0u);
}

TEST_F(TieredStoreTest, PrefetchOffMakesWarmANoOp)
{
    ThreadPool pool(2);
    TieredOptions opts = options(frameBytes(2));
    opts.prefetch = false;
    TieredStore store(kRows, kDim, opts);
    std::vector<std::uint32_t> rows = {0, 17, 33};
    store.warmAsync(&pool, rows); // must be ignored, not crash
    store.joinWarm();
    EXPECT_EQ(store.stats().warmSubmits, 0u);
    EXPECT_EQ(store.stats().warmedPages, 0u);

    // The worst-case leg still trains correctly: promotion works
    // without any warming.
    store.ensureResident(rows);
    EXPECT_EQ(store.stats().warmedPromotions, 0u);
    EXPECT_GT(store.stats().promotions, 0u);
}

TEST_F(TieredStoreTest, HitRateCountsResidentPages)
{
    TieredStore store(kRows, kDim, options(frameBytes(4)));
    std::vector<std::uint32_t> rows = {0, 1, 2, 9};
    store.ensureResident(rows); // pages 0,1: two promotions
    EXPECT_EQ(store.stats().promotions, 2u);
    store.ensureResident(rows); // same pages: two hits
    EXPECT_EQ(store.stats().hits, 2u);
    EXPECT_DOUBLE_EQ(store.stats().hitRate(), 0.5);
}

} // namespace
} // namespace lazydp
