/** @file Tests for the model-configuration presets. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "nn/model_config.h"

namespace lazydp {
namespace {

TEST(ModelConfigTest, MlperfShapeMatchesPaper)
{
    const auto cfg = ModelConfig::mlperfDlrm(96ull << 20);
    EXPECT_EQ(cfg.numTables, 26u);
    EXPECT_EQ(cfg.embedDim, 128u);
    EXPECT_EQ(cfg.numDense, 13u);
    // 8 MLP layers total (3 bottom + 5 top), as in MLPerf DLRM
    EXPECT_EQ(cfg.bottomDims.size() - 1 + cfg.topDims.size(), 8u);
    cfg.validate();
}

TEST(ModelConfigTest, TableBytesHitsTarget)
{
    const std::uint64_t target = 96ull << 20;
    const auto cfg = ModelConfig::mlperfDlrm(target);
    // rounding to whole rows keeps us within one row per table
    const std::uint64_t per_row = cfg.embedDim * 4;
    EXPECT_LE(cfg.tableBytes(), target);
    EXPECT_GE(cfg.tableBytes(), target - cfg.numTables * per_row);
}

TEST(ModelConfigTest, InteractionDimFormula)
{
    const auto cfg = ModelConfig::mlperfDlrm(1 << 20);
    // 27 vectors -> 351 pairs + 128 passthrough = 479 (paper's top MLP
    // input width)
    EXPECT_EQ(cfg.interactionDim(), 479u);
    EXPECT_EQ(cfg.fullTopDims().front(), 479u);
}

TEST(ModelConfigTest, AllPresetsValidate)
{
    for (auto cfg :
         {ModelConfig::mlperfDlrm(1 << 22), ModelConfig::mlperfBench(1 << 22),
          ModelConfig::rmc1(1 << 22), ModelConfig::rmc2(1 << 22),
          ModelConfig::rmc3(1 << 22), ModelConfig::tiny()}) {
        SCOPED_TRACE(cfg.name);
        cfg.validate();
        EXPECT_GT(cfg.rowsPerTable, 0u);
    }
}

TEST(ModelConfigTest, RmcVariantsDifferStructurally)
{
    const auto r1 = ModelConfig::rmc1(1 << 22);
    const auto r2 = ModelConfig::rmc2(1 << 22);
    const auto r3 = ModelConfig::rmc3(1 << 22);
    EXPECT_GT(r1.pooling, r3.pooling);   // RMC1 is lookup-heavy
    EXPECT_GT(r2.numTables, r1.numTables); // RMC2 has many tables
    EXPECT_GT(r3.rowsPerTable, r1.rowsPerTable); // RMC3 has big tables
}

TEST(ModelConfigTest, ValidateCatchesBadShapes)
{
    setLogThrowMode(true);
    auto cfg = ModelConfig::tiny();
    cfg.bottomDims.back() = cfg.embedDim + 1;
    EXPECT_THROW(cfg.validate(), std::runtime_error);

    cfg = ModelConfig::tiny();
    cfg.topDims.back() = 2;
    EXPECT_THROW(cfg.validate(), std::runtime_error);

    cfg = ModelConfig::tiny();
    cfg.pooling = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
    setLogThrowMode(false);
}

TEST(ModelConfigTest, TinyRunsAreActuallyTiny)
{
    const auto cfg = ModelConfig::tiny();
    EXPECT_LT(cfg.tableBytes(), 100u << 10);
}

} // namespace
} // namespace lazydp
