/** @file Tests for BCE-with-logits. */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.h"

namespace lazydp {
namespace {

TEST(BceLossTest, KnownValues)
{
    Tensor logits(2, 1);
    logits.at(0, 0) = 0.0f;
    logits.at(1, 0) = 0.0f;
    const std::vector<float> labels{0.0f, 1.0f};
    // at z=0 loss is ln 2 regardless of label
    EXPECT_NEAR(BceWithLogitsLoss::forward(logits, labels),
                std::log(2.0), 1e-9);
}

TEST(BceLossTest, ConfidentCorrectPredictionsHaveLowLoss)
{
    Tensor logits(2, 1);
    logits.at(0, 0) = 10.0f;  // label 1
    logits.at(1, 0) = -10.0f; // label 0
    const std::vector<float> labels{1.0f, 0.0f};
    EXPECT_LT(BceWithLogitsLoss::forward(logits, labels), 1e-3);
}

TEST(BceLossTest, ConfidentWrongPredictionsHaveHighLoss)
{
    Tensor logits(1, 1);
    logits.at(0, 0) = -10.0f;
    const std::vector<float> labels{1.0f};
    EXPECT_GT(BceWithLogitsLoss::forward(logits, labels), 9.0);
}

TEST(BceLossTest, NumericallyStableAtExtremeLogits)
{
    Tensor logits(2, 1);
    logits.at(0, 0) = 500.0f;
    logits.at(1, 0) = -500.0f;
    const std::vector<float> labels{1.0f, 0.0f};
    const double loss = BceWithLogitsLoss::forward(logits, labels);
    EXPECT_TRUE(std::isfinite(loss));
    EXPECT_NEAR(loss, 0.0, 1e-6);
}

TEST(BceLossTest, GradientIsSigmoidMinusLabel)
{
    Tensor logits(3, 1);
    logits.at(0, 0) = 0.0f;
    logits.at(1, 0) = 2.0f;
    logits.at(2, 0) = -1.0f;
    const std::vector<float> labels{1.0f, 0.0f, 1.0f};
    Tensor d(3, 1);
    BceWithLogitsLoss::backwardPerExample(logits, labels, d);
    EXPECT_NEAR(d.at(0, 0), 0.5 - 1.0, 1e-6);
    EXPECT_NEAR(d.at(1, 0), 1.0 / (1.0 + std::exp(-2.0)), 1e-6);
    EXPECT_NEAR(d.at(2, 0), 1.0 / (1.0 + std::exp(1.0)) - 1.0, 1e-6);
}

TEST(BceLossTest, GradientNumericalCheck)
{
    Tensor logits(4, 1);
    logits.at(0, 0) = 0.3f;
    logits.at(1, 0) = -0.8f;
    logits.at(2, 0) = 1.7f;
    logits.at(3, 0) = 0.0f;
    const std::vector<float> labels{1.0f, 0.0f, 0.0f, 1.0f};

    Tensor d(4, 1);
    BceWithLogitsLoss::backwardPerExample(logits, labels, d);

    const float eps = 1e-3f;
    for (std::size_t e = 0; e < 4; ++e) {
        const float orig = logits.at(e, 0);
        logits.at(e, 0) = orig + eps;
        const double lp = BceWithLogitsLoss::forward(logits, labels) * 4;
        logits.at(e, 0) = orig - eps;
        const double lm = BceWithLogitsLoss::forward(logits, labels) * 4;
        logits.at(e, 0) = orig;
        // forward returns the mean; x4 recovers the sum whose
        // per-example gradient backwardPerExample reports
        EXPECT_NEAR(d.at(e, 0), (lp - lm) / (2.0 * eps), 1e-3);
    }
}

} // namespace
} // namespace lazydp
