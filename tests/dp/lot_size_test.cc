/**
 * @file Tests for fixed lot-size normalization (the Abadi et al. /
 * Opacus convention under Poisson subsampling): the update scale must
 * come from the FIXED expected lot size, never the realized batch
 * size, or the noise magnitude itself would leak how many examples
 * were sampled.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/lazydp.h"
#include "data/synthetic_dataset.h"
#include "dp/dp_sgd_f.h"
#include "train/trainer.h"

namespace lazydp {
namespace {

ModelConfig
testModel()
{
    auto mc = ModelConfig::tiny();
    mc.rowsPerTable = 64;
    return mc;
}

MiniBatch
batchOfSize(const ModelConfig &mc, std::size_t batch, std::uint64_t it)
{
    DatasetConfig dc;
    dc.numDense = mc.numDense;
    dc.numTables = mc.numTables;
    dc.rowsPerTable = mc.rowsPerTable;
    dc.pooling = mc.pooling;
    dc.batchSize = batch;
    dc.seed = 99;
    SyntheticDataset ds(dc);
    return ds.batch(it);
}

/** Row of table 0 that neither batch size's first batch accesses. */
std::uint32_t
commonColdRow(const ModelConfig &mc)
{
    std::vector<std::uint32_t> a8, a24;
    uniqueRows(batchOfSize(mc, 8, 0).tableIndices(0), a8);
    uniqueRows(batchOfSize(mc, 24, 0).tableIndices(0), a24);
    for (std::uint32_t r = 0; r < mc.rowsPerTable; ++r) {
        if (!std::binary_search(a8.begin(), a8.end(), r) &&
            !std::binary_search(a24.begin(), a24.end(), r)) {
            return r;
        }
    }
    return 0; // cannot happen at these sizes
}

/**
 * Noise displacement of row @p cold_row (cold in both batch sizes)
 * after one step. The keyed noise vector of (iter 1, table 0, row) is
 * identical across runs, so any displacement difference is purely the
 * normalization scale.
 */
double
coldRowDisplacement(std::size_t realized_batch, std::size_t lot_size,
                    std::uint64_t noise_seed, std::uint32_t cold_row)
{
    const auto mc = testModel();
    DlrmModel model(mc, 3);
    TrainHyper h;
    h.lr = 1.0f;
    h.clipNorm = 1.0f;
    h.noiseMultiplier = 1.0f;
    h.noiseSeed = noise_seed;
    h.lotSize = lot_size;

    Tensor before(mc.rowsPerTable, mc.embedDim);
    before.copyFrom(model.tables()[0].weights());

    MiniBatch mb = batchOfSize(mc, realized_batch, 0);
    DpSgdF engine(model, h);
    StageTimer timer;
    engine.step(1, mb, nullptr, ExecContext::serial(), timer);

    const Tensor &after = model.tables()[0].weights();
    double d2 = 0.0;
    for (std::size_t c = 0; c < mc.embedDim; ++c) {
        const double d = after.at(cold_row, c) - before.at(cold_row, c);
        d2 += d * d;
    }
    return std::sqrt(d2);
}

TEST(LotSizeTest, NoiseScaleIndependentOfRealizedBatch)
{
    // with a fixed lot size the injected noise magnitude must be
    // IDENTICAL regardless of how many examples were actually sampled
    const std::uint32_t row = commonColdRow(testModel());
    const double d8 = coldRowDisplacement(8, 32, 0x10, row);
    const double d24 = coldRowDisplacement(24, 32, 0x10, row);
    ASSERT_GT(d8, 0.0);
    EXPECT_NEAR(d8, d24, 1e-9);
}

TEST(LotSizeTest, WithoutLotSizeNoiseLeaksBatchSize)
{
    // the failure mode the option exists to prevent: realized-batch
    // normalization makes the noise magnitude a function of the count
    const std::uint32_t row = commonColdRow(testModel());
    const double d8 = coldRowDisplacement(8, 0, 0x10, row);
    const double d24 = coldRowDisplacement(24, 0, 0x10, row);
    ASSERT_GT(d8, 0.0);
    // displacement scales as 1/B: ratio should be ~3
    EXPECT_NEAR(d8 / d24, 3.0, 0.01);
}

TEST(LotSizeTest, LazyEquivalenceHoldsUnderLotSize)
{
    const auto mc = testModel();
    TrainHyper h;
    h.noiseSeed = 0x22;
    h.lotSize = 16;

    DatasetConfig dc;
    dc.numDense = mc.numDense;
    dc.numTables = mc.numTables;
    dc.rowsPerTable = mc.rowsPerTable;
    dc.pooling = mc.pooling;
    dc.batchSize = 8; // realized != lot
    dc.seed = 5;

    DlrmModel eager_model(mc, 3);
    DlrmModel lazy_model(mc, 3);
    SyntheticDataset ds(dc);
    {
        SequentialLoader loader(ds);
        DpSgdF eager(eager_model, h);
        Trainer(eager, loader).run(6);
    }
    {
        SequentialLoader loader(ds);
        LazyDpAlgorithm lazy(lazy_model, h, /*use_ans=*/false);
        Trainer(lazy, loader).run(6);
    }
    for (std::size_t t = 0; t < mc.numTables; ++t) {
        const Tensor &we = eager_model.tables()[t].weights();
        const Tensor &wl = lazy_model.tables()[t].weights();
        for (std::size_t i = 0; i < we.size(); ++i)
            EXPECT_NEAR(we.data()[i], wl.data()[i], 1e-4);
    }
}

} // namespace
} // namespace lazydp
