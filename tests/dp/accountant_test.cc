/** @file Tests for the RDP accountant. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.h"
#include "dp/accountant.h"

namespace lazydp {
namespace {

TEST(AccountantTest, PlainGaussianRdpIsAlphaOver2Sigma2)
{
    // q = 1 reduces to the Gaussian mechanism: RDP(a) = a / (2 s^2).
    RdpAccountant acc(2.0, 1.0);
    for (int a : {2, 4, 8, 32})
        EXPECT_NEAR(acc.rdpAtOrder(a), a / (2.0 * 4.0), 1e-9);
}

TEST(AccountantTest, SubsamplingNeverHurts)
{
    // RDP with q < 1 must be <= RDP with q = 1 at every order.
    RdpAccountant sub(1.1, 0.01);
    RdpAccountant full(1.1, 1.0);
    for (int a : {2, 3, 4, 8, 16, 64})
        EXPECT_LE(sub.rdpAtOrder(a), full.rdpAtOrder(a) + 1e-12);
}

TEST(AccountantTest, EpsilonGrowsWithSteps)
{
    RdpAccountant acc(1.0, 0.01);
    acc.addSteps(100);
    const double e100 = acc.epsilon(1e-5);
    acc.addSteps(900);
    const double e1000 = acc.epsilon(1e-5);
    EXPECT_GT(e1000, e100);
    EXPECT_EQ(acc.steps(), 1000u);
}

TEST(AccountantTest, MoreNoiseGivesLessEpsilon)
{
    RdpAccountant low(0.8, 0.01);
    RdpAccountant high(2.0, 0.01);
    low.addSteps(1000);
    high.addSteps(1000);
    EXPECT_GT(low.epsilon(1e-5), high.epsilon(1e-5));
}

TEST(AccountantTest, SmallerDeltaCostsMoreEpsilon)
{
    RdpAccountant acc(1.1, 0.02);
    acc.addSteps(500);
    EXPECT_GT(acc.epsilon(1e-8), acc.epsilon(1e-4));
}

TEST(AccountantTest, GaussianMechanismClosedFormAnchor)
{
    // For q=1, T=1: eps(a) = a/(2s^2) + log(1/delta)/(a-1); the
    // analytic optimum over continuous a is
    // sqrt(2 log(1/delta)) / s + 1/(2 s^2) approximately. With s=4,
    // delta=1e-5: ~1.23. Integer-order scan should be within 5%.
    RdpAccountant acc(4.0, 1.0);
    acc.addSteps(1);
    const double analytic =
        std::sqrt(2.0 * std::log(1e5)) / 4.0 + 1.0 / (2.0 * 16.0);
    EXPECT_NEAR(acc.epsilon(1e-5), analytic, 0.05 * analytic);
}

TEST(AccountantTest, KnownRegimeMagnitude)
{
    // Classic DP-SGD setting: sigma=1.1, q=256/60000, one epoch's
    // worth of steps per epoch over 10 epochs ~ 2343 steps.
    // Published epsilon (Opacus tutorial-scale) is in the low single
    // digits; assert the right ballpark rather than an exact value.
    RdpAccountant acc(1.1, 256.0 / 60000.0);
    acc.addSteps(2343);
    const double eps = acc.epsilon(1e-5);
    EXPECT_GT(eps, 0.5);
    EXPECT_LT(eps, 3.0);
}

TEST(AccountantTest, BestOrderIsReported)
{
    RdpAccountant acc(1.1, 0.01);
    acc.addSteps(100);
    int order = 0;
    acc.epsilon(1e-5, &order);
    EXPECT_GE(order, 2);
}

TEST(AccountantTest, RejectsBadParameters)
{
    setLogThrowMode(true);
    EXPECT_THROW(RdpAccountant(0.0, 0.5), std::runtime_error);
    EXPECT_THROW(RdpAccountant(1.0, 0.0), std::runtime_error);
    EXPECT_THROW(RdpAccountant(1.0, 1.5), std::runtime_error);
    RdpAccountant acc(1.0, 0.5);
    EXPECT_THROW(acc.epsilon(0.0), std::runtime_error);
    setLogThrowMode(false);
}

TEST(AccountantTest, ZeroStepsGivesTinyEpsilon)
{
    RdpAccountant acc(1.0, 0.01);
    // no steps: eps = min_a log(1/delta)/(a-1), small for large orders
    EXPECT_LT(acc.epsilon(1e-5), 0.05);
}

} // namespace
} // namespace lazydp
