/** @file Tests for the RDP accountant. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.h"
#include "dp/accountant.h"

namespace lazydp {
namespace {

TEST(AccountantTest, PlainGaussianRdpIsAlphaOver2Sigma2)
{
    // q = 1 reduces to the Gaussian mechanism: RDP(a) = a / (2 s^2).
    RdpAccountant acc(2.0, 1.0);
    for (int a : {2, 4, 8, 32})
        EXPECT_NEAR(acc.rdpAtOrder(a), a / (2.0 * 4.0), 1e-9);
}

TEST(AccountantTest, SubsamplingNeverHurts)
{
    // RDP with q < 1 must be <= RDP with q = 1 at every order.
    RdpAccountant sub(1.1, 0.01);
    RdpAccountant full(1.1, 1.0);
    for (int a : {2, 3, 4, 8, 16, 64})
        EXPECT_LE(sub.rdpAtOrder(a), full.rdpAtOrder(a) + 1e-12);
}

TEST(AccountantTest, EpsilonGrowsWithSteps)
{
    RdpAccountant acc(1.0, 0.01);
    acc.addSteps(100);
    const double e100 = acc.epsilon(1e-5);
    acc.addSteps(900);
    const double e1000 = acc.epsilon(1e-5);
    EXPECT_GT(e1000, e100);
    EXPECT_EQ(acc.steps(), 1000u);
}

TEST(AccountantTest, MoreNoiseGivesLessEpsilon)
{
    RdpAccountant low(0.8, 0.01);
    RdpAccountant high(2.0, 0.01);
    low.addSteps(1000);
    high.addSteps(1000);
    EXPECT_GT(low.epsilon(1e-5), high.epsilon(1e-5));
}

TEST(AccountantTest, SmallerDeltaCostsMoreEpsilon)
{
    RdpAccountant acc(1.1, 0.02);
    acc.addSteps(500);
    EXPECT_GT(acc.epsilon(1e-8), acc.epsilon(1e-4));
}

TEST(AccountantTest, GaussianMechanismClosedFormAnchor)
{
    // For q=1, T=1: eps(a) = a/(2s^2) + log(1/delta)/(a-1); the
    // analytic optimum over continuous a is
    // sqrt(2 log(1/delta)) / s + 1/(2 s^2) approximately. With s=4,
    // delta=1e-5: ~1.23. Integer-order scan should be within 5%.
    RdpAccountant acc(4.0, 1.0);
    acc.addSteps(1);
    const double analytic =
        std::sqrt(2.0 * std::log(1e5)) / 4.0 + 1.0 / (2.0 * 16.0);
    EXPECT_NEAR(acc.epsilon(1e-5), analytic, 0.05 * analytic);
}

TEST(AccountantTest, KnownRegimeMagnitude)
{
    // Classic DP-SGD setting: sigma=1.1, q=256/60000, one epoch's
    // worth of steps per epoch over 10 epochs ~ 2343 steps.
    // Published epsilon (Opacus tutorial-scale) is in the low single
    // digits; assert the right ballpark rather than an exact value.
    RdpAccountant acc(1.1, 256.0 / 60000.0);
    acc.addSteps(2343);
    const double eps = acc.epsilon(1e-5);
    EXPECT_GT(eps, 0.5);
    EXPECT_LT(eps, 3.0);
}

TEST(AccountantTest, BestOrderIsReported)
{
    RdpAccountant acc(1.1, 0.01);
    acc.addSteps(100);
    int order = 0;
    acc.epsilon(1e-5, &order);
    EXPECT_GE(order, 2);
}

TEST(AccountantTest, RejectsBadParameters)
{
    setLogThrowMode(true);
    EXPECT_THROW(RdpAccountant(0.0, 0.5), std::runtime_error);
    EXPECT_THROW(RdpAccountant(1.0, 0.0), std::runtime_error);
    EXPECT_THROW(RdpAccountant(1.0, 1.5), std::runtime_error);
    RdpAccountant acc(1.0, 0.5);
    EXPECT_THROW(acc.epsilon(0.0), std::runtime_error);
    setLogThrowMode(false);
}

TEST(AccountantTest, ZeroStepsGivesTinyEpsilon)
{
    RdpAccountant acc(1.0, 0.01);
    // no steps: eps = min_a log(1/delta)/(a-1), small for large orders
    EXPECT_LT(acc.epsilon(1e-5), 0.05);
}

// ----- hardening edge cases -------------------------------------------

TEST(AccountantEdgeTest, ZeroIterationsAtAnyConfiguration)
{
    // A run that never stepped must report (near-)zero spent budget no
    // matter how aggressive the mechanism parameters are.
    for (const double sigma : {0.5, 1.0, 8.0}) {
        for (const double q : {0.001, 0.5, 1.0}) {
            RdpAccountant acc(sigma, q);
            EXPECT_EQ(acc.steps(), 0u);
            EXPECT_LT(acc.epsilon(1e-6), 0.05)
                << "sigma " << sigma << " q " << q;
            EXPECT_GE(acc.epsilon(1e-6), 0.0);
        }
    }
}

TEST(AccountantEdgeTest, SigmaToInfinityEpsilonVanishes)
{
    // sigma -> inf: the mechanism releases pure noise; epsilon must
    // decay toward the no-signal floor monotonically.
    double prev = 1e300;
    for (const double sigma : {1.0, 10.0, 100.0, 1e4, 1e6}) {
        RdpAccountant acc(sigma, 0.01);
        acc.addSteps(1000);
        const double eps = acc.epsilon(1e-6);
        EXPECT_LT(eps, prev + 1e-12) << "sigma " << sigma;
        prev = eps;
    }
    // at sigma = 1e6 the RDP term is ~0: only the delta conversion
    // floor remains
    RdpAccountant huge(1e6, 0.01);
    huge.addSteps(1000);
    EXPECT_LT(huge.epsilon(1e-6), 0.06);
}

TEST(AccountantEdgeTest, EpsilonMonotoneInSteps)
{
    // Strict monotonicity along a whole trajectory, not just two
    // points: every additional lot spends budget.
    RdpAccountant acc(1.1, 0.01);
    double prev = acc.epsilon(1e-5);
    for (int leg = 0; leg < 8; ++leg) {
        acc.addSteps(250);
        const double eps = acc.epsilon(1e-5);
        EXPECT_GT(eps, prev) << "after " << acc.steps() << " steps";
        prev = eps;
    }
}

TEST(AccountantEdgeTest, EpsilonMonotoneInLotSize)
{
    // Bigger lots (higher sampling rate q = L/N) must never report a
    // smaller epsilon at the same step count.
    const double population = 1e6;
    double prev = 0.0;
    for (const double lot : {256.0, 1024.0, 4096.0, 16384.0, 65536.0}) {
        RdpAccountant acc(1.1, lot / population);
        acc.addSteps(500);
        const double eps = acc.epsilon(1e-6);
        EXPECT_GE(eps, prev) << "lot " << lot;
        prev = eps;
    }
}

TEST(AccountantEdgeTest, CompositionMatchesClosedFormGaussian)
{
    // q = 1, T steps of the plain Gaussian mechanism: the accountant's
    // answer must equal the closed-form RDP composition evaluated over
    // the same integer-order grid,
    //   eps = min_a [ T * a / (2 sigma^2) + log(1/delta) / (a - 1) ].
    const double sigma = 4.0;
    const std::uint64_t steps = 64;
    const double delta = 1e-6;

    RdpAccountant acc(sigma, 1.0);
    acc.addSteps(steps);

    double want = 1e300;
    for (const int a : RdpAccountant::defaultOrders()) {
        const double rdp = static_cast<double>(steps) * a /
                           (2.0 * sigma * sigma);
        want = std::min(want,
                        rdp + std::log(1.0 / delta) / (a - 1.0));
    }
    EXPECT_NEAR(acc.epsilon(delta), want, 1e-9 * want);

    // and per-order composition is exactly linear in T
    for (const int a : {2, 8, 32}) {
        EXPECT_NEAR(acc.rdpAtOrder(a) * static_cast<double>(steps),
                    static_cast<double>(steps) * a /
                        (2.0 * sigma * sigma),
                    1e-9);
    }
}

} // namespace
} // namespace lazydp
