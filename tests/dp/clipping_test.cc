/** @file Tests for per-example clipping helpers. */

#include <gtest/gtest.h>

#include <cmath>

#include "dp/clipping.h"

namespace lazydp {
namespace {

TEST(ClipScalesTest, BelowThresholdIsUnscaled)
{
    std::vector<float> out;
    clipScales({0.25, 0.81}, 1.0f, out); // norms 0.5 and 0.9
    EXPECT_EQ(out[0], 1.0f);
    EXPECT_EQ(out[1], 1.0f);
}

TEST(ClipScalesTest, AboveThresholdScalesToC)
{
    std::vector<float> out;
    clipScales({4.0, 100.0}, 1.0f, out); // norms 2 and 10
    EXPECT_NEAR(out[0], 0.5f, 1e-6f);
    EXPECT_NEAR(out[1], 0.1f, 1e-6f);
}

TEST(ClipScalesTest, ClippedNormEqualsC)
{
    // property: scale_e * norm_e == min(norm_e, C)
    const std::vector<double> norms_sq{0.01, 1.0, 4.0, 25.0, 1e6};
    const float c = 1.5f;
    std::vector<float> out;
    clipScales(norms_sq, c, out);
    for (std::size_t e = 0; e < norms_sq.size(); ++e) {
        const double norm = std::sqrt(norms_sq[e]);
        EXPECT_NEAR(out[e] * norm, std::min(norm, double(c)), 1e-5);
    }
}

TEST(ClipScalesTest, ZeroNormSafe)
{
    std::vector<float> out;
    clipScales({0.0}, 1.0f, out);
    EXPECT_EQ(out[0], 1.0f);
}

TEST(ClipScalesTest, NonPositiveClipPanics)
{
    setLogThrowMode(true);
    std::vector<float> out;
    EXPECT_THROW(clipScales({1.0}, 0.0f, out), std::runtime_error);
    setLogThrowMode(false);
}

TEST(ScaleRowsTest, ScalesEachRowIndependently)
{
    Tensor t(3, 2);
    t.fill(2.0f);
    scaleRows(t, {0.5f, 1.0f, 2.0f});
    EXPECT_EQ(t.at(0, 0), 1.0f);
    EXPECT_EQ(t.at(1, 1), 2.0f);
    EXPECT_EQ(t.at(2, 0), 4.0f);
}

TEST(ScaleRowsTest, MismatchedLengthPanics)
{
    setLogThrowMode(true);
    Tensor t(3, 2);
    EXPECT_THROW(scaleRows(t, {1.0f}), std::runtime_error);
    setLogThrowMode(false);
}

} // namespace
} // namespace lazydp
