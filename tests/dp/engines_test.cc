/**
 * @file Equivalence and behaviour tests for the eager DP engines.
 *
 * The paper's baselines DP-SGD(B), DP-SGD(R) and DP-SGD(F) are three
 * implementations of the same mathematical algorithm (Section 2.5);
 * with the keyed noise provider they must produce (near-)identical
 * models from identical inputs.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic_dataset.h"
#include "dp/dp_sgd_b.h"
#include "dp/dp_sgd_f.h"
#include "dp/dp_sgd_r.h"
#include "dp/eana.h"
#include "train/sgd.h"
#include "train/trainer.h"

namespace lazydp {
namespace {

ModelConfig
testModel()
{
    auto mc = ModelConfig::tiny();
    mc.rowsPerTable = 128;
    return mc;
}

DatasetConfig
testData(const ModelConfig &mc, std::size_t batch = 8)
{
    DatasetConfig dc;
    dc.numDense = mc.numDense;
    dc.numTables = mc.numTables;
    dc.rowsPerTable = mc.rowsPerTable;
    dc.pooling = mc.pooling;
    dc.batchSize = batch;
    dc.seed = 4242;
    return dc;
}

TrainHyper
testHyper()
{
    TrainHyper h;
    h.lr = 0.1f;
    h.clipNorm = 0.7f;
    h.noiseMultiplier = 1.3f;
    h.noiseSeed = 0xBEEF;
    return h;
}

/** Max |a - b| over two models' full parameter sets. */
double
maxModelDiff(DlrmModel &a, DlrmModel &b)
{
    double diff = 0.0;
    for (std::size_t t = 0; t < a.tables().size(); ++t) {
        const Tensor &wa = a.tables()[t].weights();
        const Tensor &wb = b.tables()[t].weights();
        for (std::size_t i = 0; i < wa.size(); ++i)
            diff = std::max(diff, std::abs(static_cast<double>(
                                      wa.data()[i] - wb.data()[i])));
    }
    auto mlp_diff = [&](Mlp &ma, Mlp &mb) {
        for (std::size_t l = 0; l < ma.layers().size(); ++l) {
            const Tensor &wa = ma.layers()[l].weight();
            const Tensor &wb = mb.layers()[l].weight();
            for (std::size_t i = 0; i < wa.size(); ++i)
                diff = std::max(diff, std::abs(static_cast<double>(
                                          wa.data()[i] - wb.data()[i])));
        }
    };
    mlp_diff(a.bottomMlp(), b.bottomMlp());
    mlp_diff(a.topMlp(), b.topMlp());
    return diff;
}

/** Run an engine for @p iters over the deterministic dataset. */
template <typename Engine>
void
runEngine(DlrmModel &model, const TrainHyper &hyper, std::uint64_t iters,
          std::size_t batch)
{
    SyntheticDataset ds(testData(model.config(), batch));
    SequentialLoader loader(ds);
    Engine engine(model, hyper);
    Trainer trainer(engine, loader);
    trainer.run(iters);
}

TEST(DpEngineEquivalence, RewightedEqualsOriginal)
{
    // DP-SGD(R) must produce the same model as DP-SGD(B): same clip
    // factors, same reweighted sums, same keyed noise.
    const auto mc = testModel();
    DlrmModel ma(mc, 7);
    DlrmModel mb(mc, 7);
    runEngine<DpSgdB>(ma, testHyper(), 6, 8);
    runEngine<DpSgdR>(mb, testHyper(), 6, 8);
    EXPECT_LT(maxModelDiff(ma, mb), 2e-4);
}

TEST(DpEngineEquivalence, FastEqualsOriginal)
{
    const auto mc = testModel();
    DlrmModel ma(mc, 7);
    DlrmModel mb(mc, 7);
    runEngine<DpSgdB>(ma, testHyper(), 6, 8);
    runEngine<DpSgdF>(mb, testHyper(), 6, 8);
    EXPECT_LT(maxModelDiff(ma, mb), 2e-4);
}

TEST(DpEngineEquivalence, DifferentSeedsDiverge)
{
    const auto mc = testModel();
    DlrmModel ma(mc, 7);
    DlrmModel mb(mc, 7);
    auto h1 = testHyper();
    auto h2 = testHyper();
    h2.noiseSeed = 0xF00D;
    runEngine<DpSgdF>(ma, h1, 3, 8);
    runEngine<DpSgdF>(mb, h2, 3, 8);
    EXPECT_GT(maxModelDiff(ma, mb), 1e-5);
}

TEST(DpEngineBehaviour, DenseNoiseTouchesEveryRow)
{
    // After one DP-SGD(F) step, rows never accessed must still have
    // moved (noise) -- the exact property EANA violates.
    const auto mc = testModel();
    DlrmModel model(mc, 7);
    Tensor before(mc.rowsPerTable, mc.embedDim);
    before.copyFrom(model.tables()[0].weights());

    runEngine<DpSgdF>(model, testHyper(), 1, 4);

    std::size_t changed = 0;
    const Tensor &after = model.tables()[0].weights();
    for (std::size_t i = 0; i < after.size(); ++i)
        changed += after.data()[i] != before.data()[i];
    // every element noised (probability of a zero-noise tie ~ 0)
    EXPECT_GT(changed, after.size() * 99 / 100);
}

TEST(DpEngineBehaviour, EanaLeavesUnaccessedRowsUntouched)
{
    // EANA's privacy weakness, asserted directly (paper Section 2.5).
    const auto mc = testModel();
    DlrmModel model(mc, 7);
    Tensor before(mc.rowsPerTable, mc.embedDim);
    before.copyFrom(model.tables()[0].weights());

    SyntheticDataset ds(testData(mc, 4));
    const MiniBatch mb = ds.batch(0);
    SequentialLoader loader(ds);
    EanaAlgorithm eana(model, testHyper());
    Trainer trainer(eana, loader);
    trainer.run(1);

    std::vector<std::uint32_t> accessed;
    uniqueRows(mb.tableIndices(0), accessed);

    const Tensor &after = model.tables()[0].weights();
    for (std::uint32_t r = 0; r < mc.rowsPerTable; ++r) {
        const bool was_accessed =
            std::binary_search(accessed.begin(), accessed.end(), r);
        bool changed = false;
        for (std::size_t d = 0; d < mc.embedDim; ++d)
            changed |= after.at(r, d) != before.at(r, d);
        if (was_accessed)
            EXPECT_TRUE(changed) << "accessed row " << r << " static";
        else
            EXPECT_FALSE(changed) << "untouched row " << r << " moved";
    }
}

TEST(DpEngineBehaviour, ClippingBoundsUpdateMagnitude)
{
    // With sigma = 0 the embedding update is the clipped gradient sum:
    // per-iteration update norm <= lr * C (batch normalization makes it
    // <= lr * C since sum of B clipped grads / B <= C).
    auto mc = testModel();
    DlrmModel model(mc, 7);
    auto h = testHyper();
    h.noiseMultiplier = 0.0f;
    h.clipNorm = 0.05f;
    h.lr = 1.0f;

    Tensor before(mc.rowsPerTable, mc.embedDim);
    before.copyFrom(model.tables()[0].weights());
    runEngine<DpSgdF>(model, h, 1, 8);

    // total update norm across the whole model is bounded by lr * C
    double upd_sq = 0.0;
    const Tensor &after = model.tables()[0].weights();
    for (std::size_t i = 0; i < after.size(); ++i) {
        const double d = after.data()[i] - before.data()[i];
        upd_sq += d * d;
    }
    EXPECT_LE(std::sqrt(upd_sq), 1.0 * 0.05 + 1e-5);
}

TEST(DpEngineBehaviour, SgdOnlyTouchesAccessedRows)
{
    const auto mc = testModel();
    DlrmModel model(mc, 7);
    Tensor before(mc.rowsPerTable, mc.embedDim);
    before.copyFrom(model.tables()[0].weights());

    SyntheticDataset ds(testData(mc, 4));
    const MiniBatch mb = ds.batch(0);
    SequentialLoader loader(ds);
    TrainHyper h = testHyper();
    SgdAlgorithm sgd(model, h);
    Trainer trainer(sgd, loader);
    trainer.run(1);

    std::vector<std::uint32_t> accessed;
    uniqueRows(mb.tableIndices(0), accessed);
    const Tensor &after = model.tables()[0].weights();
    for (std::uint32_t r = 0; r < mc.rowsPerTable; ++r) {
        if (std::binary_search(accessed.begin(), accessed.end(), r))
            continue;
        for (std::size_t d = 0; d < mc.embedDim; ++d)
            EXPECT_EQ(after.at(r, d), before.at(r, d));
    }
}

TEST(DpEngineBehaviour, PerExampleBytesScaleWithBatch)
{
    const auto mc = testModel();
    DlrmModel m4(mc, 7);
    DlrmModel m8(mc, 7);
    SyntheticDataset ds4(testData(mc, 4));
    SyntheticDataset ds8(testData(mc, 8));
    SequentialLoader l4(ds4);
    SequentialLoader l8(ds8);
    DpSgdB e4(m4, testHyper());
    DpSgdB e8(m8, testHyper());
    Trainer(e4, l4).run(1);
    Trainer(e8, l8).run(1);
    EXPECT_EQ(e8.perExampleBytes(), 2 * e4.perExampleBytes());
}

class BatchSweepTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(BatchSweepTest, FastEqualsReweightedAcrossBatchSizes)
{
    const auto mc = testModel();
    DlrmModel ma(mc, 11);
    DlrmModel mb(mc, 11);
    runEngine<DpSgdR>(ma, testHyper(), 3, GetParam());
    runEngine<DpSgdF>(mb, testHyper(), 3, GetParam());
    EXPECT_LT(maxModelDiff(ma, mb), 2e-4);
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchSweepTest,
                         ::testing::Values(1, 2, 5, 16, 32));

} // namespace
} // namespace lazydp
