/** @file Tests for the dense noise/update kernels. */

#include <gtest/gtest.h>

#include "common/stats.h"
#include "dp/noise_ops.h"

namespace lazydp {
namespace {

TEST(FillDenseTableNoiseTest, EveryRowGetsItsKeyedStream)
{
    NoiseProvider np(5);
    Tensor noise(16, 8);
    fillDenseTableNoise(np, 3, 2, 1.0f, noise);
    for (std::size_t r = 0; r < 16; ++r) {
        std::vector<float> ref(8, 0.0f);
        np.rowNoise(3, 2, r, 1.0f, 1.0f, ref.data(), 8, false);
        for (std::size_t d = 0; d < 8; ++d)
            EXPECT_EQ(noise.at(r, d), ref[d]) << r << "," << d;
    }
}

TEST(FillDenseTableNoiseTest, MomentsMatchSigma)
{
    NoiseProvider np(6);
    Tensor noise(2048, 64);
    fillDenseTableNoise(np, 1, 0, 2.0f, noise);
    RunningStat st;
    st.pushAll(noise.data(), noise.size());
    EXPECT_NEAR(st.mean(), 0.0, 0.02);
    EXPECT_NEAR(st.stddev(), 2.0, 0.02);
}

TEST(AddSparseIntoDenseTest, ScattersRows)
{
    Tensor dense(4, 2);
    dense.fill(1.0f);
    SparseGrad grad;
    grad.rows = {1, 3};
    grad.values.resize(2, 2);
    grad.values.at(0, 0) = 10.0f;
    grad.values.at(1, 1) = 20.0f;
    addSparseIntoDense(grad, dense);
    EXPECT_EQ(dense.at(0, 0), 1.0f);
    EXPECT_EQ(dense.at(1, 0), 11.0f);
    EXPECT_EQ(dense.at(3, 1), 21.0f);
}

TEST(StreamingTableUpdateTest, AppliesScaledSubtraction)
{
    Tensor w(8, 4);
    w.fill(1.0f);
    Tensor upd(8, 4);
    upd.fill(2.0f);
    streamingTableUpdate(w, upd, 0.25f);
    for (std::size_t i = 0; i < w.size(); ++i)
        EXPECT_NEAR(w.data()[i], 0.5f, 1e-6f);
}

TEST(StreamingTableUpdateTest, LargeTensorAllElementsTouched)
{
    // exceeds one parallel block (1<<16 elements)
    Tensor w(1 << 12, 64);
    Tensor upd(1 << 12, 64);
    upd.fill(1.0f);
    streamingTableUpdate(w, upd, 1.0f);
    for (std::size_t i = 0; i < w.size(); i += 997)
        EXPECT_EQ(w.data()[i], -1.0f);
    EXPECT_EQ(w.data()[w.size() - 1], -1.0f);
}

TEST(AddDenseParamNoiseTest, MatchesChunkedRowNoise)
{
    NoiseProvider np(9);
    const std::size_t n = NoiseProvider::kMaxDim + 100; // 2 chunks
    std::vector<float> out(n, 0.0f);
    addDenseParamNoise(np, 2, 7, 1.0f, 1.0f, out.data(), n);

    std::vector<float> ref(n, 0.0f);
    np.rowNoise(2, 7, 0, 1.0f, 1.0f, ref.data(), NoiseProvider::kMaxDim);
    np.rowNoise(2, 7, 1, 1.0f, 1.0f, ref.data() + NoiseProvider::kMaxDim,
                100);
    EXPECT_EQ(out, ref);
}

TEST(AddDenseParamNoiseTest, RowOffsetSeparatesStreams)
{
    NoiseProvider np(9);
    std::vector<float> a(64, 0.0f), b(64, 0.0f);
    addDenseParamNoise(np, 2, 7, 1.0f, 1.0f, a.data(), 64, 0);
    addDenseParamNoise(np, 2, 7, 1.0f, 1.0f, b.data(), 64, 1ull << 40);
    EXPECT_NE(a, b);
}

} // namespace
} // namespace lazydp
