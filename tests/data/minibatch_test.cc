/** @file Unit tests for MiniBatch layout. */

#include <gtest/gtest.h>

#include "data/minibatch.h"

namespace lazydp {
namespace {

TEST(MiniBatchTest, ResizeAllocatesAllFields)
{
    MiniBatch mb;
    mb.resize(8, 3, 2, 5);
    EXPECT_EQ(mb.batchSize, 8u);
    EXPECT_EQ(mb.numTables, 3u);
    EXPECT_EQ(mb.pooling, 2u);
    EXPECT_EQ(mb.dense.rows(), 8u);
    EXPECT_EQ(mb.dense.cols(), 5u);
    EXPECT_EQ(mb.labels.size(), 8u);
    EXPECT_EQ(mb.indices.size(), 3u * 8u * 2u);
}

TEST(MiniBatchTest, TableIndicesViewsAreDisjoint)
{
    MiniBatch mb;
    mb.resize(4, 2, 3, 1);
    auto t0 = mb.tableIndices(0);
    auto t1 = mb.tableIndices(1);
    EXPECT_EQ(t0.size(), 12u);
    EXPECT_EQ(t1.size(), 12u);
    EXPECT_EQ(t0.data() + 12, t1.data());
}

TEST(MiniBatchTest, ExampleIndicesSliceCorrectly)
{
    MiniBatch mb;
    mb.resize(4, 2, 3, 1);
    // fill with a recognizable pattern
    for (std::size_t i = 0; i < mb.indices.size(); ++i)
        mb.indices[i] = static_cast<std::uint32_t>(i);
    auto e = mb.exampleIndices(1, 2); // table 1, example 2
    ASSERT_EQ(e.size(), 3u);
    // offset = table 1 * (4*3) + example 2 * 3 = 12 + 6 = 18
    EXPECT_EQ(e[0], 18u);
    EXPECT_EQ(e[2], 20u);
}

TEST(MiniBatchTest, MutableViewWritesThrough)
{
    MiniBatch mb;
    mb.resize(2, 1, 1, 1);
    mb.tableIndices(0)[1] = 42;
    EXPECT_EQ(mb.indices[1], 42u);
}

TEST(MiniBatchTest, OutOfRangeTablePanics)
{
    setLogThrowMode(true);
    MiniBatch mb;
    mb.resize(2, 2, 1, 1);
    EXPECT_THROW(mb.tableIndices(2), std::runtime_error);
    setLogThrowMode(false);
}

} // namespace
} // namespace lazydp
