/** @file Unit tests for MiniBatch layout. */

#include <gtest/gtest.h>

#include "data/minibatch.h"

namespace lazydp {
namespace {

TEST(MiniBatchTest, ResizeAllocatesAllFields)
{
    MiniBatch mb;
    mb.resize(8, 3, 2, 5);
    EXPECT_EQ(mb.batchSize, 8u);
    EXPECT_EQ(mb.numTables, 3u);
    EXPECT_EQ(mb.pooling, 2u);
    EXPECT_EQ(mb.dense.rows(), 8u);
    EXPECT_EQ(mb.dense.cols(), 5u);
    EXPECT_EQ(mb.labels.size(), 8u);
    EXPECT_EQ(mb.indices.size(), 3u * 8u * 2u);
}

TEST(MiniBatchTest, TableIndicesViewsAreDisjoint)
{
    MiniBatch mb;
    mb.resize(4, 2, 3, 1);
    auto t0 = mb.tableIndices(0);
    auto t1 = mb.tableIndices(1);
    EXPECT_EQ(t0.size(), 12u);
    EXPECT_EQ(t1.size(), 12u);
    EXPECT_EQ(t0.data() + 12, t1.data());
}

TEST(MiniBatchTest, ExampleIndicesSliceCorrectly)
{
    MiniBatch mb;
    mb.resize(4, 2, 3, 1);
    // fill with a recognizable pattern
    for (std::size_t i = 0; i < mb.indices.size(); ++i)
        mb.indices[i] = static_cast<std::uint32_t>(i);
    auto e = mb.exampleIndices(1, 2); // table 1, example 2
    ASSERT_EQ(e.size(), 3u);
    // offset = table 1 * (4*3) + example 2 * 3 = 12 + 6 = 18
    EXPECT_EQ(e[0], 18u);
    EXPECT_EQ(e[2], 20u);
}

TEST(MiniBatchTest, MutableViewWritesThrough)
{
    MiniBatch mb;
    mb.resize(2, 1, 1, 1);
    mb.tableIndices(0)[1] = 42;
    EXPECT_EQ(mb.indices[1], 42u);
}

TEST(MiniBatchTest, OutOfRangeTablePanics)
{
    setLogThrowMode(true);
    MiniBatch mb;
    mb.resize(2, 2, 1, 1);
    EXPECT_THROW(mb.tableIndices(2), std::runtime_error);
    setLogThrowMode(false);
}

/** A lot with recognizable per-field patterns for slice checks. */
MiniBatch
patternedLot(std::size_t batch, std::size_t tables, std::size_t pooling,
             std::size_t dense)
{
    MiniBatch mb;
    mb.resize(batch, tables, pooling, dense);
    for (std::size_t e = 0; e < batch; ++e) {
        mb.labels[e] = static_cast<float>(e);
        for (std::size_t d = 0; d < dense; ++d)
            mb.dense.at(e, d) = static_cast<float>(e * 100 + d);
    }
    for (std::size_t i = 0; i < mb.indices.size(); ++i)
        mb.indices[i] = static_cast<std::uint32_t>(i);
    return mb;
}

TEST(MiniBatchSliceTest, SliceMaterializesTheExampleRange)
{
    const MiniBatch lot = patternedLot(8, 2, 3, 4);
    MiniBatch sub;
    lot.slice(2, 5, sub);

    EXPECT_EQ(sub.batchSize, 3u);
    EXPECT_EQ(sub.numTables, 2u);
    EXPECT_EQ(sub.pooling, 3u);
    for (std::size_t e = 0; e < 3; ++e) {
        EXPECT_EQ(sub.labels[e], lot.labels[2 + e]);
        for (std::size_t d = 0; d < 4; ++d)
            EXPECT_EQ(sub.dense.at(e, d), lot.dense.at(2 + e, d));
        for (std::size_t t = 0; t < 2; ++t) {
            auto want = lot.exampleIndices(t, 2 + e);
            auto got = sub.exampleIndices(t, e);
            ASSERT_EQ(want.size(), got.size());
            for (std::size_t s = 0; s < want.size(); ++s)
                EXPECT_EQ(got[s], want[s]);
        }
    }
}

TEST(MiniBatchSliceTest, FullRangeSliceEqualsTheLot)
{
    const MiniBatch lot = patternedLot(5, 3, 2, 2);
    MiniBatch sub;
    lot.slice(0, 5, sub);
    EXPECT_EQ(sub.indices, lot.indices);
    EXPECT_EQ(sub.labels, lot.labels);
}

TEST(MiniBatchSliceTest, SliceReusesBuffersAcrossCalls)
{
    const MiniBatch lot = patternedLot(8, 2, 2, 3);
    MiniBatch sub;
    lot.slice(0, 4, sub);
    const float *dense_before = sub.dense.data();
    lot.slice(4, 8, sub); // same shape: must not reallocate
    EXPECT_EQ(sub.dense.data(), dense_before);
    EXPECT_EQ(sub.labels[0], 4.0f);
}

TEST(MiniBatchSliceTest, OutOfRangeSlicePanics)
{
    setLogThrowMode(true);
    const MiniBatch lot = patternedLot(4, 1, 1, 1);
    MiniBatch sub;
    EXPECT_THROW(lot.slice(2, 5, sub), std::runtime_error);
    EXPECT_THROW(lot.slice(3, 2, sub), std::runtime_error);
    setLogThrowMode(false);
}

} // namespace
} // namespace lazydp
