/** @file Tests for the deterministic synthetic dataset. */

#include <gtest/gtest.h>

#include "data/synthetic_dataset.h"

namespace lazydp {
namespace {

DatasetConfig
smallConfig()
{
    DatasetConfig cfg;
    cfg.numDense = 4;
    cfg.numTables = 3;
    cfg.rowsPerTable = 100;
    cfg.pooling = 2;
    cfg.batchSize = 16;
    cfg.seed = 99;
    return cfg;
}

TEST(SyntheticDatasetTest, BatchIsPureFunctionOfIteration)
{
    SyntheticDataset ds(smallConfig());
    const MiniBatch a = ds.batch(5);
    const MiniBatch b = ds.batch(5);
    EXPECT_EQ(a.indices, b.indices);
    EXPECT_EQ(a.labels, b.labels);
    for (std::size_t i = 0; i < a.dense.size(); ++i)
        EXPECT_EQ(a.dense.data()[i], b.dense.data()[i]);
}

TEST(SyntheticDatasetTest, DifferentIterationsDiffer)
{
    SyntheticDataset ds(smallConfig());
    const MiniBatch a = ds.batch(1);
    const MiniBatch b = ds.batch(2);
    EXPECT_NE(a.indices, b.indices);
}

TEST(SyntheticDatasetTest, DifferentSeedsDiffer)
{
    auto cfg1 = smallConfig();
    auto cfg2 = smallConfig();
    cfg2.seed = 100;
    SyntheticDataset a(cfg1);
    SyntheticDataset b(cfg2);
    EXPECT_NE(a.batch(0).indices, b.batch(0).indices);
}

TEST(SyntheticDatasetTest, ShapesMatchConfig)
{
    SyntheticDataset ds(smallConfig());
    const MiniBatch mb = ds.batch(0);
    EXPECT_EQ(mb.batchSize, 16u);
    EXPECT_EQ(mb.numTables, 3u);
    EXPECT_EQ(mb.pooling, 2u);
    EXPECT_EQ(mb.dense.cols(), 4u);
}

TEST(SyntheticDatasetTest, IndicesWithinTableRange)
{
    SyntheticDataset ds(smallConfig());
    for (std::uint64_t it = 0; it < 20; ++it) {
        const MiniBatch mb = ds.batch(it);
        for (auto idx : mb.indices)
            EXPECT_LT(idx, 100u);
    }
}

TEST(SyntheticDatasetTest, LabelsAreBinaryAndMixed)
{
    auto cfg = smallConfig();
    cfg.batchSize = 512;
    SyntheticDataset ds(cfg);
    int ones = 0;
    const MiniBatch mb = ds.batch(0);
    for (float y : mb.labels) {
        EXPECT_TRUE(y == 0.0f || y == 1.0f);
        ones += y == 1.0f;
    }
    // planted logistic model should produce both classes
    EXPECT_GT(ones, 32);
    EXPECT_LT(ones, 480);
}

TEST(SyntheticDatasetTest, LabelsCorrelateWithDenseFeatures)
{
    // The planted model makes labels predictable from dense features:
    // examples with higher planted-logit must be labeled 1 more often.
    auto cfg = smallConfig();
    cfg.batchSize = 4096;
    SyntheticDataset ds(cfg);
    const MiniBatch mb = ds.batch(0);
    // proxy: correlation between label and each feature summed -- at
    // least one feature must show non-trivial correlation
    double best = 0.0;
    for (std::size_t d = 0; d < cfg.numDense; ++d) {
        double cov = 0.0, mean_x = 0.0, mean_y = 0.0;
        for (std::size_t e = 0; e < cfg.batchSize; ++e) {
            mean_x += mb.dense.at(e, d);
            mean_y += mb.labels[e];
        }
        mean_x /= cfg.batchSize;
        mean_y /= cfg.batchSize;
        for (std::size_t e = 0; e < cfg.batchSize; ++e)
            cov += (mb.dense.at(e, d) - mean_x) *
                   (mb.labels[e] - mean_y);
        best = std::max(best, std::abs(cov / cfg.batchSize));
    }
    EXPECT_GT(best, 0.02);
}

TEST(SyntheticDatasetTest, FillBatchReusesStorage)
{
    SyntheticDataset ds(smallConfig());
    MiniBatch mb;
    ds.fillBatch(0, mb);
    const auto *ptr = mb.indices.data();
    ds.fillBatch(1, mb); // same shape -> no reallocation of indices
    EXPECT_EQ(mb.indices.data(), ptr);
}

} // namespace
} // namespace lazydp
