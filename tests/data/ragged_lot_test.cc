/**
 * @file
 * Ragged-lot coverage: lots NOT divisible by kLotShards flowing through
 * MiniBatch::slice and the InputQueue ring. The lot-sharded replica
 * runtime slices every lot along lotShardBounds; these tests pin the
 * decomposition (including empty shards and the slice(lo, lo) corner)
 * and the queue's behavior when consecutive batches change size (the
 * trace loader's final partial batch).
 */

#include <gtest/gtest.h>

#include <vector>

#include "data/input_queue.h"
#include "data/minibatch.h"
#include "train/replica.h"

namespace lazydp {
namespace {

/** A lot with recognizable per-field patterns for slice checks. */
MiniBatch
patternedLot(std::size_t batch, std::size_t tables, std::size_t pooling,
             std::size_t dense)
{
    MiniBatch mb;
    mb.resize(batch, tables, pooling, dense);
    for (std::size_t e = 0; e < batch; ++e) {
        mb.labels[e] = static_cast<float>(e);
        for (std::size_t d = 0; d < dense; ++d)
            mb.dense.at(e, d) = static_cast<float>(e * 100 + d);
    }
    for (std::size_t i = 0; i < mb.indices.size(); ++i)
        mb.indices[i] = static_cast<std::uint32_t>(i);
    return mb;
}

/**
 * Shard a lot along lotShardBounds and verify the shards reassemble
 * the lot exactly: every example, label, dense row, and index block
 * lands in exactly one shard at the position the bounds promise.
 */
TEST(RaggedLotTest, ShardSlicesReassembleTheLot)
{
    for (const std::size_t batch : {1u, 2u, 3u, 5u, 6u, 7u, 9u, 10u,
                                    1023u}) {
        SCOPED_TRACE("batch " + std::to_string(batch));
        const MiniBatch lot = patternedLot(batch, 2, 3, 2);
        std::size_t reassembled = 0;
        for (std::size_t s = 0; s < kLotShards; ++s) {
            const auto [lo, hi] = lotShardBounds(batch, s);
            ASSERT_LE(lo, hi);
            ASSERT_LE(hi, batch);
            if (lo == hi)
                continue; // empty shard of a ragged/tiny lot
            MiniBatch sub;
            lot.slice(lo, hi, sub);
            ASSERT_EQ(sub.batchSize, hi - lo);
            ASSERT_EQ(sub.numTables, lot.numTables);
            ASSERT_EQ(sub.pooling, lot.pooling);
            for (std::size_t e = 0; e < sub.batchSize; ++e) {
                ASSERT_EQ(sub.labels[e], lot.labels[lo + e]);
                for (std::size_t d = 0; d < lot.dense.cols(); ++d)
                    ASSERT_EQ(sub.dense.at(e, d),
                              lot.dense.at(lo + e, d));
                for (std::size_t t = 0; t < lot.numTables; ++t) {
                    const auto want = lot.exampleIndices(t, lo + e);
                    const auto got = sub.exampleIndices(t, e);
                    ASSERT_EQ(want.size(), got.size());
                    for (std::size_t k = 0; k < want.size(); ++k)
                        ASSERT_EQ(got[k], want[k]);
                }
            }
            reassembled += sub.batchSize;
        }
        EXPECT_EQ(reassembled, batch)
            << "shard slices lost or duplicated examples";
    }
}

TEST(RaggedLotTest, RaggedBoundsNeverExceedOnePlusFloor)
{
    // Balanced split: shard sizes differ by at most one, larger shards
    // first — the property that keeps replica work balanced on ragged
    // lots.
    for (std::size_t batch = 0; batch <= 64; ++batch) {
        const std::size_t base = batch / kLotShards;
        const std::size_t rem = batch % kLotShards;
        for (std::size_t s = 0; s < kLotShards; ++s) {
            const auto [lo, hi] = lotShardBounds(batch, s);
            const std::size_t want = base + (s < rem ? 1 : 0);
            EXPECT_EQ(hi - lo, want)
                << "batch " << batch << " shard " << s;
        }
    }
}

TEST(RaggedLotTest, EmptySliceIsWellFormed)
{
    const MiniBatch lot = patternedLot(5, 2, 2, 3);
    MiniBatch sub;
    // lo == hi at the start, middle, and end of the lot (the empty
    // shards of a lot smaller than kLotShards).
    for (const std::size_t at : {0u, 3u, 5u}) {
        lot.slice(at, at, sub);
        EXPECT_EQ(sub.batchSize, 0u);
        EXPECT_EQ(sub.numTables, lot.numTables);
        EXPECT_EQ(sub.pooling, lot.pooling);
        EXPECT_TRUE(sub.labels.empty());
        EXPECT_EQ(sub.indices.size(), 0u);
    }
}

TEST(RaggedLotTest, SliceAfterShrinkingBatchKeepsLayout)
{
    // Trace datasets end with a partial batch: a slice buffer sized by
    // a FULL lot must re-slice correctly from a SMALLER lot (stale
    // capacity, fresh shape).
    const MiniBatch big = patternedLot(8, 2, 2, 3);
    const MiniBatch small = patternedLot(3, 2, 2, 3);
    MiniBatch sub;
    big.slice(0, 8, sub);
    small.slice(1, 3, sub);
    ASSERT_EQ(sub.batchSize, 2u);
    EXPECT_EQ(sub.labels[0], 1.0f);
    EXPECT_EQ(sub.labels[1], 2.0f);
    for (std::size_t t = 0; t < 2; ++t) {
        const auto want = small.exampleIndices(t, 1);
        const auto got = sub.exampleIndices(t, 0);
        for (std::size_t k = 0; k < want.size(); ++k)
            EXPECT_EQ(got[k], want[k]);
    }
}

TEST(RaggedLotInputQueueTest, RingCarriesChangingBatchSizes)
{
    // Steady push/pop with sizes cycling 7, 3, 8, 1 (never divisible
    // by kLotShards): slots are reused across pushes of DIFFERENT
    // shapes, and head()/at() must always reflect the pushed shape.
    const std::size_t sizes[] = {7, 3, 8, 1};
    InputQueue q(3);
    std::size_t pushed = 0;
    auto make = [&](std::size_t tag) {
        MiniBatch mb = patternedLot(sizes[tag % 4], 2, 2, 2);
        mb.indices[0] = static_cast<std::uint32_t>(tag);
        return mb;
    };
    q.push(make(pushed++));
    q.push(make(pushed++));
    for (std::size_t it = 0; it < 20; ++it) {
        q.push(make(pushed++));
        ASSERT_TRUE(q.full());
        for (std::size_t i = 0; i < q.size(); ++i) {
            const std::size_t tag = pushed - q.size() + i;
            ASSERT_EQ(q.at(i).indices[0], tag);
            ASSERT_EQ(q.at(i).batchSize, sizes[tag % 4])
                << "slot reuse corrupted the batch shape";
            ASSERT_EQ(q.at(i).labels.size(), sizes[tag % 4]);
        }
        q.pop();
    }
}

TEST(RaggedLotInputQueueTest, HeadStableWhileTailShrinksAndGrows)
{
    // The pipelined Trainer holds a reference to head() while the
    // async stage pushes a DIFFERENT-SIZED batch into another slot;
    // the head's storage must not move or reshape.
    InputQueue q(3);
    q.push(patternedLot(8, 1, 1, 2));
    const MiniBatch &head = q.head();
    const float *dense_ptr = head.dense.data();
    q.push(patternedLot(1, 1, 1, 2));
    q.push(patternedLot(5, 1, 1, 2));
    EXPECT_EQ(&q.head(), &head);
    EXPECT_EQ(head.dense.data(), dense_ptr);
    EXPECT_EQ(head.batchSize, 8u);
    EXPECT_EQ(q.at(1).batchSize, 1u);
    EXPECT_EQ(q.tail().batchSize, 5u);
}

} // namespace
} // namespace lazydp
