/** @file Unit tests for the depth-N InputQueue ring. */

#include <gtest/gtest.h>

#include "data/input_queue.h"

namespace lazydp {
namespace {

MiniBatch
taggedBatch(std::uint32_t tag)
{
    MiniBatch mb;
    mb.resize(1, 1, 1, 1);
    mb.indices[0] = tag;
    return mb;
}

TEST(InputQueueTest, StartsEmpty)
{
    InputQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.full());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.capacity(), 2u); // classic lookahead depth by default
}

TEST(InputQueueTest, HeadAndTailTrackOrder)
{
    InputQueue q;
    q.push(taggedBatch(1));
    EXPECT_EQ(q.head().indices[0], 1u);
    EXPECT_EQ(q.tail().indices[0], 1u);
    q.push(taggedBatch(2));
    EXPECT_EQ(q.head().indices[0], 1u);
    EXPECT_EQ(q.tail().indices[0], 2u);
    EXPECT_TRUE(q.full());
}

TEST(InputQueueTest, PopAdvancesHead)
{
    InputQueue q;
    q.push(taggedBatch(1));
    q.push(taggedBatch(2));
    q.pop();
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.head().indices[0], 2u);
}

TEST(InputQueueTest, AtIndexesFromHead)
{
    InputQueue q(3);
    q.push(taggedBatch(10));
    q.push(taggedBatch(11));
    q.push(taggedBatch(12));
    EXPECT_EQ(q.at(0).indices[0], 10u);
    EXPECT_EQ(q.at(1).indices[0], 11u);
    EXPECT_EQ(q.at(2).indices[0], 12u);
    EXPECT_EQ(&q.at(0), &q.head());
    EXPECT_EQ(&q.at(2), &q.tail());
}

TEST(InputQueueTest, SteadyStatePushPopCycles)
{
    // The trainer's pattern: push next, use head/tail, pop.
    InputQueue q;
    q.push(taggedBatch(0));
    for (std::uint32_t it = 1; it < 50; ++it) {
        q.push(taggedBatch(it));
        EXPECT_EQ(q.head().indices[0], it - 1);
        EXPECT_EQ(q.tail().indices[0], it);
        q.pop();
    }
}

TEST(InputQueueTest, WraparoundAtEveryDepth)
{
    // Sustained FIFO cycling must wrap the ring cleanly for any
    // capacity, with at() always reflecting insertion order.
    for (const std::size_t cap : {1u, 2u, 3u, 5u}) {
        InputQueue q(cap);
        EXPECT_EQ(q.capacity(), cap);
        std::uint32_t next_push = 0, next_pop = 0;
        // prefill
        while (!q.full())
            q.push(taggedBatch(next_push++));
        for (int cycle = 0; cycle < 100; ++cycle) {
            EXPECT_TRUE(q.full());
            for (std::size_t i = 0; i < cap; ++i)
                EXPECT_EQ(q.at(i).indices[0],
                          next_pop + static_cast<std::uint32_t>(i));
            q.pop();
            ++next_pop;
            q.push(taggedBatch(next_push++));
        }
    }
}

TEST(InputQueueTest, DrainAndRefillAcrossWrapPoint)
{
    InputQueue q(3);
    q.push(taggedBatch(1));
    q.push(taggedBatch(2));
    q.pop();
    q.pop();
    EXPECT_TRUE(q.empty());
    // first_ now sits mid-ring; a full refill must wrap correctly
    q.push(taggedBatch(7));
    q.push(taggedBatch(8));
    q.push(taggedBatch(9));
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.head().indices[0], 7u);
    EXPECT_EQ(q.at(1).indices[0], 8u);
    EXPECT_EQ(q.tail().indices[0], 9u);
}

TEST(InputQueueTest, PushMovesBatchStorage)
{
    // Mini-batches own large buffers; push must move, not copy.
    InputQueue q(2);
    MiniBatch mb = taggedBatch(5);
    const std::uint32_t *storage = mb.indices.data();
    q.push(std::move(mb));
    EXPECT_EQ(q.head().indices.data(), storage);
    EXPECT_EQ(q.head().indices[0], 5u);
}

TEST(InputQueueTest, SlotsAreStableAcrossPushes)
{
    // References obtained before a push of ANOTHER slot stay valid --
    // the pipelined Trainer holds the head while the async stage
    // pushes the prefetched batch.
    InputQueue q(3);
    q.push(taggedBatch(1));
    q.push(taggedBatch(2));
    const MiniBatch &head = q.head();
    const std::uint32_t *head_storage = head.indices.data();
    q.push(taggedBatch(3));
    EXPECT_EQ(&q.head(), &head);
    EXPECT_EQ(head.indices.data(), head_storage);
    EXPECT_EQ(head.indices[0], 1u);
}

TEST(InputQueueTest, OverfillPanics)
{
    setLogThrowMode(true);
    InputQueue q;
    q.push(taggedBatch(1));
    q.push(taggedBatch(2));
    EXPECT_THROW(q.push(taggedBatch(3)), std::runtime_error);
    setLogThrowMode(false);
}

TEST(InputQueueTest, OverfillPanicsAtDepthThree)
{
    setLogThrowMode(true);
    InputQueue q(3);
    q.push(taggedBatch(1));
    q.push(taggedBatch(2));
    q.push(taggedBatch(3));
    EXPECT_THROW(q.push(taggedBatch(4)), std::runtime_error);
    setLogThrowMode(false);
}

TEST(InputQueueTest, EmptyAccessPanics)
{
    setLogThrowMode(true);
    InputQueue q;
    EXPECT_THROW(q.head(), std::runtime_error);
    EXPECT_THROW(q.tail(), std::runtime_error);
    EXPECT_THROW(q.pop(), std::runtime_error);
    EXPECT_THROW(q.at(0), std::runtime_error);
    setLogThrowMode(false);
}

TEST(InputQueueTest, AtBeyondSizePanics)
{
    setLogThrowMode(true);
    InputQueue q(3);
    q.push(taggedBatch(1));
    EXPECT_THROW(q.at(1), std::runtime_error);
    setLogThrowMode(false);
}

} // namespace
} // namespace lazydp
