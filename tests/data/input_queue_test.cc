/** @file Unit tests for the two-entry InputQueue. */

#include <gtest/gtest.h>

#include "data/input_queue.h"

namespace lazydp {
namespace {

MiniBatch
taggedBatch(std::uint32_t tag)
{
    MiniBatch mb;
    mb.resize(1, 1, 1, 1);
    mb.indices[0] = tag;
    return mb;
}

TEST(InputQueueTest, StartsEmpty)
{
    InputQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
}

TEST(InputQueueTest, HeadAndTailTrackOrder)
{
    InputQueue q;
    q.push(taggedBatch(1));
    EXPECT_EQ(q.head().indices[0], 1u);
    EXPECT_EQ(q.tail().indices[0], 1u);
    q.push(taggedBatch(2));
    EXPECT_EQ(q.head().indices[0], 1u);
    EXPECT_EQ(q.tail().indices[0], 2u);
}

TEST(InputQueueTest, PopAdvancesHead)
{
    InputQueue q;
    q.push(taggedBatch(1));
    q.push(taggedBatch(2));
    q.pop();
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.head().indices[0], 2u);
}

TEST(InputQueueTest, SteadyStatePushPopCycles)
{
    // The trainer's pattern: push next, use head/tail, pop.
    InputQueue q;
    q.push(taggedBatch(0));
    for (std::uint32_t it = 1; it < 50; ++it) {
        q.push(taggedBatch(it));
        EXPECT_EQ(q.head().indices[0], it - 1);
        EXPECT_EQ(q.tail().indices[0], it);
        q.pop();
    }
}

TEST(InputQueueTest, OverfillPanics)
{
    setLogThrowMode(true);
    InputQueue q;
    q.push(taggedBatch(1));
    q.push(taggedBatch(2));
    EXPECT_THROW(q.push(taggedBatch(3)), std::runtime_error);
    setLogThrowMode(false);
}

TEST(InputQueueTest, EmptyAccessPanics)
{
    setLogThrowMode(true);
    InputQueue q;
    EXPECT_THROW(q.head(), std::runtime_error);
    EXPECT_THROW(q.tail(), std::runtime_error);
    EXPECT_THROW(q.pop(), std::runtime_error);
    setLogThrowMode(false);
}

} // namespace
} // namespace lazydp
