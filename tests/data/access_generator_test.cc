/**
 * @file Distribution tests for the access-pattern generators, including
 * the paper's skew CDF targets (90% of accesses on 36%/10%/0.6% rows).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "data/access_generator.h"

namespace lazydp {
namespace {

TEST(AccessGeneratorTest, UniformCoversRangeEvenly)
{
    const std::uint64_t rows = 64;
    AccessGenerator gen(AccessConfig::uniform(), rows);
    Xoshiro256 rng(1);
    std::vector<int> counts(rows, 0);
    const int draws = 64000;
    for (int i = 0; i < draws; ++i)
        ++counts[gen.draw(rng)];
    for (auto c : counts)
        EXPECT_NEAR(c, draws / static_cast<int>(rows), 250);
}

struct SkewCase
{
    AccessConfig config;
    double expect_hot_frac; // fraction of rows receiving 90% of mass
};

class SkewTest : public ::testing::TestWithParam<SkewCase>
{
};

TEST_P(SkewTest, HotMassLandsOnHotRows)
{
    const auto &[config, hot_frac] = GetParam();
    const std::uint64_t rows = 100000;
    AccessGenerator gen(config, rows);
    Xoshiro256 rng(2);
    const auto hot_limit =
        static_cast<std::uint32_t>(hot_frac * rows);
    const int draws = 400000;
    int hot_hits = 0;
    for (int i = 0; i < draws; ++i)
        hot_hits += gen.draw(rng) < hot_limit;
    EXPECT_NEAR(static_cast<double>(hot_hits) / draws, 0.90, 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    CriteoSkews, SkewTest,
    ::testing::Values(SkewCase{AccessConfig::criteoLow(), 0.36},
                      SkewCase{AccessConfig::criteoMedium(), 0.10},
                      SkewCase{AccessConfig::criteoHigh(), 0.006}));

TEST(AccessGeneratorTest, ZipfRanksAreMonotonicallyPopular)
{
    AccessConfig cfg;
    cfg.pattern = AccessPattern::Zipf;
    cfg.zipfS = 1.2;
    AccessGenerator gen(cfg, 1000);
    Xoshiro256 rng(3);
    std::vector<int> counts(1000, 0);
    for (int i = 0; i < 500000; ++i)
        ++counts[gen.draw(rng)];
    // rank 0 most popular, and decreasing over coarse buckets
    EXPECT_GT(counts[0], counts[9]);
    int head = 0, tail = 0;
    for (int i = 0; i < 10; ++i)
        head += counts[i];
    for (int i = 990; i < 1000; ++i)
        tail += counts[i];
    EXPECT_GT(head, 20 * std::max(tail, 1));
}

TEST(AccessGeneratorTest, ZipfRatioMatchesExponent)
{
    // P(1)/P(2) = 2^s for a Zipf(s) distribution.
    AccessConfig cfg;
    cfg.pattern = AccessPattern::Zipf;
    cfg.zipfS = 1.5;
    AccessGenerator gen(cfg, 10000);
    Xoshiro256 rng(4);
    int c0 = 0, c1 = 0;
    for (int i = 0; i < 2000000; ++i) {
        const auto r = gen.draw(rng);
        c0 += r == 0;
        c1 += r == 1;
    }
    EXPECT_NEAR(static_cast<double>(c0) / c1, std::pow(2.0, 1.5), 0.15);
}

TEST(AccessGeneratorTest, AllDrawsInRange)
{
    for (auto cfg : {AccessConfig::uniform(), AccessConfig::criteoHigh()}) {
        AccessGenerator gen(cfg, 17);
        Xoshiro256 rng(5);
        for (int i = 0; i < 10000; ++i)
            EXPECT_LT(gen.draw(rng), 17u);
    }
}

TEST(AccessGeneratorTest, SingleRowTableAlwaysReturnsZero)
{
    AccessGenerator gen(AccessConfig::criteoHigh(), 1);
    Xoshiro256 rng(6);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(gen.draw(rng), 0u);
}

TEST(AccessGeneratorTest, HotColdDegenerateFullHot)
{
    AccessConfig cfg;
    cfg.pattern = AccessPattern::HotCold;
    cfg.hotFrac = 1.0;
    cfg.hotMass = 0.9;
    AccessGenerator gen(cfg, 100);
    Xoshiro256 rng(7);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[gen.draw(rng)];
    // degenerates to uniform
    for (auto c : counts)
        EXPECT_NEAR(c, 1000, 250);
}

} // namespace
} // namespace lazydp
