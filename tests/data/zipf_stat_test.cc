/**
 * @file
 * Statistical validation of the Zipfian access generator.
 *
 * The serving load generator (serve/load_generator.h) draws its query
 * skew through AccessGenerator, so the power law has to actually hold:
 * under Zipf(s), P(rank r) ~ r^-s, i.e. the rank-frequency plot is a
 * line of slope -s in log-log space. These tests draw a large
 * fixed-seed sample and fit that slope by least squares over the head
 * ranks (where counts are large and the discrete-tail truncation bias
 * is negligible), asserting it lands within tolerance of -s.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "data/access_generator.h"

namespace lazydp {
namespace {

/**
 * Draw @p draws samples and return per-row counts sorted descending
 * (empirical rank-frequency).
 */
std::vector<std::uint64_t>
rankFrequency(const AccessGenerator &gen, std::uint64_t rows,
              std::uint64_t draws, std::uint64_t seed)
{
    std::vector<std::uint64_t> counts(rows, 0);
    Xoshiro256 rng(seed);
    for (std::uint64_t i = 0; i < draws; ++i)
        ++counts[gen.draw(rng)];
    std::sort(counts.begin(), counts.end(),
              std::greater<std::uint64_t>());
    return counts;
}

/**
 * Least-squares slope of log(count) vs log(rank) over the first
 * @p head ranks (1-based ranks).
 */
double
logLogSlope(const std::vector<std::uint64_t> &counts, std::size_t head)
{
    double sx = 0.0;
    double sy = 0.0;
    double sxx = 0.0;
    double sxy = 0.0;
    double n = 0.0;
    for (std::size_t r = 0; r < head; ++r) {
        if (counts[r] == 0)
            break; // past the sampled support
        const double x = std::log(static_cast<double>(r + 1));
        const double y = std::log(static_cast<double>(counts[r]));
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
        n += 1.0;
    }
    return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

TEST(ZipfStatTest, RankFrequencySlopeMatchesExponent)
{
    // s in the range real RecSys traffic reports; fixed seed, 2M draws
    // over 4096 rows give smooth head counts.
    for (const double s : {1.05, 1.3}) {
        SCOPED_TRACE("s=" + std::to_string(s));
        AccessConfig cfg;
        cfg.pattern = AccessPattern::Zipf;
        cfg.zipfS = s;
        const std::uint64_t rows = 4096;
        const AccessGenerator gen(cfg, rows);
        const auto counts =
            rankFrequency(gen, rows, 2'000'000, 0x21Bf5EED);

        // Head-only fit (top 64 ranks): the asymptotic power law holds
        // there; deeper ranks are noise- and truncation-dominated.
        const double slope = logLogSlope(counts, 64);
        EXPECT_NEAR(slope, -s, 0.08) << "fitted " << slope;
    }
}

TEST(ZipfStatTest, HeadMassConcentratesWithLargerExponent)
{
    const std::uint64_t rows = 4096;
    const std::uint64_t draws = 500'000;
    auto head_mass = [&](double s) {
        AccessConfig cfg;
        cfg.pattern = AccessPattern::Zipf;
        cfg.zipfS = s;
        const AccessGenerator gen(cfg, rows);
        const auto counts = rankFrequency(gen, rows, draws, 99);
        std::uint64_t head = 0;
        for (std::size_t r = 0; r < 16; ++r)
            head += counts[r];
        return static_cast<double>(head) /
               static_cast<double>(draws);
    };
    const double low = head_mass(1.05);
    const double high = head_mass(1.6);
    EXPECT_GT(high, low); // heavier exponent => heavier head
    EXPECT_GT(high, 0.5); // s=1.6: top-16 rows dominate
}

TEST(ZipfStatTest, FixedSeedIsReproducible)
{
    AccessConfig cfg;
    cfg.pattern = AccessPattern::Zipf;
    cfg.zipfS = 1.2;
    const AccessGenerator gen(cfg, 1024);
    Xoshiro256 a(7);
    Xoshiro256 b(7);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(gen.draw(a), gen.draw(b));
}

} // namespace
} // namespace lazydp
