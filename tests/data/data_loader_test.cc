/** @file Tests for the sequential and Poisson loaders. */

#include <gtest/gtest.h>

#include "common/stats.h"
#include "data/data_loader.h"

namespace lazydp {
namespace {

DatasetConfig
smallConfig()
{
    DatasetConfig cfg;
    cfg.numDense = 2;
    cfg.numTables = 2;
    cfg.rowsPerTable = 50;
    cfg.batchSize = 32;
    return cfg;
}

TEST(SequentialLoaderTest, StreamsDatasetBatchesInOrder)
{
    SyntheticDataset ds(smallConfig());
    SequentialLoader loader(ds);
    const MiniBatch b0 = loader.next();
    const MiniBatch b1 = loader.next();
    EXPECT_EQ(b0.indices, ds.batch(0).indices);
    EXPECT_EQ(b1.indices, ds.batch(1).indices);
    EXPECT_EQ(loader.produced(), 2u);
}

TEST(PoissonLoaderTest, BatchSizesVaryAroundExpectation)
{
    SyntheticDataset ds(smallConfig());
    PoissonLoader loader(ds, /*population=*/100000,
                         /*expected_batch=*/256, /*seed=*/7);
    EXPECT_NEAR(loader.samplingRate(), 256.0 / 100000.0, 1e-12);

    RunningStat sizes;
    for (int i = 0; i < 300; ++i)
        sizes.push(static_cast<double>(loader.next().batchSize));
    EXPECT_NEAR(sizes.mean(), 256.0, 5.0);
    // Binomial stddev = sqrt(Nq(1-q)) ~ 16
    EXPECT_GT(sizes.stddev(), 8.0);
    EXPECT_LT(sizes.stddev(), 32.0);
}

TEST(PoissonLoaderTest, BatchContentShapesStayConsistent)
{
    SyntheticDataset ds(smallConfig());
    PoissonLoader loader(ds, 10000, 64, 3);
    for (int i = 0; i < 10; ++i) {
        const MiniBatch mb = loader.next();
        EXPECT_EQ(mb.numTables, 2u);
        EXPECT_EQ(mb.dense.rows(), mb.batchSize);
        EXPECT_EQ(mb.labels.size(), mb.batchSize);
        EXPECT_EQ(mb.indices.size(), 2u * mb.batchSize * mb.pooling);
    }
}

TEST(PoissonLoaderTest, RejectsExpectationAbovePopulation)
{
    setLogThrowMode(true);
    SyntheticDataset ds(smallConfig());
    EXPECT_THROW(PoissonLoader(ds, 10, 100, 1), std::runtime_error);
    setLogThrowMode(false);
}

} // namespace
} // namespace lazydp
