/** @file Record/replay tests for trace-driven workloads. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <unistd.h>

#include "data/trace_dataset.h"

namespace lazydp {
namespace {

class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "lazydp_trace_" +
                std::to_string(::getpid()) + ".txt";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    static DatasetConfig
    config()
    {
        DatasetConfig dc;
        dc.numDense = 3;
        dc.numTables = 2;
        dc.rowsPerTable = 50;
        dc.pooling = 2;
        dc.batchSize = 4;
        dc.seed = 5;
        return dc;
    }

    std::string path_;
};

TEST_F(TraceTest, RecordReplayRoundTrip)
{
    SyntheticDataset ds(config());
    TraceDataset::record(ds, /*examples=*/12, path_);
    TraceDataset trace(path_);

    EXPECT_EQ(trace.examples(), 12u);
    EXPECT_EQ(trace.numDense(), 3u);
    EXPECT_EQ(trace.numTables(), 2u);
    EXPECT_EQ(trace.pooling(), 2u);

    // replayed batch 0 == recorded batch 0 (indices exactly, dense to
    // text-format precision)
    const MiniBatch orig = ds.batch(0);
    const MiniBatch replay = trace.batch(0, 4);
    EXPECT_EQ(orig.indices, replay.indices);
    EXPECT_EQ(orig.labels, replay.labels);
    for (std::size_t i = 0; i < orig.dense.size(); ++i)
        EXPECT_NEAR(orig.dense.data()[i], replay.dense.data()[i], 1e-4);
}

TEST_F(TraceTest, WrapsAroundAtEpochBoundary)
{
    SyntheticDataset ds(config());
    TraceDataset::record(ds, 6, path_);
    TraceDataset trace(path_);
    // batch of 4 starting at iter 1 covers examples 4,5,0,1
    const MiniBatch wrapped = trace.batch(1, 4);
    const MiniBatch first = trace.batch(0, 4);
    // example 2 of `wrapped` (global index 6 % 6 = 0) equals example 0
    EXPECT_EQ(wrapped.labels[2], first.labels[0]);
    for (std::size_t t = 0; t < 2; ++t) {
        auto w = wrapped.exampleIndices(t, 2);
        auto f = first.exampleIndices(t, 0);
        for (std::size_t s = 0; s < 2; ++s)
            EXPECT_EQ(w[s], f[s]);
    }
}

TEST_F(TraceTest, LoaderStreamsBatches)
{
    SyntheticDataset ds(config());
    TraceDataset::record(ds, 8, path_);
    TraceDataset trace(path_);
    TraceLoader loader(trace, 4);
    const MiniBatch b0 = loader.next();
    const MiniBatch b1 = loader.next();
    EXPECT_EQ(loader.produced(), 2u);
    EXPECT_EQ(b0.batchSize, 4u);
    EXPECT_NE(b0.indices, b1.indices);
}

TEST_F(TraceTest, MalformedHeaderIsFatal)
{
    setLogThrowMode(true);
    {
        std::ofstream os(path_);
        os << "# not-a-trace v9\n";
    }
    EXPECT_THROW(TraceDataset{path_}, std::runtime_error);
    setLogThrowMode(false);
}

TEST_F(TraceTest, ShortLineIsFatal)
{
    setLogThrowMode(true);
    {
        std::ofstream os(path_);
        os << "# lazydp-trace v1 dense=3 tables=2 pooling=2\n";
        os << "1 | 0.5 0.5 0.5 | 1 2 3\n"; // only 3 of 4 indices
    }
    EXPECT_THROW(TraceDataset{path_}, std::runtime_error);
    setLogThrowMode(false);
}

TEST_F(TraceTest, MissingFileIsFatal)
{
    setLogThrowMode(true);
    EXPECT_THROW(TraceDataset{"/nonexistent/trace.txt"},
                 std::runtime_error);
    setLogThrowMode(false);
}

TEST_F(TraceTest, CommentsAndBlankLinesSkipped)
{
    {
        std::ofstream os(path_);
        os << "# lazydp-trace v1 dense=1 tables=1 pooling=1\n";
        os << "\n# a comment\n";
        os << "1 | 0.25 | 7\n";
    }
    TraceDataset trace(path_);
    EXPECT_EQ(trace.examples(), 1u);
    const MiniBatch mb = trace.batch(0, 1);
    EXPECT_EQ(mb.labels[0], 1.0f);
    EXPECT_EQ(mb.tableIndices(0)[0], 7u);
}

} // namespace
} // namespace lazydp
