/** @file Unit tests for the deadline-batching request queue. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "serve/request_batcher.h"

namespace lazydp {
namespace {

PendingRequestPtr
makeRequest()
{
    return std::make_shared<PendingRequest>();
}

TEST(RequestBatcherTest, FullBatchDispatchesWithoutDeadline)
{
    RequestBatcher b({/*maxBatch=*/4, /*maxDelayUs=*/10'000'000});
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(b.push(makeRequest()));
    std::vector<PendingRequestPtr> out;
    // A full batch must dispatch immediately; a 10-second deadline
    // would time the test out if fullness were ignored.
    EXPECT_EQ(b.pop(out), 4u);
    EXPECT_EQ(out.size(), 4u);
}

TEST(RequestBatcherTest, MaxBatchCapsAndPreservesArrivalOrder)
{
    RequestBatcher b({/*maxBatch=*/4, /*maxDelayUs=*/100});
    std::vector<PendingRequestPtr> pushed;
    for (int i = 0; i < 10; ++i) {
        pushed.push_back(makeRequest());
        ASSERT_TRUE(b.push(pushed.back()));
    }
    std::vector<PendingRequestPtr> out;
    std::size_t taken = 0;
    while (taken < 10) {
        const std::size_t n = b.pop(out);
        ASSERT_GT(n, 0u);
        ASSERT_LE(n, 4u);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(out[i].get(), pushed[taken + i].get());
        taken += n;
    }
    EXPECT_EQ(taken, 10u);
    EXPECT_EQ(b.depth(), 0u);
}

TEST(RequestBatcherTest, DeadlineFlushesAPartialBatch)
{
    RequestBatcher b({/*maxBatch=*/64, /*maxDelayUs=*/20'000});
    ASSERT_TRUE(b.push(makeRequest()));
    std::vector<PendingRequestPtr> out;
    const auto start = std::chrono::steady_clock::now();
    EXPECT_EQ(b.pop(out), 1u); // far from full: only the deadline fires
    const double waited =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    // The single queued request must come back around the 20 ms
    // deadline -- generous upper bound for slow CI machines.
    EXPECT_LT(waited, 5.0);
}

TEST(RequestBatcherTest, NoBatchingPolicyDispatchesImmediately)
{
    RequestBatcher b({/*maxBatch=*/1, /*maxDelayUs=*/10'000'000});
    ASSERT_TRUE(b.push(makeRequest()));
    std::vector<PendingRequestPtr> out;
    EXPECT_EQ(b.pop(out), 1u); // maxBatch=1 never waits on the deadline
}

TEST(RequestBatcherTest, StopDrainsThenSignalsExit)
{
    RequestBatcher b({/*maxBatch=*/2, /*maxDelayUs=*/100});
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(b.push(makeRequest()));
    b.stop();
    auto rejected = makeRequest();
    EXPECT_FALSE(b.push(rejected)); // rejected after stop...
    // ...but never silently dropped: the batcher completed it, so a
    // client blocked in wait() wakes with an explicit status.
    EXPECT_EQ(rejected->wait().status, ServeResult::Status::Shutdown);

    std::vector<PendingRequestPtr> out;
    std::size_t taken = 0;
    std::size_t n;
    while ((n = b.pop(out)) > 0)
        taken += n;
    EXPECT_EQ(taken, 5u); // everything queued before stop still drains
    EXPECT_EQ(b.pop(out), 0u); // and the exit signal is sticky
}

TEST(RequestBatcherTest, ConcurrentConsumersNeverSeeAFalseExitSignal)
{
    // Regression: with several consumers past the phase-1 wait, one
    // can drain the queue while another sits in the phase-2 deadline
    // wait; the loser must go back to waiting, NOT return 0 (the exit
    // signal) while the batcher is live -- returning 0 would
    // permanently kill a serve lane.
    RequestBatcher b({/*maxBatch=*/8, /*maxDelayUs=*/2000});
    constexpr std::size_t kRequests = 600;
    std::atomic<std::size_t> taken{0};
    std::atomic<bool> false_exit{false};

    std::vector<std::thread> consumers;
    for (int c = 0; c < 3; ++c) {
        consumers.emplace_back([&b, &taken, &false_exit] {
            std::vector<PendingRequestPtr> out;
            for (;;) {
                const std::size_t n = b.pop(out);
                if (n == 0) {
                    // Only legitimate after stop() with a dry queue.
                    if (b.push(makeRequest()))
                        false_exit.store(true);
                    return;
                }
                taken.fetch_add(n);
            }
        });
    }
    // Bursty producer: bursts wake all consumers at once, maximizing
    // drained-queue races in the deadline wait.
    for (std::size_t i = 0; i < kRequests;) {
        for (std::size_t j = 0; j < 5 && i < kRequests; ++j, ++i)
            ASSERT_TRUE(b.push(makeRequest()));
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    while (taken.load() < kRequests)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    b.stop();
    for (auto &t : consumers)
        t.join();
    EXPECT_EQ(taken.load(), kRequests);
    EXPECT_FALSE(false_exit.load());
}

TEST(RequestBatcherTest, StopWakesABlockedConsumer)
{
    RequestBatcher b({/*maxBatch=*/8, /*maxDelayUs=*/1000});
    std::vector<PendingRequestPtr> out;
    std::thread consumer([&b, &out] {
        std::vector<PendingRequestPtr> local;
        EXPECT_EQ(b.pop(local), 0u); // empty + stopped -> exit
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    b.stop();
    consumer.join();
}

} // namespace
} // namespace lazydp
