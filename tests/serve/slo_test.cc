/**
 * @file
 * SLO-awareness tests: admission control + priority shedding order,
 * deadline expiry, per-lane routing determinism, work stealing,
 * drain-on-stop status conservation, and open-loop arrival-schedule
 * drift (the coordinated-omission precondition).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "serve/load_generator.h"
#include "serve/request_batcher.h"
#include "serve/serve_engine.h"
#include "serve/snapshot_store.h"

namespace lazydp {
namespace {

PendingRequestPtr
request(std::uint32_t priority, std::uint64_t deadline_us = 0)
{
    auto r = std::make_shared<PendingRequest>();
    r->slo = SloClass{deadline_us, priority};
    return r;
}

ModelConfig
tinyConfig()
{
    auto mc = ModelConfig::tiny();
    mc.rowsPerTable = 64;
    return mc;
}

/** All-zeros query of the right shape for @p mc. */
ServeQuery
zeroQuery(const ModelConfig &mc)
{
    ServeQuery q;
    q.dense.assign(mc.numDense, 0.0f);
    q.indices.assign(mc.numTables * mc.pooling, 0);
    return q;
}

TEST(SloShedTest, RejectNewestShedsArrivalAtUniformPriority)
{
    BatchPolicy p{/*maxBatch=*/64, /*maxDelayUs=*/10'000'000};
    p.queueCap = 2;
    p.shedPolicy = ShedPolicy::RejectNewest;
    RequestBatcher b(p); // one lane, no consumer

    ASSERT_TRUE(b.push(request(1)));
    ASSERT_TRUE(b.push(request(1)));
    auto arrival = request(1);
    // Everything queued ranks equal: the arrival itself is shed.
    EXPECT_FALSE(b.push(arrival));
    EXPECT_EQ(arrival->wait().status, ServeResult::Status::Shed);
    EXPECT_EQ(b.depth(), 2u);
    EXPECT_EQ(b.stats().shed, 1u);
}

TEST(SloShedTest, RejectNewestPrefersAQueuedLowerPriorityVictim)
{
    BatchPolicy p{/*maxBatch=*/64, /*maxDelayUs=*/10'000'000};
    p.queueCap = 2;
    p.shedPolicy = ShedPolicy::RejectNewest;
    RequestBatcher b(p);

    auto low = request(0);
    ASSERT_TRUE(b.push(low));
    ASSERT_TRUE(b.push(request(1)));
    // A STRICTLY lower-priority request queues: it is the victim, the
    // (higher-priority) newcomer is admitted.
    EXPECT_TRUE(b.push(request(1)));
    EXPECT_EQ(low->wait().status, ServeResult::Status::Shed);
    EXPECT_EQ(b.depth(), 2u);
}

TEST(SloShedTest, DropOldestShedsOldestOfTheLowestPriority)
{
    BatchPolicy p{/*maxBatch=*/64, /*maxDelayUs=*/10'000'000};
    p.queueCap = 2;
    p.shedPolicy = ShedPolicy::DropOldest;
    RequestBatcher b(p);

    auto oldest = request(1);
    ASSERT_TRUE(b.push(oldest));
    ASSERT_TRUE(b.push(request(1)));
    // Uniform priority: the oldest queued request is the victim.
    EXPECT_TRUE(b.push(request(1)));
    EXPECT_EQ(oldest->wait().status, ServeResult::Status::Shed);
    EXPECT_EQ(b.depth(), 2u);
}

TEST(SloShedTest, DropOldestNeverLetsALowArrivalDisplaceHigherWork)
{
    BatchPolicy p{/*maxBatch=*/64, /*maxDelayUs=*/10'000'000};
    p.queueCap = 2;
    p.shedPolicy = ShedPolicy::DropOldest;
    RequestBatcher b(p);

    ASSERT_TRUE(b.push(request(1)));
    ASSERT_TRUE(b.push(request(1)));
    auto low = request(0);
    // The arrival ranks BELOW everything queued: shedding a queued
    // request for it would invert the priority order, so it is shed
    // itself even under DropOldest.
    EXPECT_FALSE(b.push(low));
    EXPECT_EQ(low->wait().status, ServeResult::Status::Shed);
    EXPECT_EQ(b.depth(), 2u);
}

TEST(SloShedTest, QueueDepthStaysBoundedAtTenTimesCapacity)
{
    // Regression: the queue used to be unbounded -- a stalled consumer
    // meant depth() (and memory, and queueing delay) grew without
    // limit. Push 10x the cap with no consumer: depth must cap and
    // every excess request must complete as Shed (not vanish).
    BatchPolicy p{/*maxBatch=*/64, /*maxDelayUs=*/10'000'000};
    p.queueCap = 8;
    p.shedPolicy = ShedPolicy::RejectNewest;
    RequestBatcher b(p);

    std::vector<PendingRequestPtr> all;
    std::size_t rejected = 0;
    for (int i = 0; i < 80; ++i) {
        all.push_back(request(1));
        if (!b.push(all.back()))
            ++rejected;
        EXPECT_LE(b.depth(), 8u);
    }
    EXPECT_EQ(b.depth(), 8u);
    EXPECT_EQ(rejected, 72u);
    std::size_t shed = 0;
    for (const auto &r : all)
        if (r->done() && r->wait().status == ServeResult::Status::Shed)
            ++shed;
    EXPECT_EQ(shed, 72u); // every excess request completed, none lost
    EXPECT_EQ(b.stats().accepted, 8u);
    EXPECT_EQ(b.stats().shed, 72u);
}

TEST(SloDeadlineTest, ExpiredRequestsNeverReachTheConsumer)
{
    RequestBatcher b({/*maxBatch=*/2, /*maxDelayUs=*/10'000'000});
    auto doomed = request(1, /*deadline_us=*/1);
    ASSERT_TRUE(b.push(doomed));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    auto live = request(1); // no deadline: never expires
    ASSERT_TRUE(b.push(live));

    // Two queued = a full batch, but the expired one is completed on
    // the way out instead of being handed over.
    std::vector<PendingRequestPtr> out;
    EXPECT_EQ(b.pop(out), 1u);
    EXPECT_EQ(out[0].get(), live.get());
    EXPECT_EQ(doomed->wait().status, ServeResult::Status::Expired);
    EXPECT_EQ(b.stats().expired, 1u);
}

TEST(SloDeadlineTest, EngineExpiresPastDeadlineRequestsUnscored)
{
    const ModelConfig mc = tinyConfig();
    DlrmModel model(mc, 5);
    ModelSnapshotStore store;
    store.publish(model, 0);
    ThreadPool pool(1);
    ServeOptions opts;
    opts.threads = 1;
    // Batch ripens long after the 1 us deadlines have passed, so every
    // request is expired by the time a lane first looks at it.
    opts.batch.maxBatch = 64;
    opts.batch.maxDelayUs = 50'000;
    ServeEngine engine(store, mc, pool, opts);

    std::vector<PendingRequestPtr> handles;
    for (int i = 0; i < 4; ++i)
        handles.push_back(
            engine.submit(zeroQuery(mc), SloClass{1, 1}));
    for (auto &h : handles) {
        const ServeResult &r = h->wait();
        EXPECT_EQ(r.status, ServeResult::Status::Expired);
        EXPECT_EQ(r.version, 0u); // never scored
    }
    const ServeStats stats = engine.stats();
    EXPECT_EQ(stats.expired, 4u);
    EXPECT_EQ(stats.served, 0u); // no wasted forward pass
    engine.stop();
}

TEST(SloShardTest, PushRoutingIsDeterministic)
{
    BatchPolicy p{/*maxBatch=*/64, /*maxDelayUs=*/10'000'000};
    RequestBatcher b(p, /*lanes=*/4);
    ASSERT_EQ(b.lanes(), 4u);

    // With no consumer, per-shard depths must reproduce exactly the
    // counts routeFor predicts for arrival sequence 0..63.
    constexpr std::uint64_t kPushes = 64;
    std::size_t expected[4] = {0, 0, 0, 0};
    for (std::uint64_t seq = 0; seq < kPushes; ++seq)
        ++expected[RequestBatcher::routeFor(seq, 4)];
    for (std::uint64_t seq = 0; seq < kPushes; ++seq)
        ASSERT_TRUE(b.push(request(1)));
    for (std::size_t lane = 0; lane < 4; ++lane)
        EXPECT_EQ(b.depth(lane), expected[lane]) << "lane " << lane;
    EXPECT_EQ(b.depth(), kPushes);
    // The hash must actually spread a sequential burst, not pile it
    // onto one shard (the point of decorrelating the low bits).
    for (std::size_t lane = 0; lane < 4; ++lane)
        EXPECT_GT(expected[lane], 0u);
}

TEST(SloShardTest, ConsumerStealsReadyBatchesFromSiblingShards)
{
    BatchPolicy p{/*maxBatch=*/4, /*maxDelayUs=*/1000};
    RequestBatcher b(p, /*lanes=*/2);
    constexpr std::size_t kRequests = 200;
    for (std::size_t i = 0; i < kRequests; ++i)
        ASSERT_TRUE(b.push(request(1)));
    // Let every partial batch ripen so all queued work is stealable.
    std::this_thread::sleep_for(std::chrono::milliseconds(3));

    // A single consumer on lane 0 must still drain BOTH shards: the
    // hash spreads the pushes, so everything on shard 1 can only reach
    // it by stealing.
    std::vector<PendingRequestPtr> out;
    std::size_t taken = 0;
    while (taken < kRequests) {
        const std::size_t n = b.pop(0, out);
        ASSERT_GT(n, 0u);
        taken += n;
    }
    EXPECT_EQ(taken, kRequests);
    EXPECT_EQ(b.depth(), 0u);
    EXPECT_GT(b.stats().stolenBatches, 0u);
    b.stop();
}

TEST(SloShutdownTest, EveryRequestCompletesWithExactlyOneStatus)
{
    // Clients race engine.stop(): no handle may hang (the old code
    // returned nullptr after stop -- a silent drop), and the status
    // counts must conserve: ok + shed + expired + shutdown == issued.
    const ModelConfig mc = tinyConfig();
    DlrmModel model(mc, 11);
    ModelSnapshotStore store;
    store.publish(model, 0);
    ThreadPool pool(2);
    ServeOptions opts;
    opts.threads = 2;
    opts.batch.maxBatch = 8;
    opts.batch.maxDelayUs = 200;
    opts.batch.queueCap = 4; // small: admission control stays busy
    opts.batch.shedPolicy = ShedPolicy::DropOldest;
    ServeEngine engine(store, mc, pool, opts);

    constexpr std::size_t kClients = 4;
    constexpr std::size_t kPerClient = 100;
    std::vector<std::vector<PendingRequestPtr>> handles(kClients);
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&engine, &mc, &handles, c] {
            for (std::size_t i = 0; i < kPerClient; ++i)
                handles[c].push_back(engine.submit(
                    zeroQuery(mc), SloClass{/*deadlineUs=*/0, 1}));
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    engine.stop(); // races the submitting clients
    for (auto &t : clients)
        t.join();

    std::size_t ok = 0, shed = 0, expired = 0, shutdown = 0;
    for (const auto &perClient : handles) {
        ASSERT_EQ(perClient.size(), kPerClient);
        for (const auto &h : perClient) {
            ASSERT_NE(h, nullptr);
            switch (h->wait().status) { // must return, not hang
            case ServeResult::Status::Ok: ++ok; break;
            case ServeResult::Status::Shed: ++shed; break;
            case ServeResult::Status::Expired: ++expired; break;
            case ServeResult::Status::Shutdown: ++shutdown; break;
            }
        }
    }
    EXPECT_EQ(ok + shed + expired + shutdown, kClients * kPerClient);
    const ServeStats stats = engine.stats();
    EXPECT_EQ(stats.served, ok);
    EXPECT_EQ(stats.shed, shed);
    EXPECT_EQ(stats.expired, expired);
    EXPECT_EQ(stats.shutdown, shutdown);
}

TEST(SloArrivalTest, SteadyOffsetsComputeFromTheAbsoluteStart)
{
    // Regression: the dispatcher used to schedule arrival i at
    // start + i * duration_cast<Clock::duration>(1/qps) -- the cast
    // truncates once, then the error is MULTIPLIED by the request id
    // (e.g. at 3000 qps, ~333 ns/arrival ~= 0.1% rate error; worse at
    // rates that divide the tick poorly). Offsets must instead be
    // exact per id: off[i] == i / qps to double precision.
    LoadOptions o;
    o.qps = 1e6;
    o.requests = 1'000'000;
    const auto off = LoadGenerator::arrivalOffsets(o);
    ASSERT_EQ(off.size(), o.requests);
    for (const std::uint64_t id :
         {0ull, 1ull, 999ull, 10'000ull, 123'456ull, 999'999ull})
        EXPECT_NEAR(off[id], static_cast<double>(id) * 1e-6, 1e-9)
            << "id " << id;
}

TEST(SloArrivalTest, ScenarioOffsetsAreMonotoneAndStartAtZero)
{
    for (const Scenario sc : {Scenario::Diurnal, Scenario::FlashCrowd,
                              Scenario::Steady}) {
        LoadOptions o;
        o.qps = 5000.0;
        o.requests = 10'000;
        o.scenario = sc;
        const auto off = LoadGenerator::arrivalOffsets(o);
        ASSERT_EQ(off.size(), o.requests);
        EXPECT_EQ(off[0], 0.0);
        for (std::size_t i = 1; i < off.size(); ++i)
            ASSERT_LT(off[i - 1], off[i]) << scenarioName(sc);
    }
    // FlashCrowd compresses the middle fifth: the whole run must take
    // LESS wall time than steady at the same base rate.
    LoadOptions steady;
    steady.qps = 5000.0;
    steady.requests = 10'000;
    LoadOptions flash = steady;
    flash.scenario = Scenario::FlashCrowd;
    EXPECT_LT(LoadGenerator::arrivalOffsets(flash).back(),
              LoadGenerator::arrivalOffsets(steady).back());
}

} // namespace
} // namespace lazydp
