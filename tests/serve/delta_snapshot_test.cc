/**
 * @file
 * Delta (copy-on-write) snapshot publishing:
 *
 * 1. PARITY: the model a Delta store publishes is row-for-row
 *    bit-identical to a Full store's copy -- across engines (sparse
 *    oracles AND dense-fallback ones) x pipeline {off, on} x replicas
 *    {1, 4}, publishing after every iteration.
 * 2. SHARING INVARIANTS: pages whose rows were untouched since the
 *    previous version are the SAME TablePage object (pointer-equal) in
 *    both snapshots; the tracker is consumed (reset) by publish.
 * 3. RECYCLING: retired shells and pages flow back through the
 *    free-list once their readers drop them.
 * 4. SEALING: mprotect'ed pages still serve correct bits.
 * 5. LIVENESS (TSan leg): serve lanes score concurrently with a
 *    --publish-every=1 delta-publishing trainer.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/factory.h"
#include "data/data_loader.h"
#include "data/synthetic_dataset.h"
#include "serve/load_generator.h"
#include "serve/serve_engine.h"
#include "serve/snapshot_store.h"
#include "train/dirty_tracker.h"
#include "train/trainer.h"

namespace lazydp {
namespace {

ModelConfig
tinyConfig()
{
    auto mc = ModelConfig::tiny();
    mc.rowsPerTable = 64;
    return mc;
}

DatasetConfig
dataConfig(const ModelConfig &mc)
{
    DatasetConfig dc;
    dc.numDense = mc.numDense;
    dc.numTables = mc.numTables;
    dc.rowsPerTable = mc.rowsPerTable;
    dc.pooling = mc.pooling;
    dc.batchSize = 8;
    dc.seed = 77;
    return dc;
}

TrainHyper
testHyper()
{
    TrainHyper h;
    h.noiseSeed = 0xC4C4;
    return h;
}

/**
 * Row-for-row bytewise equality that works for BOTH storage layouts
 * (dense tensor and bound pages) via the const rowPtr indirection.
 */
bool
modelsRowEqual(const DlrmModel &a, const DlrmModel &b)
{
    for (std::size_t t = 0; t < a.tables().size(); ++t) {
        const EmbeddingTable &ta = a.tables()[t];
        const EmbeddingTable &tb = b.tables()[t];
        if (ta.rows() != tb.rows() || ta.dim() != tb.dim())
            return false;
        for (std::uint64_t r = 0; r < ta.rows(); ++r)
            if (std::memcmp(ta.rowPtr(r), tb.rowPtr(r),
                            ta.dim() * sizeof(float)) != 0)
                return false;
    }
    auto mlp_equal = [](const Mlp &ma, const Mlp &mb) {
        for (std::size_t l = 0; l < ma.layers().size(); ++l) {
            const auto &la = ma.layers()[l];
            const auto &lb = mb.layers()[l];
            if (std::memcmp(la.weight().data(), lb.weight().data(),
                            la.weight().size() * sizeof(float)) != 0)
                return false;
            if (std::memcmp(la.bias().data(), lb.bias().data(),
                            la.bias().size() * sizeof(float)) != 0)
                return false;
        }
        return true;
    };
    return mlp_equal(a.bottomMlp(), b.bottomMlp()) &&
           mlp_equal(a.topMlp(), b.topMlp());
}

// --- DirtyRowTracker unit tests -------------------------------------

TEST(DirtyRowTrackerTest, MarksAtPageGranularity)
{
    DirtyRowTracker tracker({100, 40}, /*page_rows=*/16);
    EXPECT_EQ(tracker.numTables(), 2u);
    EXPECT_EQ(tracker.pageCount(0), 7u); // ceil(100/16)
    EXPECT_EQ(tracker.pageCount(1), 3u); // ceil(40/16)
    EXPECT_EQ(tracker.dirtyPageCount(), 0u);

    const std::uint32_t rows[] = {0, 15, 17, 99};
    tracker.markRows(0, rows);
    EXPECT_TRUE(tracker.pageDirty(0, 0));  // rows 0, 15
    EXPECT_TRUE(tracker.pageDirty(0, 1));  // row 17
    EXPECT_FALSE(tracker.pageDirty(0, 2));
    EXPECT_TRUE(tracker.pageDirty(0, 6));  // row 99
    EXPECT_FALSE(tracker.pageDirty(1, 0)); // other table untouched
    EXPECT_EQ(tracker.dirtyPageCount(), 3u);
}

TEST(DirtyRowTrackerTest, MarkAllDirtyCoversEveryPageUntilReset)
{
    DirtyRowTracker tracker({100, 40}, /*page_rows=*/16);
    tracker.markAllDirty();
    EXPECT_TRUE(tracker.allDirty());
    EXPECT_TRUE(tracker.pageDirty(0, 3));
    EXPECT_TRUE(tracker.pageDirty(1, 2));
    EXPECT_EQ(tracker.dirtyPageCount(), 10u);

    tracker.reset();
    EXPECT_FALSE(tracker.allDirty());
    EXPECT_EQ(tracker.dirtyPageCount(), 0u);
    EXPECT_FALSE(tracker.pageDirty(0, 3));
}

TEST(DirtyRowTrackerTest, ResetClearsRowMarks)
{
    DirtyRowTracker tracker({64}, /*page_rows=*/8);
    const std::uint32_t rows[] = {5, 60};
    tracker.markRows(0, rows);
    EXPECT_EQ(tracker.dirtyPageCount(), 2u);
    tracker.reset();
    EXPECT_EQ(tracker.dirtyPageCount(), 0u);
}

// --- Delta-store publication ----------------------------------------

/** @return a store with the given mode and a small page size. */
SnapshotOptions
deltaOptions(std::size_t page_rows = 16, bool seal = false)
{
    SnapshotOptions o;
    o.mode = SnapshotMode::Delta;
    o.pageRows = page_rows;
    o.sealPages = seal;
    return o;
}

TEST(DeltaSnapshotTest, FirstPublishCopiesEverythingWithoutATracker)
{
    const ModelConfig mc = tinyConfig();
    DlrmModel model(mc, 42);
    ModelSnapshotStore store(deltaOptions());

    const PublishReceipt r = store.publish(model, 3);
    auto snap = store.current();
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->mode, SnapshotMode::Delta);
    EXPECT_EQ(snap->version, 1u);
    EXPECT_EQ(snap->iteration, 3u);
    EXPECT_TRUE(snap->model.tables()[0].paged());
    EXPECT_TRUE(modelsRowEqual(snap->model, model));

    std::uint64_t total_rows = 0;
    for (const auto &t : model.tables())
        total_rows += t.rows();
    EXPECT_EQ(r.rowsCopied, total_rows);
    EXPECT_EQ(r.pagesShared, 0u);
}

TEST(DeltaSnapshotTest, CleanPagesArePointerSharedAcrossVersions)
{
    const ModelConfig mc = tinyConfig(); // 64 rows per table
    const std::size_t kPageRows = 16;    // 4 pages per table
    DlrmModel model(mc, 42);
    ModelSnapshotStore store(deltaOptions(kPageRows));
    auto tracker = DirtyRowTracker::forModel(mc, kPageRows);

    store.publish(model, 1, tracker.get());
    auto v1 = store.current();

    // Dirty exactly one row of table 0 (page 2) and republish.
    const std::uint32_t dirty_row = 2 * kPageRows + 3;
    model.tables()[0].rowPtr(dirty_row)[0] += 1.0f;
    const std::uint32_t marked[] = {dirty_row};
    tracker->markRows(0, marked);
    const PublishReceipt r = store.publish(model, 2, tracker.get());
    auto v2 = store.current();

    EXPECT_TRUE(modelsRowEqual(v2->model, model));
    EXPECT_EQ(r.pagesCopied, 1u);
    EXPECT_EQ(r.rowsCopied, kPageRows);

    // Pointer identity: every page except (table 0, page 2) is the
    // same object in both snapshots.
    std::uint64_t shared = 0;
    for (std::size_t t = 0; t < mc.numTables; ++t) {
        const auto &p1 = v1->model.tables()[t].pages();
        const auto &p2 = v2->model.tables()[t].pages();
        ASSERT_EQ(p1.size(), p2.size());
        for (std::size_t p = 0; p < p1.size(); ++p) {
            const bool is_dirty = t == 0 && p == 2;
            EXPECT_EQ(p1[p].get() == p2[p].get(), !is_dirty)
                << "table " << t << " page " << p;
            shared += p1[p].get() == p2[p].get() ? 1 : 0;
        }
    }
    EXPECT_EQ(r.pagesShared, shared);
}

TEST(DeltaSnapshotTest, PublishConsumesTheTracker)
{
    const ModelConfig mc = tinyConfig();
    const std::size_t kPageRows = 16;
    DlrmModel model(mc, 7);
    ModelSnapshotStore store(deltaOptions(kPageRows));
    auto tracker = DirtyRowTracker::forModel(mc, kPageRows);
    tracker->markAllDirty();

    store.publish(model, 1, tracker.get());
    EXPECT_EQ(tracker->dirtyPageCount(), 0u); // reset by publish

    // Nothing marked since: the next publish shares every page.
    const PublishReceipt r = store.publish(model, 2, tracker.get());
    EXPECT_EQ(r.pagesCopied, 0u);
    EXPECT_EQ(r.rowsCopied, 0u);
    EXPECT_TRUE(modelsRowEqual(store.current()->model, model));
}

TEST(DeltaSnapshotTest, RetiredBuffersAreRecycled)
{
    const ModelConfig mc = tinyConfig();
    const std::size_t kPageRows = 16;
    DlrmModel model(mc, 7);
    ModelSnapshotStore store(deltaOptions(kPageRows));
    auto tracker = DirtyRowTracker::forModel(mc, kPageRows);
    tracker->markAllDirty();

    // No reader holds the intermediate versions, so each publish
    // retires the previous snapshot into the pool; marking everything
    // dirty forces fresh pages, which must come from the free-list.
    for (std::uint64_t i = 1; i <= 6; ++i) {
        store.publish(model, i, tracker.get());
        tracker->markAllDirty();
    }
    const PublishTotals totals = store.totals();
    EXPECT_EQ(totals.publishes, 6u);
    EXPECT_GT(totals.snapshotsRecycled, 0u);
    EXPECT_GT(totals.pagesRecycled, 0u);
    EXPECT_TRUE(modelsRowEqual(store.current()->model, model));
}

TEST(DeltaSnapshotTest, FullModeAlsoRecyclesShells)
{
    const ModelConfig mc = tinyConfig();
    DlrmModel model(mc, 7);
    ModelSnapshotStore store; // Full mode, default options
    for (std::uint64_t i = 1; i <= 4; ++i)
        store.publish(model, i);
    EXPECT_GT(store.totals().snapshotsRecycled, 0u);
}

TEST(DeltaSnapshotTest, SealedPagesServeCorrectBits)
{
    const ModelConfig mc = tinyConfig();
    const std::size_t kPageRows = 16;
    DlrmModel model(mc, 11);
    ModelSnapshotStore store(deltaOptions(kPageRows, /*seal=*/true));
    auto tracker = DirtyRowTracker::forModel(mc, kPageRows);

    store.publish(model, 1, tracker.get());
    model.tables()[0].rowPtr(5)[0] = 9.0f;
    const std::uint32_t marked[] = {5};
    tracker->markRows(0, marked);
    store.publish(model, 2, tracker.get());

    auto snap = store.current();
    EXPECT_TRUE(modelsRowEqual(snap->model, model));
    for (const auto &t : snap->model.tables())
        for (const auto &page : t.pages())
            if (page->mmapped())
                EXPECT_TRUE(page->sealed());
}

// --- Full-vs-delta training parity ----------------------------------

/**
 * Two identical training runs -- one publishing into a Full store,
 * one into a Delta store, after EVERY iteration -- must leave
 * row-for-row bit-identical latest snapshots. Exercises the sparse
 * dirty oracles (lazydp, eana, sgd) and the dense-update fallback
 * (dpsgd-f, no tracker) under every schedule.
 */
void
runModeParityCase(const std::string &algo_name, bool pipeline,
                  std::size_t replicas)
{
    SCOPED_TRACE("algo=" + algo_name +
                 " pipeline=" + std::to_string(pipeline) +
                 " replicas=" + std::to_string(replicas));
    const ModelConfig mc = tinyConfig();
    const std::uint64_t kIters = 6;

    auto run = [&](ModelSnapshotStore &store) {
        DlrmModel model(mc, 1);
        SyntheticDataset dataset(dataConfig(mc));
        SequentialLoader loader(dataset);
        auto algo = makeAlgorithm(algo_name, model, testHyper());
        ThreadPool pool(4);
        ExecContext exec(&pool);
        Trainer trainer(*algo, loader, &exec);
        TrainOptions options;
        options.pipeline = pipeline;
        options.replicas = replicas;
        options.publishEveryIters = 1;
        options.snapshotStore = &store;
        options.runFinalize = false; // mid-run state
        trainer.run(kIters, options);
    };

    ModelSnapshotStore full_store;
    run(full_store);
    ModelSnapshotStore delta_store(deltaOptions());
    run(delta_store);

    auto full = full_store.current();
    auto delta = delta_store.current();
    ASSERT_NE(full, nullptr);
    ASSERT_NE(delta, nullptr);
    EXPECT_EQ(full->version, kIters);
    EXPECT_EQ(delta->version, kIters);
    EXPECT_TRUE(delta->model.tables()[0].paged());
    ASSERT_TRUE(modelsRowEqual(delta->model, full->model));
}

TEST(DeltaModeParityTest, LazyDp)
{
    runModeParityCase("lazydp", false, 1);
    runModeParityCase("lazydp", true, 1);
    runModeParityCase("lazydp", false, 4);
    runModeParityCase("lazydp", true, 4);
}

TEST(DeltaModeParityTest, Eana)
{
    runModeParityCase("eana", false, 1);
    runModeParityCase("eana", true, 1);
    runModeParityCase("eana", false, 4);
    runModeParityCase("eana", true, 4);
}

TEST(DeltaModeParityTest, Sgd)
{
    runModeParityCase("sgd", false, 1);
    runModeParityCase("sgd", true, 1);
    runModeParityCase("sgd", false, 4);
    runModeParityCase("sgd", true, 4);
}

TEST(DeltaModeParityTest, DpSgdFDenseFallback)
{
    runModeParityCase("dpsgd-f", false, 1);
    runModeParityCase("dpsgd-f", true, 1);
    runModeParityCase("dpsgd-f", false, 4);
    runModeParityCase("dpsgd-f", true, 4);
}

/**
 * A mid-run finalize-style dense mutation is outside the sparse
 * oracle; the trainer covers the run START with markAllDirty, and
 * LazyDP's finalize marks all-dirty itself. This checks the tracker
 * escape hatch end to end: finalize between two published runs.
 */
TEST(DeltaModeParityTest, LazyDpFinalizeFullCopyFallback)
{
    const ModelConfig mc = tinyConfig();

    auto run = [&](ModelSnapshotStore &store) {
        DlrmModel model(mc, 1);
        SyntheticDataset dataset(dataConfig(mc));
        SequentialLoader loader(dataset);
        auto algo = makeAlgorithm("lazydp", model, testHyper());
        Trainer trainer(*algo, loader, nullptr);
        TrainOptions options;
        options.publishEveryIters = 1;
        options.snapshotStore = &store;
        options.runFinalize = true; // dense pending-noise flush
        trainer.run(4, options);
        // Second segment republishes the post-finalize weights.
        TrainOptions seg2 = options;
        seg2.startIter = 4;
        seg2.runFinalize = false;
        trainer.run(2, seg2);
    };

    ModelSnapshotStore full_store;
    run(full_store);
    ModelSnapshotStore delta_store(deltaOptions());
    run(delta_store);
    ASSERT_TRUE(modelsRowEqual(delta_store.current()->model,
                               full_store.current()->model));
}

// --- Serve-while-train (TSan leg) -----------------------------------

/**
 * Delta publishing after EVERY iteration while serve lanes score
 * concurrently: the TSan job runs this to prove page recycling +
 * sharing never races with readers.
 */
TEST(DeltaServeWhileTrainTest, PublishEveryIterationUnderLoad)
{
    const ModelConfig mc = tinyConfig();
    DlrmModel model(mc, 3);
    ModelSnapshotStore store(deltaOptions());
    store.publish(model, 0);

    ThreadPool pool(4);
    ExecContext exec(&pool);
    ServeOptions serve_opts;
    serve_opts.threads = 2;
    serve_opts.batch.maxBatch = 4;
    serve_opts.batch.maxDelayUs = 50;
    ServeEngine engine(store, mc, pool, serve_opts);

    LoadOptions load_opts;
    load_opts.requests = 400;
    load_opts.concurrency = 3;
    load_opts.seed = 9;
    LoadGenerator generator(engine, mc, load_opts);

    LoadReport report;
    std::thread load_thread(
        [&generator, &report] { report = generator.run(); });

    SyntheticDataset dataset(dataConfig(mc));
    SequentialLoader loader(dataset);
    auto algo = makeAlgorithm("lazydp", model, testHyper());
    Trainer trainer(*algo, loader, &exec);
    TrainOptions options;
    options.publishEveryIters = 1;
    options.snapshotStore = &store;
    options.runFinalize = false;
    trainer.run(30, options);

    load_thread.join();
    engine.stop();

    EXPECT_EQ(report.completed, load_opts.requests);
    EXPECT_EQ(store.version(), 31u); // startup + one per iteration
    EXPECT_GE(report.maxVersion, report.minVersion);
    EXPECT_TRUE(modelsRowEqual(store.current()->model, model));
}

} // namespace
} // namespace lazydp
