/**
 * @file
 * Snapshot-consistency guarantees of the train-and-serve system:
 *
 * 1. PARITY: a snapshot the Trainer publishes at iteration k is
 *    bit-identical (memcmp over every parameter tensor) to a
 *    checkpoint written by a separate run stopped at iteration k --
 *    for pipeline {off, on} x replicas {1, 4}. The snapshot path and
 *    the checkpoint path must agree on what "the model at iteration k"
 *    means, under every training schedule.
 *
 * 2. NO TORN READS (TSan-exercised): while a publisher thread swaps
 *    versions, every served score must equal the score a fully
 *    published version produces -- computed bit-exactly from a
 *    reference model per version. A torn read (mixed versions inside
 *    one forward) would produce a score matching no version. Also
 *    asserts per-client version monotonicity (seq_cst snapshot loads).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/factory.h"
#include "data/data_loader.h"
#include "data/synthetic_dataset.h"
#include "io/checkpoint.h"
#include "serve/load_generator.h"
#include "serve/serve_engine.h"
#include "serve/snapshot_store.h"
#include "train/trainer.h"

namespace lazydp {
namespace {

ModelConfig
tinyConfig()
{
    auto mc = ModelConfig::tiny();
    mc.rowsPerTable = 64;
    return mc;
}

DatasetConfig
dataConfig(const ModelConfig &mc)
{
    DatasetConfig dc;
    dc.numDense = mc.numDense;
    dc.numTables = mc.numTables;
    dc.rowsPerTable = mc.rowsPerTable;
    dc.pooling = mc.pooling;
    dc.batchSize = 8;
    dc.seed = 77;
    return dc;
}

TrainHyper
testHyper()
{
    TrainHyper h;
    h.noiseSeed = 0xC4C4;
    return h;
}

bool
weightsEqual(const DlrmModel &a, const DlrmModel &b)
{
    for (std::size_t t = 0; t < a.tables().size(); ++t) {
        const Tensor &wa = a.tables()[t].weights();
        const Tensor &wb = b.tables()[t].weights();
        if (std::memcmp(wa.data(), wb.data(),
                        wa.size() * sizeof(float)) != 0)
            return false;
    }
    auto mlp_equal = [](const Mlp &ma, const Mlp &mb) {
        for (std::size_t l = 0; l < ma.layers().size(); ++l) {
            const auto &la = ma.layers()[l];
            const auto &lb = mb.layers()[l];
            if (std::memcmp(la.weight().data(), lb.weight().data(),
                            la.weight().size() * sizeof(float)) != 0)
                return false;
            if (std::memcmp(la.bias().data(), lb.bias().data(),
                            la.bias().size() * sizeof(float)) != 0)
                return false;
        }
        return true;
    };
    return mlp_equal(a.bottomMlp(), b.bottomMlp()) &&
           mlp_equal(a.topMlp(), b.topMlp());
}

/**
 * Snapshot-vs-checkpoint parity at every published iteration under one
 * (pipeline, replicas) schedule: for k in {4, 8, 12}, a run publishing
 * every 4 iterations up to k must leave a latest snapshot bit-equal to
 * the checkpoint a SERIAL run stopped at iteration k writes.
 */
void
runParityCase(bool pipeline, std::size_t replicas)
{
    SCOPED_TRACE("pipeline=" + std::to_string(pipeline) +
                 " replicas=" + std::to_string(replicas));
    const ModelConfig mc = tinyConfig();
    const std::uint64_t kPublishEvery = 4;

    for (std::uint64_t k = kPublishEvery; k <= 12; k += kPublishEvery) {
        SCOPED_TRACE("iteration=" + std::to_string(k));

        // Publishing run under the schedule being tested.
        ModelSnapshotStore store;
        {
            DlrmModel model(mc, 1);
            SyntheticDataset dataset(dataConfig(mc));
            SequentialLoader loader(dataset);
            auto algo = makeAlgorithm("lazydp", model, testHyper());
            ThreadPool pool(4);
            ExecContext exec(&pool);
            Trainer trainer(*algo, loader, &exec);
            TrainOptions options;
            options.pipeline = pipeline;
            options.replicas = replicas;
            options.publishEveryIters = kPublishEvery;
            options.snapshotStore = &store;
            options.runFinalize = false; // mid-run state
            trainer.run(k, options);
        }
        auto snap = store.current();
        ASSERT_NE(snap, nullptr);
        EXPECT_EQ(snap->version, k / kPublishEvery);
        EXPECT_EQ(snap->iteration, k);

        // Serial reference run, stopped at k, checkpointed + reloaded.
        DlrmModel model(mc, 1);
        SyntheticDataset dataset(dataConfig(mc));
        SequentialLoader loader(dataset);
        auto algo = makeAlgorithm("lazydp", model, testHyper());
        Trainer trainer(*algo, loader, nullptr);
        TrainOptions options;
        options.runFinalize = false;
        trainer.run(k, options);

        const std::string path =
            ::testing::TempDir() + "lazydp_snap_parity_" +
            std::to_string(::getpid()) + "_" + std::to_string(k) +
            ".bin";
        io::saveModel(path, model);
        DlrmModel reloaded(mc, 999);
        io::loadModel(path, reloaded);
        std::remove(path.c_str());

        // Checkpoint round-trip == the serial reference model, and the
        // published snapshot == that checkpoint, bit for bit.
        ASSERT_TRUE(weightsEqual(reloaded, model));
        ASSERT_TRUE(weightsEqual(snap->model, reloaded));
    }
}

TEST(SnapshotParityTest, MatchesCheckpointSerial)
{
    runParityCase(/*pipeline=*/false, /*replicas=*/1);
}

TEST(SnapshotParityTest, MatchesCheckpointPipelined)
{
    runParityCase(/*pipeline=*/true, /*replicas=*/1);
}

TEST(SnapshotParityTest, MatchesCheckpointReplicated)
{
    runParityCase(/*pipeline=*/false, /*replicas=*/4);
}

TEST(SnapshotParityTest, MatchesCheckpointPipelinedReplicated)
{
    runParityCase(/*pipeline=*/true, /*replicas=*/4);
}

/** Set every parameter of @p m to the constant @p v. */
void
fillWeights(DlrmModel &m, float v)
{
    for (auto &t : m.tables())
        t.weights().fill(v);
    for (auto *mlp : {&m.bottomMlp(), &m.topMlp()})
        for (auto &layer : mlp->layers()) {
            layer.weight().fill(v);
            layer.bias().fill(v);
        }
}

/**
 * Serve-during-publish torn-read check (run under TSan in CI): every
 * served score must bit-match the score its reported version's
 * reference model produces.
 */
TEST(ServeDuringTrainTest, EveryScoreComesFromAFullyPublishedVersion)
{
    const ModelConfig mc = tinyConfig();
    const std::uint64_t kVersions = 40;
    const std::size_t kQueries = 16;
    const std::size_t kClients = 3;
    const std::uint64_t kRequestsPerClient = 300;

    // Reference scores: expected[v][q] for every version x query,
    // computed on private models (weights = v * 0.01).
    auto weight_of = [](std::uint64_t version) {
        return 0.01f * static_cast<float>(version);
    };
    LoadOptions query_opts;
    query_opts.seed = 5;

    ModelSnapshotStore store;
    ThreadPool pool(2);
    ServeOptions serve_opts;
    serve_opts.threads = 2;
    serve_opts.batch.maxBatch = 4;
    serve_opts.batch.maxDelayUs = 100;
    ServeEngine engine(store, mc, pool, serve_opts);
    LoadGenerator generator(engine, mc, query_opts);

    std::vector<ServeQuery> queries;
    for (std::size_t q = 0; q < kQueries; ++q)
        queries.push_back(generator.makeQuery(q));

    std::vector<std::vector<float>> expected(kVersions + 1);
    {
        DlrmModel ref(mc, 0);
        DlrmWorkspace ws;
        Tensor logits;
        MiniBatch mb;
        mb.resize(1, mc.numTables, mc.pooling, mc.numDense);
        for (std::uint64_t v = 1; v <= kVersions; ++v) {
            fillWeights(ref, weight_of(v));
            expected[v].resize(kQueries);
            for (std::size_t q = 0; q < kQueries; ++q) {
                std::memcpy(mb.dense.row(0).data(),
                            queries[q].dense.data(),
                            mc.numDense * sizeof(float));
                for (std::size_t t = 0; t < mc.numTables; ++t)
                    std::memcpy(mb.indices.data() + t * mc.pooling,
                                queries[q].indices.data() +
                                    t * mc.pooling,
                                mc.pooling * sizeof(std::uint32_t));
                ref.forward(mb, logits, ws, ExecContext::serial());
                expected[v][q] =
                    1.0f / (1.0f + std::exp(-logits.at(0, 0)));
            }
        }
    }

    // Publisher: version v has ALL weights = v * 0.01, so a torn read
    // (rows from two versions inside one forward) produces a score
    // matching no version's reference.
    DlrmModel live(mc, 0);
    fillWeights(live, weight_of(1));
    store.publish(live, 1);

    std::atomic<bool> stop_publishing{false};
    std::thread publisher([&] {
        for (std::uint64_t v = 2;
             v <= kVersions && !stop_publishing.load(); ++v) {
            fillWeights(live, weight_of(v));
            store.publish(live, v);
            std::this_thread::sleep_for(
                std::chrono::microseconds(500));
        }
    });

    std::atomic<std::uint64_t> mismatches{0};
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            std::uint64_t last_version = 0;
            for (std::uint64_t i = 0; i < kRequestsPerClient; ++i) {
                const std::size_t q = (c + i * kClients) % kQueries;
                auto request = engine.submit(queries[q]);
                ASSERT_NE(request, nullptr);
                const ServeResult &r = request->wait();
                ASSERT_GE(r.version, 1u);
                ASSERT_LE(r.version, kVersions);
                // Bit-exact: same forward path, same kernels; only a
                // torn read could miss.
                if (r.score != expected[r.version][q])
                    mismatches.fetch_add(1);
                // seq_cst snapshot loads make versions monotone per
                // client.
                EXPECT_GE(r.version, last_version);
                last_version = r.version;
            }
        });
    }
    for (auto &t : clients)
        t.join();
    stop_publishing.store(true);
    publisher.join();
    engine.stop();

    EXPECT_EQ(mismatches.load(), 0u);
    const ServeStats stats = engine.stats();
    EXPECT_EQ(stats.served, kClients * kRequestsPerClient);
    EXPECT_GE(stats.maxVersion, stats.minVersion);
    EXPECT_GE(stats.minVersion, 1u);
}

/**
 * Real train-and-serve integration: LazyDP trains and publishes while
 * a closed-loop load generator serves -- the tool flow, in-process.
 */
TEST(ServeDuringTrainTest, ServesWhileLazyDpTrains)
{
    const ModelConfig mc = tinyConfig();
    DlrmModel model(mc, 1);
    SyntheticDataset dataset(dataConfig(mc));
    SequentialLoader loader(dataset);
    auto algo = makeAlgorithm("lazydp", model, testHyper());
    ThreadPool pool(2);
    ExecContext exec(&pool);

    ModelSnapshotStore store;
    store.publish(model, 0);
    ServeOptions serve_opts;
    serve_opts.threads = 2;
    serve_opts.batch.maxBatch = 8;
    serve_opts.batch.maxDelayUs = 200;
    ServeEngine engine(store, mc, pool, serve_opts);

    LoadOptions load_opts;
    load_opts.requests = 400;
    load_opts.concurrency = 2;
    load_opts.seed = 11;
    LoadGenerator generator(engine, mc, load_opts);

    LoadReport report;
    std::thread load_thread(
        [&generator, &report] { report = generator.run(); });

    Trainer trainer(*algo, loader, &exec);
    TrainOptions options;
    options.pipeline = true;
    options.publishEveryIters = 2;
    options.snapshotStore = &store;
    trainer.run(20, options);
    load_thread.join();
    engine.stop();

    EXPECT_EQ(report.completed, load_opts.requests);
    EXPECT_GT(report.qps(), 0.0);
    EXPECT_GE(report.minVersion, 1u);
    EXPECT_EQ(store.version(), 11u); // initial + 20/2 training publishes
    for (const double p :
         {report.latency.p50, report.latency.p99})
        EXPECT_GT(p, 0.0);
    EXPECT_LE(report.latency.p50, report.latency.p99);
}

} // namespace
} // namespace lazydp
