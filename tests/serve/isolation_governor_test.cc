/**
 * @file
 * Isolation-governor tests: CpuSet parsing, the windowed attainment
 * signal (incl. the empty-window 0-not-NaN fix), hysteresis
 * engage/release, token-bucket pacing with a fake clock, governor
 * decision accounting, and the contract that matters most -- throttling
 * the trainer between iterations never perturbs the trained model's
 * bits.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/cpu_set.h"
#include "core/factory.h"
#include "data/synthetic_dataset.h"
#include "serve/isolation_governor.h"
#include "train/trainer.h"

namespace lazydp {
namespace {

// ---------------------------------------------------------------- CpuSet

TEST(CpuSetTest, ParseListAndRangesRoundTrips)
{
    CpuSet set;
    ASSERT_TRUE(CpuSet::parse("0-3,6", &set));
    EXPECT_EQ(set.count(), 5u);
    EXPECT_TRUE(set.contains(0));
    EXPECT_TRUE(set.contains(3));
    EXPECT_FALSE(set.contains(4));
    EXPECT_TRUE(set.contains(6));
    EXPECT_EQ(set.toString(), "0-3,6");

    CpuSet pair;
    ASSERT_TRUE(CpuSet::parse("1,2", &pair));
    EXPECT_EQ(pair.toString(), "1,2"); // adjacent pair is not a range
    CpuSet run;
    ASSERT_TRUE(CpuSet::parse("1,2,3", &run));
    EXPECT_EQ(run.toString(), "1-3");
}

TEST(CpuSetTest, EmptyStringIsTheEmptySet)
{
    CpuSet set;
    set.add(5);
    ASSERT_TRUE(CpuSet::parse("", &set));
    EXPECT_TRUE(set.empty());
    EXPECT_EQ(set.toString(), "");
}

TEST(CpuSetTest, MalformedListsAreRejected)
{
    CpuSet set;
    for (const char *bad : {"a", "3-1", "1,,2", "1-", ",1", "1,",
                            "1 2", "-2", "0-99999"}) {
        EXPECT_FALSE(CpuSet::parse(bad, &set)) << "input: " << bad;
        EXPECT_TRUE(set.empty()) << "input: " << bad;
    }
}

TEST(CpuSetTest, PinningEmptySetIsANoOp)
{
    // Contract for unsupported platforms / unset flags: empty set pins
    // nothing and reports success.
    EXPECT_TRUE(pinCurrentThread(CpuSet()));
}

// --------------------------------------------------- attainment window

ServeStats
stats(std::uint64_t served, std::uint64_t ok_deadline,
      std::uint64_t expired, std::uint64_t shed = 0)
{
    ServeStats s;
    s.served = served;
    s.okDeadline = ok_deadline;
    s.expired = expired;
    s.shed = shed;
    return s;
}

TEST(AttainmentWindowTest, DeltasOverCompletedAccepted)
{
    const auto sample =
        windowAttainment(stats(100, 90, 10), stats(190, 170, 30));
    // Window: 90 served (80 in deadline) + 20 expired.
    EXPECT_EQ(sample.accepted, 110u);
    EXPECT_EQ(sample.attained, 80u);
    EXPECT_FALSE(sample.noTraffic);
    EXPECT_NEAR(sample.attainment, 80.0 / 110.0, 1e-12);
}

TEST(AttainmentWindowTest, EmptyWindowIsZeroFlaggedNotNaN)
{
    // The bug class this guards: an empty window must NOT divide 0/0.
    const auto idle = windowAttainment(stats(50, 50, 0), stats(50, 50, 0));
    EXPECT_TRUE(idle.noTraffic);
    EXPECT_EQ(idle.attainment, 0.0);
    EXPECT_FALSE(std::isnan(idle.attainment));
}

TEST(AttainmentWindowTest, TotalOverloadAllShedIsNoTraffic)
{
    // Everything shed by admission control: no completed-accepted
    // traffic, so there is no deadline evidence -- flagged, not 0/0.
    const auto sample = windowAttainment(stats(10, 10, 0, 100),
                                         stats(10, 10, 0, 900));
    EXPECT_TRUE(sample.noTraffic);
    EXPECT_EQ(sample.attainment, 0.0);
}

TEST(AttainmentWindowTest, StaleSampleDoesNotUnderflow)
{
    // A sampler handing back reset/stale cumulative counters must not
    // wrap the unsigned deltas into absurd attainment.
    const auto sample = windowAttainment(stats(100, 90, 5), stats(40, 20, 1));
    EXPECT_TRUE(sample.noTraffic);
    EXPECT_EQ(sample.attainment, 0.0);
}

// --------------------------------------------------------- hysteresis

TEST(HysteresisTest, EngagesBelowAndReleasesOnlyAboveTheBand)
{
    HysteresisController ctrl(0.90, 0.97);
    auto at = [](double a) {
        AttainmentSample s;
        s.attainment = a;
        s.accepted = 100;
        return s;
    };
    EXPECT_FALSE(ctrl.update(at(0.95))); // inside band, stays off
    EXPECT_TRUE(ctrl.update(at(0.85)));  // below engage -> on
    EXPECT_TRUE(ctrl.update(at(0.93)));  // dead band: recovering but on
    EXPECT_TRUE(ctrl.update(at(0.9699)));
    EXPECT_FALSE(ctrl.update(at(0.97))); // reached release -> off
    EXPECT_FALSE(ctrl.update(at(0.95))); // band again, stays off
    EXPECT_TRUE(ctrl.update(at(0.80)));  // re-engages
}

TEST(HysteresisTest, NoTrafficWindowReleases)
{
    HysteresisController ctrl(0.90, 0.97);
    AttainmentSample bad;
    bad.attainment = 0.1;
    bad.accepted = 10;
    EXPECT_TRUE(ctrl.update(bad));
    AttainmentSample idle;
    idle.noTraffic = true;
    EXPECT_FALSE(ctrl.update(idle)); // idle tier: release the trainer
}

// -------------------------------------------------------- token bucket

TEST(TokenBucketTest, BurstThenSettlesAtTheRate)
{
    TokenBucket bucket(100.0, 2.0); // 100/s, burst of 2
    EXPECT_EQ(bucket.acquireDelaySeconds(0.0), 0.0);
    EXPECT_EQ(bucket.acquireDelaySeconds(0.0), 0.0);
    // Burst spent: each further immediate acquire owes one period.
    EXPECT_NEAR(bucket.acquireDelaySeconds(0.0), 0.01, 1e-9);
    // Caller slept its debt; the next acquire owes exactly one more.
    EXPECT_NEAR(bucket.acquireDelaySeconds(0.01), 0.01, 1e-9);
    EXPECT_NEAR(bucket.acquireDelaySeconds(0.02), 0.01, 1e-9);
}

TEST(TokenBucketTest, IdleRefillIsCappedAtTheBurst)
{
    TokenBucket bucket(100.0, 2.0);
    for (int i = 0; i < 4; ++i)
        bucket.acquireDelaySeconds(0.0);
    // A long idle spell refills to the cap, not beyond: exactly two
    // free acquires, then pacing again.
    EXPECT_EQ(bucket.acquireDelaySeconds(100.0), 0.0);
    EXPECT_EQ(bucket.acquireDelaySeconds(100.0), 0.0);
    EXPECT_NEAR(bucket.acquireDelaySeconds(100.0), 0.01, 1e-9);
}

TEST(TokenBucketTest, ResetRestoresAFullBurst)
{
    TokenBucket bucket(100.0, 1.0);
    EXPECT_EQ(bucket.acquireDelaySeconds(0.0), 0.0);
    EXPECT_GT(bucket.acquireDelaySeconds(0.0), 0.0);
    bucket.reset();
    EXPECT_EQ(bucket.acquireDelaySeconds(0.0), 0.0);
}

TEST(TokenBucketTest, DrainChargesTheVeryNextAcquire)
{
    TokenBucket bucket(100.0, 2.0);
    EXPECT_EQ(bucket.acquireDelaySeconds(0.0), 0.0); // burst token
    bucket.drain();
    // Empty bucket, epoch forgotten: the next acquire owes one full
    // token regardless of how long the bucket sat idle before drain.
    EXPECT_DOUBLE_EQ(bucket.acquireDelaySeconds(5.0), 1.0 / 100.0);
}

// ------------------------------------------------------------ governor

TEST(IsolationGovernorTest, EngagesOnBadWindowsAndPausesTheGate)
{
    // Scripted stats source: every window completes 100 accepted
    // requests, none in deadline -- attainment 0.
    auto counter = std::make_shared<std::uint64_t>(0);
    GovernorOptions opts;
    opts.startSampler = false; // windows driven by hand
    opts.throttledItersPerSec = 1000.0;
    opts.burstIters = 1.0;
    IsolationGovernor gov(
        [counter] {
            ServeStats s;
            s.served = *counter * 100;
            s.okDeadline = 0;
            ++*counter;
            return s;
        },
        opts);

    EXPECT_FALSE(gov.stats().engaged);
    gov.sampleOnce(); // window of 100 accepted, 0 attained
    const GovernorStats after = gov.stats();
    EXPECT_TRUE(after.engaged);
    EXPECT_EQ(after.engagements, 1u);
    EXPECT_EQ(after.windows, 1u);
    EXPECT_EQ(after.lastAttainment, 0.0);

    // Engagement drains the bucket: the VERY FIRST gated iteration
    // already pauses (an engagement shorter than one training
    // iteration must still throttle something), and so does the next.
    auto gate = gov.gate();
    gate();
    gate();
    const GovernorStats paused = gov.stats();
    EXPECT_GE(paused.gatePauses, 2u);
    EXPECT_GT(paused.pausedSeconds, 0.0);
}

TEST(IsolationGovernorTest, RecoveryReleasesAndGateGoesFree)
{
    // Windows alternate: first bad (engage), then perfect (release).
    auto phase = std::make_shared<int>(0);
    GovernorOptions opts;
    opts.startSampler = false;
    IsolationGovernor gov(
        [phase] {
            ServeStats s;
            const int p = (*phase)++;
            s.served = static_cast<std::uint64_t>(p) * 100;
            // Phase 0/1 windows attain nothing; later windows attain
            // everything (cumulative counters stay monotone).
            s.okDeadline = p <= 1 ? 0 : (static_cast<std::uint64_t>(p) - 1) * 100;
            return s;
        },
        opts);
    gov.sampleOnce(); // attainment 0 -> engaged
    ASSERT_TRUE(gov.stats().engaged);
    gov.sampleOnce(); // attainment 1.0 -> released
    const GovernorStats released = gov.stats();
    EXPECT_FALSE(released.engaged);
    EXPECT_EQ(released.engagements, 1u);
    EXPECT_EQ(released.lastAttainment, 1.0);

    // Disengaged gate is the fast path: no pause accounting moves.
    auto gate = gov.gate();
    gate();
    gate();
    EXPECT_EQ(gov.stats().pausedSeconds, released.pausedSeconds);
}

TEST(IsolationGovernorTest, NoTrafficWindowsAreCountedAndRelease)
{
    auto phase = std::make_shared<int>(0);
    GovernorOptions opts;
    opts.startSampler = false;
    IsolationGovernor gov(
        [phase] {
            ServeStats s;
            // One bad window (phase 1), then the counters freeze: every
            // later window is empty.
            s.served = *phase >= 1 ? 100 : 0;
            s.okDeadline = 0;
            ++*phase;
            return s;
        },
        opts);
    gov.sampleOnce();
    ASSERT_TRUE(gov.stats().engaged);
    gov.sampleOnce(); // empty window
    const GovernorStats g = gov.stats();
    EXPECT_EQ(g.windows, 2u);
    EXPECT_EQ(g.noTrafficWindows, 1u);
    EXPECT_FALSE(g.engaged); // idle tier released the trainer
}

// ------------------------------------------- bit-identity integration

struct TrainedModel
{
    std::unique_ptr<DlrmModel> model;
    std::vector<double> losses;
};

/** Train 12 iterations of lazydp, optionally under an engaged
 *  governor's throttle gate. */
TrainedModel
train(bool throttled, bool pipeline)
{
    auto mc = ModelConfig::tiny();
    mc.rowsPerTable = 64;
    mc.pooling = 2;
    TrainHyper hyper;
    hyper.lr = 0.05f;
    hyper.clipNorm = 0.8f;
    hyper.noiseMultiplier = 1.0f;
    hyper.noiseSeed = 0xBEEF;

    TrainedModel out;
    out.model = std::make_unique<DlrmModel>(mc, 23);
    DatasetConfig dc;
    dc.numDense = mc.numDense;
    dc.numTables = mc.numTables;
    dc.rowsPerTable = mc.rowsPerTable;
    dc.pooling = mc.pooling;
    dc.batchSize = 8;
    dc.seed = 31337;
    dc.access = AccessConfig::criteoHigh();
    SyntheticDataset ds(dc);
    SequentialLoader loader(ds);
    auto algorithm = makeAlgorithm("lazydp", *out.model, hyper);

    ThreadPool pool(2);
    ExecContext exec(&pool);
    TrainOptions options;
    options.pipeline = pipeline;

    // A permanently-engaged governor pacing at 2000 iters/s: every
    // iteration boundary actually sleeps, which is exactly the
    // perturbation the determinism contract must shrug off.
    std::unique_ptr<IsolationGovernor> gov;
    if (throttled) {
        auto counter = std::make_shared<std::uint64_t>(0);
        GovernorOptions gopts;
        gopts.startSampler = false;
        gopts.throttledItersPerSec = 2000.0;
        gopts.burstIters = 1.0;
        gov = std::make_unique<IsolationGovernor>(
            [counter] {
                ServeStats s;
                s.served = ++*counter * 10;
                s.okDeadline = 0;
                return s;
            },
            gopts);
        gov->sampleOnce();
        EXPECT_TRUE(gov->stats().engaged);
        options.iterationGate = gov->gate();
    }

    out.losses = Trainer(*algorithm, loader, &exec)
                     .run(12, options)
                     .losses;
    if (gov != nullptr) {
        // The throttle really fired: 11 gated boundaries at 2000/s
        // with burst 1 must have slept at least once.
        EXPECT_GT(gov->stats().pausedSeconds, 0.0);
    }
    return out;
}

void
expectSameBits(const DlrmModel &a, const DlrmModel &b, const char *what)
{
    for (std::size_t t = 0; t < a.tables().size(); ++t) {
        const Tensor &wa = a.tables()[t].weights();
        const Tensor &wb = b.tables()[t].weights();
        ASSERT_EQ(wa.size(), wb.size());
        EXPECT_EQ(std::memcmp(wa.data(), wb.data(),
                              wa.size() * sizeof(float)),
                  0)
            << "table " << t << " differs: " << what;
    }
}

TEST(ThrottleBitIdentityTest, ThrottledTrainingMatchesUnthrottled)
{
    for (const bool pipeline : {false, true}) {
        const TrainedModel off = train(/*throttled=*/false, pipeline);
        const TrainedModel on = train(/*throttled=*/true, pipeline);
        expectSameBits(*off.model, *on.model,
                       pipeline ? "pipeline on" : "pipeline off");
        EXPECT_EQ(off.losses, on.losses);
    }
}

} // namespace
} // namespace lazydp
