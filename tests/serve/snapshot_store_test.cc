/** @file Unit tests for ModelSnapshotStore (RCU snapshot exchange). */

#include <gtest/gtest.h>

#include <cstring>

#include "nn/model_config.h"
#include "serve/snapshot_store.h"

namespace lazydp {
namespace {

/** @return true when every parameter tensor is bytewise identical. */
bool
weightsEqual(const DlrmModel &a, const DlrmModel &b)
{
    for (std::size_t t = 0; t < a.tables().size(); ++t) {
        const Tensor &wa = a.tables()[t].weights();
        const Tensor &wb = b.tables()[t].weights();
        if (std::memcmp(wa.data(), wb.data(),
                        wa.size() * sizeof(float)) != 0)
            return false;
    }
    auto mlp_equal = [](const Mlp &ma, const Mlp &mb) {
        for (std::size_t l = 0; l < ma.layers().size(); ++l) {
            const auto &la = ma.layers()[l];
            const auto &lb = mb.layers()[l];
            if (std::memcmp(la.weight().data(), lb.weight().data(),
                            la.weight().size() * sizeof(float)) != 0)
                return false;
            if (std::memcmp(la.bias().data(), lb.bias().data(),
                            la.bias().size() * sizeof(float)) != 0)
                return false;
        }
        return true;
    };
    return mlp_equal(a.bottomMlp(), b.bottomMlp()) &&
           mlp_equal(a.topMlp(), b.topMlp());
}

/** Set every parameter of @p m to the constant @p v. */
void
fillWeights(DlrmModel &m, float v)
{
    for (auto &t : m.tables())
        t.weights().fill(v);
    for (auto *mlp : {&m.bottomMlp(), &m.topMlp()})
        for (auto &layer : mlp->layers()) {
            layer.weight().fill(v);
            layer.bias().fill(v);
        }
}

TEST(SnapshotStoreTest, EmptyStoreHasNoSnapshot)
{
    ModelSnapshotStore store;
    EXPECT_EQ(store.current(), nullptr);
    EXPECT_EQ(store.version(), 0u);
}

TEST(SnapshotStoreTest, PublishCopiesWeightsAndStampsVersions)
{
    const ModelConfig cfg = ModelConfig::tiny();
    DlrmModel model(cfg, 42);
    ModelSnapshotStore store;

    store.publish(model, 7);
    auto snap = store.current();
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->version, 1u);
    EXPECT_EQ(snap->iteration, 7u);
    EXPECT_EQ(store.version(), 1u);
    EXPECT_TRUE(weightsEqual(snap->model, model));

    // Mutating the source afterwards must not leak into the snapshot.
    fillWeights(model, 0.25f);
    EXPECT_FALSE(weightsEqual(snap->model, model));

    store.publish(model, 9);
    auto snap2 = store.current();
    EXPECT_EQ(snap2->version, 2u);
    EXPECT_EQ(snap2->iteration, 9u);
    EXPECT_TRUE(weightsEqual(snap2->model, model));
    // The old snapshot a reader still holds is untouched.
    EXPECT_EQ(snap->version, 1u);
    EXPECT_FALSE(weightsEqual(snap->model, model));
}

TEST(SnapshotStoreTest, HeldSnapshotsSurviveLaterPublishes)
{
    const ModelConfig cfg = ModelConfig::tiny();
    DlrmModel model(cfg, 1);
    ModelSnapshotStore store;

    // v1 held by a reader across three more publishes: its weights
    // must survive untouched (reclamation waits for the last reader).
    fillWeights(model, 1.0f);
    store.publish(model, 1);
    auto held = store.current();

    fillWeights(model, 2.0f);
    store.publish(model, 2);
    fillWeights(model, 3.0f);
    store.publish(model, 3);
    fillWeights(model, 4.0f);
    store.publish(model, 4);

    EXPECT_EQ(held->version, 1u);
    EXPECT_FLOAT_EQ(held->model.tables()[0].weights().at(0, 0), 1.0f);
    EXPECT_EQ(store.current()->version, 4u);
    EXPECT_FLOAT_EQ(
        store.current()->model.tables()[0].weights().at(0, 0), 4.0f);
}

TEST(SnapshotStoreTest, VersionsAreDenseAndIncreasing)
{
    const ModelConfig cfg = ModelConfig::tiny();
    DlrmModel model(cfg, 3);
    ModelSnapshotStore store;
    for (std::uint64_t i = 1; i <= 10; ++i) {
        store.publish(model, i * 5);
        EXPECT_EQ(store.version(), i);
        EXPECT_EQ(store.current()->version, i);
        EXPECT_EQ(store.current()->iteration, i * 5);
    }
}

TEST(CopyWeightsFromTest, RoundTripsEveryParameter)
{
    const ModelConfig cfg = ModelConfig::tiny();
    const DlrmModel src(cfg, 1234);
    DlrmModel dst(cfg, 999); // different init
    EXPECT_FALSE(weightsEqual(src, dst));
    dst.copyWeightsFrom(src);
    EXPECT_TRUE(weightsEqual(src, dst));
}

} // namespace
} // namespace lazydp
