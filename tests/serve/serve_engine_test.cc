/** @file Unit tests for ServeEngine + LoadGenerator. */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "serve/load_generator.h"
#include "serve/serve_engine.h"
#include "serve/snapshot_store.h"

namespace lazydp {
namespace {

ModelConfig
tinyConfig()
{
    auto mc = ModelConfig::tiny();
    mc.rowsPerTable = 64;
    return mc;
}

TEST(ServeEngineTest, ScoresMatchADirectForwardBitExactly)
{
    const ModelConfig mc = tinyConfig();
    DlrmModel model(mc, 42);
    ModelSnapshotStore store;
    store.publish(model, 3);

    ThreadPool pool(1);
    ServeOptions opts;
    opts.threads = 1;
    opts.batch.maxBatch = 4;
    opts.batch.maxDelayUs = 100;
    ServeEngine engine(store, mc, pool, opts);

    LoadOptions lopts;
    lopts.seed = 9;
    LoadGenerator generator(engine, mc, lopts);

    for (std::uint64_t id = 0; id < 20; ++id) {
        const ServeQuery query = generator.makeQuery(id);

        // Reference: the same example as a batch-of-1 const forward.
        MiniBatch mb;
        mb.resize(1, mc.numTables, mc.pooling, mc.numDense);
        std::memcpy(mb.dense.row(0).data(), query.dense.data(),
                    mc.numDense * sizeof(float));
        for (std::size_t t = 0; t < mc.numTables; ++t)
            std::memcpy(mb.indices.data() + t * mc.pooling,
                        query.indices.data() + t * mc.pooling,
                        mc.pooling * sizeof(std::uint32_t));
        DlrmWorkspace ws;
        Tensor logits;
        store.current()->model.forward(mb, logits,
                                       ws, ExecContext::serial());
        const float expected =
            1.0f / (1.0f + std::exp(-logits.at(0, 0)));

        auto request = engine.submit(query);
        ASSERT_NE(request, nullptr);
        const ServeResult &r = request->wait();
        // Per-example forward rows are batch-size-invariant (the
        // replica path's contract), so this holds at any micro-batch.
        EXPECT_EQ(r.score, expected) << "query " << id;
        EXPECT_EQ(r.version, 1u);
        EXPECT_EQ(r.iteration, 3u);
        EXPECT_GE(r.batchSize, 1u);
        EXPECT_GT(r.score, 0.0f);
        EXPECT_LT(r.score, 1.0f);
    }

    const ServeStats stats = engine.stats();
    EXPECT_EQ(stats.served, 20u);
    EXPECT_GE(stats.batches, 1u);
    EXPECT_EQ(stats.minVersion, 1u);
    EXPECT_EQ(stats.maxVersion, 1u);
}

TEST(ServeEngineTest, SubmitAfterStopCompletesWithShutdownStatus)
{
    // Regression: submit() after stop() used to return nullptr -- a
    // silent drop every caller had to special-case (and the load
    // generator once crashed on). Now the handle always comes back,
    // already completed with an explicit status.
    const ModelConfig mc = tinyConfig();
    DlrmModel model(mc, 1);
    ModelSnapshotStore store;
    store.publish(model, 0);

    ThreadPool pool(1);
    ServeOptions opts;
    opts.threads = 1;
    ServeEngine engine(store, mc, pool, opts);
    LoadOptions lopts;
    LoadGenerator generator(engine, mc, lopts);

    engine.stop();
    auto request = engine.submit(generator.makeQuery(0));
    ASSERT_NE(request, nullptr);
    EXPECT_TRUE(request->done()); // completed before submit returned
    const ServeResult &r = request->wait();
    EXPECT_EQ(r.status, ServeResult::Status::Shutdown);
    EXPECT_EQ(r.version, 0u); // never scored
    EXPECT_EQ(engine.stats().shutdown, 1u);
    engine.stop(); // idempotent
}

TEST(ServeEngineTest, StopBeforeFirstPublishDoesNotDeadlock)
{
    // Regression: a lane waiting for the first publish must observe
    // stop() -- otherwise ~ServeEngine joins forever -- and the queued
    // request must complete (version 0 = never scored) so no client
    // blocks.
    const ModelConfig mc = tinyConfig();
    ModelSnapshotStore store; // never published
    ThreadPool pool(1);
    ServeOptions opts;
    opts.threads = 1;
    opts.batch.maxBatch = 1;
    ServeEngine engine(store, mc, pool, opts);
    LoadOptions lopts;
    LoadGenerator generator(engine, mc, lopts);

    auto request = engine.submit(generator.makeQuery(0));
    ASSERT_NE(request, nullptr);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    engine.stop(); // must return, not deadlock
    const ServeResult &r = request->wait();
    EXPECT_EQ(r.version, 0u);
}

TEST(LoadGeneratorTest, QueriesAreDeterministicAndInRange)
{
    const ModelConfig mc = tinyConfig();
    DlrmModel model(mc, 1);
    ModelSnapshotStore store;
    store.publish(model, 0);
    ThreadPool pool(1);
    ServeOptions opts;
    ServeEngine engine(store, mc, pool, opts);

    LoadOptions lopts;
    lopts.seed = 123;
    lopts.access = AccessConfig::criteoHigh();
    LoadGenerator a(engine, mc, lopts);
    LoadGenerator b(engine, mc, lopts);
    for (std::uint64_t id : {0ull, 1ull, 57ull}) {
        const ServeQuery qa = a.makeQuery(id);
        const ServeQuery qb = b.makeQuery(id);
        EXPECT_EQ(qa.dense, qb.dense);
        EXPECT_EQ(qa.indices, qb.indices);
        EXPECT_EQ(qa.dense.size(), mc.numDense);
        EXPECT_EQ(qa.indices.size(), mc.numTables * mc.pooling);
        for (const float d : qa.dense) {
            EXPECT_GE(d, -1.0f);
            EXPECT_LT(d, 1.0f);
        }
        for (const std::uint32_t idx : qa.indices)
            EXPECT_LT(idx, mc.rowsPerTable);
    }
    // Different seeds decorrelate.
    lopts.seed = 124;
    LoadGenerator c(engine, mc, lopts);
    EXPECT_NE(c.makeQuery(0).dense, a.makeQuery(0).dense);
}

TEST(LoadGeneratorTest, OpenLoopCompletesAndMeasures)
{
    const ModelConfig mc = tinyConfig();
    DlrmModel model(mc, 7);
    ModelSnapshotStore store;
    store.publish(model, 0);
    ThreadPool pool(1);
    ServeOptions opts;
    opts.threads = 1;
    opts.batch.maxBatch = 8;
    opts.batch.maxDelayUs = 500;
    ServeEngine engine(store, mc, pool, opts);

    LoadOptions lopts;
    lopts.requests = 200;
    lopts.qps = 5000.0; // open loop
    lopts.seed = 3;
    LoadGenerator generator(engine, mc, lopts);
    const LoadReport report = generator.run();

    EXPECT_EQ(report.completed, 200u);
    EXPECT_GT(report.qps(), 0.0);
    EXPECT_EQ(report.latency.count, 200u);
    EXPECT_GT(report.latency.p50, 0.0);
    EXPECT_LE(report.latency.p50, report.latency.p999);
    EXPECT_EQ(report.minVersion, 1u);
    EXPECT_EQ(report.maxVersion, 1u);
    EXPECT_GE(report.meanBatch, 1.0);
}

} // namespace
} // namespace lazydp
