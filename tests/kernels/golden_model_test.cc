/**
 * @file
 * Golden-model regression tests: fixed-seed 50-iteration runs for all
 * seven engines, pinned by an FNV-1a hash of the final model computed
 * under the SCALAR kernel backend. Any kernel or engine edit that
 * silently changes training numerics fails these loudly.
 *
 * Regen procedure (after an INTENTIONAL numerics change):
 *
 *   1. Build Release with the tier-1 configuration
 *      (`cmake -B build -S . && cmake --build build -j`).
 *   2. `LAZYDP_GOLDEN_REGEN=1 build/lazydp_kernels_tests \
 *          --gtest_filter='GoldenModel*'`
 *      prints one `{"<engine>", 0x<hash>ull},` row per engine.
 *   3. Paste the rows over kGoldenHashes below and re-run the suite
 *      (both kernels=scalar and kernels=avx2 legs must pass: the hash
 *      is checked under a forced scalar backend regardless of the
 *      process-wide selection, so the table is backend-independent).
 *   4. Say WHY the numerics moved in the commit message.
 *
 * The hashes are a function of IEEE-754 float arithmetic on the scalar
 * reference kernels plus libm transcendentals (BCE loss, Box-Muller),
 * so they are stable for a given toolchain/libm and may legitimately
 * differ across platforms; if a port trips these without any code
 * change, regen on that platform rather than loosening the test.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/factory.h"
#include "data/data_loader.h"
#include "data/synthetic_dataset.h"
#include "kernels/kernel_registry.h"
#include "nn/dlrm.h"
#include "train/trainer.h"

namespace lazydp {
namespace {

/** FNV-1a 64-bit over a byte range. */
std::uint64_t
fnv1a(const void *data, std::size_t bytes, std::uint64_t h)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= 0x100000001B3ull;
    }
    return h;
}

/** Hash every trained parameter: tables, MLP weights, MLP biases. */
std::uint64_t
modelHash(const DlrmModel &model)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (const auto &table : model.tables()) {
        h = fnv1a(table.weights().data(),
                  table.weights().size() * sizeof(float), h);
    }
    const auto hash_mlp = [&](const Mlp &mlp) {
        for (const auto &layer : mlp.layers()) {
            h = fnv1a(layer.weight().data(),
                      layer.weight().size() * sizeof(float), h);
            h = fnv1a(layer.bias().data(),
                      layer.bias().size() * sizeof(float), h);
        }
    };
    hash_mlp(model.bottomMlp());
    hash_mlp(model.topMlp());
    return h;
}

struct GoldenEntry
{
    const char *engine;
    std::uint64_t hash;
};

// Regenerate with LAZYDP_GOLDEN_REGEN=1 (see file header).
// dpsgd-r and dpsgd-f legitimately share a hash: their per-example
// clip factors agree to sub-float precision (materialized norms vs
// exact ghost norms), and everything downstream is keyed noise.
// Last regen: toolchain move -- the "scalar" TU is compiled with
// -march=native here (LAZYDP_NATIVE), so the compiler's FMA
// contraction and the host libm define the reference arithmetic; the
// previous table came from a non-FMA build of the same sources.
constexpr GoldenEntry kGoldenHashes[] = {
    {"sgd", 0x60150803AE6B766Cull},
    {"dpsgd-b", 0x74D7D8E1B362357Bull},
    {"dpsgd-r", 0xAA68303E92CC31BFull},
    {"dpsgd-f", 0xAA68303E92CC31BFull},
    {"eana", 0x6B86A079C5A38272ull},
    {"lazydp", 0xFF5A8FF49A74F39Dull},
    {"lazydp-noans", 0x6489707C7DFB7B8Full},
};

constexpr std::uint64_t kIters = 50;

/** The fixed training scenario every hash is pinned to. */
std::uint64_t
trainAndHash(const std::string &engine)
{
    // Force the golden backend for the duration of the run; restore
    // the suite's process-wide selection afterwards so the rest of the
    // kernels suite still exercises whatever CI selected.
    const KernelBackend before = activeKernelBackend();
    setKernelBackend(KernelBackend::Scalar);

    auto mc = ModelConfig::tiny();
    mc.rowsPerTable = 96;
    mc.pooling = 2;

    DatasetConfig dc;
    dc.numDense = mc.numDense;
    dc.numTables = mc.numTables;
    dc.rowsPerTable = mc.rowsPerTable;
    dc.pooling = mc.pooling;
    dc.batchSize = 32;
    dc.seed = 0x60DE;
    dc.access = AccessConfig::uniform();

    TrainHyper hyper;
    hyper.lr = 0.05f;
    hyper.clipNorm = 0.9f;
    hyper.noiseMultiplier = 1.0f;
    hyper.noiseSeed = 0x5EED5;

    DlrmModel model(mc, 41);
    SyntheticDataset ds(dc);
    SequentialLoader loader(ds);
    auto algo = makeAlgorithm(engine, model, hyper);
    Trainer(*algo, loader).run(kIters);

    setKernelBackend(before);
    return modelHash(model);
}

class GoldenModelTest : public ::testing::TestWithParam<GoldenEntry>
{
};

TEST_P(GoldenModelTest, FinalModelHashPinned)
{
    const GoldenEntry entry = GetParam();
    const std::uint64_t actual = trainAndHash(entry.engine);
    if (std::getenv("LAZYDP_GOLDEN_REGEN") != nullptr) {
        std::printf("    {\"%s\", 0x%016llXull},\n", entry.engine,
                    static_cast<unsigned long long>(actual));
        GTEST_SKIP() << "regen mode: hash printed, not checked";
    }
    EXPECT_EQ(entry.hash, actual)
        << entry.engine << ": final-model FNV-1a hash moved (got 0x"
        << std::hex << actual << std::dec
        << "). If the numerics change is intentional, follow the regen "
           "procedure in this file's header.";
}

INSTANTIATE_TEST_SUITE_P(
    Engines, GoldenModelTest, ::testing::ValuesIn(kGoldenHashes),
    [](const ::testing::TestParamInfo<GoldenEntry> &info) {
        std::string name = info.param.engine;
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

/**
 * The hash itself must be scalar-backend-stable run to run (guards the
 * registry's determinism contract at the full-training altitude).
 */
TEST(GoldenModelTest, ScalarRunsAreBitStable)
{
    const std::uint64_t a = trainAndHash("lazydp");
    const std::uint64_t b = trainAndHash("lazydp");
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace lazydp
