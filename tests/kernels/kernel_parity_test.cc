/**
 * @file
 * Kernel-parity property tests: every registered SIMD backend must
 * reproduce the scalar reference within the tolerances the registry
 * header promises, across randomized shapes, odd/remainder lengths,
 * zero-length calls, and unaligned slices.
 *
 * Tolerance taxonomy (see kernels/kernel_registry.h):
 *  - exact (bitwise): fill, add, scale, relu fwd/bwd, poolRows — no
 *    FMA opportunity, element-wise, same accumulation order.
 *  - ULP-tight: axpy/axpby/scatterAxpyRows/gemvDotRow — a single FMA
 *    contraction per element (or a double-blocked sum cast to float).
 *  - blocked-reduction: dot/squaredNorm — double partials over
 *    kReduceBlock elements; only in-block reassociation differs.
 *  - Box-Muller: polynomial-vs-libm transcendentals, |diff| <~ 1e-5
 *    per N(0, sigma) sample.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>
#include <vector>

#include "kernels/kernel_registry.h"
#include "rng/philox.h"

namespace lazydp {
namespace {

/** Lengths hitting every vector-width remainder and block boundary. */
const std::size_t kLens[] = {0,  1,  2,  3,  5,   7,   8,   9,
                             15, 16, 17, 31, 32,  33,  63,  64,
                             65, 96, 100, 127, 128, 255, 257, 1000};

std::vector<float>
randomVec(std::mt19937 &rng, std::size_t n, float lo = -2.0f,
          float hi = 2.0f)
{
    std::uniform_real_distribution<float> dist(lo, hi);
    std::vector<float> v(n);
    for (auto &x : v)
        x = dist(rng);
    return v;
}

/** Backends to compare against the scalar reference. */
std::vector<const KernelTable *>
simdBackends()
{
    std::vector<const KernelTable *> out;
    if (const KernelTable *avx2 = kernelTable(KernelBackend::Avx2))
        out.push_back(avx2);
    return out;
}

const KernelTable &
scalarRef()
{
    const KernelTable *s = kernelTable(KernelBackend::Scalar);
    EXPECT_NE(s, nullptr);
    return *s;
}

void
expectExact(const std::vector<float> &want, const std::vector<float> &got,
            const char *what, std::size_t n)
{
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(want[i], got[i])
            << what << " diverges bitwise at i=" << i << " n=" << n;
    }
}

void
expectUlpClose(const std::vector<float> &want,
               const std::vector<float> &got, const char *what,
               std::size_t n, double rel = 1e-6, double abs = 1e-6)
{
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
        const double w = want[i];
        const double g = got[i];
        const double tol = abs + rel * std::abs(w);
        ASSERT_NEAR(w, g, tol)
            << what << " out of tolerance at i=" << i << " n=" << n;
    }
}

TEST(KernelRegistryTest, ScalarAlwaysAvailable)
{
    EXPECT_TRUE(kernelBackendAvailable(KernelBackend::Scalar));
    EXPECT_NE(kernelTable(KernelBackend::Scalar), nullptr);
    // Auto always resolves to something runnable.
    EXPECT_NE(kernelTable(KernelBackend::Auto), nullptr);
    EXPECT_NE(kernels().backend, KernelBackend::Auto);
}

TEST(KernelRegistryTest, ParseAndNames)
{
    KernelBackend b = KernelBackend::Auto;
    EXPECT_TRUE(parseKernelBackend("scalar", b));
    EXPECT_EQ(b, KernelBackend::Scalar);
    EXPECT_TRUE(parseKernelBackend("avx2", b));
    EXPECT_EQ(b, KernelBackend::Avx2);
    EXPECT_TRUE(parseKernelBackend("auto", b));
    EXPECT_EQ(b, KernelBackend::Auto);
    b = KernelBackend::Scalar;
    EXPECT_FALSE(parseKernelBackend("sse9", b));
    EXPECT_FALSE(parseKernelBackend("", b));
    EXPECT_FALSE(parseKernelBackend("AVX2", b)); // case-sensitive
    EXPECT_EQ(b, KernelBackend::Scalar) << "failed parse must not write";

    EXPECT_STREQ(kernelBackendName(KernelBackend::Scalar), "scalar");
    EXPECT_STREQ(kernelBackendName(KernelBackend::Avx2), "avx2");
    EXPECT_STREQ(kernelBackendName(KernelBackend::Auto), "auto");
}

TEST(KernelRegistryTest, SetBackendSwitchesDispatch)
{
    const KernelBackend before = activeKernelBackend();
    setKernelBackend(KernelBackend::Scalar);
    EXPECT_EQ(activeKernelBackend(), KernelBackend::Scalar);
    EXPECT_EQ(kernels().gaussian, GaussianKernel::Scalar);
    // Requesting an unavailable backend falls back to scalar instead
    // of crashing (forced CI matrix legs on old hardware).
    setKernelBackend(KernelBackend::Avx2);
    if (kernelBackendAvailable(KernelBackend::Avx2))
        EXPECT_EQ(activeKernelBackend(), KernelBackend::Avx2);
    else
        EXPECT_EQ(activeKernelBackend(), KernelBackend::Scalar);
    setKernelBackend(before);
    EXPECT_EQ(activeKernelBackend(), before);
}

TEST(KernelParityTest, ElementwiseExact)
{
    std::mt19937 rng(0xE1);
    const KernelTable &ref = scalarRef();
    for (const KernelTable *kt : simdBackends()) {
        for (const std::size_t n : kLens) {
            const auto a = randomVec(rng, n);
            const auto b = randomVec(rng, n);

            std::vector<float> w(n, -1.0f), g(n, -1.0f);
            ref.fill(w.data(), n, 3.25f);
            kt->fill(g.data(), n, 3.25f);
            expectExact(w, g, "fill", n);

            ref.add(w.data(), a.data(), b.data(), n);
            kt->add(g.data(), a.data(), b.data(), n);
            expectExact(w, g, "add", n);

            w = a;
            g = a;
            ref.scale(w.data(), n, 1.7f);
            kt->scale(g.data(), n, 1.7f);
            expectExact(w, g, "scale", n);

            ref.reluForward(w.data(), a.data(), n);
            kt->reluForward(g.data(), a.data(), n);
            expectExact(w, g, "reluForward", n);

            ref.reluBackward(w.data(), a.data(), b.data(), n);
            kt->reluBackward(g.data(), a.data(), b.data(), n);
            expectExact(w, g, "reluBackward", n);
        }
    }
}

TEST(KernelParityTest, AxpyFamilyUlpClose)
{
    std::mt19937 rng(0xA2);
    const KernelTable &ref = scalarRef();
    for (const KernelTable *kt : simdBackends()) {
        for (const std::size_t n : kLens) {
            const auto x = randomVec(rng, n);
            const auto y0 = randomVec(rng, n);

            auto w = y0;
            auto g = y0;
            ref.axpy(w.data(), x.data(), n, -0.37f);
            kt->axpy(g.data(), x.data(), n, -0.37f);
            expectUlpClose(w, g, "axpy", n);

            w = y0;
            g = y0;
            ref.axpby(w.data(), x.data(), n, 0.81f, 0.995f);
            kt->axpby(g.data(), x.data(), n, 0.81f, 0.995f);
            expectUlpClose(w, g, "axpby", n);
        }
    }
}

TEST(KernelParityTest, BlockedReductionsMatch)
{
    std::mt19937 rng(0xD0);
    const KernelTable &ref = scalarRef();
    for (const KernelTable *kt : simdBackends()) {
        for (const std::size_t n : kLens) {
            const auto a = randomVec(rng, n);
            const auto b = randomVec(rng, n);
            const double wd = ref.dot(a.data(), b.data(), n);
            const double gd = kt->dot(a.data(), b.data(), n);
            EXPECT_NEAR(wd, gd, 1e-10 * (1.0 + std::abs(wd)))
                << "dot n=" << n;
            const double wn = ref.squaredNorm(a.data(), n);
            const double gn = kt->squaredNorm(a.data(), n);
            EXPECT_NEAR(wn, gn, 1e-10 * (1.0 + wn))
                << "squaredNorm n=" << n;
        }
    }
}

/**
 * The blocking contract itself: a reduction over [0, n) must equal the
 * in-order sum of its kReduceBlock-sized block partials EXACTLY, for
 * every backend. This is what makes results independent of how callers
 * shard loops (as long as shard boundaries are block-aligned) and is
 * the anchor of the cross-backend tolerance above.
 */
TEST(KernelParityTest, ReductionBlockingContract)
{
    std::mt19937 rng(0xB10C);
    for (const std::size_t n :
         {std::size_t{1}, std::size_t{63}, std::size_t{64},
          std::size_t{65}, std::size_t{640}, std::size_t{1000}}) {
        const auto a = randomVec(rng, n);
        const auto b = randomVec(rng, n);
        std::vector<const KernelTable *> tables{&scalarRef()};
        for (const KernelTable *kt : simdBackends())
            tables.push_back(kt);
        for (const KernelTable *kt : tables) {
            const double whole = kt->dot(a.data(), b.data(), n);
            double sum = 0.0;
            for (std::size_t base = 0; base < n; base += kReduceBlock) {
                const std::size_t len =
                    std::min(kReduceBlock, n - base);
                sum += kt->dot(a.data() + base, b.data() + base, len);
            }
            EXPECT_EQ(whole, sum)
                << kt->name << " blocking broken at n=" << n;
        }
    }
}

TEST(KernelParityTest, GemvDotRowMatchesScalar)
{
    std::mt19937 rng(0x6E);
    const KernelTable &ref = scalarRef();
    const std::size_t ks[] = {0, 1, 3, 8, 17, 64, 65, 130};
    const std::size_t ns[] = {1, 2, 3, 5, 8};
    for (const KernelTable *kt : simdBackends()) {
        for (const std::size_t k : ks) {
            for (const std::size_t n : ns) {
                const auto arow = randomVec(rng, k);
                const auto b = randomVec(rng, n * k);
                for (const bool accumulate : {false, true}) {
                    auto w = randomVec(rng, n);
                    auto g = w;
                    ref.gemvDotRow(arow.data(), b.data(), w.data(), n, k,
                                   accumulate);
                    kt->gemvDotRow(arow.data(), b.data(), g.data(), n, k,
                                   accumulate);
                    expectUlpClose(w, g, "gemvDotRow", n * 1000 + k);
                }
            }
        }
    }
}

TEST(KernelParityTest, PoolRowsExactAndScatterUlpClose)
{
    std::mt19937 rng(0x9001);
    const KernelTable &ref = scalarRef();
    const std::size_t rows = 37;
    for (const KernelTable *kt : simdBackends()) {
        for (const std::size_t dim : {std::size_t{1}, std::size_t{4},
                                      std::size_t{8}, std::size_t{16},
                                      std::size_t{17}, std::size_t{128}}) {
            const auto table = randomVec(rng, rows * dim);
            for (const std::size_t count :
                 {std::size_t{0}, std::size_t{1}, std::size_t{3},
                  std::size_t{9}}) {
                // pooling: duplicates allowed
                std::vector<std::uint32_t> idx(count);
                for (auto &v : idx)
                    v = static_cast<std::uint32_t>(rng() % rows);
                std::vector<float> w(dim, -5.0f), g(dim, -7.0f);
                ref.poolRows(w.data(), table.data(), idx.data(), count,
                             dim);
                kt->poolRows(g.data(), table.data(), idx.data(), count,
                             dim);
                expectExact(w, g, "poolRows", dim * 100 + count);

                // scatter: unique rows required
                std::vector<std::uint32_t> uniq;
                for (std::uint32_t r = 0; r < count; ++r)
                    uniq.push_back(r * 3 % rows);
                std::sort(uniq.begin(), uniq.end());
                uniq.erase(std::unique(uniq.begin(), uniq.end()),
                           uniq.end());
                const auto vals = randomVec(rng, uniq.size() * dim);
                auto tw = table;
                auto tg = table;
                ref.scatterAxpyRows(tw.data(), uniq.data(), vals.data(),
                                    uniq.size(), dim, -0.25f);
                kt->scatterAxpyRows(tg.data(), uniq.data(), vals.data(),
                                    uniq.size(), dim, -0.25f);
                expectUlpClose(tw, tg, "scatterAxpyRows",
                               dim * 100 + count);
            }
        }
    }
}

TEST(KernelParityTest, StreamWithOpsClose)
{
    std::mt19937 rng(0x57);
    const KernelTable &ref = scalarRef();
    for (const KernelTable *kt : simdBackends()) {
        for (const std::size_t n : {std::size_t{0}, std::size_t{7},
                                    std::size_t{33}, std::size_t{200}}) {
            for (const int ops : {1, 2, 31, 101}) {
                const auto x = randomVec(rng, n, 0.5f, 1.5f);
                std::vector<float> w(n), g(n);
                EXPECT_EQ(ref.streamWithOps(w.data(), x.data(), n, ops),
                          n * static_cast<std::size_t>(ops));
                EXPECT_EQ(kt->streamWithOps(g.data(), x.data(), n, ops),
                          n * static_cast<std::size_t>(ops));
                expectUlpClose(w, g, "streamWithOps", n, 1e-5, 1e-6);
            }
        }
    }
}

TEST(KernelParityTest, GaussianFillKeyedCloseAndCounterStable)
{
    const Philox4x32 philox(0xFEEDFACE);
    const KernelTable &ref = scalarRef();
    for (const KernelTable *kt : simdBackends()) {
        for (const std::size_t dim :
             {std::size_t{0}, std::size_t{1}, std::size_t{3},
              std::size_t{4}, std::size_t{31}, std::size_t{32},
              std::size_t{33}, std::size_t{100}, std::size_t{512}}) {
            std::vector<float> w(dim, 0.5f), g(dim, 0.5f);
            ref.gaussianFillKeyed(philox, 77, 12345, w.data(), dim, 1.5f,
                                  2.0f, /*accumulate=*/false);
            kt->gaussianFillKeyed(philox, 77, 12345, g.data(), dim, 1.5f,
                                  2.0f, /*accumulate=*/false);
            for (std::size_t i = 0; i < dim; ++i) {
                // |diff| < 1e-5 per unit-sigma sample; sigma=1.5,
                // scale=2 -> 3x headroom plus margin.
                ASSERT_NEAR(w[i], g[i], 1e-4)
                    << "gaussian sample " << i << " dim=" << dim;
            }

            // accumulate path adds the same values
            std::vector<float> wa(dim, 1.0f), ga(dim, 1.0f);
            ref.gaussianFillKeyed(philox, 77, 12345, wa.data(), dim,
                                  1.5f, 2.0f, /*accumulate=*/true);
            kt->gaussianFillKeyed(philox, 77, 12345, ga.data(), dim,
                                  1.5f, 2.0f, /*accumulate=*/true);
            for (std::size_t i = 0; i < dim; ++i)
                ASSERT_NEAR(wa[i], ga[i], 1e-4);
        }

        // Counter-mapping stability: filling [0, 64) in one call equals
        // two keyed calls covering [0, 32) and [32, 64) — the property
        // the sharded parallel fills rely on. Exact per backend.
        const std::size_t dim = 64;
        std::vector<float> whole(dim), parts(dim);
        kt->gaussianFillKeyed(philox, 9, 100, whole.data(), dim, 1.0f,
                              1.0f, false);
        kt->gaussianFillKeyed(philox, 9, 100, parts.data(), 32, 1.0f,
                              1.0f, false);
        kt->gaussianFillKeyed(philox, 9, 100 + 32 / 4, parts.data() + 32,
                              32, 1.0f, 1.0f, false);
        for (std::size_t i = 0; i < dim; ++i)
            ASSERT_EQ(whole[i], parts[i]) << "counter mapping at " << i;
    }
}

TEST(KernelParityTest, UnalignedSlices)
{
    std::mt19937 rng(0xA117);
    const KernelTable &ref = scalarRef();
    for (const KernelTable *kt : simdBackends()) {
        for (const std::size_t off :
             {std::size_t{1}, std::size_t{2}, std::size_t{3},
              std::size_t{5}, std::size_t{7}}) {
            const std::size_t n = 129;
            const auto x = randomVec(rng, n + off);
            auto yw = randomVec(rng, n + off);
            auto yg = yw;
            ref.axpy(yw.data() + off, x.data() + off, n, 0.5f);
            kt->axpy(yg.data() + off, x.data() + off, n, 0.5f);
            for (std::size_t i = 0; i < off; ++i)
                ASSERT_EQ(yw[i], yg[i]) << "prefix clobbered";
            expectUlpClose(yw, yg, "axpy unaligned", n);

            const double wd = ref.dot(x.data() + off, yw.data() + off, n);
            const double gd = kt->dot(x.data() + off, yg.data() + off, n);
            EXPECT_NEAR(wd, gd, 1e-9 * (1.0 + std::abs(wd)));

            std::vector<float> fw(n + off, 9.0f), fg(n + off, 9.0f);
            ref.fill(fw.data() + off, n, -2.0f);
            kt->fill(fg.data() + off, n, -2.0f);
            expectExact(fw, fg, "fill unaligned", n);
        }
    }
}

/** Randomized-shape fuzz across the FMA family and reductions. */
TEST(KernelParityTest, RandomizedShapes)
{
    std::mt19937 rng(0xF022);
    const KernelTable &ref = scalarRef();
    std::uniform_int_distribution<std::size_t> len_dist(0, 700);
    std::uniform_int_distribution<std::size_t> off_dist(0, 9);
    std::uniform_real_distribution<float> coef(-1.5f, 1.5f);
    for (const KernelTable *kt : simdBackends()) {
        for (int trial = 0; trial < 60; ++trial) {
            const std::size_t n = len_dist(rng);
            const std::size_t off = off_dist(rng);
            const float a = coef(rng);
            const float b = coef(rng);
            const auto x = randomVec(rng, n + off);
            auto yw = randomVec(rng, n + off);
            auto yg = yw;
            ref.axpby(yw.data() + off, x.data() + off, n, a, b);
            kt->axpby(yg.data() + off, x.data() + off, n, a, b);
            expectUlpClose(yw, yg, "axpby fuzz", n);

            const double wd =
                ref.squaredNorm(x.data() + off, n);
            const double gd = kt->squaredNorm(x.data() + off, n);
            EXPECT_NEAR(wd, gd, 1e-10 * (1.0 + wd)) << "fuzz trial "
                                                    << trial;
        }
    }
}

} // namespace
} // namespace lazydp
