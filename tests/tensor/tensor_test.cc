/** @file Unit tests for Tensor. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "tensor/tensor.h"

namespace lazydp {
namespace {

TEST(TensorTest, ShapeAndRowAccess)
{
    Tensor t(3, 4);
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 4u);
    EXPECT_EQ(t.size(), 12u);
    t.at(1, 2) = 7.0f;
    auto row = t.row(1);
    EXPECT_EQ(row.size(), 4u);
    EXPECT_EQ(row[2], 7.0f);
}

TEST(TensorTest, FillAndZero)
{
    Tensor t(2, 2);
    t.fill(3.0f);
    EXPECT_EQ(t.at(1, 1), 3.0f);
    t.zero();
    EXPECT_EQ(t.at(0, 0), 0.0f);
}

TEST(TensorTest, CopyFromMatchesExactly)
{
    Tensor a(2, 3);
    for (std::size_t i = 0; i < a.size(); ++i)
        a.data()[i] = static_cast<float>(i);
    Tensor b(2, 3);
    b.copyFrom(a);
    for (std::size_t i = 0; i < b.size(); ++i)
        EXPECT_EQ(b.data()[i], static_cast<float>(i));
}

TEST(TensorTest, CopyFromShapeMismatchPanics)
{
    setLogThrowMode(true);
    Tensor a(2, 3);
    Tensor b(3, 2);
    EXPECT_THROW(b.copyFrom(a), std::runtime_error);
    setLogThrowMode(false);
}

TEST(TensorTest, SquaredNorm)
{
    Tensor t(1, 4);
    t.data()[0] = 1.0f;
    t.data()[1] = 2.0f;
    t.data()[2] = 2.0f;
    EXPECT_DOUBLE_EQ(t.squaredNorm(), 9.0);
}

TEST(TensorTest, ResizeZeroesContents)
{
    Tensor t(2, 2);
    t.fill(5.0f);
    t.resize(4, 4);
    EXPECT_EQ(t.rows(), 4u);
    EXPECT_EQ(t.at(3, 3), 0.0f);
}

} // namespace
} // namespace lazydp
