/** @file Unit tests for AlignedBuffer. */

#include <gtest/gtest.h>

#include <cstdint>

#include "tensor/aligned_buffer.h"

namespace lazydp {
namespace {

TEST(AlignedBufferTest, AllocationIsAlignedAndZeroed)
{
    AlignedBuffer<float> buf(1000);
    EXPECT_EQ(buf.size(), 1000u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) %
                  kBufferAlignment,
              0u);
    for (float v : buf)
        EXPECT_EQ(v, 0.0f);
}

TEST(AlignedBufferTest, OddSizesRoundUpInternally)
{
    // sizes not divisible by the alignment must still work
    for (std::size_t n : {1u, 3u, 17u, 63u, 65u}) {
        AlignedBuffer<float> buf(n);
        EXPECT_EQ(buf.size(), n);
        buf[n - 1] = 1.0f;
        EXPECT_EQ(buf[n - 1], 1.0f);
    }
}

TEST(AlignedBufferTest, MoveTransfersOwnership)
{
    AlignedBuffer<int> a(10);
    a[3] = 42;
    int *ptr = a.data();
    AlignedBuffer<int> b(std::move(a));
    EXPECT_EQ(b.data(), ptr);
    EXPECT_EQ(b[3], 42);
    EXPECT_EQ(a.data(), nullptr);
    EXPECT_TRUE(a.empty());
}

TEST(AlignedBufferTest, MoveAssignReleasesOld)
{
    AlignedBuffer<int> a(4);
    AlignedBuffer<int> b(8);
    b = std::move(a);
    EXPECT_EQ(b.size(), 4u);
}

TEST(AlignedBufferTest, ZeroResetsContents)
{
    AlignedBuffer<float> buf(16);
    buf[5] = 3.5f;
    buf.zero();
    EXPECT_EQ(buf[5], 0.0f);
}

TEST(AlignedBufferTest, EmptyBufferIsSafe)
{
    AlignedBuffer<float> buf;
    EXPECT_TRUE(buf.empty());
    buf.zero(); // no-op, must not crash
    AlignedBuffer<float> moved(std::move(buf));
    EXPECT_TRUE(moved.empty());
}

} // namespace
} // namespace lazydp
