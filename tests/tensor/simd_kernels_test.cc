/**
 * @file Unit + property tests for the SIMD kernels.
 *
 * Every kernel is checked against a plain scalar reference over
 * parameterized lengths, including lengths that exercise the vector
 * remainder path.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/xoshiro.h"
#include "tensor/simd_kernels.h"

namespace lazydp {
namespace {

std::vector<float>
randomVec(std::size_t n, std::uint64_t seed)
{
    Xoshiro256 rng(seed);
    std::vector<float> v(n);
    for (auto &x : v)
        x = 2.0f * rng.nextFloat() - 1.0f;
    return v;
}

class SimdLengthTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(SimdLengthTest, AxpyMatchesScalar)
{
    const std::size_t n = GetParam();
    auto x = randomVec(n, 1);
    auto y = randomVec(n, 2);
    auto y_ref = y;
    simd::axpy(y.data(), x.data(), n, 0.75f);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(y[i], y_ref[i] + 0.75f * x[i], 1e-6f) << "i=" << i;
}

TEST_P(SimdLengthTest, AxpbyMatchesScalar)
{
    const std::size_t n = GetParam();
    auto x = randomVec(n, 3);
    auto y = randomVec(n, 4);
    auto y_ref = y;
    simd::axpby(y.data(), x.data(), n, 2.0f, -0.5f);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(y[i], 2.0f * x[i] - 0.5f * y_ref[i], 1e-5f);
}

TEST_P(SimdLengthTest, AddMatchesScalar)
{
    const std::size_t n = GetParam();
    auto a = randomVec(n, 5);
    auto b = randomVec(n, 6);
    std::vector<float> dst(n);
    simd::add(dst.data(), a.data(), b.data(), n);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(dst[i], a[i] + b[i]);
}

TEST_P(SimdLengthTest, ScaleMatchesScalar)
{
    const std::size_t n = GetParam();
    auto a = randomVec(n, 7);
    auto ref = a;
    simd::scale(a.data(), n, 3.0f);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(a[i], ref[i] * 3.0f);
}

TEST_P(SimdLengthTest, DotMatchesScalarReference)
{
    const std::size_t n = GetParam();
    auto a = randomVec(n, 8);
    auto b = randomVec(n, 9);
    double ref = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        ref += static_cast<double>(a[i]) * b[i];
    EXPECT_NEAR(simd::dot(a.data(), b.data(), n), ref,
                1e-5 * (1.0 + std::abs(ref)));
}

TEST_P(SimdLengthTest, SquaredNormIsSelfDot)
{
    const std::size_t n = GetParam();
    auto a = randomVec(n, 10);
    EXPECT_DOUBLE_EQ(simd::squaredNorm(a.data(), n),
                     simd::dot(a.data(), a.data(), n));
}

TEST_P(SimdLengthTest, ReluForwardClampsNegatives)
{
    const std::size_t n = GetParam();
    auto x = randomVec(n, 11);
    std::vector<float> y(n);
    simd::reluForward(y.data(), x.data(), n);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(y[i], x[i] > 0.0f ? x[i] : 0.0f);
}

TEST_P(SimdLengthTest, ReluBackwardMasksByInputSign)
{
    const std::size_t n = GetParam();
    auto x = randomVec(n, 12);
    auto dy = randomVec(n, 13);
    std::vector<float> dx(n);
    simd::reluBackward(dx.data(), x.data(), dy.data(), n);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(dx[i], x[i] > 0.0f ? dy[i] : 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Lengths, SimdLengthTest,
                         ::testing::Values(0, 1, 7, 8, 9, 15, 16, 64, 100,
                                           1000, 4096));

TEST(StreamWithOpsTest, ReportsFlopCount)
{
    std::vector<float> x(64, 1.0f);
    std::vector<float> y(64);
    EXPECT_EQ(simd::streamWithOps(y.data(), x.data(), 64, 10), 640u);
}

TEST(StreamWithOpsTest, ZeroOpsCopies)
{
    auto x = randomVec(100, 14);
    std::vector<float> y(100);
    simd::streamWithOps(y.data(), x.data(), 100, 0);
    for (std::size_t i = 0; i < 100; ++i)
        EXPECT_EQ(y[i], x[i]);
}

TEST(StreamWithOpsTest, ValuesStayFinite)
{
    // 124 chained ops must not overflow or denormalize (Figure 6 sweep)
    auto x = randomVec(256, 15);
    std::vector<float> y(256);
    simd::streamWithOps(y.data(), x.data(), 256, 124);
    for (float v : y)
        EXPECT_TRUE(std::isfinite(v));
}

TEST(StreamWithOpsTest, VectorAndScalarTailAgree)
{
    // length 17 exercises both the 8-wide path and the scalar tail
    auto x = randomVec(17, 16);
    std::vector<float> y(17);
    simd::streamWithOps(y.data(), x.data(), 17, 6);
    // reference: scalar chain
    const float mul_c = 1.000001f;
    const float add_c = 1e-7f;
    for (std::size_t i = 0; i < 17; ++i) {
        float v = x[i];
        for (int k = 0; k < 6; k += 2) {
            v *= mul_c;
            v += add_c;
        }
        EXPECT_NEAR(y[i], v, 1e-6f);
    }
}

} // namespace
} // namespace lazydp
