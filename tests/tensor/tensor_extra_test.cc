/** @file Tests for resizeNoShrink and the scaled-reduction kernel. */

#include <gtest/gtest.h>

#include "dp/clipping.h"
#include "rng/xoshiro.h"
#include "tensor/tensor.h"

namespace lazydp {
namespace {

TEST(ResizeNoShrinkTest, KeepsBufferWhenCapacitySuffices)
{
    Tensor t(8, 8);
    const float *ptr = t.data();
    t.resizeNoShrink(4, 16); // same element count
    EXPECT_EQ(t.data(), ptr);
    EXPECT_EQ(t.rows(), 4u);
    EXPECT_EQ(t.cols(), 16u);
    t.resizeNoShrink(2, 8); // smaller
    EXPECT_EQ(t.data(), ptr);
}

TEST(ResizeNoShrinkTest, GrowsWhenNeeded)
{
    Tensor t(2, 2);
    t.resizeNoShrink(8, 8);
    EXPECT_EQ(t.rows(), 8u);
    EXPECT_EQ(t.size(), 64u);
    // grown buffer is zeroed (fresh allocation path)
    EXPECT_EQ(t.at(7, 7), 0.0f);
}

TEST(ResizeNoShrinkTest, AlternatingShapesDoNotThrash)
{
    Tensor t(16, 16);
    const float *ptr = t.data();
    for (int i = 0; i < 10; ++i) {
        t.resizeNoShrink(4, 64);
        t.resizeNoShrink(16, 16);
        t.resizeNoShrink(2, 100);
    }
    EXPECT_EQ(t.data(), ptr);
}

TEST(ReduceScaledRowsTest, MatchesSerialReference)
{
    const std::size_t batch = 16;
    const std::size_t params = 40000; // exceeds one parallel block
    Tensor rows(batch, params);
    Xoshiro256 rng(3);
    for (std::size_t i = 0; i < rows.size(); ++i)
        rows.data()[i] = 2.0f * rng.nextFloat() - 1.0f;
    std::vector<float> scales(batch);
    for (auto &s : scales)
        s = rng.nextFloat();

    Tensor out(1, params);
    reduceScaledRows(rows, scales, out);

    for (std::size_t j = 0; j < params; j += 997) {
        double ref = 0.0;
        for (std::size_t e = 0; e < batch; ++e)
            ref += static_cast<double>(scales[e]) * rows.at(e, j);
        EXPECT_NEAR(out.data()[j], ref, 1e-4) << "j=" << j;
    }
}

TEST(ReduceScaledRowsTest, ZeroScalesGiveZero)
{
    Tensor rows(4, 32);
    rows.fill(5.0f);
    Tensor out(1, 32);
    out.fill(9.0f);
    reduceScaledRows(rows, {0.0f, 0.0f, 0.0f, 0.0f}, out);
    for (std::size_t j = 0; j < 32; ++j)
        EXPECT_EQ(out.data()[j], 0.0f);
}

TEST(ReduceScaledRowsTest, ShapedOutputAccepted)
{
    // out may be any (r x c) with r*c == params (e.g. a weight matrix)
    Tensor rows(2, 12);
    rows.fill(1.0f);
    Tensor out(3, 4);
    reduceScaledRows(rows, {1.0f, 2.0f}, out);
    for (std::size_t j = 0; j < 12; ++j)
        EXPECT_EQ(out.data()[j], 3.0f);
}

} // namespace
} // namespace lazydp
