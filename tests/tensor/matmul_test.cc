/** @file Unit tests for the GEMM kernels against naive references. */

#include <gtest/gtest.h>

#include "rng/xoshiro.h"
#include "tensor/matmul.h"

namespace lazydp {
namespace {

Tensor
randomTensor(std::size_t r, std::size_t c, std::uint64_t seed)
{
    Tensor t(r, c);
    Xoshiro256 rng(seed);
    for (std::size_t i = 0; i < t.size(); ++i)
        t.data()[i] = 2.0f * rng.nextFloat() - 1.0f;
    return t;
}

struct Shape
{
    std::size_t m, k, n;
};

class MatmulShapeTest : public ::testing::TestWithParam<Shape>
{
};

TEST_P(MatmulShapeTest, ABtMatchesNaive)
{
    const auto [m, k, n] = GetParam();
    const Tensor a = randomTensor(m, k, 1);
    const Tensor b = randomTensor(n, k, 2);
    Tensor c(m, n);
    matmulABt(a, b, c);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double ref = 0.0;
            for (std::size_t kk = 0; kk < k; ++kk)
                ref += static_cast<double>(a.at(i, kk)) * b.at(j, kk);
            EXPECT_NEAR(c.at(i, j), ref, 1e-4) << i << "," << j;
        }
    }
}

TEST_P(MatmulShapeTest, ABMatchesNaive)
{
    const auto [m, k, n] = GetParam();
    const Tensor a = randomTensor(m, k, 3);
    const Tensor b = randomTensor(k, n, 4);
    Tensor c(m, n);
    matmulAB(a, b, c);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double ref = 0.0;
            for (std::size_t kk = 0; kk < k; ++kk)
                ref += static_cast<double>(a.at(i, kk)) * b.at(kk, j);
            EXPECT_NEAR(c.at(i, j), ref, 1e-4);
        }
    }
}

TEST_P(MatmulShapeTest, AtBMatchesNaive)
{
    const auto [m, k, n] = GetParam();
    const Tensor a = randomTensor(k, m, 5);
    const Tensor b = randomTensor(k, n, 6);
    Tensor c(m, n);
    matmulAtB(a, b, c);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double ref = 0.0;
            for (std::size_t kk = 0; kk < k; ++kk)
                ref += static_cast<double>(a.at(kk, i)) * b.at(kk, j);
            EXPECT_NEAR(c.at(i, j), ref, 1e-4);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulShapeTest,
    ::testing::Values(Shape{1, 1, 1}, Shape{2, 3, 4}, Shape{8, 8, 8},
                      Shape{5, 17, 3}, Shape{16, 33, 9},
                      Shape{31, 64, 31}));

TEST(MatmulTest, AccumulateAddsIntoOutput)
{
    const Tensor a = randomTensor(2, 3, 7);
    const Tensor b = randomTensor(4, 3, 8);
    Tensor c(2, 4);
    c.fill(1.0f);
    Tensor c2(2, 4);
    matmulABt(a, b, c2);
    matmulABt(a, b, c, /*accumulate=*/true);
    for (std::size_t i = 0; i < c.size(); ++i)
        EXPECT_NEAR(c.data()[i], c2.data()[i] + 1.0f, 1e-5);
}

TEST(MatmulTest, AddRowBiasBroadcasts)
{
    Tensor x(3, 2);
    x.fill(1.0f);
    Tensor bias(1, 2);
    bias.data()[0] = 0.5f;
    bias.data()[1] = -0.5f;
    addRowBias(x, bias);
    for (std::size_t r = 0; r < 3; ++r) {
        EXPECT_EQ(x.at(r, 0), 1.5f);
        EXPECT_EQ(x.at(r, 1), 0.5f);
    }
}

TEST(MatmulTest, ReduceRowsSumsColumns)
{
    Tensor dy(3, 2);
    for (std::size_t r = 0; r < 3; ++r) {
        dy.at(r, 0) = static_cast<float>(r + 1);
        dy.at(r, 1) = 10.0f;
    }
    Tensor bias_grad(1, 2);
    reduceRows(dy, bias_grad);
    EXPECT_EQ(bias_grad.at(0, 0), 6.0f);
    EXPECT_EQ(bias_grad.at(0, 1), 30.0f);
}

} // namespace
} // namespace lazydp
