/** @file Tests for the algorithm factory. */

#include <gtest/gtest.h>

#include "core/factory.h"

namespace lazydp {
namespace {

TEST(FactoryTest, BuildsEveryRegisteredAlgorithm)
{
    auto mc = ModelConfig::tiny();
    DlrmModel model(mc, 1);
    TrainHyper hyper;
    for (const auto &name : algorithmNames()) {
        SCOPED_TRACE(name);
        auto algo = makeAlgorithm(name, model, hyper);
        ASSERT_NE(algo, nullptr);
        EXPECT_FALSE(algo->name().empty());
    }
}

TEST(FactoryTest, NamesMapToExpectedDisplayNames)
{
    auto mc = ModelConfig::tiny();
    DlrmModel model(mc, 1);
    TrainHyper hyper;
    EXPECT_EQ(makeAlgorithm("sgd", model, hyper)->name(), "SGD");
    EXPECT_EQ(makeAlgorithm("dpsgd-f", model, hyper)->name(),
              "DP-SGD(F)");
    EXPECT_EQ(makeAlgorithm("eana", model, hyper)->name(), "EANA");
    EXPECT_EQ(makeAlgorithm("lazydp", model, hyper)->name(), "LazyDP");
}

TEST(FactoryTest, UnknownNameFails)
{
    setLogThrowMode(true);
    auto mc = ModelConfig::tiny();
    DlrmModel model(mc, 1);
    TrainHyper hyper;
    EXPECT_THROW(makeAlgorithm("adam", model, hyper),
                 std::runtime_error);
    setLogThrowMode(false);
}

} // namespace
} // namespace lazydp
