/** @file Unit tests for the HistoryTable. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/history_table.h"

namespace lazydp {
namespace {

TEST(HistoryTableTest, StartsAtZero)
{
    HistoryTable h(2, 10);
    for (std::size_t t = 0; t < 2; ++t)
        for (std::uint64_t r = 0; r < 10; ++r)
            EXPECT_EQ(h.lastNoised(t, r), 0u);
}

TEST(HistoryTableTest, DelaysAreIterationGaps)
{
    HistoryTable h(1, 10);
    const std::uint32_t rows1[] = {2, 5};
    std::vector<std::uint32_t> delays;
    h.delaysAndRenew(0, {rows1, 2}, 3, delays);
    EXPECT_EQ(delays, (std::vector<std::uint32_t>{3, 3}));

    // row 2 touched again at iter 7 -> delay 4; row 8 first time -> 7
    const std::uint32_t rows2[] = {2, 8};
    h.delaysAndRenew(0, {rows2, 2}, 7, delays);
    EXPECT_EQ(delays, (std::vector<std::uint32_t>{4, 7}));
}

TEST(HistoryTableTest, RenewWritesThrough)
{
    HistoryTable h(1, 4);
    h.renew(0, 2, 9);
    EXPECT_EQ(h.lastNoised(0, 2), 9u);
    std::vector<std::uint32_t> delays;
    const std::uint32_t rows[] = {2};
    h.delaysAndRenew(0, {rows, 1}, 12, delays);
    EXPECT_EQ(delays[0], 3u);
}

TEST(HistoryTableTest, TablesAreIndependent)
{
    HistoryTable h(2, 4);
    std::vector<std::uint32_t> delays;
    const std::uint32_t rows[] = {1};
    h.delaysAndRenew(0, {rows, 1}, 5, delays);
    EXPECT_EQ(h.lastNoised(0, 1), 5u);
    EXPECT_EQ(h.lastNoised(1, 1), 0u);
}

TEST(HistoryTableTest, ConsecutiveAccessGivesDelayOne)
{
    HistoryTable h(1, 4);
    std::vector<std::uint32_t> delays;
    const std::uint32_t rows[] = {0};
    h.delaysAndRenew(0, {rows, 1}, 1, delays);
    h.delaysAndRenew(0, {rows, 1}, 2, delays);
    EXPECT_EQ(delays[0], 1u);
}

TEST(HistoryTableTest, BytesAre4PerRow)
{
    HistoryTable h(26, 1000);
    EXPECT_EQ(h.bytes(), 26u * 1000u * 4u);
}

TEST(HistoryTableTest, PaperScaleMetadataFootprint)
{
    // Paper Section 7.2: 96 GB model = 26 tables x ~7.2M rows x 128 dim
    // -> HistoryTable ~751 MB.
    const std::uint64_t rows =
        96ull * 1000 * 1000 * 1000 / (26ull * 128 * 4);
    HistoryTable h(1, 1); // do not allocate 751 MB in a unit test
    const double expected_mb =
        26.0 * static_cast<double>(rows) * 4.0 / 1e6;
    EXPECT_NEAR(expected_mb, 751.0, 40.0);
    (void)h;
}

TEST(HistoryTableTest, RegressionPanicsOnTimeTravel)
{
    setLogThrowMode(true);
    HistoryTable h(1, 4);
    std::vector<std::uint32_t> delays;
    const std::uint32_t rows[] = {0};
    h.delaysAndRenew(0, {rows, 1}, 10, delays);
    // a smaller iteration id would mean the trainer went backwards
    EXPECT_THROW(h.delaysAndRenew(0, {rows, 1}, 9, delays),
                 std::runtime_error);
    setLogThrowMode(false);
}

} // namespace
} // namespace lazydp
