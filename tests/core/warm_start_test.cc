/** @file Tests for the benchmark warm-start of the HistoryTable. */

#include <gtest/gtest.h>

#include "common/stats.h"
#include "core/lazydp.h"
#include "data/synthetic_dataset.h"
#include "train/trainer.h"

namespace lazydp {
namespace {

ModelConfig
testModel()
{
    auto mc = ModelConfig::tiny();
    mc.rowsPerTable = 4096;
    return mc;
}

TEST(WarmStartTest, AgesFollowRequestedMean)
{
    const auto mc = testModel();
    DlrmModel model(mc, 1);
    TrainHyper hyper;
    LazyDpAlgorithm lazy(model, hyper, true);

    const std::uint64_t start = 400;
    const double expected_delay = 24.0;
    lazy.warmStartHistory(start, expected_delay, 9);

    RunningStat ages;
    for (std::size_t t = 0; t < mc.numTables; ++t) {
        for (std::uint64_t r = 0; r < mc.rowsPerTable; ++r) {
            const std::uint32_t h = lazy.historyTable().lastNoised(t, r);
            ASSERT_LE(h, start);
            ages.push(static_cast<double>(start - h));
        }
    }
    EXPECT_NEAR(ages.mean(), expected_delay, 2.0);
    EXPECT_GE(ages.min(), 0.0);
}

TEST(WarmStartTest, TrainingContinuesFromWarmState)
{
    const auto mc = testModel();
    DlrmModel model(mc, 1);
    TrainHyper hyper;
    LazyDpAlgorithm lazy(model, hyper, true);
    lazy.warmStartHistory(100, 8.0, 3);

    DatasetConfig dc;
    dc.numDense = mc.numDense;
    dc.numTables = mc.numTables;
    dc.rowsPerTable = mc.rowsPerTable;
    dc.pooling = mc.pooling;
    dc.batchSize = 16;
    SyntheticDataset ds(dc);

    StageTimer timer;
    MiniBatch b1 = ds.batch(0);
    MiniBatch b2 = ds.batch(1);
    // iteration ids must continue past the warm-start point
    EXPECT_NO_THROW(
        lazy.step(101, b1, &b2, ExecContext::serial(), timer));
    // accessed-next rows are renewed to 101
    std::vector<std::uint32_t> rows;
    uniqueRows(b2.tableIndices(0), rows);
    for (auto r : rows)
        EXPECT_EQ(lazy.historyTable().lastNoised(0, r), 101u);
}

TEST(WarmStartTest, StepBeforeWarmPointPanics)
{
    setLogThrowMode(true);
    const auto mc = testModel();
    DlrmModel model(mc, 1);
    TrainHyper hyper;
    LazyDpAlgorithm lazy(model, hyper, true);
    lazy.warmStartHistory(100, 8.0, 3);

    DatasetConfig dc;
    dc.numDense = mc.numDense;
    dc.numTables = mc.numTables;
    dc.rowsPerTable = mc.rowsPerTable;
    dc.pooling = mc.pooling;
    dc.batchSize = 16;
    SyntheticDataset ds(dc);
    StageTimer timer;
    MiniBatch b1 = ds.batch(0);
    MiniBatch b2 = ds.batch(1);
    // iteration 50 < warm-start ages -> history would be "ahead"
    EXPECT_THROW(lazy.step(50, b1, &b2, ExecContext::serial(), timer),
                 std::runtime_error);
    setLogThrowMode(false);
}

} // namespace
} // namespace lazydp
