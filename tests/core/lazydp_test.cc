/**
 * @file LazyDP correctness tests.
 *
 * The flagship property (paper Section 5.2.1): with the keyed noise
 * provider, LazyDP *without ANS* plus a final flush applies exactly the
 * same noise values as eager DP-SGD -- so the final models must match
 * to floating-point reassociation tolerance. With ANS the noise values
 * differ but their distribution is identical (Theorem 5.1), which the
 * statistical tests check.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "core/lazydp.h"
#include "data/synthetic_dataset.h"
#include "dp/dp_sgd_b.h"
#include "dp/dp_sgd_f.h"
#include "train/trainer.h"

namespace lazydp {
namespace {

ModelConfig
testModel()
{
    auto mc = ModelConfig::tiny();
    mc.rowsPerTable = 96;
    return mc;
}

DatasetConfig
testData(const ModelConfig &mc, std::size_t batch = 8)
{
    DatasetConfig dc;
    dc.numDense = mc.numDense;
    dc.numTables = mc.numTables;
    dc.rowsPerTable = mc.rowsPerTable;
    dc.pooling = mc.pooling;
    dc.batchSize = batch;
    dc.seed = 999;
    return dc;
}

TrainHyper
testHyper()
{
    TrainHyper h;
    h.lr = 0.1f;
    h.clipNorm = 0.5f;
    h.noiseMultiplier = 1.1f;
    h.noiseSeed = 0xACE;
    return h;
}

double
maxTableDiff(DlrmModel &a, DlrmModel &b)
{
    double diff = 0.0;
    for (std::size_t t = 0; t < a.tables().size(); ++t) {
        const Tensor &wa = a.tables()[t].weights();
        const Tensor &wb = b.tables()[t].weights();
        for (std::size_t i = 0; i < wa.size(); ++i)
            diff = std::max(diff, std::abs(static_cast<double>(
                                      wa.data()[i] - wb.data()[i])));
    }
    return diff;
}

class IterSweepTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(IterSweepTest, LazyNoAnsExactlyMatchesEagerDpSgd)
{
    const std::uint64_t iters = GetParam();
    const auto mc = testModel();
    DlrmModel eager_model(mc, 3);
    DlrmModel lazy_model(mc, 3);

    SyntheticDataset ds(testData(mc));
    {
        SequentialLoader loader(ds);
        DpSgdB eager(eager_model, testHyper());
        Trainer(eager, loader).run(iters);
    }
    {
        SequentialLoader loader(ds);
        LazyDpAlgorithm lazy(lazy_model, testHyper(), /*use_ans=*/false);
        Trainer(lazy, loader).run(iters);
    }
    EXPECT_LT(maxTableDiff(eager_model, lazy_model), 5e-4)
        << "iters=" << iters;
}

INSTANTIATE_TEST_SUITE_P(Iterations, IterSweepTest,
                         ::testing::Values(1, 2, 5, 12, 30));

TEST(LazyDpTest, LazyNoAnsMatchesFastBaselineToo)
{
    const auto mc = testModel();
    DlrmModel fast_model(mc, 3);
    DlrmModel lazy_model(mc, 3);
    SyntheticDataset ds(testData(mc));
    {
        SequentialLoader loader(ds);
        DpSgdF fast(fast_model, testHyper());
        Trainer(fast, loader).run(8);
    }
    {
        SequentialLoader loader(ds);
        LazyDpAlgorithm lazy(lazy_model, testHyper(), false);
        Trainer(lazy, loader).run(8);
    }
    EXPECT_LT(maxTableDiff(fast_model, lazy_model), 5e-4);
}

TEST(LazyDpTest, WithoutFinalizeModelsDiffer)
{
    // Confirms the final flush is load-bearing: running the lazy steps
    // without finalize leaves pending noise unapplied.
    const auto mc = testModel();
    DlrmModel eager_model(mc, 3);
    DlrmModel lazy_model(mc, 3);
    SyntheticDataset ds(testData(mc));
    const std::uint64_t iters = 5;
    {
        SequentialLoader loader(ds);
        DpSgdB eager(eager_model, testHyper());
        Trainer(eager, loader).run(iters);
    }
    {
        // manual loop WITHOUT finalize
        SequentialLoader loader(ds);
        LazyDpAlgorithm lazy(lazy_model, testHyper(), false);
        StageTimer timer;
        InputQueue q;
        q.push(loader.next());
        for (std::uint64_t it = 1; it <= iters; ++it) {
            const bool has_next = it < iters;
            if (has_next)
                q.push(loader.next());
            lazy.step(it, q.head(), has_next ? &q.tail() : nullptr,
                      ExecContext::serial(), timer);
            q.pop();
        }
    }
    EXPECT_GT(maxTableDiff(eager_model, lazy_model), 1e-4);
}

TEST(LazyDpTest, FinalizeIsIdempotentViaHistory)
{
    const auto mc = testModel();
    DlrmModel model(mc, 3);
    SyntheticDataset ds(testData(mc));
    SequentialLoader loader(ds);
    LazyDpAlgorithm lazy(model, testHyper(), false);
    Trainer(lazy, loader).run(4);

    Tensor snapshot(mc.rowsPerTable, mc.embedDim);
    snapshot.copyFrom(model.tables()[0].weights());
    StageTimer timer;
    lazy.finalize(4, ExecContext::serial(),
                  timer); // second flush must be a no-op
    const Tensor &after = model.tables()[0].weights();
    for (std::size_t i = 0; i < after.size(); ++i)
        EXPECT_EQ(after.data()[i], snapshot.data()[i]);
}

TEST(LazyDpTest, AnsMatchesEagerInDistribution)
{
    // With ANS the bits differ, but over many rows the deviation from
    // the eager model must look like N(0, ...) with matching variance:
    // compare empirical variance of (lazy_ans - no_noise_baseline)
    // against (eager - no_noise_baseline).
    auto mc = testModel();
    mc.rowsPerTable = 512;
    const std::uint64_t iters = 10;

    auto run = [&](bool use_ans, std::uint64_t seed) {
        auto model = std::make_unique<DlrmModel>(mc, 3);
        SyntheticDataset ds(testData(mc));
        SequentialLoader loader(ds);
        auto h = testHyper();
        h.noiseSeed = seed;
        LazyDpAlgorithm lazy(*model, h, use_ans);
        Trainer(lazy, loader).run(iters);
        return model;
    };
    auto ans_model = run(true, 0xACE);
    auto noans_model = run(false, 0xACE);

    // aggregate variance of the table weights must match closely
    RunningStat s_ans, s_noans;
    for (std::size_t t = 0; t < mc.numTables; ++t) {
        s_ans.pushAll(ans_model->tables()[t].weights().data(),
                      ans_model->tables()[t].weights().size());
        s_noans.pushAll(noans_model->tables()[t].weights().data(),
                        noans_model->tables()[t].weights().size());
    }
    EXPECT_NEAR(s_ans.mean(), s_noans.mean(), 0.005);
    EXPECT_NEAR(s_ans.variance() / s_noans.variance(), 1.0, 0.1);
}

TEST(LazyDpTest, EveryRowNoisedAfterFinalize)
{
    // After a full run, no table row may remain at its initial value
    // (all rows receive noise eventually -- DP-SGD semantics, unlike
    // EANA).
    const auto mc = testModel();
    DlrmModel model(mc, 3);
    Tensor before(mc.rowsPerTable, mc.embedDim);
    before.copyFrom(model.tables()[0].weights());

    SyntheticDataset ds(testData(mc));
    SequentialLoader loader(ds);
    LazyDpAlgorithm lazy(model, testHyper(), true);
    Trainer(lazy, loader).run(3);

    const Tensor &after = model.tables()[0].weights();
    std::size_t changed = 0;
    for (std::size_t i = 0; i < after.size(); ++i)
        changed += after.data()[i] != before.data()[i];
    EXPECT_GT(changed, after.size() * 99 / 100);
}

TEST(LazyDpTest, HistoryTableTracksNextAccesses)
{
    const auto mc = testModel();
    DlrmModel model(mc, 3);
    SyntheticDataset ds(testData(mc, 4));
    SequentialLoader loader(ds);
    LazyDpAlgorithm lazy(model, testHyper(), true);

    StageTimer timer;
    MiniBatch b1 = loader.next();
    MiniBatch b2 = loader.next();
    lazy.step(1, b1, &b2, ExecContext::serial(), timer);

    // rows of b2 (the lookahead) must be marked noised-at-iteration-1
    std::vector<std::uint32_t> next_rows;
    uniqueRows(b2.tableIndices(0), next_rows);
    for (auto r : next_rows)
        EXPECT_EQ(lazy.historyTable().lastNoised(0, r), 1u);
}

TEST(LazyDpTest, MetadataBytesMatchHistoryTable)
{
    const auto mc = testModel();
    DlrmModel model(mc, 3);
    LazyDpAlgorithm lazy(model, testHyper(), true);
    EXPECT_EQ(lazy.metadataBytes(),
              mc.numTables * mc.rowsPerTable * sizeof(std::uint32_t));
}

TEST(LazyDpTest, NameReflectsAnsFlag)
{
    const auto mc = testModel();
    DlrmModel model(mc, 3);
    LazyDpAlgorithm with(model, testHyper(), true);
    LazyDpAlgorithm without(model, testHyper(), false);
    EXPECT_EQ(with.name(), "LazyDP");
    EXPECT_EQ(without.name(), "LazyDP(w/o ANS)");
}

TEST(MakePrivateTest, FacadeBuildsConfiguredEngine)
{
    const auto mc = testModel();
    DlrmModel model(mc, 3);
    LazyDpOptions opts;
    opts.noiseMultiplier = 1.1f;
    opts.maxGradientNorm = 1.0f;
    opts.useAns = false;
    auto algo = makePrivate(model, opts);
    ASSERT_NE(algo, nullptr);
    EXPECT_EQ(algo->name(), "LazyDP(w/o ANS)");
    EXPECT_FALSE(algo->ansEnabled());
}

} // namespace
} // namespace lazydp
