/**
 * @file Tests for the lazy weight-decay extension (not in the paper):
 * LazyDP defers the per-iteration multiplicative decay together with
 * the noise, collapsing k steps into w *= alpha^k plus geometrically
 * weighted noise. The flagship property: LazyDP(w/o ANS) with decay
 * still reproduces eager DP-SGD(B/F)-with-decay exactly.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "core/factory.h"
#include "core/lazydp.h"
#include "data/synthetic_dataset.h"
#include "dp/dp_sgd_b.h"
#include "dp/dp_sgd_f.h"
#include "train/trainer.h"

namespace lazydp {
namespace {

ModelConfig
testModel()
{
    auto mc = ModelConfig::tiny();
    mc.rowsPerTable = 96;
    return mc;
}

DatasetConfig
testData(const ModelConfig &mc, std::size_t batch = 8)
{
    DatasetConfig dc;
    dc.numDense = mc.numDense;
    dc.numTables = mc.numTables;
    dc.rowsPerTable = mc.rowsPerTable;
    dc.pooling = mc.pooling;
    dc.batchSize = batch;
    dc.seed = 777;
    return dc;
}

TrainHyper
decayHyper()
{
    TrainHyper h;
    h.lr = 0.1f;
    h.clipNorm = 0.5f;
    h.noiseMultiplier = 1.0f;
    h.noiseSeed = 0xDECA;
    h.weightDecay = 0.2f; // alpha = 1 - 0.1*0.2 = 0.98 per step
    return h;
}

double
maxTableDiff(DlrmModel &a, DlrmModel &b)
{
    double diff = 0.0;
    for (std::size_t t = 0; t < a.tables().size(); ++t) {
        const Tensor &wa = a.tables()[t].weights();
        const Tensor &wb = b.tables()[t].weights();
        for (std::size_t i = 0; i < wa.size(); ++i)
            diff = std::max(diff, std::abs(static_cast<double>(
                                      wa.data()[i] - wb.data()[i])));
    }
    return diff;
}

TEST(GeometricNoiseTest, ReducesToPlainSumAtAlphaOne)
{
    NoiseProvider np(5);
    std::vector<float> geo(64, 0.0f), plain(64, 0.0f);
    np.geometricRowNoise(3, 9, 0, 7, 1.0f, 1.0f, 1.0f, geo.data(), 64);
    np.accumulateRowNoise(3, 9, 0, 7, 1.0f, 1.0f, plain.data(), 64);
    for (std::size_t i = 0; i < 64; ++i)
        EXPECT_NEAR(geo[i], plain[i], 1e-5f);
}

TEST(GeometricNoiseTest, WeightsMatchManualAccumulation)
{
    NoiseProvider np(5);
    const float alpha = 0.9f;
    std::vector<float> geo(32, 0.0f), manual(32, 0.0f);
    np.geometricRowNoise(4, 6, 1, 2, alpha, 1.5f, 1.0f, geo.data(), 32);
    // manual: alpha^2 n4 + alpha n5 + n6
    np.rowNoise(4, 1, 2, 1.5f, alpha * alpha, manual.data(), 32);
    np.rowNoise(5, 1, 2, 1.5f, alpha, manual.data(), 32);
    np.rowNoise(6, 1, 2, 1.5f, 1.0f, manual.data(), 32);
    for (std::size_t i = 0; i < 32; ++i)
        EXPECT_NEAR(geo[i], manual[i], 1e-5f);
}

TEST(GeometricNoiseTest, AggregatedVarianceMatchesGeometricSeries)
{
    NoiseProvider np(11);
    const float alpha = 0.95f;
    const float sigma = 1.0f;
    const std::uint64_t k = 20;
    RunningStat st;
    std::vector<float> buf(128);
    for (std::uint64_t row = 0; row < 4096; ++row) {
        std::fill(buf.begin(), buf.end(), 0.0f);
        np.aggregatedGeometricRowNoise(1, k, 0, row, alpha, sigma, 1.0f,
                                       buf.data(), 128);
        st.pushAll(buf.data(), 128);
    }
    const double a2 = alpha * alpha;
    const double expected =
        sigma * sigma * (1.0 - std::pow(a2, double(k))) / (1.0 - a2);
    EXPECT_NEAR(st.variance(), expected, 0.05 * expected);
    EXPECT_NEAR(st.mean(), 0.0, 0.01);
}

TEST(GeometricNoiseTest, IterativeVarianceMatchesAggregated)
{
    // both decay paths must be distributionally identical
    NoiseProvider np(13);
    const float alpha = 0.9f;
    const std::uint64_t k = 15;
    RunningStat st;
    std::vector<float> buf(128);
    for (std::uint64_t row = 0; row < 4096; ++row) {
        std::fill(buf.begin(), buf.end(), 0.0f);
        np.geometricRowNoise(1, k, 0, row, alpha, 1.0f, 1.0f,
                             buf.data(), 128);
        st.pushAll(buf.data(), 128);
    }
    const double a2 = alpha * alpha;
    const double expected =
        (1.0 - std::pow(a2, double(k))) / (1.0 - a2);
    EXPECT_NEAR(st.variance(), expected, 0.05 * expected);
}

class DecayIterSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DecayIterSweep, LazyNoAnsWithDecayEqualsEagerWithDecay)
{
    const std::uint64_t iters = GetParam();
    const auto mc = testModel();
    DlrmModel eager_model(mc, 3);
    DlrmModel lazy_model(mc, 3);
    SyntheticDataset ds(testData(mc));
    {
        SequentialLoader loader(ds);
        DpSgdB eager(eager_model, decayHyper());
        Trainer(eager, loader).run(iters);
    }
    {
        SequentialLoader loader(ds);
        LazyDpAlgorithm lazy(lazy_model, decayHyper(),
                             /*use_ans=*/false);
        Trainer(lazy, loader).run(iters);
    }
    EXPECT_LT(maxTableDiff(eager_model, lazy_model), 1e-3)
        << "iters=" << iters;
}

INSTANTIATE_TEST_SUITE_P(Iterations, DecayIterSweep,
                         ::testing::Values(1, 3, 8, 20));

TEST(DecayTest, EagerEnginesAgreeUnderDecay)
{
    const auto mc = testModel();
    DlrmModel mb(mc, 3);
    DlrmModel mf(mc, 3);
    SyntheticDataset ds(testData(mc));
    {
        SequentialLoader loader(ds);
        DpSgdB b(mb, decayHyper());
        Trainer(b, loader).run(6);
    }
    {
        SequentialLoader loader(ds);
        DpSgdF f(mf, decayHyper());
        Trainer(f, loader).run(6);
    }
    EXPECT_LT(maxTableDiff(mb, mf), 1e-3);
}

TEST(DecayTest, DecayActuallyShrinksColdRows)
{
    // a never-accessed row with sigma=0 must decay exactly by alpha^N
    auto mc = testModel();
    auto h = decayHyper();
    h.noiseMultiplier = 0.0f;
    const std::uint64_t iters = 10;

    DlrmModel model(mc, 3);
    const float before = model.tables()[0].rowPtr(0)[0];
    SyntheticDataset ds(testData(mc));
    SequentialLoader loader(ds);
    LazyDpAlgorithm lazy(model, h, true);
    Trainer(lazy, loader).run(iters);

    // find a row untouched by any of the batches (row ids < 96; check
    // the history table instead of replaying batches)
    for (std::uint32_t r = 0; r < mc.rowsPerTable; ++r) {
        if (lazy.historyTable().lastNoised(0, r) == iters &&
            lazy.decayTable()->lastNoised(0, r) == iters) {
            // decayed through all iterations; with sigma=0 the value
            // of a never-gradient-touched row is before * alpha^iters
            (void)before;
        }
    }
    // stronger: every table-0 weight's magnitude must have shrunk or
    // received gradient; total Frobenius norm must be smaller than the
    // initial one times a bound above alpha^iters
    DlrmModel fresh(mc, 3);
    const double init_norm =
        std::sqrt(fresh.tables()[0].weights().squaredNorm());
    const double final_norm =
        std::sqrt(model.tables()[0].weights().squaredNorm());
    EXPECT_LT(final_norm, init_norm);
}

TEST(DecayTest, MlpWeightsDecayToo)
{
    auto mc = testModel();
    auto h = decayHyper();
    h.noiseMultiplier = 0.0f;
    h.clipNorm = 1e-9f; // effectively zero gradient signal
    DlrmModel model(mc, 3);
    const float before =
        std::abs(model.topMlp().layers()[0].weight().at(0, 0));
    SyntheticDataset ds(testData(mc));
    SequentialLoader loader(ds);
    LazyDpAlgorithm lazy(model, h, true);
    Trainer(lazy, loader).run(10);
    const float after =
        std::abs(model.topMlp().layers()[0].weight().at(0, 0));
    // alpha^10 = 0.98^10 ~ 0.817
    EXPECT_NEAR(after / before, std::pow(0.98, 10.0), 0.02);
}

TEST(DecayTest, SgdAndEanaRejectDecay)
{
    setLogThrowMode(true);
    auto mc = testModel();
    DlrmModel model(mc, 3);
    EXPECT_THROW(makeAlgorithm("sgd", model, decayHyper()),
                 std::runtime_error);
    EXPECT_THROW(makeAlgorithm("eana", model, decayHyper()),
                 std::runtime_error);
    setLogThrowMode(false);
}

TEST(DecayTest, DecayTableAllocatedOnlyWhenNeeded)
{
    auto mc = testModel();
    DlrmModel model(mc, 3);
    TrainHyper plain;
    LazyDpAlgorithm no_decay(model, plain, true);
    EXPECT_EQ(no_decay.decayTable(), nullptr);
    LazyDpAlgorithm with_decay(model, decayHyper(), true);
    ASSERT_NE(with_decay.decayTable(), nullptr);
    EXPECT_EQ(with_decay.decayTable()->numTables(), mc.numTables);
}

TEST(DecayTest, AnsDecayMatchesNoAnsDecayInDistribution)
{
    auto mc = testModel();
    mc.rowsPerTable = 256;
    auto run = [&](bool use_ans) {
        auto model = std::make_unique<DlrmModel>(mc, 3);
        SyntheticDataset ds(testData(mc));
        SequentialLoader loader(ds);
        LazyDpAlgorithm lazy(*model, decayHyper(), use_ans);
        Trainer(lazy, loader).run(12);
        return model;
    };
    auto ans = run(true);
    auto noans = run(false);
    RunningStat s_ans, s_noans;
    for (std::size_t t = 0; t < mc.numTables; ++t) {
        s_ans.pushAll(ans->tables()[t].weights().data(),
                      ans->tables()[t].weights().size());
        s_noans.pushAll(noans->tables()[t].weights().data(),
                        noans->tables()[t].weights().size());
    }
    EXPECT_NEAR(s_ans.mean(), s_noans.mean(), 0.01);
    EXPECT_NEAR(s_ans.variance() / s_noans.variance(), 1.0, 0.15);
}

} // namespace
} // namespace lazydp
