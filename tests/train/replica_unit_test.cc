/**
 * @file Unit tests of the lot-sharding primitives (train/replica.h):
 * position-stable shard bounds, the fixed-shape tree reduction, and the
 * replica dispatch itself.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/logging.h"
#include "train/replica.h"

namespace lazydp {
namespace {

TEST(LotShardTest, BoundsPartitionTheLot)
{
    for (const std::size_t batch : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u,
                                    1023u, 2048u}) {
        std::size_t covered = 0;
        std::size_t prev_hi = 0;
        for (std::size_t s = 0; s < kLotShards; ++s) {
            const auto [lo, hi] = lotShardBounds(batch, s);
            EXPECT_EQ(lo, prev_hi) << "batch " << batch << " shard " << s;
            EXPECT_LE(lo, hi);
            covered += hi - lo;
            prev_hi = hi;
        }
        EXPECT_EQ(prev_hi, batch);
        EXPECT_EQ(covered, batch);
    }
}

TEST(LotShardTest, BoundsDependOnLotSizeOnly)
{
    // The same (batch, shard) pair must give the same range no matter
    // how often or from where it is queried -- the position-stability
    // the bit-identity story rests on.
    const auto first = lotShardBounds(1000, 2);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(lotShardBounds(1000, 2), first);
}

TEST(LotShardTest, ValidReplicaCountsDivideTheShards)
{
    EXPECT_TRUE(validReplicas(1));
    EXPECT_TRUE(validReplicas(2));
    EXPECT_TRUE(validReplicas(4));
    EXPECT_FALSE(validReplicas(0));
    EXPECT_FALSE(validReplicas(3));
    EXPECT_FALSE(validReplicas(8));
}

TEST(TreeReduceTest, ComputesTheFixedAssociation)
{
    // Values chosen so float association matters: (a+b)+(c+d) differs
    // from a left-to-right fold in the last bit.
    Tensor q0(1, 4), q1(1, 4), q2(1, 4), q3(1, 4), out(1, 4);
    const float vals[4][4] = {
        {1e8f, 1.0f, -1e8f, 3.0f},
        {1.0f, 1e-8f, 1e8f, -3.0f},
        {-1e8f, 2.0f, 0.5f, 1e8f},
        {1e8f, -2.0f, -0.5f, -1e8f},
    };
    for (int q = 0; q < 4; ++q) {
        Tensor *t = q == 0 ? &q0 : q == 1 ? &q1 : q == 2 ? &q2 : &q3;
        for (int i = 0; i < 4; ++i)
            t->data()[i] = vals[q][i];
    }
    treeReduce4(q0, q1, q2, q3, out, ExecContext::serial());
    for (int i = 0; i < 4; ++i) {
        const float expected = (vals[0][i] + vals[1][i]) +
                               (vals[2][i] + vals[3][i]);
        EXPECT_EQ(out.data()[i], expected) << "elem " << i;
    }
}

TEST(TreeReduceTest, BitIdenticalAtAnyWidth)
{
    const std::size_t n = 1024;
    Tensor q0(4, n / 4), q1(4, n / 4), q2(4, n / 4), q3(4, n / 4);
    for (std::size_t i = 0; i < n; ++i) {
        q0.data()[i] = 1.0f / static_cast<float>(i + 1);
        q1.data()[i] = -1.0f / static_cast<float>(i + 2);
        q2.data()[i] = static_cast<float>(i) * 1e-3f;
        q3.data()[i] = -static_cast<float>(i) * 2e-3f;
    }
    Tensor serial(4, n / 4);
    treeReduce4(q0, q1, q2, q3, serial, ExecContext::serial());
    for (const std::size_t width : {2u, 3u, 8u}) {
        ThreadPool pool(width);
        ExecContext exec(&pool);
        Tensor parallel(4, n / 4);
        treeReduce4(q0, q1, q2, q3, parallel, exec);
        EXPECT_EQ(std::memcmp(serial.data(), parallel.data(),
                              n * sizeof(float)),
                  0)
            << "width " << width;
    }
}

TEST(RunReplicatedTest, EveryShardRunsExactlyOnce)
{
    for (const std::size_t replicas : {1u, 2u, 4u}) {
        ThreadPool pool(2);
        ExecContext exec(&pool);
        exec.replicas = replicas;
        std::mutex mu;
        std::multiset<std::size_t> seen;
        runReplicated(exec, [&](std::size_t s, ExecContext &) {
            std::lock_guard<std::mutex> lock(mu);
            seen.insert(s);
        });
        ASSERT_EQ(seen.size(), kLotShards) << replicas << " replicas";
        for (std::size_t s = 0; s < kLotShards; ++s)
            EXPECT_EQ(seen.count(s), 1u) << "shard " << s;
    }
}

TEST(RunReplicatedTest, PoollessContextRunsInline)
{
    ExecContext exec; // no pool
    exec.replicas = 4;
    std::vector<std::size_t> order;
    runReplicated(exec, [&](std::size_t s, ExecContext &rexec) {
        EXPECT_EQ(&rexec, &exec); // inline: the caller's context
        order.push_back(s);
    });
    ASSERT_EQ(order.size(), kLotShards);
    for (std::size_t s = 0; s < kLotShards; ++s)
        EXPECT_EQ(order[s], s); // inline execution is in shard order
}

TEST(RunReplicatedTest, WorkerReplicasGetSerialContexts)
{
    ThreadPool pool(2);
    ExecContext exec(&pool);
    exec.replicas = 4;
    std::mutex mu;
    std::size_t serial_shards = 0;
    runReplicated(exec, [&](std::size_t s, ExecContext &rexec) {
        std::lock_guard<std::mutex> lock(mu);
        if (s >= kLotShards / 4) {
            // shards of replicas 1..3 run with a serial context
            EXPECT_EQ(rexec.pool, nullptr) << "shard " << s;
            ++serial_shards;
        } else {
            EXPECT_EQ(rexec.pool, &pool);
        }
    });
    EXPECT_EQ(serial_shards, kLotShards - kLotShards / 4);
}

TEST(RunReplicatedTest, InvalidReplicaCountPanics)
{
    setLogThrowMode(true);
    ExecContext exec;
    exec.replicas = 3;
    EXPECT_THROW(runReplicated(exec, [](std::size_t, ExecContext &) {}),
                 std::runtime_error);
    setLogThrowMode(false);
}

TEST(RunReplicatedTest, LaneExceptionPropagatesAfterDrain)
{
    ThreadPool pool(2);
    ExecContext exec(&pool);
    exec.replicas = 2;
    std::atomic<int> ran{0};
    EXPECT_THROW(
        runReplicated(exec,
                      [&](std::size_t s, ExecContext &) {
                          ++ran;
                          if (s == kLotShards / 2)
                              throw std::runtime_error("shard boom");
                      }),
        std::runtime_error);
    // The throwing lane abandons its remaining shards (first shard of
    // replica 1 threw, its second never ran); replica 0's shards all
    // ran on the caller. Crucially the caller waited for the lane and
    // rethrew -- nothing leaked.
    EXPECT_EQ(ran.load(), static_cast<int>(kLotShards) - 1);
}

} // namespace
} // namespace lazydp
