/**
 * @file Regression tests for the replica-lane reservation guard:
 * replica dispatch must never place a worker on the out-of-core warm
 * lane (ThreadPool::kTierPrefetchLane) or the serve lanes
 * (kServeLaneBase..) -- under CPU isolation those lanes are pinned to
 * the SERVE core set, so a colliding replica would both serialize
 * behind foreign work and run on the wrong cores.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/logging.h"
#include "train/replica.h"

namespace lazydp {
namespace {

TEST(ReplicaLaneTest, ValidReplicaLanesStayBelowTheReservedRange)
{
    // Every replica a supported count (max 4) can dispatch: r = 1..3.
    for (std::size_t r = 1; r <= kLotShards - 1; ++r) {
        const std::size_t lane = replicaLane(r);
        EXPECT_EQ(lane, kReplicaLaneBase + r - 1);
        EXPECT_LT(lane, ThreadPool::kTierPrefetchLane);
        EXPECT_LT(lane, ThreadPool::kServeLaneBase);
    }
}

TEST(ReplicaLaneTest, CollidingReplicaFailsLoudly)
{
    setLogThrowMode(true);
    // r = 7 maps to lane 7 = kTierPrefetchLane: the warm-task
    // collision the guard exists for. r = 8 would land on the first
    // serve lane.
    EXPECT_THROW(replicaLane(7), std::runtime_error);
    EXPECT_THROW(replicaLane(8), std::runtime_error);
    EXPECT_THROW(replicaLane(31), std::runtime_error);
    setLogThrowMode(false);
}

TEST(ReplicaLaneTest, ReplicaZeroIsNotALaneReplica)
{
    setLogThrowMode(true);
    EXPECT_THROW(replicaLane(0), std::runtime_error);
    setLogThrowMode(false);
}

} // namespace
} // namespace lazydp
