/**
 * @file Distribution and determinism tests for the Box-Muller samplers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/stats.h"
#include "common/thread_pool.h"
#include "rng/gaussian.h"

namespace lazydp {
namespace {

class GaussianKernelTest
    : public ::testing::TestWithParam<GaussianKernel>
{
  protected:
    void SetUp() override
    {
        if (GetParam() == GaussianKernel::Avx2 &&
            resolveGaussianKernel(GaussianKernel::Auto) !=
                GaussianKernel::Avx2) {
            GTEST_SKIP() << "AVX2 unavailable on this host";
        }
    }
};

TEST_P(GaussianKernelTest, MomentsMatchStandardNormal)
{
    GaussianSampler s(123, 0, GetParam());
    const std::size_t n = 1u << 20;
    std::vector<float> buf(n);
    s.fill(buf.data(), n, 1.0f);
    RunningStat st;
    st.pushAll(buf.data(), n);
    EXPECT_NEAR(st.mean(), 0.0, 0.01);
    EXPECT_NEAR(st.stddev(), 1.0, 0.01);
    EXPECT_NEAR(st.skewness(), 0.0, 0.02);
    EXPECT_NEAR(st.excessKurtosis(), 0.0, 0.05);
}

TEST_P(GaussianKernelTest, SigmaScalesStddev)
{
    GaussianSampler s(77, 0, GetParam());
    const std::size_t n = 1u << 18;
    std::vector<float> buf(n);
    s.fill(buf.data(), n, 2.5f);
    RunningStat st;
    st.pushAll(buf.data(), n);
    EXPECT_NEAR(st.stddev(), 2.5, 0.05);
}

TEST_P(GaussianKernelTest, HistogramMatchesNormalCdf)
{
    GaussianSampler s(55, 0, GetParam());
    const std::size_t n = 1u << 20;
    std::vector<float> buf(n);
    s.fill(buf.data(), n, 1.0f);

    const std::size_t bins = 40;
    Histogram h(-4.0, 4.0, bins);
    for (float v : buf)
        h.push(v);
    std::vector<double> probs(bins);
    for (std::size_t b = 0; b < bins; ++b) {
        const double lo = -4.0 + 8.0 * b / bins;
        const double hi = -4.0 + 8.0 * (b + 1) / bins;
        probs[b] = normalCdf(hi) - normalCdf(lo);
    }
    // Normalize to in-range mass so chi2 compares shapes.
    double mass = 0.0;
    for (double p : probs)
        mass += p;
    for (auto &p : probs)
        p /= mass;
    Histogram h_in(-4.0, 4.0, bins);
    for (float v : buf)
        if (v >= -4.0f && v < 4.0f)
            h_in.push(v);
    // dof = 39; chi2 above ~90 would be p < 1e-5.
    EXPECT_LT(h_in.chiSquared(probs), 110.0);
}

TEST_P(GaussianKernelTest, DeterministicAcrossInstances)
{
    GaussianSampler a(9, 4, GetParam());
    GaussianSampler b(9, 4, GetParam());
    std::vector<float> va(1000), vb(1000);
    a.fill(va.data(), va.size(), 1.0f);
    b.fill(vb.data(), vb.size(), 1.0f);
    EXPECT_EQ(va, vb);
}

TEST_P(GaussianKernelTest, AccumulateAddsScaledNoise)
{
    GaussianSampler a(31, 0, GetParam());
    GaussianSampler b(31, 0, GetParam());
    std::vector<float> fresh(512);
    a.fill(fresh.data(), fresh.size(), 1.0f);
    std::vector<float> acc(512, 10.0f);
    b.accumulate(acc.data(), acc.size(), 1.0f, 0.5f);
    for (std::size_t i = 0; i < acc.size(); ++i)
        EXPECT_NEAR(acc[i], 10.0f + 0.5f * fresh[i], 1e-5f);
}

TEST_P(GaussianKernelTest, StreamAdvances)
{
    GaussianSampler s(13, 0, GetParam());
    std::vector<float> first(256), second(256);
    s.fill(first.data(), first.size(), 1.0f);
    s.fill(second.data(), second.size(), 1.0f);
    EXPECT_NE(first, second);
}

INSTANTIATE_TEST_SUITE_P(Kernels, GaussianKernelTest,
                         ::testing::Values(GaussianKernel::Scalar,
                                           GaussianKernel::Avx2));

TEST(GaussianCrossKernelTest, ScalarAndAvx2AgreeClosely)
{
    if (resolveGaussianKernel(GaussianKernel::Auto) !=
        GaussianKernel::Avx2) {
        GTEST_SKIP() << "AVX2 unavailable";
    }
    // Same seed/counters -> same uniforms; outputs differ only by
    // polynomial-vs-libm rounding.
    GaussianSampler scalar(5, 0, GaussianKernel::Scalar);
    GaussianSampler avx(5, 0, GaussianKernel::Avx2);
    std::vector<float> vs(4096), va(4096);
    scalar.fill(vs.data(), vs.size(), 1.0f);
    avx.fill(va.data(), va.size(), 1.0f);
    for (std::size_t i = 0; i < vs.size(); ++i)
        EXPECT_NEAR(vs[i], va[i], 2e-4f) << "i=" << i;
}

TEST(GaussianTest, AutoResolvesToConcreteKernel)
{
    const GaussianKernel k = resolveGaussianKernel(GaussianKernel::Auto);
    EXPECT_NE(k, GaussianKernel::Auto);
}

TEST_P(GaussianKernelTest, ParallelFillBitIdenticalToSerial)
{
    // The pool-parallel bulk fill shards the counter range on Philox
    // block boundaries; output and stream advance must equal the
    // serial fill exactly, for every pool width and awkward length.
    for (const std::size_t n : {31u, 4096u, 100003u}) {
        GaussianSampler serial(321, 2, GetParam());
        std::vector<float> want(n, 0.0f);
        serial.fill(want.data(), n, 1.3f);
        std::vector<float> want2(n, 0.0f); // second call: advanced lo
        serial.fill(want2.data(), n, 1.3f);

        for (const std::size_t width : {1u, 2u, 8u}) {
            ThreadPool pool(width);
            ExecContext exec(&pool);
            GaussianSampler par(321, 2, GetParam());
            std::vector<float> got(n, 0.0f);
            par.fill(got.data(), n, 1.3f, exec);
            EXPECT_EQ(got, want) << "n=" << n << " width=" << width;
            par.fill(got.data(), n, 1.3f, exec);
            EXPECT_EQ(got, want2)
                << "stream advance, n=" << n << " width=" << width;
        }
    }
}

TEST(GaussianTest, TailProbabilitiesReasonable)
{
    GaussianSampler s(1717);
    const std::size_t n = 1u << 20;
    std::vector<float> buf(n);
    s.fill(buf.data(), n, 1.0f);
    std::size_t beyond2 = 0;
    std::size_t beyond4 = 0;
    for (float v : buf) {
        beyond2 += std::abs(v) > 2.0f;
        beyond4 += std::abs(v) > 4.0f;
    }
    // P(|Z|>2) = 4.55%, P(|Z|>4) = 6.3e-5
    EXPECT_NEAR(static_cast<double>(beyond2) / n, 0.0455, 0.004);
    EXPECT_LT(static_cast<double>(beyond4) / n, 5e-4);
}

} // namespace
} // namespace lazydp
