/** @file Unit tests for xoshiro256++. */

#include <gtest/gtest.h>

#include "common/stats.h"
#include "rng/xoshiro.h"

namespace lazydp {
namespace {

TEST(XoshiroTest, DeterministicForSameSeed)
{
    Xoshiro256 a(5);
    Xoshiro256 b(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(XoshiroTest, DifferentSeedsDiverge)
{
    Xoshiro256 a(5);
    Xoshiro256 b(6);
    int diffs = 0;
    for (int i = 0; i < 100; ++i)
        diffs += a() != b();
    EXPECT_GT(diffs, 90);
}

TEST(XoshiroTest, DoublesInHalfOpenUnitInterval)
{
    Xoshiro256 rng(1);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.nextDouble();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(XoshiroTest, NextBelowIsInRange)
{
    Xoshiro256 rng(2);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBelow(37), 37u);
}

TEST(XoshiroTest, NextBelowIsRoughlyUniform)
{
    Xoshiro256 rng(3);
    const std::uint64_t n = 16;
    std::vector<int> counts(n, 0);
    const int draws = 160000;
    for (int i = 0; i < draws; ++i)
        ++counts[rng.nextBelow(n)];
    for (auto c : counts)
        EXPECT_NEAR(c, draws / static_cast<int>(n), draws / 100);
}

TEST(XoshiroTest, FloatMomentsMatchUniform)
{
    Xoshiro256 rng(4);
    RunningStat st;
    for (int i = 0; i < 200000; ++i)
        st.push(rng.nextFloat());
    EXPECT_NEAR(st.mean(), 0.5, 0.005);
    EXPECT_NEAR(st.variance(), 1.0 / 12.0, 0.002);
}

} // namespace
} // namespace lazydp
