/**
 * @file Statistical smoke tests for the Gaussian machinery.
 *
 * The privacy guarantee rests entirely on the noise actually being
 * N(0, sigma^2): a silently skewed or mis-scaled sampler weakens DP
 * without failing any bit-identity test. These fixed-seed checks make
 * RNG regressions fail loudly: sample moments (mean / variance /
 * skewness) within tolerance and a coarse Kolmogorov-Smirnov bound
 * against the normal CDF, for both the bulk sampler (gaussian.cc) and
 * the keyed per-row streams (noise_provider.cc).
 *
 * Everything is deterministic (fixed seeds), so the tolerances only
 * need to clear the correct implementation -- flaky-free by design.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "rng/gaussian.h"
#include "rng/noise_provider.h"

namespace lazydp {
namespace {

struct Moments
{
    double mean = 0.0;
    double var = 0.0;
    double skew = 0.0;
};

Moments
sampleMoments(const std::vector<float> &x)
{
    const double n = static_cast<double>(x.size());
    Moments m;
    for (const float v : x)
        m.mean += v;
    m.mean /= n;
    double m2 = 0.0, m3 = 0.0;
    for (const float v : x) {
        const double d = v - m.mean;
        m2 += d * d;
        m3 += d * d * d;
    }
    m2 /= n;
    m3 /= n;
    m.var = m2;
    m.skew = m3 / std::pow(m2, 1.5);
    return m;
}

double
normalCdf(double z)
{
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

/** Kolmogorov-Smirnov D against N(0, sigma^2). */
double
ksStatistic(std::vector<float> x, double sigma)
{
    std::sort(x.begin(), x.end());
    const double n = static_cast<double>(x.size());
    double d = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double cdf = normalCdf(x[i] / sigma);
        const double hi = (static_cast<double>(i) + 1.0) / n - cdf;
        const double lo = cdf - static_cast<double>(i) / n;
        d = std::max(d, std::max(hi, lo));
    }
    return d;
}

void
expectGaussianShape(const std::vector<float> &x, double sigma,
                    const char *what)
{
    const double n = static_cast<double>(x.size());
    const Moments m = sampleMoments(x);
    // mean of n samples ~ N(0, sigma^2/n): allow ~4.5 standard errors
    EXPECT_NEAR(m.mean, 0.0, 4.5 * sigma / std::sqrt(n)) << what;
    // var estimator stddev ~ sigma^2 * sqrt(2/n)
    EXPECT_NEAR(m.var, sigma * sigma,
                5.0 * sigma * sigma * std::sqrt(2.0 / n))
        << what;
    // skewness estimator stddev ~ sqrt(6/n)
    EXPECT_NEAR(m.skew, 0.0, 5.0 * std::sqrt(6.0 / n)) << what;
    // coarse KS bound: D_crit(alpha=0.001) ~ 1.95/sqrt(n); use 2.2
    EXPECT_LT(ksStatistic(x, sigma), 2.2 / std::sqrt(n)) << what;
}

TEST(GaussianStatisticalTest, BulkSamplerMomentsAndKs)
{
    for (const GaussianKernel kernel :
         {GaussianKernel::Scalar, GaussianKernel::Auto}) {
        GaussianSampler sampler(0x5EED, /*stream=*/3, kernel);
        std::vector<float> x(1 << 15);
        sampler.fill(x.data(), x.size(), /*sigma=*/1.0f);
        expectGaussianShape(x, 1.0, "bulk sigma=1");
    }
}

TEST(GaussianStatisticalTest, BulkSamplerNonUnitSigma)
{
    GaussianSampler sampler(0xABCDE, 0, GaussianKernel::Auto);
    std::vector<float> x(1 << 15);
    sampler.fill(x.data(), x.size(), /*sigma=*/2.5f);
    expectGaussianShape(x, 2.5, "bulk sigma=2.5");
}

TEST(NoiseProviderStatisticalTest, KeyedRowStreamMomentsAndKs)
{
    // Concatenate many (iteration, table, row) keyed streams: each must
    // be N(0, sigma^2) and independent across keys, so the pooled
    // sample is Gaussian too.
    const NoiseProvider noise(0xD9);
    const std::size_t dim = 64;
    const std::size_t rows = 512;
    std::vector<float> x(rows * dim);
    for (std::size_t r = 0; r < rows; ++r) {
        noise.rowNoise(/*iter=*/7, /*table=*/1, r, /*sigma=*/1.0f,
                       /*scale=*/1.0f, x.data() + r * dim, dim,
                       /*accumulate=*/false);
    }
    expectGaussianShape(x, 1.0, "keyed row streams");
}

TEST(NoiseProviderStatisticalTest, DistinctKeysAreUncorrelated)
{
    // Pearson correlation across keyed draws of adjacent rows and
    // adjacent iterations must vanish: draw order never leaks between
    // keys (the property the lazy/eager equivalence rests on).
    const NoiseProvider noise(0xD9);
    const std::size_t dim = 4096;
    std::vector<float> a(dim), b(dim), c(dim);
    noise.rowNoise(3, 0, 10, 1.0f, 1.0f, a.data(), dim, false);
    noise.rowNoise(3, 0, 11, 1.0f, 1.0f, b.data(), dim, false);
    noise.rowNoise(4, 0, 10, 1.0f, 1.0f, c.data(), dim, false);

    auto corr = [&](const std::vector<float> &u,
                    const std::vector<float> &v) {
        double su = 0, sv = 0, suv = 0, suu = 0, svv = 0;
        const double n = static_cast<double>(dim);
        for (std::size_t i = 0; i < dim; ++i) {
            su += u[i];
            sv += v[i];
            suv += static_cast<double>(u[i]) * v[i];
            suu += static_cast<double>(u[i]) * u[i];
            svv += static_cast<double>(v[i]) * v[i];
        }
        const double cov = suv / n - (su / n) * (sv / n);
        const double var_u = suu / n - (su / n) * (su / n);
        const double var_v = svv / n - (sv / n) * (sv / n);
        return cov / std::sqrt(var_u * var_v);
    };
    // corr estimator stddev ~ 1/sqrt(n) = 0.0156; allow ~4.5x
    EXPECT_NEAR(corr(a, b), 0.0, 0.07) << "adjacent rows";
    EXPECT_NEAR(corr(a, c), 0.0, 0.07) << "adjacent iterations";
}

TEST(NoiseProviderStatisticalTest, AggregatedDrawMatchesSumVariance)
{
    // ANS: one draw of N(0, k sigma^2) -- its pooled sample variance
    // over many keys must track k * sigma^2 (Theorem 5.1), the property
    // that keeps the deferred noise distributionally exact.
    const NoiseProvider noise(0xD9);
    const std::size_t dim = 64;
    const std::size_t rows = 512;
    const std::uint64_t k = 9;
    std::vector<float> x(rows * dim, 0.0f);
    for (std::size_t r = 0; r < rows; ++r) {
        noise.aggregatedRowNoise(/*iter_from=*/2, /*iter_to=*/2 + k - 1,
                                 /*table=*/0, r, /*sigma=*/1.0f,
                                 /*scale=*/1.0f, x.data() + r * dim, dim);
    }
    expectGaussianShape(x, std::sqrt(static_cast<double>(k)),
                        "aggregated k=9");
}

} // namespace
} // namespace lazydp
