/**
 * @file Accuracy tests for the AVX2 transcendental kernels against libm.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "rng/avx_math.h"
#include "rng/xoshiro.h"

namespace lazydp {
namespace {

#if defined(__AVX2__)

TEST(AvxLogTest, MatchesLibmOnUnitInterval)
{
    Xoshiro256 rng(1);
    for (int batch = 0; batch < 2000; ++batch) {
        alignas(32) float in[8];
        alignas(32) float out[8];
        for (auto &v : in)
            v = rng.nextFloat() * 0.9999f + 1e-7f;
        _mm256_store_ps(out, avxm::logPs(_mm256_load_ps(in)));
        for (int i = 0; i < 8; ++i) {
            const float ref = std::log(in[i]);
            EXPECT_NEAR(out[i], ref,
                        2e-7f * std::max(1.0f, std::abs(ref)) + 2e-7f)
                << "x=" << in[i];
        }
    }
}

TEST(AvxLogTest, MatchesLibmOverWideRange)
{
    Xoshiro256 rng(2);
    for (int batch = 0; batch < 2000; ++batch) {
        alignas(32) float in[8];
        alignas(32) float out[8];
        for (auto &v : in)
            v = std::exp((rng.nextFloat() * 2.0f - 1.0f) * 30.0f);
        _mm256_store_ps(out, avxm::logPs(_mm256_load_ps(in)));
        for (int i = 0; i < 8; ++i) {
            const float ref = std::log(in[i]);
            EXPECT_NEAR(out[i], ref,
                        4e-7f * std::max(1.0f, std::abs(ref)))
                << "x=" << in[i];
        }
    }
}

TEST(AvxLogTest, ExactAtOne)
{
    alignas(32) float in[8] = {1.0f, 1.0f, 1.0f, 1.0f,
                               1.0f, 1.0f, 1.0f, 1.0f};
    alignas(32) float out[8];
    _mm256_store_ps(out, avxm::logPs(_mm256_load_ps(in)));
    for (int i = 0; i < 8; ++i)
        EXPECT_NEAR(out[i], 0.0f, 1e-7f);
}

TEST(AvxSinCosTest, MatchesLibmOnUnitInterval)
{
    Xoshiro256 rng(3);
    const float two_pi = 6.28318530717958647692f;
    for (int batch = 0; batch < 4000; ++batch) {
        alignas(32) float in[8];
        alignas(32) float s[8];
        alignas(32) float c[8];
        for (auto &v : in)
            v = rng.nextFloat();
        __m256 vs, vc;
        avxm::sinCos2PiPs(_mm256_load_ps(in), vs, vc);
        _mm256_store_ps(s, vs);
        _mm256_store_ps(c, vc);
        for (int i = 0; i < 8; ++i) {
            EXPECT_NEAR(s[i], std::sin(two_pi * in[i]), 2e-6f)
                << "u=" << in[i];
            EXPECT_NEAR(c[i], std::cos(two_pi * in[i]), 2e-6f)
                << "u=" << in[i];
        }
    }
}

TEST(AvxSinCosTest, QuadrantBoundaries)
{
    alignas(32) float in[8] = {0.0f,   0.25f, 0.5f,  0.75f,
                               0.125f, 0.375f, 0.625f, 0.875f};
    alignas(32) float s[8];
    alignas(32) float c[8];
    __m256 vs, vc;
    avxm::sinCos2PiPs(_mm256_load_ps(in), vs, vc);
    _mm256_store_ps(s, vs);
    _mm256_store_ps(c, vc);
    EXPECT_NEAR(s[0], 0.0f, 1e-6f);
    EXPECT_NEAR(c[0], 1.0f, 1e-6f);
    EXPECT_NEAR(s[1], 1.0f, 1e-6f);
    EXPECT_NEAR(c[1], 0.0f, 1e-6f);
    EXPECT_NEAR(s[2], 0.0f, 1e-6f);
    EXPECT_NEAR(c[2], -1.0f, 1e-6f);
    EXPECT_NEAR(s[3], -1.0f, 1e-6f);
    EXPECT_NEAR(c[3], 0.0f, 1e-6f);
}

TEST(AvxSinCosTest, PythagoreanIdentity)
{
    Xoshiro256 rng(4);
    for (int batch = 0; batch < 1000; ++batch) {
        alignas(32) float in[8];
        alignas(32) float s[8];
        alignas(32) float c[8];
        for (auto &v : in)
            v = rng.nextFloat();
        __m256 vs, vc;
        avxm::sinCos2PiPs(_mm256_load_ps(in), vs, vc);
        _mm256_store_ps(s, vs);
        _mm256_store_ps(c, vc);
        for (int i = 0; i < 8; ++i)
            EXPECT_NEAR(s[i] * s[i] + c[i] * c[i], 1.0f, 4e-6f);
    }
}

#else

TEST(AvxMathTest, SkippedWithoutAvx2)
{
    GTEST_SKIP() << "AVX2 not compiled in";
}

#endif

} // namespace
} // namespace lazydp
