/**
 * @file Tests for the keyed noise provider -- the determinism and
 * aggregation properties everything else builds on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/stats.h"
#include "rng/noise_provider.h"

namespace lazydp {
namespace {

constexpr std::size_t kDim = 128;

TEST(NoiseProviderTest, SameKeySameNoiseRegardlessOfQueryTime)
{
    NoiseProvider np(0xAB);
    std::vector<float> a(kDim, 0.0f);
    std::vector<float> b(kDim, 0.0f);
    np.rowNoise(7, 3, 12345, 1.0f, 1.0f, a.data(), kDim);
    // interleave unrelated draws, then re-query the same key
    std::vector<float> junk(kDim);
    np.rowNoise(8, 1, 1, 1.0f, 1.0f, junk.data(), kDim, false);
    np.rowNoise(7, 3, 12345, 1.0f, 1.0f, b.data(), kDim);
    EXPECT_EQ(a, b);
}

TEST(NoiseProviderTest, DistinctKeysGiveDistinctNoise)
{
    NoiseProvider np(0xAB);
    std::vector<float> base(kDim, 0.0f);
    np.rowNoise(1, 0, 0, 1.0f, 1.0f, base.data(), kDim, false);

    const struct
    {
        std::uint64_t iter;
        std::uint32_t table;
        std::uint64_t row;
    } variants[] = {{2, 0, 0}, {1, 1, 0}, {1, 0, 1}};
    for (const auto &v : variants) {
        std::vector<float> out(kDim, 0.0f);
        np.rowNoise(v.iter, v.table, v.row, 1.0f, 1.0f, out.data(), kDim,
                    false);
        EXPECT_NE(base, out);
    }
}

TEST(NoiseProviderTest, DifferentSeedsAreIndependent)
{
    NoiseProvider a(1);
    NoiseProvider b(2);
    std::vector<float> va(kDim, 0.0f), vb(kDim, 0.0f);
    a.rowNoise(1, 0, 0, 1.0f, 1.0f, va.data(), kDim, false);
    b.rowNoise(1, 0, 0, 1.0f, 1.0f, vb.data(), kDim, false);
    EXPECT_NE(va, vb);
}

TEST(NoiseProviderTest, AccumulateEqualsSumOfIndividualDraws)
{
    NoiseProvider np(7);
    std::vector<float> acc(kDim, 0.0f);
    np.accumulateRowNoise(3, 6, 2, 99, 1.5f, 1.0f, acc.data(), kDim);

    std::vector<float> ref(kDim, 0.0f);
    for (std::uint64_t it = 3; it <= 6; ++it)
        np.rowNoise(it, 2, 99, 1.5f, 1.0f, ref.data(), kDim);
    for (std::size_t i = 0; i < kDim; ++i)
        EXPECT_NEAR(acc[i], ref[i], 1e-6f);
}

TEST(NoiseProviderTest, ScaleIsApplied)
{
    NoiseProvider np(7);
    std::vector<float> unit(kDim, 0.0f), scaled(kDim, 0.0f);
    np.rowNoise(1, 0, 5, 1.0f, 1.0f, unit.data(), kDim, false);
    np.rowNoise(1, 0, 5, 1.0f, -0.25f, scaled.data(), kDim, false);
    for (std::size_t i = 0; i < kDim; ++i)
        EXPECT_NEAR(scaled[i], -0.25f * unit[i], 1e-6f);
}

TEST(NoiseProviderTest, AggregatedUsesIndependentRandomness)
{
    // ANS draws must not collide with any per-iteration stream.
    NoiseProvider np(7);
    std::vector<float> agg(kDim, 0.0f);
    np.aggregatedRowNoise(5, 5, 0, 10, 1.0f, 1.0f, agg.data(), kDim);
    std::vector<float> per(kDim, 0.0f);
    np.rowNoise(5, 0, 10, 1.0f, 1.0f, per.data(), kDim, false);
    EXPECT_NE(agg, per);
}

TEST(NoiseProviderTest, AggregatedVarianceMatchesSum)
{
    // Var of ANS draw over k delayed iterations must be k * sigma^2.
    NoiseProvider np(11);
    const std::uint64_t k = 9;
    const float sigma = 0.8f;
    RunningStat st;
    std::vector<float> buf(kDim);
    for (std::uint64_t row = 0; row < 4096; ++row) {
        std::fill(buf.begin(), buf.end(), 0.0f);
        np.aggregatedRowNoise(1, k, 0, row, sigma, 1.0f, buf.data(),
                              kDim);
        st.pushAll(buf.data(), kDim);
    }
    EXPECT_NEAR(st.mean(), 0.0, 0.01);
    EXPECT_NEAR(st.variance(), k * sigma * sigma, 0.05);
}

TEST(NoiseProviderTest, IterativeVarianceMatchesSum)
{
    // The non-ANS path must ALSO have variance k * sigma^2 -- the two
    // paths are distributionally interchangeable (Theorem 5.1).
    NoiseProvider np(13);
    const std::uint64_t k = 9;
    const float sigma = 0.8f;
    RunningStat st;
    std::vector<float> buf(kDim);
    for (std::uint64_t row = 0; row < 4096; ++row) {
        std::fill(buf.begin(), buf.end(), 0.0f);
        np.accumulateRowNoise(1, k, 0, row, sigma, 1.0f, buf.data(),
                              kDim);
        st.pushAll(buf.data(), kDim);
    }
    EXPECT_NEAR(st.variance(), k * sigma * sigma, 0.05);
}

TEST(NoiseProviderTest, KernelsProduceSameStream)
{
    if (resolveGaussianKernel(GaussianKernel::Auto) !=
        GaussianKernel::Avx2) {
        GTEST_SKIP() << "AVX2 unavailable";
    }
    NoiseProvider scalar(21, GaussianKernel::Scalar);
    NoiseProvider avx(21, GaussianKernel::Avx2);
    std::vector<float> vs(kDim, 0.0f), va(kDim, 0.0f);
    scalar.rowNoise(4, 2, 77, 1.0f, 1.0f, vs.data(), kDim, false);
    avx.rowNoise(4, 2, 77, 1.0f, 1.0f, va.data(), kDim, false);
    for (std::size_t i = 0; i < kDim; ++i)
        EXPECT_NEAR(vs[i], va[i], 2e-4f);
}

TEST(NoiseProviderTest, NonMultipleOfFourDims)
{
    NoiseProvider np(3);
    for (std::size_t dim : {1u, 2u, 3u, 5u, 127u}) {
        std::vector<float> buf(dim + 1, 42.0f);
        np.rowNoise(1, 0, 0, 1.0f, 1.0f, buf.data(), dim, false);
        // guard element untouched
        EXPECT_EQ(buf[dim], 42.0f) << "dim=" << dim;
    }
}

class DelayRangeTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DelayRangeTest, AggregatedStddevScalesWithSqrtDelay)
{
    const std::uint64_t k = GetParam();
    NoiseProvider np(0xF00);
    RunningStat st;
    std::vector<float> buf(kDim);
    for (std::uint64_t row = 0; row < 2048; ++row) {
        std::fill(buf.begin(), buf.end(), 0.0f);
        np.aggregatedRowNoise(10, 10 + k - 1, 1, row, 1.0f, 1.0f,
                              buf.data(), kDim);
        st.pushAll(buf.data(), kDim);
    }
    EXPECT_NEAR(st.stddev(), std::sqrt(static_cast<double>(k)),
                0.02 * std::sqrt(static_cast<double>(k)));
}

INSTANTIATE_TEST_SUITE_P(Delays, DelayRangeTest,
                         ::testing::Values(1, 2, 4, 16, 64, 256, 1024));

} // namespace
} // namespace lazydp
