/** @file Unit tests for the Philox4x32-10 generator. */

#include <gtest/gtest.h>

#include <set>

#include "common/stats.h"
#include "rng/philox.h"

namespace lazydp {
namespace {

TEST(PhiloxTest, DeterministicForSameSeedAndCounter)
{
    Philox4x32 a(0x1234);
    Philox4x32 b(0x1234);
    EXPECT_EQ(a.block(5, 9), b.block(5, 9));
}

TEST(PhiloxTest, DifferentCountersGiveDifferentBlocks)
{
    Philox4x32 p(42);
    EXPECT_NE(p.block(0, 0), p.block(0, 1));
    EXPECT_NE(p.block(0, 0), p.block(1, 0));
}

TEST(PhiloxTest, DifferentSeedsGiveDifferentBlocks)
{
    Philox4x32 a(1);
    Philox4x32 b(2);
    EXPECT_NE(a.block(0, 0), b.block(0, 0));
}

TEST(PhiloxTest, KnownAnswerZeroKeyZeroCounter)
{
    // Reference value from the Random123 distribution
    // (philox4x32-10, key = {0,0}, counter = {0,0,0,0}).
    Philox4x32 p(0);
    const auto blk = p.block(0, 0);
    EXPECT_EQ(blk[0], 0x6627e8d5u);
    EXPECT_EQ(blk[1], 0xe169c58du);
    EXPECT_EQ(blk[2], 0xbc57ac4cu);
    EXPECT_EQ(blk[3], 0x9b00dbd8u);
}

TEST(PhiloxTest, SeedRoundTrips)
{
    Philox4x32 p(0xDEADBEEFCAFEF00Dull);
    EXPECT_EQ(p.seed(), 0xDEADBEEFCAFEF00Dull);
}

TEST(PhiloxStreamTest, SequentialValuesComeFromConsecutiveBlocks)
{
    Philox4x32 p(7);
    PhiloxStream s(7, /*stream=*/3);
    const auto b0 = p.block(3, 0);
    const auto b1 = p.block(3, 1);
    EXPECT_EQ(s(), b0[0]);
    EXPECT_EQ(s(), b0[1]);
    EXPECT_EQ(s(), b0[2]);
    EXPECT_EQ(s(), b0[3]);
    EXPECT_EQ(s(), b1[0]);
}

TEST(PhiloxStreamTest, IndependentStreamsDiffer)
{
    PhiloxStream a(7, 0);
    PhiloxStream b(7, 1);
    bool any_diff = false;
    for (int i = 0; i < 16; ++i)
        any_diff |= (a() != b());
    EXPECT_TRUE(any_diff);
}

TEST(PhiloxStreamTest, UniformsAreInOpenUnitInterval)
{
    PhiloxStream s(99);
    for (int i = 0; i < 10000; ++i) {
        const float u = s.nextUniform();
        EXPECT_GT(u, 0.0f);
        EXPECT_LT(u, 1.0f);
    }
}

TEST(PhiloxStreamTest, UniformMomentsMatchTheory)
{
    PhiloxStream s(1234);
    RunningStat st;
    for (int i = 0; i < 300000; ++i)
        st.push(s.nextUniform());
    EXPECT_NEAR(st.mean(), 0.5, 0.005);
    EXPECT_NEAR(st.variance(), 1.0 / 12.0, 0.002);
}

TEST(PhiloxTest, OutputBitsLookBalanced)
{
    // Count set bits over many blocks; should be very close to 50%.
    Philox4x32 p(0xABCDEF);
    std::uint64_t ones = 0;
    const int blocks = 4096;
    for (int i = 0; i < blocks; ++i) {
        const auto blk = p.block(0, i);
        for (auto w : blk)
            ones += __builtin_popcount(w);
    }
    const double frac =
        static_cast<double>(ones) / (blocks * 4.0 * 32.0);
    EXPECT_NEAR(frac, 0.5, 0.01);
}

} // namespace
} // namespace lazydp
