/**
 * @file Integration tests: full training runs through the Trainer for
 * every algorithm, checking learning progress and stage accounting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/factory.h"
#include "data/synthetic_dataset.h"
#include "train/trainer.h"

namespace lazydp {
namespace {

ModelConfig
testModel()
{
    auto mc = ModelConfig::tiny();
    mc.rowsPerTable = 128;
    return mc;
}

DatasetConfig
testData(const ModelConfig &mc, std::size_t batch = 32)
{
    DatasetConfig dc;
    dc.numDense = mc.numDense;
    dc.numTables = mc.numTables;
    dc.rowsPerTable = mc.rowsPerTable;
    dc.pooling = mc.pooling;
    dc.batchSize = batch;
    dc.seed = 31337;
    return dc;
}

class AlgorithmRunTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AlgorithmRunTest, RunsAndRecordsAllIterations)
{
    const auto mc = testModel();
    DlrmModel model(mc, 5);
    SyntheticDataset ds(testData(mc));
    SequentialLoader loader(ds);
    TrainHyper hyper;
    hyper.noiseMultiplier = 0.5f;
    auto algo = makeAlgorithm(GetParam(), model, hyper);
    Trainer trainer(*algo, loader);
    const TrainResult result = trainer.run(10);

    EXPECT_EQ(result.iterations, 10u);
    EXPECT_EQ(result.losses.size(), 10u);
    for (double l : result.losses) {
        EXPECT_TRUE(std::isfinite(l));
        EXPECT_GT(l, 0.0);
    }
    EXPECT_GT(result.wallSeconds, 0.0);
    EXPECT_GT(result.secondsPerIteration(), 0.0);
}

TEST_P(AlgorithmRunTest, StageTimerCoversMostOfWallTime)
{
    const auto mc = testModel();
    DlrmModel model(mc, 5);
    SyntheticDataset ds(testData(mc));
    SequentialLoader loader(ds);
    TrainHyper hyper;
    auto algo = makeAlgorithm(GetParam(), model, hyper);
    Trainer trainer(*algo, loader);
    const TrainResult result = trainer.run(5);
    // timed stages must account for a large share of wall time (the
    // remainder is data loading, which is untimed)
    EXPECT_GT(result.timer.totalSeconds(), 0.0);
    EXPECT_LE(result.timer.totalSeconds(), result.wallSeconds * 1.001);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AlgorithmRunTest,
                         ::testing::ValuesIn(algorithmNames()));

TEST(LearningTest, SgdLossDecreasesOnPlantedSignal)
{
    const auto mc = testModel();
    DlrmModel model(mc, 5);
    SyntheticDataset ds(testData(mc, 128));
    SequentialLoader loader(ds);
    TrainHyper hyper;
    hyper.lr = 1.0f;
    auto algo = makeAlgorithm("sgd", model, hyper);
    Trainer trainer(*algo, loader);
    const TrainResult result = trainer.run(250);

    const double first =
        std::accumulate(result.losses.begin(),
                        result.losses.begin() + 25, 0.0) /
        25.0;
    const double last =
        std::accumulate(result.losses.end() - 25, result.losses.end(),
                        0.0) /
        25.0;
    EXPECT_LT(last, first - 0.02) << "no learning progress";
}

TEST(LearningTest, LazyDpLearnsWithModerateNoise)
{
    const auto mc = testModel();
    DlrmModel model(mc, 5);
    SyntheticDataset ds(testData(mc, 128));
    SequentialLoader loader(ds);
    TrainHyper hyper;
    hyper.lr = 0.3f;
    hyper.clipNorm = 0.3f;
    hyper.noiseMultiplier = 0.02f; // weak noise so signal dominates
    auto algo = makeAlgorithm("lazydp", model, hyper);
    Trainer trainer(*algo, loader);
    const TrainResult result = trainer.run(300);

    const double first =
        std::accumulate(result.losses.begin(),
                        result.losses.begin() + 25, 0.0) /
        25.0;
    const double last =
        std::accumulate(result.losses.end() - 25, result.losses.end(),
                        0.0) /
        25.0;
    EXPECT_LT(last, first - 0.01) << "no private learning progress";
}

TEST(TrainerTest, ZeroIterationsIsANoOp)
{
    const auto mc = testModel();
    DlrmModel model(mc, 5);
    SyntheticDataset ds(testData(mc));
    SequentialLoader loader(ds);
    TrainHyper hyper;
    auto algo = makeAlgorithm("sgd", model, hyper);
    Trainer trainer(*algo, loader);
    const TrainResult result = trainer.run(0);
    EXPECT_EQ(result.iterations, 0u);
    EXPECT_TRUE(result.losses.empty());
}

TEST(TrainerTest, LossRecordingCanBeDisabled)
{
    const auto mc = testModel();
    DlrmModel model(mc, 5);
    SyntheticDataset ds(testData(mc));
    SequentialLoader loader(ds);
    TrainHyper hyper;
    auto algo = makeAlgorithm("sgd", model, hyper);
    Trainer trainer(*algo, loader);
    TrainOptions options;
    options.recordLosses = false;
    const TrainResult result = trainer.run(3, options);
    EXPECT_TRUE(result.losses.empty());
    EXPECT_EQ(result.iterations, 3u);
}

TEST(TrainerTest, LoaderConsumesExactlyOneBatchPerIteration)
{
    const auto mc = testModel();
    DlrmModel model(mc, 5);
    SyntheticDataset ds(testData(mc));
    SequentialLoader loader(ds);
    TrainHyper hyper;
    auto algo = makeAlgorithm("lazydp", model, hyper);
    Trainer trainer(*algo, loader);
    trainer.run(7);
    // 7 iterations -> 7 batches fetched (the lookahead reuses them)
    EXPECT_EQ(loader.produced(), 7u);
}

} // namespace
} // namespace lazydp
