/**
 * @file Lot-sharded data-parallel equivalence sweeps.
 *
 * The third parallelism axis (worker replicas) composes with the first
 * two (intra-op shards = --threads, stage pipelining = --pipeline) and
 * must never change the trained model: the lot always decomposes into
 * the same kLotShards microbatch shards, clipped shard gradients merge
 * through a fixed-shape tree, and the keyed noise add + update run once
 * on the aggregate. This suite pins the repo's signature invariant for
 * every engine: bit-identical final models AND loss trajectories for
 * replicas {1,2,4} x pipeline {off,on} x threads {1,2,8}.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/factory.h"
#include "data/synthetic_dataset.h"
#include "train/replica.h"
#include "train/trainer.h"

namespace lazydp {
namespace {

ModelConfig
testModel()
{
    auto mc = ModelConfig::tiny();
    mc.rowsPerTable = 64;
    mc.pooling = 2;
    return mc;
}

DatasetConfig
testData(const ModelConfig &mc)
{
    DatasetConfig dc;
    dc.numDense = mc.numDense;
    dc.numTables = mc.numTables;
    dc.rowsPerTable = mc.rowsPerTable;
    dc.pooling = mc.pooling;
    dc.batchSize = 8;
    dc.seed = 31337;
    dc.access = AccessConfig::criteoHigh(); // skew: uneven shard load
    return dc;
}

struct RunOutcome
{
    std::unique_ptr<DlrmModel> model;
    std::vector<double> losses;
};

/** Train `algo` for 12 iterations under the given schedule. */
RunOutcome
train(const std::string &algo, float weight_decay, std::size_t threads,
      bool pipeline, std::size_t replicas)
{
    const auto mc = testModel();
    TrainHyper hyper;
    hyper.lr = 0.05f;
    hyper.clipNorm = 0.8f;
    hyper.noiseMultiplier = 1.0f;
    hyper.noiseSeed = 0xBEEF;
    hyper.weightDecay = weight_decay;

    RunOutcome out;
    out.model = std::make_unique<DlrmModel>(mc, 23);
    SyntheticDataset ds(testData(mc));
    SequentialLoader loader(ds);
    auto algorithm = makeAlgorithm(algo, *out.model, hyper);

    ThreadPool pool(threads);
    ExecContext exec(&pool);
    TrainOptions options;
    options.pipeline = pipeline;
    options.replicas = replicas;
    out.losses =
        Trainer(*algorithm, loader, &exec).run(12, options).losses;
    return out;
}

void
expectBitIdentical(const DlrmModel &a, const DlrmModel &b,
                   const std::string &what)
{
    for (std::size_t t = 0; t < a.tables().size(); ++t) {
        const Tensor &wa = a.tables()[t].weights();
        const Tensor &wb = b.tables()[t].weights();
        ASSERT_EQ(wa.size(), wb.size());
        EXPECT_EQ(std::memcmp(wa.data(), wb.data(),
                              wa.size() * sizeof(float)),
                  0)
            << "table " << t << " differs: " << what;
    }
    auto check_mlp = [&](const Mlp &ma, const Mlp &mb, const char *which) {
        for (std::size_t l = 0; l < ma.layers().size(); ++l) {
            const Tensor &wa = ma.layers()[l].weight();
            const Tensor &wb = mb.layers()[l].weight();
            EXPECT_EQ(std::memcmp(wa.data(), wb.data(),
                                  wa.size() * sizeof(float)),
                      0)
                << which << " mlp layer " << l << " differs: " << what;
            const Tensor &ba = ma.layers()[l].bias();
            const Tensor &bb = mb.layers()[l].bias();
            EXPECT_EQ(std::memcmp(ba.data(), bb.data(),
                                  ba.size() * sizeof(float)),
                      0)
                << which << " mlp bias " << l << " differs: " << what;
        }
    };
    check_mlp(a.bottomMlp(), b.bottomMlp(), "bottom");
    check_mlp(a.topMlp(), b.topMlp(), "top");
}

class ReplicaEquivalenceTest
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ReplicaEquivalenceTest, ModelBitIdenticalAcrossReplicaMatrix)
{
    const std::string algo = GetParam();
    const RunOutcome reference =
        train(algo, 0.0f, /*threads=*/1, /*pipeline=*/false,
              /*replicas=*/1);
    for (const std::size_t replicas : {1u, 2u, 4u}) {
        for (const bool pipeline : {false, true}) {
            for (const std::size_t threads : {1u, 2u, 8u}) {
                const RunOutcome run =
                    train(algo, 0.0f, threads, pipeline, replicas);
                const std::string what =
                    algo + ": replicas " + std::to_string(replicas) +
                    ", pipeline " + (pipeline ? "on" : "off") + ", " +
                    std::to_string(threads) + " threads";
                expectBitIdentical(*reference.model, *run.model, what);
                // Losses come from the forward pass, so any weight
                // divergence mid-run shows up here even if the final
                // bytes matched.
                EXPECT_EQ(reference.losses, run.losses) << what;
            }
        }
    }
}

TEST_P(ReplicaEquivalenceTest, DeferredDecayAlsoReplicaInvariant)
{
    const std::string algo = GetParam();
    if (algo == "eana" || algo == "sgd")
        GTEST_SKIP() << algo << " rejects weight decay";
    const RunOutcome reference = train(algo, 0.1f, 1, false, 1);
    const RunOutcome run = train(algo, 0.1f, 8, true, 4);
    expectBitIdentical(*reference.model, *run.model,
                       algo + ": decay, replicas 4, pipeline on");
    EXPECT_EQ(reference.losses, run.losses);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, ReplicaEquivalenceTest,
    ::testing::Values("sgd", "dpsgd-b", "dpsgd-r", "dpsgd-f", "eana",
                      "lazydp", "lazydp-noans"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(ReplicaScheduleTest, SerialExecRunsSameDataflow)
{
    // replicas > 1 without a pool: the dispatch runs every shard inline
    // on the caller -- identical bits, no threads required.
    const auto mc = testModel();
    TrainHyper hyper;
    hyper.noiseSeed = 0xBEEF;

    DlrmModel plain_model(mc, 23);
    DlrmModel inline_model(mc, 23);
    SyntheticDataset ds(testData(mc));
    {
        SequentialLoader loader(ds);
        auto algo = makeAlgorithm("lazydp", plain_model, hyper);
        Trainer(*algo, loader).run(6);
    }
    {
        SequentialLoader loader(ds);
        auto algo = makeAlgorithm("lazydp", inline_model, hyper);
        TrainOptions options;
        options.replicas = 4;
        Trainer(*algo, loader).run(6, options);
    }
    expectBitIdentical(plain_model, inline_model, "poolless replicas");
}

TEST(ReplicaScheduleTest, LotSmallerThanShardCountStillWorks)
{
    // batch 2 < kLotShards: two shards carry one example each, two are
    // empty (exact-zero partials); the tree reduction must be intact.
    const auto mc = testModel();
    auto dc = testData(mc);
    dc.batchSize = 2;
    TrainHyper hyper;
    hyper.noiseSeed = 0xBEEF;

    DlrmModel ref_model(mc, 23);
    DlrmModel rep_model(mc, 23);
    SyntheticDataset ds(dc);
    {
        SequentialLoader loader(ds);
        auto algo = makeAlgorithm("dpsgd-f", ref_model, hyper);
        Trainer(*algo, loader).run(4);
    }
    {
        SequentialLoader loader(ds);
        auto algo = makeAlgorithm("dpsgd-f", rep_model, hyper);
        ThreadPool pool(2);
        ExecContext exec(&pool);
        TrainOptions options;
        options.replicas = 4;
        Trainer(*algo, loader, &exec).run(4, options);
    }
    expectBitIdentical(ref_model, rep_model, "tiny lot, 4 replicas");
}

/**
 * Ragged lots: batch sizes NOT divisible by kLotShards decompose into
 * shards of size floor and floor+1 (larger shards first). The replica
 * matrix must stay bit-identical on them — this is where an off-by-one
 * in the bounds or the lot-wide gather would surface as example loss,
 * duplication, or a misaligned gather offset.
 */
TEST(ReplicaScheduleTest, RaggedLotBitIdenticalAcrossReplicas)
{
    const auto mc = testModel();
    for (const std::size_t batch : {5u, 6u, 7u}) {
        auto dc = testData(mc);
        dc.batchSize = batch;
        TrainHyper hyper;
        hyper.noiseSeed = 0xBEEF;

        DlrmModel ref_model(mc, 23);
        SyntheticDataset ds(dc);
        {
            SequentialLoader loader(ds);
            auto algo = makeAlgorithm("lazydp", ref_model, hyper);
            Trainer(*algo, loader).run(5);
        }
        for (const std::size_t replicas : {2u, 4u}) {
            DlrmModel rep_model(mc, 23);
            SequentialLoader loader(ds);
            auto algo = makeAlgorithm("lazydp", rep_model, hyper);
            ThreadPool pool(2);
            ExecContext exec(&pool);
            TrainOptions options;
            options.replicas = replicas;
            Trainer(*algo, loader, &exec).run(5, options);
            expectBitIdentical(ref_model, rep_model,
                               "ragged batch " + std::to_string(batch) +
                                   ", " + std::to_string(replicas) +
                                   " replicas");
        }
    }
}

TEST(ReplicaScheduleTest, InvalidReplicaCountIsFatal)
{
    setLogThrowMode(true);
    const auto mc = testModel();
    DlrmModel model(mc, 23);
    TrainHyper hyper;
    SyntheticDataset ds(testData(mc));
    SequentialLoader loader(ds);
    auto algo = makeAlgorithm("lazydp", model, hyper);
    TrainOptions options;
    options.replicas = 3; // does not divide the fixed shard count
    EXPECT_THROW(Trainer(*algo, loader).run(2, options),
                 std::runtime_error);
    setLogThrowMode(false);
}

} // namespace
} // namespace lazydp
