/**
 * @file Cross-algorithm equivalence sweeps: the paper's central claim
 * ("mathematically equivalent, differentially private models") checked
 * over batch sizes, pooling factors, and skewed access patterns.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>

#include "common/thread_pool.h"
#include "core/factory.h"
#include "core/lazydp.h"
#include "data/synthetic_dataset.h"
#include "dp/dp_sgd_f.h"
#include "train/trainer.h"

namespace lazydp {
namespace {

struct Scenario
{
    std::size_t batch;
    std::size_t pooling;
    AccessPattern pattern;
    const char *label;
};

std::ostream &
operator<<(std::ostream &os, const Scenario &s)
{
    return os << s.label;
}

class ScenarioTest : public ::testing::TestWithParam<Scenario>
{
};

double
maxTableDiff(DlrmModel &a, DlrmModel &b)
{
    double diff = 0.0;
    for (std::size_t t = 0; t < a.tables().size(); ++t) {
        const Tensor &wa = a.tables()[t].weights();
        const Tensor &wb = b.tables()[t].weights();
        for (std::size_t i = 0; i < wa.size(); ++i)
            diff = std::max(diff, std::abs(static_cast<double>(
                                      wa.data()[i] - wb.data()[i])));
    }
    return diff;
}

TEST_P(ScenarioTest, LazyNoAnsEqualsEagerUnderScenario)
{
    const Scenario sc = GetParam();
    auto mc = ModelConfig::tiny();
    mc.rowsPerTable = 64;
    mc.pooling = sc.pooling;

    DatasetConfig dc;
    dc.numDense = mc.numDense;
    dc.numTables = mc.numTables;
    dc.rowsPerTable = mc.rowsPerTable;
    dc.pooling = sc.pooling;
    dc.batchSize = sc.batch;
    dc.seed = 1234;
    switch (sc.pattern) {
      case AccessPattern::Uniform:
        dc.access = AccessConfig::uniform();
        break;
      case AccessPattern::HotCold:
        dc.access = AccessConfig::criteoHigh();
        break;
      case AccessPattern::Zipf:
        dc.access.pattern = AccessPattern::Zipf;
        dc.access.zipfS = 1.1;
        break;
    }

    TrainHyper hyper;
    hyper.lr = 0.05f;
    hyper.clipNorm = 0.8f;
    hyper.noiseMultiplier = 1.0f;
    hyper.noiseSeed = 0x5EED;

    DlrmModel eager_model(mc, 9);
    DlrmModel lazy_model(mc, 9);
    SyntheticDataset ds(dc);
    {
        SequentialLoader loader(ds);
        DpSgdF eager(eager_model, hyper);
        Trainer(eager, loader).run(10);
    }
    {
        SequentialLoader loader(ds);
        LazyDpAlgorithm lazy(lazy_model, hyper, /*use_ans=*/false);
        Trainer(lazy, loader).run(10);
    }
    EXPECT_LT(maxTableDiff(eager_model, lazy_model), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, ScenarioTest,
    ::testing::Values(
        Scenario{1, 1, AccessPattern::Uniform, "b1_p1_uniform"},
        Scenario{4, 1, AccessPattern::Uniform, "b4_p1_uniform"},
        Scenario{16, 1, AccessPattern::Uniform, "b16_p1_uniform"},
        Scenario{8, 2, AccessPattern::Uniform, "b8_p2_uniform"},
        Scenario{8, 4, AccessPattern::Uniform, "b8_p4_uniform"},
        Scenario{8, 2, AccessPattern::HotCold, "b8_p2_hot"},
        Scenario{16, 4, AccessPattern::HotCold, "b16_p4_hot"},
        Scenario{8, 2, AccessPattern::Zipf, "b8_p2_zipf"}),
    [](const ::testing::TestParamInfo<Scenario> &info) {
        return info.param.label;
    });

/**
 * Thread-count invariance: the parallel execution layer shards by
 * fixed boundaries and all noise is keyed by (iteration, table, row),
 * so the final model must be BIT-identical for any pool width -- for
 * LazyDP with and without ANS, for the eager DP-SGD(F) baseline, and
 * with deferred weight decay in play.
 */
class ThreadInvarianceTest
    : public ::testing::TestWithParam<const char *>
{
};

namespace thread_invariance {

DatasetConfig
datasetConfig(const ModelConfig &mc)
{
    DatasetConfig dc;
    dc.numDense = mc.numDense;
    dc.numTables = mc.numTables;
    dc.rowsPerTable = mc.rowsPerTable;
    dc.pooling = mc.pooling;
    dc.batchSize = 8;
    dc.seed = 4321;
    dc.access = AccessConfig::criteoHigh(); // skew: uneven shard load
    return dc;
}

/** Train `algo` for 12 iterations on `threads` threads. */
std::unique_ptr<DlrmModel>
train(const char *algo, const ModelConfig &mc, float weight_decay,
      std::size_t threads)
{
    TrainHyper hyper;
    hyper.lr = 0.05f;
    hyper.clipNorm = 0.8f;
    hyper.noiseMultiplier = 1.0f;
    hyper.noiseSeed = 0xBEEF;
    hyper.weightDecay = weight_decay;

    auto model = std::make_unique<DlrmModel>(mc, 17);
    SyntheticDataset ds(datasetConfig(mc));
    SequentialLoader loader(ds);
    auto algorithm = makeAlgorithm(algo, *model, hyper);

    ThreadPool pool(threads);
    ExecContext exec(&pool);
    Trainer(*algorithm, loader, &exec).run(12);
    return model;
}

void
expectBitIdentical(const DlrmModel &a, const DlrmModel &b,
                   std::size_t threads)
{
    for (std::size_t t = 0; t < a.tables().size(); ++t) {
        const Tensor &wa = a.tables()[t].weights();
        const Tensor &wb = b.tables()[t].weights();
        ASSERT_EQ(wa.size(), wb.size());
        EXPECT_EQ(std::memcmp(wa.data(), wb.data(),
                              wa.size() * sizeof(float)),
                  0)
            << "table " << t << " differs at " << threads << " threads";
    }
    auto check_mlp = [&](const Mlp &ma, const Mlp &mb, const char *which) {
        for (std::size_t l = 0; l < ma.layers().size(); ++l) {
            const Tensor &wa = ma.layers()[l].weight();
            const Tensor &wb = mb.layers()[l].weight();
            EXPECT_EQ(std::memcmp(wa.data(), wb.data(),
                                  wa.size() * sizeof(float)),
                      0)
                << which << " mlp layer " << l << " differs at "
                << threads << " threads";
        }
    };
    check_mlp(a.bottomMlp(), b.bottomMlp(), "bottom");
    check_mlp(a.topMlp(), b.topMlp(), "top");
}

} // namespace thread_invariance

TEST_P(ThreadInvarianceTest, FinalModelBitIdenticalAcrossThreadCounts)
{
    using namespace thread_invariance;
    auto mc = ModelConfig::tiny();
    mc.rowsPerTable = 64;
    mc.pooling = 2;

    const auto reference = train(GetParam(), mc, 0.0f, 1);
    for (const std::size_t threads : {2u, 8u}) {
        const auto model = train(GetParam(), mc, 0.0f, threads);
        expectBitIdentical(*reference, *model, threads);
    }
}

TEST_P(ThreadInvarianceTest, DeferredDecayAlsoThreadInvariant)
{
    using namespace thread_invariance;
    if (std::string(GetParam()) == "eana")
        GTEST_SKIP() << "EANA rejects weight decay";
    auto mc = ModelConfig::tiny();
    mc.rowsPerTable = 64;
    mc.pooling = 2;

    const auto reference = train(GetParam(), mc, 0.1f, 1);
    const auto model = train(GetParam(), mc, 0.1f, 8);
    expectBitIdentical(*reference, *model, 8);
}

INSTANTIATE_TEST_SUITE_P(Engines, ThreadInvarianceTest,
                         ::testing::Values("lazydp", "lazydp-noans",
                                           "dpsgd-f", "eana"),
                         [](const ::testing::TestParamInfo<const char *>
                                &info) {
                             std::string name = info.param;
                             for (auto &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });

TEST(HotRowEquivalenceTest, RepeatedlyAccessedRowStaysInSync)
{
    // Force one row to be in EVERY batch (hot row with delay-1 noise
    // every iteration) and a cold row never accessed: both ends of the
    // laziness spectrum must match the eager model.
    auto mc = ModelConfig::tiny();
    mc.numTables = 1;
    mc.rowsPerTable = 32;
    mc.pooling = 2;

    TrainHyper hyper;
    hyper.noiseSeed = 77;

    DlrmModel eager_model(mc, 2);
    DlrmModel lazy_model(mc, 2);

    // handcrafted batches: row 0 always accessed, row 31 never
    auto make_batch = [&](std::uint64_t iter) {
        MiniBatch mb;
        mb.resize(4, 1, 2, mc.numDense);
        for (std::size_t e = 0; e < 4; ++e) {
            mb.tableIndices(0)[e * 2] = 0; // hot row
            mb.tableIndices(0)[e * 2 + 1] =
                1 + static_cast<std::uint32_t>((iter + e) % 30);
            mb.labels[e] = static_cast<float>((iter + e) % 2);
            for (std::size_t d = 0; d < mc.numDense; ++d)
                mb.dense.at(e, d) =
                    static_cast<float>(((iter * 7 + e * 3 + d) % 5)) -
                    2.0f;
        }
        return mb;
    };

    const std::uint64_t iters = 8;
    {
        DpSgdF eager(eager_model, hyper);
        StageTimer t;
        for (std::uint64_t it = 1; it <= iters; ++it) {
            MiniBatch cur = make_batch(it - 1);
            eager.step(it, cur, nullptr, ExecContext::serial(), t);
        }
    }
    {
        LazyDpAlgorithm lazy(lazy_model, hyper, false);
        StageTimer t;
        for (std::uint64_t it = 1; it <= iters; ++it) {
            MiniBatch cur = make_batch(it - 1);
            MiniBatch next = make_batch(it);
            lazy.step(it, cur, it < iters ? &next : nullptr,
                      ExecContext::serial(), t);
        }
        lazy.finalize(iters, ExecContext::serial(), t);
    }

    const Tensor &we = eager_model.tables()[0].weights();
    const Tensor &wl = lazy_model.tables()[0].weights();
    for (std::size_t i = 0; i < we.size(); ++i)
        EXPECT_NEAR(we.data()[i], wl.data()[i], 1e-3)
            << "element " << i;
}

} // namespace
} // namespace lazydp
