/**
 * @file Cross-algorithm equivalence sweeps: the paper's central claim
 * ("mathematically equivalent, differentially private models") checked
 * over batch sizes, pooling factors, and skewed access patterns.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/lazydp.h"
#include "data/synthetic_dataset.h"
#include "dp/dp_sgd_f.h"
#include "train/trainer.h"

namespace lazydp {
namespace {

struct Scenario
{
    std::size_t batch;
    std::size_t pooling;
    AccessPattern pattern;
    const char *label;
};

std::ostream &
operator<<(std::ostream &os, const Scenario &s)
{
    return os << s.label;
}

class ScenarioTest : public ::testing::TestWithParam<Scenario>
{
};

double
maxTableDiff(DlrmModel &a, DlrmModel &b)
{
    double diff = 0.0;
    for (std::size_t t = 0; t < a.tables().size(); ++t) {
        const Tensor &wa = a.tables()[t].weights();
        const Tensor &wb = b.tables()[t].weights();
        for (std::size_t i = 0; i < wa.size(); ++i)
            diff = std::max(diff, std::abs(static_cast<double>(
                                      wa.data()[i] - wb.data()[i])));
    }
    return diff;
}

TEST_P(ScenarioTest, LazyNoAnsEqualsEagerUnderScenario)
{
    const Scenario sc = GetParam();
    auto mc = ModelConfig::tiny();
    mc.rowsPerTable = 64;
    mc.pooling = sc.pooling;

    DatasetConfig dc;
    dc.numDense = mc.numDense;
    dc.numTables = mc.numTables;
    dc.rowsPerTable = mc.rowsPerTable;
    dc.pooling = sc.pooling;
    dc.batchSize = sc.batch;
    dc.seed = 1234;
    switch (sc.pattern) {
      case AccessPattern::Uniform:
        dc.access = AccessConfig::uniform();
        break;
      case AccessPattern::HotCold:
        dc.access = AccessConfig::criteoHigh();
        break;
      case AccessPattern::Zipf:
        dc.access.pattern = AccessPattern::Zipf;
        dc.access.zipfS = 1.1;
        break;
    }

    TrainHyper hyper;
    hyper.lr = 0.05f;
    hyper.clipNorm = 0.8f;
    hyper.noiseMultiplier = 1.0f;
    hyper.noiseSeed = 0x5EED;

    DlrmModel eager_model(mc, 9);
    DlrmModel lazy_model(mc, 9);
    SyntheticDataset ds(dc);
    {
        SequentialLoader loader(ds);
        DpSgdF eager(eager_model, hyper);
        Trainer(eager, loader).run(10);
    }
    {
        SequentialLoader loader(ds);
        LazyDpAlgorithm lazy(lazy_model, hyper, /*use_ans=*/false);
        Trainer(lazy, loader).run(10);
    }
    EXPECT_LT(maxTableDiff(eager_model, lazy_model), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, ScenarioTest,
    ::testing::Values(
        Scenario{1, 1, AccessPattern::Uniform, "b1_p1_uniform"},
        Scenario{4, 1, AccessPattern::Uniform, "b4_p1_uniform"},
        Scenario{16, 1, AccessPattern::Uniform, "b16_p1_uniform"},
        Scenario{8, 2, AccessPattern::Uniform, "b8_p2_uniform"},
        Scenario{8, 4, AccessPattern::Uniform, "b8_p4_uniform"},
        Scenario{8, 2, AccessPattern::HotCold, "b8_p2_hot"},
        Scenario{16, 4, AccessPattern::HotCold, "b16_p4_hot"},
        Scenario{8, 2, AccessPattern::Zipf, "b8_p2_zipf"}),
    [](const ::testing::TestParamInfo<Scenario> &info) {
        return info.param.label;
    });

TEST(HotRowEquivalenceTest, RepeatedlyAccessedRowStaysInSync)
{
    // Force one row to be in EVERY batch (hot row with delay-1 noise
    // every iteration) and a cold row never accessed: both ends of the
    // laziness spectrum must match the eager model.
    auto mc = ModelConfig::tiny();
    mc.numTables = 1;
    mc.rowsPerTable = 32;
    mc.pooling = 2;

    TrainHyper hyper;
    hyper.noiseSeed = 77;

    DlrmModel eager_model(mc, 2);
    DlrmModel lazy_model(mc, 2);

    // handcrafted batches: row 0 always accessed, row 31 never
    auto make_batch = [&](std::uint64_t iter) {
        MiniBatch mb;
        mb.resize(4, 1, 2, mc.numDense);
        for (std::size_t e = 0; e < 4; ++e) {
            mb.tableIndices(0)[e * 2] = 0; // hot row
            mb.tableIndices(0)[e * 2 + 1] =
                1 + static_cast<std::uint32_t>((iter + e) % 30);
            mb.labels[e] = static_cast<float>((iter + e) % 2);
            for (std::size_t d = 0; d < mc.numDense; ++d)
                mb.dense.at(e, d) =
                    static_cast<float>(((iter * 7 + e * 3 + d) % 5)) -
                    2.0f;
        }
        return mb;
    };

    const std::uint64_t iters = 8;
    {
        DpSgdF eager(eager_model, hyper);
        StageTimer t;
        for (std::uint64_t it = 1; it <= iters; ++it) {
            MiniBatch cur = make_batch(it - 1);
            eager.step(it, cur, nullptr, t);
        }
    }
    {
        LazyDpAlgorithm lazy(lazy_model, hyper, false);
        StageTimer t;
        for (std::uint64_t it = 1; it <= iters; ++it) {
            MiniBatch cur = make_batch(it - 1);
            MiniBatch next = make_batch(it);
            lazy.step(it, cur, it < iters ? &next : nullptr, t);
        }
        lazy.finalize(iters, t);
    }

    const Tensor &we = eager_model.tables()[0].weights();
    const Tensor &wl = lazy_model.tables()[0].weights();
    for (std::size_t i = 0; i < we.size(); ++i)
        EXPECT_NEAR(we.data()[i], wl.data()[i], 1e-3)
            << "element " << i;
}

} // namespace
} // namespace lazydp
