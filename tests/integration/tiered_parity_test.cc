/**
 * @file Out-of-core bit-identity sweeps: the tiered (DRAM hot tier +
 * file-backed cold tier) embedding backend must train the EXACT same
 * model as all-DRAM for every engine, under the serial and pipelined
 * schedules, at 1 and 4 worker replicas, with a hot budget small
 * enough to force steady eviction/write-back traffic -- plus the
 * prefetch-off worst case and a checkpoint byte-identity leg.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/factory.h"
#include "data/synthetic_dataset.h"
#include "io/checkpoint.h"
#include "train/trainer.h"

namespace lazydp {
namespace {

struct TieredCase
{
    const char *algo;
    bool pipeline;
    std::size_t replicas;
};

std::ostream &
operator<<(std::ostream &os, const TieredCase &c)
{
    return os << c.algo << (c.pipeline ? "_pipe" : "_serial") << "_r"
              << c.replicas;
}

ModelConfig
modelConfig()
{
    auto mc = ModelConfig::tiny();
    mc.rowsPerTable = 256; // 32 pages of 8 rows per table
    return mc;
}

DatasetConfig
dataConfig(const ModelConfig &mc)
{
    DatasetConfig dc;
    dc.numDense = mc.numDense;
    dc.numTables = mc.numTables;
    dc.rowsPerTable = mc.rowsPerTable;
    dc.pooling = mc.pooling;
    dc.batchSize = 16;
    dc.seed = 0xD00D;
    // Skewed access stresses the hot tier the way production traffic
    // would: a popular head stays resident, the tail churns.
    dc.access = AccessConfig::criteoHigh();
    return dc;
}

TrainHyper
hyper(const char *algo)
{
    TrainHyper h;
    h.lr = 0.05f;
    h.clipNorm = 0.9f;
    h.noiseMultiplier = 1.0f;
    // Exercise the decayed update paths too (LazyDP's deferred decay
    // reads rows the tiered store must have resident); SGD and EANA
    // reject weight decay (sparse updates cannot decay unaccessed
    // rows), so they run without.
    if (std::strcmp(algo, "sgd") != 0 && std::strcmp(algo, "eana") != 0)
        h.weightDecay = 0.01f;
    h.noiseSeed = 0x5EED;
    return h;
}

/**
 * Train @p iters steps and return a dense copy of every table (tiered
 * and dense models compare through the same copyRowsOut surface).
 */
std::vector<std::vector<float>>
trainAndDump(DlrmModel &model, const char *algo_name, bool pipeline,
             std::size_t replicas, bool use_pool, std::uint64_t iters)
{
    SyntheticDataset ds(dataConfig(model.config()));
    SequentialLoader loader(ds);
    auto algo = makeAlgorithm(algo_name, model, hyper(algo_name));

    std::unique_ptr<ThreadPool> pool;
    std::unique_ptr<ExecContext> exec;
    if (use_pool) {
        pool = std::make_unique<ThreadPool>(4);
        exec = std::make_unique<ExecContext>(pool.get());
    }
    Trainer trainer(*algo, loader, exec.get());
    TrainOptions options;
    options.pipeline = pipeline;
    options.replicas = replicas;
    trainer.run(iters, options);

    std::vector<std::vector<float>> dump;
    for (const auto &t : model.tables()) {
        std::vector<float> w(static_cast<std::size_t>(t.rows()) *
                             t.dim());
        t.copyRowsOut(0, t.rows(), w.data());
        dump.push_back(std::move(w));
    }
    return dump;
}

DlrmModel::TieredModelOptions
tierOptions(const std::string &dir, bool prefetch)
{
    DlrmModel::TieredModelOptions tier;
    // 8 hot pages per table out of 32 (tiny is 8-dim, pages are 8
    // rows): small enough that every iteration promotes and evicts
    // (the interesting regime).
    tier.hotBytes = 8 * (8 * 8 * sizeof(float)) *
                    modelConfig().numTables;
    tier.coldDir = dir;
    tier.pageRows = 8;
    tier.prefetch = prefetch;
    return tier;
}

class TieredParityTest : public ::testing::TestWithParam<TieredCase>
{
  protected:
    void
    SetUp() override
    {
        dir_ = ::testing::TempDir() + "lazydp_tierpar_" +
               std::to_string(::getpid());
        (void)std::system(("mkdir -p " + dir_).c_str());
    }

    void
    TearDown() override
    {
        (void)std::system(("rm -rf " + dir_).c_str());
    }

    std::string dir_;
};

TEST_P(TieredParityTest, TieredModelBitIdenticalToDram)
{
    const TieredCase c = GetParam();
    const std::uint64_t iters = 12;
    const std::uint64_t seed = 11;

    DlrmModel dense_model(modelConfig(), seed);
    const auto dense = trainAndDump(dense_model, c.algo, c.pipeline,
                                    c.replicas,
                                    /*use_pool=*/true, iters);

    DlrmModel tiered_model(modelConfig(), seed,
                           tierOptions(dir_, /*prefetch=*/true));
    ASSERT_TRUE(tiered_model.tiered());
    const auto tiered = trainAndDump(tiered_model, c.algo, c.pipeline,
                                     c.replicas,
                                     /*use_pool=*/true, iters);

    ASSERT_EQ(dense.size(), tiered.size());
    for (std::size_t t = 0; t < dense.size(); ++t) {
        EXPECT_EQ(std::memcmp(dense[t].data(), tiered[t].data(),
                              dense[t].size() * sizeof(float)),
                  0)
            << "table " << t << " diverged (engine " << c.algo << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, TieredParityTest,
    ::testing::Values(
        // Every engine at the serial baseline...
        TieredCase{"sgd", false, 1}, TieredCase{"dpsgd-b", false, 1},
        TieredCase{"dpsgd-r", false, 1},
        TieredCase{"dpsgd-f", false, 1}, TieredCase{"eana", false, 1},
        TieredCase{"lazydp", false, 1},
        TieredCase{"lazydp-noans", false, 1},
        // ...the pipelined schedule (warm submissions race apply)...
        TieredCase{"sgd", true, 1}, TieredCase{"eana", true, 1},
        TieredCase{"lazydp", true, 1},
        TieredCase{"lazydp-noans", true, 1},
        // ...and 4 worker replicas, serial + pipelined.
        TieredCase{"sgd", false, 4}, TieredCase{"lazydp", false, 4},
        TieredCase{"sgd", true, 4}, TieredCase{"lazydp", true, 4}),
    [](const auto &info) {
        std::string n = info.param.algo;
        for (auto &ch : n)
            if (ch == '-')
                ch = '_';
        return n + (info.param.pipeline ? "_pipe" : "_serial") + "_r" +
               std::to_string(info.param.replicas);
    });

TEST(TieredWorstCaseTest, PrefetchOffStillBitIdentical)
{
    const std::string dir = ::testing::TempDir() + "lazydp_tiernp_" +
                            std::to_string(::getpid());
    (void)std::system(("mkdir -p " + dir).c_str());

    DlrmModel dense_model(modelConfig(), 11);
    const auto dense =
        trainAndDump(dense_model, "lazydp", /*pipeline=*/true,
                     /*replicas=*/1, /*use_pool=*/true, 12);

    // prefetch=off: every promotion faults synchronously -- the
    // worst-case leg must still train the identical model.
    DlrmModel tiered_model(modelConfig(), 11,
                           tierOptions(dir, /*prefetch=*/false));
    const auto tiered =
        trainAndDump(tiered_model, "lazydp", /*pipeline=*/true,
                     /*replicas=*/1, /*use_pool=*/true, 12);

    for (std::size_t t = 0; t < dense.size(); ++t) {
        EXPECT_EQ(std::memcmp(dense[t].data(), tiered[t].data(),
                              dense[t].size() * sizeof(float)),
                  0);
    }
    (void)std::system(("rm -rf " + dir).c_str());
}

TEST(TieredCheckpointTest, CheckpointBytesMatchDenseRun)
{
    // Checkpoints are part of the bit-identity surface: a tiered
    // model's saved file must be byte-identical to the dense run's
    // (same format, same weights), so downstream tooling can't tell
    // the storage modes apart.
    const std::string dir = ::testing::TempDir() + "lazydp_tierck_" +
                            std::to_string(::getpid());
    (void)std::system(("mkdir -p " + dir).c_str());
    const std::string dense_ckpt = dir + "/dense.bin";
    const std::string tiered_ckpt = dir + "/tiered.bin";

    DlrmModel dense_model(modelConfig(), 11);
    trainAndDump(dense_model, "sgd", false, 1, false, 6);
    io::saveModel(dense_ckpt, dense_model);

    DlrmModel tiered_model(modelConfig(), 11, tierOptions(dir, true));
    trainAndDump(tiered_model, "sgd", false, 1, false, 6);
    io::saveModel(tiered_ckpt, tiered_model);

    std::ifstream a(dense_ckpt, std::ios::binary);
    std::ifstream b(tiered_ckpt, std::ios::binary);
    ASSERT_TRUE(a.good());
    ASSERT_TRUE(b.good());
    std::vector<char> abuf(
        (std::istreambuf_iterator<char>(a)),
        std::istreambuf_iterator<char>());
    std::vector<char> bbuf(
        (std::istreambuf_iterator<char>(b)),
        std::istreambuf_iterator<char>());
    EXPECT_EQ(abuf.size(), bbuf.size());
    EXPECT_EQ(std::memcmp(abuf.data(), bbuf.data(), abuf.size()), 0);

    // And loading the tiered checkpoint back into a FRESH tiered
    // model restores the exact weights (readModelBody -> copyRowsIn).
    (void)std::system(("mkdir -p " + dir + "/r").c_str());
    DlrmModel restored(modelConfig(), 77,
                       tierOptions(dir + "/r", true));
    io::loadModel(tiered_ckpt, restored);
    for (std::size_t t = 0; t < restored.tables().size(); ++t) {
        const auto &rt = restored.tables()[t];
        const auto &st = tiered_model.tables()[t];
        std::vector<float> rw(static_cast<std::size_t>(rt.rows()) *
                              rt.dim());
        std::vector<float> sw(rw.size());
        rt.copyRowsOut(0, rt.rows(), rw.data());
        st.copyRowsOut(0, st.rows(), sw.data());
        EXPECT_EQ(std::memcmp(rw.data(), sw.data(),
                              rw.size() * sizeof(float)),
                  0);
    }
    (void)std::system(("rm -rf " + dir).c_str());
}

} // namespace
} // namespace lazydp
