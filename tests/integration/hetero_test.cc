/**
 * @file Heterogeneous-table tests: production DLRMs mix huge and tiny
 * tables; every invariant (equivalence, lazy accounting, metadata
 * sizing) must hold when tables differ in row count.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/lazydp.h"
#include "data/synthetic_dataset.h"
#include "dp/dp_sgd_f.h"
#include "train/trainer.h"

namespace lazydp {
namespace {

ModelConfig
heteroConfig()
{
    auto mc = ModelConfig::tiny();
    mc.name = "hetero-test";
    mc.rowsPerTableVec = {200, 17, 64}; // numTables == 3
    mc.rowsPerTable = 200;
    return mc;
}

DatasetConfig
heteroData(const ModelConfig &mc)
{
    DatasetConfig dc;
    dc.numDense = mc.numDense;
    dc.numTables = mc.numTables;
    dc.rowsPerTable = mc.rowsPerTable;
    dc.rowsPerTableVec = mc.rowsPerTableVec;
    dc.pooling = mc.pooling;
    dc.batchSize = 8;
    dc.seed = 2024;
    return dc;
}

TEST(HeteroTest, ConfigArithmetic)
{
    const auto mc = heteroConfig();
    mc.validate();
    EXPECT_EQ(mc.rowsForTable(0), 200u);
    EXPECT_EQ(mc.rowsForTable(1), 17u);
    EXPECT_EQ(mc.totalRows(), 281u);
    EXPECT_EQ(mc.maxTableRows(), 200u);
    EXPECT_EQ(mc.tableBytes(), 281u * mc.embedDim * 4);
}

TEST(HeteroTest, ValidateRejectsWrongVecLength)
{
    setLogThrowMode(true);
    auto mc = heteroConfig();
    mc.rowsPerTableVec.pop_back();
    EXPECT_THROW(mc.validate(), std::runtime_error);
    setLogThrowMode(false);
}

TEST(HeteroTest, ModelBuildsTablesWithPerTableRows)
{
    DlrmModel model(heteroConfig(), 1);
    EXPECT_EQ(model.tables()[0].rows(), 200u);
    EXPECT_EQ(model.tables()[1].rows(), 17u);
    EXPECT_EQ(model.tables()[2].rows(), 64u);
}

TEST(HeteroTest, DatasetRespectsPerTableRanges)
{
    SyntheticDataset ds(heteroData(heteroConfig()));
    for (std::uint64_t it = 0; it < 20; ++it) {
        const MiniBatch mb = ds.batch(it);
        for (auto idx : mb.tableIndices(1))
            EXPECT_LT(idx, 17u);
        for (auto idx : mb.tableIndices(2))
            EXPECT_LT(idx, 64u);
    }
}

TEST(HeteroTest, HistoryTableSizesFollowTables)
{
    DlrmModel model(heteroConfig(), 1);
    TrainHyper hyper;
    LazyDpAlgorithm lazy(model, hyper, true);
    const HistoryTable &h = lazy.historyTable();
    EXPECT_EQ(h.rowsForTable(0), 200u);
    EXPECT_EQ(h.rowsForTable(1), 17u);
    EXPECT_EQ(h.bytes(), 281u * 4u);
}

TEST(HeteroTest, LazyNoAnsEqualsEagerOnHeteroTables)
{
    const auto mc = heteroConfig();
    TrainHyper hyper;
    hyper.noiseSeed = 0x44;
    DlrmModel eager_model(mc, 9);
    DlrmModel lazy_model(mc, 9);
    SyntheticDataset ds(heteroData(mc));
    {
        SequentialLoader loader(ds);
        DpSgdF eager(eager_model, hyper);
        Trainer(eager, loader).run(8);
    }
    {
        SequentialLoader loader(ds);
        LazyDpAlgorithm lazy(lazy_model, hyper, /*use_ans=*/false);
        Trainer(lazy, loader).run(8);
    }
    for (std::size_t t = 0; t < mc.numTables; ++t) {
        const Tensor &we = eager_model.tables()[t].weights();
        const Tensor &wl = lazy_model.tables()[t].weights();
        for (std::size_t i = 0; i < we.size(); ++i)
            EXPECT_NEAR(we.data()[i], wl.data()[i], 1e-3)
                << "table " << t;
    }
}

TEST(HeteroTest, MlperfHeteroPresetIsPowerLaw)
{
    const auto mc = ModelConfig::mlperfHetero(96ull << 20);
    mc.validate();
    EXPECT_EQ(mc.rowsPerTableVec.size(), mc.numTables);
    // strictly non-increasing table sizes, first much larger than last
    for (std::size_t t = 1; t < mc.numTables; ++t)
        EXPECT_LE(mc.rowsForTable(t), mc.rowsForTable(t - 1));
    EXPECT_GT(mc.rowsForTable(0),
              10 * mc.rowsForTable(mc.numTables - 1));
    // total stays near the requested budget
    EXPECT_NEAR(static_cast<double>(mc.tableBytes()),
                static_cast<double>(96ull << 20),
                0.05 * static_cast<double>(96ull << 20));
}

TEST(HeteroTest, TrainingRunsOnHeteroPreset)
{
    const auto mc = ModelConfig::mlperfHetero(2u << 20);
    DlrmModel model(mc, 2);
    DatasetConfig dc;
    dc.numDense = mc.numDense;
    dc.numTables = mc.numTables;
    dc.rowsPerTable = mc.rowsPerTable;
    dc.rowsPerTableVec = mc.rowsPerTableVec;
    dc.pooling = mc.pooling;
    dc.batchSize = 16;
    SyntheticDataset ds(dc);
    SequentialLoader loader(ds);
    TrainHyper hyper;
    LazyDpAlgorithm lazy(model, hyper, true);
    Trainer trainer(lazy, loader);
    const TrainResult r = trainer.run(3);
    EXPECT_EQ(r.iterations, 3u);
    for (double l : r.losses)
        EXPECT_TRUE(std::isfinite(l));
}

} // namespace
} // namespace lazydp
