/**
 * @file Pipeline equivalence sweeps: the two-stage software pipeline
 * (prepare(i+1) + batch prefetch overlapped with apply(i)) must train
 * a BIT-identical model to the serial schedule for every engine, at
 * every pool width -- the PR-1 thread-sweep guarantee extended to the
 * overlapped schedule.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "common/thread_pool.h"
#include "core/factory.h"
#include "data/synthetic_dataset.h"
#include "train/trainer.h"

namespace lazydp {
namespace {

ModelConfig
testModel()
{
    auto mc = ModelConfig::tiny();
    mc.rowsPerTable = 64;
    mc.pooling = 2;
    return mc;
}

DatasetConfig
testData(const ModelConfig &mc)
{
    DatasetConfig dc;
    dc.numDense = mc.numDense;
    dc.numTables = mc.numTables;
    dc.rowsPerTable = mc.rowsPerTable;
    dc.pooling = mc.pooling;
    dc.batchSize = 8;
    dc.seed = 24601;
    dc.access = AccessConfig::criteoHigh(); // skew: uneven shard load
    return dc;
}

struct RunOutcome
{
    std::unique_ptr<DlrmModel> model;
    std::vector<double> losses;
};

/** Train `algo` for 12 iterations on `threads` threads. */
RunOutcome
train(const std::string &algo, float weight_decay, std::size_t threads,
      bool pipeline)
{
    const auto mc = testModel();
    TrainHyper hyper;
    hyper.lr = 0.05f;
    hyper.clipNorm = 0.8f;
    hyper.noiseMultiplier = 1.0f;
    hyper.noiseSeed = 0xFACE;
    hyper.weightDecay = weight_decay;

    RunOutcome out;
    out.model = std::make_unique<DlrmModel>(mc, 23);
    SyntheticDataset ds(testData(mc));
    SequentialLoader loader(ds);
    auto algorithm = makeAlgorithm(algo, *out.model, hyper);

    ThreadPool pool(threads);
    ExecContext exec(&pool);
    TrainOptions options;
    options.pipeline = pipeline;
    out.losses =
        Trainer(*algorithm, loader, &exec).run(12, options).losses;
    return out;
}

void
expectBitIdentical(const DlrmModel &a, const DlrmModel &b,
                   const std::string &what)
{
    for (std::size_t t = 0; t < a.tables().size(); ++t) {
        const Tensor &wa = a.tables()[t].weights();
        const Tensor &wb = b.tables()[t].weights();
        ASSERT_EQ(wa.size(), wb.size());
        EXPECT_EQ(std::memcmp(wa.data(), wb.data(),
                              wa.size() * sizeof(float)),
                  0)
            << "table " << t << " differs: " << what;
    }
    auto check_mlp = [&](const Mlp &ma, const Mlp &mb, const char *which) {
        for (std::size_t l = 0; l < ma.layers().size(); ++l) {
            const Tensor &wa = ma.layers()[l].weight();
            const Tensor &wb = mb.layers()[l].weight();
            EXPECT_EQ(std::memcmp(wa.data(), wb.data(),
                                  wa.size() * sizeof(float)),
                      0)
                << which << " mlp layer " << l << " differs: " << what;
        }
    };
    check_mlp(a.bottomMlp(), b.bottomMlp(), "bottom");
    check_mlp(a.topMlp(), b.topMlp(), "top");
}

class PipelineEquivalenceTest
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(PipelineEquivalenceTest, PipelinedModelBitIdenticalToSerial)
{
    const std::string algo = GetParam();
    const RunOutcome reference = train(algo, 0.0f, 1, /*pipeline=*/false);
    for (const std::size_t threads : {1u, 2u, 8u}) {
        const RunOutcome piped =
            train(algo, 0.0f, threads, /*pipeline=*/true);
        expectBitIdentical(*reference.model, *piped.model,
                           "pipeline on, " + std::to_string(threads) +
                               " threads");
        // Losses come from the forward pass, so any weight divergence
        // mid-run shows up here even if the final bytes matched.
        EXPECT_EQ(reference.losses, piped.losses)
            << algo << " at " << threads << " threads";
    }
}

TEST_P(PipelineEquivalenceTest, DeferredDecayAlsoPipelineInvariant)
{
    const std::string algo = GetParam();
    if (algo == "eana" || algo == "sgd")
        GTEST_SKIP() << algo << " rejects weight decay";
    const RunOutcome reference = train(algo, 0.1f, 1, /*pipeline=*/false);
    const RunOutcome piped = train(algo, 0.1f, 8, /*pipeline=*/true);
    expectBitIdentical(*reference.model, *piped.model,
                       "decay, pipeline on, 8 threads");
    EXPECT_EQ(reference.losses, piped.losses);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, PipelineEquivalenceTest,
    ::testing::Values("sgd", "dpsgd-b", "dpsgd-r", "dpsgd-f", "eana",
                      "lazydp", "lazydp-noans"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(PipelineScheduleTest, LoaderStillConsumesOneBatchPerIteration)
{
    const auto mc = testModel();
    DlrmModel model(mc, 23);
    SyntheticDataset ds(testData(mc));
    SequentialLoader loader(ds);
    TrainHyper hyper;
    auto algo = makeAlgorithm("lazydp", model, hyper);
    ThreadPool pool(2);
    ExecContext exec(&pool);
    TrainOptions options;
    options.pipeline = true;
    Trainer(*algo, loader, &exec).run(7, options);
    // One fetch per iteration: the pipeline prefetches earlier, it
    // never fetches more.
    EXPECT_EQ(loader.produced(), 7u);
}

TEST(PipelineScheduleTest, SerialExecFallsBackAndMatches)
{
    // pipeline=true without a pool: the Trainer silently runs the
    // serial schedule; results must match a plain run.
    const auto mc = testModel();
    TrainHyper hyper;
    hyper.noiseSeed = 0xFACE;

    DlrmModel plain_model(mc, 23);
    DlrmModel fallback_model(mc, 23);
    SyntheticDataset ds(testData(mc));
    {
        SequentialLoader loader(ds);
        auto algo = makeAlgorithm("lazydp", plain_model, hyper);
        Trainer(*algo, loader).run(6);
    }
    {
        SequentialLoader loader(ds);
        auto algo = makeAlgorithm("lazydp", fallback_model, hyper);
        TrainOptions options;
        options.pipeline = true;
        Trainer(*algo, loader).run(6, options);
    }
    expectBitIdentical(plain_model, fallback_model, "serial fallback");
}

} // namespace
} // namespace lazydp
