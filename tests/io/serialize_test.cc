/** @file Round-trip tests for the binary serialization primitives. */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "io/serialize.h"

namespace lazydp {
namespace {

TEST(SerializeTest, ScalarsRoundTrip)
{
    std::stringstream ss;
    io::BinaryWriter w(ss);
    w.writeU32(0xDEADBEEF);
    w.writeU64(0x0123456789ABCDEFull);
    w.writeF32(3.14159f);
    w.writeString("lazydp");

    io::BinaryReader r(ss);
    EXPECT_EQ(r.readU32(), 0xDEADBEEFu);
    EXPECT_EQ(r.readU64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.readF32(), 3.14159f);
    EXPECT_EQ(r.readString(), "lazydp");
}

TEST(SerializeTest, ArraysRoundTrip)
{
    std::stringstream ss;
    io::BinaryWriter w(ss);
    const float f[] = {1.0f, -2.5f, 3e-7f};
    const std::uint32_t u[] = {7, 8, 9, 10};
    w.writeF32Array({f, 3});
    w.writeU32Array({u, 4});

    io::BinaryReader r(ss);
    float f_out[3];
    std::uint32_t u_out[4];
    r.readF32Array({f_out, 3});
    r.readU32Array({u_out, 4});
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(f_out[i], f[i]);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(u_out[i], u[i]);
}

TEST(SerializeTest, TruncatedStreamFails)
{
    setLogThrowMode(true);
    std::stringstream ss;
    io::BinaryWriter w(ss);
    w.writeU32(1);
    io::BinaryReader r(ss);
    EXPECT_EQ(r.readU32(), 1u);
    EXPECT_THROW(r.readU64(), std::runtime_error);
    setLogThrowMode(false);
}

TEST(SerializeTest, ArrayLengthMismatchFails)
{
    setLogThrowMode(true);
    std::stringstream ss;
    io::BinaryWriter w(ss);
    const float f[] = {1.0f, 2.0f};
    w.writeF32Array({f, 2});
    io::BinaryReader r(ss);
    float out[3];
    EXPECT_THROW(r.readF32Array({out, 3}), std::runtime_error);
    setLogThrowMode(false);
}

TEST(SerializeTest, SpecialFloatValuesPreserved)
{
    std::stringstream ss;
    io::BinaryWriter w(ss);
    w.writeF32(0.0f);
    w.writeF32(-0.0f);
    w.writeF32(1e-38f);
    io::BinaryReader r(ss);
    EXPECT_EQ(r.readF32(), 0.0f);
    const float neg_zero = r.readF32();
    EXPECT_EQ(neg_zero, 0.0f);
    EXPECT_TRUE(std::signbit(neg_zero));
    EXPECT_EQ(r.readF32(), 1e-38f);
}

} // namespace
} // namespace lazydp
