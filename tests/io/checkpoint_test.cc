/**
 * @file Checkpoint tests, including the resume-equivalence property:
 * a LazyDP run checkpointed and resumed must produce exactly the same
 * model as an uninterrupted run (keyed noise + persisted HistoryTable).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "common/thread_pool.h"
#include "data/synthetic_dataset.h"
#include "io/checkpoint.h"
#include "train/trainer.h"

namespace lazydp {
namespace {

class CheckpointTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "lazydp_ckpt_" +
                std::to_string(::getpid()) + ".bin";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    static ModelConfig
    modelConfig()
    {
        auto mc = ModelConfig::tiny();
        mc.rowsPerTable = 64;
        return mc;
    }

    static DatasetConfig
    dataConfig()
    {
        const auto mc = modelConfig();
        DatasetConfig dc;
        dc.numDense = mc.numDense;
        dc.numTables = mc.numTables;
        dc.rowsPerTable = mc.rowsPerTable;
        dc.pooling = mc.pooling;
        dc.batchSize = 8;
        dc.seed = 77;
        return dc;
    }

    static TrainHyper
    hyper()
    {
        TrainHyper h;
        h.noiseSeed = 0xC4C4;
        return h;
    }

    std::string path_;
};

TEST_F(CheckpointTest, ModelWeightsRoundTrip)
{
    DlrmModel a(modelConfig(), 3);
    io::saveModel(path_, a);
    DlrmModel b(modelConfig(), 99); // different init
    io::loadModel(path_, b);

    for (std::size_t t = 0; t < a.tables().size(); ++t) {
        const Tensor &wa = a.tables()[t].weights();
        const Tensor &wb = b.tables()[t].weights();
        for (std::size_t i = 0; i < wa.size(); ++i)
            EXPECT_EQ(wa.data()[i], wb.data()[i]);
    }
    const Tensor &la = a.topMlp().layers()[0].weight();
    const Tensor &lb = b.topMlp().layers()[0].weight();
    for (std::size_t i = 0; i < la.size(); ++i)
        EXPECT_EQ(la.data()[i], lb.data()[i]);
}

TEST_F(CheckpointTest, ShapeMismatchIsRejected)
{
    setLogThrowMode(true);
    DlrmModel a(modelConfig(), 3);
    io::saveModel(path_, a);
    auto other = modelConfig();
    other.rowsPerTable = 128;
    DlrmModel b(other, 3);
    EXPECT_THROW(io::loadModel(path_, b), std::runtime_error);
    setLogThrowMode(false);
}

TEST_F(CheckpointTest, WrongMagicIsRejected)
{
    setLogThrowMode(true);
    DlrmModel a(modelConfig(), 3);
    LazyDpAlgorithm lazy(a, hyper(), true);
    io::saveTraining(path_, a, lazy, 1);
    DlrmModel b(modelConfig(), 3);
    // loading a training checkpoint as a model checkpoint must fail
    EXPECT_THROW(io::loadModel(path_, b), std::runtime_error);
    setLogThrowMode(false);
}

TEST_F(CheckpointTest, ResumedRunEqualsUninterruptedRun)
{
    const std::uint64_t total_iters = 12;
    const std::uint64_t split = 5;

    // Reference: straight-through run.
    DlrmModel ref_model(modelConfig(), 3);
    {
        SyntheticDataset ds(dataConfig());
        SequentialLoader loader(ds);
        LazyDpAlgorithm lazy(ref_model, hyper(), /*use_ans=*/false);
        Trainer(lazy, loader).run(total_iters);
    }

    // Interrupted run: train `split` iterations (no finalize!), save,
    // reload into fresh objects, continue, finalize at the end.
    DlrmModel part_model(modelConfig(), 3);
    {
        SyntheticDataset ds(dataConfig());
        SequentialLoader loader(ds);
        LazyDpAlgorithm lazy(part_model, hyper(), false);
        StageTimer timer;
        InputQueue q;
        q.push(loader.next());
        for (std::uint64_t it = 1; it <= split; ++it) {
            q.push(loader.next());
            lazy.step(it, q.head(), &q.tail(), ExecContext::serial(),
                      timer);
            q.pop();
        }
        io::saveTraining(path_, part_model, lazy, split + 1);
        // q.head() now holds the batch for iteration split+1; the
        // resumed loader regenerates it deterministically.
    }

    DlrmModel resumed_model(modelConfig(), 3);
    {
        LazyDpAlgorithm lazy(resumed_model, hyper(), false);
        const io::ResumeInfo info =
            io::loadTraining(path_, resumed_model, lazy);
        ASSERT_EQ(info.nextIter, split + 1);

        SyntheticDataset ds(dataConfig());
        StageTimer timer;
        InputQueue q;
        q.push(ds.batch(info.nextIter - 1));
        for (std::uint64_t it = info.nextIter; it <= total_iters; ++it) {
            const bool has_next = it < total_iters;
            if (has_next)
                q.push(ds.batch(it));
            lazy.step(it, q.head(), has_next ? &q.tail() : nullptr,
                      ExecContext::serial(), timer);
            q.pop();
        }
        lazy.finalize(total_iters, ExecContext::serial(), timer);
    }

    for (std::size_t t = 0; t < ref_model.tables().size(); ++t) {
        const Tensor &wr = ref_model.tables()[t].weights();
        const Tensor &ws = resumed_model.tables()[t].weights();
        for (std::size_t i = 0; i < wr.size(); ++i)
            EXPECT_NEAR(wr.data()[i], ws.data()[i], 1e-6)
                << "table " << t << " elem " << i;
    }
}

/**
 * The hardened resume property: checkpoint at iteration k under the
 * PIPELINED schedule with REPLICATED lot-sharded apply, resume, train
 * to n -- bit-identical to an uninterrupted n-iteration run. Before
 * this test, checkpoint coverage never exercised the pipelined path;
 * keyed noise + the persisted HistoryTable make the equality exact, so
 * memcmp, not tolerance.
 */
TEST_F(CheckpointTest, PipelinedReplicatedResumeIsBitIdentical)
{
    const std::uint64_t total_iters = 12;
    const std::uint64_t split = 5;

    ThreadPool pool(4);
    ExecContext exec(&pool);
    TrainOptions schedule;
    schedule.pipeline = true;
    schedule.replicas = 2;

    // Reference: straight-through pipelined+replicated run.
    DlrmModel ref_model(modelConfig(), 3);
    {
        SyntheticDataset ds(dataConfig());
        SequentialLoader loader(ds);
        LazyDpAlgorithm lazy(ref_model, hyper(), /*use_ans=*/true);
        Trainer(lazy, loader, &exec).run(total_iters, schedule);
    }

    // Interrupted run: `split` iterations WITHOUT finalize (the pending
    // noise must stay pending across the checkpoint), save, reload into
    // fresh objects, continue from startIter = split, finalize once.
    DlrmModel part_model(modelConfig(), 3);
    {
        SyntheticDataset ds(dataConfig());
        SequentialLoader loader(ds);
        LazyDpAlgorithm lazy(part_model, hyper(), true);
        TrainOptions first_leg = schedule;
        first_leg.runFinalize = false;
        // The uninterrupted run's iteration `split` sees batch split+1
        // as lookahead (and renews its HistoryTable rows); the
        // interrupted leg must too, or the deferred-noise keys diverge.
        first_leg.previewFinal = true;
        Trainer(lazy, loader, &exec).run(split, first_leg);
        io::saveTraining(path_, part_model, lazy, split + 1);
    }

    DlrmModel resumed_model(modelConfig(), 3);
    {
        LazyDpAlgorithm lazy(resumed_model, hyper(), true);
        const io::ResumeInfo info =
            io::loadTraining(path_, resumed_model, lazy);
        ASSERT_EQ(info.nextIter, split + 1);

        SyntheticDataset ds(dataConfig());
        SequentialLoader loader(ds);
        // The deterministic loader regenerates the first `split`
        // batches the interrupted run consumed; skip them.
        for (std::uint64_t i = 0; i < split; ++i)
            loader.next();
        TrainOptions second_leg = schedule;
        second_leg.startIter = split;
        Trainer(lazy, loader, &exec)
            .run(total_iters - split, second_leg);
    }

    for (std::size_t t = 0; t < ref_model.tables().size(); ++t) {
        const Tensor &wr = ref_model.tables()[t].weights();
        const Tensor &ws = resumed_model.tables()[t].weights();
        ASSERT_EQ(wr.size(), ws.size());
        EXPECT_EQ(std::memcmp(wr.data(), ws.data(),
                              wr.size() * sizeof(float)),
                  0)
            << "table " << t;
    }
    auto check_mlp = [&](const Mlp &ma, const Mlp &mb) {
        for (std::size_t l = 0; l < ma.layers().size(); ++l) {
            EXPECT_EQ(std::memcmp(ma.layers()[l].weight().data(),
                                  mb.layers()[l].weight().data(),
                                  ma.layers()[l].weight().size() *
                                      sizeof(float)),
                      0)
                << "mlp layer " << l;
        }
    };
    check_mlp(ref_model.bottomMlp(), resumed_model.bottomMlp());
    check_mlp(ref_model.topMlp(), resumed_model.topMlp());
}

/** Same property for the ANS-free variant at 4 replicas, serial
 *  schedule -- the other corner of the resume matrix. */
TEST_F(CheckpointTest, ReplicatedNoAnsResumeIsBitIdentical)
{
    const std::uint64_t total_iters = 10;
    const std::uint64_t split = 4;

    ThreadPool pool(2);
    ExecContext exec(&pool);
    TrainOptions schedule;
    schedule.replicas = 4;

    DlrmModel ref_model(modelConfig(), 3);
    {
        SyntheticDataset ds(dataConfig());
        SequentialLoader loader(ds);
        LazyDpAlgorithm lazy(ref_model, hyper(), /*use_ans=*/false);
        Trainer(lazy, loader, &exec).run(total_iters, schedule);
    }

    DlrmModel resumed_model(modelConfig(), 3);
    {
        SyntheticDataset ds(dataConfig());
        SequentialLoader loader(ds);
        LazyDpAlgorithm lazy(resumed_model, hyper(), false);
        TrainOptions first_leg = schedule;
        first_leg.runFinalize = false;
        first_leg.previewFinal = true; // lookahead parity at the split
        Trainer(lazy, loader, &exec).run(split, first_leg);
        io::saveTraining(path_, resumed_model, lazy, split + 1);
    }
    {
        LazyDpAlgorithm lazy(resumed_model, hyper(), false);
        io::loadTraining(path_, resumed_model, lazy);
        SyntheticDataset ds(dataConfig());
        SequentialLoader loader(ds);
        for (std::uint64_t i = 0; i < split; ++i)
            loader.next();
        TrainOptions second_leg = schedule;
        second_leg.startIter = split;
        Trainer(lazy, loader, &exec)
            .run(total_iters - split, second_leg);
    }

    for (std::size_t t = 0; t < ref_model.tables().size(); ++t) {
        const Tensor &wr = ref_model.tables()[t].weights();
        const Tensor &ws = resumed_model.tables()[t].weights();
        EXPECT_EQ(std::memcmp(wr.data(), ws.data(),
                              wr.size() * sizeof(float)),
                  0)
            << "table " << t;
    }
}

TEST_F(CheckpointTest, SeedMismatchOnResumeIsFatal)
{
    setLogThrowMode(true);
    DlrmModel a(modelConfig(), 3);
    LazyDpAlgorithm lazy_a(a, hyper(), true);
    io::saveTraining(path_, a, lazy_a, 4);

    DlrmModel b(modelConfig(), 3);
    TrainHyper other = hyper();
    other.noiseSeed = 0xBAD;
    LazyDpAlgorithm lazy_b(b, other, true);
    EXPECT_THROW(io::loadTraining(path_, b, lazy_b),
                 std::runtime_error);
    setLogThrowMode(false);
}

TEST_F(CheckpointTest, HistoryTableSurvivesRoundTrip)
{
    DlrmModel a(modelConfig(), 3);
    LazyDpAlgorithm lazy_a(a, hyper(), true);
    lazy_a.historyTableMutable().renew(0, 5, 17);
    lazy_a.historyTableMutable().renew(1, 2, 9);
    io::saveTraining(path_, a, lazy_a, 20);

    DlrmModel b(modelConfig(), 3);
    LazyDpAlgorithm lazy_b(b, hyper(), true);
    io::loadTraining(path_, b, lazy_b);
    EXPECT_EQ(lazy_b.historyTable().lastNoised(0, 5), 17u);
    EXPECT_EQ(lazy_b.historyTable().lastNoised(1, 2), 9u);
    EXPECT_EQ(lazy_b.historyTable().lastNoised(0, 0), 0u);
}

} // namespace
} // namespace lazydp
