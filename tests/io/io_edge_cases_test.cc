/**
 * @file
 * io/serialize + checkpoint edge cases: empty arrays/tensors, truncated
 * files, version-mismatch headers, and the cross-kernel resume story
 * (train under kernels=avx2, resume under kernels=scalar) that the
 * kernel registry's determinism contract promises stays within
 * tolerance.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "data/synthetic_dataset.h"
#include "io/checkpoint.h"
#include "io/serialize.h"
#include "kernels/kernel_registry.h"
#include "train/trainer.h"

namespace lazydp {
namespace {

// ------------------------------------------------------- serialize edges

TEST(SerializeEdgeTest, EmptyArraysRoundTrip)
{
    // Zero-length spans over valid storage (empty-tensor payloads).
    float f_dummy[1] = {};
    std::uint32_t u32_dummy[1] = {};
    std::uint64_t u64_dummy[1] = {};

    std::stringstream ss;
    io::BinaryWriter w(ss);
    w.writeF32Array({f_dummy, 0});
    w.writeU32Array({u32_dummy, 0});
    w.writeU64Array({u64_dummy, 0});
    w.writeString("");
    w.writeU32(0xE0F);

    io::BinaryReader r(ss);
    r.readF32Array({f_dummy, 0});
    r.readU32Array({u32_dummy, 0});
    EXPECT_EQ(r.readLength(), 0u); // the U64 array's length prefix
    EXPECT_EQ(r.readString(), "");
    // Stream position must be exact after the zero-length payloads.
    EXPECT_EQ(r.readU32(), 0xE0Fu);
}

TEST(SerializeEdgeTest, EmptyTensorPayloadKeepsFramingAligned)
{
    // An empty array between two sentinels: a reader that mishandles
    // the zero-length payload would desynchronize and corrupt the
    // trailing value.
    std::stringstream ss;
    io::BinaryWriter w(ss);
    w.writeU64(0xAAAAAAAAAAAAAAAAull);
    const std::vector<float> empty;
    w.writeF32Array({empty.data(), empty.size()});
    w.writeU64(0xBBBBBBBBBBBBBBBBull);

    io::BinaryReader r(ss);
    EXPECT_EQ(r.readU64(), 0xAAAAAAAAAAAAAAAAull);
    std::vector<float> out;
    r.readF32Array({out.data(), out.size()});
    EXPECT_EQ(r.readU64(), 0xBBBBBBBBBBBBBBBBull);
}

TEST(SerializeEdgeTest, LengthPrefixMismatchOnEmptyExpectation)
{
    setLogThrowMode(true);
    std::stringstream ss;
    io::BinaryWriter w(ss);
    const float f[] = {1.0f};
    w.writeF32Array({f, 1});
    io::BinaryReader r(ss);
    // Expecting empty but the stream holds one element: must fail, not
    // silently skip.
    float dummy[1] = {};
    EXPECT_THROW(r.readF32Array({dummy, 0}), std::runtime_error);
    setLogThrowMode(false);
}

TEST(SerializeEdgeTest, OversizedStringLengthIsRejected)
{
    setLogThrowMode(true);
    std::stringstream ss;
    io::BinaryWriter w(ss);
    w.writeU64(std::uint64_t{1} << 40); // absurd length prefix
    io::BinaryReader r(ss);
    EXPECT_THROW(r.readString(), std::runtime_error);
    setLogThrowMode(false);
}

// ------------------------------------------------------ checkpoint edges

class CheckpointEdgeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "lazydp_edge_ckpt_" +
                std::to_string(::getpid()) + ".bin";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    static ModelConfig
    modelConfig()
    {
        auto mc = ModelConfig::tiny();
        mc.rowsPerTable = 64;
        return mc;
    }

    static DatasetConfig
    dataConfig()
    {
        const auto mc = modelConfig();
        DatasetConfig dc;
        dc.numDense = mc.numDense;
        dc.numTables = mc.numTables;
        dc.rowsPerTable = mc.rowsPerTable;
        dc.pooling = mc.pooling;
        dc.batchSize = 8;
        dc.seed = 99;
        return dc;
    }

    static TrainHyper
    hyper()
    {
        TrainHyper h;
        h.noiseSeed = 0xED6E;
        return h;
    }

    std::string path_;
};

TEST_F(CheckpointEdgeTest, TruncatedFileIsRejected)
{
    setLogThrowMode(true);
    DlrmModel a(modelConfig(), 3);
    io::saveModel(path_, a);

    // Truncate to 60% of its size: header parses, a weight array read
    // must hit the short-read guard.
    std::ifstream in(path_, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GT(bytes.size(), 16u);
    {
        std::ofstream out(path_, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size() * 3 / 5));
    }
    DlrmModel b(modelConfig(), 3);
    EXPECT_THROW(io::loadModel(path_, b), std::runtime_error);

    // Degenerate truncation: empty file.
    {
        std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    }
    EXPECT_THROW(io::loadModel(path_, b), std::runtime_error);
    setLogThrowMode(false);
}

TEST_F(CheckpointEdgeTest, VersionMismatchHeaderIsRejected)
{
    setLogThrowMode(true);
    // Correct magic, future version: must be refused up front rather
    // than misparsed.
    {
        std::ofstream os(path_, std::ios::binary | std::ios::trunc);
        io::BinaryWriter w(os);
        w.writeU32(0x4C445031); // "LDP1" model magic (checkpoint.cc)
        w.writeU32(999);        // unsupported version
        w.writeString("tiny");
    }
    DlrmModel b(modelConfig(), 3);
    EXPECT_THROW(io::loadModel(path_, b), std::runtime_error);

    // Same for the training-state format.
    {
        std::ofstream os(path_, std::ios::binary | std::ios::trunc);
        io::BinaryWriter w(os);
        w.writeU32(0x4C445432); // "LDT2" training magic
        w.writeU32(999);
    }
    LazyDpAlgorithm lazy(b, hyper(), true);
    EXPECT_THROW(io::loadTraining(path_, b, lazy), std::runtime_error);
    setLogThrowMode(false);
}

/**
 * Cross-kernel resume: a training run checkpointed under the AVX2
 * backend and resumed under the scalar backend must land within the
 * cross-backend tolerance of an all-scalar run. Per the registry's
 * determinism contract the two backends agree to a few ULP per
 * operation (Box-Muller to ~1e-5 per sample), so a short run stays
 * within a loose aggregate bound — while the checkpointed WEIGHTS
 * round-trip bit-exactly.
 */
TEST_F(CheckpointEdgeTest, Avx2CheckpointResumesIntoScalarWithinTolerance)
{
    if (!kernelBackendAvailable(KernelBackend::Avx2))
        GTEST_SKIP() << "AVX2 backend unavailable on this host/build";

    const KernelBackend before = activeKernelBackend();
    const std::uint64_t total_iters = 10;
    const std::uint64_t split = 4;

    // Reference: all-scalar straight-through run.
    setKernelBackend(KernelBackend::Scalar);
    DlrmModel ref_model(modelConfig(), 5);
    {
        SyntheticDataset ds(dataConfig());
        SequentialLoader loader(ds);
        LazyDpAlgorithm lazy(ref_model, hyper(), /*use_ans=*/false);
        Trainer(lazy, loader).run(total_iters);
    }

    // Phase 1 under AVX2, checkpoint at `split` (no finalize).
    setKernelBackend(KernelBackend::Avx2);
    DlrmModel part_model(modelConfig(), 5);
    {
        SyntheticDataset ds(dataConfig());
        SequentialLoader loader(ds);
        LazyDpAlgorithm lazy(part_model, hyper(), false);
        StageTimer timer;
        InputQueue q;
        q.push(loader.next());
        for (std::uint64_t it = 1; it <= split; ++it) {
            q.push(loader.next());
            lazy.step(it, q.head(), &q.tail(), ExecContext::serial(),
                      timer);
            q.pop();
        }
        io::saveTraining(path_, part_model, lazy, split + 1);
    }

    // Phase 2 under scalar, resumed from the AVX2 checkpoint.
    setKernelBackend(KernelBackend::Scalar);
    DlrmModel resumed_model(modelConfig(), 5);
    {
        LazyDpAlgorithm lazy(resumed_model, hyper(), false);
        const io::ResumeInfo info =
            io::loadTraining(path_, resumed_model, lazy);
        ASSERT_EQ(info.nextIter, split + 1);

        // The weights themselves round-trip bit-exactly regardless of
        // which backend produced them.
        for (std::size_t t = 0; t < part_model.tables().size(); ++t) {
            const Tensor &wp = part_model.tables()[t].weights();
            const Tensor &wr = resumed_model.tables()[t].weights();
            for (std::size_t i = 0; i < wp.size(); ++i)
                ASSERT_EQ(wp.data()[i], wr.data()[i])
                    << "weight round-trip t=" << t << " i=" << i;
        }

        SyntheticDataset ds(dataConfig());
        StageTimer timer;
        InputQueue q;
        q.push(ds.batch(info.nextIter - 1));
        for (std::uint64_t it = info.nextIter; it <= total_iters; ++it) {
            const bool has_next = it < total_iters;
            if (has_next)
                q.push(ds.batch(it));
            lazy.step(it, q.head(), has_next ? &q.tail() : nullptr,
                      ExecContext::serial(), timer);
            q.pop();
        }
        lazy.finalize(total_iters, ExecContext::serial(), timer);
    }
    setKernelBackend(before);

    double max_diff = 0.0;
    for (std::size_t t = 0; t < ref_model.tables().size(); ++t) {
        const Tensor &wr = ref_model.tables()[t].weights();
        const Tensor &ws = resumed_model.tables()[t].weights();
        for (std::size_t i = 0; i < wr.size(); ++i) {
            max_diff = std::max(
                max_diff, std::abs(static_cast<double>(wr.data()[i]) -
                                   static_cast<double>(ws.data()[i])));
        }
    }
    // Cross-backend drift over `split` AVX2 iterations: dominated by
    // the Box-Muller |diff| <~ 1e-5 per sample times lr-scale, far
    // below this bound; a dispatch or resume bug lands orders of
    // magnitude above it.
    EXPECT_LT(max_diff, 1e-3);
    // max_diff == 0 is legitimate: under -march=native the compiler
    // FMA-contracts the scalar TU, making it bit-identical to the
    // AVX2 backend on FMA hosts -- so zero drift does NOT imply the
    // AVX2 leg failed to dispatch. Dispatch itself is pinned by the
    // registry tests; here we only bound the drift.
}

} // namespace
} // namespace lazydp
