/** @file Unit tests for the CLI flag parser. */

#include <gtest/gtest.h>

#include "common/cli.h"
#include "common/logging.h"

namespace lazydp {
namespace {

const std::vector<std::string> kKnown = {"algo", "iters", "sigma",
                                         "verbose", "csv"};

CliArgs
parse(std::initializer_list<const char *> argv_tail)
{
    std::vector<const char *> argv = {"prog"};
    argv.insert(argv.end(), argv_tail);
    return CliArgs(static_cast<int>(argv.size()), argv.data(), kKnown);
}

TEST(CliTest, EqualsForm)
{
    const auto args = parse({"--algo=lazydp", "--iters=42"});
    EXPECT_EQ(args.getString("algo", "x"), "lazydp");
    EXPECT_EQ(args.getU64("iters", 0), 42u);
}

TEST(CliTest, SpaceForm)
{
    const auto args = parse({"--algo", "sgd", "--sigma", "1.5"});
    EXPECT_EQ(args.getString("algo", "x"), "sgd");
    EXPECT_DOUBLE_EQ(args.getDouble("sigma", 0.0), 1.5);
}

TEST(CliTest, DefaultsWhenAbsent)
{
    const auto args = parse({});
    EXPECT_EQ(args.getString("algo", "default"), "default");
    EXPECT_EQ(args.getU64("iters", 7), 7u);
    EXPECT_FALSE(args.has("sigma"));
}

TEST(CliTest, BooleanForms)
{
    EXPECT_TRUE(parse({"--verbose"}).getBool("verbose", false));
    EXPECT_TRUE(parse({"--verbose=true"}).getBool("verbose", false));
    EXPECT_TRUE(parse({"--verbose=1"}).getBool("verbose", false));
    EXPECT_FALSE(parse({"--verbose=false"}).getBool("verbose", true));
    EXPECT_FALSE(parse({"--verbose=0"}).getBool("verbose", true));
    EXPECT_TRUE(parse({}).getBool("verbose", true));
}

TEST(CliTest, GarbageBooleanIsFatal)
{
    setLogThrowMode(true);
    EXPECT_THROW(parse({"--verbose=maybe"}).getBool("verbose", false),
                 std::runtime_error);
    setLogThrowMode(false);
}

TEST(CliTest, UnknownFlagIsFatal)
{
    setLogThrowMode(true);
    EXPECT_THROW(parse({"--tyop=1"}), std::runtime_error);
    setLogThrowMode(false);
}

const std::vector<FlagSpec> kSpecs = {
    {"algo", "training engine name"},
    {"iters", "iteration count"},
    {"max-delay-us", "batching deadline in microseconds"},
};

CliArgs
parseSpecs(std::initializer_list<const char *> argv_tail)
{
    std::vector<const char *> argv = {"prog"};
    argv.insert(argv.end(), argv_tail);
    return CliArgs(static_cast<int>(argv.size()), argv.data(), kSpecs);
}

TEST(CliTest, SpecCtorParsesAndRejectsUnknownFlags)
{
    const auto args = parseSpecs({"--algo=lazydp", "--iters", "3"});
    EXPECT_EQ(args.getString("algo", ""), "lazydp");
    EXPECT_EQ(args.getU64("iters", 0), 3u);

    setLogThrowMode(true);
    EXPECT_THROW(parseSpecs({"--tyop=1"}), std::runtime_error);
    // The error names the accepted flags so the user sees the typo.
    try {
        parseSpecs({"--algoo=x"});
        FAIL() << "unknown flag was accepted";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("--algo"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("--max-delay-us"),
                  std::string::npos);
    }
    setLogThrowMode(false);
}

TEST(CliTest, TierFlagsAppendAndStayUnknownElsewhere)
{
    // withTierFlags appends the shared out-of-core triplet...
    const std::vector<FlagSpec> specs = withTierFlags(kSpecs);
    std::vector<const char *> argv = {"prog", "--hot-mb=32",
                                      "--cold-path=/tmp/x",
                                      "--prefetch=off"};
    const CliArgs args(static_cast<int>(argv.size()), argv.data(),
                       specs);
    EXPECT_EQ(args.getU64("hot-mb", 0), 32u);
    EXPECT_EQ(args.getString("cold-path", ""), "/tmp/x");
    EXPECT_FALSE(args.getBool("prefetch", true));
    const std::string help = args.helpText("prog", "x");
    EXPECT_NE(help.find("--hot-mb"), std::string::npos);
    EXPECT_NE(help.find("--cold-path"), std::string::npos);
    EXPECT_NE(help.find("--prefetch"), std::string::npos);

    // ...and a tool that did NOT opt in still rejects them (unknown
    // flags must stay fatal, tier flags included).
    setLogThrowMode(true);
    EXPECT_THROW(parseSpecs({"--hot-mb=32"}), std::runtime_error);
    EXPECT_THROW(parseSpecs({"--cold-path=/tmp/x"}),
                 std::runtime_error);
    EXPECT_THROW(parseSpecs({"--prefetch=off"}), std::runtime_error);
    setLogThrowMode(false);
}

TEST(CliTest, GeneratedHelpListsEveryFlagWithItsDescription)
{
    const auto args = parseSpecs({});
    const std::string help =
        args.helpText("prog", "does prog things");
    EXPECT_NE(help.find("usage: prog"), std::string::npos);
    EXPECT_NE(help.find("does prog things"), std::string::npos);
    for (const auto &spec : kSpecs) {
        EXPECT_NE(help.find("--" + spec.name), std::string::npos)
            << spec.name;
        EXPECT_NE(help.find(spec.help), std::string::npos)
            << spec.name;
    }
    // Declaration order is preserved (algo before max-delay-us).
    EXPECT_LT(help.find("--algo"), help.find("--max-delay-us"));
}

TEST(CliTest, PositionalArgsCollected)
{
    const auto args = parse({"file1.txt", "--algo=sgd", "file2.txt"});
    ASSERT_EQ(args.positional().size(), 2u);
    EXPECT_EQ(args.positional()[0], "file1.txt");
    EXPECT_EQ(args.positional()[1], "file2.txt");
}

TEST(CliTest, MalformedNumberIsFatal)
{
    setLogThrowMode(true);
    const auto args = parse({"--iters=abc"});
    EXPECT_THROW(args.getU64("iters", 0), std::runtime_error);
    setLogThrowMode(false);
}

TEST(CliTest, BoolFlagBeforeAnotherFlagTakesNoValue)
{
    const auto args = parse({"--csv", "--algo=sgd"});
    EXPECT_TRUE(args.getBool("csv", false));
    EXPECT_EQ(args.getString("algo", ""), "sgd");
}

} // namespace
} // namespace lazydp
