/** @file Unit tests for WallTimer / StageTimer. */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/logging.h"
#include "common/timer.h"

namespace lazydp {
namespace {

TEST(WallTimerTest, MeasuresElapsedTime)
{
    WallTimer t;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const double s = t.seconds();
    EXPECT_GE(s, 0.015);
    EXPECT_LT(s, 1.0);
}

TEST(WallTimerTest, ResetRestartsClock)
{
    WallTimer t;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    t.reset();
    EXPECT_LT(t.seconds(), 0.015);
}

TEST(WallTimerTest, NanosecondsConsistentWithSeconds)
{
    WallTimer t;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const double s = t.seconds();
    const double ns = static_cast<double>(t.nanoseconds());
    EXPECT_NEAR(ns / 1e9, s, 0.05);
}

TEST(StageTimerTest, AccumulatesPerStage)
{
    StageTimer timer;
    timer.start(Stage::Forward);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    timer.stop();
    timer.start(Stage::NoiseSampling);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    timer.stop();

    EXPECT_GT(timer.seconds(Stage::Forward), 0.008);
    EXPECT_GT(timer.seconds(Stage::NoiseSampling), 0.003);
    EXPECT_DOUBLE_EQ(timer.seconds(Stage::Else), 0.0);
    EXPECT_NEAR(timer.totalSeconds(),
                timer.seconds(Stage::Forward) +
                    timer.seconds(Stage::NoiseSampling),
                1e-12);
}

TEST(StageTimerTest, AddInjectsModeledTime)
{
    StageTimer timer;
    timer.add(Stage::NoisyGradUpdate, 1.5);
    timer.add(Stage::NoisyGradUpdate, 0.5);
    EXPECT_DOUBLE_EQ(timer.seconds(Stage::NoisyGradUpdate), 2.0);
}

TEST(StageTimerTest, ResetClearsAll)
{
    StageTimer timer;
    timer.add(Stage::Forward, 1.0);
    timer.reset();
    EXPECT_DOUBLE_EQ(timer.totalSeconds(), 0.0);
}

TEST(StageTimerTest, MergeSumsBreakdowns)
{
    StageTimer a;
    StageTimer b;
    a.add(Stage::Forward, 1.0);
    b.add(Stage::Forward, 2.0);
    b.add(Stage::Else, 3.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.seconds(Stage::Forward), 3.0);
    EXPECT_DOUBLE_EQ(a.seconds(Stage::Else), 3.0);
}

TEST(StageTimerTest, NestedStartPanics)
{
    setLogThrowMode(true);
    StageTimer timer;
    timer.start(Stage::Forward);
    EXPECT_THROW(timer.start(Stage::Else), std::runtime_error);
    setLogThrowMode(false);
}

TEST(StageTimerTest, StopWithoutStartPanics)
{
    setLogThrowMode(true);
    StageTimer timer;
    EXPECT_THROW(timer.stop(), std::runtime_error);
    setLogThrowMode(false);
}

TEST(StageTimerTest, BreakdownNamesAllStages)
{
    StageTimer timer;
    const auto breakdown = timer.breakdown();
    EXPECT_EQ(breakdown.size(),
              static_cast<std::size_t>(Stage::NumStages));
    EXPECT_TRUE(breakdown.count("Fwd"));
    EXPECT_TRUE(breakdown.count("Noise sampling"));
    EXPECT_TRUE(breakdown.count("Noisy gradient update"));
    EXPECT_TRUE(breakdown.count("LazyDP overhead"));
}

TEST(StageTimerTest, ScopedStageTimesRegion)
{
    StageTimer timer;
    {
        ScopedStage guard(timer, Stage::GradCoalesce);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_GT(timer.seconds(Stage::GradCoalesce), 0.003);
}

} // namespace
} // namespace lazydp
