/** @file Unit tests for TablePrinter. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.h"
#include "common/table_printer.h"

namespace lazydp {
namespace {

TEST(TablePrinterTest, RendersHeaderAndRows)
{
    TablePrinter tp("Demo");
    tp.setHeader({"algo", "time"});
    tp.addRow({"SGD", "1.00"});
    tp.addRow({"LazyDP", "2.20"});
    std::ostringstream os;
    tp.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("Demo"), std::string::npos);
    EXPECT_NE(out.find("algo"), std::string::npos);
    EXPECT_NE(out.find("LazyDP"), std::string::npos);
    EXPECT_EQ(tp.rows(), 2u);
}

TEST(TablePrinterTest, CsvOutputIsCommaSeparated)
{
    TablePrinter tp("X");
    tp.setHeader({"a", "b"});
    tp.addRow({"1", "2"});
    std::ostringstream os;
    tp.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, RowWidthMismatchPanics)
{
    setLogThrowMode(true);
    TablePrinter tp("X");
    tp.setHeader({"a", "b"});
    EXPECT_THROW(tp.addRow({"only-one"}), std::runtime_error);
    setLogThrowMode(false);
}

TEST(TablePrinterTest, NumFormatsPrecision)
{
    EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
    EXPECT_EQ(TablePrinter::num(119.0, 1), "119.0");
}

TEST(TablePrinterTest, ColumnsAlignToWidestCell)
{
    TablePrinter tp("X");
    tp.setHeader({"h", "i"});
    tp.addRow({"a-very-long-cell", "x"});
    std::ostringstream os;
    tp.print(os);
    // Header row must be padded at least as wide as the longest cell.
    const std::string out = os.str();
    const auto header_pos = out.find("h ");
    ASSERT_NE(header_pos, std::string::npos);
    const auto newline = out.find('\n', header_pos);
    EXPECT_GE(newline - header_pos,
              std::string("a-very-long-cell").size());
}

} // namespace
} // namespace lazydp
