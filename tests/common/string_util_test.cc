/** @file Unit tests for string helpers. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/string_util.h"

namespace lazydp {
namespace {

TEST(HumanBytesTest, ScalesUnits)
{
    EXPECT_EQ(humanBytes(512), "512.0 B");
    EXPECT_EQ(humanBytes(96ull * 1000 * 1000 * 1000), "96.0 GB");
    EXPECT_EQ(humanBytes(213 * 1000), "213.0 KB");
}

TEST(HumanSecondsTest, ScalesUnits)
{
    EXPECT_EQ(humanSeconds(2.5e-9), "2.5 ns");
    EXPECT_EQ(humanSeconds(3.2e-6), "3.2 us");
    EXPECT_EQ(humanSeconds(0.015), "15.0 ms");
    EXPECT_EQ(humanSeconds(2.0), "2.00 s");
}

TEST(SplitTest, SplitsAndDropsEmpty)
{
    const auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, EmptyStringYieldsNothing)
{
    EXPECT_TRUE(split("", ':').empty());
}

TEST(ParseU64Test, ParsesValidIntegers)
{
    EXPECT_EQ(parseU64("0"), 0u);
    EXPECT_EQ(parseU64("123456789"), 123456789u);
}

TEST(ParseU64Test, RejectsGarbage)
{
    setLogThrowMode(true);
    EXPECT_THROW(parseU64("12abc"), std::runtime_error);
    EXPECT_THROW(parseU64("abc"), std::runtime_error);
    setLogThrowMode(false);
}

TEST(ParseDoubleTest, ParsesAndRejects)
{
    EXPECT_DOUBLE_EQ(parseDouble("3.5"), 3.5);
    EXPECT_DOUBLE_EQ(parseDouble("-1e3"), -1000.0);
    setLogThrowMode(true);
    EXPECT_THROW(parseDouble("1.2.3"), std::runtime_error);
    setLogThrowMode(false);
}

} // namespace
} // namespace lazydp
