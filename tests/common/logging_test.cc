/** @file Unit tests for the logging/error-reporting facility. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/logging.h"
#include "common/macros.h"

namespace lazydp {
namespace {

class LoggingTest : public ::testing::Test
{
  protected:
    void SetUp() override { setLogThrowMode(true); }
    void TearDown() override { setLogThrowMode(false); }
};

TEST_F(LoggingTest, PanicThrowsInThrowMode)
{
    EXPECT_THROW(panic("boom"), std::runtime_error);
}

TEST_F(LoggingTest, FatalThrowsInThrowMode)
{
    EXPECT_THROW(fatal("bad config"), std::runtime_error);
}

TEST_F(LoggingTest, PanicMessageContainsArguments)
{
    try {
        panic("value was ", 42, " not ", 7);
        FAIL() << "panic returned";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("value was 42 not 7"),
                  std::string::npos);
    }
}

TEST_F(LoggingTest, AssertPassesOnTrueCondition)
{
    EXPECT_NO_THROW(LAZYDP_ASSERT(1 + 1 == 2, "math works"));
}

TEST_F(LoggingTest, AssertThrowsOnFalseCondition)
{
    EXPECT_THROW(LAZYDP_ASSERT(1 + 1 == 3, "math broke"),
                 std::runtime_error);
}

TEST_F(LoggingTest, AssertMessageNamesCondition)
{
    try {
        int x = 5;
        LAZYDP_ASSERT(x < 0, "x must be negative, got ", x);
        FAIL() << "assert passed";
    } catch (const std::runtime_error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("x < 0"), std::string::npos);
        EXPECT_NE(msg.find("got 5"), std::string::npos);
    }
}

TEST_F(LoggingTest, WarnAndInformDoNotThrow)
{
    EXPECT_NO_THROW(warn("just a warning ", 1));
    EXPECT_NO_THROW(inform("status ", 2));
}

TEST_F(LoggingTest, ThrowModeQueryReflectsState)
{
    EXPECT_TRUE(logThrowMode());
    setLogThrowMode(false);
    EXPECT_FALSE(logThrowMode());
    setLogThrowMode(true);
}

/** Severity-threshold tests; restores the chatty default on exit. */
class LogLevelTest : public LoggingTest
{
  protected:
    void TearDown() override
    {
        setLogLevel(LogLevel::Inform);
        LoggingTest::TearDown();
    }
};

TEST_F(LogLevelTest, ParseAcceptsCanonicalNames)
{
    EXPECT_EQ(parseLogLevel("inform"), LogLevel::Inform);
    EXPECT_EQ(parseLogLevel("info"), LogLevel::Inform);
    EXPECT_EQ(parseLogLevel("warn"), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("error"), LogLevel::Error);
    EXPECT_THROW(parseLogLevel("loud"), std::runtime_error);
}

TEST_F(LogLevelTest, SetLevelRoundTrips)
{
    setLogLevel(LogLevel::Error);
    EXPECT_EQ(logLevel(), LogLevel::Error);
    setLogLevel(LogLevel::Inform);
    EXPECT_EQ(logLevel(), LogLevel::Inform);
}

TEST_F(LogLevelTest, WarnThresholdSuppressesInform)
{
    setLogLevel(LogLevel::Warn);
    ::testing::internal::CaptureStdout();
    inform("should be suppressed");
    EXPECT_TRUE(::testing::internal::GetCapturedStdout().empty());

    setLogLevel(LogLevel::Inform);
    ::testing::internal::CaptureStdout();
    inform("should appear");
    const std::string out = ::testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("info: should appear"), std::string::npos);
}

TEST_F(LogLevelTest, ErrorThresholdSuppressesWarn)
{
    setLogLevel(LogLevel::Error);
    ::testing::internal::CaptureStderr();
    warn("should be suppressed");
    EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());

    setLogLevel(LogLevel::Warn);
    ::testing::internal::CaptureStderr();
    warn("should appear");
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("warn: should appear"), std::string::npos);
}

TEST_F(LogLevelTest, PanicIgnoresThreshold)
{
    setLogLevel(LogLevel::Error);
    // Throw mode is on (fixture): the message still carries through.
    EXPECT_THROW(panic("invariant broke"), std::runtime_error);
}

} // namespace
} // namespace lazydp
