/**
 * @file Thread pool + ExecContext: shard boundary math, loop coverage
 * at several widths, determinism of sharded reductions, and the
 * nested-dispatch flattening guarantee.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace lazydp {
namespace {

TEST(ShardMathTest, ShardCount)
{
    EXPECT_EQ(shardCount(0, 16), 0u);
    EXPECT_EQ(shardCount(1, 16), 1u);
    EXPECT_EQ(shardCount(16, 16), 1u);
    EXPECT_EQ(shardCount(17, 16), 2u);
    EXPECT_EQ(shardCount(32, 16), 2u);
    EXPECT_EQ(shardCount(33, 16), 3u);
    // grain 0 is treated as 1
    EXPECT_EQ(shardCount(5, 0), 5u);
}

TEST(ShardMathTest, GrainBoundsCoverDisjointly)
{
    for (const std::size_t n : {1u, 7u, 16u, 17u, 100u, 1000u}) {
        for (const std::size_t grain : {1u, 3u, 16u, 64u, 2048u}) {
            const std::size_t shards = shardCount(n, grain);
            std::size_t expected_lo = 0;
            for (std::size_t s = 0; s < shards; ++s) {
                const auto [lo, hi] = grainBounds(n, grain, s);
                EXPECT_EQ(lo, expected_lo) << n << "/" << grain;
                EXPECT_GT(hi, lo);
                EXPECT_LE(hi - lo, grain);
                // grain alignment: every shard but the last is exactly
                // `grain` long and starts at a multiple of it
                EXPECT_EQ(lo % grain, 0u);
                if (s + 1 < shards)
                    EXPECT_EQ(hi - lo, grain);
                expected_lo = hi;
            }
            EXPECT_EQ(expected_lo, n);
        }
    }
}

TEST(ShardMathTest, BalancedChunkBoundsCoverDisjointly)
{
    for (const std::size_t n : {1u, 7u, 16u, 100u}) {
        for (const std::size_t chunks : {1u, 2u, 3u, 7u, 16u}) {
            if (chunks > n)
                continue;
            std::size_t expected_lo = 0;
            for (std::size_t c = 0; c < chunks; ++c) {
                const auto [lo, hi] = shardBounds(n, chunks, c);
                EXPECT_EQ(lo, expected_lo);
                // balanced: sizes differ by at most one
                EXPECT_GE(hi - lo, n / chunks);
                EXPECT_LE(hi - lo, n / chunks + 1);
                expected_lo = hi;
            }
            EXPECT_EQ(expected_lo, n);
        }
    }
}

TEST(ThreadPoolTest, WidthOneRunsSerially)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threads(), 1u);
    std::vector<int> hits(10, 0);
    pool.run(10, [&](std::size_t i) { ++hits[i]; });
    for (const int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, EveryTaskRunsExactlyOnce)
{
    for (const std::size_t width : {2u, 4u, 8u}) {
        ThreadPool pool(width);
        EXPECT_EQ(pool.threads(), width);
        std::vector<std::atomic<int>> hits(997);
        pool.run(hits.size(), [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1);
    }
}

TEST(ThreadPoolTest, ReusableAcrossManyDispatches)
{
    ThreadPool pool(4);
    std::atomic<std::size_t> total{0};
    for (int round = 0; round < 100; ++round) {
        pool.run(17, [&](std::size_t) {
            total.fetch_add(1, std::memory_order_relaxed);
        });
    }
    EXPECT_EQ(total.load(), 1700u);
}

TEST(ThreadPoolTest, NestedDispatchFlattensInsteadOfDeadlocking)
{
    ThreadPool pool(4);
    std::atomic<std::size_t> inner{0};
    pool.run(8, [&](std::size_t) {
        // dispatch from inside a task: must run inline, not hang
        pool.run(3, [&](std::size_t) {
            inner.fetch_add(1, std::memory_order_relaxed);
        });
    });
    EXPECT_EQ(inner.load(), 24u);
}

TEST(ThreadPoolTest, TaskExceptionDrainsAndRethrows)
{
    ThreadPool pool(4);
    for (int round = 0; round < 20; ++round) {
        EXPECT_THROW(pool.run(64,
                              [&](std::size_t i) {
                                  if (i == 13)
                                      throw std::runtime_error("boom");
                              }),
                     std::runtime_error);
        // The pool must stay usable (no stuck workers, no leaked
        // in-pool flag degrading later dispatches to serial).
        std::atomic<std::size_t> done{0};
        pool.run(32, [&](std::size_t) {
            done.fetch_add(1, std::memory_order_relaxed);
        });
        EXPECT_EQ(done.load(), 32u);
    }
}

TEST(SubmitTest, TaskRunsAndWaitJoins)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    TaskHandle h = pool.submit([&] { ran.store(1); });
    ASSERT_TRUE(h.valid());
    h.wait();
    EXPECT_EQ(ran.load(), 1);
    // wait() is idempotent
    h.wait();
}

TEST(SubmitTest, DefaultHandleIsInvalid)
{
    TaskHandle h;
    EXPECT_FALSE(h.valid());
}

TEST(SubmitTest, WorksOnWidthOnePool)
{
    // The async lane is independent of the loop-dispatch width: even a
    // width-1 pool can overlap a submitted task with the caller.
    ThreadPool pool(1);
    std::atomic<int> ran{0};
    TaskHandle h = pool.submit([&] { ran.store(7); });
    h.wait();
    EXPECT_EQ(ran.load(), 7);
}

TEST(SubmitTest, TasksExecuteInSubmissionOrder)
{
    ThreadPool pool(2);
    std::vector<int> order;
    std::vector<TaskHandle> handles;
    for (int i = 0; i < 50; ++i)
        handles.push_back(pool.submit([&order, i] {
            order.push_back(i); // single async lane: no race
        }));
    for (auto &h : handles)
        h.wait();
    ASSERT_EQ(order.size(), 50u);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SubmitTest, ExceptionRethrownFromWait)
{
    ThreadPool pool(2);
    TaskHandle h =
        pool.submit([] { throw std::runtime_error("async boom"); });
    EXPECT_THROW(h.wait(), std::runtime_error);
    // The lane must stay usable after a throwing task.
    std::atomic<int> ran{0};
    TaskHandle ok = pool.submit([&] { ran.store(1); });
    ok.wait();
    EXPECT_EQ(ran.load(), 1);
}

TEST(SubmitTest, OverlapsWithMainThreadDispatch)
{
    // The pipeline pattern: a submitted task runs while the caller
    // drives parallelFor dispatches on the same pool.
    ThreadPool pool(4);
    ExecContext exec(&pool);
    std::atomic<int> async_done{0};
    TaskHandle h = pool.submit([&] { async_done.store(1); });
    std::atomic<std::size_t> sum{0};
    for (int round = 0; round < 10; ++round) {
        parallelFor(exec, 100, [&](std::size_t lo, std::size_t hi) {
            sum.fetch_add(hi - lo, std::memory_order_relaxed);
        });
    }
    h.wait();
    EXPECT_EQ(sum.load(), 1000u);
    EXPECT_EQ(async_done.load(), 1);
}

TEST(SubmitTest, NestedPoolDispatchFromTaskFlattens)
{
    // A submitted task that (accidentally) dispatches onto the pool
    // must degenerate to a serial loop instead of racing the main
    // thread's dispatch machinery.
    ThreadPool pool(4);
    ExecContext exec(&pool);
    std::atomic<std::size_t> inner{0};
    TaskHandle h = pool.submit([&] {
        parallelFor(exec, 64, [&](std::size_t lo, std::size_t hi) {
            inner.fetch_add(hi - lo, std::memory_order_relaxed);
        });
    });
    h.wait();
    EXPECT_EQ(inner.load(), 64u);
}

TEST(SubmitTest, DestructorDrainsQueuedTasks)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 20; ++i)
            pool.submit([&] { ran.fetch_add(1); });
        // no wait: destruction must still run every queued task
    }
    EXPECT_EQ(ran.load(), 20);
}

TEST(ParallelForTest, SerialContextAndPoolAgree)
{
    const std::size_t n = 1234;
    std::vector<int> serial_out(n, 0);
    parallelFor(ExecContext::serial(), n,
                [&](std::size_t lo, std::size_t hi) {
                    for (std::size_t i = lo; i < hi; ++i)
                        serial_out[i] = static_cast<int>(i * 3);
                });

    for (const std::size_t width : {2u, 5u, 8u}) {
        ThreadPool pool(width);
        ExecContext exec(&pool);
        std::vector<int> out(n, 0);
        parallelFor(exec, n, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i)
                out[i] = static_cast<int>(i * 3);
        });
        EXPECT_EQ(out, serial_out) << "width " << width;
    }
}

TEST(ParallelForTest, EmptyRangeNeverInvokesBody)
{
    ThreadPool pool(4);
    ExecContext exec(&pool);
    bool called = false;
    parallelFor(exec, 0, [&](std::size_t, std::size_t) { called = true; });
    parallelForShards(exec, 0, 16,
                      [&](std::size_t, std::size_t, std::size_t) {
                          called = true;
                      });
    EXPECT_FALSE(called);
}

TEST(ParallelForShardsTest, ShardIdsMatchBoundsAtAnyWidth)
{
    const std::size_t n = 530;
    const std::size_t grain = 64;
    for (const std::size_t width : {1u, 2u, 8u}) {
        ThreadPool pool(width);
        ExecContext exec(&pool);
        const std::size_t shards = shardCount(n, grain);
        std::vector<std::pair<std::size_t, std::size_t>> seen(
            shards, {~0ull, ~0ull});
        parallelForShards(exec, n, grain,
                          [&](std::size_t s, std::size_t lo,
                              std::size_t hi) { seen[s] = {lo, hi}; });
        for (std::size_t s = 0; s < shards; ++s)
            EXPECT_EQ(seen[s], grainBounds(n, grain, s))
                << "width " << width;
    }
}

TEST(ParallelForShardsTest, OrderedMergeIsDeterministicAcrossWidths)
{
    // Per-shard float accumulation + ordered merge: the canonical
    // pattern callers use for deterministic reductions.
    const std::size_t n = 10007;
    std::vector<float> data(n);
    for (std::size_t i = 0; i < n; ++i)
        data[i] = 0.001f * static_cast<float>(i % 97) - 0.03f;

    auto reduce = [&](ExecContext &exec) {
        const std::size_t shards = shardCount(n, 128);
        std::vector<double> partial(shards, 0.0);
        parallelForShards(exec, n, 128,
                          [&](std::size_t s, std::size_t lo,
                              std::size_t hi) {
                              double acc = 0.0;
                              for (std::size_t i = lo; i < hi; ++i)
                                  acc += data[i];
                              partial[s] = acc;
                          });
        double total = 0.0;
        for (const double p : partial)
            total += p;
        return total;
    };

    const double serial = reduce(ExecContext::serial());
    for (const std::size_t width : {2u, 3u, 8u}) {
        ThreadPool pool(width);
        ExecContext exec(&pool);
        // bit-for-bit: same shard boundaries, same merge order
        EXPECT_EQ(reduce(exec), serial) << "width " << width;
    }
}

TEST(ExecContextTest, SerialContextReportsOneThread)
{
    EXPECT_EQ(ExecContext::serial().threads(), 1u);
    EXPECT_EQ(ExecContext::serial().pool, nullptr);
    ThreadPool pool(6);
    ExecContext exec(&pool);
    EXPECT_EQ(exec.threads(), 6u);
}

TEST(ExecContextTest, ReplicasDefaultToOneAndCopy)
{
    ExecContext a;
    EXPECT_EQ(a.replicas, 1u);
    a.replicas = 4;
    ExecContext b = a;
    EXPECT_EQ(b.replicas, 4u);
}

TEST(SubmitLaneTest, LanesPreserveSubmissionOrderWithinALane)
{
    ThreadPool pool(1);
    std::vector<int> order;
    std::mutex mu;
    std::vector<TaskHandle> handles;
    for (int i = 0; i < 8; ++i) {
        handles.push_back(pool.submitLane(3, [i, &order, &mu] {
            std::lock_guard<std::mutex> lock(mu);
            order.push_back(i);
        }));
    }
    for (auto &h : handles)
        h.wait();
    ASSERT_EQ(order.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(SubmitLaneTest, DistinctLanesRunConcurrently)
{
    // Lane A blocks until lane B has run: only possible when the lanes
    // are distinct threads.
    ThreadPool pool(1);
    std::atomic<bool> b_ran{false};
    TaskHandle a = pool.submitLane(1, [&] {
        while (!b_ran.load())
            std::this_thread::yield();
    });
    TaskHandle b = pool.submitLane(2, [&] { b_ran.store(true); });
    b.wait();
    a.wait();
    EXPECT_TRUE(b_ran.load());
}

TEST(SubmitLaneTest, SubmitIsLaneZero)
{
    // submit() and submitLane(0, ...) share one FIFO thread.
    ThreadPool pool(2);
    std::vector<int> order;
    std::mutex mu;
    TaskHandle a = pool.submit([&] {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back(0);
    });
    TaskHandle b = pool.submitLane(0, [&] {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back(1);
    });
    a.wait();
    b.wait();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 0);
    EXPECT_EQ(order[1], 1);
}

TEST(SubmitLaneTest, LaneExceptionRethrownFromWait)
{
    ThreadPool pool(1);
    TaskHandle h = pool.submitLane(
        5, [] { throw std::runtime_error("lane boom"); });
    EXPECT_THROW(h.wait(), std::runtime_error);
}

TEST(SubmitLaneTest, DestructorDrainsEveryLane)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(1);
        for (std::size_t lane = 0; lane < 6; ++lane) {
            for (int i = 0; i < 4; ++i)
                pool.submitLane(lane, [&ran] { ++ran; });
        }
        // pool destructor must complete all 24 tasks
    }
    EXPECT_EQ(ran.load(), 24);
}

TEST(LaneAffinityTest, ReservationBeforeLazySpawnStillRuns)
{
    // Reserving a lane that has not spawned yet must be remembered and
    // applied at spawn -- and must never break task execution, even
    // when the reserved CPU set is this host's only core.
    ThreadPool pool(2);
    CpuSet set;
    set.add(0);
    pool.setLaneAffinity(9, set);
    std::atomic<int> ran{0};
    pool.submitLane(9, [&ran] { ++ran; }).wait();
    EXPECT_EQ(ran.load(), 1);
}

TEST(LaneAffinityTest, ReserveRangeCoversRunningAndFutureLanes)
{
    ThreadPool pool(1);
    std::atomic<int> ran{0};
    pool.submitLane(ThreadPool::kServeLaneBase, [&ran] { ++ran; })
        .wait(); // lane 8 already running when the reservation lands
    CpuSet set;
    set.add(0);
    pool.reserveLanes(ThreadPool::kServeLaneBase, ThreadPool::kMaxLanes,
                      set);
    std::vector<TaskHandle> handles;
    for (std::size_t lane = ThreadPool::kServeLaneBase;
         lane < ThreadPool::kServeLaneBase + 3; ++lane)
        handles.push_back(pool.submitLane(lane, [&ran] { ++ran; }));
    for (auto &h : handles)
        h.wait();
    EXPECT_EQ(ran.load(), 4);
}

TEST(LaneAffinityTest, WorkerAffinityKeepsDispatchCorrect)
{
    ThreadPool pool(4);
    CpuSet set;
    set.add(0);
    pool.setWorkerAffinity(set);
    ExecContext exec(&pool);
    std::vector<int> hits(1000, 0);
    parallelFor(exec, hits.size(),
                [&](std::size_t lo, std::size_t hi) {
                    for (std::size_t i = lo; i < hi; ++i)
                        ++hits[i];
                });
    EXPECT_EQ(std::count(hits.begin(), hits.end(), 1),
              static_cast<long>(hits.size()));
}

TEST(SubmitLaneTest, NestedDispatchFromLaneFlattens)
{
    ThreadPool pool(4);
    ExecContext exec(&pool);
    std::atomic<bool> ok{false};
    TaskHandle h = pool.submitLane(2, [&] {
        // parallelFor from a lane thread must degenerate to a serial
        // loop (the loop workers belong to the main thread's compute).
        std::vector<int> hits(100, 0);
        parallelFor(exec, 100, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i)
                ++hits[i];
        });
        ok.store(std::count(hits.begin(), hits.end(), 1) == 100);
    });
    h.wait();
    EXPECT_TRUE(ok.load());
}

} // namespace
} // namespace lazydp
