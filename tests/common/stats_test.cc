/** @file Unit tests for RunningStat / Histogram / quantile. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "rng/xoshiro.h"

namespace lazydp {
namespace {

TEST(RunningStatTest, MeanAndVarianceOfKnownSequence)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.push(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // sample variance of the classic sequence is 32/7
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatTest, EmptyAndSingleSampleEdgeCases)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    s.push(3.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, UniformSamplesMatchTheory)
{
    // U(0,1): mean 1/2, var 1/12, excess kurtosis -1.2, skewness 0.
    RunningStat s;
    Xoshiro256 rng(7);
    for (int i = 0; i < 200000; ++i)
        s.push(rng.nextDouble());
    EXPECT_NEAR(s.mean(), 0.5, 0.005);
    EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.002);
    EXPECT_NEAR(s.excessKurtosis(), -1.2, 0.05);
    EXPECT_NEAR(s.skewness(), 0.0, 0.05);
}

TEST(RunningStatTest, PushAllMatchesPush)
{
    const float vals[] = {1.0f, 2.0f, 3.0f, 4.0f};
    RunningStat a;
    RunningStat b;
    a.pushAll(vals, 4);
    for (float v : vals)
        b.push(v);
    EXPECT_DOUBLE_EQ(a.mean(), b.mean());
    EXPECT_DOUBLE_EQ(a.variance(), b.variance());
}

TEST(HistogramTest, BinsAndOverflowCounts)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.push(i + 0.5);
    h.push(-1.0);
    h.push(42.0);
    EXPECT_EQ(h.total(), 12u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    for (std::size_t b = 0; b < 10; ++b)
        EXPECT_EQ(h.binCount(b), 1u) << "bin " << b;
}

TEST(HistogramTest, BinCentersAreMidpoints)
{
    Histogram h(0.0, 1.0, 4);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.125);
    EXPECT_DOUBLE_EQ(h.binCenter(3), 0.875);
}

TEST(HistogramTest, ChiSquaredNearZeroForExactMatch)
{
    Histogram h(0.0, 4.0, 4);
    for (int b = 0; b < 4; ++b)
        for (int i = 0; i < 250; ++i)
            h.push(b + 0.5);
    const double chi2 = h.chiSquared({0.25, 0.25, 0.25, 0.25});
    EXPECT_NEAR(chi2, 0.0, 1e-9);
}

TEST(HistogramTest, ChiSquaredLargeForMismatch)
{
    Histogram h(0.0, 2.0, 2);
    for (int i = 0; i < 1000; ++i)
        h.push(0.5); // everything in bin 0
    EXPECT_GT(h.chiSquared({0.5, 0.5}), 100.0);
}

TEST(QuantileTest, MedianAndExtremes)
{
    std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
}

TEST(QuantileTest, InterpolatesBetweenValues)
{
    std::vector<double> v{0.0, 10.0};
    EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
}

TEST(NormalCdfTest, KnownValues)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.96), 0.975, 1e-3);
    EXPECT_NEAR(normalCdf(-1.96), 0.025, 1e-3);
}

} // namespace
} // namespace lazydp
