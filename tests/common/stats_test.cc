/** @file Unit tests for RunningStat / Histogram / quantile. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "rng/xoshiro.h"

namespace lazydp {
namespace {

TEST(RunningStatTest, MeanAndVarianceOfKnownSequence)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.push(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // sample variance of the classic sequence is 32/7
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatTest, EmptyAndSingleSampleEdgeCases)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    s.push(3.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, UniformSamplesMatchTheory)
{
    // U(0,1): mean 1/2, var 1/12, excess kurtosis -1.2, skewness 0.
    RunningStat s;
    Xoshiro256 rng(7);
    for (int i = 0; i < 200000; ++i)
        s.push(rng.nextDouble());
    EXPECT_NEAR(s.mean(), 0.5, 0.005);
    EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.002);
    EXPECT_NEAR(s.excessKurtosis(), -1.2, 0.05);
    EXPECT_NEAR(s.skewness(), 0.0, 0.05);
}

TEST(RunningStatTest, PushAllMatchesPush)
{
    const float vals[] = {1.0f, 2.0f, 3.0f, 4.0f};
    RunningStat a;
    RunningStat b;
    a.pushAll(vals, 4);
    for (float v : vals)
        b.push(v);
    EXPECT_DOUBLE_EQ(a.mean(), b.mean());
    EXPECT_DOUBLE_EQ(a.variance(), b.variance());
}

TEST(HistogramTest, BinsAndOverflowCounts)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.push(i + 0.5);
    h.push(-1.0);
    h.push(42.0);
    EXPECT_EQ(h.total(), 12u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    for (std::size_t b = 0; b < 10; ++b)
        EXPECT_EQ(h.binCount(b), 1u) << "bin " << b;
}

TEST(HistogramTest, BinCentersAreMidpoints)
{
    Histogram h(0.0, 1.0, 4);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.125);
    EXPECT_DOUBLE_EQ(h.binCenter(3), 0.875);
}

TEST(HistogramTest, ChiSquaredNearZeroForExactMatch)
{
    Histogram h(0.0, 4.0, 4);
    for (int b = 0; b < 4; ++b)
        for (int i = 0; i < 250; ++i)
            h.push(b + 0.5);
    const double chi2 = h.chiSquared({0.25, 0.25, 0.25, 0.25});
    EXPECT_NEAR(chi2, 0.0, 1e-9);
}

TEST(HistogramTest, ChiSquaredLargeForMismatch)
{
    Histogram h(0.0, 2.0, 2);
    for (int i = 0; i < 1000; ++i)
        h.push(0.5); // everything in bin 0
    EXPECT_GT(h.chiSquared({0.5, 0.5}), 100.0);
}

TEST(QuantileTest, MedianAndExtremes)
{
    std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
}

TEST(QuantileTest, InterpolatesBetweenValues)
{
    std::vector<double> v{0.0, 10.0};
    EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
}

TEST(PercentilesTest, NearestRankRule)
{
    // Nearest-rank over n=4: rank = ceil(q*4), 1-based, lower pick on
    // integral q*n -- p50 of {1,2,3,4} is 2 (NOT the interpolated 2.5).
    const std::vector<double> sorted{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(stats::percentileNearestRank(sorted, 0.50), 2.0);
    EXPECT_DOUBLE_EQ(stats::percentileNearestRank(sorted, 0.25), 1.0);
    EXPECT_DOUBLE_EQ(stats::percentileNearestRank(sorted, 0.51), 3.0);
    EXPECT_DOUBLE_EQ(stats::percentileNearestRank(sorted, 1.0), 4.0);
    // q small enough that ceil(q*n) == 1.
    EXPECT_DOUBLE_EQ(stats::percentileNearestRank(sorted, 0.01), 1.0);
}

TEST(PercentilesTest, AlwaysReturnsAnActualSample)
{
    // 1000 samples 0..999: every percentile must be a member value.
    std::vector<double> v(1000);
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = static_cast<double>(999 - i); // reversed: compute sorts
    const auto p = stats::computePercentiles(v);
    EXPECT_EQ(p.count, 1000u);
    EXPECT_DOUBLE_EQ(p.p50, 499.0);   // ceil(0.5*1000)=500 -> v[499]
    EXPECT_DOUBLE_EQ(p.p95, 949.0);   // ceil(0.95*1000)=950
    EXPECT_DOUBLE_EQ(p.p99, 989.0);   // ceil(0.99*1000)=990
    EXPECT_DOUBLE_EQ(p.p999, 998.0);  // ceil(0.999*1000)=999
    EXPECT_DOUBLE_EQ(p.min, 0.0);
    EXPECT_DOUBLE_EQ(p.max, 999.0);
    EXPECT_NEAR(p.mean, 499.5, 1e-9);
}

TEST(PercentilesTest, TiesCollapseToTheTiedValue)
{
    // 99 zeros and one spike: p50/p95 sit in the tied mass, p99/p999
    // hit the spike (rank 100 on ceil(0.999*100) = 100).
    std::vector<double> v(100, 0.0);
    v[17] = 50.0;
    const auto p = stats::computePercentiles(v);
    EXPECT_DOUBLE_EQ(p.p50, 0.0);
    EXPECT_DOUBLE_EQ(p.p95, 0.0);
    EXPECT_DOUBLE_EQ(p.p99, 0.0); // ceil(0.99*100)=99 -> last zero
    EXPECT_DOUBLE_EQ(p.p999, 50.0);
}

TEST(PercentilesTest, SingleSampleAndEmpty)
{
    const auto one = stats::computePercentiles({7.5});
    EXPECT_EQ(one.count, 1u);
    EXPECT_DOUBLE_EQ(one.p50, 7.5);
    EXPECT_DOUBLE_EQ(one.p999, 7.5);
    EXPECT_DOUBLE_EQ(one.mean, 7.5);

    const auto none = stats::computePercentiles({});
    EXPECT_EQ(none.count, 0u);
    EXPECT_DOUBLE_EQ(none.p99, 0.0);
}

TEST(NormalCdfTest, KnownValues)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.96), 0.975, 1e-3);
    EXPECT_NEAR(normalCdf(-1.96), 0.025, 1e-3);
}

} // namespace
} // namespace lazydp
