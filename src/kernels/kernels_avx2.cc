/**
 * @file
 * AVX2+FMA implementations of the registry primitives.
 *
 * This translation unit is compiled with `-mavx2 -mfma` regardless of
 * the project-wide LAZYDP_NATIVE setting (see CMakeLists.txt), so the
 * vector backend exists in portable builds and the choice is made at
 * RUNTIME from cpuid. Nothing in this file may be referenced unless
 * avx2Table() returned non-null: every entry point is reached only
 * through the table, and the table is only handed out after the
 * cpuFeatures() probe confirmed AVX2+FMA.
 *
 * Keep includes minimal: headers with nontrivial inline functions
 * would be compiled with AVX2 codegen here and could be picked by the
 * linker for the whole binary, breaking non-AVX2 hosts.
 *
 * Reductions share the scalar backend's kReduceBlock blocking: each
 * 64-element block collapses to one double partial, partials added in
 * block order, so the only cross-backend difference is rounding inside
 * a block (the parity suite pins it to ~1e-12 relative).
 */

#include "kernels/kernels_internal.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <algorithm>
#include <immintrin.h>

#include "common/cpu_features.h"
#include "rng/avx_math.h"
#include "rng/philox.h"

namespace lazydp {
namespace kernels_detail {

namespace {

void
fillAvx2(float *dst, std::size_t n, float v)
{
    std::size_t i = 0;
    const __m256 vv = _mm256_set1_ps(v);
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(dst + i, vv);
    for (; i < n; ++i)
        dst[i] = v;
}

void
axpyAvx2(float *y, const float *x, std::size_t n, float a)
{
    std::size_t i = 0;
    const __m256 va = _mm256_set1_ps(a);
    for (; i + 8 <= n; i += 8) {
        __m256 vy = _mm256_loadu_ps(y + i);
        __m256 vx = _mm256_loadu_ps(x + i);
        vy = _mm256_fmadd_ps(va, vx, vy);
        _mm256_storeu_ps(y + i, vy);
    }
    for (; i < n; ++i)
        y[i] += a * x[i];
}

void
axpbyAvx2(float *y, const float *x, std::size_t n, float a, float b)
{
    std::size_t i = 0;
    const __m256 va = _mm256_set1_ps(a);
    const __m256 vb = _mm256_set1_ps(b);
    for (; i + 8 <= n; i += 8) {
        __m256 vy = _mm256_loadu_ps(y + i);
        __m256 vx = _mm256_loadu_ps(x + i);
        vy = _mm256_fmadd_ps(va, vx, _mm256_mul_ps(vb, vy));
        _mm256_storeu_ps(y + i, vy);
    }
    for (; i < n; ++i)
        y[i] = a * x[i] + b * y[i];
}

void
addAvx2(float *dst, const float *a, const float *b, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256 va = _mm256_loadu_ps(a + i);
        __m256 vb = _mm256_loadu_ps(b + i);
        _mm256_storeu_ps(dst + i, _mm256_add_ps(va, vb));
    }
    for (; i < n; ++i)
        dst[i] = a[i] + b[i];
}

void
scaleAvx2(float *dst, std::size_t n, float a)
{
    std::size_t i = 0;
    const __m256 va = _mm256_set1_ps(a);
    for (; i + 8 <= n; i += 8) {
        __m256 v = _mm256_loadu_ps(dst + i);
        _mm256_storeu_ps(dst + i, _mm256_mul_ps(v, va));
    }
    for (; i < n; ++i)
        dst[i] *= a;
}

/**
 * One kReduceBlock-bounded block of the dot reduction. Operands are
 * widened to double BEFORE the multiply, so each product is exact
 * (24+24 < 53 mantissa bits) just like the scalar reference; the only
 * cross-backend difference is the in-block summation order of exact
 * partials (~1e-15 relative).
 */
inline double
dotBlock(const float *a, const float *b, std::size_t len)
{
    std::size_t i = 0;
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (; i + 8 <= len; i += 8) {
        const __m256 va = _mm256_loadu_ps(a + i);
        const __m256 vb = _mm256_loadu_ps(b + i);
        const __m256d alo = _mm256_cvtps_pd(_mm256_castps256_ps128(va));
        const __m256d ahi = _mm256_cvtps_pd(_mm256_extractf128_ps(va, 1));
        const __m256d blo = _mm256_cvtps_pd(_mm256_castps256_ps128(vb));
        const __m256d bhi = _mm256_cvtps_pd(_mm256_extractf128_ps(vb, 1));
        acc0 = _mm256_fmadd_pd(alo, blo, acc0);
        acc1 = _mm256_fmadd_pd(ahi, bhi, acc1);
    }
    alignas(32) double tmp[4];
    _mm256_store_pd(tmp, _mm256_add_pd(acc0, acc1));
    double blk = tmp[0] + tmp[1] + tmp[2] + tmp[3];
    for (; i < len; ++i)
        blk += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    return blk;
}

double
dotAvx2(const float *a, const float *b, std::size_t n)
{
    double total = 0.0;
    for (std::size_t base = 0; base < n; base += kReduceBlock) {
        const std::size_t lim = std::min(n, base + kReduceBlock);
        total += dotBlock(a + base, b + base, lim - base);
    }
    return total;
}

double
squaredNormAvx2(const float *x, std::size_t n)
{
    return dotAvx2(x, x, n);
}

void
reluForwardAvx2(float *dst, const float *x, std::size_t n)
{
    std::size_t i = 0;
    const __m256 zero = _mm256_setzero_ps();
    for (; i + 8 <= n; i += 8) {
        __m256 v = _mm256_loadu_ps(x + i);
        _mm256_storeu_ps(dst + i, _mm256_max_ps(v, zero));
    }
    for (; i < n; ++i)
        dst[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void
reluBackwardAvx2(float *dx, const float *x, const float *dy,
                 std::size_t n)
{
    std::size_t i = 0;
    const __m256 zero = _mm256_setzero_ps();
    for (; i + 8 <= n; i += 8) {
        __m256 vx = _mm256_loadu_ps(x + i);
        __m256 vdy = _mm256_loadu_ps(dy + i);
        __m256 mask = _mm256_cmp_ps(vx, zero, _CMP_GT_OQ);
        _mm256_storeu_ps(dx + i, _mm256_and_ps(vdy, mask));
    }
    for (; i < n; ++i)
        dx[i] = x[i] > 0.0f ? dy[i] : 0.0f;
}

void
gemvDotRowAvx2(const float *arow, const float *b, float *crow,
               std::size_t n, std::size_t k, bool accumulate)
{
    // Two output columns per pass share the arow loads; accumulation
    // stays per-column blocked so each crow[j] equals dotAvx2(arow, b_j)
    // exactly (the parity suite compares against the scalar reference).
    std::size_t j = 0;
    for (; j + 2 <= n; j += 2) {
        const float *b0 = b + j * k;
        const float *b1 = b0 + k;
        double t0 = 0.0, t1 = 0.0;
        for (std::size_t base = 0; base < k; base += kReduceBlock) {
            const std::size_t lim = std::min(k, base + kReduceBlock);
            const std::size_t len = lim - base;
            std::size_t i = 0;
            __m256d a00 = _mm256_setzero_pd();
            __m256d a01 = _mm256_setzero_pd();
            __m256d a10 = _mm256_setzero_pd();
            __m256d a11 = _mm256_setzero_pd();
            const float *ap = arow + base;
            const float *bp0 = b0 + base;
            const float *bp1 = b1 + base;
            for (; i + 8 <= len; i += 8) {
                const __m256 va = _mm256_loadu_ps(ap + i);
                const __m256 v0 = _mm256_loadu_ps(bp0 + i);
                const __m256 v1 = _mm256_loadu_ps(bp1 + i);
                const __m256d alo =
                    _mm256_cvtps_pd(_mm256_castps256_ps128(va));
                const __m256d ahi =
                    _mm256_cvtps_pd(_mm256_extractf128_ps(va, 1));
                a00 = _mm256_fmadd_pd(
                    alo, _mm256_cvtps_pd(_mm256_castps256_ps128(v0)),
                    a00);
                a01 = _mm256_fmadd_pd(
                    ahi, _mm256_cvtps_pd(_mm256_extractf128_ps(v0, 1)),
                    a01);
                a10 = _mm256_fmadd_pd(
                    alo, _mm256_cvtps_pd(_mm256_castps256_ps128(v1)),
                    a10);
                a11 = _mm256_fmadd_pd(
                    ahi, _mm256_cvtps_pd(_mm256_extractf128_ps(v1, 1)),
                    a11);
            }
            alignas(32) double t[4];
            _mm256_store_pd(t, _mm256_add_pd(a00, a01));
            double blk0 = t[0] + t[1] + t[2] + t[3];
            _mm256_store_pd(t, _mm256_add_pd(a10, a11));
            double blk1 = t[0] + t[1] + t[2] + t[3];
            for (; i < len; ++i) {
                const double av = ap[i];
                blk0 += av * static_cast<double>(bp0[i]);
                blk1 += av * static_cast<double>(bp1[i]);
            }
            t0 += blk0;
            t1 += blk1;
        }
        const float f0 = static_cast<float>(t0);
        const float f1 = static_cast<float>(t1);
        crow[j] = accumulate ? crow[j] + f0 : f0;
        crow[j + 1] = accumulate ? crow[j + 1] + f1 : f1;
    }
    for (; j < n; ++j) {
        const float v = static_cast<float>(dotAvx2(arow, b + j * k, k));
        crow[j] = accumulate ? crow[j] + v : v;
    }
}

void
poolRowsAvx2(float *dst, const float *table, const std::uint32_t *rows,
             std::size_t count, std::size_t dim)
{
    fillAvx2(dst, dim, 0.0f);
    for (std::size_t i = 0; i < count; ++i) {
        const float *src =
            table + static_cast<std::size_t>(rows[i]) * dim;
        addAvx2(dst, dst, src, dim);
    }
}

void
scatterAxpyRowsAvx2(float *table, const std::uint32_t *rows,
                    const float *vals, std::size_t count, std::size_t dim,
                    float a)
{
    for (std::size_t i = 0; i < count; ++i) {
        axpyAvx2(table + static_cast<std::size_t>(rows[i]) * dim,
                 vals + i * dim, dim, a);
    }
}

std::size_t
streamWithOpsAvx2(float *dst, const float *x, std::size_t n, int n_ops)
{
    const float mul_c = 1.000001f;
    const float add_c = 1e-7f;
    std::size_t i = 0;
    const __m256 vm = _mm256_set1_ps(mul_c);
    const __m256 va = _mm256_set1_ps(add_c);
    // Four independent vector chains per loop iteration so the core is
    // throughput-bound (as Box-Muller's polynomial ILP is), not bound
    // by the latency of one dependent chain.
    for (; i + 32 <= n; i += 32) {
        __m256 v0 = _mm256_loadu_ps(x + i);
        __m256 v1 = _mm256_loadu_ps(x + i + 8);
        __m256 v2 = _mm256_loadu_ps(x + i + 16);
        __m256 v3 = _mm256_loadu_ps(x + i + 24);
        for (int k = 0; k < n_ops; k += 2) {
            v0 = _mm256_mul_ps(v0, vm);
            v1 = _mm256_mul_ps(v1, vm);
            v2 = _mm256_mul_ps(v2, vm);
            v3 = _mm256_mul_ps(v3, vm);
            if (k + 1 < n_ops) {
                v0 = _mm256_add_ps(v0, va);
                v1 = _mm256_add_ps(v1, va);
                v2 = _mm256_add_ps(v2, va);
                v3 = _mm256_add_ps(v3, va);
            }
        }
        _mm256_storeu_ps(dst + i, v0);
        _mm256_storeu_ps(dst + i + 8, v1);
        _mm256_storeu_ps(dst + i + 16, v2);
        _mm256_storeu_ps(dst + i + 24, v3);
    }
    for (; i + 8 <= n; i += 8) {
        __m256 v = _mm256_loadu_ps(x + i);
        for (int k = 0; k < n_ops; k += 2) {
            v = _mm256_mul_ps(v, vm);
            if (k + 1 < n_ops)
                v = _mm256_add_ps(v, va);
        }
        _mm256_storeu_ps(dst + i, v);
    }
    for (; i < n; ++i) {
        float v = x[i];
        for (int k = 0; k < n_ops; k += 2) {
            v = v * mul_c;
            if (k + 1 < n_ops)
                v = v + add_c;
        }
        dst[i] = v;
    }
    return n * static_cast<std::size_t>(n_ops);
}

/**
 * 8-wide Philox4x32-10: computes blocks (ctr_hi, lo_base + lane) for
 * lanes 0..7 in SoA form (x0..x3 each hold one output word of all
 * 8 blocks).
 */
inline void
philoxAvx2(std::uint32_t key0, std::uint32_t key1, std::uint64_t ctr_hi,
           std::uint64_t lo_base, __m256i &x0, __m256i &x1, __m256i &x2,
           __m256i &x3)
{
    alignas(32) std::uint32_t c0v[8], c1v[8];
    for (int lane = 0; lane < 8; ++lane) {
        const std::uint64_t lo = lo_base + static_cast<std::uint64_t>(lane);
        c0v[lane] = static_cast<std::uint32_t>(lo);
        c1v[lane] = static_cast<std::uint32_t>(lo >> 32);
    }
    __m256i c0 = _mm256_load_si256(reinterpret_cast<const __m256i *>(c0v));
    __m256i c1 = _mm256_load_si256(reinterpret_cast<const __m256i *>(c1v));
    __m256i c2 = _mm256_set1_epi32(static_cast<int>(
        static_cast<std::uint32_t>(ctr_hi)));
    __m256i c3 = _mm256_set1_epi32(static_cast<int>(
        static_cast<std::uint32_t>(ctr_hi >> 32)));
    __m256i k0 = _mm256_set1_epi32(static_cast<int>(key0));
    __m256i k1 = _mm256_set1_epi32(static_cast<int>(key1));

    const __m256i m0 = _mm256_set1_epi32(static_cast<int>(0xD2511F53u));
    const __m256i m1 = _mm256_set1_epi32(static_cast<int>(0xCD9E8D57u));
    const __m256i w0 = _mm256_set1_epi32(static_cast<int>(0x9E3779B9u));
    const __m256i w1 = _mm256_set1_epi32(static_cast<int>(0xBB67AE85u));

    auto mulhilo = [](__m256i a, __m256i m, __m256i &hi, __m256i &lo) {
        // 32x32->64 products for even and odd lanes, then re-blend.
        const __m256i prod_e = _mm256_mul_epu32(a, m);
        const __m256i prod_o =
            _mm256_mul_epu32(_mm256_srli_epi64(a, 32), m);
        lo = _mm256_blend_epi32(prod_e, _mm256_slli_epi64(prod_o, 32),
                                0b10101010);
        hi = _mm256_blend_epi32(_mm256_srli_epi64(prod_e, 32), prod_o,
                                0b10101010);
    };

    for (int round = 0; round < 10; ++round) {
        __m256i hi0, lo0, hi1, lo1;
        mulhilo(c0, m0, hi0, lo0);
        mulhilo(c2, m1, hi1, lo1);
        const __m256i n0 =
            _mm256_xor_si256(_mm256_xor_si256(hi1, c1), k0);
        const __m256i n2 =
            _mm256_xor_si256(_mm256_xor_si256(hi0, c3), k1);
        c1 = lo1;
        c3 = lo0;
        c0 = n0;
        c2 = n2;
        k0 = _mm256_add_epi32(k0, w0);
        k1 = _mm256_add_epi32(k1, w1);
    }
    x0 = c0;
    x1 = c1;
    x2 = c2;
    x3 = c3;
}

/** u32 vector -> uniform (0,1) floats. */
inline __m256
toUniformPs(__m256i x)
{
    const __m256 f = _mm256_cvtepi32_ps(_mm256_srli_epi32(x, 8));
    return _mm256_mul_ps(_mm256_add_ps(f, _mm256_set1_ps(0.5f)),
                         _mm256_set1_ps(1.0f / 16777216.0f));
}

void
gaussianFillKeyedAvx2(const Philox4x32 &philox, std::uint64_t ctr_hi,
                      std::uint64_t lo_base, float *dst, std::size_t dim,
                      float sigma, float scale, bool accumulate)
{
    const std::uint32_t key0 =
        static_cast<std::uint32_t>(philox.seed());
    const std::uint32_t key1 =
        static_cast<std::uint32_t>(philox.seed() >> 32);
    const __m256 vsigma = _mm256_set1_ps(sigma);

    std::size_t b = 0;
    const std::size_t blocks = (dim + 3) / 4;
    // Full groups of 8 blocks -> 32 contiguous output samples.
    for (; b + 8 <= blocks && (dim - 4 * b) >= 32; b += 8) {
        __m256i x0, x1, x2, x3;
        philoxAvx2(key0, key1, ctr_hi, lo_base + b, x0, x1, x2, x3);

        const __m256 u0 = toUniformPs(x0);
        const __m256 u1 = toUniformPs(x1);
        const __m256 u2 = toUniformPs(x2);
        const __m256 u3 = toUniformPs(x3);

        // radius = sigma * sqrt(-2 ln u)
        const __m256 neg2 = _mm256_set1_ps(-2.0f);
        const __m256 r0 = _mm256_mul_ps(
            vsigma,
            _mm256_sqrt_ps(_mm256_mul_ps(neg2, avxm::logPs(u0))));
        const __m256 r1 = _mm256_mul_ps(
            vsigma,
            _mm256_sqrt_ps(_mm256_mul_ps(neg2, avxm::logPs(u2))));

        __m256 s0, c0p, s1, c1p;
        avxm::sinCos2PiPs(u1, s0, c0p);
        avxm::sinCos2PiPs(u3, s1, c1p);

        // lane l of zj corresponds to output element 4*(b+l) + j
        const __m256 z0 = _mm256_mul_ps(r0, c0p);
        const __m256 z1 = _mm256_mul_ps(r0, s0);
        const __m256 z2 = _mm256_mul_ps(r1, c1p);
        const __m256 z3 = _mm256_mul_ps(r1, s1);

        alignas(32) float t0[8], t1[8], t2[8], t3[8];
        _mm256_store_ps(t0, z0);
        _mm256_store_ps(t1, z1);
        _mm256_store_ps(t2, z2);
        _mm256_store_ps(t3, z3);

        float *out = dst + 4 * b;
        if (accumulate) {
            for (int lane = 0; lane < 8; ++lane) {
                out[4 * lane + 0] += scale * t0[lane];
                out[4 * lane + 1] += scale * t1[lane];
                out[4 * lane + 2] += scale * t2[lane];
                out[4 * lane + 3] += scale * t3[lane];
            }
        } else {
            for (int lane = 0; lane < 8; ++lane) {
                out[4 * lane + 0] = scale * t0[lane];
                out[4 * lane + 1] = scale * t1[lane];
                out[4 * lane + 2] = scale * t2[lane];
                out[4 * lane + 3] = scale * t3[lane];
            }
        }
    }
    // Remainder via the scalar kernel (identical counter mapping).
    if (4 * b < dim) {
        gaussianFillKeyedScalar(philox, ctr_hi, lo_base + b, dst + 4 * b,
                                dim - 4 * b, sigma, scale, accumulate);
    }
}

} // namespace

const KernelTable *
avx2Table()
{
    if (!cpuFeatures().avx2 || !cpuFeatures().fma)
        return nullptr;
    static const KernelTable table = {
        KernelBackend::Avx2,
        "avx2",
        GaussianKernel::Avx2,
        fillAvx2,
        axpyAvx2,
        axpbyAvx2,
        addAvx2,
        scaleAvx2,
        dotAvx2,
        squaredNormAvx2,
        reluForwardAvx2,
        reluBackwardAvx2,
        gemvDotRowAvx2,
        poolRowsAvx2,
        scatterAxpyRowsAvx2,
        streamWithOpsAvx2,
        gaussianFillKeyedAvx2,
    };
    return &table;
}

} // namespace kernels_detail
} // namespace lazydp

#else // !(__AVX2__ && __FMA__)

namespace lazydp {
namespace kernels_detail {

// Compiler without AVX2 support: the backend simply does not exist.
const KernelTable *
avx2Table()
{
    return nullptr;
}

} // namespace kernels_detail
} // namespace lazydp

#endif // __AVX2__ && __FMA__
