#include "kernels/kernel_registry.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "common/logging.h"
#include "kernels/kernels_internal.h"

namespace lazydp {

namespace {

std::atomic<const KernelTable *> g_active{nullptr};

/** Resolve Auto against this build + CPU. */
const KernelTable *
resolveTable(KernelBackend b)
{
    using namespace kernels_detail;
    switch (b) {
      case KernelBackend::Avx2:
        return avx2Table(); // may be null: caller handles the fallback
      case KernelBackend::Scalar:
        return &scalarTable();
      case KernelBackend::Auto:
      default: {
        const KernelTable *avx2 = avx2Table();
        return avx2 != nullptr ? avx2 : &scalarTable();
      }
    }
}

/** One-time startup selection from LAZYDP_KERNELS (default auto). */
const KernelTable *
initialTable()
{
    KernelBackend requested = KernelBackend::Auto;
    if (const char *env = std::getenv("LAZYDP_KERNELS")) {
        if (!parseKernelBackend(env, requested)) {
            warn("LAZYDP_KERNELS='", env,
                 "' is not scalar|avx2|auto; using auto");
            requested = KernelBackend::Auto;
        }
    }
    const KernelTable *t = resolveTable(requested);
    if (t == nullptr) {
        warn("kernel backend '", kernelBackendName(requested),
             "' unavailable on this host; falling back to scalar");
        t = &kernels_detail::scalarTable();
    }
    return t;
}

} // namespace

bool
parseKernelBackend(const std::string &s, KernelBackend &out)
{
    if (s == "auto") {
        out = KernelBackend::Auto;
        return true;
    }
    if (s == "scalar") {
        out = KernelBackend::Scalar;
        return true;
    }
    if (s == "avx2") {
        out = KernelBackend::Avx2;
        return true;
    }
    return false;
}

const char *
kernelBackendName(KernelBackend b)
{
    switch (b) {
      case KernelBackend::Scalar:
        return "scalar";
      case KernelBackend::Avx2:
        return "avx2";
      case KernelBackend::Auto:
      default:
        return "auto";
    }
}

bool
kernelBackendAvailable(KernelBackend b)
{
    return resolveTable(b) != nullptr;
}

void
setKernelBackend(KernelBackend b)
{
    const KernelTable *t = resolveTable(b);
    if (t == nullptr) {
        warn("kernel backend '", kernelBackendName(b),
             "' unavailable on this host; falling back to scalar");
        t = &kernels_detail::scalarTable();
    }
    g_active.store(t, std::memory_order_release);
}

KernelBackend
activeKernelBackend()
{
    return kernels().backend;
}

const KernelTable &
kernels()
{
    const KernelTable *t = g_active.load(std::memory_order_acquire);
    if (t == nullptr) {
        static std::once_flag once;
        std::call_once(once, [] {
            const KernelTable *expected = nullptr;
            g_active.compare_exchange_strong(expected, initialTable(),
                                             std::memory_order_acq_rel);
        });
        t = g_active.load(std::memory_order_acquire);
    }
    return *t;
}

const KernelTable *
kernelTable(KernelBackend b)
{
    return resolveTable(b);
}

} // namespace lazydp
