/**
 * @file
 * Runtime-dispatched SIMD kernel registry for the DP hot loops.
 *
 * Every data-streaming primitive the training loop leans on — the MLP
 * GEMM row kernel, the fused square-accumulate behind per-example
 * gradient norms, the scale-and-add of clipped gradient accumulation,
 * the keyed-Philox Box-Muller fill, and the embedding pooling/scatter
 * kernels — exists in two implementations:
 *
 *  - a **scalar** reference, plain C++ loops compiled for the baseline
 *    ISA, and
 *  - an **AVX2 (+FMA)** variant, compiled in its own translation unit
 *    with `-mavx2 -mfma` so it exists even in portable
 *    (`-DLAZYDP_NATIVE=OFF`) builds and is selected at RUNTIME.
 *
 * One backend is active per process, chosen at startup from (highest
 * priority first) the `--kernels=scalar|avx2|auto` flag of the tools
 * and benches, the `LAZYDP_KERNELS` environment variable, or `auto`
 * (AVX2 whenever the executing CPU supports AVX2+FMA, per the
 * common/cpu_features cpuid probe).
 *
 * Determinism contract:
 *
 *  - Per kernel choice, results are bit-exact run to run: reductions
 *    use fixed-width blocked accumulation (kReduceBlock elements per
 *    partial), and block boundaries depend on the problem size only —
 *    never on the ISA vector width, the thread count, or alignment.
 *    The threads/pipeline/replicas bit-identity matrices therefore
 *    hold under either backend.
 *  - Across kernel choices, element-wise kernels without FMA
 *    opportunities (fill/add/scale/relu/pool) are bit-identical;
 *    FMA-bearing kernels (axpy/axpby/scatter/gemv) and the blocked
 *    reductions agree within a few ULP; the Box-Muller fill agrees
 *    within |diff| < 1e-5 * sigma per sample (polynomial vs libm
 *    transcendentals). The kernel-parity suite (tests/kernels/) pins
 *    these tolerances.
 *  - The scalar backend is the golden reference: the golden-model
 *    regression hashes (tests/kernels/golden_model_test.cc) are
 *    recorded under kernels=scalar.
 */

#ifndef LAZYDP_KERNELS_KERNEL_REGISTRY_H
#define LAZYDP_KERNELS_KERNEL_REGISTRY_H

#include <cstddef>
#include <cstdint>
#include <string>

#include "rng/gaussian_kernel.h"

namespace lazydp {

class Philox4x32;

/** Which kernel implementation set to dispatch to. */
enum class KernelBackend
{
    Auto,   //!< resolve to Avx2 when available, else Scalar
    Scalar, //!< portable reference implementations (the golden path)
    Avx2    //!< AVX2+FMA vector implementations
};

/**
 * Fixed accumulation block width (elements) shared by every reduction
 * kernel in every backend. A multiple of all supported vector widths so
 * blocked partials land on identical boundaries regardless of ISA.
 */
constexpr std::size_t kReduceBlock = 64;

/**
 * One backend's implementations of the hot primitives. All pointers are
 * non-null in a registered table; slices may be unaligned and
 * zero-length (every kernel must handle n == 0).
 */
struct KernelTable
{
    KernelBackend backend; //!< concrete backend (never Auto)
    const char *name;      //!< "scalar" / "avx2"
    GaussianKernel gaussian; //!< Box-Muller implementation to match

    /** dst[i] = v */
    void (*fill)(float *dst, std::size_t n, float v);
    /** y[i] += a * x[i] — clipped-grad accumulation / model update. */
    void (*axpy)(float *y, const float *x, std::size_t n, float a);
    /** y[i] = a * x[i] + b * y[i] — update fused with weight decay. */
    void (*axpby)(float *y, const float *x, std::size_t n, float a,
                  float b);
    /** dst[i] = a[i] + b[i] */
    void (*add)(float *dst, const float *a, const float *b,
                std::size_t n);
    /** dst[i] *= a */
    void (*scale)(float *dst, std::size_t n, float a);
    /** sum_i a[i]*b[i], double accumulation in kReduceBlock blocks. */
    double (*dot)(const float *a, const float *b, std::size_t n);
    /** Fused square-accumulate sum_i x[i]^2 (per-example norms). */
    double (*squaredNorm)(const float *x, std::size_t n);
    /** dst[i] = max(x[i], 0) */
    void (*reluForward)(float *dst, const float *x, std::size_t n);
    /** dx[i] = x[i] > 0 ? dy[i] : 0 */
    void (*reluBackward)(float *dx, const float *x, const float *dy,
                         std::size_t n);

    /**
     * GEMV row kernel of C = A * B^T: crow[j] (+)= dot(arow, b_j) for
     * j in [0, n), where b_j = b + j*k is row j of the (n x k) matrix
     * B. One call computes one output row of the MLP GEMMs.
     */
    void (*gemvDotRow)(const float *arow, const float *b, float *crow,
                       std::size_t n, std::size_t k, bool accumulate);

    /**
     * Embedding sum-pooling: dst[j] = sum_i table[rows[i]*dim + j]
     * (dst overwritten; count may be 0 -> dst zeroed). Rows may repeat.
     */
    void (*poolRows)(float *dst, const float *table,
                     const std::uint32_t *rows, std::size_t count,
                     std::size_t dim);

    /**
     * Sparse scatter-update: table[rows[i]*dim + j] += a * vals[i*dim+j]
     * for every i in [0, count). Rows MUST be unique (callers pass
     * coalesced row lists) so destination rows never alias.
     */
    void (*scatterAxpyRows)(float *table, const std::uint32_t *rows,
                            const float *vals, std::size_t count,
                            std::size_t dim, float a);

    /**
     * Roofline microbenchmark kernel (paper Figure 6): a dependent
     * chain of n_ops alternating mul/add per element.
     * @return flop count (n * n_ops).
     */
    std::size_t (*streamWithOps)(float *dst, const float *x,
                                 std::size_t n, int n_ops);

    /**
     * Keyed Box-Muller Gaussian fill: writes (or accumulates) scale*z
     * for dim samples where sample 4b+j derives from Philox block
     * (ctr_hi, lo_base + b). Counter consumption is identical across
     * backends; see rng/gaussian.h for the full contract.
     */
    void (*gaussianFillKeyed)(const Philox4x32 &philox,
                              std::uint64_t ctr_hi, std::uint64_t lo_base,
                              float *dst, std::size_t dim, float sigma,
                              float scale, bool accumulate);
};

/**
 * Parse a backend name ("scalar", "avx2", "auto"; case-sensitive).
 * @return true on success (out untouched on failure).
 */
bool parseKernelBackend(const std::string &s, KernelBackend &out);

/** @return canonical name of a backend ("auto"/"scalar"/"avx2"). */
const char *kernelBackendName(KernelBackend b);

/** @return true if @p b can execute on this build + CPU. */
bool kernelBackendAvailable(KernelBackend b);

/**
 * Select the process-wide active backend. Auto resolves to Avx2 when
 * available, else Scalar; an explicit request for an unavailable
 * backend warns and falls back to Scalar (so a forced
 * LAZYDP_KERNELS=avx2 CI matrix leg degrades gracefully on old
 * hardware instead of crashing).
 *
 * Call BEFORE constructing engines: elementwise/reduction kernels
 * follow the new table immediately, but the Box-Muller choice is
 * latched when a NoiseProvider/GaussianSampler resolves
 * GaussianKernel::Auto at construction — deliberately, so one run's
 * noise stream never switches implementations mid-flight. An engine
 * built under the old backend keeps its old noise kernel.
 */
void setKernelBackend(KernelBackend b);

/** @return the active backend (resolved, never Auto). */
KernelBackend activeKernelBackend();

/**
 * @return the active kernel table. First use resolves the
 * LAZYDP_KERNELS environment variable (or Auto when unset/garbage).
 */
const KernelTable &kernels();

/**
 * @return the table for a concrete backend, or nullptr when it cannot
 * run here. The parity tests iterate backends through this without
 * flipping the process-wide selection.
 */
const KernelTable *kernelTable(KernelBackend b);

} // namespace lazydp

#endif // LAZYDP_KERNELS_KERNEL_REGISTRY_H
