/**
 * @file
 * Scalar reference implementations of every registry primitive.
 *
 * These are the golden path: plain loops, no intrinsics, fixed-width
 * blocked reductions (kReduceBlock elements per double partial). The
 * golden-model regression hashes and all cross-backend parity
 * tolerances are anchored to the outputs of this file.
 */

#include <algorithm>
#include <cmath>
#include <cstring>

#include "kernels/kernels_internal.h"
#include "rng/philox.h"

namespace lazydp {
namespace kernels_detail {

namespace {

void
fillScalar(float *dst, std::size_t n, float v)
{
    std::fill(dst, dst + n, v);
}

void
axpyScalar(float *y, const float *x, std::size_t n, float a)
{
    for (std::size_t i = 0; i < n; ++i)
        y[i] += a * x[i];
}

void
axpbyScalar(float *y, const float *x, std::size_t n, float a, float b)
{
    for (std::size_t i = 0; i < n; ++i)
        y[i] = a * x[i] + b * y[i];
}

void
addScalar(float *dst, const float *a, const float *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = a[i] + b[i];
}

void
scaleScalar(float *dst, std::size_t n, float a)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] *= a;
}

// Blocked double accumulation: each kReduceBlock-element block sums
// into its own double partial, partials added in block order. float x
// float products are exact in double, so the only rounding is the
// in-order double additions -- deterministic and ISA-independent
// block boundaries.
double
dotScalar(const float *a, const float *b, std::size_t n)
{
    double total = 0.0;
    for (std::size_t base = 0; base < n; base += kReduceBlock) {
        const std::size_t lim = std::min(n, base + kReduceBlock);
        double blk = 0.0;
        for (std::size_t i = base; i < lim; ++i)
            blk += static_cast<double>(a[i]) * static_cast<double>(b[i]);
        total += blk;
    }
    return total;
}

double
squaredNormScalar(const float *x, std::size_t n)
{
    // One blocking scheme to rule them all: the dot==squaredNorm
    // bit-identity is pinned by the tensor and parity suites.
    return dotScalar(x, x, n);
}

void
reluForwardScalar(float *dst, const float *x, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void
reluBackwardScalar(float *dx, const float *x, const float *dy,
                   std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dx[i] = x[i] > 0.0f ? dy[i] : 0.0f;
}

void
gemvDotRowScalar(const float *arow, const float *b, float *crow,
                 std::size_t n, std::size_t k, bool accumulate)
{
    for (std::size_t j = 0; j < n; ++j) {
        const float v = static_cast<float>(dotScalar(arow, b + j * k, k));
        crow[j] = accumulate ? crow[j] + v : v;
    }
}

void
poolRowsScalar(float *dst, const float *table, const std::uint32_t *rows,
               std::size_t count, std::size_t dim)
{
    std::fill(dst, dst + dim, 0.0f);
    for (std::size_t i = 0; i < count; ++i) {
        const float *src = table + static_cast<std::size_t>(rows[i]) * dim;
        for (std::size_t j = 0; j < dim; ++j)
            dst[j] += src[j];
    }
}

void
scatterAxpyRowsScalar(float *table, const std::uint32_t *rows,
                      const float *vals, std::size_t count,
                      std::size_t dim, float a)
{
    for (std::size_t i = 0; i < count; ++i) {
        float *dst = table + static_cast<std::size_t>(rows[i]) * dim;
        const float *src = vals + i * dim;
        for (std::size_t j = 0; j < dim; ++j)
            dst[j] += a * src[j];
    }
}

std::size_t
streamWithOpsScalar(float *dst, const float *x, std::size_t n, int n_ops)
{
    // A dependent chain of alternating mul/add per element; constants
    // chosen so the value neither explodes nor denormalizes over 124
    // chained ops (see the Figure 6 roofline bench).
    const float mul_c = 1.000001f;
    const float add_c = 1e-7f;
    for (std::size_t i = 0; i < n; ++i) {
        float v = x[i];
        for (int k = 0; k < n_ops; k += 2) {
            v = v * mul_c;
            if (k + 1 < n_ops)
                v = v + add_c;
        }
        dst[i] = v;
    }
    return n * static_cast<std::size_t>(n_ops);
}

constexpr float kTwoPi = 6.28318530717958647692f;

/** u32 -> uniform float in (0, 1): 24 mantissa bits + half-ulp offset. */
inline float
toUniform(std::uint32_t x)
{
    return (static_cast<float>(x >> 8) + 0.5f) * (1.0f / 16777216.0f);
}

/** Scalar Box-Muller over one Philox block -> 4 samples. */
inline void
blockToGaussians(const Philox4x32::Block &blk, float sigma, float out[4])
{
    const float u0 = toUniform(blk[0]);
    const float u1 = toUniform(blk[1]);
    const float u2 = toUniform(blk[2]);
    const float u3 = toUniform(blk[3]);
    const float r0 = sigma * std::sqrt(-2.0f * std::log(u0));
    const float r1 = sigma * std::sqrt(-2.0f * std::log(u2));
    out[0] = r0 * std::cos(kTwoPi * u1);
    out[1] = r0 * std::sin(kTwoPi * u1);
    out[2] = r1 * std::cos(kTwoPi * u3);
    out[3] = r1 * std::sin(kTwoPi * u3);
}

} // namespace

void
gaussianFillKeyedScalar(const Philox4x32 &philox, std::uint64_t ctr_hi,
                        std::uint64_t lo_base, float *dst, std::size_t dim,
                        float sigma, float scale, bool accumulate)
{
    const std::size_t blocks = (dim + 3) / 4;
    for (std::size_t b = 0; b < blocks; ++b) {
        float z[4];
        blockToGaussians(philox.block(ctr_hi, lo_base + b), sigma, z);
        const std::size_t base = 4 * b;
        const std::size_t lim = std::min<std::size_t>(4, dim - base);
        for (std::size_t j = 0; j < lim; ++j) {
            const float v = scale * z[j];
            dst[base + j] = accumulate ? dst[base + j] + v : v;
        }
    }
}

const KernelTable &
scalarTable()
{
    static const KernelTable table = {
        KernelBackend::Scalar,
        "scalar",
        GaussianKernel::Scalar,
        fillScalar,
        axpyScalar,
        axpbyScalar,
        addScalar,
        scaleScalar,
        dotScalar,
        squaredNormScalar,
        reluForwardScalar,
        reluBackwardScalar,
        gemvDotRowScalar,
        poolRowsScalar,
        scatterAxpyRowsScalar,
        streamWithOpsScalar,
        gaussianFillKeyedScalar,
    };
    return table;
}

} // namespace kernels_detail
} // namespace lazydp
