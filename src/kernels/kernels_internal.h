/**
 * @file
 * Internal seams between the kernel backends and the registry.
 *
 * Not installed API: only kernel_registry.cc, kernels_scalar.cc,
 * kernels_avx2.cc and rng/gaussian.cc include this.
 */

#ifndef LAZYDP_KERNELS_KERNELS_INTERNAL_H
#define LAZYDP_KERNELS_KERNELS_INTERNAL_H

#include "kernels/kernel_registry.h"

namespace lazydp {
namespace kernels_detail {

/** @return the always-available scalar reference table. */
const KernelTable &scalarTable();

/**
 * @return the AVX2 table, or nullptr when the binary lacks the AVX2
 * translation unit (non-x86 compiler) or the CPU lacks AVX2/FMA.
 */
const KernelTable *avx2Table();

/**
 * Scalar keyed Box-Muller fill; also the remainder path of the AVX2
 * fill (identical counter mapping for trailing partial block groups).
 */
void gaussianFillKeyedScalar(const Philox4x32 &philox,
                             std::uint64_t ctr_hi, std::uint64_t lo_base,
                             float *dst, std::size_t dim, float sigma,
                             float scale, bool accumulate);

} // namespace kernels_detail
} // namespace lazydp

#endif // LAZYDP_KERNELS_KERNELS_INTERNAL_H
