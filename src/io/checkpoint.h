/**
 * @file
 * Training checkpoints.
 *
 * Checkpointing interacts with LazyDP in a way eager DP-SGD never has
 * to think about: at any instant mid-training, most embedding rows have
 * *pending* noise that exists only implicitly (HistoryTable entry +
 * keyed noise streams). Two valid strategies:
 *
 *  - `saveTraining` persists the model AND the HistoryTable plus the
 *    noise seed and iteration counter, so a resumed run regenerates the
 *    exact same deferred noise. Cheap (no flush), and a resumed run is
 *    bit-identical to an uninterrupted one (tested).
 *
 *  - For *releasing* a model (DP boundary!), callers must finalize()
 *    first so the pending noise is applied; a checkpoint of a
 *    non-finalized model is NOT a private artifact and must be treated
 *    like the training state itself.
 */

#ifndef LAZYDP_IO_CHECKPOINT_H
#define LAZYDP_IO_CHECKPOINT_H

#include <cstdint>
#include <string>

#include "core/lazydp.h"
#include "nn/dlrm.h"

namespace lazydp {
namespace io {

/** Save model weights only (for released / finalized models). */
void saveModel(const std::string &path, const DlrmModel &model);

/**
 * Load weights into an existing model; the model's configuration must
 * match the checkpoint (validated via shape fields, fatal() otherwise).
 */
void loadModel(const std::string &path, DlrmModel &model);

/**
 * Save a full LazyDP training state: weights + HistoryTable +
 * iteration counter + noise seed.
 */
void saveTraining(const std::string &path, const DlrmModel &model,
                  const LazyDpAlgorithm &algo, std::uint64_t next_iter);

/** Result of loadTraining. */
struct ResumeInfo
{
    std::uint64_t nextIter = 0;   //!< iteration to continue from
    std::uint64_t noiseSeed = 0;  //!< seed the run was using
};

/**
 * Restore a LazyDP training state saved by saveTraining. The model and
 * algorithm must be constructed with the same configuration (the
 * caller re-creates them; weights and history are overwritten).
 */
ResumeInfo loadTraining(const std::string &path, DlrmModel &model,
                        LazyDpAlgorithm &algo);

} // namespace io
} // namespace lazydp

#endif // LAZYDP_IO_CHECKPOINT_H
