/**
 * @file
 * Minimal little-endian binary (de)serialization for checkpoints.
 *
 * Format building blocks only -- framing/versioning lives in
 * checkpoint.cc. All integers are fixed-width little-endian; float
 * arrays are raw IEEE-754 bit patterns.
 */

#ifndef LAZYDP_IO_SERIALIZE_H
#define LAZYDP_IO_SERIALIZE_H

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>

namespace lazydp {
namespace io {

/** Thin writer over a std::ostream; fatal() on stream failure. */
class BinaryWriter
{
  public:
    explicit BinaryWriter(std::ostream &os) : os_(os) {}

    void writeU32(std::uint32_t v);
    void writeU64(std::uint64_t v);
    void writeF32(float v);
    void writeString(const std::string &s);
    void writeF32Array(std::span<const float> data);

    /**
     * Split variant of writeF32Array for sources without a contiguous
     * buffer (tiered tables): writeF32ArrayHeader(n) followed by
     * writeF32Raw chunks totalling n floats produces a byte stream
     * identical to one writeF32Array call.
     */
    void writeF32ArrayHeader(std::uint64_t n);
    void writeF32Raw(std::span<const float> data);

    void writeU32Array(std::span<const std::uint32_t> data);
    void writeU64Array(std::span<const std::uint64_t> data);

  private:
    void writeRaw(const void *data, std::size_t bytes);
    std::ostream &os_;
};

/** Thin reader over a std::istream; fatal() on short reads. */
class BinaryReader
{
  public:
    explicit BinaryReader(std::istream &is) : is_(is) {}

    std::uint32_t readU32();
    std::uint64_t readU64();
    float readF32();
    std::string readString();

    /** Reads exactly data.size() floats into @p data. */
    void readF32Array(std::span<float> data);

    /**
     * Reads data.size() raw floats with NO length prefix -- the
     * chunked counterpart of writeF32Raw. Pair with readLength() to
     * consume a writeF32ArrayHeader'd array incrementally.
     */
    void readF32Raw(std::span<float> data);

    void readU32Array(std::span<std::uint32_t> data);

    /** @return length prefix of the next array without consuming data. */
    std::uint64_t readLength();

  private:
    void readRaw(void *data, std::size_t bytes);
    std::istream &is_;
};

} // namespace io
} // namespace lazydp

#endif // LAZYDP_IO_SERIALIZE_H
