#include "io/serialize.h"

#include <bit>
#include <istream>
#include <ostream>

#include "common/logging.h"

namespace lazydp {
namespace io {

// This code assumes a little-endian host (x86/ARM64 in practice); the
// static_assert documents the portability boundary.
static_assert(std::endian::native == std::endian::little,
              "checkpoint format requires a little-endian host");

void
BinaryWriter::writeRaw(const void *data, std::size_t bytes)
{
    os_.write(static_cast<const char *>(data),
              static_cast<std::streamsize>(bytes));
    if (!os_)
        fatal("checkpoint write failed");
}

void
BinaryWriter::writeU32(std::uint32_t v)
{
    writeRaw(&v, sizeof(v));
}

void
BinaryWriter::writeU64(std::uint64_t v)
{
    writeRaw(&v, sizeof(v));
}

void
BinaryWriter::writeF32(float v)
{
    writeRaw(&v, sizeof(v));
}

void
BinaryWriter::writeString(const std::string &s)
{
    writeU64(s.size());
    writeRaw(s.data(), s.size());
}

void
BinaryWriter::writeF32Array(std::span<const float> data)
{
    writeU64(data.size());
    writeRaw(data.data(), data.size() * sizeof(float));
}

void
BinaryWriter::writeF32ArrayHeader(std::uint64_t n)
{
    writeU64(n);
}

void
BinaryWriter::writeF32Raw(std::span<const float> data)
{
    writeRaw(data.data(), data.size() * sizeof(float));
}

void
BinaryWriter::writeU32Array(std::span<const std::uint32_t> data)
{
    writeU64(data.size());
    writeRaw(data.data(), data.size() * sizeof(std::uint32_t));
}

void
BinaryWriter::writeU64Array(std::span<const std::uint64_t> data)
{
    writeU64(data.size());
    writeRaw(data.data(), data.size() * sizeof(std::uint64_t));
}

void
BinaryReader::readRaw(void *data, std::size_t bytes)
{
    is_.read(static_cast<char *>(data),
             static_cast<std::streamsize>(bytes));
    if (static_cast<std::size_t>(is_.gcount()) != bytes)
        fatal("checkpoint truncated (wanted ", bytes, " bytes)");
}

std::uint32_t
BinaryReader::readU32()
{
    std::uint32_t v = 0;
    readRaw(&v, sizeof(v));
    return v;
}

std::uint64_t
BinaryReader::readU64()
{
    std::uint64_t v = 0;
    readRaw(&v, sizeof(v));
    return v;
}

float
BinaryReader::readF32()
{
    float v = 0.0f;
    readRaw(&v, sizeof(v));
    return v;
}

std::string
BinaryReader::readString()
{
    const std::uint64_t n = readU64();
    if (n > (1u << 20))
        fatal("checkpoint string too long: ", n);
    std::string s(n, '\0');
    readRaw(s.data(), n);
    return s;
}

void
BinaryReader::readF32Array(std::span<float> data)
{
    const std::uint64_t n = readU64();
    if (n != data.size())
        fatal("checkpoint array length ", n, " != expected ",
              data.size());
    readRaw(data.data(), data.size() * sizeof(float));
}

void
BinaryReader::readF32Raw(std::span<float> data)
{
    readRaw(data.data(), data.size() * sizeof(float));
}

void
BinaryReader::readU32Array(std::span<std::uint32_t> data)
{
    const std::uint64_t n = readU64();
    if (n != data.size())
        fatal("checkpoint array length ", n, " != expected ",
              data.size());
    readRaw(data.data(), data.size() * sizeof(std::uint32_t));
}

std::uint64_t
BinaryReader::readLength()
{
    return readU64();
}

} // namespace io
} // namespace lazydp
