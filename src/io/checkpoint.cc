#include "io/checkpoint.h"

#include <algorithm>
#include <fstream>
#include <vector>

#include "common/logging.h"
#include "io/serialize.h"

namespace lazydp {
namespace io {

namespace {

constexpr std::uint32_t kModelMagic = 0x4C445031;    // "LDP1"
constexpr std::uint32_t kTrainingMagic = 0x4C445432; // "LDT2"
constexpr std::uint32_t kVersion = 1;

/** Rows per scratch chunk when streaming a tiered table (~16 MB). */
std::uint64_t
tableChunkRows(std::size_t dim)
{
    return std::max<std::uint64_t>(1, (1u << 22) / dim);
}

void
writeModelBody(BinaryWriter &w, const DlrmModel &model)
{
    const ModelConfig &cfg = model.config();
    w.writeString(cfg.name);
    w.writeU64(cfg.numTables);
    w.writeU64(cfg.embedDim);
    for (std::size_t t = 0; t < cfg.numTables; ++t)
        w.writeU64(cfg.rowsForTable(t));

    for (const auto &table : model.tables()) {
        if (!table.tiered()) {
            w.writeF32Array(
                {table.weights().data(), table.weights().size()});
            continue;
        }
        // Tiered tables have no contiguous buffer: stream through a
        // bounded scratch chunk. copyRowsOut reads resident pages from
        // the hot tier and everything else from the cold file, so the
        // byte stream is identical to an all-DRAM checkpoint.
        const std::size_t dim = table.dim();
        const std::uint64_t rows = table.rows();
        const std::uint64_t chunk = tableChunkRows(dim);
        std::vector<float> scratch(
            static_cast<std::size_t>(std::min(chunk, rows)) * dim);
        w.writeF32ArrayHeader(rows * dim);
        for (std::uint64_t lo = 0; lo < rows; lo += chunk) {
            const std::uint64_t n = std::min(chunk, rows - lo);
            table.copyRowsOut(lo, n, scratch.data());
            w.writeF32Raw({scratch.data(),
                           static_cast<std::size_t>(n) * dim});
        }
    }
    auto write_mlp = [&](const Mlp &mlp) {
        w.writeU64(mlp.layers().size());
        for (const auto &layer : mlp.layers()) {
            w.writeF32Array(
                {layer.weight().data(), layer.weight().size()});
            w.writeF32Array({layer.bias().data(), layer.bias().size()});
        }
    };
    write_mlp(model.bottomMlp());
    write_mlp(model.topMlp());
}

void
readModelBody(BinaryReader &r, DlrmModel &model)
{
    const ModelConfig &cfg = model.config();
    const std::string name = r.readString();
    if (r.readU64() != cfg.numTables)
        fatal("checkpoint '", name, "': table count mismatch");
    if (r.readU64() != cfg.embedDim)
        fatal("checkpoint '", name, "': embedding dim mismatch");
    for (std::size_t t = 0; t < cfg.numTables; ++t) {
        if (r.readU64() != cfg.rowsForTable(t))
            fatal("checkpoint '", name, "': table ", t,
                  " row count mismatch");
    }

    for (auto &table : model.tables()) {
        if (!table.tiered()) {
            r.readF32Array(
                {table.weights().data(), table.weights().size()});
            continue;
        }
        const std::size_t dim = table.dim();
        const std::uint64_t rows = table.rows();
        const std::uint64_t want = rows * dim;
        const std::uint64_t got = r.readLength();
        if (got != want)
            fatal("checkpoint '", name, "': table array length ", got,
                  " != expected ", want);
        const std::uint64_t chunk = tableChunkRows(dim);
        std::vector<float> scratch(
            static_cast<std::size_t>(std::min(chunk, rows)) * dim);
        for (std::uint64_t lo = 0; lo < rows; lo += chunk) {
            const std::uint64_t n = std::min(chunk, rows - lo);
            r.readF32Raw({scratch.data(),
                          static_cast<std::size_t>(n) * dim});
            table.copyRowsIn(lo, n, scratch.data());
        }
    }
    auto read_mlp = [&](Mlp &mlp) {
        if (r.readU64() != mlp.layers().size())
            fatal("checkpoint '", name, "': MLP layer count mismatch");
        for (auto &layer : mlp.layers()) {
            r.readF32Array(
                {layer.weight().data(), layer.weight().size()});
            r.readF32Array({layer.bias().data(), layer.bias().size()});
        }
    };
    read_mlp(model.bottomMlp());
    read_mlp(model.topMlp());
}

std::ofstream
openOut(const std::string &path)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        fatal("cannot open '", path, "' for writing");
    return os;
}

std::ifstream
openIn(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open '", path, "' for reading");
    return is;
}

} // namespace

void
saveModel(const std::string &path, const DlrmModel &model)
{
    auto os = openOut(path);
    BinaryWriter w(os);
    w.writeU32(kModelMagic);
    w.writeU32(kVersion);
    writeModelBody(w, model);
}

void
loadModel(const std::string &path, DlrmModel &model)
{
    auto is = openIn(path);
    BinaryReader r(is);
    if (r.readU32() != kModelMagic)
        fatal("'", path, "' is not a LazyDP model checkpoint");
    if (r.readU32() != kVersion)
        fatal("'", path, "' has an unsupported checkpoint version");
    readModelBody(r, model);
}

void
saveTraining(const std::string &path, const DlrmModel &model,
             const LazyDpAlgorithm &algo, std::uint64_t next_iter)
{
    auto os = openOut(path);
    BinaryWriter w(os);
    w.writeU32(kTrainingMagic);
    w.writeU32(kVersion);
    w.writeU64(next_iter);
    w.writeU64(algo.noiseProvider().seed());
    w.writeU32(algo.ansEnabled() ? 1 : 0);
    writeModelBody(w, model);

    const HistoryTable &history = algo.historyTable();
    w.writeU64(history.numTables());
    for (std::size_t t = 0; t < history.numTables(); ++t)
        w.writeU32Array(history.entries(t));

    // deferred-decay table (present only when weight decay is on)
    const HistoryTable *decay = algo.decayTable();
    w.writeU32(decay != nullptr ? 1 : 0);
    if (decay != nullptr) {
        for (std::size_t t = 0; t < decay->numTables(); ++t)
            w.writeU32Array(decay->entries(t));
    }
}

ResumeInfo
loadTraining(const std::string &path, DlrmModel &model,
             LazyDpAlgorithm &algo)
{
    auto is = openIn(path);
    BinaryReader r(is);
    if (r.readU32() != kTrainingMagic)
        fatal("'", path, "' is not a LazyDP training checkpoint");
    if (r.readU32() != kVersion)
        fatal("'", path, "' has an unsupported checkpoint version");

    ResumeInfo info;
    info.nextIter = r.readU64();
    info.noiseSeed = r.readU64();
    const bool ans = r.readU32() != 0;
    if (info.noiseSeed != algo.noiseProvider().seed()) {
        fatal("checkpoint noise seed ", info.noiseSeed,
              " != algorithm seed ", algo.noiseProvider().seed(),
              " -- resuming would regenerate different deferred noise");
    }
    if (ans != algo.ansEnabled())
        warn("checkpoint ANS mode differs; resuming is still valid "
             "(distributionally) but not bit-identical");

    readModelBody(r, model);

    HistoryTable &history = algo.historyTableMutable();
    if (r.readU64() != history.numTables())
        fatal("checkpoint history table count mismatch");
    for (std::size_t t = 0; t < history.numTables(); ++t)
        r.readU32Array(history.entriesMutable(t));

    const bool has_decay = r.readU32() != 0;
    HistoryTable *decay = algo.decayTableMutable();
    if (has_decay != (decay != nullptr)) {
        fatal("checkpoint weight-decay mode differs from the resuming "
              "algorithm's configuration");
    }
    if (has_decay) {
        for (std::size_t t = 0; t < decay->numTables(); ++t)
            r.readU32Array(decay->entriesMutable(t));
    }
    return info;
}

} // namespace io
} // namespace lazydp
