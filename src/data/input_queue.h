/**
 * @file
 * Two-entry mini-batch lookahead queue (paper Algorithm 1, lines 3-5).
 *
 * LazyDP must know which embedding rows the *next* iteration will gather
 * so it can flush their pending noise first. The queue holds the current
 * mini-batch at the head and the next mini-batch at the tail; exactly
 * one new batch is fetched per iteration, identical to the baseline
 * loaders' I/O volume.
 */

#ifndef LAZYDP_DATA_INPUT_QUEUE_H
#define LAZYDP_DATA_INPUT_QUEUE_H

#include <array>
#include <cstddef>

#include "data/minibatch.h"

namespace lazydp {

/** Fixed-capacity (2) queue of mini-batches with head/tail access. */
class InputQueue
{
  public:
    InputQueue() = default;

    /** @return true when no batches are queued. */
    bool empty() const { return size_ == 0; }

    /** @return number of queued batches (0..2). */
    std::size_t size() const { return size_; }

    /**
     * Append a batch; the queue must not already be full.
     * The batch is moved in (mini-batches own large buffers).
     */
    void push(MiniBatch &&mb);

    /** @return the current iteration's batch (oldest). */
    const MiniBatch &head() const;

    /** @return the next iteration's batch (newest). */
    const MiniBatch &tail() const;

    /** Drop the head batch. */
    void pop();

  private:
    std::array<MiniBatch, 2> slots_;
    std::size_t first_ = 0;
    std::size_t size_ = 0;
};

} // namespace lazydp

#endif // LAZYDP_DATA_INPUT_QUEUE_H
