/**
 * @file
 * Mini-batch lookahead ring (paper Algorithm 1, lines 3-5).
 *
 * LazyDP must know which embedding rows the *next* iteration will gather
 * so it can flush their pending noise first. The queue holds the current
 * mini-batch at the head and up to capacity-1 upcoming batches behind
 * it; exactly one new batch is fetched per iteration, identical to the
 * baseline loaders' I/O volume.
 *
 * Depth 2 (the default) is the paper's serial schedule: current +
 * next. The pipelined Trainer uses depth 3 so the asynchronous
 * prefetch stage can load batch i+2 while iteration i computes and
 * batch i+1 is being prepared against.
 *
 * Slots never move or reallocate after construction, so references
 * returned by head()/at()/tail() stay valid across push() of OTHER
 * slots -- the property the pipelined Trainer relies on when the async
 * stage pushes while the main thread holds a reference to the head.
 */

#ifndef LAZYDP_DATA_INPUT_QUEUE_H
#define LAZYDP_DATA_INPUT_QUEUE_H

#include <cstddef>
#include <vector>

#include "data/minibatch.h"

namespace lazydp {

/** Fixed-capacity ring of mini-batches with indexed FIFO access. */
class InputQueue
{
  public:
    /** @param capacity ring depth (>= 1; 2 = the classic lookahead). */
    explicit InputQueue(std::size_t capacity = 2);

    /** @return true when no batches are queued. */
    bool empty() const { return size_ == 0; }

    /** @return true when all slots are occupied. */
    bool full() const { return size_ == slots_.size(); }

    /** @return number of queued batches (0..capacity). */
    std::size_t size() const { return size_; }

    /** @return ring depth. */
    std::size_t capacity() const { return slots_.size(); }

    /**
     * Append a batch; the queue must not already be full.
     * The batch is moved in (mini-batches own large buffers).
     */
    void push(MiniBatch &&mb);

    /** @return the current iteration's batch (oldest). */
    const MiniBatch &head() const;

    /** @return the @p i-th batch from the head (0 = head). */
    const MiniBatch &at(std::size_t i) const;

    /** @return the newest queued batch. */
    const MiniBatch &tail() const;

    /** Drop the head batch. */
    void pop();

  private:
    std::vector<MiniBatch> slots_;
    std::size_t first_ = 0;
    std::size_t size_ = 0;
};

} // namespace lazydp

#endif // LAZYDP_DATA_INPUT_QUEUE_H
