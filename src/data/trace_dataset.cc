#include "data/trace_dataset.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/macros.h"

namespace lazydp {

TraceDataset::TraceDataset(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open trace '", path, "'");

    std::string header;
    if (!std::getline(is, header))
        fatal("trace '", path, "' is empty");
    {
        std::istringstream hs(header);
        std::string hash, tag, ver;
        hs >> hash >> tag >> ver;
        if (hash != "#" || tag != "lazydp-trace" || ver != "v1")
            fatal("trace '", path, "' has an unrecognized header");
        std::string field;
        while (hs >> field) {
            const auto eq = field.find('=');
            if (eq == std::string::npos)
                fatal("malformed trace header field '", field, "'");
            const std::string key = field.substr(0, eq);
            const auto value =
                static_cast<std::size_t>(std::stoull(field.substr(eq + 1)));
            if (key == "dense")
                numDense_ = value;
            else if (key == "tables")
                numTables_ = value;
            else if (key == "pooling")
                pooling_ = value;
            else
                fatal("unknown trace header key '", key, "'");
        }
    }
    if (numDense_ == 0 || numTables_ == 0 || pooling_ == 0)
        fatal("trace '", path, "' header missing dense/tables/pooling");

    std::string line;
    std::size_t line_no = 1;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        float label = 0.0f;
        char sep = 0;
        if (!(ls >> label >> sep) || sep != '|')
            fatal("trace line ", line_no, ": expected '<label> |'");
        labels_.push_back(label);
        for (std::size_t d = 0; d < numDense_; ++d) {
            float v = 0.0f;
            if (!(ls >> v))
                fatal("trace line ", line_no, ": short dense vector");
            dense_.push_back(v);
        }
        if (!(ls >> sep) || sep != '|')
            fatal("trace line ", line_no, ": expected second '|'");
        for (std::size_t k = 0; k < numTables_ * pooling_; ++k) {
            std::uint32_t idx = 0;
            if (!(ls >> idx))
                fatal("trace line ", line_no, ": short index list");
            indices_.push_back(idx);
        }
    }
    if (labels_.empty())
        fatal("trace '", path, "' contains no examples");
}

void
TraceDataset::fillBatch(std::uint64_t iter, std::size_t batch,
                        MiniBatch &out) const
{
    LAZYDP_ASSERT(batch > 0, "batch must be positive");
    out.resize(batch, numTables_, pooling_, numDense_);
    const std::size_t n = labels_.size();
    for (std::size_t e = 0; e < batch; ++e) {
        const std::size_t src =
            static_cast<std::size_t>((iter * batch + e) % n);
        out.labels[e] = labels_[src];
        for (std::size_t d = 0; d < numDense_; ++d)
            out.dense.at(e, d) = dense_[src * numDense_ + d];
        for (std::size_t t = 0; t < numTables_; ++t) {
            auto dst = out.tableIndices(t);
            for (std::size_t s = 0; s < pooling_; ++s) {
                dst[e * pooling_ + s] =
                    indices_[(src * numTables_ + t) * pooling_ + s];
            }
        }
    }
}

MiniBatch
TraceDataset::batch(std::uint64_t iter, std::size_t batch) const
{
    MiniBatch mb;
    fillBatch(iter, batch, mb);
    return mb;
}

void
TraceDataset::record(const SyntheticDataset &dataset,
                     std::size_t examples, const std::string &path)
{
    std::ofstream os(path, std::ios::trunc);
    if (!os)
        fatal("cannot open '", path, "' for writing");
    const DatasetConfig &cfg = dataset.config();
    os << "# lazydp-trace v1 dense=" << cfg.numDense
       << " tables=" << cfg.numTables << " pooling=" << cfg.pooling
       << "\n";

    MiniBatch mb;
    std::size_t written = 0;
    for (std::uint64_t iter = 0; written < examples; ++iter) {
        dataset.fillBatch(iter, mb);
        for (std::size_t e = 0;
             e < mb.batchSize && written < examples; ++e, ++written) {
            os << mb.labels[e] << " |";
            for (std::size_t d = 0; d < cfg.numDense; ++d)
                os << ' ' << mb.dense.at(e, d);
            os << " |";
            for (std::size_t t = 0; t < cfg.numTables; ++t) {
                auto idx = mb.exampleIndices(t, e);
                for (auto v : idx)
                    os << ' ' << v;
            }
            os << '\n';
        }
    }
    if (!os)
        fatal("trace write to '", path, "' failed");
}

} // namespace lazydp
