#include "data/access_generator.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace lazydp {

AccessConfig
AccessConfig::criteoLow()
{
    // 90% of accesses on 36% of table entries (paper Section 7.3).
    AccessConfig c;
    c.pattern = AccessPattern::HotCold;
    c.hotFrac = 0.36;
    c.hotMass = 0.90;
    return c;
}

AccessConfig
AccessConfig::criteoMedium()
{
    // 90% of accesses on 10% of table entries.
    AccessConfig c;
    c.pattern = AccessPattern::HotCold;
    c.hotFrac = 0.10;
    c.hotMass = 0.90;
    return c;
}

AccessConfig
AccessConfig::criteoHigh()
{
    // 90% of accesses on 0.6% of table entries.
    AccessConfig c;
    c.pattern = AccessPattern::HotCold;
    c.hotFrac = 0.006;
    c.hotMass = 0.90;
    return c;
}

AccessConfig
AccessConfig::uniform()
{
    return AccessConfig{};
}

namespace {

// Helpers for Hörmann/Devroye rejection-inversion Zipf sampling.

/** H(x) = integral of x^-s, generalized to be continuous at s == 1. */
double
zipfH(double x, double s)
{
    const double log_x = std::log(x);
    if (std::abs(1.0 - s) < 1e-12)
        return log_x;
    return std::expm1((1.0 - s) * log_x) / (1.0 - s);
}

/** Inverse of zipfH. */
double
zipfHinv(double x, double s)
{
    if (std::abs(1.0 - s) < 1e-12)
        return std::exp(x);
    return std::exp(std::log1p(x * (1.0 - s)) / (1.0 - s));
}

/** h(x) = x^-s. */
double
zipfh(double x, double s)
{
    return std::exp(-s * std::log(x));
}

} // namespace

AccessGenerator::AccessGenerator(const AccessConfig &config,
                                 std::uint64_t rows)
    : config_(config), rows_(rows)
{
    LAZYDP_ASSERT(rows_ > 0, "table must have at least one row");
    LAZYDP_ASSERT(rows_ <= (1ull << 32), "row indices are 32-bit");

    switch (config_.pattern) {
      case AccessPattern::Uniform:
        break;
      case AccessPattern::HotCold:
        LAZYDP_ASSERT(config_.hotFrac > 0.0 && config_.hotFrac <= 1.0,
                      "hotFrac must be in (0, 1]");
        LAZYDP_ASSERT(config_.hotMass >= 0.0 && config_.hotMass <= 1.0,
                      "hotMass must be in [0, 1]");
        hotRows_ = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   config_.hotFrac * static_cast<double>(rows_)));
        hotRows_ = std::min(hotRows_, rows_);
        break;
      case AccessPattern::Zipf: {
        LAZYDP_ASSERT(config_.zipfS > 0.0, "zipf exponent must be > 0");
        const double s = config_.zipfS;
        const double n = static_cast<double>(rows_);
        zipfHxm_ = zipfH(n + 0.5, s);
        zipfHx0_ = zipfH(1.5, s) - 1.0;
        zipfC_ = 2.0 - zipfHinv(zipfH(2.5, s) - zipfh(2.0, s), s);
        break;
      }
    }
}

std::uint32_t
AccessGenerator::draw(Xoshiro256 &rng) const
{
    switch (config_.pattern) {
      case AccessPattern::Uniform:
        return static_cast<std::uint32_t>(rng.nextBelow(rows_));
      case AccessPattern::HotCold: {
        // Hot rows occupy [0, hotRows_); a permutation is unnecessary
        // because row identity is symmetric in every consumer.
        const double u = rng.nextDouble();
        if (u < config_.hotMass || hotRows_ == rows_)
            return static_cast<std::uint32_t>(rng.nextBelow(hotRows_));
        return static_cast<std::uint32_t>(
            hotRows_ + rng.nextBelow(rows_ - hotRows_));
      }
      case AccessPattern::Zipf:
        return drawZipf(rng);
    }
    LAZYDP_UNREACHABLE("bad AccessPattern");
}

std::uint32_t
AccessGenerator::drawZipf(Xoshiro256 &rng) const
{
    const double s = config_.zipfS;
    const double n = static_cast<double>(rows_);
    // Hörmann & Derflinger rejection-inversion; expected < 1.1 trials.
    for (;;) {
        const double u =
            zipfHxm_ + rng.nextDouble() * (zipfHx0_ - zipfHxm_);
        const double x = zipfHinv(u, s);
        double k = std::floor(x + 0.5);
        k = std::clamp(k, 1.0, n);
        if (k - x <= zipfC_ || u >= zipfH(k + 0.5, s) - zipfh(k, s)) {
            // ranks are 1-based; rank 1 is the hottest row
            return static_cast<std::uint32_t>(k - 1.0);
        }
    }
}

} // namespace lazydp
