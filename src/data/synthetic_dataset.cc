#include "data/synthetic_dataset.h"

#include <cmath>

#include "common/macros.h"

namespace lazydp {

namespace {

/** Mix two 64-bit values into one stream seed (splitmix-style). */
std::uint64_t
mixSeed(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t z = a + 0x9E3779B97F4A7C15ull * (b + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

} // namespace

SyntheticDataset::SyntheticDataset(const DatasetConfig &config)
    : config_(config)
{
    LAZYDP_ASSERT(config_.batchSize > 0, "batch size must be positive");
    LAZYDP_ASSERT(config_.numTables > 0, "need at least one table");
    generators_.reserve(config_.numTables);
    LAZYDP_ASSERT(config_.rowsPerTableVec.empty() ||
                      config_.rowsPerTableVec.size() == config_.numTables,
                  "rowsPerTableVec size mismatch");
    for (std::size_t t = 0; t < config_.numTables; ++t) {
        const std::uint64_t rows = config_.rowsPerTableVec.empty()
                                       ? config_.rowsPerTable
                                       : config_.rowsPerTableVec[t];
        generators_.emplace_back(config_.access, rows);
    }

    // Planted logistic model over dense features: fixed unit-ish weights
    // so the label depends on the inputs and loss can actually decrease.
    Xoshiro256 wrng(mixSeed(config_.seed, 0xFEEDFACEull));
    labelWeights_.resize(config_.numDense);
    for (auto &w : labelWeights_)
        w = static_cast<float>(wrng.nextDouble() * 2.0 - 1.0);
}

void
SyntheticDataset::fillBatch(std::uint64_t iter, MiniBatch &out) const
{
    out.resize(config_.batchSize, config_.numTables, config_.pooling,
               config_.numDense);

    // One RNG per (dataset, iteration): the pure-function property.
    Xoshiro256 rng(mixSeed(config_.seed, iter));

    for (std::size_t e = 0; e < config_.batchSize; ++e) {
        float logit = 0.0f;
        for (std::size_t d = 0; d < config_.numDense; ++d) {
            // approximately standard-normal dense features (sum of
            // uniforms; exact normality is irrelevant here)
            const float v = static_cast<float>(
                (rng.nextDouble() + rng.nextDouble() + rng.nextDouble()) *
                    2.0 - 3.0);
            out.dense.at(e, d) = v;
            logit += labelWeights_[d] * v;
        }
        const double p = 1.0 / (1.0 + std::exp(-logit));
        out.labels[e] = rng.nextDouble() < p ? 1.0f : 0.0f;
    }

    for (std::size_t t = 0; t < config_.numTables; ++t) {
        auto idx = out.tableIndices(t);
        for (std::size_t i = 0; i < idx.size(); ++i)
            idx[i] = generators_[t].draw(rng);
    }
}

MiniBatch
SyntheticDataset::batch(std::uint64_t iter) const
{
    MiniBatch mb;
    fillBatch(iter, mb);
    return mb;
}

} // namespace lazydp
