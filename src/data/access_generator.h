/**
 * @file
 * Embedding-table access-pattern generators.
 *
 * The paper's default workload draws table indices uniformly (Section 6)
 * and its Figure 13(d) sensitivity study uses Criteo-derived datasets
 * where 90% of accesses concentrate on 36% / 10% / 0.6% of the rows
 * (low / medium / high skew). HotCold reproduces those skew CDFs
 * directly; Zipf gives a smooth power-law alternative reported for real
 * RecSys traffic.
 */

#ifndef LAZYDP_DATA_ACCESS_GENERATOR_H
#define LAZYDP_DATA_ACCESS_GENERATOR_H

#include <cstdint>
#include <memory>
#include <vector>

#include "rng/xoshiro.h"

namespace lazydp {

/** Supported access-pattern families. */
enum class AccessPattern
{
    Uniform, //!< every row equally likely (paper default)
    HotCold, //!< hotFrac of rows receive hotMass of accesses
    Zipf     //!< power-law with exponent s
};

/** Configuration of an access-pattern generator. */
struct AccessConfig
{
    AccessPattern pattern = AccessPattern::Uniform;

    /** HotCold: fraction of rows that are hot (e.g. 0.006). */
    double hotFrac = 0.1;

    /** HotCold: fraction of accesses that hit hot rows (e.g. 0.9). */
    double hotMass = 0.9;

    /** Zipf: exponent (s > 0, s != 1 handled; s == 1 approximated). */
    double zipfS = 1.05;

    /** @return the paper's low-skew Criteo dataset (90% -> 36%). */
    static AccessConfig criteoLow();

    /** @return the paper's medium-skew Criteo dataset (90% -> 10%). */
    static AccessConfig criteoMedium();

    /** @return the paper's high-skew Criteo dataset (90% -> 0.6%). */
    static AccessConfig criteoHigh();

    /** @return the paper's default uniform pattern. */
    static AccessConfig uniform();
};

/**
 * Draws row indices in [0, rows) following an AccessConfig.
 *
 * Stateless with respect to the RNG: the caller passes the generator so
 * batch construction can be a pure function of the iteration id.
 */
class AccessGenerator
{
  public:
    /**
     * @param config pattern family and parameters
     * @param rows number of rows in the target table
     */
    AccessGenerator(const AccessConfig &config, std::uint64_t rows);

    /** @return one row index drawn from the configured distribution. */
    std::uint32_t draw(Xoshiro256 &rng) const;

    /** @return number of rows this generator spans. */
    std::uint64_t rows() const { return rows_; }

    /** @return the configuration. */
    const AccessConfig &config() const { return config_; }

  private:
    std::uint32_t drawZipf(Xoshiro256 &rng) const;

    AccessConfig config_;
    std::uint64_t rows_;

    // HotCold precomputation
    std::uint64_t hotRows_ = 0;

    // Zipf rejection-sampling constants (Devroye's method)
    double zipfHxm_ = 0.0;
    double zipfHx0_ = 0.0;
    double zipfC_ = 0.0;
};

} // namespace lazydp

#endif // LAZYDP_DATA_ACCESS_GENERATOR_H
