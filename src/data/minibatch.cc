#include "data/minibatch.h"

#include <cstring>

#include "common/macros.h"

namespace lazydp {

void
MiniBatch::resize(std::size_t batch, std::size_t num_tables,
                  std::size_t pooling_factor, std::size_t num_dense)
{
    batchSize = batch;
    numTables = num_tables;
    pooling = pooling_factor;
    dense.resize(batch, num_dense);
    labels.assign(batch, 0.0f);
    indices.assign(num_tables * batch * pooling_factor, 0);
}

void
MiniBatch::slice(std::size_t lo, std::size_t hi, MiniBatch &out) const
{
    LAZYDP_ASSERT(lo <= hi && hi <= batchSize, "slice out of range");
    const std::size_t n = hi - lo;
    out.batchSize = n;
    out.numTables = numTables;
    out.pooling = pooling;

    out.dense.resizeNoShrink(n, dense.cols());
    out.labels.resize(n);
    out.indices.resize(numTables * n * pooling);
    if (n == 0)
        return; // empty shard of a ragged/tiny lot: shape-only slice
                // (memcpy with a null destination is UB even at size 0)

    std::memcpy(out.dense.data(), dense.data() + lo * dense.cols(),
                n * dense.cols() * sizeof(float));
    std::memcpy(out.labels.data(), labels.data() + lo,
                n * sizeof(float));
    for (std::size_t t = 0; t < numTables; ++t) {
        std::memcpy(out.indices.data() + t * n * pooling,
                    indices.data() + (t * batchSize + lo) * pooling,
                    n * pooling * sizeof(std::uint32_t));
    }
}

std::span<const std::uint32_t>
MiniBatch::tableIndices(std::size_t t) const
{
    LAZYDP_ASSERT(t < numTables, "table index out of range");
    const std::size_t per_table = batchSize * pooling;
    return {indices.data() + t * per_table, per_table};
}

std::span<std::uint32_t>
MiniBatch::tableIndices(std::size_t t)
{
    LAZYDP_ASSERT(t < numTables, "table index out of range");
    const std::size_t per_table = batchSize * pooling;
    return {indices.data() + t * per_table, per_table};
}

std::span<const std::uint32_t>
MiniBatch::exampleIndices(std::size_t t, std::size_t e) const
{
    LAZYDP_ASSERT(t < numTables && e < batchSize, "index out of range");
    const std::size_t per_table = batchSize * pooling;
    return {indices.data() + t * per_table + e * pooling, pooling};
}

} // namespace lazydp
