#include "data/minibatch.h"

#include "common/macros.h"

namespace lazydp {

void
MiniBatch::resize(std::size_t batch, std::size_t num_tables,
                  std::size_t pooling_factor, std::size_t num_dense)
{
    batchSize = batch;
    numTables = num_tables;
    pooling = pooling_factor;
    dense.resize(batch, num_dense);
    labels.assign(batch, 0.0f);
    indices.assign(num_tables * batch * pooling_factor, 0);
}

std::span<const std::uint32_t>
MiniBatch::tableIndices(std::size_t t) const
{
    LAZYDP_ASSERT(t < numTables, "table index out of range");
    const std::size_t per_table = batchSize * pooling;
    return {indices.data() + t * per_table, per_table};
}

std::span<std::uint32_t>
MiniBatch::tableIndices(std::size_t t)
{
    LAZYDP_ASSERT(t < numTables, "table index out of range");
    const std::size_t per_table = batchSize * pooling;
    return {indices.data() + t * per_table, per_table};
}

std::span<const std::uint32_t>
MiniBatch::exampleIndices(std::size_t t, std::size_t e) const
{
    LAZYDP_ASSERT(t < numTables && e < batchSize, "index out of range");
    const std::size_t per_table = batchSize * pooling;
    return {indices.data() + t * per_table + e * pooling, pooling};
}

} // namespace lazydp
