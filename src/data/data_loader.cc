#include "data/data_loader.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace lazydp {

PoissonLoader::PoissonLoader(const SyntheticDataset &dataset,
                             std::uint64_t population,
                             std::size_t expected_batch, std::uint64_t seed)
    : dataset_(dataset),
      population_(population),
      q_(static_cast<double>(expected_batch) /
         static_cast<double>(population)),
      rng_(seed)
{
    LAZYDP_ASSERT(population > 0, "population must be positive");
    LAZYDP_ASSERT(q_ > 0.0 && q_ <= 1.0,
                  "expected batch larger than population");
}

MiniBatch
PoissonLoader::next()
{
    // Draw the included-example count ~ Binomial(population, q) via a
    // normal approximation when the population is large (q*N >> 1 in
    // every configuration we run), clamped to at least one example.
    const double mean = q_ * static_cast<double>(population_);
    const double stddev = std::sqrt(mean * (1.0 - q_));
    // Box-Muller on two uniforms from the loader RNG.
    const double u1 = std::max(rng_.nextDouble(), 1e-12);
    const double u2 = rng_.nextDouble();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    const double size_f = mean + stddev * z;
    const auto size = static_cast<std::size_t>(
        std::clamp(size_f, 1.0, static_cast<double>(population_)));

    // Batch content: deterministic per iteration, truncated/extended to
    // the Poisson-sampled size by regenerating with a derived config.
    MiniBatch base = dataset_.batch(iter_);
    ++iter_;
    if (size == base.batchSize)
        return base;

    MiniBatch out;
    out.resize(size, base.numTables, base.pooling, base.dense.cols());
    for (std::size_t e = 0; e < size; ++e) {
        const std::size_t src = e % base.batchSize;
        for (std::size_t d = 0; d < base.dense.cols(); ++d)
            out.dense.at(e, d) = base.dense.at(src, d);
        out.labels[e] = base.labels[src];
        for (std::size_t t = 0; t < base.numTables; ++t) {
            auto dst_idx = out.tableIndices(t);
            auto src_idx = base.exampleIndices(t, src);
            for (std::size_t s = 0; s < base.pooling; ++s)
                dst_idx[e * base.pooling + s] = src_idx[s];
        }
    }
    return out;
}

} // namespace lazydp
