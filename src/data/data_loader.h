/**
 * @file
 * Mini-batch loaders.
 *
 * SequentialLoader streams batch(0), batch(1), ... from a dataset.
 * PoissonLoader performs Opacus-style Poisson subsampling over a virtual
 * example population: each example is included independently with
 * probability q, which is the sampling assumption under which the RDP
 * accountant's guarantees hold. The RecSys throughput benches use the
 * sequential loader (fixed batch size, matching the paper's methodology);
 * the privacy examples use the Poisson loader.
 */

#ifndef LAZYDP_DATA_DATA_LOADER_H
#define LAZYDP_DATA_DATA_LOADER_H

#include <cstdint>

#include "data/minibatch.h"
#include "data/synthetic_dataset.h"
#include "rng/xoshiro.h"

namespace lazydp {

/** Abstract mini-batch source. */
class DataLoader
{
  public:
    virtual ~DataLoader() = default;

    /** Produce the next mini-batch. */
    virtual MiniBatch next() = 0;

    /** @return number of batches produced so far. */
    virtual std::uint64_t produced() const = 0;
};

/** Streams the dataset's deterministic batches in iteration order. */
class SequentialLoader : public DataLoader
{
  public:
    explicit SequentialLoader(const SyntheticDataset &dataset)
        : dataset_(dataset)
    {
    }

    MiniBatch
    next() override
    {
        return dataset_.batch(iter_++);
    }

    std::uint64_t produced() const override { return iter_; }

  private:
    const SyntheticDataset &dataset_;
    std::uint64_t iter_ = 0;
};

/**
 * Poisson-subsampling loader: emits batches whose size is
 * Binomial(population, q), with q = expected_batch / population.
 */
class PoissonLoader : public DataLoader
{
  public:
    /**
     * @param dataset batch content source
     * @param population virtual number of training examples N
     * @param expected_batch target E[batch] = q * N
     * @param seed sampling seed (independent of dataset seed)
     */
    PoissonLoader(const SyntheticDataset &dataset, std::uint64_t population,
                  std::size_t expected_batch, std::uint64_t seed);

    MiniBatch next() override;

    std::uint64_t produced() const override { return iter_; }

    /** @return the per-example sampling probability q. */
    double samplingRate() const { return q_; }

  private:
    const SyntheticDataset &dataset_;
    std::uint64_t population_;
    double q_;
    Xoshiro256 rng_;
    std::uint64_t iter_ = 0;
};

} // namespace lazydp

#endif // LAZYDP_DATA_DATA_LOADER_H
