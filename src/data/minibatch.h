/**
 * @file
 * Training mini-batch layout for DLRM-style models.
 *
 * A batch carries dense features, per-table sparse index lists with a
 * fixed pooling factor (lookups per table per example, as in MLPerf
 * DLRM), and binary labels.
 */

#ifndef LAZYDP_DATA_MINIBATCH_H
#define LAZYDP_DATA_MINIBATCH_H

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace lazydp {

/** One training mini-batch. */
struct MiniBatch
{
    std::size_t batchSize = 0;  //!< number of examples
    std::size_t numTables = 0;  //!< number of embedding tables
    std::size_t pooling = 1;    //!< lookups per table per example

    Tensor dense;               //!< (batchSize x numDense) features
    std::vector<float> labels;  //!< binary click labels, length batchSize

    /**
     * Sparse indices, layout [table][example][slot]:
     * index of (t, e, s) lives at
     * indices[(t * batchSize + e) * pooling + s].
     */
    std::vector<std::uint32_t> indices;

    /** Allocate storage for the given shape. */
    void resize(std::size_t batch, std::size_t num_tables,
                std::size_t pooling_factor, std::size_t num_dense);

    /**
     * Materialize the examples [lo, hi) of this lot into @p out (dense
     * rows, labels and every table's index block), preserving the
     * standard layout so @p out is a self-contained MiniBatch.
     *
     * This is the lot-sharding primitive of the data-parallel engines:
     * example positions within the slice equal their positions within
     * the lot minus @p lo, so a slice boundary chosen from the lot size
     * alone is position-stable across runs. @p out 's buffers are
     * reused without shrinking (slicing every iteration allocates
     * nothing in steady state).
     */
    void slice(std::size_t lo, std::size_t hi, MiniBatch &out) const;

    /** @return all indices of table @p t (batchSize * pooling entries). */
    std::span<const std::uint32_t> tableIndices(std::size_t t) const;

    /** @return mutable indices of table @p t. */
    std::span<std::uint32_t> tableIndices(std::size_t t);

    /** @return indices of (table @p t, example @p e) (pooling entries). */
    std::span<const std::uint32_t>
    exampleIndices(std::size_t t, std::size_t e) const;
};

} // namespace lazydp

#endif // LAZYDP_DATA_MINIBATCH_H
