#include "data/input_queue.h"

#include "common/macros.h"

namespace lazydp {

InputQueue::InputQueue(std::size_t capacity)
    : slots_(capacity == 0 ? 1 : capacity)
{
    LAZYDP_ASSERT(capacity > 0, "InputQueue capacity must be positive");
}

void
InputQueue::push(MiniBatch &&mb)
{
    LAZYDP_ASSERT(size_ < slots_.size(), "push() on a full InputQueue");
    slots_[(first_ + size_) % slots_.size()] = std::move(mb);
    ++size_;
}

const MiniBatch &
InputQueue::head() const
{
    LAZYDP_ASSERT(size_ > 0, "head() of empty InputQueue");
    return slots_[first_];
}

const MiniBatch &
InputQueue::at(std::size_t i) const
{
    LAZYDP_ASSERT(i < size_, "at() beyond queued batches");
    return slots_[(first_ + i) % slots_.size()];
}

const MiniBatch &
InputQueue::tail() const
{
    LAZYDP_ASSERT(size_ > 0, "tail() of empty InputQueue");
    return slots_[(first_ + size_ - 1) % slots_.size()];
}

void
InputQueue::pop()
{
    LAZYDP_ASSERT(size_ > 0, "pop() of empty InputQueue");
    first_ = (first_ + 1) % slots_.size();
    --size_;
}

} // namespace lazydp
