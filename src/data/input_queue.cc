#include "data/input_queue.h"

#include "common/macros.h"

namespace lazydp {

void
InputQueue::push(MiniBatch &&mb)
{
    LAZYDP_ASSERT(size_ < 2, "InputQueue capacity is two mini-batches");
    slots_[(first_ + size_) % 2] = std::move(mb);
    ++size_;
}

const MiniBatch &
InputQueue::head() const
{
    LAZYDP_ASSERT(size_ > 0, "head() of empty InputQueue");
    return slots_[first_];
}

const MiniBatch &
InputQueue::tail() const
{
    LAZYDP_ASSERT(size_ > 0, "tail() of empty InputQueue");
    return slots_[(first_ + size_ - 1) % 2];
}

void
InputQueue::pop()
{
    LAZYDP_ASSERT(size_ > 0, "pop() of empty InputQueue");
    first_ = (first_ + 1) % 2;
    --size_;
}

} // namespace lazydp
