/**
 * @file
 * Deterministic synthetic click-through datasets.
 *
 * Substitutes the paper's workloads:
 *  - MLPerf DLRM default: uniform table accesses (Section 6);
 *  - Kaggle Criteo DAC: hot/cold skewed accesses matching the
 *    low/medium/high skew CDFs of Section 7.3.
 *
 * Batches are *pure functions of the iteration id*: batch(i) always
 * returns the same contents for a given dataset seed. This gives the
 * LazyDP input queue a consistent view of "the next mini-batch" and
 * makes every experiment reproducible bit-for-bit.
 *
 * Labels are drawn from a planted logistic model over the dense
 * features so training has a real signal to descend on.
 */

#ifndef LAZYDP_DATA_SYNTHETIC_DATASET_H
#define LAZYDP_DATA_SYNTHETIC_DATASET_H

#include <cstdint>
#include <vector>

#include "data/access_generator.h"
#include "data/minibatch.h"

namespace lazydp {

/** Shape and distribution of a synthetic dataset. */
struct DatasetConfig
{
    std::size_t numDense = 13;      //!< dense features (Criteo: 13)
    std::size_t numTables = 26;     //!< sparse features (Criteo: 26)
    std::uint64_t rowsPerTable = 1u << 16; //!< rows per embedding table

    /** Optional per-table rows (empty = uniform rowsPerTable). */
    std::vector<std::uint64_t> rowsPerTableVec;
    std::size_t pooling = 1;        //!< lookups per table per example
    std::size_t batchSize = 2048;   //!< examples per mini-batch
    AccessConfig access;            //!< table-access distribution
    std::uint64_t seed = 0x5EED;    //!< dataset seed
};

/** Deterministic synthetic dataset (see file comment). */
class SyntheticDataset
{
  public:
    /** @param config dataset shape and distributions. */
    explicit SyntheticDataset(const DatasetConfig &config);

    /** Materialize mini-batch @p iter into @p out (pure function). */
    void fillBatch(std::uint64_t iter, MiniBatch &out) const;

    /** Convenience: allocate and fill a fresh mini-batch. */
    MiniBatch batch(std::uint64_t iter) const;

    /** @return dataset configuration. */
    const DatasetConfig &config() const { return config_; }

  private:
    DatasetConfig config_;
    std::vector<AccessGenerator> generators_; // one per table
    std::vector<float> labelWeights_;         // planted logistic model
};

} // namespace lazydp

#endif // LAZYDP_DATA_SYNTHETIC_DATASET_H
