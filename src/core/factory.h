/**
 * @file
 * Name-keyed algorithm factory used by the benches and examples.
 */

#ifndef LAZYDP_CORE_FACTORY_H
#define LAZYDP_CORE_FACTORY_H

#include <memory>
#include <string>
#include <vector>

#include "nn/dlrm.h"
#include "train/algorithm.h"

namespace lazydp {

/**
 * Instantiate a training algorithm by name.
 *
 * Recognized names: "sgd", "dpsgd-b", "dpsgd-r", "dpsgd-f", "eana",
 * "lazydp", "lazydp-noans". fatal() on unknown names.
 */
std::unique_ptr<Algorithm> makeAlgorithm(const std::string &name,
                                         DlrmModel &model,
                                         const TrainHyper &hyper);

/** @return all recognized algorithm names. */
const std::vector<std::string> &algorithmNames();

} // namespace lazydp

#endif // LAZYDP_CORE_FACTORY_H
