/**
 * @file
 * Name-keyed algorithm factory used by the benches and examples.
 */

#ifndef LAZYDP_CORE_FACTORY_H
#define LAZYDP_CORE_FACTORY_H

#include <memory>
#include <string>
#include <vector>

#include "data/access_generator.h"
#include "nn/dlrm.h"
#include "train/algorithm.h"

namespace lazydp {

/**
 * Instantiate a training algorithm by name.
 *
 * Recognized names: "sgd", "dpsgd-b", "dpsgd-r", "dpsgd-f", "eana",
 * "lazydp", "lazydp-noans". fatal() on unknown names.
 */
std::unique_ptr<Algorithm> makeAlgorithm(const std::string &name,
                                         DlrmModel &model,
                                         const TrainHyper &hyper);

/** @return all recognized algorithm names. */
const std::vector<std::string> &algorithmNames();

/**
 * Name-keyed model preset shared by every tool (lazydp_train and
 * lazydp_serve must agree on what "--model=rmc2" means).
 *
 * Recognized names: "mlperf", "mlperf-full", "mlperf-hetero",
 * "rmc1".."rmc3", "tiny". fatal() on unknown names.
 *
 * @param table_bytes total embedding-table budget (ignored by "tiny")
 */
ModelConfig modelPreset(const std::string &name,
                        std::uint64_t table_bytes);

/**
 * Name-keyed access-skew preset shared by every tool.
 *
 * Recognized names: "uniform", "low", "medium", "high" (the paper's
 * Criteo skew CDFs) and "zipf" (the power-law family the serving load
 * generator also draws from). fatal() on unknown names.
 */
AccessConfig accessPreset(const std::string &name);

} // namespace lazydp

#endif // LAZYDP_CORE_FACTORY_H
