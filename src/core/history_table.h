/**
 * @file
 * HistoryTable (paper Section 5.2.1, Algorithm 1 lines 1-2 and 13-16).
 *
 * Tracks, per embedding row, the most recent iteration whose noise has
 * been applied. The naive alternative -- a per-row counter of pending
 * noise updates incremented every iteration -- would itself generate
 * dense write traffic; storing the last-updated iteration id instead
 * means writes happen only for the sparsely accessed rows, and the
 * pending count is recovered as (current_iter - stored_iter).
 *
 * Memory: 4 bytes per embedding row (~751 MB for the paper's 96 GB
 * model, <1% of model size; Section 7.2).
 */

#ifndef LAZYDP_CORE_HISTORY_TABLE_H
#define LAZYDP_CORE_HISTORY_TABLE_H

#include <cstdint>
#include <span>
#include <vector>

namespace lazydp {

/** Per-row last-noise-update iteration ids for all embedding tables. */
class HistoryTable
{
  public:
    /**
     * @param num_tables embedding table count
     * @param rows_per_table rows in each table (uniform)
     */
    HistoryTable(std::size_t num_tables, std::uint64_t rows_per_table);

    /** Heterogeneous variant: one row count per table. */
    explicit HistoryTable(const std::vector<std::uint64_t> &rows);

    /** @return last noised iteration of (table, row); 0 = never. */
    std::uint32_t
    lastNoised(std::size_t table, std::uint64_t row) const
    {
        return entries_[table][row];
    }

    /**
     * For each row in @p rows: delays[i] = iter - H[row], then renew
     * H[row] = iter (Algorithm 1 lines 13-16).
     *
     * @param rows unique row ids about to be accessed next iteration
     * @param iter current iteration id
     * @param delays output, resized to rows.size()
     */
    void delaysAndRenew(std::size_t table,
                        std::span<const std::uint32_t> rows,
                        std::uint64_t iter,
                        std::vector<std::uint32_t> &delays);

    /** Read-only half of delaysAndRenew (Fig 11 instrumentation). */
    void delays(std::size_t table, std::span<const std::uint32_t> rows,
                std::uint64_t iter,
                std::vector<std::uint32_t> &delays) const;

    /** Write half of delaysAndRenew: H[row] = iter for all rows. */
    void renewAll(std::size_t table, std::span<const std::uint32_t> rows,
                  std::uint64_t iter);

    /** Renew a single row without reading (used by the final flush). */
    void
    renew(std::size_t table, std::uint64_t row, std::uint64_t iter)
    {
        entries_[table][row] = static_cast<std::uint32_t>(iter);
    }

    std::size_t numTables() const { return entries_.size(); }

    /** @return rows tracked for table @p t. */
    std::uint64_t
    rowsForTable(std::size_t t) const
    {
        return entries_[t].size();
    }

    /** @return uniform row count (largest table for hetero configs). */
    std::uint64_t rowsPerTable() const { return rowsPerTable_; }

    /** @return raw entries of table @p t (checkpointing). */
    std::span<const std::uint32_t>
    entries(std::size_t t) const
    {
        return {entries_[t].data(), entries_[t].size()};
    }

    /** @return mutable raw entries of table @p t (checkpoint load). */
    std::span<std::uint32_t>
    entriesMutable(std::size_t t)
    {
        return {entries_[t].data(), entries_[t].size()};
    }

    /** @return metadata footprint in bytes (4 B per row). */
    std::uint64_t bytes() const;

  private:
    std::uint64_t rowsPerTable_;
    std::vector<std::vector<std::uint32_t>> entries_;
};

} // namespace lazydp

#endif // LAZYDP_CORE_HISTORY_TABLE_H
