#include "core/factory.h"

#include "common/logging.h"
#include "core/lazydp.h"
#include "dp/dp_sgd_b.h"
#include "dp/dp_sgd_f.h"
#include "dp/dp_sgd_r.h"
#include "dp/eana.h"
#include "train/sgd.h"

namespace lazydp {

std::unique_ptr<Algorithm>
makeAlgorithm(const std::string &name, DlrmModel &model,
              const TrainHyper &hyper)
{
    if (name == "sgd")
        return std::make_unique<SgdAlgorithm>(model, hyper);
    if (name == "dpsgd-b")
        return std::make_unique<DpSgdB>(model, hyper);
    if (name == "dpsgd-r")
        return std::make_unique<DpSgdR>(model, hyper);
    if (name == "dpsgd-f")
        return std::make_unique<DpSgdF>(model, hyper);
    if (name == "eana")
        return std::make_unique<EanaAlgorithm>(model, hyper);
    if (name == "lazydp")
        return std::make_unique<LazyDpAlgorithm>(model, hyper, true);
    if (name == "lazydp-noans")
        return std::make_unique<LazyDpAlgorithm>(model, hyper, false);
    fatal("unknown algorithm '", name, "'");
}

const std::vector<std::string> &
algorithmNames()
{
    static const std::vector<std::string> names = {
        "sgd",    "dpsgd-b", "dpsgd-r",      "dpsgd-f",
        "eana",   "lazydp",  "lazydp-noans",
    };
    return names;
}

ModelConfig
modelPreset(const std::string &name, std::uint64_t table_bytes)
{
    if (name == "mlperf")
        return ModelConfig::mlperfBench(table_bytes);
    if (name == "mlperf-full")
        return ModelConfig::mlperfDlrm(table_bytes);
    if (name == "mlperf-hetero")
        return ModelConfig::mlperfHetero(table_bytes);
    if (name == "rmc1")
        return ModelConfig::rmc1(table_bytes);
    if (name == "rmc2")
        return ModelConfig::rmc2(table_bytes);
    if (name == "rmc3")
        return ModelConfig::rmc3(table_bytes);
    if (name == "tiny")
        return ModelConfig::tiny();
    fatal("unknown model '", name,
          "' (mlperf, mlperf-full, mlperf-hetero, rmc1-3, tiny)");
}

AccessConfig
accessPreset(const std::string &name)
{
    if (name == "uniform")
        return AccessConfig::uniform();
    if (name == "low")
        return AccessConfig::criteoLow();
    if (name == "medium")
        return AccessConfig::criteoMedium();
    if (name == "high")
        return AccessConfig::criteoHigh();
    if (name == "zipf") {
        AccessConfig config;
        config.pattern = AccessPattern::Zipf;
        return config;
    }
    fatal("unknown skew '", name,
          "' (uniform, low, medium, high, zipf)");
}

} // namespace lazydp
