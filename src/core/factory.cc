#include "core/factory.h"

#include "common/logging.h"
#include "core/lazydp.h"
#include "dp/dp_sgd_b.h"
#include "dp/dp_sgd_f.h"
#include "dp/dp_sgd_r.h"
#include "dp/eana.h"
#include "train/sgd.h"

namespace lazydp {

std::unique_ptr<Algorithm>
makeAlgorithm(const std::string &name, DlrmModel &model,
              const TrainHyper &hyper)
{
    if (name == "sgd")
        return std::make_unique<SgdAlgorithm>(model, hyper);
    if (name == "dpsgd-b")
        return std::make_unique<DpSgdB>(model, hyper);
    if (name == "dpsgd-r")
        return std::make_unique<DpSgdR>(model, hyper);
    if (name == "dpsgd-f")
        return std::make_unique<DpSgdF>(model, hyper);
    if (name == "eana")
        return std::make_unique<EanaAlgorithm>(model, hyper);
    if (name == "lazydp")
        return std::make_unique<LazyDpAlgorithm>(model, hyper, true);
    if (name == "lazydp-noans")
        return std::make_unique<LazyDpAlgorithm>(model, hyper, false);
    fatal("unknown algorithm '", name, "'");
}

const std::vector<std::string> &
algorithmNames()
{
    static const std::vector<std::string> names = {
        "sgd",    "dpsgd-b", "dpsgd-r",      "dpsgd-f",
        "eana",   "lazydp",  "lazydp-noans",
    };
    return names;
}

} // namespace lazydp
