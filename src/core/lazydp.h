/**
 * @file
 * LazyDP: the paper's algorithm-software co-design (Section 5).
 *
 * Two optimizations over eager DP-SGD, composed:
 *
 *  1. Lazy noise update -- a row's Gaussian noise is deferred until the
 *     iteration immediately before its next access (discovered through
 *     the next-minibatch lookahead), so the per-iteration table update
 *     is sparse: O(pooling * batch) rows instead of O(table rows).
 *
 *  2. Aggregated noise sampling (ANS) -- the k deferred noise draws of
 *     a row collapse into a single N(0, k sigma^2 C^2) draw
 *     (Theorem 5.1), eliminating the compute bottleneck the deferral
 *     alone leaves behind. Constructible without ANS for the paper's
 *     "LazyDP(w/o ANS)" ablation.
 *
 * finalize() flushes all still-pending noise so the released model is
 * exactly the one eager DP-SGD would have produced (same threat model
 * as Section 3: the adversary sees the final model, not intermediate
 * states).
 *
 * MLP (dense) layers receive the identical DP-SGD(F) treatment.
 *
 * Extension beyond the paper -- lazy weight decay: eager DP-SGD with
 * L2 decay multiplies EVERY row by alpha = 1 - lr*lambda each
 * iteration (a second dense pass). LazyDP defers it: k deferred steps
 * collapse to w *= alpha^k, and the deferred noise picks up geometric
 * weights, sum_j alpha^(i-j) n_j, which under ANS is still ONE draw
 * with variance sigma^2 C^2 (1 - alpha^2k) / (1 - alpha^2). A second
 * per-row iteration table (allocated only when decay is on, sparse
 * writes like the HistoryTable) tracks decay because gradient steps
 * apply their own single-step decay out of band. Exact equivalence
 * with the eager engines is tested.
 */

#ifndef LAZYDP_CORE_LAZYDP_H
#define LAZYDP_CORE_LAZYDP_H

#include <memory>
#include <vector>

#include "core/history_table.h"
#include "dp/dp_engine_base.h"

namespace lazydp {

/**
 * LazyDP's prepared state: per embedding table, the deduplicated
 * next-batch rows, their (lazily aggregated) keyed noise, and -- when
 * deferred weight decay is active -- the per-row pending decay step
 * counts. Everything here derives from batch indices, the HistoryTable
 * and the keyed noise streams; nothing reads model weights, which is
 * what lets the Trainer compute it one iteration ahead.
 */
class LazyDpPrepared : public PreparedStep
{
  public:
    struct TableState
    {
        std::vector<std::uint32_t> nextUnique; //!< sorted next-batch rows
        Tensor noiseVals;                      //!< (|nextUnique| x dim)

        /** Pending decay steps per nextUnique row (decay mode only). */
        std::vector<std::uint32_t> decayDelays;

        /**
         * Pending decay steps per coalesced current-batch row (decay
         * mode only; 0 for rows also in nextUnique, whose decay is
         * covered by decayDelays). Indexed like the SparseGrad row
         * list, which equals the sorted unique current-batch indices.
         */
        std::vector<std::uint32_t> curDecaySteps;
    };

    std::vector<TableState> tables;
};

/** LazyDP training engine. */
class LazyDpAlgorithm : public DpEngineBase
{
  public:
    /**
     * @param model model to train (not owned)
     * @param hyper DP hyperparameters
     * @param use_ans enable aggregated noise sampling (default on)
     */
    LazyDpAlgorithm(DlrmModel &model, const TrainHyper &hyper,
                    bool use_ans = true);

    std::string
    name() const override
    {
        return useAns_ ? "LazyDP" : "LazyDP(w/o ANS)";
    }

    std::unique_ptr<PreparedStep>
    makePrepared() const override
    {
        return std::make_unique<LazyDpPrepared>();
    }

    /**
     * The paper's per-iteration lookahead work (Algorithm 1 lines
     * 11-18), all of it weight-independent: next-batch dedup,
     * HistoryTable delay reads + renewal, ANS stddev derivation and
     * keyed noise sampling -- plus ALL deferred-decay bookkeeping, so
     * the History/decay tables are owned exclusively by prepare() and
     * apply() never races them under the pipelined schedule.
     */
    void prepare(std::uint64_t iter, const MiniBatch &cur,
                 const MiniBatch *next, PreparedStep &out,
                 ExecContext &exec, StageTimer &timer) override;

    double apply(std::uint64_t iter, const MiniBatch &cur,
                 PreparedStep &prepared, ExecContext &exec,
                 StageTimer &timer) override;

    /**
     * Apply every pending noise update through @p last_iter (one dense
     * sweep, once per training run, sharded by embedding row) so the
     * final model matches eager DP-SGD exactly.
     */
    void finalize(std::uint64_t last_iter, ExecContext &exec,
                  StageTimer &timer) override;

    /**
     * LazyDP's merged sparse update list (gradient rows + next-access
     * noise rows) is exactly the set of rows each apply() mutates --
     * the dirty oracle delta snapshot publishing needs. finalize()'s
     * dense catch-up sweep marks everything dirty.
     */
    bool enableDirtyTracking(std::size_t page_rows) override;

    /**
     * Warm the next apply's merged update set: the next batch's rows
     * (its gradient) plus the prepared nextUnique row lists (the rows
     * the iteration AFTER it will access, whose pending noise the next
     * apply flushes). prepare() is the perfect prefetch oracle here --
     * the warm set covers the merged row list exactly. Tiered tables
     * only; otherwise a no-op.
     */
    void warmTier(const MiniBatch &next, const PreparedStep *prep,
                  ThreadPool *pool) override;

    /** @return the metadata structure (tests & overhead bench). */
    const HistoryTable &historyTable() const { return history_; }

    /** Mutable HistoryTable access for checkpoint restore (io/). */
    HistoryTable &historyTableMutable() { return history_; }

    /** @return deferred-decay table, or nullptr when decay is off. */
    const HistoryTable *decayTable() const { return decayed_.get(); }

    /** Mutable decay-table access for checkpoint restore (io/). */
    HistoryTable *decayTableMutable() { return decayed_.get(); }

    /** @return whether ANS is active. */
    bool ansEnabled() const { return useAns_; }

    /** @return bytes of LazyDP-specific metadata (Section 7.2). */
    std::uint64_t metadataBytes() const;

    /**
     * Benchmark support: initialize the HistoryTable as if training had
     * already run for @p start_iter iterations, with per-row pending
     * ages drawn geometrically around @p expected_delay (the
     * steady-state age distribution under uniform accesses). Without
     * this, short measured runs would under-state the w/o-ANS noise
     * sampling volume. Subsequent step() calls must use iteration ids
     * greater than @p start_iter.
     */
    void warmStartHistory(std::uint64_t start_iter, double expected_delay,
                          std::uint64_t seed);

    /** Cumulative sub-components of the LazyOverhead stage (Fig 11). */
    struct OverheadBreakdown
    {
        double dedupSeconds = 0.0;       //!< next-batch index dedup
        double historyReadSeconds = 0.0; //!< delays + ANS stddev derive
        double historyWriteSeconds = 0.0;//!< HistoryTable renewal
    };

    /** @return accumulated overhead sub-stage times. */
    const OverheadBreakdown &overheadBreakdown() const
    {
        return overhead_;
    }

  private:
    /**
     * Prepare-half of one table's lazy update: dedup the next batch,
     * read/renew the History (and decay) tables, and sample the keyed
     * noise into @p pt.
     */
    void prepareTable(std::uint64_t iter, std::size_t t,
                      const MiniBatch &cur, const MiniBatch *next,
                      LazyDpPrepared::TableState &pt, ExecContext &exec,
                      StageTimer &timer);

    /**
     * Apply-half of one table's lazy update: coalesce this iteration's
     * clipped sparse gradient, merge it with the prepared noise, and
     * apply the combined sparse update to table @p t. Merge
     * materialization and the row updates are sharded by embedding row
     * over @p exec; rows are unique within each list, so shards write
     * disjoint rows and the result is identical at any thread count.
     */
    void applyTableUpdate(std::uint64_t iter, std::size_t t,
                          const MiniBatch &cur,
                          LazyDpPrepared::TableState &pt,
                          std::size_t batch, ExecContext &exec,
                          StageTimer &timer);

    bool useAns_;
    HistoryTable history_;
    std::size_t lastBatchSize_ = 0; //!< B, for finalize noise scaling
    OverheadBreakdown overhead_;

    /**
     * Deferred-decay bookkeeping (allocated only when weightDecay > 0):
     * last iteration whose multiplicative decay has been applied to
     * each row. Distinct from the HistoryTable because gradient steps
     * apply their single-step decay immediately while their noise
     * stays pending.
     */
    std::unique_ptr<HistoryTable> decayed_;

    // prepare()-only scratch. Prepares are serialized (the pipeline
    // runs one at a time, in iteration order), so reuse across
    // iterations and tables is race-free.
    std::vector<std::uint32_t> delays_;
    std::vector<std::uint32_t> curUnique_;

    // apply()-only scratch (reused across tables)
    std::vector<std::uint32_t> mergedRows_;
    Tensor mergedVals_;  // (|merged| x dim)
    // Per-merged-row source indices (kNoSource = absent), precomputed
    // during the serial merge so value fill + row update parallelize.
    std::vector<std::uint32_t> mergedGradIdx_;
    std::vector<std::uint32_t> mergedNextIdx_;

    static constexpr std::uint32_t kNoSource = 0xFFFFFFFFu;
};

/** Options of the make-private facade (mirrors paper Figure 9(a)). */
struct LazyDpOptions
{
    float noiseMultiplier = 1.1f; //!< sigma
    float maxGradientNorm = 1.0f; //!< C
    float lr = 0.05f;
    std::uint64_t noiseSeed = 0xD9;
    bool useAns = true;

    /** Fixed lot size for Poisson subsampling (0 = realized batch). */
    std::size_t lotSize = 0;
    GaussianKernel kernel = GaussianKernel::Auto;
};

/**
 * Wrap a model into a LazyDP private trainer -- the C++ analogue of
 * `LazyDP.make_private(module, optimizer, data_loader, ...)`.
 *
 * @param model model to train privately
 * @param options hyperparameters
 * @return an Algorithm to hand to Trainer::run
 */
std::unique_ptr<LazyDpAlgorithm> makePrivate(DlrmModel &model,
                                             const LazyDpOptions &options);

} // namespace lazydp

#endif // LAZYDP_CORE_LAZYDP_H
