#include "core/lazydp.h"

#include <algorithm>
#include <vector>
#include <cmath>

#include "common/macros.h"
#include "kernels/kernel_registry.h"
#include "rng/xoshiro.h"
#include "tensor/simd_kernels.h"

namespace lazydp {

LazyDpAlgorithm::LazyDpAlgorithm(DlrmModel &model, const TrainHyper &hyper,
                                 bool use_ans)
    : DpEngineBase(model, hyper),
      useAns_(use_ans),
      history_([&] {
          std::vector<std::uint64_t> rows(model.config().numTables);
          for (std::size_t t = 0; t < rows.size(); ++t)
              rows[t] = model.config().rowsForTable(t);
          return rows;
      }())
{
    if (hyper.weightDecay != 0.0f) {
        std::vector<std::uint64_t> rows(model.config().numTables);
        for (std::size_t t = 0; t < rows.size(); ++t)
            rows[t] = model.config().rowsForTable(t);
        decayed_ = std::make_unique<HistoryTable>(rows);
    }
}

void
LazyDpAlgorithm::prepare(std::uint64_t iter, const MiniBatch &cur,
                         const MiniBatch *next, PreparedStep &out_base,
                         ExecContext &exec, StageTimer &timer)
{
    auto &out = static_cast<LazyDpPrepared &>(out_base);
    out.iter = iter;
    out.tables.resize(model_.config().numTables);
    for (std::size_t t = 0; t < out.tables.size(); ++t)
        prepareTable(iter, t, cur, next, out.tables[t], exec, timer);
}

void
LazyDpAlgorithm::prepareTable(std::uint64_t iter, std::size_t t,
                              const MiniBatch &cur, const MiniBatch *next,
                              LazyDpPrepared::TableState &pt,
                              ExecContext &exec, StageTimer &timer)
{
    // Rows per shard for the row-parallel noise fill: small enough to
    // spread a few thousand touched rows across a pool, large enough to
    // amortize dispatch. Fixed, so shard boundaries never depend on the
    // thread count.
    constexpr std::size_t kRowGrain = 64;
    const std::size_t dim = model_.tables()[t].dim();
    const auto table_id = static_cast<std::uint32_t>(t);

    // LazyDP bookkeeping (the 15% overhead of Figure 11): deduplicate
    // the next iteration's accesses, derive delayed-update counts from
    // the HistoryTable and renew it (Algorithm 1 lines 11-16).
    timer.start(Stage::LazyOverhead);
    if (next != nullptr) {
        // Sub-timed for the Figure 11 overhead breakdown: (1) dedup of
        // the next batch's indices, (2) HistoryTable read + delay
        // derivation (the ANS stddev inputs), (3) HistoryTable renewal.
        WallTimer sub;
        uniqueRows(next->tableIndices(t), pt.nextUnique);
        overhead_.dedupSeconds += sub.seconds();
        sub.reset();
        history_.delays(t, pt.nextUnique, iter, delays_);
        if (decayed_ != nullptr) {
            decayed_->delays(t, pt.nextUnique, iter, pt.decayDelays);
        }
        overhead_.historyReadSeconds += sub.seconds();
        sub.reset();
        history_.renewAll(t, pt.nextUnique, iter);
        if (decayed_ != nullptr)
            decayed_->renewAll(t, pt.nextUnique, iter);
        overhead_.historyWriteSeconds += sub.seconds();
    } else {
        pt.nextUnique.clear();
        delays_.clear();
        pt.decayDelays.clear();
    }

    // Deferred-decay bookkeeping for the rows accessed THIS iteration
    // but not about to be noise-flushed: their single-step decay is
    // read and recorded here so apply() never touches the decay table
    // (prepare owns all History/decay state -- the pipeline-safety
    // invariant). The coalesced gradient's row list equals the sorted
    // unique current-batch indices, so curDecaySteps indexes align
    // with the SparseGrad built in apply().
    if (decayed_ != nullptr) {
        uniqueRows(cur.tableIndices(t), curUnique_);
        pt.curDecaySteps.assign(curUnique_.size(), 0);
        for (std::size_t i = 0; i < curUnique_.size(); ++i) {
            const std::uint32_t row = curUnique_[i];
            if (std::binary_search(pt.nextUnique.begin(),
                                   pt.nextUnique.end(), row))
                continue; // decay covered by decayDelays in apply()
            pt.curDecaySteps[i] = static_cast<std::uint32_t>(
                iter - decayed_->lastNoised(t, row));
            decayed_->renew(t, row, iter);
        }
    }
    timer.stop();

    // Noise sampling for ONLY the rows about to be accessed
    // (Algorithm 1 lines 17-18 / procedure NoiseSampling).
    timer.start(Stage::NoiseSampling);
    if (!pt.nextUnique.empty()) {
        if (pt.noiseVals.rows() < pt.nextUnique.size() ||
            pt.noiseVals.cols() != dim) {
            pt.noiseVals.resize(pt.nextUnique.size(), dim);
        }
        const float sigma = noiseStddev();
        // Sharded by destination row: every row's draws are keyed by
        // (iteration, table, row), so any shard order -- or the
        // pipeline's serial execution -- yields the same values (the
        // paper's ANS compute bottleneck, spread across cores).
        parallelForShards(
            exec, pt.nextUnique.size(), kRowGrain,
            [&](std::size_t, std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i) {
                    float *dst = pt.noiseVals.data() + i * dim;
                    std::fill(dst, dst + dim, 0.0f);
                    if (delays_[i] == 0)
                        continue; // noised this very iteration already
                    const std::uint64_t from = iter - delays_[i] + 1;
                    if (decayed_ == nullptr) {
                        if (useAns_) {
                            noise_.aggregatedRowNoise(
                                from, iter, table_id, pt.nextUnique[i],
                                sigma, 1.0f, dst, dim);
                        } else {
                            noise_.accumulateRowNoise(
                                from, iter, table_id, pt.nextUnique[i],
                                sigma, 1.0f, dst, dim);
                        }
                    } else {
                        // Deferred decay: pending noises pick up the
                        // geometric weights an eager engine would have
                        // applied.
                        const float alpha = decayAlpha();
                        if (useAns_) {
                            noise_.aggregatedGeometricRowNoise(
                                from, iter, table_id, pt.nextUnique[i],
                                alpha, sigma, 1.0f, dst, dim);
                        } else {
                            noise_.geometricRowNoise(
                                from, iter, table_id, pt.nextUnique[i],
                                alpha, sigma, 1.0f, dst, dim);
                        }
                    }
                }
            });
    }
    timer.stop();
}

double
LazyDpAlgorithm::apply(std::uint64_t iter, const MiniBatch &cur,
                       PreparedStep &prepared, ExecContext &exec,
                       StageTimer &timer)
{
    auto &prep = static_cast<LazyDpPrepared &>(prepared);
    LAZYDP_ASSERT(prep.iter == iter, "prepared state is for another iter");
    const std::size_t batch = cur.batchSize;
    lastBatchSize_ = batch;

    // Lot-sharded clipping machinery identical to DP-SGD(F): per shard,
    // a ghost-norm pass then a reweighted per-batch backward
    // (Algorithm 1 lines 8-10), tree-reduced before the sparse update.
    const double loss = shardedBackward(iter, cur, exec, timer);

    for (std::size_t t = 0; t < model_.config().numTables; ++t)
        applyTableUpdate(iter, t, cur, prep.tables[t], batch, exec,
                         timer);

    // Dense MLP layers: identical DP protection to DP-SGD(F).
    noisyMlpUpdate(iter, batch, exec, timer);
    return loss;
}

void
LazyDpAlgorithm::applyTableUpdate(std::uint64_t iter, std::size_t t,
                                  const MiniBatch &cur,
                                  LazyDpPrepared::TableState &pt,
                                  std::size_t batch, ExecContext &exec,
                                  StageTimer &timer)
{
    (void)iter;
    constexpr std::size_t kRowGrain = 64;
    EmbeddingTable &tbl = model_.tables()[t];
    const std::size_t dim = tbl.dim();

    // Coalesce this iteration's clipped sparse gradient from the
    // lot-wide pooled gradients gathered out of the shard workspaces.
    timer.start(Stage::GradCoalesce);
    SparseGrad &grad = sparseGrads_[t];
    model_.embeddingBackwardFrom(cur, t, lotEmbGrad_[t], grad);
    timer.stop();

    // Merge sparse gradient and sparse (prepared) noise into one update
    // list (Algorithm 1 lines 19-20). Both row lists are sorted. The
    // serial two-pointer walk only builds row ids + source indices; the
    // value materialization and the model update below are then
    // row-parallel.
    timer.start(Stage::NoisyGradGen);
    mergedRows_.clear();
    mergedRows_.reserve(grad.rows.size() + pt.nextUnique.size());
    mergedGradIdx_.clear();
    mergedNextIdx_.clear();
    {
        std::size_t gi = 0, ni = 0;
        while (gi < grad.rows.size() || ni < pt.nextUnique.size()) {
            std::uint32_t row;
            if (ni >= pt.nextUnique.size() ||
                (gi < grad.rows.size() &&
                 grad.rows[gi] <= pt.nextUnique[ni])) {
                row = grad.rows[gi];
            } else {
                row = pt.nextUnique[ni];
            }
            mergedRows_.push_back(row);
            if (gi < grad.rows.size() && grad.rows[gi] == row) {
                mergedGradIdx_.push_back(
                    static_cast<std::uint32_t>(gi));
                ++gi;
            } else {
                mergedGradIdx_.push_back(kNoSource);
            }
            if (ni < pt.nextUnique.size() && pt.nextUnique[ni] == row) {
                mergedNextIdx_.push_back(
                    static_cast<std::uint32_t>(ni));
                ++ni;
            } else {
                mergedNextIdx_.push_back(kNoSource);
            }
        }
    }
    if (mergedVals_.rows() < mergedRows_.size() ||
        mergedVals_.cols() != dim) {
        mergedVals_.resize(std::max<std::size_t>(mergedRows_.size(), 1),
                           dim);
    }
    parallelForShards(
        exec, mergedRows_.size(), kRowGrain,
        [&](std::size_t, std::size_t mlo, std::size_t mhi) {
            for (std::size_t m = mlo; m < mhi; ++m) {
                float *dst = mergedVals_.data() + m * dim;
                const std::uint32_t gi = mergedGradIdx_[m];
                const std::uint32_t ni = mergedNextIdx_[m];
                if (gi != kNoSource) {
                    std::memcpy(dst, grad.values.data() + gi * dim,
                                dim * sizeof(float));
                    if (ni != kNoSource) {
                        simd::add(dst, dst,
                                  pt.noiseVals.data() + ni * dim, dim);
                    }
                } else {
                    std::memcpy(dst, pt.noiseVals.data() + ni * dim,
                                dim * sizeof(float));
                }
            }
        });
    timer.stop();

    // Sparse model update (Algorithm 1 lines 21-25): orders of
    // magnitude less memory traffic than the dense eager update.
    // Merged rows are unique, so shards touch disjoint weight rows.
    timer.start(Stage::NoisyGradUpdate);
    if (dirty_ != nullptr)
        dirty_->markRows(t, mergedRows_);
    const float step_scale = hyper_.lr / normDenominator(batch);
    // Out-of-core tables: promote the whole merged row set before the
    // row-parallel update (residency mutations are training-thread
    // only). Steady state finds the pages already hot -- warmed by the
    // lookahead warm task fed from prepare()'s nextUnique.
    if (tbl.tiered())
        tbl.ensureResident(mergedRows_);
    if (decayed_ == nullptr) {
        const KernelTable &kt = kernels();
        if (tbl.tiered()) {
            // Per-row axpy through the page table: both scatter
            // backends are exactly this per-row loop, so the update is
            // bit-identical to the dense scatter branch below.
            parallelForShards(
                exec, mergedRows_.size(), kRowGrain,
                [&](std::size_t, std::size_t mlo, std::size_t mhi) {
                    for (std::size_t m = mlo; m < mhi; ++m) {
                        kt.axpy(tbl.rowPtr(mergedRows_[m]),
                                mergedVals_.data() + m * dim, dim,
                                -step_scale);
                    }
                });
        } else {
            // Merged rows are unique and sorted, so each shard hands
            // its sub-range straight to the no-alias scatter kernel.
            parallelForShards(
                exec, mergedRows_.size(), kRowGrain,
                [&](std::size_t, std::size_t mlo, std::size_t mhi) {
                    kt.scatterAxpyRows(tbl.weights().data(),
                                       mergedRows_.data() + mlo,
                                       mergedVals_.data() + mlo * dim,
                                       mhi - mlo, dim, -step_scale);
                });
        }
    } else {
        // With deferred decay: each merged row is first scaled by
        // alpha^(pending decay steps), then receives its (already
        // geometrically weighted) noise plus this iteration's gradient.
        // All decay-step counts were derived (and the decay table
        // renewed) in prepare(); a grad-only row's single-step decay
        // happens here while the gradient itself is not decayed,
        // matching the eager ordering w <- a*w - lr/B*(g+n).
        // curDecaySteps was indexed by prepare's own dedup of cur,
        // which must coincide with the coalesced gradient's row list.
        LAZYDP_ASSERT(pt.curDecaySteps.size() == grad.rows.size(),
                      "prepared decay steps diverge from gradient rows");
        const float alpha = decayAlpha();
        parallelForShards(
            exec, mergedRows_.size(), kRowGrain,
            [&](std::size_t, std::size_t mlo, std::size_t mhi) {
                for (std::size_t m = mlo; m < mhi; ++m) {
                    const std::uint32_t row = mergedRows_[m];
                    const bool in_next = mergedNextIdx_[m] != kNoSource;
                    const bool in_grad = mergedGradIdx_[m] != kNoSource;
                    std::uint64_t decay_steps =
                        in_next ? pt.decayDelays[mergedNextIdx_[m]] : 0;
                    if (in_grad && !in_next)
                        decay_steps = pt.curDecaySteps[mergedGradIdx_[m]];
                    if (decay_steps > 0) {
                        simd::scale(
                            tbl.rowPtr(row), dim,
                            std::pow(alpha, static_cast<float>(
                                                decay_steps)));
                    }
                    simd::axpy(tbl.rowPtr(row),
                               mergedVals_.data() + m * dim, dim,
                               -step_scale);
                }
            });
    }
    timer.stop();
}

void
LazyDpAlgorithm::warmTier(const MiniBatch &next, const PreparedStep *prep,
                          ThreadPool *pool)
{
    if (!model_.tiered() || pool == nullptr)
        return;
    const auto *lp = static_cast<const LazyDpPrepared *>(prep);
    for (std::size_t t = 0; t < model_.config().numTables; ++t) {
        const auto idx = next.tableIndices(t);
        std::vector<std::uint32_t> rows(idx.begin(), idx.end());
        if (lp != nullptr && t < lp->tables.size()) {
            const auto &nu = lp->tables[t].nextUnique;
            rows.insert(rows.end(), nu.begin(), nu.end());
        }
        model_.tables()[t].warmRowsAsync(pool, std::move(rows));
    }
}

bool
LazyDpAlgorithm::enableDirtyTracking(std::size_t page_rows)
{
    if (dirty_ == nullptr || dirty_->pageRows() != page_rows)
        dirty_ = DirtyRowTracker::forModel(model_.config(), page_rows);
    return true;
}

void
LazyDpAlgorithm::finalize(std::uint64_t last_iter, ExecContext &exec,
                          StageTimer &timer)
{
    if (last_iter == 0)
        return;
    // The dense catch-up sweep below touches every row of every table
    // -- outside the sparse oracle's vocabulary, so the whole model is
    // dirty for the next publish.
    if (dirty_ != nullptr)
        dirty_->markAllDirty();
    // One dense catch-up sweep: every row receives its pending noise so
    // the released model equals the eager DP-SGD model. Amortized over
    // the whole training run; attributed to Else (not a per-iteration
    // stage of the paper's figures). Sharded by embedding row: each
    // row's flush touches only its own weights and HistoryTable entry.
    timer.start(Stage::Else);
    const float sigma = noiseStddev();
    // The per-iteration noise scaling used throughout training.
    const float step_scale =
        hyper_.lr /
        normDenominator(lastBatchSize_ == 0 ? 1 : lastBatchSize_);
    for (std::size_t t = 0; t < model_.config().numTables; ++t) {
        EmbeddingTable &tbl = model_.tables()[t];
        const std::size_t dim = tbl.dim();
        const auto table_id = static_cast<std::uint32_t>(t);
        parallelForShards(
            exec, tbl.rows(), 4096,
            [&](std::size_t, std::size_t rlo, std::size_t rhi) {
                for (std::uint64_t r = rlo; r < rhi; ++r) {
                    const std::uint32_t last = history_.lastNoised(t, r);
                    if (decayed_ != nullptr) {
                        const std::uint32_t last_decay =
                            decayed_->lastNoised(t, r);
                        if (last_decay < last_iter) {
                            simd::scale(
                                tbl.rowPtr(r), dim,
                                std::pow(decayAlpha(),
                                         static_cast<float>(
                                             last_iter - last_decay)));
                            decayed_->renew(t, r, last_iter);
                        }
                    }
                    if (last >= last_iter)
                        continue;
                    if (decayed_ == nullptr) {
                        if (useAns_) {
                            noise_.aggregatedRowNoise(
                                last + 1, last_iter, table_id, r, sigma,
                                -step_scale, tbl.rowPtr(r), dim);
                        } else {
                            noise_.accumulateRowNoise(
                                last + 1, last_iter, table_id, r, sigma,
                                -step_scale, tbl.rowPtr(r), dim);
                        }
                    } else {
                        if (useAns_) {
                            noise_.aggregatedGeometricRowNoise(
                                last + 1, last_iter, table_id, r,
                                decayAlpha(), sigma, -step_scale,
                                tbl.rowPtr(r), dim);
                        } else {
                            noise_.geometricRowNoise(
                                last + 1, last_iter, table_id, r,
                                decayAlpha(), sigma, -step_scale,
                                tbl.rowPtr(r), dim);
                        }
                    }
                    history_.renew(t, r, last_iter);
                }
            });
    }
    timer.stop();
}

void
LazyDpAlgorithm::warmStartHistory(std::uint64_t start_iter,
                                  double expected_delay,
                                  std::uint64_t seed)
{
    LAZYDP_ASSERT(expected_delay >= 1.0, "expected delay below one");
    Xoshiro256 rng(seed);
    const double p = 1.0 / expected_delay;
    const double log1mp = std::log1p(-std::min(p, 0.999999));
    for (std::size_t t = 0; t < history_.numTables(); ++t) {
        for (std::uint64_t r = 0; r < history_.rowsForTable(t); ++r) {
            // age ~ 1 + Geometric(p): stationary gap since the last
            // lazy noise flush under uniform accesses
            const double u = std::max(rng.nextDouble(), 1e-12);
            auto age = static_cast<std::uint64_t>(
                           1.0 + std::log(u) / log1mp);
            age = std::min(age, start_iter);
            history_.renew(t, r, start_iter - age);
        }
    }
}

std::uint64_t
LazyDpAlgorithm::metadataBytes() const
{
    return history_.bytes();
}

std::unique_ptr<LazyDpAlgorithm>
makePrivate(DlrmModel &model, const LazyDpOptions &options)
{
    TrainHyper hyper;
    hyper.lr = options.lr;
    hyper.clipNorm = options.maxGradientNorm;
    hyper.noiseMultiplier = options.noiseMultiplier;
    hyper.noiseSeed = options.noiseSeed;
    hyper.lotSize = options.lotSize;
    hyper.kernel = options.kernel;
    return std::make_unique<LazyDpAlgorithm>(model, hyper,
                                             options.useAns);
}

} // namespace lazydp
