#include "core/history_table.h"

#include <algorithm>

#include "common/macros.h"

namespace lazydp {

HistoryTable::HistoryTable(std::size_t num_tables,
                           std::uint64_t rows_per_table)
    : rowsPerTable_(rows_per_table)
{
    LAZYDP_ASSERT(num_tables > 0 && rows_per_table > 0,
                  "degenerate history table");
    entries_.resize(num_tables);
    for (auto &t : entries_)
        t.assign(rows_per_table, 0);
}

HistoryTable::HistoryTable(const std::vector<std::uint64_t> &rows)
    : rowsPerTable_(0)
{
    LAZYDP_ASSERT(!rows.empty(), "degenerate history table");
    entries_.resize(rows.size());
    for (std::size_t t = 0; t < rows.size(); ++t) {
        LAZYDP_ASSERT(rows[t] > 0, "table with zero rows");
        entries_[t].assign(rows[t], 0);
        rowsPerTable_ = std::max<std::uint64_t>(rowsPerTable_, rows[t]);
    }
}

void
HistoryTable::delaysAndRenew(std::size_t table,
                             std::span<const std::uint32_t> rows,
                             std::uint64_t iter,
                             std::vector<std::uint32_t> &delays)
{
    LAZYDP_ASSERT(table < entries_.size(), "table out of range");
    LAZYDP_ASSERT(iter < (1ull << 32), "iteration id exceeds 32 bits");
    auto &h = entries_[table];
    delays.resize(rows.size());
    const auto it32 = static_cast<std::uint32_t>(iter);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const std::uint32_t row = rows[i];
        LAZYDP_ASSERT(row < h.size(), "row out of range");
        LAZYDP_ASSERT(h[row] <= it32, "history ahead of current iteration");
        delays[i] = it32 - h[row];
        h[row] = it32;
    }
}

void
HistoryTable::delays(std::size_t table,
                     std::span<const std::uint32_t> rows,
                     std::uint64_t iter,
                     std::vector<std::uint32_t> &delays) const
{
    LAZYDP_ASSERT(table < entries_.size(), "table out of range");
    LAZYDP_ASSERT(iter < (1ull << 32), "iteration id exceeds 32 bits");
    const auto &h = entries_[table];
    delays.resize(rows.size());
    const auto it32 = static_cast<std::uint32_t>(iter);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const std::uint32_t row = rows[i];
        LAZYDP_ASSERT(row < h.size(), "row out of range");
        LAZYDP_ASSERT(h[row] <= it32, "history ahead of current iteration");
        delays[i] = it32 - h[row];
    }
}

void
HistoryTable::renewAll(std::size_t table,
                       std::span<const std::uint32_t> rows,
                       std::uint64_t iter)
{
    LAZYDP_ASSERT(table < entries_.size(), "table out of range");
    auto &h = entries_[table];
    const auto it32 = static_cast<std::uint32_t>(iter);
    for (const std::uint32_t row : rows)
        h[row] = it32;
}

std::uint64_t
HistoryTable::bytes() const
{
    std::uint64_t total = 0;
    for (const auto &t : entries_)
        total += t.size() * sizeof(std::uint32_t);
    return total;
}

} // namespace lazydp
