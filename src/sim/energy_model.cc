#include "sim/energy_model.h"

namespace lazydp {

double
EnergyModel::stageWatts(Stage s) const
{
    switch (s) {
      case Stage::Forward:
      case Stage::BackwardPerExample:
      case Stage::BackwardPerBatch:
      case Stage::NoiseSampling:
        return spec_.computeWatts;
      case Stage::GradCoalesce:
      case Stage::NoisyGradGen:
      case Stage::NoisyGradUpdate:
        return spec_.memoryWatts;
      case Stage::LazyOverhead:
      case Stage::Else:
      default:
        return spec_.baseWatts;
    }
}

double
EnergyModel::joules(const StageTimer &timer) const
{
    double total = 0.0;
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(Stage::NumStages); ++i) {
        const auto s = static_cast<Stage>(i);
        total += timer.seconds(s) * stageWatts(s);
    }
    return total;
}

} // namespace lazydp
