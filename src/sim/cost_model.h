/**
 * @file
 * Analytical roofline cost model for DP-SGD's model-update stage.
 *
 * Purpose: the paper evaluates table sizes up to 192 GB; this host has
 * 21 GB of DRAM. The benches therefore measure real executions at every
 * size that fits and use this model -- calibrated against those same
 * real executions -- to extend each figure's series to the paper's full
 * sizes. Modeled rows are always labelled `modeled` in bench output.
 *
 * Model (per training iteration, per table of E elements / S bytes):
 *   noise sampling  : E / gaussianRate                 (compute bound)
 *   noisy grad gen  : touched_bytes / memBandwidth     (sparse scatter)
 *   noisy update    : 3 * S / memBandwidth             (stream r+r+w)
 * All other stages (fwd, bwd, coalesce) are size-independent and taken
 * from a measured run at a feasible size.
 */

#ifndef LAZYDP_SIM_COST_MODEL_H
#define LAZYDP_SIM_COST_MODEL_H

#include <cstdint>

#include "common/timer.h"
#include "nn/model_config.h"
#include "sim/machine_spec.h"

namespace lazydp {

/** Stage-level latency predictions (seconds per iteration). */
struct ModeledUpdate
{
    double noiseSampling = 0.0;
    double noisyGradGen = 0.0;
    double noisyGradUpdate = 0.0;

    double
    total() const
    {
        return noiseSampling + noisyGradGen + noisyGradUpdate;
    }
};

/** Roofline cost model over a MachineSpec. */
class CostModel
{
  public:
    explicit CostModel(const MachineSpec &spec) : spec_(spec) {}

    /**
     * Model-update cost of ONE eager DP-SGD iteration over all tables.
     *
     * @param total_table_bytes sum of all embedding-table bytes
     * @param touched_rows rows receiving gradient (batch*pooling*tables)
     * @param embed_dim embedding dimension
     */
    ModeledUpdate eagerUpdate(std::uint64_t total_table_bytes,
                              std::uint64_t touched_rows,
                              std::size_t embed_dim) const;

    /**
     * Model-update cost of ONE LazyDP iteration: noise and update touch
     * only ~2x the accessed rows (current grads + next lookahead).
     *
     * @param use_ans with ANS, one draw per pending row; without, the
     *        expected number of pending draws equals one full table's
     *        worth per iteration in steady state (total samples remain
     *        E per iteration on average)
     * @param total_table_elems total embedding elements (for w/o-ANS
     *        steady-state sampling volume)
     */
    ModeledUpdate lazyUpdate(std::uint64_t touched_rows,
                             std::size_t embed_dim, bool use_ans,
                             std::uint64_t total_table_elems) const;

    /**
     * Extend a measured per-iteration time to a larger table size:
     * replaces the measured update-stage seconds with modeled ones.
     *
     * @param measured measured stage times at a feasible size
     * @param measured_table_bytes table bytes of the measured run
     * @param target_table_bytes table bytes to extrapolate to
     * @param touched_rows gradient rows per iteration
     * @param embed_dim embedding dimension
     * @return predicted per-iteration seconds at the target size
     */
    double extrapolateEagerSeconds(const StageTimer &measured,
                                   std::uint64_t measured_iters,
                                   std::uint64_t target_table_bytes,
                                   std::uint64_t touched_rows,
                                   std::size_t embed_dim) const;

    const MachineSpec &spec() const { return spec_; }

  private:
    MachineSpec spec_;
};

} // namespace lazydp

#endif // LAZYDP_SIM_COST_MODEL_H
