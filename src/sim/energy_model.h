/**
 * @file
 * Stage-based energy model (paper Figure 12 substitution).
 *
 * The paper measures wall power with pcm-power / nvidia-smi and
 * multiplies by training time. This host exposes no power counters, so
 * energy is modeled as sum over stages of stage_time * stage_power,
 * with compute-bound stages billed at the compute power level and
 * memory-bound stages at the memory power level. Because DP-SGD's
 * energy gap is dominated by its 100-300x time gap (power varies by
 * <2x), the figure's shape is preserved under this substitution.
 */

#ifndef LAZYDP_SIM_ENERGY_MODEL_H
#define LAZYDP_SIM_ENERGY_MODEL_H

#include "common/timer.h"
#include "sim/machine_spec.h"

namespace lazydp {

/** Maps a StageTimer breakdown to joules via a MachineSpec. */
class EnergyModel
{
  public:
    explicit EnergyModel(const MachineSpec &spec) : spec_(spec) {}

    /** @return power level (watts) billed to stage @p s. */
    double stageWatts(Stage s) const;

    /** @return modeled energy of the whole run (joules). */
    double joules(const StageTimer &timer) const;

  private:
    MachineSpec spec_;
};

} // namespace lazydp

#endif // LAZYDP_SIM_ENERGY_MODEL_H
