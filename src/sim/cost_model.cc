#include "sim/cost_model.h"

namespace lazydp {

ModeledUpdate
CostModel::eagerUpdate(std::uint64_t total_table_bytes,
                       std::uint64_t touched_rows,
                       std::size_t embed_dim) const
{
    ModeledUpdate m;
    const double elems =
        static_cast<double>(total_table_bytes) / sizeof(float);
    m.noiseSampling = elems / spec_.gaussianRate;
    // Sparse scatter of the clipped gradient into the dense tensor:
    // read+write of touched rows.
    m.noisyGradGen = static_cast<double>(touched_rows) *
                     static_cast<double>(embed_dim) * sizeof(float) *
                     2.0 / spec_.memBandwidth;
    // Streaming update: read update tensor, read weights, write weights.
    m.noisyGradUpdate =
        static_cast<double>(total_table_bytes) * 3.0 / spec_.memBandwidth;
    return m;
}

ModeledUpdate
CostModel::lazyUpdate(std::uint64_t touched_rows, std::size_t embed_dim,
                      bool use_ans,
                      std::uint64_t total_table_elems) const
{
    ModeledUpdate m;
    const double row_bytes =
        static_cast<double>(embed_dim) * sizeof(float);
    // Noise is sampled only for rows about to be accessed.
    if (use_ans) {
        m.noiseSampling = static_cast<double>(touched_rows) *
                          static_cast<double>(embed_dim) /
                          spec_.gaussianRate;
    } else {
        // Without ANS every deferred draw is still sampled; in steady
        // state the expected sampling volume per iteration equals the
        // eager volume (each row accrues one pending draw per
        // iteration), which is why lazy-without-ANS stays slow
        // (Figure 8).
        m.noiseSampling =
            static_cast<double>(total_table_elems) / spec_.gaussianRate;
    }
    // Merge + sparse update traffic: ~2x touched rows (grad + noise),
    // read+write each.
    m.noisyGradGen = static_cast<double>(touched_rows) * row_bytes * 2.0 /
                     spec_.memBandwidth;
    m.noisyGradUpdate = static_cast<double>(touched_rows) * row_bytes *
                        2.0 * 2.0 / spec_.memBandwidth;
    return m;
}

double
CostModel::extrapolateEagerSeconds(const StageTimer &measured,
                                   std::uint64_t measured_iters,
                                   std::uint64_t target_table_bytes,
                                   std::uint64_t touched_rows,
                                   std::size_t embed_dim) const
{
    const double iters = static_cast<double>(measured_iters);
    // Size-independent stages carried over from the measurement.
    const double fixed =
        (measured.seconds(Stage::Forward) +
         measured.seconds(Stage::BackwardPerExample) +
         measured.seconds(Stage::BackwardPerBatch) +
         measured.seconds(Stage::GradCoalesce) +
         measured.seconds(Stage::LazyOverhead) +
         measured.seconds(Stage::Else)) /
        iters;
    const ModeledUpdate upd =
        eagerUpdate(target_table_bytes, touched_rows, embed_dim);
    return fixed + upd.total();
}

} // namespace lazydp
