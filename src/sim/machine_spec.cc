#include "sim/machine_spec.h"

#include <cstddef>
#include <vector>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "rng/noise_provider.h"
#include "tensor/simd_kernels.h"
#include "tensor/tensor.h"

namespace lazydp {

MachineSpec
MachineSpec::paperXeon()
{
    return MachineSpec{};
}

namespace {

MachineSpec
measureHost()
{
    MachineSpec spec;

    // Calibration wants the machine's full throughput, independent of
    // whatever --threads the caller picked for training: use a local
    // pool at hardware width.
    ThreadPool pool(hardwareThreads());
    ExecContext exec(&pool);

    // Working set large enough to defeat the LLC (~256 MB).
    const std::size_t n = 64u << 20;
    Tensor a(1, n);
    Tensor b(1, n);

    // Memory bandwidth: y += c*x streams 3 words per element
    // (read x, read y, write y).
    {
        WallTimer t;
        const int reps = 3;
        for (int r = 0; r < reps; ++r) {
            parallelForShards(
                exec, n, n / 64,
                [&](std::size_t, std::size_t lo, std::size_t hi) {
                    simd::axpy(a.data() + lo, b.data() + lo, hi - lo,
                               0.5f);
                });
        }
        const double secs = t.seconds();
        spec.memBandwidth =
            static_cast<double>(n) * sizeof(float) * 3.0 * reps / secs;
    }

    // Gaussian sampling rate with the production keyed kernel.
    {
        NoiseProvider np(0xCA11B, GaussianKernel::Auto);
        const std::size_t rows = n / 128;
        WallTimer t;
        parallelFor(exec, rows, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t r = lo; r < hi; ++r) {
                np.rowNoise(1, 0, r, 1.0f, 1.0f, a.data() + r * 128,
                            128, false);
            }
        });
        spec.gaussianRate = static_cast<double>(n) / t.seconds();
    }

    // Effective AVX peak: the Figure 6 kernel at large N.
    {
        const int n_ops = 100;
        const std::size_t m = 4u << 20;
        WallTimer t;
        // Per-shard flop counts merged after the barrier (integer sums,
        // but the ordered merge keeps the pattern uniform).
        std::vector<std::size_t> flops_per(16, 0);
        parallelForShards(
            exec, m, m / 16,
            [&](std::size_t s, std::size_t lo, std::size_t hi) {
                flops_per[s] = simd::streamWithOps(
                    a.data() + lo, b.data() + lo, hi - lo, n_ops);
            });
        std::size_t flops = 0;
        for (const std::size_t f : flops_per)
            flops += f;
        spec.avxPeakFlops = static_cast<double>(flops) / t.seconds();
    }

    // Power figures stay at the paper-class defaults; this host has no
    // power counters (pcm-power substitution, see DESIGN.md).
    return spec;
}

} // namespace

const MachineSpec &
MachineSpec::calibratedHost()
{
    static const MachineSpec spec = measureHost();
    return spec;
}

} // namespace lazydp
