#include "sim/machine_spec.h"

#include <cstddef>

#include "common/timer.h"
#include "rng/noise_provider.h"
#include "tensor/simd_kernels.h"
#include "tensor/tensor.h"

namespace lazydp {

MachineSpec
MachineSpec::paperXeon()
{
    return MachineSpec{};
}

namespace {

MachineSpec
measureHost()
{
    MachineSpec spec;

    // Working set large enough to defeat the LLC (~256 MB).
    const std::size_t n = 64u << 20;
    Tensor a(1, n);
    Tensor b(1, n);

    // Memory bandwidth: y += c*x streams 3 words per element
    // (read x, read y, write y).
    {
        WallTimer t;
        const int reps = 3;
        for (int r = 0; r < reps; ++r) {
#pragma omp parallel for schedule(static)
            for (std::size_t blk = 0; blk < 64; ++blk) {
                const std::size_t lo = blk * (n / 64);
                simd::axpy(a.data() + lo, b.data() + lo, n / 64, 0.5f);
            }
        }
        const double secs = t.seconds();
        spec.memBandwidth =
            static_cast<double>(n) * sizeof(float) * 3.0 * reps / secs;
    }

    // Gaussian sampling rate with the production keyed kernel.
    {
        NoiseProvider np(0xCA11B, GaussianKernel::Auto);
        const std::size_t rows = n / 128;
        WallTimer t;
#pragma omp parallel for schedule(static)
        for (std::size_t r = 0; r < rows; ++r) {
            np.rowNoise(1, 0, r, 1.0f, 1.0f, a.data() + r * 128, 128,
                        false);
        }
        spec.gaussianRate = static_cast<double>(n) / t.seconds();
    }

    // Effective AVX peak: the Figure 6 kernel at large N.
    {
        const int n_ops = 100;
        const std::size_t m = 4u << 20;
        WallTimer t;
        std::size_t flops = 0;
#pragma omp parallel for schedule(static) reduction(+ : flops)
        for (std::size_t blk = 0; blk < 16; ++blk) {
            const std::size_t lo = blk * (m / 16);
            flops += simd::streamWithOps(a.data() + lo, b.data() + lo,
                                         m / 16, n_ops);
        }
        spec.avxPeakFlops = static_cast<double>(flops) / t.seconds();
    }

    // Power figures stay at the paper-class defaults; this host has no
    // power counters (pcm-power substitution, see DESIGN.md).
    return spec;
}

} // namespace

const MachineSpec &
MachineSpec::calibratedHost()
{
    static const MachineSpec spec = measureHost();
    return spec;
}

} // namespace lazydp
