/**
 * @file
 * Training-machine performance/power description.
 *
 * Substitutes the paper's measured testbed (Xeon E5-2698v4, 68 GB/s
 * DDR4, V100): the cost and energy models consume either the paper's
 * published figures or numbers *calibrated on this host* by running the
 * actual noise-sampling and streaming-update kernels.
 */

#ifndef LAZYDP_SIM_MACHINE_SPEC_H
#define LAZYDP_SIM_MACHINE_SPEC_H

#include <cstdint>

namespace lazydp {

/** Performance and power envelope of a training machine. */
struct MachineSpec
{
    /** Sustained memory bandwidth for streaming updates (bytes/s). */
    double memBandwidth = 68e9;

    /** Gaussian noise-sampling throughput (samples/s, all cores). */
    double gaussianRate = 2e9;

    /** Peak effective AVX throughput (FLOPS, all cores). */
    double avxPeakFlops = 265e9;

    /** Package power while compute-bound (watts). */
    double computeWatts = 135.0;

    /** Package power while memory-bound (watts). */
    double memoryWatts = 110.0;

    /** Idle/other power (watts). */
    double baseWatts = 60.0;

    /**
     * The paper's testbed (Section 6): Xeon E5-2698v4 with 68 GB/s
     * DDR4; AVX peak from Figure 6 (~265 GFLOPS effective ceiling);
     * gaussianRate derived from the 215 GFLOPS @ ~101 flops/sample
     * observation (~2.1e9 samples/s).
     */
    static MachineSpec paperXeon();

    /**
     * Measure this host: runs the repository's own Box-Muller kernel
     * and streaming-update kernel over a cache-busting working set.
     * Cached after the first call.
     */
    static const MachineSpec &calibratedHost();
};

} // namespace lazydp

#endif // LAZYDP_SIM_MACHINE_SPEC_H
