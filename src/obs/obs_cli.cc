#include "obs/obs_cli.h"

#include "common/logging.h"
#include "obs/trace.h"

namespace lazydp {
namespace obs {

std::vector<FlagSpec>
withObsFlags(std::vector<FlagSpec> specs)
{
    specs.push_back({"trace", "record a Chrome-trace/Perfetto JSON "
                              "timeline of this run to this file "
                              "(open in ui.perfetto.dev)"});
    specs.push_back({"stats-out", "append a JSONL metrics time series "
                                  "(one registry scrape per line) to "
                                  "this file"});
    specs.push_back({"stats-interval-us", "stats sampler scrape "
                                          "cadence in microseconds"});
    specs.push_back({"log-level", "minimum severity to emit: "
                                  "inform|warn|error (also env "
                                  "LAZYDP_LOG_LEVEL)"});
    return specs;
}

ObsOptions
obsOptionsFromCli(const CliArgs &args)
{
    ObsOptions options;
    options.tracePath = args.getString("trace", "");
    options.statsPath = args.getString("stats-out", "");
    options.statsIntervalUs = args.getU64("stats-interval-us", 0);
    const std::string level = args.getString("log-level", "");
    if (!level.empty())
        setLogLevel(parseLogLevel(level));
    return options;
}

ObsSession::ObsSession(const ObsOptions &options) : options_(options)
{
    // Stats and traces read the registry, so either output implies it;
    // a bare --trace still gets counters worth scraping.
    if (options_.enableMetrics || !options_.statsPath.empty() ||
        !options_.tracePath.empty())
        setMetricsEnabled(true);
    if (!options_.tracePath.empty()) {
        traceStart();
        traceSetThreadName("main");
    }
    if (!options_.statsPath.empty() || options_.forceSampler) {
        SamplerOptions sopts;
        sopts.intervalUs = options_.statsIntervalUs == 0
                               ? 100000
                               : options_.statsIntervalUs;
        sopts.outPath = options_.statsPath;
        sampler_ = std::make_unique<StatsSampler>(sopts);
    }
}

ObsSession::~ObsSession() { finish(); }

void
ObsSession::finish()
{
    if (finished_)
        return;
    finished_ = true;
    if (sampler_ != nullptr) {
        sampler_->stop();
        if (!options_.statsPath.empty())
            inform("stats: ", sampler_->scrapes(), " scrapes -> ",
                   options_.statsPath);
    }
    if (!options_.tracePath.empty()) {
        traceStop();
        if (traceWriteJson(options_.tracePath))
            inform("trace: ", traceEventCount(), " events -> ",
                   options_.tracePath);
    }
}

} // namespace obs
} // namespace lazydp
