#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <vector>

#include "common/logging.h"

namespace lazydp {
namespace obs {

namespace {

using Clock = std::chrono::steady_clock;

std::atomic<bool> trace_enabled{false};

/** One buffered event; name/arg keys are unowned string literals. */
struct Event
{
    const char *name;
    std::uint64_t tsNs;
    std::uint64_t durNs; //!< 0 for instants
    TraceArg a;
    TraceArg b;
    TraceCat cat;
    char ph; //!< 'X' complete span, 'i' instant
};

/**
 * One thread's event log. The owning thread appends under `mu`
 * (uncontended in steady state); the serializer locks the same mutex,
 * so writing a trace mid-run is safe, just briefly blocking that
 * thread's next record.
 */
struct Buffer
{
    std::mutex mu;
    std::vector<Event> events;
    std::uint64_t dropped = 0;
    const char *threadName = nullptr;
    std::uint32_t tid = 0;
};

/** Leaky recorder singleton: buffers outlive their threads so a trace
 *  written after a lane exits still contains the lane's spans. */
struct Recorder
{
    std::mutex mu;
    std::vector<Buffer *> buffers; //!< owned, never freed
    std::uint32_t nextTid = 1;
    Clock::time_point epoch = Clock::now();
    bool epochPinned = false;
};

Recorder &
recorder()
{
    static Recorder *r = new Recorder();
    return *r;
}

Buffer &
localBuffer()
{
    thread_local Buffer *buf = nullptr;
    if (buf == nullptr) {
        buf = new Buffer();
        Recorder &r = recorder();
        std::lock_guard<std::mutex> lock(r.mu);
        buf->tid = r.nextTid++;
        r.buffers.push_back(buf);
    }
    return *buf;
}

void
append(Buffer &buf, const Event &e)
{
    std::lock_guard<std::mutex> lock(buf.mu);
    if (buf.events.size() >= kMaxEventsPerThread) {
        ++buf.dropped;
        return;
    }
    if (buf.events.empty())
        buf.events.reserve(4096);
    buf.events.push_back(e);
}

/** Append one event's JSON to @p out (no trailing comma). */
void
printEvent(std::string &out, const Buffer &buf, const Event &e)
{
    char head[160];
    // Chrome "ts"/"dur" are MICROseconds; keep ns precision via the
    // fractional part.
    int n = std::snprintf(
        head, sizeof(head),
        "{\"ph\":\"%c\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,", e.ph,
        buf.tid, static_cast<double>(e.tsNs) / 1e3);
    out.append(head, static_cast<std::size_t>(n));
    if (e.ph == 'X') {
        n = std::snprintf(head, sizeof(head), "\"dur\":%.3f,",
                          static_cast<double>(e.durNs) / 1e3);
        out.append(head, static_cast<std::size_t>(n));
    }
    if (e.ph == 'i')
        out.append("\"s\":\"t\",");
    out.append("\"cat\":\"");
    out.append(traceCatName(e.cat));
    out.append("\",\"name\":\"");
    out.append(e.name);
    out.push_back('"');
    if (e.a.key != nullptr) {
        n = std::snprintf(head, sizeof(head),
                          ",\"args\":{\"%s\":%llu", e.a.key,
                          static_cast<unsigned long long>(e.a.value));
        out.append(head, static_cast<std::size_t>(n));
        if (e.b.key != nullptr) {
            n = std::snprintf(
                head, sizeof(head), ",\"%s\":%llu", e.b.key,
                static_cast<unsigned long long>(e.b.value));
            out.append(head, static_cast<std::size_t>(n));
        }
        out.push_back('}');
    }
    out.push_back('}');
}

} // namespace

const char *
traceCatName(TraceCat cat)
{
    switch (cat) {
    case TraceCat::Trainer: return "trainer";
    case TraceCat::Serve: return "serve";
    case TraceCat::Tier: return "tier";
    case TraceCat::Governor: return "governor";
    case TraceCat::Sampler: return "sampler";
    case TraceCat::NumCats: break;
    }
    return "?";
}

void
traceStart()
{
    Recorder &r = recorder();
    {
        std::lock_guard<std::mutex> lock(r.mu);
        if (!r.epochPinned) {
            r.epoch = Clock::now();
            r.epochPinned = true;
        }
    }
    trace_enabled.store(true, std::memory_order_relaxed);
}

void
traceStop()
{
    trace_enabled.store(false, std::memory_order_relaxed);
}

bool
traceEnabled()
{
    return trace_enabled.load(std::memory_order_relaxed);
}

std::uint64_t
traceNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - recorder().epoch)
            .count());
}

void
traceSetThreadName(const char *name)
{
    Buffer &buf = localBuffer();
    std::lock_guard<std::mutex> lock(buf.mu);
    buf.threadName = name;
}

void
traceInstant(TraceCat cat, const char *name, TraceArg a, TraceArg b)
{
    if (!traceEnabled())
        return;
    Event e{name, traceNowNs(), 0, a, b, cat, 'i'};
    append(localBuffer(), e);
}

void
traceComplete(TraceCat cat, const char *name, std::uint64_t ts_ns,
              std::uint64_t dur_ns, TraceArg a, TraceArg b)
{
    if (!traceEnabled())
        return;
    Event e{name, ts_ns, dur_ns, a, b, cat, 'X'};
    append(localBuffer(), e);
}

std::uint64_t
traceEventCount()
{
    Recorder &r = recorder();
    std::lock_guard<std::mutex> lock(r.mu);
    std::uint64_t total = 0;
    for (Buffer *buf : r.buffers) {
        std::lock_guard<std::mutex> block(buf->mu);
        total += buf->events.size();
    }
    return total;
}

std::uint64_t
traceDroppedCount()
{
    Recorder &r = recorder();
    std::lock_guard<std::mutex> lock(r.mu);
    std::uint64_t total = 0;
    for (Buffer *buf : r.buffers) {
        std::lock_guard<std::mutex> block(buf->mu);
        total += buf->dropped;
    }
    return total;
}

void
traceResetForTest()
{
    Recorder &r = recorder();
    std::lock_guard<std::mutex> lock(r.mu);
    for (Buffer *buf : r.buffers) {
        std::lock_guard<std::mutex> block(buf->mu);
        buf->events.clear();
        buf->dropped = 0;
    }
}

bool
traceWriteJson(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        warn("cannot open trace file ", path, " for writing");
        return false;
    }
    std::string out;
    out.reserve(1u << 20);
    out.append("{\"traceEvents\":[\n");
    Recorder &r = recorder();
    std::lock_guard<std::mutex> lock(r.mu);
    bool first = true;
    std::uint64_t dropped = 0;
    for (Buffer *buf : r.buffers) {
        std::lock_guard<std::mutex> block(buf->mu);
        dropped += buf->dropped;
        if (buf->threadName != nullptr) {
            char meta[160];
            const int n = std::snprintf(
                meta, sizeof(meta),
                "%s{\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
                "\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}",
                first ? "" : ",\n", buf->tid, buf->threadName);
            out.append(meta, static_cast<std::size_t>(n));
            first = false;
        }
        for (const Event &e : buf->events) {
            if (!first)
                out.append(",\n");
            first = false;
            printEvent(out, *buf, e);
            if (out.size() >= (1u << 20)) {
                std::fwrite(out.data(), 1, out.size(), f);
                out.clear();
            }
        }
    }
    out.append("\n],\"displayTimeUnit\":\"ms\"}\n");
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    if (dropped > 0)
        warn("trace dropped ", dropped, " events (per-thread cap ",
             kMaxEventsPerThread, ")");
    return true;
}

} // namespace obs
} // namespace lazydp
