/**
 * @file
 * Telemetry CLI plumbing shared by lazydp_train and lazydp_serve:
 * the --trace / --stats-out / --stats-interval-us / --log-level flag
 * block, plus an RAII ObsSession that owns the run's telemetry
 * lifecycle (enable metrics, start the trace, run the StatsSampler,
 * and on finish() write the trace file and report what was captured).
 *
 * The same pattern as withTierFlags in common/cli.h: tools wrap their
 * flag list in withObsFlags() and hand the parsed args to
 * obsOptionsFromCli().
 */

#ifndef LAZYDP_OBS_OBS_CLI_H
#define LAZYDP_OBS_OBS_CLI_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.h"
#include "obs/stats_sampler.h"

namespace lazydp {
namespace obs {

/** Parsed telemetry configuration of one tool run. */
struct ObsOptions
{
    std::string tracePath; //!< --trace (empty = no trace)
    std::string statsPath; //!< --stats-out (empty = no JSONL)

    /** Scrape cadence; 0 = pick a default (callers may override it
     *  before building the session, e.g. to the governor window). */
    std::uint64_t statsIntervalUs = 0;

    /** Turn the metrics registry on even without --stats-out (the
     *  serve driver does: the governor's shared scrape needs it). */
    bool enableMetrics = false;

    /** Run the sampler even without --stats-out (observer-only mode,
     *  for controllers that ride the shared cadence). */
    bool forceSampler = false;
};

/** Append the telemetry flag block to @p specs (builder style). */
std::vector<FlagSpec> withObsFlags(std::vector<FlagSpec> specs);

/** Read the telemetry flags out of @p args. Also applies --log-level
 *  (and the LAZYDP_LOG_LEVEL environment default) immediately, so
 *  later tool output honors the threshold. */
ObsOptions obsOptionsFromCli(const CliArgs &args);

/**
 * One run's telemetry lifecycle. Construction applies the options:
 * enables the registry, pins the trace epoch + starts collection when
 * a trace was requested, and spawns the StatsSampler when a stats
 * file (or forceSampler) asks for one. finish() -- idempotent, also
 * run by the destructor -- stops the sampler (final scrape + flush)
 * and serializes the trace. Call it after every traced subsystem has
 * stopped so all spans are closed.
 */
class ObsSession
{
  public:
    explicit ObsSession(const ObsOptions &options);
    ~ObsSession();

    ObsSession(const ObsSession &) = delete;
    ObsSession &operator=(const ObsSession &) = delete;

    /** @return the shared sampler (nullptr when none was requested). */
    StatsSampler *sampler() { return sampler_.get(); }

    /** Stop sampling, write the trace, report. Idempotent. */
    void finish();

  private:
    ObsOptions options_;
    std::unique_ptr<StatsSampler> sampler_;
    bool finished_ = false;
};

} // namespace obs
} // namespace lazydp

#endif // LAZYDP_OBS_OBS_CLI_H
