#include "obs/stats_sampler.h"

#include <chrono>

#include "common/logging.h"
#include "obs/trace.h"

namespace lazydp {
namespace obs {

namespace {

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
appendKv(std::string &out, const std::string &name, std::uint64_t v,
         bool &first)
{
    if (!first)
        out.push_back(',');
    first = false;
    out.push_back('"');
    out.append(name);
    out.append("\":");
    out.append(std::to_string(v));
}

} // namespace

StatsSampler::StatsSampler(const SamplerOptions &options)
    : options_(options)
{
    if (options_.intervalUs == 0)
        fatal("stats sampler interval must be positive "
              "(--stats-interval-us)");
    if (!options_.outPath.empty()) {
        out_ = std::fopen(options_.outPath.c_str(), "w");
        if (out_ == nullptr)
            fatal("cannot open stats file ", options_.outPath,
                  " for writing");
    }
    startSeconds_ = nowSeconds();
    if (options_.startThread)
        thread_ = std::thread([this] { samplerLoop(); });
}

StatsSampler::~StatsSampler() { stop(); }

void
StatsSampler::addObserver(Observer fn)
{
    std::lock_guard<std::mutex> lock(observersMu_);
    observers_.push_back(std::move(fn));
}

void
StatsSampler::samplerLoop()
{
    traceSetThreadName("stats-sampler");
    while (!stopping_.load(std::memory_order_relaxed)) {
        {
            std::unique_lock<std::mutex> lock(wakeMu_);
            wake_.wait_for(
                lock, std::chrono::microseconds(options_.intervalUs),
                [this] {
                    return stopping_.load(std::memory_order_relaxed);
                });
        }
        if (stopping_.load(std::memory_order_relaxed))
            return;
        sampleOnce();
    }
}

void
StatsSampler::sampleOnce()
{
    TraceSpan span(TraceCat::Sampler, "scrape");
    const MetricsSnapshot snap = scrapeMetrics();
    const std::uint64_t n =
        scrapes_.fetch_add(1, std::memory_order_relaxed) + 1;
    span.setArg("scrape", n);

    if (out_ != nullptr) {
        std::string line;
        line.reserve(1024);
        line.append("{\"scrape\":");
        line.append(std::to_string(n));
        char ts[48];
        std::snprintf(ts, sizeof(ts), ",\"ts\":%.6f",
                      nowSeconds() - startSeconds_);
        line.append(ts);

        line.append(",\"counters\":{");
        bool first = true;
        for (const MetricValue &m : snap.metrics)
            if (m.kind == MetricKind::Counter)
                appendKv(line, m.name, m.counter, first);
        line.append("},\"gauges\":{");
        first = true;
        for (const MetricValue &m : snap.metrics) {
            if (m.kind != MetricKind::Gauge)
                continue;
            if (!first)
                line.push_back(',');
            first = false;
            line.push_back('"');
            line.append(m.name);
            line.append("\":");
            line.append(std::to_string(m.gauge));
        }
        line.append("},\"histograms\":{");
        first = true;
        for (const MetricValue &m : snap.metrics) {
            if (m.kind != MetricKind::Histogram || m.count == 0)
                continue;
            if (!first)
                line.push_back(',');
            first = false;
            line.push_back('"');
            line.append(m.name);
            line.append("\":{\"count\":");
            line.append(std::to_string(m.count));
            line.append(",\"sum\":");
            line.append(std::to_string(m.sum));
            line.append(",\"p50\":");
            line.append(std::to_string(m.quantile(0.50)));
            line.append(",\"p95\":");
            line.append(std::to_string(m.quantile(0.95)));
            line.append(",\"p99\":");
            line.append(std::to_string(m.quantile(0.99)));
            line.push_back('}');
        }
        line.append("}}\n");
        // One fwrite per line: a concurrent logger or a second stream
        // to the same fd can never interleave mid-record.
        std::fwrite(line.data(), 1, line.size(), out_);
    }

    std::vector<Observer> observers;
    {
        std::lock_guard<std::mutex> lock(observersMu_);
        observers = observers_;
    }
    for (const Observer &fn : observers)
        fn(snap);
}

void
StatsSampler::stop()
{
    if (stopping_.exchange(true))
        return;
    wake_.notify_all();
    if (thread_.joinable())
        thread_.join();
    // Final scrape: even a sub-interval run records its end state (the
    // CI smoke gates on a nonzero scrape count).
    sampleOnce();
    if (out_ != nullptr) {
        std::fclose(out_);
        out_ = nullptr;
    }
}

std::uint64_t
StatsSampler::scrapes() const
{
    return scrapes_.load(std::memory_order_relaxed);
}

} // namespace obs
} // namespace lazydp
