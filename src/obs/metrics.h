/**
 * @file
 * Lock-free metrics registry: per-thread sharded counters and
 * fixed-bucket log-linear histograms plus process-global gauges,
 * registered by interned id and aggregated on scrape.
 *
 * Design:
 *
 *  - **Interning**: a metric is registered once by name
 *    (internMetric), returning a small dense MetricId. Interning is a
 *    cold path (mutex + hash map); every call site caches the id in a
 *    function-local static, so the hot path never touches a string.
 *
 *  - **Sharding**: counter increments and histogram records go to a
 *    thread-local shard (created on a thread's first record and
 *    registered with the process-global registry), so concurrent
 *    writers never contend on a cache line. Each slot is a relaxed
 *    std::atomic so a concurrent scraper reads torn-free values.
 *    When a thread exits, its shard folds into a retired accumulator
 *    under the registry mutex -- totals stay EXACT across thread
 *    lifetimes (asserted by tests/obs/metrics_test.cc under TSan).
 *
 *  - **Gauges** are process-global atomics (last set wins): they model
 *    low-frequency instantaneous readings (engaged flag, attainment),
 *    where per-thread last-write aggregation has no meaning.
 *
 *  - **Scrape**: scrapeMetrics() walks every live shard plus the
 *    retired accumulator under the registry mutex and returns an
 *    owned MetricsSnapshot. Scraping is wait-free for the writers
 *    (they never take the mutex) and exact after writers quiesce.
 *
 *  - **Disabled cost**: every record call first does one relaxed load
 *    of the global enable flag and returns if telemetry is off --
 *    that branch is the entire disabled-mode overhead (the
 *    telemetry_overhead leg of bench/opt_serving.cc measures it
 *    end to end).
 *
 * Histogram buckets are log-linear: 4 linear sub-buckets per power of
 * two (HdrHistogram-style), covering the full uint64 domain in
 * kHistogramBuckets fixed buckets with <= 25% relative bucket width.
 * Values are whatever unit the call site chooses; duration metrics in
 * this codebase record NANOSECONDS and suffix the name `_ns`.
 */

#ifndef LAZYDP_OBS_METRICS_H
#define LAZYDP_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace lazydp {
namespace obs {

/** What a metric measures (fixed at intern time; re-interning the same
 *  name with a different kind is a panic). */
enum class MetricKind : std::uint8_t
{
    Counter = 0, //!< monotone sum of per-thread increments
    Gauge,       //!< process-global last-set instantaneous value
    Histogram,   //!< log-linear value distribution
};

/** @return "counter" / "gauge" / "histogram". */
const char *metricKindName(MetricKind kind);

/** Dense metric handle (index into the registry). */
using MetricId = std::uint32_t;

/** Hard registry capacities: shards preallocate their slot arrays so
 *  growth never races the scraper. Interning past a cap is a panic
 *  (these are engineering headroom, not tunables). */
inline constexpr std::size_t kMaxMetrics = 256;
inline constexpr std::size_t kMaxHistograms = 32;

/** Log-linear layout: 4 sub-buckets per power of two over uint64. */
inline constexpr std::size_t kHistogramBuckets = 252;

/** Register (or look up) metric @p name of @p kind.
 *  Same name always returns the same id; a kind mismatch panics. */
MetricId internMetric(const char *name, MetricKind kind);

/** Master switch. Off (the default) reduces every record call to one
 *  relaxed atomic load; scrape still works (counts frozen). */
void setMetricsEnabled(bool enabled);

/** @return the master switch (relaxed; callable from any thread). */
bool metricsEnabled();

/** Add @p delta to counter @p id on this thread's shard. */
void counterAdd(MetricId id, std::uint64_t delta = 1);

/** Set gauge @p id to @p value (process-global, last set wins). */
void gaugeSet(MetricId id, std::int64_t value);

/** Record one @p value into histogram @p id on this thread's shard. */
void histogramRecord(MetricId id, std::uint64_t value);

/** @return the bucket index value @p v falls into. */
std::size_t histogramBucketIndex(std::uint64_t v);

/** @return the smallest value mapping to bucket @p bucket. */
std::uint64_t histogramBucketLowerBound(std::size_t bucket);

/** @return the largest value mapping to bucket @p bucket. */
std::uint64_t histogramBucketUpperBound(std::size_t bucket);

/** One metric's aggregated value at scrape time. */
struct MetricValue
{
    std::string name;
    MetricKind kind = MetricKind::Counter;

    std::uint64_t counter = 0; //!< Counter: summed over shards
    std::int64_t gauge = 0;    //!< Gauge: last set value

    // Histogram aggregate (empty vector for non-histograms).
    std::uint64_t count = 0; //!< total recorded values
    std::uint64_t sum = 0;   //!< sum of recorded values
    std::vector<std::uint64_t> buckets;

    /**
     * Nearest-rank quantile estimate: the upper bound of the bucket
     * holding the rank-ceil(q * count) value. Within one bucket width
     * of the exact nearest-rank sample (tests/obs/metrics_test.cc
     * checks this against stats::Percentiles). @return 0 if empty.
     */
    std::uint64_t quantile(double q) const;
};

/** Owned point-in-time aggregate of the whole registry. */
struct MetricsSnapshot
{
    std::vector<MetricValue> metrics; //!< indexed by MetricId

    /** @return the metric named @p name, or nullptr. */
    const MetricValue *find(const std::string &name) const;

    /** @return counter @p name 's value (0 when absent). */
    std::uint64_t counter(const std::string &name) const;
};

/** Aggregate every metric across all shards (cold path; wait-free for
 *  concurrent writers). */
MetricsSnapshot scrapeMetrics();

} // namespace obs
} // namespace lazydp

#endif // LAZYDP_OBS_METRICS_H
