#include "obs/metrics.h"

#include <array>
#include <bit>
#include <cmath>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/logging.h"

namespace lazydp {
namespace obs {

namespace {

std::atomic<bool> metrics_enabled{false};

/** Immutable-after-intern metadata of one metric. */
struct MetricMeta
{
    std::string name;
    MetricKind kind = MetricKind::Counter;
    std::uint32_t histSlot = 0; //!< dense histogram index (Histogram only)
};

/**
 * One thread's slice of every counter and histogram. Slot arrays are
 * sized for the registry caps at construction, so a later intern never
 * reallocates under a concurrent scraper; slots are relaxed atomics so
 * the scraper reads torn-free mid-flight values.
 */
struct Shard
{
    std::array<std::atomic<std::uint64_t>, kMaxMetrics> counters{};
    std::array<std::atomic<std::uint64_t>, kMaxHistograms> histCount{};
    std::array<std::atomic<std::uint64_t>, kMaxHistograms> histSum{};
    std::unique_ptr<std::atomic<std::uint64_t>[]> histBuckets;

    Shard()
        : histBuckets(std::make_unique<std::atomic<std::uint64_t>[]>(
              kMaxHistograms * kHistogramBuckets))
    {
        for (std::size_t i = 0; i < kMaxHistograms * kHistogramBuckets;
             ++i)
            histBuckets[i].store(0, std::memory_order_relaxed);
    }

    std::atomic<std::uint64_t> &
    bucket(std::uint32_t slot, std::size_t b)
    {
        return histBuckets[slot * kHistogramBuckets + b];
    }
};

/** Plain (non-atomic) accumulator the scraper sums into and exited
 *  threads retire into. Only touched under Registry::mu. */
struct Totals
{
    std::array<std::uint64_t, kMaxMetrics> counters{};
    std::array<std::uint64_t, kMaxHistograms> histCount{};
    std::array<std::uint64_t, kMaxHistograms> histSum{};
    std::vector<std::uint64_t> histBuckets =
        std::vector<std::uint64_t>(kMaxHistograms * kHistogramBuckets,
                                   0);

    void
    addShard(Shard &s)
    {
        for (std::size_t i = 0; i < kMaxMetrics; ++i)
            counters[i] +=
                s.counters[i].load(std::memory_order_relaxed);
        for (std::size_t h = 0; h < kMaxHistograms; ++h) {
            histCount[h] +=
                s.histCount[h].load(std::memory_order_relaxed);
            histSum[h] += s.histSum[h].load(std::memory_order_relaxed);
            for (std::size_t b = 0; b < kHistogramBuckets; ++b)
                histBuckets[h * kHistogramBuckets + b] +=
                    s.bucket(h, b).load(std::memory_order_relaxed);
        }
    }
};

/** Process-global registry; a LEAKY singleton so thread-exit hooks
 *  (which retire shards) never race static destruction. */
struct Registry
{
    std::mutex mu;
    std::unordered_map<std::string, MetricId> byName;
    std::vector<MetricMeta> metas;
    std::uint32_t histCount = 0;
    std::vector<Shard *> liveShards;
    Totals retired;
    std::array<std::atomic<std::int64_t>, kMaxMetrics> gauges{};

    /** id -> dense histogram slot, written once at intern time and
     *  read lock-free by histogramRecord (the metas vector itself may
     *  reallocate under later interns, this fixed array never does). */
    std::array<std::atomic<std::uint32_t>, kMaxMetrics> histSlotOf{};
};

Registry &
registry()
{
    static Registry *r = new Registry();
    return *r;
}

/**
 * Thread-exit hook: ~ShardHandle folds the shard into the retired
 * totals so counts outlive their writer thread, then frees it.
 */
struct ShardHandle
{
    Shard *shard = nullptr;

    ~ShardHandle()
    {
        if (shard == nullptr)
            return;
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mu);
        r.retired.addShard(*shard);
        for (auto it = r.liveShards.begin(); it != r.liveShards.end();
             ++it) {
            if (*it == shard) {
                r.liveShards.erase(it);
                break;
            }
        }
        delete shard;
    }
};

Shard &
localShard()
{
    thread_local ShardHandle handle;
    if (handle.shard == nullptr) {
        handle.shard = new Shard();
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mu);
        r.liveShards.push_back(handle.shard);
    }
    return *handle.shard;
}

} // namespace

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
    }
    return "?";
}

MetricId
internMetric(const char *name, MetricKind kind)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    const auto it = r.byName.find(name);
    if (it != r.byName.end()) {
        const MetricMeta &meta = r.metas[it->second];
        if (meta.kind != kind)
            panic("metric '", name, "' interned as ",
                  metricKindName(meta.kind), " and again as ",
                  metricKindName(kind));
        return it->second;
    }
    if (r.metas.size() >= kMaxMetrics)
        panic("metric registry full (", kMaxMetrics,
              " metrics); raise obs::kMaxMetrics");
    MetricMeta meta;
    meta.name = name;
    meta.kind = kind;
    const MetricId id = static_cast<MetricId>(r.metas.size());
    if (kind == MetricKind::Histogram) {
        if (r.histCount >= kMaxHistograms)
            panic("histogram registry full (", kMaxHistograms,
                  " histograms); raise obs::kMaxHistograms");
        meta.histSlot = r.histCount++;
        r.histSlotOf[id].store(meta.histSlot,
                               std::memory_order_relaxed);
    }
    r.metas.push_back(std::move(meta));
    r.byName.emplace(name, id);
    return id;
}

void
setMetricsEnabled(bool enabled)
{
    metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool
metricsEnabled()
{
    return metrics_enabled.load(std::memory_order_relaxed);
}

void
counterAdd(MetricId id, std::uint64_t delta)
{
    if (!metricsEnabled())
        return;
    localShard().counters[id].fetch_add(delta,
                                        std::memory_order_relaxed);
}

void
gaugeSet(MetricId id, std::int64_t value)
{
    if (!metricsEnabled())
        return;
    registry().gauges[id].store(value, std::memory_order_relaxed);
}

void
histogramRecord(MetricId id, std::uint64_t value)
{
    if (!metricsEnabled())
        return;
    const std::uint32_t slot =
        registry().histSlotOf[id].load(std::memory_order_relaxed);
    Shard &s = localShard();
    s.histCount[slot].fetch_add(1, std::memory_order_relaxed);
    s.histSum[slot].fetch_add(value, std::memory_order_relaxed);
    s.bucket(slot, histogramBucketIndex(value))
        .fetch_add(1, std::memory_order_relaxed);
}

std::size_t
histogramBucketIndex(std::uint64_t v)
{
    if (v < 4)
        return static_cast<std::size_t>(v);
    const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(v));
    const std::uint64_t sub = (v >> (msb - 2)) & 3u;
    return (static_cast<std::size_t>(msb) - 1) * 4 +
           static_cast<std::size_t>(sub);
}

std::uint64_t
histogramBucketLowerBound(std::size_t bucket)
{
    if (bucket < 4)
        return bucket;
    const unsigned msb = static_cast<unsigned>(bucket / 4 + 1);
    const std::uint64_t sub = bucket % 4;
    return (std::uint64_t{1} << msb) | (sub << (msb - 2));
}

std::uint64_t
histogramBucketUpperBound(std::size_t bucket)
{
    if (bucket + 1 >= kHistogramBuckets)
        return ~std::uint64_t{0};
    return histogramBucketLowerBound(bucket + 1) - 1;
}

std::uint64_t
MetricValue::quantile(double q) const
{
    if (count == 0)
        return 0;
    // Nearest rank, matching stats::Percentiles: rank ceil(q * n),
    // clamped to [1, n].
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    if (rank < 1)
        rank = 1;
    if (rank > count)
        rank = count;
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
        seen += buckets[b];
        if (seen >= rank)
            return histogramBucketUpperBound(b);
    }
    return histogramBucketUpperBound(kHistogramBuckets - 1);
}

const MetricValue *
MetricsSnapshot::find(const std::string &name) const
{
    for (const MetricValue &m : metrics)
        if (m.name == name)
            return &m;
    return nullptr;
}

std::uint64_t
MetricsSnapshot::counter(const std::string &name) const
{
    const MetricValue *m = find(name);
    return m == nullptr ? 0 : m->counter;
}

MetricsSnapshot
scrapeMetrics()
{
    Registry &r = registry();
    MetricsSnapshot out;
    std::lock_guard<std::mutex> lock(r.mu);
    Totals totals = r.retired;
    for (Shard *s : r.liveShards)
        totals.addShard(*s);
    out.metrics.reserve(r.metas.size());
    for (std::size_t id = 0; id < r.metas.size(); ++id) {
        const MetricMeta &meta = r.metas[id];
        MetricValue v;
        v.name = meta.name;
        v.kind = meta.kind;
        switch (meta.kind) {
        case MetricKind::Counter:
            v.counter = totals.counters[id];
            break;
        case MetricKind::Gauge:
            v.gauge = r.gauges[id].load(std::memory_order_relaxed);
            break;
        case MetricKind::Histogram: {
            const std::uint32_t h = meta.histSlot;
            v.count = totals.histCount[h];
            v.sum = totals.histSum[h];
            v.buckets.assign(
                totals.histBuckets.begin() +
                    static_cast<std::ptrdiff_t>(h * kHistogramBuckets),
                totals.histBuckets.begin() +
                    static_cast<std::ptrdiff_t>((h + 1) *
                                                kHistogramBuckets));
            break;
        }
        }
        out.metrics.push_back(std::move(v));
    }
    return out;
}

} // namespace obs
} // namespace lazydp
