/**
 * @file
 * Chrome-trace / Perfetto event recording from per-thread buffers.
 *
 * The recorder collects timestamped events into a per-thread buffer
 * (created on first use, registered with a process-global leaky
 * recorder) and serializes them on demand as Chrome Trace Event
 * Format JSON -- load the file in https://ui.perfetto.dev or
 * chrome://tracing to see trainer stages, serve micro-batches,
 * tiered-store traffic and governor decisions on ONE aligned
 * timeline.
 *
 * Event model:
 *
 *  - **Spans** are emitted as "X" (complete) events: one record
 *    carrying both start timestamp and duration, written by the
 *    TraceSpan RAII guard at scope exit. A complete event IS a
 *    balanced begin/end pair by construction; tools/
 *    lazydp_trace_validate.cc checks the invariant on the serialized
 *    file (every span has ts + dur >= 0, stray "B"/"E" events must
 *    pair).
 *  - **Instants** ("i", thread scope) mark point decisions: request
 *    enqueue/shed/expiry, governor engage/release.
 *  - **Metadata** ("M") names each thread (obs::traceSetThreadName;
 *    the ThreadPool names its lanes automatically).
 *
 * Events carry up to two numeric args (e.g. {"batch": 32,
 * "version": 7}); names and arg keys must be string literals (the
 * buffer stores the pointers, not copies).
 *
 * Cost: when tracing is disabled (the default) every record call and
 * every TraceSpan constructor reduces to one relaxed atomic load.
 * When enabled, a record is one clock read plus an append under the
 * buffer's (uncontended, thread-own) mutex; buffers cap at
 * kMaxEventsPerThread and count drops rather than grow unbounded.
 *
 * Timestamps are steady_clock nanoseconds relative to the process
 * trace epoch (captured at the first traceStart()), so train and
 * serve threads share one time base.
 */

#ifndef LAZYDP_OBS_TRACE_H
#define LAZYDP_OBS_TRACE_H

#include <cstdint>
#include <string>

namespace lazydp {
namespace obs {

/** Event category: Perfetto "cat" field, one per subsystem so traces
 *  can be filtered to a lane of the system. */
enum class TraceCat : std::uint8_t
{
    Trainer = 0, //!< prepare/apply/publish/gate on the training side
    Serve,       //!< request lifecycle: enqueue..batch..forward..complete
    Tier,        //!< tiered-store promotions/evictions/write-backs/warms
    Governor,    //!< isolation-governor engage/release/pause decisions
    Sampler,     //!< stats-sampler scrapes
    NumCats
};

/** @return the "cat" string ("trainer" / "serve" / ...). */
const char *traceCatName(TraceCat cat);

/** Per-thread event cap; past it events are dropped and counted. */
inline constexpr std::size_t kMaxEventsPerThread = 1u << 20;

/** One optional numeric event argument (key must be a literal). */
struct TraceArg
{
    const char *key = nullptr;
    std::uint64_t value = 0;
};

/** Start collecting (idempotent). The first call pins the trace epoch. */
void traceStart();

/** Stop collecting (recorded events are kept until write/reset). */
void traceStop();

/** @return true while collection is on (one relaxed load). */
bool traceEnabled();

/** Name the calling thread in the trace (cheap; callable any time,
 *  also before traceStart). @p name must be a literal or otherwise
 *  outlive the recorder. */
void traceSetThreadName(const char *name);

/** Record an instant event (thread scope). No-op while disabled. */
void traceInstant(TraceCat cat, const char *name, TraceArg a = {},
                  TraceArg b = {});

/** Record a complete span [ts_ns, ts_ns + dur_ns) directly (the RAII
 *  TraceSpan is the usual entry point). No-op while disabled. */
void traceComplete(TraceCat cat, const char *name, std::uint64_t ts_ns,
                   std::uint64_t dur_ns, TraceArg a = {},
                   TraceArg b = {});

/** @return nanoseconds since the trace epoch (monotonic). */
std::uint64_t traceNowNs();

/** Serialize everything recorded so far as Chrome-trace JSON.
 *  @return false (with a warn) if the file cannot be written. */
bool traceWriteJson(const std::string &path);

/** Total events currently buffered across all threads. */
std::uint64_t traceEventCount();

/** Events dropped because a thread hit kMaxEventsPerThread. */
std::uint64_t traceDroppedCount();

/** Test hook: drop all buffered events (threads keep their buffers). */
void traceResetForTest();

/**
 * RAII scoped span: captures the start time at construction and
 * records one complete event at destruction. Constructed DISARMED
 * when tracing is off (one relaxed load, no clock read).
 */
class TraceSpan
{
  public:
    TraceSpan(TraceCat cat, const char *name, TraceArg a = {},
              TraceArg b = {})
        : cat_(cat), name_(name), a_(a), b_(b),
          armed_(traceEnabled()), start_(armed_ ? traceNowNs() : 0)
    {
    }

    ~TraceSpan()
    {
        if (armed_)
            traceComplete(cat_, name_, start_, traceNowNs() - start_,
                          a_, b_);
    }

    /** Attach/overwrite an arg discovered mid-span (fills slot a then
     *  b; a third distinct key overwrites b). */
    void
    setArg(const char *key, std::uint64_t value)
    {
        if (!armed_)
            return;
        if (a_.key == nullptr || a_.key == key) {
            a_ = {key, value};
            return;
        }
        b_ = {key, value};
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    TraceCat cat_;
    const char *name_;
    TraceArg a_;
    TraceArg b_;
    bool armed_;
    std::uint64_t start_;
};

} // namespace obs
} // namespace lazydp

// Scoped-span convenience macros (unique local per source line).
#define LAZYDP_TRACE_CONCAT2(a, b) a##b
#define LAZYDP_TRACE_CONCAT(a, b) LAZYDP_TRACE_CONCAT2(a, b)

/** Time the enclosing scope as one span. */
#define LAZYDP_TRACE_SPAN(cat, name)                                   \
    ::lazydp::obs::TraceSpan LAZYDP_TRACE_CONCAT(lazydp_trace_span_,   \
                                                 __LINE__)(cat, name)

/** Span with one numeric arg. */
#define LAZYDP_TRACE_SPAN1(cat, name, k1, v1)                          \
    ::lazydp::obs::TraceSpan LAZYDP_TRACE_CONCAT(lazydp_trace_span_,   \
                                                 __LINE__)(            \
        cat, name, {k1, static_cast<std::uint64_t>(v1)})

/** Span with two numeric args. */
#define LAZYDP_TRACE_SPAN2(cat, name, k1, v1, k2, v2)                  \
    ::lazydp::obs::TraceSpan LAZYDP_TRACE_CONCAT(lazydp_trace_span_,   \
                                                 __LINE__)(            \
        cat, name, {k1, static_cast<std::uint64_t>(v1)},               \
        {k2, static_cast<std::uint64_t>(v2)})

#endif // LAZYDP_OBS_TRACE_H
