/**
 * @file
 * StatsSampler: the shared telemetry scrape lane.
 *
 * One background thread scrapes the MetricsRegistry on a fixed
 * cadence, appends one JSON object per scrape to a JSONL time-series
 * file (--stats-out), and fans the snapshot out to registered
 * observers. The IsolationGovernor rides this path instead of running
 * a bespoke ServeStats sampling thread (IsolationGovernor::attachTo):
 * one cadence, one scrape, shared by the live time series and the
 * feedback controller.
 *
 * JSONL line schema (one line per scrape; all values cumulative):
 *
 *   {"scrape": N, "ts": seconds_since_sampler_start,
 *    "counters": {"serve.requests_served": 123, ...},
 *    "gauges": {"governor.engaged": 1, ...},
 *    "histograms": {"serve.forward_ns":
 *        {"count": C, "sum": S, "p50": ..., "p95": ..., "p99": ...},
 *     ...}}
 *
 * Histograms with zero recorded values are omitted from their map.
 * Each line is assembled in memory and written with a single fwrite,
 * so concurrent tool output never interleaves mid-line.
 *
 * Threading: sampleOnce() may be driven by hand (tests pass
 * startThread = false, the same pattern GovernorOptions::startSampler
 * uses); stop() performs one final scrape so even a run shorter than
 * one interval yields a nonzero scrape count -- the CI stats smoke
 * gates on that.
 */

#ifndef LAZYDP_OBS_STATS_SAMPLER_H
#define LAZYDP_OBS_STATS_SAMPLER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace lazydp {
namespace obs {

/** StatsSampler knobs. */
struct SamplerOptions
{
    /** Scrape cadence in microseconds. */
    std::uint64_t intervalUs = 100000;

    /** JSONL output path; empty = no file (observers only). */
    std::string outPath;

    /** Spawn the scrape thread in the constructor (default). Tests
     *  pass false and drive sampleOnce() by hand. */
    bool startThread = true;
};

/** Periodic registry scraper: JSONL time series + observer fan-out. */
class StatsSampler
{
  public:
    /** An observer sees every scrape, on the sampler thread. */
    using Observer = std::function<void(const MetricsSnapshot &)>;

    explicit StatsSampler(const SamplerOptions &options);

    /** Stops and flushes (see stop()). */
    ~StatsSampler();

    StatsSampler(const StatsSampler &) = delete;
    StatsSampler &operator=(const StatsSampler &) = delete;

    /** Register @p fn for every subsequent scrape. */
    void addObserver(Observer fn);

    /** Scrape once: aggregate the registry, append one JSONL line,
     *  notify observers. Public so tests (and attached controllers'
     *  unit tests) can drive windows by hand. */
    void sampleOnce();

    /** Stop the thread, take one final scrape, flush and close the
     *  file. Idempotent; the dtor calls it. */
    void stop();

    /** @return scrapes taken so far. */
    std::uint64_t scrapes() const;

    const SamplerOptions &options() const { return options_; }

  private:
    void samplerLoop();

    SamplerOptions options_;
    std::FILE *out_ = nullptr;
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> scrapes_{0};
    double startSeconds_ = 0.0;

    std::mutex observersMu_;
    std::vector<Observer> observers_;

    std::mutex wakeMu_;
    std::condition_variable wake_;
    std::thread thread_;
};

} // namespace obs
} // namespace lazydp

#endif // LAZYDP_OBS_STATS_SAMPLER_H
