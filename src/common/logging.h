/**
 * @file
 * gem5-style status and error reporting.
 *
 * Severity model follows the gem5 coding style:
 *  - panic(): an internal invariant was violated (a LazyDP bug);
 *    aborts so a debugger / core dump can capture state.
 *  - fatal(): the user asked for something impossible (bad config);
 *    exits with status 1.
 *  - warn(): something is off but execution can continue.
 *  - inform(): plain status messages.
 */

#ifndef LAZYDP_COMMON_LOGGING_H
#define LAZYDP_COMMON_LOGGING_H

#include <sstream>
#include <string>

namespace lazydp {

namespace detail {

/** Concatenate arbitrary streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Report an internal bug and abort. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl(detail::concat(std::forward<Args>(args)...));
}

/** Report an unusable user configuration and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::concat(std::forward<Args>(args)...));
}

/** Report a recoverable anomaly. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Report a status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/**
 * Test hook: when set, panic()/fatal() throw std::runtime_error instead
 * of terminating, so death-path behaviour can be unit tested without
 * gtest death tests.
 */
void setLogThrowMode(bool throw_instead_of_abort);

/** @return true if throw mode is active (see setLogThrowMode). */
bool logThrowMode();

/**
 * Severity threshold: the minimum level that gets emitted. panic()
 * and fatal() always print (they terminate the process); inform() is
 * suppressed above Inform, warn() above Warn. The initial value comes
 * from the LAZYDP_LOG_LEVEL environment variable ("inform" / "warn" /
 * "error", default inform); tools override it with --log-level.
 */
enum class LogLevel : int
{
    Inform = 0, //!< everything (the default)
    Warn = 1,   //!< warnings and errors only
    Error = 2,  //!< fatal/panic output only
};

/** Override the threshold (trumps LAZYDP_LOG_LEVEL). */
void setLogLevel(LogLevel level);

/** @return the active threshold (env-resolved on first use). */
LogLevel logLevel();

/** Parse "inform"/"info" / "warn" / "error" (fatal on anything else). */
LogLevel parseLogLevel(const std::string &name);

} // namespace lazydp

#endif // LAZYDP_COMMON_LOGGING_H
