/**
 * @file
 * Small string-formatting helpers for reports and logs.
 */

#ifndef LAZYDP_COMMON_STRING_UTIL_H
#define LAZYDP_COMMON_STRING_UTIL_H

#include <cstdint>
#include <string>
#include <vector>

namespace lazydp {

/** Format a byte count human-readably, e.g. "96.0 GB", "213.0 KB". */
std::string humanBytes(std::uint64_t bytes);

/** Format seconds adaptively (ns / us / ms / s). */
std::string humanSeconds(double seconds);

/** Split @p s on @p sep, dropping empty fields. */
std::vector<std::string> split(const std::string &s, char sep);

/** Parse a non-negative integer; calls fatal() on malformed input. */
std::uint64_t parseU64(const std::string &s);

/** Parse a double; calls fatal() on malformed input. */
double parseDouble(const std::string &s);

} // namespace lazydp

#endif // LAZYDP_COMMON_STRING_UTIL_H
