#include "common/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/macros.h"

namespace lazydp {

TablePrinter::TablePrinter(std::string title) : title_(std::move(title)) {}

void
TablePrinter::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TablePrinter::addRow(std::vector<std::string> row)
{
    LAZYDP_ASSERT(row.size() == header_.size(),
                  "row width ", row.size(), " != header width ",
                  header_.size());
    rows_.push_back(std::move(row));
}

std::string
TablePrinter::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    os << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << row[c];
        }
        os << '\n';
    };
    emit(header_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
    os.flush();
}

void
TablePrinter::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << row[c];
        }
        os << '\n';
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

} // namespace lazydp
