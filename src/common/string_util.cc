#include "common/string_util.h"

#include <cstdio>
#include <stdexcept>

#include "common/logging.h"

namespace lazydp {

std::string
humanBytes(std::uint64_t bytes)
{
    static const char *units[] = {"B", "KB", "MB", "GB", "TB"};
    double v = static_cast<double>(bytes);
    int unit = 0;
    while (v >= 1000.0 && unit < 4) {
        v /= 1000.0;
        ++unit;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, units[unit]);
    return buf;
}

std::string
humanSeconds(double seconds)
{
    char buf[32];
    if (seconds < 1e-6)
        std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
    else if (seconds < 1e-3)
        std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
    else if (seconds < 1.0)
        std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
    return buf;
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char ch : s) {
        if (ch == sep) {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(ch);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

std::uint64_t
parseU64(const std::string &s)
{
    try {
        std::size_t pos = 0;
        const auto v = std::stoull(s, &pos);
        if (pos != s.size())
            fatal("trailing characters in integer: '", s, "'");
        return v;
    } catch (const std::invalid_argument &) {
        fatal("not an integer: '", s, "'");
    } catch (const std::out_of_range &) {
        fatal("integer out of range: '", s, "'");
    }
}

double
parseDouble(const std::string &s)
{
    try {
        std::size_t pos = 0;
        const double v = std::stod(s, &pos);
        if (pos != s.size())
            fatal("trailing characters in number: '", s, "'");
        return v;
    } catch (const std::invalid_argument &) {
        fatal("not a number: '", s, "'");
    } catch (const std::out_of_range &) {
        fatal("number out of range: '", s, "'");
    }
}

} // namespace lazydp
