/**
 * @file
 * Streaming statistics helpers used by tests (distribution checks on the
 * Gaussian samplers) and by benches (run-to-run variation).
 */

#ifndef LAZYDP_COMMON_STATS_H
#define LAZYDP_COMMON_STATS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lazydp {

/**
 * Welford-style running mean / variance / extrema accumulator.
 *
 * Numerically stable for the billions of noise samples pushed through it
 * by the RNG distribution tests.
 */
class RunningStat
{
  public:
    RunningStat() { reset(); }

    /** Forget all samples. */
    void reset();

    /** Accumulate one sample. */
    void push(double x);

    /** Accumulate a batch of samples. */
    void pushAll(const float *data, std::size_t n);

    /** @return number of samples pushed. */
    std::size_t count() const { return n_; }

    /** @return sample mean (0 if empty). */
    double mean() const { return mean_; }

    /** @return unbiased sample variance (0 if fewer than 2 samples). */
    double variance() const;

    /** @return sample standard deviation. */
    double stddev() const;

    /** @return smallest sample seen. */
    double min() const { return min_; }

    /** @return largest sample seen. */
    double max() const { return max_; }

    /**
     * Excess-kurtosis estimate; ~0 for a Gaussian.  Used by the
     * distribution property tests to reject non-normal samplers.
     */
    double excessKurtosis() const;

    /** Skewness estimate; ~0 for symmetric distributions. */
    double skewness() const;

  private:
    std::size_t n_;
    double mean_;
    double m2_;
    double m3_;
    double m4_;
    double min_;
    double max_;
};

/**
 * Fixed-bin histogram over a closed interval.
 *
 * Samples outside the interval land in saturating under/overflow bins.
 */
class Histogram
{
  public:
    /**
     * @param lo lower edge of the tracked interval
     * @param hi upper edge of the tracked interval
     * @param bins number of equal-width bins
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Accumulate one sample. */
    void push(double x);

    /** @return count in bin @p i. */
    std::uint64_t binCount(std::size_t i) const { return counts_[i]; }

    /** @return number of bins. */
    std::size_t bins() const { return counts_.size(); }

    /** @return count of samples below the tracked interval. */
    std::uint64_t underflow() const { return underflow_; }

    /** @return count of samples above the tracked interval. */
    std::uint64_t overflow() const { return overflow_; }

    /** @return total samples pushed. */
    std::uint64_t total() const { return total_; }

    /** @return center x-value of bin @p i. */
    double binCenter(std::size_t i) const;

    /**
     * Chi-squared statistic of the observed counts against expected
     * per-bin probabilities @p expected_probs (same length as bins()).
     */
    double chiSquared(const std::vector<double> &expected_probs) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_;
    std::uint64_t overflow_;
    std::uint64_t total_;
};

/** @return the @p q quantile (0..1) of @p v; @p v is copied and sorted. */
double quantile(std::vector<double> v, double q);

namespace stats {

/**
 * Tail-latency percentile summary of a sample vector -- the serving
 * harness's measurement primitive (ISSUE: throughput and p50/p95/p99
 * claims need first-class percentile machinery, not ad-hoc timers).
 *
 * Definition: NEAREST-RANK. For quantile q over n ascending samples,
 * the reported value is sorted[ceil(q * n) - 1] (1-based rank, clamped
 * to [1, n]). This always returns an actual sample (no interpolation,
 * unlike lazydp::quantile), which is the convention latency SLOs use.
 *
 * Tie-breaking: equal samples are indistinguishable after the sort, so
 * ties need no rule; for ranks that fall exactly between two distinct
 * order statistics (q * n integral), nearest-rank picks the LOWER one
 * -- e.g. p50 of {1, 2, 3, 4} is 2, not 2.5.
 */
struct Percentiles
{
    std::size_t count = 0; //!< number of samples summarized
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
};

/**
 * Nearest-rank quantile of an ASCENDING-sorted sample vector; see the
 * Percentiles comment for the exact rank rule. @p q must be in (0, 1].
 */
double percentileNearestRank(const std::vector<double> &sorted, double q);

/**
 * Summarize @p samples (copied and sorted internally; empty input
 * yields an all-zero summary with count 0).
 */
Percentiles computePercentiles(std::vector<double> samples);

} // namespace stats

/** Standard normal CDF. */
double normalCdf(double x);

} // namespace lazydp

#endif // LAZYDP_COMMON_STATS_H
