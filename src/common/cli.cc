#include "common/cli.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "kernels/kernel_registry.h"

namespace lazydp {

namespace {

std::vector<FlagSpec>
withEmptyHelp(const std::vector<std::string> &known)
{
    std::vector<FlagSpec> flags;
    flags.reserve(known.size());
    for (const auto &name : known)
        flags.push_back({name, ""});
    return flags;
}

} // namespace

CliArgs::CliArgs(int argc, const char *const *argv,
                 const std::vector<FlagSpec> &flags)
    : flags_(flags)
{
    auto is_known = [&](const std::string &key) {
        return std::find_if(flags_.begin(), flags_.end(),
                            [&](const FlagSpec &f) {
                                return f.name == key;
                            }) != flags_.end();
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        std::string key = arg.substr(2);
        std::string value;
        const auto eq = key.find('=');
        if (eq != std::string::npos) {
            value = key.substr(eq + 1);
            key = key.substr(0, eq);
        } else if (i + 1 < argc &&
                   std::string(argv[i + 1]).rfind("--", 0) != 0) {
            value = argv[++i];
        }
        if (!is_known(key)) {
            std::string hint;
            for (const auto &f : flags_)
                hint += " --" + f.name;
            fatal("unknown flag '--", key, "'; accepted flags:", hint);
        }
        values_[key] = value;
    }
}

CliArgs::CliArgs(int argc, const char *const *argv,
                 const std::vector<std::string> &known)
    : CliArgs(argc, argv, withEmptyHelp(known))
{
}

std::string
CliArgs::helpText(const std::string &tool,
                  const std::string &summary) const
{
    std::size_t width = 0;
    for (const auto &f : flags_)
        width = std::max(width, f.name.size());

    std::string out = "usage: " + tool + " [--flag[=value] ...]\n  " +
                      summary + "\n\nflags:\n";
    for (const auto &f : flags_) {
        out += "  --" + f.name;
        out.append(width - f.name.size() + 2, ' ');
        out += f.help + "\n";
    }
    return out;
}

bool
CliArgs::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
CliArgs::getString(const std::string &key, const std::string &def) const
{
    const auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

std::uint64_t
CliArgs::getU64(const std::string &key, std::uint64_t def) const
{
    const auto it = values_.find(key);
    return it == values_.end() ? def : parseU64(it->second);
}

double
CliArgs::getDouble(const std::string &key, double def) const
{
    const auto it = values_.find(key);
    return it == values_.end() ? def : parseDouble(it->second);
}

bool
CliArgs::getBool(const std::string &key, bool def) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return def;
    if (it->second.empty() || it->second == "true" ||
        it->second == "1" || it->second == "on")
        return true;
    if (it->second == "false" || it->second == "0" ||
        it->second == "off")
        return false;
    fatal("flag '--", key, "' expects a boolean, got '", it->second,
          "'");
}

std::size_t
CliArgs::getThreads(std::uint64_t def) const
{
    const std::uint64_t requested = getU64("threads", def);
    return requested == 0 ? hardwareThreads()
                          : static_cast<std::size_t>(requested);
}

std::string
CliArgs::applyKernels() const
{
    if (has("kernels")) {
        const std::string value = getString("kernels", "auto");
        KernelBackend backend = KernelBackend::Auto;
        if (!parseKernelBackend(value, backend))
            fatal("flag '--kernels' expects scalar|avx2|auto, got '",
                  value, "'");
        setKernelBackend(backend);
    }
    return kernelBackendName(activeKernelBackend());
}

std::vector<FlagSpec>
withTierFlags(std::vector<FlagSpec> flags)
{
    flags.push_back(
        {"hot-mb", "out-of-core: DRAM hot-tier budget in megabytes "
                   "for the embedding tables (with --cold-path)"});
    flags.push_back(
        {"cold-path", "out-of-core: directory for the file-backed "
                      "cold tier; presence enables tiered tables "
                      "(bit-identical model to all-DRAM)"});
    flags.push_back(
        {"prefetch", "on|off: lookahead-driven async warming of the "
                     "next iteration's rows (tiered tables only; "
                     "never changes the model)"});
    return flags;
}

} // namespace lazydp
