/**
 * @file
 * Minimal command-line flag parser for the tools and examples.
 *
 * Supports `--key=value` and `--key value` forms plus `--flag`
 * booleans; unknown flags are fatal (typos should not silently pick
 * defaults in an experiment driver).
 */

#ifndef LAZYDP_COMMON_CLI_H
#define LAZYDP_COMMON_CLI_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lazydp {

/**
 * One accepted flag: name plus the help line the generated --help
 * listing prints for it.
 */
struct FlagSpec
{
    std::string name; //!< flag name without the leading "--"
    std::string help; //!< one-line description (may name values/units)
};

/**
 * Append the shared out-of-core flag triplet (--hot-mb, --cold-path,
 * --prefetch) to a tool's flag list, so every driver documents the
 * tiered-table knobs with identical wording. Parsing stays with the
 * caller (the values feed nn/dlrm.h's TieredModelOptions).
 */
std::vector<FlagSpec> withTierFlags(std::vector<FlagSpec> flags);

/** Parsed command line with typed, defaulted accessors. */
class CliArgs
{
  public:
    /**
     * Primary constructor: accepted flags WITH help text, enabling the
     * generated helpText() listing. Unknown flags are fatal with the
     * accepted-flag list in the message (typos must not silently pick
     * defaults in an experiment driver).
     *
     * @param argc / @p argv main()'s arguments
     * @param flags the accepted flags and their help lines
     */
    CliArgs(int argc, const char *const *argv,
            const std::vector<FlagSpec> &flags);

    /**
     * Convenience constructor for callers without help text (benches,
     * tests): every flag gets an empty help line.
     *
     * @param argc / @p argv main()'s arguments
     * @param known the set of accepted flag names (without "--")
     */
    CliArgs(int argc, const char *const *argv,
            const std::vector<std::string> &known);

    /**
     * Generated --help listing: usage line, @p summary, then one
     * aligned "--name  help" row per accepted flag in declaration
     * order.
     *
     * @param tool program name for the usage line
     * @param summary one-line description of the tool
     */
    std::string helpText(const std::string &tool,
                         const std::string &summary) const;

    /** @return true if the flag was given (with or without a value). */
    bool has(const std::string &key) const;

    /** @return string value or @p def. */
    std::string getString(const std::string &key,
                          const std::string &def) const;

    /** @return unsigned integer value or @p def; fatal on garbage. */
    std::uint64_t getU64(const std::string &key, std::uint64_t def) const;

    /** @return double value or @p def; fatal on garbage. */
    double getDouble(const std::string &key, double def) const;

    /** @return boolean: present without value, "=true"/"=1"/"=on". */
    bool getBool(const std::string &key, bool def) const;

    /**
     * Shared `--threads` handling for every tool and bench: reads the
     * "threads" flag (@p def when absent) and resolves 0 to the
     * hardware thread count. Fatal on 0 results or garbage.
     */
    std::size_t getThreads(std::uint64_t def = 1) const;

    /**
     * Shared `--kernels=scalar|avx2|auto` handling: selects the
     * process-wide SIMD kernel backend (kernels/kernel_registry.h).
     * When the flag is absent the startup selection (LAZYDP_KERNELS
     * environment variable, else auto) stands. Fatal on garbage.
     *
     * @return the name of the backend now active ("scalar"/"avx2")
     */
    std::string applyKernels() const;

    /** @return positional (non-flag) arguments in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

  private:
    std::vector<FlagSpec> flags_;
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

} // namespace lazydp

#endif // LAZYDP_COMMON_CLI_H
