/**
 * @file
 * Small utility macros shared across the LazyDP code base.
 */

#ifndef LAZYDP_COMMON_MACROS_H
#define LAZYDP_COMMON_MACROS_H

#include "common/logging.h"

/**
 * Assertion that stays enabled in release builds.
 *
 * The training kernels are always built with -O3; standard assert()
 * would silently disappear, so invariants that guard correctness of
 * the privacy mechanism use LAZYDP_ASSERT instead.
 */
#define LAZYDP_ASSERT(cond, ...)                                          \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::lazydp::panic("assertion failed: " #cond " | " __VA_ARGS__);\
        }                                                                 \
    } while (0)

/** Marks a code path that must be unreachable. */
#define LAZYDP_UNREACHABLE(msg) ::lazydp::panic("unreachable: " msg)

#endif // LAZYDP_COMMON_MACROS_H
