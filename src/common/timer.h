/**
 * @file
 * Wall-clock timing utilities, including the per-stage accounting the
 * paper's figures are built from (Fwd / Bwd / model-update substages).
 */

#ifndef LAZYDP_COMMON_TIMER_H
#define LAZYDP_COMMON_TIMER_H

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace lazydp {

/** Monotonic wall-clock stopwatch with nanosecond resolution. */
class WallTimer
{
  public:
    WallTimer() { reset(); }

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** @return seconds elapsed since construction or the last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** @return nanoseconds elapsed since construction or last reset(). */
    std::uint64_t
    nanoseconds() const
    {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   Clock::now() - start_)
            .count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/**
 * Named training stages used for latency breakdowns.
 *
 * These mirror the stages of Figures 3, 5, 10 and 11 in the paper.
 */
enum class Stage : std::uint8_t
{
    Forward = 0,          //!< forward propagation
    BackwardPerExample,   //!< per-example weight-gradient derivation
    BackwardPerBatch,     //!< per-batch weight-gradient derivation
    GradCoalesce,         //!< duplicate-index coalescing of sparse grads
    NoiseSampling,        //!< Gaussian noise generation
    NoisyGradGen,         //!< merging gradient and noise tensors
    NoisyGradUpdate,      //!< applying the noisy gradient to the model
    LazyOverhead,         //!< HistoryTable upkeep, next-batch dedup, ANS std
    Else,                 //!< everything not attributed above
    NumStages
};

/** @return a short human-readable stage name. */
const char *stageName(Stage s);

/** @return a lowercase metric-name slug of @p s ("fwd", "bwd_ex", ...),
 *  used for the `train.stage.<slug>_ns` registry counters. */
const char *stageSlug(Stage s);

/**
 * Accumulates wall time per Stage across many training iterations.
 *
 * The trainer brackets each region with start()/stop(); benches read
 * totals to print the paper's breakdown figures.
 *
 * The per-iteration hot path is a fixed array of slots indexed by the
 * stage id -- no map, no strings. Each slot shares its identity with
 * an interned metrics-registry counter (`train.stage.<slug>_ns`), so
 * every stop()/add() also feeds the telemetry scrape when metrics are
 * enabled; the string-keyed breakdown() map is built only at
 * reporting time.
 */
class StageTimer
{
  public:
    StageTimer();

    /** Zero all accumulated stage times. */
    void reset();

    /** Begin attributing time to stage @p s (no nesting allowed). */
    void start(Stage s);

    /** Stop the currently running stage. */
    void stop();

    /** Add @p seconds to stage @p s directly (for modeled latencies). */
    void add(Stage s, double seconds);

    /** @return accumulated seconds for stage @p s. */
    double seconds(Stage s) const;

    /** @return sum of all stage times in seconds. */
    double totalSeconds() const;

    /** @return map of stage-name -> seconds for reporting. */
    std::map<std::string, double> breakdown() const;

    /** Accumulate another timer's totals into this one. */
    void merge(const StageTimer &other);

  private:
    /** Interned-id slots: index == stage id == registry-counter slot. */
    std::array<double, static_cast<std::size_t>(Stage::NumStages)> acc_;
    WallTimer clock_;
    Stage running_;
    bool active_;
};

/** RAII guard that times a region into a StageTimer. */
class ScopedStage
{
  public:
    ScopedStage(StageTimer &timer, Stage s) : timer_(timer)
    {
        timer_.start(s);
    }
    ~ScopedStage() { timer_.stop(); }

    ScopedStage(const ScopedStage &) = delete;
    ScopedStage &operator=(const ScopedStage &) = delete;

  private:
    StageTimer &timer_;
};

} // namespace lazydp

#endif // LAZYDP_COMMON_TIMER_H
