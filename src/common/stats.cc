#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"

namespace lazydp {

void
RunningStat::reset()
{
    n_ = 0;
    mean_ = m2_ = m3_ = m4_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

void
RunningStat::push(double x)
{
    // Welford / Pebay update of the first four central moments.
    const double n1 = static_cast<double>(n_);
    ++n_;
    const double n = static_cast<double>(n_);
    const double delta = x - mean_;
    const double delta_n = delta / n;
    const double delta_n2 = delta_n * delta_n;
    const double term1 = delta * delta_n * n1;

    mean_ += delta_n;
    m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) +
           6.0 * delta_n2 * m2_ - 4.0 * delta_n * m3_;
    m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
    m2_ += term1;

    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStat::pushAll(const float *data, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        push(static_cast<double>(data[i]));
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::excessKurtosis() const
{
    if (n_ < 4 || m2_ == 0.0)
        return 0.0;
    const double n = static_cast<double>(n_);
    return n * m4_ / (m2_ * m2_) - 3.0;
}

double
RunningStat::skewness() const
{
    if (n_ < 3 || m2_ == 0.0)
        return 0.0;
    const double n = static_cast<double>(n_);
    return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo),
      hi_(hi),
      width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0),
      underflow_(0),
      overflow_(0),
      total_(0)
{
    LAZYDP_ASSERT(hi > lo && bins > 0, "degenerate histogram");
}

void
Histogram::push(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    const auto bin = static_cast<std::size_t>((x - lo_) / width_);
    ++counts_[std::min(bin, counts_.size() - 1)];
}

double
Histogram::binCenter(std::size_t i) const
{
    return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double
Histogram::chiSquared(const std::vector<double> &expected_probs) const
{
    LAZYDP_ASSERT(expected_probs.size() == counts_.size(),
                  "probability vector must match bin count");
    double chi2 = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double expected =
            expected_probs[i] * static_cast<double>(total_);
        if (expected <= 0.0)
            continue;
        const double diff = static_cast<double>(counts_[i]) - expected;
        chi2 += diff * diff / expected;
    }
    return chi2;
}

double
quantile(std::vector<double> v, double q)
{
    LAZYDP_ASSERT(!v.empty(), "quantile of empty vector");
    LAZYDP_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of range");
    std::sort(v.begin(), v.end());
    const double pos = q * static_cast<double>(v.size() - 1);
    const auto idx = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(idx);
    if (idx + 1 >= v.size())
        return v.back();
    return v[idx] * (1.0 - frac) + v[idx + 1] * frac;
}

namespace stats {

double
percentileNearestRank(const std::vector<double> &sorted, double q)
{
    LAZYDP_ASSERT(!sorted.empty(), "percentile of empty vector");
    LAZYDP_ASSERT(q > 0.0 && q <= 1.0, "quantile out of (0, 1]");
    const double n = static_cast<double>(sorted.size());
    auto rank = static_cast<std::size_t>(std::ceil(q * n));
    if (rank < 1)
        rank = 1;
    if (rank > sorted.size())
        rank = sorted.size();
    return sorted[rank - 1];
}

Percentiles
computePercentiles(std::vector<double> samples)
{
    Percentiles p;
    if (samples.empty())
        return p;
    std::sort(samples.begin(), samples.end());
    p.count = samples.size();
    p.min = samples.front();
    p.max = samples.back();
    double sum = 0.0;
    for (const double s : samples)
        sum += s;
    p.mean = sum / static_cast<double>(samples.size());
    p.p50 = percentileNearestRank(samples, 0.50);
    p.p95 = percentileNearestRank(samples, 0.95);
    p.p99 = percentileNearestRank(samples, 0.99);
    p.p999 = percentileNearestRank(samples, 0.999);
    return p;
}

} // namespace stats

double
normalCdf(double x)
{
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

} // namespace lazydp
