/**
 * @file
 * Column-aligned table printing for the benchmark harnesses.
 *
 * Every bench binary reproduces one of the paper's figures by printing
 * the same rows/series the figure plots; TablePrinter renders those rows
 * both as an aligned console table and (optionally) as CSV.
 */

#ifndef LAZYDP_COMMON_TABLE_PRINTER_H
#define LAZYDP_COMMON_TABLE_PRINTER_H

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace lazydp {

/** Builds and renders a simple text table. */
class TablePrinter
{
  public:
    /** @param title caption printed above the table. */
    explicit TablePrinter(std::string title);

    /** Set the column headers (defines column count). */
    void setHeader(std::vector<std::string> header);

    /** Append a row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with @p precision digits. */
    static std::string num(double v, int precision = 2);

    /** Render as an aligned console table. */
    void print(std::ostream &os) const;

    /** Render as CSV (header + rows). */
    void printCsv(std::ostream &os) const;

    /** @return number of data rows added so far. */
    std::size_t rows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace lazydp

#endif // LAZYDP_COMMON_TABLE_PRINTER_H
