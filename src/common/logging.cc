#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace lazydp {

namespace {

std::atomic<bool> throw_mode{false};

} // namespace

void
setLogThrowMode(bool throw_instead_of_abort)
{
    throw_mode.store(throw_instead_of_abort);
}

bool
logThrowMode()
{
    return throw_mode.load();
}

namespace detail {

void
panicImpl(const std::string &msg)
{
    if (throw_mode.load())
        throw std::runtime_error("panic: " + msg);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    if (throw_mode.load())
        throw std::runtime_error("fatal: " + msg);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
    std::fflush(stdout);
}

} // namespace detail

} // namespace lazydp
