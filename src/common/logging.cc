#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace lazydp {

namespace {

std::atomic<bool> throw_mode{false};

LogLevel
levelFromEnv()
{
    const char *env = std::getenv("LAZYDP_LOG_LEVEL");
    if (env == nullptr)
        return LogLevel::Inform;
    const std::string name(env);
    if (name == "inform" || name == "info")
        return LogLevel::Inform;
    if (name == "warn")
        return LogLevel::Warn;
    if (name == "error")
        return LogLevel::Error;
    // A typo'd env var must not silently mute the process: say so
    // (this one line ignores the threshold by design) and stay chatty.
    std::fprintf(stderr,
                 "warn: LAZYDP_LOG_LEVEL='%s' is not inform|warn|error;"
                 " using inform\n",
                 env);
    return LogLevel::Inform;
}

std::atomic<int> &
levelVar()
{
    // Resolved from the environment exactly once, on first use.
    static std::atomic<int> level{static_cast<int>(levelFromEnv())};
    return level;
}

/**
 * Emit one record with a SINGLE stdio call: the full line (prefix +
 * message + newline) is assembled first, so concurrent records from
 * serve lanes, the governor and the sampler never interleave
 * mid-line (stdio locks the stream per call).
 */
void
emitLine(std::FILE *stream, const char *prefix, const std::string &msg)
{
    std::string line;
    line.reserve(msg.size() + 16);
    line.append(prefix);
    line.append(msg);
    line.push_back('\n');
    std::fwrite(line.data(), 1, line.size(), stream);
    std::fflush(stream);
}

} // namespace

void
setLogThrowMode(bool throw_instead_of_abort)
{
    throw_mode.store(throw_instead_of_abort);
}

bool
logThrowMode()
{
    return throw_mode.load();
}

void
setLogLevel(LogLevel level)
{
    levelVar().store(static_cast<int>(level),
                     std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return static_cast<LogLevel>(
        levelVar().load(std::memory_order_relaxed));
}

LogLevel
parseLogLevel(const std::string &name)
{
    if (name == "inform" || name == "info")
        return LogLevel::Inform;
    if (name == "warn")
        return LogLevel::Warn;
    if (name == "error")
        return LogLevel::Error;
    fatal("unknown log level '", name, "' (expected inform|warn|error)");
}

namespace detail {

void
panicImpl(const std::string &msg)
{
    if (throw_mode.load())
        throw std::runtime_error("panic: " + msg);
    emitLine(stderr, "panic: ", msg);
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    if (throw_mode.load())
        throw std::runtime_error("fatal: " + msg);
    emitLine(stderr, "fatal: ", msg);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() > LogLevel::Warn)
        return;
    emitLine(stderr, "warn: ", msg);
}

void
informImpl(const std::string &msg)
{
    if (logLevel() > LogLevel::Inform)
        return;
    emitLine(stdout, "info: ", msg);
}

} // namespace detail

} // namespace lazydp
