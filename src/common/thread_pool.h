/**
 * @file
 * The repository-wide parallel execution layer.
 *
 * One threading model for every hot path: a persistent pool of worker
 * threads plus two static-partition loop primitives. No work stealing,
 * no nested parallelism -- the paper's kernels (dense noise sweeps,
 * streaming table updates, sparse LazyDP updates, DLRM GEMMs) are all
 * embarrassingly parallel over rows or blocks, so a fixed partition is
 * both the fastest schedule and the only deterministic one.
 *
 * Determinism contract: parallelForShards computes shard boundaries
 * from the iteration count and grain ONLY -- never from the thread
 * count -- and every index is processed exactly once by exactly one
 * shard. A loop whose shards write disjoint locations (or accumulate
 * into per-shard slots merged in shard order afterwards) therefore
 * produces bit-identical results at any thread count, which is what
 * keeps the keyed-noise equivalence guarantee (LazyDP == eager DP-SGD
 * on the final model) intact under `--threads N`.
 *
 * parallelFor splits [0, n) into one contiguous chunk per thread; use
 * it when each index owns its outputs outright (per-example loops,
 * per-row GEMM loops). Use parallelForShards when downstream code
 * depends on the partition geometry (per-shard reductions).
 */

#ifndef LAZYDP_COMMON_THREAD_POOL_H
#define LAZYDP_COMMON_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/cpu_set.h"

namespace lazydp {

/** @return the host's hardware thread count (>= 1). */
std::size_t hardwareThreads();

/**
 * Waitable handle to a task submitted with ThreadPool::submit.
 *
 * wait() blocks until the task has finished and rethrows the task's
 * exception (if any); it may be called more than once. A
 * default-constructed handle is invalid and must not be waited on.
 */
class TaskHandle
{
  public:
    TaskHandle() = default;

    /** @return true when this handle refers to a submitted task. */
    bool valid() const { return state_ != nullptr; }

    /** Block until the task completes; rethrows its exception. */
    void wait();

    /** Shared completion state (public for the pool's internals). */
    struct State
    {
        std::function<void()> fn;
        std::mutex mu;
        std::condition_variable cv;
        bool done = false;
        std::exception_ptr error;
    };

  private:
    friend class ThreadPool;
    explicit TaskHandle(std::shared_ptr<State> state)
        : state_(std::move(state))
    {
    }

    std::shared_ptr<State> state_;
};

/**
 * Fixed-size pool of persistent worker threads.
 *
 * The calling thread participates in every dispatch, so a pool built
 * with `threads == n` runs loop bodies on n OS threads total (n-1
 * workers + caller). Construction with threads <= 1 spawns nothing and
 * run() degenerates to a serial loop.
 */
class ThreadPool
{
  public:
    /** @param threads total execution width (workers + caller). */
    explicit ThreadPool(std::size_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** @return total execution width (>= 1). */
    std::size_t threads() const { return workers_.size() + 1; }

    /**
     * Execute task(i) for every i in [0, num_tasks) across the pool;
     * returns once all tasks have finished. Tasks are claimed through
     * an atomic cursor, so completion ORDER is unspecified -- callers
     * must make tasks write disjoint outputs.
     *
     * Re-entrant dispatch from inside a task body runs serially on the
     * calling worker (nested parallelism is deliberately flattened).
     *
     * If a task throws, remaining unclaimed tasks are abandoned, the
     * dispatch drains (no thread is left inside the closure), and the
     * first exception is rethrown to the caller.
     */
    void run(std::size_t num_tasks,
             const std::function<void(std::size_t)> &task);

    /**
     * Enqueue @p fn on asynchronous lane 0 and return immediately --
     * shorthand for submitLane(0, fn). Lane 0 is the software-pipeline
     * primitive the Trainer uses to overlap next-iteration noise
     * preparation and batch prefetch with the current iteration's dense
     * compute.
     */
    TaskHandle submit(std::function<void()> fn);

    /** Maximum number of asynchronous lanes. */
    static constexpr std::size_t kMaxLanes = 32;

    // Repository-wide lane allocation. Lanes are dedicated FIFO
    // threads, so subsystems that must overlap get distinct lanes:
    //  - kPipelineLane: the Trainer's software pipeline (next-iteration
    //    prepare + batch prefetch overlapping dense compute).
    //  - kReplicaLaneBase..+N-2: data-parallel worker replicas
    //    (train/replica.h runs replica r on lane kReplicaLaneBase+r-1).
    //  - kTierPrefetchLane: the out-of-core warm task (tiered_store.h)
    //    read-touching next-iteration cold pages into the page cache.
    //  - kServeLaneBase..: online-serving scoring workers
    //    (serve/serve_engine.h claims lanes upward from here).
    static constexpr std::size_t kPipelineLane = 0;
    static constexpr std::size_t kReplicaLaneBase = 1;
    static constexpr std::size_t kTierPrefetchLane = 7;
    static constexpr std::size_t kServeLaneBase = 8;

    /**
     * Enqueue @p fn on asynchronous lane @p lane (< kMaxLanes) and
     * return immediately. Each lane is ONE dedicated thread (spawned
     * lazily on first use, independent of the loop-dispatch width, so
     * lanes work even on a width-1 pool): tasks on the same lane
     * execute in submission order, one at a time; distinct lanes run
     * concurrently with each other and with the caller. Lane 0 carries
     * the Trainer's pipelined prepare stage; the data-parallel replica
     * dispatch (train/replica.h) runs worker replicas on lanes 1..N-1.
     *
     * Tasks run with nested-dispatch flattening active: any
     * parallelFor / ThreadPool::run issued from inside a submitted task
     * degenerates to a serial loop instead of racing the main thread's
     * own dispatches for the loop workers.
     *
     * The destructor drains every lane: tasks already submitted all run
     * to completion before the pool dies. Exceptions are captured and
     * rethrown from TaskHandle::wait.
     */
    TaskHandle submitLane(std::size_t lane, std::function<void()> fn);

    /**
     * Restrict every loop-dispatch worker to the CPUs in @p set. The
     * dispatching CALLER is not a pool thread and is not pinned --
     * callers that participate in dispatch (Trainer's main thread)
     * should pin themselves with pinCurrentThread(set) so the whole
     * compute side lands on one core set. No-op on an empty set or
     * where pinning is unsupported (see cpu_set.h).
     */
    void setWorkerAffinity(const CpuSet &set);

    /**
     * Restrict lane @p lane to the CPUs in @p set. Takes effect
     * immediately if the lane thread is already running, and is
     * remembered so a lane spawned lazily later starts pinned -- call
     * order between setLaneAffinity and the first submitLane does not
     * matter. An empty set clears any recorded reservation (future
     * spawns inherit the OS default; an already-running lane keeps its
     * current mask).
     */
    void setLaneAffinity(std::size_t lane, const CpuSet &set);

    /**
     * Reserve the lane range [@p lo, @p hi) onto @p set -- shorthand
     * for setLaneAffinity on each lane. This is the isolation
     * primitive: reserveLanes(kServeLaneBase, kMaxLanes, serve_cores)
     * pins every current and future serve lane onto cores the
     * parallelFor workers (pinned elsewhere via setWorkerAffinity)
     * never touch.
     */
    void reserveLanes(std::size_t lo, std::size_t hi, const CpuSet &set);

  private:
    struct Lane;

    void workerLoop();
    void laneLoop(Lane &lane);

    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable wake_;
    std::condition_variable done_;
    const std::function<void(std::size_t)> *task_ = nullptr;
    std::size_t taskCount_ = 0;
    std::atomic<std::size_t> cursor_{0};
    std::size_t pending_ = 0;    //!< workers still inside the dispatch
    std::uint64_t generation_ = 0;
    bool stop_ = false;
    std::exception_ptr error_;   //!< first throw of the dispatch

    // Asynchronous FIFO lanes (ThreadPool::submit / submitLane). Lanes
    // are created lazily; the vector only grows, under lanesMu_.
    std::mutex lanesMu_;
    std::vector<std::unique_ptr<Lane>> lanes_;
    std::vector<CpuSet> laneAffinity_; //!< per-lane reservation (lanesMu_)
};

/**
 * Execution context threaded through Algorithm::step/finalize and every
 * parallel kernel beneath them. A null pool means serial execution --
 * the context is then just "one thread" and costs nothing to consult.
 */
struct ExecContext
{
    ExecContext() = default;
    explicit ExecContext(ThreadPool *p) : pool(p) {}

    ThreadPool *pool = nullptr; //!< not owned; nullptr = serial

    /**
     * Data-parallel worker replicas the lot-sharded engines fan their
     * per-microbatch gradient production across (train/replica.h). Must
     * be a divisor of kLotShards (1, 2 or 4); 1 = no replication. The
     * trained model never depends on this value -- replicas only choose
     * WHERE each fixed microbatch shard executes.
     */
    std::size_t replicas = 1;

    /** @return execution width this context dispatches onto. */
    std::size_t
    threads() const
    {
        return pool == nullptr ? 1 : pool->threads();
    }

    /** @return the shared serial (single-thread) context. */
    static ExecContext &serial();
};

/**
 * Run body(lo, hi) over a static partition of [0, n): one contiguous
 * chunk per thread. Chunk boundaries depend on the thread count, so use
 * this only when each index's outputs are independent of the partition
 * (disjoint writes; any per-index arithmetic stays within the index).
 */
void parallelFor(ExecContext &exec, std::size_t n,
                 const std::function<void(std::size_t, std::size_t)> &body);

/** @return number of fixed shards for @p n items at @p grain. */
inline std::size_t
shardCount(std::size_t n, std::size_t grain)
{
    if (n == 0)
        return 0;
    const std::size_t g = grain == 0 ? 1 : grain;
    return (n + g - 1) / g;
}

/**
 * Boundaries of chunk @p chunk in a balanced split of [0, n) into
 * @p num_chunks parts: the first n % num_chunks chunks get one extra
 * element. Used by parallelFor to hand each thread one chunk.
 */
inline std::pair<std::size_t, std::size_t>
shardBounds(std::size_t n, std::size_t num_chunks, std::size_t chunk)
{
    const std::size_t base = n / num_chunks;
    const std::size_t rem = n % num_chunks;
    const std::size_t lo =
        chunk * base + (chunk < rem ? chunk : rem);
    const std::size_t hi = lo + base + (chunk < rem ? 1 : 0);
    return {lo, hi};
}

/**
 * Boundaries of shard @p shard at fixed @p grain: exactly
 * [shard*grain, min(n, (shard+1)*grain)). Depends only on (n, grain,
 * shard) -- NOT on the thread count -- which is what makes sharded
 * loops deterministic: grain-aligned starts also keep SIMD kernels
 * that process fixed-size sample groups (e.g. the 8-block AVX2
 * Box-Muller path) on the same group boundaries the serial sweep uses.
 */
inline std::pair<std::size_t, std::size_t>
grainBounds(std::size_t n, std::size_t grain, std::size_t shard)
{
    const std::size_t g = grain == 0 ? 1 : grain;
    const std::size_t lo = shard * g;
    const std::size_t hi = lo + g < n ? lo + g : n;
    return {lo, hi};
}

/**
 * Run body(shard, lo, hi) for every shard of [0, n) with boundaries
 * fixed by (n, grain) alone (see grainBounds). Shards execute
 * concurrently in unspecified order; per-shard results indexed by
 * `shard` can be merged in shard order afterwards for a deterministic
 * reduction. The serial fallback iterates the SAME shards in order, so
 * results never depend on the execution width.
 *
 * @param grain shard size (the last shard may be shorter)
 */
void parallelForShards(
    ExecContext &exec, std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>
        &body);

} // namespace lazydp

#endif // LAZYDP_COMMON_THREAD_POOL_H
