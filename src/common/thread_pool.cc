#include "common/thread_pool.h"

#include <algorithm>
#include <exception>

#include "common/macros.h"
#include "obs/trace.h"

namespace lazydp {

namespace {

/** Set while a thread executes inside ThreadPool::run (workers AND the
 *  dispatching caller), to flatten accidental nested dispatch. */
thread_local bool tls_in_pool = false;

/** Exception-safe scope for tls_in_pool. */
struct InPoolScope
{
    InPoolScope() { tls_in_pool = true; }
    ~InPoolScope() { tls_in_pool = false; }
};

/** Trace display name of lane @p lane (literals: the trace recorder
 *  keeps the pointer). The known reserved lanes get semantic names so
 *  a Perfetto timeline reads as the system's lane map. */
const char *
laneTraceName(std::size_t lane)
{
    switch (lane) {
      case ThreadPool::kPipelineLane: return "lane-pipeline";
      case 1: return "lane-replica-1";
      case 2: return "lane-replica-2";
      case 3: return "lane-replica-3";
      case ThreadPool::kTierPrefetchLane: return "lane-tier-warm";
      case ThreadPool::kServeLaneBase + 0: return "serve-0";
      case ThreadPool::kServeLaneBase + 1: return "serve-1";
      case ThreadPool::kServeLaneBase + 2: return "serve-2";
      case ThreadPool::kServeLaneBase + 3: return "serve-3";
      case ThreadPool::kServeLaneBase + 4: return "serve-4";
      case ThreadPool::kServeLaneBase + 5: return "serve-5";
      case ThreadPool::kServeLaneBase + 6: return "serve-6";
      case ThreadPool::kServeLaneBase + 7: return "serve-7";
      default: break;
    }
    return "lane";
}

/** Trace display name of loop worker @p i. */
const char *
workerTraceName(std::size_t i)
{
    static const char *const names[] = {
        "worker-0", "worker-1", "worker-2",  "worker-3",
        "worker-4", "worker-5", "worker-6",  "worker-7",
        "worker-8", "worker-9", "worker-10", "worker-11",
    };
    constexpr std::size_t n = sizeof(names) / sizeof(names[0]);
    return i < n ? names[i] : "worker";
}

} // namespace

std::size_t
hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<std::size_t>(n);
}

ThreadPool::ThreadPool(std::size_t threads)
{
    const std::size_t n = threads == 0 ? 1 : threads;
    workers_.reserve(n - 1);
    for (std::size_t i = 0; i + 1 < n; ++i)
        workers_.emplace_back([this, i] {
            obs::traceSetThreadName(workerTraceName(i));
            workerLoop();
        });
}

struct ThreadPool::Lane
{
    std::thread worker;
    std::mutex mu;
    std::condition_variable wake;
    std::deque<std::shared_ptr<TaskHandle::State>> queue;
    bool stop = false;
};

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();

    // No further submits can race this: lanes_ only grows from
    // submitLane, and the pool's owner is destroying it.
    for (auto &lane : lanes_) {
        if (lane == nullptr)
            continue;
        {
            std::lock_guard<std::mutex> lock(lane->mu);
            lane->stop = true;
        }
        lane->wake.notify_all();
        if (lane->worker.joinable())
            lane->worker.join();
    }
}

void
TaskHandle::wait()
{
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->done; });
    if (state_->error != nullptr)
        std::rethrow_exception(state_->error);
}

TaskHandle
ThreadPool::submit(std::function<void()> fn)
{
    return submitLane(0, std::move(fn));
}

TaskHandle
ThreadPool::submitLane(std::size_t lane_id, std::function<void()> fn)
{
    LAZYDP_ASSERT(lane_id < kMaxLanes, "lane id out of range");
    auto state = std::make_shared<TaskHandle::State>();
    state->fn = std::move(fn);
    Lane *lane;
    {
        std::lock_guard<std::mutex> lock(lanesMu_);
        if (lanes_.size() <= lane_id)
            lanes_.resize(lane_id + 1);
        if (lanes_[lane_id] == nullptr) {
            lanes_[lane_id] = std::make_unique<Lane>();
            Lane *fresh = lanes_[lane_id].get();
            fresh->worker = std::thread([this, fresh, lane_id] {
                obs::traceSetThreadName(laneTraceName(lane_id));
                laneLoop(*fresh);
            });
            // Honor a reservation recorded before the lazy spawn.
            if (lane_id < laneAffinity_.size())
                pinThread(fresh->worker, laneAffinity_[lane_id]);
        }
        lane = lanes_[lane_id].get();
    }
    {
        std::lock_guard<std::mutex> lock(lane->mu);
        lane->queue.push_back(state);
    }
    lane->wake.notify_one();
    return TaskHandle(std::move(state));
}

void
ThreadPool::setWorkerAffinity(const CpuSet &set)
{
    for (auto &w : workers_)
        pinThread(w, set);
}

void
ThreadPool::setLaneAffinity(std::size_t lane_id, const CpuSet &set)
{
    LAZYDP_ASSERT(lane_id < kMaxLanes, "lane id out of range");
    std::lock_guard<std::mutex> lock(lanesMu_);
    if (laneAffinity_.size() <= lane_id)
        laneAffinity_.resize(lane_id + 1);
    laneAffinity_[lane_id] = set;
    if (lane_id < lanes_.size() && lanes_[lane_id] != nullptr)
        pinThread(lanes_[lane_id]->worker, set);
}

void
ThreadPool::reserveLanes(std::size_t lo, std::size_t hi,
                         const CpuSet &set)
{
    LAZYDP_ASSERT(lo <= hi && hi <= kMaxLanes,
                  "lane range out of bounds");
    for (std::size_t lane = lo; lane < hi; ++lane)
        setLaneAffinity(lane, set);
}

void
ThreadPool::laneLoop(Lane &lane)
{
    for (;;) {
        std::shared_ptr<TaskHandle::State> task;
        {
            std::unique_lock<std::mutex> lock(lane.mu);
            lane.wake.wait(lock, [&] {
                return lane.stop || !lane.queue.empty();
            });
            // Drain the whole queue before honoring stop: destruction
            // must not abandon submitted tasks (a wait() on one would
            // block forever).
            if (lane.queue.empty())
                return;
            task = std::move(lane.queue.front());
            lane.queue.pop_front();
        }
        try {
            // Flatten any pool dispatch issued from inside the task:
            // the loop workers belong to the main thread's compute.
            InPoolScope scope;
            task->fn();
        } catch (...) {
            task->error = std::current_exception();
        }
        task->fn = nullptr; // release captures before signaling
        {
            std::lock_guard<std::mutex> lock(task->mu);
            task->done = true;
        }
        task->cv.notify_all();
    }
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(std::size_t)> *task = nullptr;
        std::size_t count = 0;
        {
            std::unique_lock<std::mutex> lock(mu_);
            wake_.wait(lock, [&] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
            task = task_;
            count = taskCount_;
        }
        try {
            InPoolScope scope;
            for (;;) {
                const std::size_t i =
                    cursor_.fetch_add(1, std::memory_order_relaxed);
                if (i >= count)
                    break;
                (*task)(i);
            }
        } catch (...) {
            // Abandon unclaimed tasks and surface the first throw to
            // the dispatching caller.
            cursor_.store(count, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(mu_);
            if (error_ == nullptr)
                error_ = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--pending_ == 0)
                done_.notify_one();
        }
    }
}

void
ThreadPool::run(std::size_t num_tasks,
                const std::function<void(std::size_t)> &task)
{
    if (num_tasks == 0)
        return;
    // Serial fallbacks: a width-1 pool, a single task, or dispatch from
    // inside a running task (nested parallelism is flattened).
    if (workers_.empty() || num_tasks == 1 || tls_in_pool) {
        for (std::size_t i = 0; i < num_tasks; ++i)
            task(i);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mu_);
        task_ = &task;
        taskCount_ = num_tasks;
        cursor_.store(0, std::memory_order_relaxed);
        pending_ = workers_.size();
        error_ = nullptr;
        ++generation_;
    }
    wake_.notify_all();

    // The caller is a full participant. A throw here must NOT unwind
    // past the drain below: workers may still be inside the closure
    // whose captures live in the caller's dying stack frame.
    try {
        InPoolScope scope;
        for (;;) {
            const std::size_t i =
                cursor_.fetch_add(1, std::memory_order_relaxed);
            if (i >= num_tasks)
                break;
            task(i);
        }
    } catch (...) {
        cursor_.store(num_tasks, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mu_);
        if (error_ == nullptr)
            error_ = std::current_exception();
    }

    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mu_);
        done_.wait(lock, [&] { return pending_ == 0; });
        task_ = nullptr;
        error = error_;
        error_ = nullptr;
    }
    if (error != nullptr)
        std::rethrow_exception(error);
}

ExecContext &
ExecContext::serial()
{
    static ExecContext ctx;
    return ctx;
}

void
parallelFor(ExecContext &exec, std::size_t n,
            const std::function<void(std::size_t, std::size_t)> &body)
{
    if (n == 0)
        return;
    const std::size_t width = std::min(exec.threads(), n);
    if (width <= 1 || exec.pool == nullptr) {
        body(0, n);
        return;
    }
    exec.pool->run(width, [&](std::size_t chunk) {
        const auto [lo, hi] = shardBounds(n, width, chunk);
        if (lo < hi)
            body(lo, hi);
    });
}

void
parallelForShards(
    ExecContext &exec, std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>
        &body)
{
    const std::size_t shards = shardCount(n, grain);
    if (shards == 0)
        return;
    if (shards == 1 || exec.threads() <= 1 || exec.pool == nullptr) {
        for (std::size_t s = 0; s < shards; ++s) {
            const auto [lo, hi] = grainBounds(n, grain, s);
            body(s, lo, hi);
        }
        return;
    }
    exec.pool->run(shards, [&](std::size_t s) {
        const auto [lo, hi] = grainBounds(n, grain, s);
        body(s, lo, hi);
    });
}

} // namespace lazydp
