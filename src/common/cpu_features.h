/**
 * @file
 * Host CPU feature detection (AVX2 / AVX-512F / FMA).
 *
 * The SIMD noise kernels select a code path at startup based on these
 * flags; tests use them to skip ISA-specific cases on older hosts.
 */

#ifndef LAZYDP_COMMON_CPU_FEATURES_H
#define LAZYDP_COMMON_CPU_FEATURES_H

namespace lazydp {

/** Feature flags of the executing CPU. */
struct CpuFeatures
{
    bool avx2 = false;    //!< AVX2 (256-bit integer + FP)
    bool avx512f = false; //!< AVX-512 Foundation
    bool fma = false;     //!< fused multiply-add
};

/** @return cached feature flags of this host (queried once via cpuid). */
const CpuFeatures &cpuFeatures();

} // namespace lazydp

#endif // LAZYDP_COMMON_CPU_FEATURES_H
