#include "common/timer.h"

#include "common/macros.h"
#include "obs/metrics.h"

namespace lazydp {

namespace {

/** Registry counters backing the StageTimer slots, interned once per
 *  process: slot i of every StageTimer mirrors into stageMetricIds[i]
 *  (the telemetry view of the paper's stage breakdown). */
const std::array<obs::MetricId,
                 static_cast<std::size_t>(Stage::NumStages)> &
stageMetricIds()
{
    static const auto ids = [] {
        std::array<obs::MetricId,
                   static_cast<std::size_t>(Stage::NumStages)>
            out{};
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(Stage::NumStages); ++i) {
            const std::string name =
                std::string("train.stage.") +
                stageSlug(static_cast<Stage>(i)) + "_ns";
            out[i] = obs::internMetric(name.c_str(),
                                       obs::MetricKind::Counter);
        }
        return out;
    }();
    return ids;
}

/** Mirror @p seconds of stage @p s into its registry counter. */
void
mirrorStage(Stage s, double seconds)
{
    if (!obs::metricsEnabled())
        return;
    obs::counterAdd(stageMetricIds()[static_cast<std::size_t>(s)],
                    static_cast<std::uint64_t>(seconds * 1e9));
}

} // namespace

const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::Forward:            return "Fwd";
      case Stage::BackwardPerExample: return "Bwd(per-example)";
      case Stage::BackwardPerBatch:   return "Bwd(per-batch)";
      case Stage::GradCoalesce:       return "Gradient coalescing";
      case Stage::NoiseSampling:      return "Noise sampling";
      case Stage::NoisyGradGen:       return "Noisy gradient generation";
      case Stage::NoisyGradUpdate:    return "Noisy gradient update";
      case Stage::LazyOverhead:       return "LazyDP overhead";
      case Stage::Else:               return "Else";
      default: break;
    }
    LAZYDP_UNREACHABLE("bad Stage value");
}

const char *
stageSlug(Stage s)
{
    switch (s) {
      case Stage::Forward:            return "fwd";
      case Stage::BackwardPerExample: return "bwd_ex";
      case Stage::BackwardPerBatch:   return "bwd_batch";
      case Stage::GradCoalesce:       return "coalesce";
      case Stage::NoiseSampling:      return "noise";
      case Stage::NoisyGradGen:       return "noisy_gen";
      case Stage::NoisyGradUpdate:    return "noisy_update";
      case Stage::LazyOverhead:       return "lazy";
      case Stage::Else:               return "else";
      default: break;
    }
    LAZYDP_UNREACHABLE("bad Stage value");
}

StageTimer::StageTimer() : running_(Stage::Else), active_(false)
{
    acc_.fill(0.0);
}

void
StageTimer::reset()
{
    acc_.fill(0.0);
    active_ = false;
}

void
StageTimer::start(Stage s)
{
    LAZYDP_ASSERT(!active_, "StageTimer regions must not nest");
    running_ = s;
    active_ = true;
    clock_.reset();
}

void
StageTimer::stop()
{
    LAZYDP_ASSERT(active_, "StageTimer::stop without start");
    const double seconds = clock_.seconds();
    acc_[static_cast<std::size_t>(running_)] += seconds;
    active_ = false;
    mirrorStage(running_, seconds);
}

void
StageTimer::add(Stage s, double seconds)
{
    acc_[static_cast<std::size_t>(s)] += seconds;
    mirrorStage(s, seconds);
}

double
StageTimer::seconds(Stage s) const
{
    return acc_[static_cast<std::size_t>(s)];
}

double
StageTimer::totalSeconds() const
{
    double total = 0.0;
    for (double v : acc_)
        total += v;
    return total;
}

std::map<std::string, double>
StageTimer::breakdown() const
{
    std::map<std::string, double> out;
    for (std::size_t i = 0; i < acc_.size(); ++i)
        out[stageName(static_cast<Stage>(i))] = acc_[i];
    return out;
}

void
StageTimer::merge(const StageTimer &other)
{
    // Slot-wise only: the other timer already mirrored its times into
    // the shared registry counters when it accumulated them.
    for (std::size_t i = 0; i < acc_.size(); ++i)
        acc_[i] += other.acc_[i];
}

} // namespace lazydp
