#include "common/timer.h"

#include "common/macros.h"

namespace lazydp {

const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::Forward:            return "Fwd";
      case Stage::BackwardPerExample: return "Bwd(per-example)";
      case Stage::BackwardPerBatch:   return "Bwd(per-batch)";
      case Stage::GradCoalesce:       return "Gradient coalescing";
      case Stage::NoiseSampling:      return "Noise sampling";
      case Stage::NoisyGradGen:       return "Noisy gradient generation";
      case Stage::NoisyGradUpdate:    return "Noisy gradient update";
      case Stage::LazyOverhead:       return "LazyDP overhead";
      case Stage::Else:               return "Else";
      default: break;
    }
    LAZYDP_UNREACHABLE("bad Stage value");
}

StageTimer::StageTimer()
    : acc_(static_cast<std::size_t>(Stage::NumStages), 0.0),
      running_(Stage::Else),
      active_(false)
{
}

void
StageTimer::reset()
{
    acc_.assign(static_cast<std::size_t>(Stage::NumStages), 0.0);
    active_ = false;
}

void
StageTimer::start(Stage s)
{
    LAZYDP_ASSERT(!active_, "StageTimer regions must not nest");
    running_ = s;
    active_ = true;
    clock_.reset();
}

void
StageTimer::stop()
{
    LAZYDP_ASSERT(active_, "StageTimer::stop without start");
    acc_[static_cast<std::size_t>(running_)] += clock_.seconds();
    active_ = false;
}

void
StageTimer::add(Stage s, double seconds)
{
    acc_[static_cast<std::size_t>(s)] += seconds;
}

double
StageTimer::seconds(Stage s) const
{
    return acc_[static_cast<std::size_t>(s)];
}

double
StageTimer::totalSeconds() const
{
    double total = 0.0;
    for (double v : acc_)
        total += v;
    return total;
}

std::map<std::string, double>
StageTimer::breakdown() const
{
    std::map<std::string, double> out;
    for (std::size_t i = 0; i < acc_.size(); ++i)
        out[stageName(static_cast<Stage>(i))] = acc_[i];
    return out;
}

void
StageTimer::merge(const StageTimer &other)
{
    for (std::size_t i = 0; i < acc_.size(); ++i)
        acc_[i] += other.acc_[i];
}

} // namespace lazydp
