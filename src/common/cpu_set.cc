#include "common/cpu_set.h"

#include <cctype>
#include <cstdlib>

#include "common/macros.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace lazydp {

bool
CpuSet::parse(const std::string &list, CpuSet *out)
{
    LAZYDP_ASSERT(out != nullptr, "CpuSet::parse needs an output");
    *out = CpuSet();
    if (list.empty())
        return true;

    CpuSet parsed;
    std::size_t pos = 0;
    const auto read_number = [&](std::size_t *value) -> bool {
        if (pos >= list.size() ||
            !std::isdigit(static_cast<unsigned char>(list[pos])))
            return false;
        std::size_t v = 0;
        while (pos < list.size() &&
               std::isdigit(static_cast<unsigned char>(list[pos]))) {
            v = v * 10 + static_cast<std::size_t>(list[pos] - '0');
            if (v >= kMaxCpus)
                return false;
            ++pos;
        }
        *value = v;
        return true;
    };

    for (;;) {
        std::size_t lo = 0;
        if (!read_number(&lo))
            return false;
        std::size_t hi = lo;
        if (pos < list.size() && list[pos] == '-') {
            ++pos;
            if (!read_number(&hi) || hi < lo)
                return false;
        }
        for (std::size_t cpu = lo; cpu <= hi; ++cpu)
            parsed.add(cpu);
        if (pos == list.size())
            break;
        if (list[pos] != ',')
            return false;
        ++pos; // a trailing comma falls through to read_number -> false
    }
    *out = parsed;
    return true;
}

void
CpuSet::add(std::size_t cpu)
{
    LAZYDP_ASSERT(cpu < kMaxCpus, "cpu id out of range");
    bits_[cpu / 64] |= std::uint64_t{1} << (cpu % 64);
}

bool
CpuSet::contains(std::size_t cpu) const
{
    if (cpu >= kMaxCpus)
        return false;
    return (bits_[cpu / 64] >> (cpu % 64)) & 1;
}

std::size_t
CpuSet::count() const
{
    std::size_t n = 0;
    for (std::uint64_t word : bits_)
        for (; word != 0; word &= word - 1)
            ++n;
    return n;
}

std::vector<std::size_t>
CpuSet::cpus() const
{
    std::vector<std::size_t> out;
    for (std::size_t cpu = 0; cpu < kMaxCpus; ++cpu)
        if (contains(cpu))
            out.push_back(cpu);
    return out;
}

std::string
CpuSet::toString() const
{
    std::string out;
    const auto ids = cpus();
    std::size_t i = 0;
    while (i < ids.size()) {
        std::size_t j = i;
        while (j + 1 < ids.size() && ids[j + 1] == ids[j] + 1)
            ++j;
        if (!out.empty())
            out += ',';
        out += std::to_string(ids[i]);
        if (j > i) {
            out += j == i + 1 ? "," : "-";
            out += std::to_string(ids[j]);
        }
        i = j + 1;
    }
    return out;
}

bool
cpuPinningSupported()
{
#if defined(__linux__)
    return true;
#else
    return false;
#endif
}

#if defined(__linux__)

namespace {

bool
pinHandle(pthread_t handle, const CpuSet &set)
{
    if (set.empty())
        return true;
    cpu_set_t mask;
    CPU_ZERO(&mask);
    bool any = false;
    for (std::size_t cpu : set.cpus()) {
        if (cpu >= CPU_SETSIZE)
            continue;
        CPU_SET(cpu, &mask);
        any = true;
    }
    if (!any)
        return false;
    return pthread_setaffinity_np(handle, sizeof(mask), &mask) == 0;
}

} // namespace

bool
pinThread(std::thread &thread, const CpuSet &set)
{
    return pinHandle(thread.native_handle(), set);
}

bool
pinCurrentThread(const CpuSet &set)
{
    return pinHandle(pthread_self(), set);
}

#else // !defined(__linux__)

bool
pinThread(std::thread &, const CpuSet &)
{
    return true;
}

bool
pinCurrentThread(const CpuSet &)
{
    return true;
}

#endif

} // namespace lazydp
