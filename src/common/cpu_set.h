/**
 * @file
 * CPU-affinity abstraction for train-vs-serve isolation.
 *
 * A CpuSet is a small value type naming a set of logical CPUs. The
 * pinning entry points wrap pthread_setaffinity_np on Linux and are
 * deliberate no-ops everywhere else (and on empty sets), so callers can
 * express placement unconditionally: "pin serve lanes to --serve-cores"
 * compiles and runs on any host, and only constrains scheduling where
 * the OS supports it. pinThread operates on a std::thread's
 * native_handle, which works on already-running threads -- the
 * ThreadPool uses this to retro-pin lazily spawned lane threads.
 *
 * Parsing accepts the taskset-style list syntax ("0-3,6,9") so the
 * CLI flags read like the cpuset tooling operators already know.
 */

#ifndef LAZYDP_COMMON_CPU_SET_H
#define LAZYDP_COMMON_CPU_SET_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace lazydp {

/**
 * Value-type set of logical CPU ids (0-based). Bounded at kMaxCpus so
 * the representation is a fixed bitmap -- copyable, comparable, and
 * trivially hashable into pthread's cpu_set_t.
 */
class CpuSet
{
  public:
    /** Highest representable CPU id + 1. */
    static constexpr std::size_t kMaxCpus = 1024;

    CpuSet() = default;

    /**
     * Parse a taskset-style list ("0-3,6") into a set. Whitespace is
     * not accepted; an empty string parses to the empty set.
     *
     * @return false (leaving @p out empty) on malformed input: bad
     *   characters, reversed ranges, or ids >= kMaxCpus.
     */
    static bool parse(const std::string &list, CpuSet *out);

    /** Add one CPU id (asserts id < kMaxCpus). */
    void add(std::size_t cpu);

    /** @return true when @p cpu is in the set. */
    bool contains(std::size_t cpu) const;

    /** @return number of CPUs in the set. */
    std::size_t count() const;

    /** @return true when no CPU is in the set. */
    bool empty() const { return count() == 0; }

    /** @return the member CPU ids in increasing order. */
    std::vector<std::size_t> cpus() const;

    /** @return taskset-style list form ("0-3,6"); "" for empty. */
    std::string toString() const;

    bool operator==(const CpuSet &o) const { return bits_ == o.bits_; }
    bool operator!=(const CpuSet &o) const { return !(*this == o); }

  private:
    std::vector<std::uint64_t> bits_ =
        std::vector<std::uint64_t>(kMaxCpus / 64, 0);
};

/**
 * @return true when this build can actually pin threads (Linux with
 *   pthread affinity). When false every pin call is a successful no-op.
 */
bool cpuPinningSupported();

/**
 * Restrict @p thread to the CPUs in @p set. Empty set or unsupported
 * platform: no-op returning true.
 *
 * @return false when the kernel rejected the mask (e.g. every id in
 *   the set is outside the machine's online CPUs).
 */
bool pinThread(std::thread &thread, const CpuSet &set);

/** pinThread for the calling thread. */
bool pinCurrentThread(const CpuSet &set);

} // namespace lazydp

#endif // LAZYDP_COMMON_CPU_SET_H
