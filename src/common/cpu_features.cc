#include "common/cpu_features.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace lazydp {

namespace {

CpuFeatures
detect()
{
    CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (__get_cpuid(1, &eax, &ebx, &ecx, &edx))
        f.fma = (ecx & bit_FMA) != 0;
    if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
        f.avx2 = (ebx & bit_AVX2) != 0;
        f.avx512f = (ebx & bit_AVX512F) != 0;
    }
#endif
    return f;
}

} // namespace

const CpuFeatures &
cpuFeatures()
{
    static const CpuFeatures features = detect();
    return features;
}

} // namespace lazydp
