#include "train/replica.h"

#include <vector>

#include "common/macros.h"

namespace lazydp {

std::size_t
replicaLane(std::size_t r)
{
    LAZYDP_ASSERT(r >= 1, "replica 0 runs on the calling thread");
    const std::size_t lane = kReplicaLaneBase + r - 1;
    if (lane >= ThreadPool::kTierPrefetchLane)
        fatal("replica ", r, " would run on lane ", lane,
              ", which is reserved (tier prefetch = ",
              ThreadPool::kTierPrefetchLane,
              ", serve lanes >= ", ThreadPool::kServeLaneBase,
              "): use at most ",
              ThreadPool::kTierPrefetchLane - kReplicaLaneBase + 1,
              " replicas");
    return lane;
}

void
runReplicated(ExecContext &exec,
              const std::function<void(std::size_t, ExecContext &)> &body)
{
    const std::size_t replicas = exec.replicas == 0 ? 1 : exec.replicas;
    LAZYDP_ASSERT(validReplicas(replicas),
                  "replica count must divide the fixed lot-shard count");

    if (replicas == 1 || exec.pool == nullptr) {
        for (std::size_t s = 0; s < kLotShards; ++s)
            body(s, exec);
        return;
    }

    const std::size_t per = kLotShards / replicas;
    std::vector<TaskHandle> pending;
    pending.reserve(replicas - 1);
    for (std::size_t r = 1; r < replicas; ++r) {
        pending.push_back(exec.pool->submitLane(
            replicaLane(r), [&body, r, per] {
                for (std::size_t s = r * per; s < (r + 1) * per; ++s)
                    body(s, ExecContext::serial());
            }));
    }

    // Whatever happens, EVERY lane must drain before this frame
    // unwinds: the lane closures capture the caller's stack. Waits are
    // unconditional; the first exception (caller's own first, then
    // lanes in lane order) is rethrown only after the join.
    std::exception_ptr first;
    try {
        for (std::size_t s = 0; s < per; ++s)
            body(s, exec);
    } catch (...) {
        first = std::current_exception();
    }
    for (auto &h : pending) {
        try {
            h.wait();
        } catch (...) {
            if (first == nullptr)
                first = std::current_exception();
        }
    }
    if (first != nullptr)
        std::rethrow_exception(first);
}

void
treeReduce4(const Tensor &q0, const Tensor &q1, const Tensor &q2,
            const Tensor &q3, Tensor &out, ExecContext &exec)
{
    static_assert(kLotShards == 4,
                  "treeReduce4 mirrors the fixed lot-shard count");
    const std::size_t n = out.size();
    LAZYDP_ASSERT(q0.size() == n && q1.size() == n && q2.size() == n &&
                      q3.size() == n,
                  "tree-reduce shape mismatch");
    const float *a = q0.data();
    const float *b = q1.data();
    const float *c = q2.data();
    const float *d = q3.data();
    float *o = out.data();
    parallelFor(exec, n, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
            o[i] = (a[i] + b[i]) + (c[i] + d[i]);
    });
}

} // namespace lazydp
