/**
 * @file
 * Lot-sharded data-parallel execution: fixed microbatch decomposition,
 * replica dispatch, and the deterministic tree reduction.
 *
 * The paper's observation is that DP-SGD makes every lot an
 * all-table-touching update, so scaling recommendation training means
 * scaling the LOT. This layer splits one lot into kLotShards
 * position-stable microbatch shards; N worker replicas (replica 0 = the
 * calling thread, replicas 1..N-1 = dedicated pool lanes) each run
 * forward/backward + per-example clipping on a contiguous group of
 * shards, and a FIXED-shape tree reduction merges the per-shard clipped
 * gradients before the single keyed-noise add and model update.
 *
 * Determinism contract (extends common/thread_pool.h):
 *
 *  - Shard boundaries derive from the lot size and kLotShards only --
 *    never from the replica or thread count. The replica count merely
 *    selects WHICH lane executes each shard.
 *  - The reduction tree has a fixed shape over the kLotShards partials:
 *    (q0 + q1) + (q2 + q3). Every replica count computes this exact
 *    association, so the merged gradient -- and therefore the trained
 *    model -- is bit-identical for replicas 1, 2 and 4, at any thread
 *    count, pipeline on or off.
 *  - Per-example quantities (forward rows, loss terms, ghost norms,
 *    clip factors) never cross a shard boundary, so sharding changes
 *    no per-example bits at all; only the cross-example float sums go
 *    through the tree.
 */

#ifndef LAZYDP_TRAIN_REPLICA_H
#define LAZYDP_TRAIN_REPLICA_H

#include <cstddef>
#include <functional>

#include "common/thread_pool.h"
#include "tensor/tensor.h"

namespace lazydp {

/**
 * Fixed number of microbatch shards per lot. A power of two so every
 * supported replica count (its divisors: 1, 2, 4) owns a whole subtree
 * of the reduction.
 */
constexpr std::size_t kLotShards = 4;

/** First ThreadPool lane used by replica dispatch (lane 0 belongs to
 *  the Trainer's pipelined prepare stage). */
constexpr std::size_t kReplicaLaneBase = 1;

// Replica dispatch must stay strictly below the reserved lanes: the
// out-of-core warm task owns kTierPrefetchLane (7) and serving claims
// kServeLaneBase (8) upward. A replica landing there would serialize
// behind cold-page warming or contend with scoring workers -- and under
// CPU isolation it would silently run on the SERVE core set. The
// static check ties the replica lane range to the lane map so a future
// kLotShards bump cannot re-open the hole.
static_assert(kReplicaLaneBase + kLotShards - 2 <
                  ThreadPool::kTierPrefetchLane,
              "replica lanes overlap the tier-prefetch/serve lane "
              "reservation -- shrink kLotShards or move the bases");

/** @return true when @p n replicas evenly own kLotShards subtrees. */
constexpr bool
validReplicas(std::size_t n)
{
    return n == 1 || n == 2 || n == 4;
}

/**
 * The dedicated pool lane replica @p r (>= 1; replica 0 is the calling
 * thread) runs on. Fails loudly (fatal) if the lane would collide with
 * a reserved lane -- the guard every dispatch and Trainer setup goes
 * through, so an out-of-range replica count can never silently land on
 * the warm or serve lanes.
 */
std::size_t replicaLane(std::size_t r);

/** Boundaries of microbatch shard @p shard of a @p batch -example lot
 *  (balanced split; depends on the lot size and kLotShards only). */
inline std::pair<std::size_t, std::size_t>
lotShardBounds(std::size_t batch, std::size_t shard)
{
    return shardBounds(batch, kLotShards, shard);
}

/**
 * Execute body(shard, shard_exec) exactly once for every shard in
 * [0, kLotShards), fanned across exec.replicas worker replicas.
 * Replica r owns the contiguous shard range
 * [r * kLotShards/N, (r+1) * kLotShards/N), processed in order.
 * Replica 0 runs on the calling thread with the full @p exec (its
 * kernels may use the pool's loop workers -- they are exec-invariant);
 * replicas 1..N-1 run on dedicated pool lanes with a serial context
 * (lane threads flatten nested dispatch anyway).
 *
 * With replicas == 1 or no pool, all shards run inline on the caller --
 * the same dataflow, hence the same bits.
 *
 * Exceptions from any replica are rethrown on the caller after all
 * lanes drained (lane order decides which one surfaces first).
 */
void runReplicated(
    ExecContext &exec,
    const std::function<void(std::size_t, ExecContext &)> &body);

/**
 * Deterministic fixed-tree elementwise reduction of the kLotShards
 * per-shard partials: out[i] = (q0[i] + q1[i]) + (q2[i] + q3[i]).
 * Each element is independent, so the loop parallelizes over @p exec
 * without changing a single bit. All four inputs must match @p out 's
 * shape.
 */
void treeReduce4(const Tensor &q0, const Tensor &q1, const Tensor &q2,
                 const Tensor &q3, Tensor &out, ExecContext &exec);

/** Scalar fixed-tree reduction: (a + b) + (c + d). */
inline double
treeReduce4(double a, double b, double c, double d)
{
    return (a + b) + (c + d);
}

} // namespace lazydp

#endif // LAZYDP_TRAIN_REPLICA_H
