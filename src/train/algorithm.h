/**
 * @file
 * The uniform training-algorithm interface.
 *
 * Every optimizer in the repository -- non-private SGD, the eager
 * DP-SGD(B/R/F) baselines, EANA, and LazyDP -- implements Algorithm, so
 * the Trainer and every benchmark treat them interchangeably and time
 * them with the same StageTimer stages (the stages of the paper's
 * Figures 3, 5, 10, 11).
 */

#ifndef LAZYDP_TRAIN_ALGORITHM_H
#define LAZYDP_TRAIN_ALGORITHM_H

#include <cstdint>
#include <string>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "data/minibatch.h"
#include "rng/gaussian.h"

namespace lazydp {

/** Hyperparameters shared by all training algorithms. */
struct TrainHyper
{
    float lr = 0.05f;             //!< learning rate (eta)
    float clipNorm = 1.0f;        //!< max per-example grad norm (C)
    float noiseMultiplier = 1.0f; //!< DP noise multiplier (sigma)
    std::uint64_t noiseSeed = 0xD9; //!< privacy-noise seed

    /**
     * Optional L2 weight decay (lambda): each step multiplies weights
     * by alpha = 1 - lr*lambda before the gradient/noise update.
     * Supported by DP-SGD(B/R/F) (dense decay pass) and LazyDP
     * (deferred multiplicatively, see core/lazydp.h); SGD and EANA
     * reject it.
     */
    float weightDecay = 0.0f;

    /**
     * Fixed normalization denominator for DP updates (Abadi et al.'s
     * lot size L). Under Poisson subsampling the realized batch size
     * varies per step, but the mechanism must divide by the FIXED
     * expected size or the noise scale would leak the realized count.
     * 0 (default) divides by the realized batch size, which is correct
     * for fixed-size sequential loading.
     */
    std::size_t lotSize = 0;
    GaussianKernel kernel = GaussianKernel::Auto; //!< noise kernel
};

/** One training algorithm bound to a model. */
class Algorithm
{
  public:
    virtual ~Algorithm() = default;

    /** @return short display name, e.g. "DP-SGD(F)". */
    virtual std::string name() const = 0;

    /**
     * Execute one training iteration.
     *
     * Iterations are numbered from 1 by the caller, monotonically.
     *
     * @param iter 1-based global iteration id (keys the noise streams)
     * @param cur this iteration's mini-batch
     * @param next the following iteration's mini-batch, or nullptr on
     *        the final iteration; only LazyDP consumes it (lookahead)
     * @param exec execution context for the step's parallel kernels;
     *        thread count must not change the final model (keyed noise
     *        + fixed shard boundaries keep updates bit-identical)
     * @param timer stage-attribution sink
     * @return the batch training loss (pre-update)
     */
    virtual double step(std::uint64_t iter, const MiniBatch &cur,
                        const MiniBatch *next, ExecContext &exec,
                        StageTimer &timer) = 0;

    /**
     * Complete any deferred work after the final step so the model
     * reaches its releasable state (LazyDP flushes all pending noise
     * here; eager algorithms need nothing).
     *
     * @param last_iter id of the last executed iteration
     * @param exec execution context for the flush sweep
     * @param timer stage-attribution sink
     */
    virtual void
    finalize(std::uint64_t last_iter, ExecContext &exec,
             StageTimer &timer)
    {
        (void)last_iter;
        (void)exec;
        (void)timer;
    }
};

} // namespace lazydp

#endif // LAZYDP_TRAIN_ALGORITHM_H
