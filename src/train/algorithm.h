/**
 * @file
 * The uniform training-algorithm interface.
 *
 * Every optimizer in the repository -- non-private SGD, the eager
 * DP-SGD(B/R/F) baselines, EANA, and LazyDP -- implements Algorithm, so
 * the Trainer and every benchmark treat them interchangeably and time
 * them with the same StageTimer stages (the stages of the paper's
 * Figures 3, 5, 10, 11).
 *
 * An iteration is split into two stages so the Trainer can software-
 * pipeline them:
 *
 *   prepare(iter)  batch-dependent, model-weight-INDEPENDENT work:
 *                  next-batch index dedup, HistoryTable delay reads,
 *                  ANS stddev derivation, keyed Philox noise sampling.
 *                  Results land in a PreparedStep buffer.
 *   apply(iter)    model-weight-dependent work: forward/backward,
 *                  clipping, and the (merged sparse) update, consuming
 *                  the PreparedStep.
 *
 * Because all noise is keyed by (iteration, table, row) and prepares
 * execute strictly in iteration order, running prepare(i+1) overlapped
 * with apply(i) yields a bit-identical model to the serial schedule --
 * see train/trainer.h for the pipeline itself.
 */

#ifndef LAZYDP_TRAIN_ALGORITHM_H
#define LAZYDP_TRAIN_ALGORITHM_H

#include <cstdint>
#include <memory>
#include <string>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "data/minibatch.h"
#include "rng/gaussian.h"
#include "train/dirty_tracker.h"

namespace lazydp {

class DlrmModel;

/** Hyperparameters shared by all training algorithms. */
struct TrainHyper
{
    float lr = 0.05f;             //!< learning rate (eta)
    float clipNorm = 1.0f;        //!< max per-example grad norm (C)
    float noiseMultiplier = 1.0f; //!< DP noise multiplier (sigma)
    std::uint64_t noiseSeed = 0xD9; //!< privacy-noise seed

    /**
     * Optional L2 weight decay (lambda): each step multiplies weights
     * by alpha = 1 - lr*lambda before the gradient/noise update.
     * Supported by DP-SGD(B/R/F) (dense decay pass) and LazyDP
     * (deferred multiplicatively, see core/lazydp.h); SGD and EANA
     * reject it.
     */
    float weightDecay = 0.0f;

    /**
     * Fixed normalization denominator for DP updates (Abadi et al.'s
     * lot size L). Under Poisson subsampling the realized batch size
     * varies per step, but the mechanism must divide by the FIXED
     * expected size or the noise scale would leak the realized count.
     * 0 (default) divides by the realized batch size, which is correct
     * for fixed-size sequential loading.
     */
    std::size_t lotSize = 0;
    GaussianKernel kernel = GaussianKernel::Auto; //!< noise kernel
};

/**
 * Reusable buffer for one iteration's prepared (weight-independent)
 * state. Engines with real lookahead work subclass it (see
 * LazyDpAlgorithm / EanaAlgorithm); engines without any use the base
 * directly, which only records the iteration it was prepared for.
 *
 * The Trainer double-buffers two of these per algorithm so prepare(i+1)
 * can fill one buffer while apply(i) drains the other.
 */
class PreparedStep
{
  public:
    virtual ~PreparedStep() = default;

    std::uint64_t iter = 0; //!< iteration this buffer was prepared for
};

/** One training algorithm bound to a model. */
class Algorithm
{
  public:
    virtual ~Algorithm() = default;

    /** @return short display name, e.g. "DP-SGD(F)". */
    virtual std::string name() const = 0;

    /**
     * The model this algorithm trains, or nullptr for algorithms not
     * bound to a DlrmModel. The Trainer reads it to publish versioned
     * serving snapshots (TrainOptions::snapshotStore); every engine in
     * the repository overrides it.
     */
    virtual const DlrmModel *model() const { return nullptr; }

    /**
     * Allocate a prepared-state buffer matching this engine's
     * prepare(). Callers reuse buffers across iterations; engines with
     * lookahead state override to return their subclass.
     */
    virtual std::unique_ptr<PreparedStep>
    makePrepared() const
    {
        return std::make_unique<PreparedStep>();
    }

    /**
     * Stage 1 of an iteration: all batch-dependent work that does NOT
     * read or write model weights, written into @p out. Safe to run
     * concurrently with apply() of the PREVIOUS iteration; prepares
     * must execute in iteration order (engines may carry metadata such
     * as the HistoryTable forward from one prepare to the next).
     *
     * The default implementation only records @p iter (engines without
     * lookahead work).
     *
     * @param iter 1-based global iteration id (keys the noise streams)
     * @param cur this iteration's mini-batch
     * @param next the following iteration's mini-batch, or nullptr on
     *        the final iteration; only LazyDP consumes it (lookahead)
     * @param out prepared-state buffer from makePrepared()
     * @param exec execution context (prepare must be exec-invariant:
     *        the pipeline runs it serially, the inline path in parallel)
     * @param timer stage-attribution sink (under the pipeline this is a
     *        private timer merged into the main one after the overlap)
     */
    virtual void
    prepare(std::uint64_t iter, const MiniBatch &cur,
            const MiniBatch *next, PreparedStep &out, ExecContext &exec,
            StageTimer &timer)
    {
        (void)cur;
        (void)next;
        (void)exec;
        (void)timer;
        out.iter = iter;
    }

    /**
     * Stage 2 of an iteration: forward/backward, clipping, and the
     * model update, consuming @p prepared (which must hold this
     * iteration's prepare output).
     *
     * @return the batch training loss (pre-update)
     */
    virtual double apply(std::uint64_t iter, const MiniBatch &cur,
                         PreparedStep &prepared, ExecContext &exec,
                         StageTimer &timer) = 0;

    /**
     * Execute one full training iteration: prepare() immediately
     * followed by apply() on the calling thread. This is the serial
     * (non-pipelined) schedule; iterations are numbered from 1 by the
     * caller, monotonically.
     */
    double step(std::uint64_t iter, const MiniBatch &cur,
                const MiniBatch *next, ExecContext &exec,
                StageTimer &timer);

    /**
     * Complete any deferred work after the final step so the model
     * reaches its releasable state (LazyDP flushes all pending noise
     * here; eager algorithms need nothing).
     *
     * @param last_iter id of the last executed iteration
     * @param exec execution context for the flush sweep
     * @param timer stage-attribution sink
     */
    virtual void
    finalize(std::uint64_t last_iter, ExecContext &exec,
             StageTimer &timer)
    {
        (void)last_iter;
        (void)exec;
        (void)timer;
    }

    /**
     * Lookahead hook for out-of-core (tiered) tables: submit async
     * warm tasks for the embedding rows iteration @p prep (or, engines
     * without prepared lookahead state, batch @p next) will touch, so
     * their cold pages are OS-page-cache-hot before apply() promotes
     * them. Called by the Trainer right after prepare(i+1) -- from the
     * pipeline lane under --pipeline, from the training thread in the
     * serial schedule -- and must therefore only submit work (via
     * EmbeddingTable::warmRowsAsync), never touch model weights or
     * residency state.
     *
     * Default: no-op. Engines whose table update is sparse (SGD, EANA,
     * LazyDP) override; the dense engines (DP-SGD B/R/F) keep the
     * no-op -- their update streams every row with write-through, so
     * warming would only pollute the page cache.
     *
     * @param next the batch the NEXT apply will consume
     * @param prep that apply's prepared state (nullptr in the serial
     *        schedule before prepare has run; engines must cope)
     * @param pool lane provider for the warm tasks (may be null)
     */
    virtual void
    warmTier(const MiniBatch &next, const PreparedStep *prep,
             ThreadPool *pool)
    {
        (void)next;
        (void)prep;
        (void)pool;
    }

    /**
     * Ask the engine to export its dirty-row set (the rows each apply
     * mutates) into a page-granular DirtyRowTracker, enabling
     * O(dirty rows) delta snapshot publishing. Engines whose table
     * update is sparse (SGD, EANA, LazyDP -- the merged sparse update
     * IS the dirty set) override and return true; engines that update
     * every row every iteration (DP-SGD B/R/F) keep the default false
     * and delta stores fall back to copying every page.
     *
     * Once enabled, the tracker marks on every subsequent apply();
     * the publish hook consumes and resets it.
     *
     * @param page_rows the consuming store's page size
     * @return true when this engine tracks dirty rows
     */
    virtual bool
    enableDirtyTracking(std::size_t page_rows)
    {
        (void)page_rows;
        return false;
    }

    /** @return the dirty tracker, or nullptr when not enabled. */
    DirtyRowTracker *dirtyTracker() { return dirty_.get(); }

  protected:
    /** Page bitmap filled by apply()/finalize() once enabled. */
    std::unique_ptr<DirtyRowTracker> dirty_;

  private:
    std::unique_ptr<PreparedStep> stepScratch_; //!< step()'s buffer
};

} // namespace lazydp

#endif // LAZYDP_TRAIN_ALGORITHM_H
