/**
 * @file
 * Page-granular dirty-row tracking: the training-side half of delta
 * snapshot publishing.
 *
 * LazyDP's core insight -- per-iteration work proportional to the rows
 * a batch actually touches -- applies to serving-snapshot publication
 * just as much as to noise addition: the sparse engines know EXACTLY
 * which embedding rows each iteration mutated (LazyDP's merged sparse
 * update list, EANA's/SGD's coalesced gradient rows), so a snapshot of
 * iteration i+1 only differs from iteration i's in those rows. The
 * DirtyRowTracker accumulates that knowledge between publishes at page
 * granularity (fixed row blocks, the unit ModelSnapshotStore shares
 * between consecutive snapshots): engines mark rows as they update
 * them, publish consumes the bitmap and resets it.
 *
 * Threading: all writers (Algorithm::apply, Algorithm::finalize) and
 * the consumer (Trainer's publish hook) run on the training thread --
 * under the pipelined schedule the only concurrent work is prepare(),
 * which never touches model weights and therefore never marks. The
 * tracker is deliberately unsynchronized.
 */

#ifndef LAZYDP_TRAIN_DIRTY_TRACKER_H
#define LAZYDP_TRAIN_DIRTY_TRACKER_H

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "nn/model_config.h"

namespace lazydp {

/** Default page size: rows shared between snapshots as one unit. */
constexpr std::size_t kSnapshotPageRows = 256;

/** Per-table page bitmap of rows mutated since the last publish. */
class DirtyRowTracker
{
  public:
    /**
     * @param rows_per_table row count of each embedding table
     * @param page_rows rows per page (must match the consuming
     *        ModelSnapshotStore's SnapshotOptions::pageRows)
     */
    DirtyRowTracker(std::vector<std::uint64_t> rows_per_table,
                    std::size_t page_rows);

    /** Tracker sized for every table of @p config . */
    static std::unique_ptr<DirtyRowTracker>
    forModel(const ModelConfig &config, std::size_t page_rows);

    std::size_t pageRows() const { return pageRows_; }
    std::size_t numTables() const { return rows_.size(); }
    std::uint64_t tableRows(std::size_t t) const { return rows_[t]; }

    /** @return number of pages covering table @p t . */
    std::size_t
    pageCount(std::size_t t) const
    {
        return static_cast<std::size_t>(
            (rows_[t] + pageRows_ - 1) / pageRows_);
    }

    /** Mark each of @p rows of table @p t dirty. O(|rows|). */
    void markRows(std::size_t t, std::span<const std::uint32_t> rows);

    /**
     * Mark every page of every table dirty: the full-copy escape hatch
     * for mutations the sparse oracle cannot see (finalize's dense
     * noise sweep, checkpoint restores, pre-run history warm starts).
     */
    void markAllDirty();

    /** @return true when page @p p of table @p t was marked. */
    bool
    pageDirty(std::size_t t, std::size_t p) const
    {
        return allDirty_ || dirty_[t][p] != 0;
    }

    /** @return true after markAllDirty (until the next reset). */
    bool allDirty() const { return allDirty_; }

    /** @return total marked pages across tables (test observability). */
    std::uint64_t dirtyPageCount() const;

    /** Clear every mark; called by publish after consuming the set. */
    void reset();

  private:
    std::size_t pageRows_;
    std::vector<std::uint64_t> rows_;
    std::vector<std::vector<std::uint8_t>> dirty_; //!< byte per page
    bool allDirty_ = false;
};

} // namespace lazydp

#endif // LAZYDP_TRAIN_DIRTY_TRACKER_H
