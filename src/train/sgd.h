/**
 * @file
 * Non-private SGD baseline (paper Figure 2(b)).
 *
 * Derives the per-batch gradient in one backward pass and applies
 * *sparse* embedding updates: only rows gathered during forward are
 * touched. This is the flat line every DP scheme is compared against.
 *
 * Shares the lot-sharded data-parallel structure of the DP engines
 * (train/lot_backward.h): the lot splits into the fixed microbatch
 * shards, each shard's backward fills its own gradient sums, and the
 * fixed tree reduction merges them -- so SGD too is bit-identical
 * across replica counts and participates in the replica sweeps.
 */

#ifndef LAZYDP_TRAIN_SGD_H
#define LAZYDP_TRAIN_SGD_H

#include <array>
#include <vector>

#include "nn/dlrm.h"
#include "nn/loss.h"
#include "train/algorithm.h"
#include "train/lot_backward.h"

namespace lazydp {

/** Plain mini-batch SGD on a DlrmModel. */
class SgdAlgorithm : public Algorithm
{
  public:
    /**
     * @param model model to train (not owned)
     * @param hyper learning rate (DP fields unused)
     */
    SgdAlgorithm(DlrmModel &model, const TrainHyper &hyper);

    std::string name() const override { return "SGD"; }

    const DlrmModel *model() const override { return &model_; }

    /** No lookahead work: the default (empty) prepare applies. */
    double apply(std::uint64_t iter, const MiniBatch &cur,
                 PreparedStep &prepared, ExecContext &exec,
                 StageTimer &timer) override;

    /** SGD's table update is sparse: the coalesced gradient rows are
     * exactly the rows each apply() mutates. */
    bool enableDirtyTracking(std::size_t page_rows) override;

    /** Warm the next batch's rows (exactly the rows its apply will
     * gather and update). Tiered tables only; otherwise a no-op. */
    void warmTier(const MiniBatch &next, const PreparedStep *prep,
                  ThreadPool *pool) override;

  private:
    /** Per-microbatch-shard state (no clipping: plain backward). */
    struct Shard : LotShardState
    {
        Tensor logits;
        Tensor dLogits;
    };

    DlrmModel &model_;
    TrainHyper hyper_;
    std::array<Shard, kLotShards> shards_;
    std::vector<Tensor> lotEmbGrad_;
    std::vector<SparseGrad> sparseGrads_;
};

} // namespace lazydp

#endif // LAZYDP_TRAIN_SGD_H
