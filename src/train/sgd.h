/**
 * @file
 * Non-private SGD baseline (paper Figure 2(b)).
 *
 * Derives the per-batch gradient in one backward pass and applies
 * *sparse* embedding updates: only rows gathered during forward are
 * touched. This is the flat line every DP scheme is compared against.
 */

#ifndef LAZYDP_TRAIN_SGD_H
#define LAZYDP_TRAIN_SGD_H

#include <vector>

#include "nn/dlrm.h"
#include "nn/loss.h"
#include "train/algorithm.h"

namespace lazydp {

/** Plain mini-batch SGD on a DlrmModel. */
class SgdAlgorithm : public Algorithm
{
  public:
    /**
     * @param model model to train (not owned)
     * @param hyper learning rate (DP fields unused)
     */
    SgdAlgorithm(DlrmModel &model, const TrainHyper &hyper);

    std::string name() const override { return "SGD"; }

    /** No lookahead work: the default (empty) prepare applies. */
    double apply(std::uint64_t iter, const MiniBatch &cur,
                 PreparedStep &prepared, ExecContext &exec,
                 StageTimer &timer) override;

  private:
    DlrmModel &model_;
    TrainHyper hyper_;
    Tensor logits_;
    Tensor dLogits_;
    std::vector<SparseGrad> sparseGrads_;
};

} // namespace lazydp

#endif // LAZYDP_TRAIN_SGD_H
