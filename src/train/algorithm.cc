#include "train/algorithm.h"

namespace lazydp {

double
Algorithm::step(std::uint64_t iter, const MiniBatch &cur,
                const MiniBatch *next, ExecContext &exec,
                StageTimer &timer)
{
    if (stepScratch_ == nullptr)
        stepScratch_ = makePrepared();
    prepare(iter, cur, next, *stepScratch_, exec, timer);
    return apply(iter, cur, *stepScratch_, exec, timer);
}

} // namespace lazydp
