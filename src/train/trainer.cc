#include "train/trainer.h"

#include "common/macros.h"

namespace lazydp {

Trainer::Trainer(Algorithm &algorithm, DataLoader &loader,
                 ExecContext *exec)
    : algorithm_(algorithm), loader_(loader),
      exec_(exec != nullptr ? exec : &ExecContext::serial())
{
}

TrainResult
Trainer::run(std::uint64_t iterations, bool record_losses)
{
    TrainResult result;
    if (iterations == 0)
        return result;

    WallTimer wall;
    InputQueue queue;
    // Bootstrap: load the first mini-batch (Algorithm 1, line 5).
    queue.push(loader_.next());

    for (std::uint64_t iter = 1; iter <= iterations; ++iter) {
        // One new batch per iteration (line 7); on the final iteration
        // there is no next batch to preview.
        const bool has_next = iter < iterations;
        if (has_next)
            queue.push(loader_.next());

        const MiniBatch &cur = queue.head();
        const MiniBatch *next = has_next ? &queue.tail() : nullptr;

        const double loss =
            algorithm_.step(iter, cur, next, *exec_, result.timer);
        if (record_losses)
            result.losses.push_back(loss);

        queue.pop();
    }

    algorithm_.finalize(iterations, *exec_, result.timer);

    result.wallSeconds = wall.seconds();
    result.iterations = iterations;
    return result;
}

} // namespace lazydp
