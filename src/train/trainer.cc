#include "train/trainer.h"

#include <utility>

#include "common/macros.h"
#include "nn/dlrm.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/snapshot_store.h"
#include "train/replica.h"

namespace lazydp {

namespace {

/** Registry mirrors of the TrainResult publish counters. */
struct PublishMetrics
{
    obs::MetricId publishes;
    obs::MetricId rowsCopied;
    obs::MetricId pagesShared;
    obs::MetricId publishNs;
};

const PublishMetrics &
publishMetrics()
{
    static const PublishMetrics ids = {
        obs::internMetric("train.publishes", obs::MetricKind::Counter),
        obs::internMetric("train.rows_copied",
                          obs::MetricKind::Counter),
        obs::internMetric("train.pages_shared",
                          obs::MetricKind::Counter),
        obs::internMetric("train.publish_ns",
                          obs::MetricKind::Histogram),
    };
    return ids;
}

} // namespace

Trainer::Trainer(Algorithm &algorithm, DataLoader &loader,
                 ExecContext *exec)
    : algorithm_(algorithm), loader_(loader),
      exec_(exec != nullptr ? exec : &ExecContext::serial())
{
}

TrainResult
Trainer::run(std::uint64_t iterations, const TrainOptions &options)
{
    TrainResult result;
    if (iterations == 0)
        return result;
    LAZYDP_ASSERT(options.warmupIters < iterations,
                  "warmup would consume every iteration");
    LAZYDP_ASSERT(validReplicas(options.replicas),
                  "TrainOptions::replicas must be 1, 2 or 4");
    // Fail loudly up front if any replica would land on a reserved
    // (tier-prefetch / serve) lane, rather than deep inside dispatch.
    for (std::size_t r = 1; r < options.replicas; ++r)
        replicaLane(r);
    if (options.publishEveryIters != 0) {
        LAZYDP_ASSERT(options.snapshotStore != nullptr,
                      "publishEveryIters needs a snapshotStore");
        LAZYDP_ASSERT(algorithm_.model() != nullptr,
                      "snapshot publishing needs a model-bound "
                      "algorithm");
        // Delta stores want the engine's dirty-row oracle. Mutations
        // BEFORE this run (checkpoint restores, a previous run's
        // finalize, manual edits) predate any tracking, so the first
        // publish of the run must copy everything; engines without a
        // sparse oracle simply leave the tracker null (full-copy
        // fallback on every publish).
        const SnapshotOptions &sopts =
            options.snapshotStore->options();
        if (sopts.mode == SnapshotMode::Delta &&
            algorithm_.enableDirtyTracking(sopts.pageRows))
            algorithm_.dirtyTracker()->markAllDirty();
    }
    if (options.recordLosses)
        result.losses.reserve(iterations);
    if (options.recordIterSeconds)
        result.iterSeconds.reserve(iterations - options.warmupIters);

    // The worker-replica count travels to every step through a per-run
    // copy of the execution context (replicas are a schedule knob, not
    // an algorithm parameter).
    runExec_ = *exec_;
    runExec_.replicas = options.replicas;

    // The pipeline needs the pool's async lane; without a pool the
    // serial schedule is the only (and identical-result) option.
    if (options.pipeline && exec_->pool != nullptr)
        runPipelined(iterations, options, result);
    else
        runSerial(iterations, options, result);

    // Join the out-of-core warm lane before finalize: the dense
    // catch-up sweep writes through to cold pages, which must not
    // overlap the warm task's cold reads (and the caller may
    // checkpoint or read stats right after run()).
    if (algorithm_.model() != nullptr)
        algorithm_.model()->drainTierWarm();

    if (options.runFinalize) {
        WallTimer fin;
        algorithm_.finalize(options.startIter + iterations, runExec_,
                            result.finalizeTimer);
        result.finalizeSeconds = fin.seconds();
    }
    result.iterations = iterations - options.warmupIters;
    if (algorithm_.model() != nullptr)
        result.tierStats = algorithm_.model()->tierStats();
    return result;
}

void
Trainer::runSerial(std::uint64_t iterations, const TrainOptions &options,
                   TrainResult &result)
{
    InputQueue queue(2);
    // Bootstrap: load the first mini-batch (Algorithm 1, line 5).
    queue.push(loader_.next());

    WallTimer wall;
    double iter_mark = 0.0; // wall offset of the last recorded iter end
    for (std::uint64_t iter = 1; iter <= iterations; ++iter) {
        // One new batch per iteration (line 7); on the final iteration
        // there is no next batch to preview unless previewFinal asks
        // for steady-state lookahead on every step.
        const bool has_next =
            iter < iterations || options.previewFinal;
        if (has_next) {
            queue.push(loader_.next());
            // Out-of-core lookahead: warm the next batch's rows while
            // this iteration computes. For LazyDP those rows are also
            // exactly THIS apply's pending-noise row set (nextUnique),
            // so one warm serves both sides of the merged update.
            algorithm_.warmTier(queue.at(1), nullptr, exec_->pool);
        }
        if (iter == options.warmupIters + 1) {
            wall.reset();
            iter_mark = 0.0;
        }
        StageTimer &timer = iter <= options.warmupIters
                                ? result.warmupTimer
                                : result.timer;

        double loss = 0.0;
        {
            LAZYDP_TRACE_SPAN1(obs::TraceCat::Trainer, "step", "iter",
                               options.startIter + iter);
            loss = algorithm_.step(
                options.startIter + iter, queue.head(),
                has_next ? &queue.at(1) : nullptr, runExec_, timer);
        }
        if (options.recordLosses)
            result.losses.push_back(loss);
        maybePublish(iter, options, result);
        if (options.recordIterSeconds && iter > options.warmupIters) {
            const double now = wall.seconds();
            result.iterSeconds.push_back(now - iter_mark);
            iter_mark = now;
        }

        queue.pop();
        if (options.iterationGate && iter < iterations) {
            LAZYDP_TRACE_SPAN1(obs::TraceCat::Trainer, "iteration_gate",
                               "iter", options.startIter + iter);
            options.iterationGate();
        }
    }
    result.wallSeconds = wall.seconds();
}

void
Trainer::runPipelined(std::uint64_t iterations,
                      const TrainOptions &options, TrainResult &result)
{
    // Depth-3 ring: batch i (current), i+1 (being prepared against),
    // i+2 (being prefetched). Slots are stable, so the head reference
    // the main thread computes on stays valid while the async lane
    // pushes the prefetched batch.
    InputQueue queue(3);
    queue.push(loader_.next());
    const bool first_has_next = iterations > 1 || options.previewFinal;
    if (first_has_next)
        queue.push(loader_.next());

    // Double-buffered prepared state: apply(i) drains one buffer while
    // prepare(i+1) fills the other.
    auto buf_a = algorithm_.makePrepared();
    auto buf_b = algorithm_.makePrepared();
    PreparedStep *cur_prep = buf_a.get();
    PreparedStep *next_prep = buf_b.get();

    // The overlapped prepare times into a private timer (the main
    // thread concurrently uses the result timers) merged into the
    // consuming iteration's timer after the join.
    StageTimer prep_timer;

    {
        // Nothing to overlap the first prepare with: run it inline.
        StageTimer &t1 = options.warmupIters >= 1 ? result.warmupTimer
                                                  : result.timer;
        LAZYDP_TRACE_SPAN1(obs::TraceCat::Trainer, "prepare", "iter",
                           options.startIter + 1);
        algorithm_.prepare(options.startIter + 1, queue.head(),
                           first_has_next ? &queue.at(1) : nullptr,
                           *cur_prep, runExec_, t1);
        // Warm the first apply's full row set (batch 1 plus the
        // prepared lookahead rows) while nothing else is running.
        algorithm_.warmTier(queue.head(), cur_prep, exec_->pool);
    }

    WallTimer wall;
    double iter_mark = 0.0; // wall offset of the last recorded iter end
    for (std::uint64_t iter = 1; iter <= iterations; ++iter) {
        if (iter == options.warmupIters + 1) {
            wall.reset();
            iter_mark = 0.0;
        }
        StageTimer &timer = iter <= options.warmupIters
                                ? result.warmupTimer
                                : result.timer;
        const MiniBatch &cur = queue.head();

        // Launch the overlapped stage: prefetch batch iter+2 and
        // prepare iteration iter+1 against it. Runs serially on the
        // async lane -- prepare is exec-invariant (keyed noise, fixed
        // shards), so this changes nothing but wall time.
        TaskHandle pending;
        if (iter < iterations) {
            const bool next_has_next =
                iter + 1 < iterations || options.previewFinal;
            prep_timer.reset();
            const std::uint64_t prep_iter = options.startIter + iter + 1;
            pending = exec_->pool->submit([this, &queue, next_has_next,
                                           prep_iter, next_prep,
                                           &prep_timer] {
                LAZYDP_TRACE_SPAN1(obs::TraceCat::Trainer, "prepare",
                                   "iter", prep_iter);
                if (next_has_next)
                    queue.push(loader_.next());
                algorithm_.prepare(prep_iter, queue.at(1),
                                   next_has_next ? &queue.at(2)
                                                 : nullptr,
                                   *next_prep, ExecContext::serial(),
                                   prep_timer);
                // Warm the NEXT apply's row set (its batch + the rows
                // this prepare just deduped) so the warm I/O overlaps
                // the remainder of the current apply. Submission only
                // -- the warm task runs on its own dedicated lane.
                algorithm_.warmTier(queue.at(1), next_prep,
                                    exec_->pool);
            });
        }

        double loss = 0.0;
        try {
            LAZYDP_TRACE_SPAN1(obs::TraceCat::Trainer, "apply", "iter",
                               options.startIter + iter);
            loss = algorithm_.apply(options.startIter + iter, cur,
                                    *cur_prep, runExec_, timer);
        } catch (...) {
            // Drain the async stage before unwinding: its closure
            // captures this frame's queue and timers.
            if (pending.valid()) {
                try {
                    pending.wait();
                } catch (...) {
                }
            }
            throw;
        }
        if (options.recordLosses)
            result.losses.push_back(loss);
        // Safe while prepare(i+1) is still in flight: prepare never
        // reads or writes model weights (the pipeline's own contract),
        // so the snapshot copy cannot race it -- and the dirty tracker
        // is only ever marked by apply() on this thread.
        maybePublish(iter, options, result);

        if (pending.valid()) {
            pending.wait();
            StageTimer &consumer = iter + 1 <= options.warmupIters
                                       ? result.warmupTimer
                                       : result.timer;
            consumer.merge(prep_timer);
            std::swap(cur_prep, next_prep);
        }
        // The iteration truly ends once the overlapped stage joined --
        // the next apply cannot start earlier, so the per-iteration
        // wall samples tile the measured wall time exactly.
        if (options.recordIterSeconds && iter > options.warmupIters) {
            const double now = wall.seconds();
            result.iterSeconds.push_back(now - iter_mark);
            iter_mark = now;
        }
        queue.pop();
        // Gate with the pipeline drained: the overlapped prepare has
        // joined, so the pause stalls the whole training side -- the
        // serve lanes get the cores for the full pause.
        if (options.iterationGate && iter < iterations) {
            LAZYDP_TRACE_SPAN1(obs::TraceCat::Trainer, "iteration_gate",
                               "iter", options.startIter + iter);
            options.iterationGate();
        }
    }
    result.wallSeconds = wall.seconds();
}

void
Trainer::maybePublish(std::uint64_t iter, const TrainOptions &options,
                      TrainResult &result)
{
    if (options.snapshotStore == nullptr ||
        options.publishEveryIters == 0 ||
        iter % options.publishEveryIters != 0)
        return;
    obs::TraceSpan span(obs::TraceCat::Trainer, "publish",
                        {"iter", options.startIter + iter});
    const PublishReceipt receipt = options.snapshotStore->publish(
        *algorithm_.model(), options.startIter + iter,
        algorithm_.dirtyTracker());
    span.setArg("rows_copied", receipt.rowsCopied);
    result.publishSeconds += receipt.seconds;
    ++result.publishes;
    result.rowsCopied += receipt.rowsCopied;
    result.pagesShared += receipt.pagesShared;
    if (obs::metricsEnabled()) {
        const PublishMetrics &ids = publishMetrics();
        obs::counterAdd(ids.publishes);
        obs::counterAdd(ids.rowsCopied, receipt.rowsCopied);
        obs::counterAdd(ids.pagesShared, receipt.pagesShared);
        obs::histogramRecord(
            ids.publishNs,
            static_cast<std::uint64_t>(receipt.seconds * 1e9));
    }
}

} // namespace lazydp
