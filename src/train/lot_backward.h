/**
 * @file
 * The shared lot-sharded backward orchestration used by every engine
 * (the DP engines through DpEngineBase, non-private SGD directly).
 *
 * One function owns the whole replica dataflow -- slice the lot into
 * the fixed microbatch shards, fan an engine-supplied produce callback
 * across the worker replicas, merge shard timers in shard order,
 * tree-reduce the per-shard MLP gradient sums into the model's layers,
 * gather pooled embedding gradients into lot-wide buffers -- so a fix
 * to the dataflow (or a change to the reduction shape) lands in
 * exactly one place and the engines cannot drift apart, which is what
 * the cross-engine bit-identity invariant rests on.
 */

#ifndef LAZYDP_TRAIN_LOT_BACKWARD_H
#define LAZYDP_TRAIN_LOT_BACKWARD_H

#include <array>
#include <cstddef>
#include <functional>
#include <vector>

#include "common/timer.h"
#include "data/minibatch.h"
#include "nn/dlrm.h"
#include "train/replica.h"

namespace lazydp {

/**
 * State every microbatch shard carries through one lot backward. The
 * engines extend it with their per-shard clipping scratch; this base
 * holds exactly what the shared orchestration touches.
 */
struct LotShardState
{
    std::size_t lo = 0;   //!< first lot example of this shard
    std::size_t hi = 0;   //!< one past the last lot example
    MiniBatch batch;      //!< materialized slice of the lot
    DlrmWorkspace ws;     //!< activation/backward caches
    DlrmGradSums sums;    //!< per-layer MLP gradient sums
    double lossSum = 0.0; //!< per-example loss sum of the shard
    StageTimer timer;     //!< merged into the lot timer post-join
};

/**
 * Run one lot-sharded backward over @p cur:
 *
 *  1. slice the lot into the kLotShards position-stable shards and
 *     size @p lot_emb_grad (one (lot x dim) tensor per table);
 *  2. fan @p produce across the replicas of @p exec (train/replica.h);
 *     empty shards contribute exact-zero sums so the fixed tree stays
 *     intact; non-empty shards' pooled gradients (ws.dEmbOut) gather
 *     into @p lot_emb_grad at disjoint row ranges after produce;
 *  3. merge shard timers into @p timer in shard order;
 *  4. tree-reduce the shard MLP sums into the model's own layer
 *     gradient tensors: (q0 + q1) + (q2 + q3), replica-invariant.
 *
 * @param produce engine-specific shard gradient production, called
 *        exactly once per non-empty shard (by index, possibly
 *        concurrently); it must fill the shard's sums, ws.dEmbOut and
 *        lossSum, touching only that shard's state
 * @return the lot mean loss (tree-reduced shard sums / lot size)
 */
double shardedLotBackward(
    DlrmModel &model, const MiniBatch &cur,
    const std::array<LotShardState *, kLotShards> &shards,
    std::vector<Tensor> &lot_emb_grad, ExecContext &exec,
    StageTimer &timer,
    const std::function<void(std::size_t, ExecContext &)> &produce);

} // namespace lazydp

#endif // LAZYDP_TRAIN_LOT_BACKWARD_H
