/**
 * @file
 * Stage-timed training loop.
 *
 * Owns the mini-batch lookahead (InputQueue) so every algorithm sees
 * the same data flow the paper describes: one new batch fetched per
 * iteration, with the next batch visible to algorithms that want it
 * (LazyDP's Algorithm 1, lines 6-7).
 */

#ifndef LAZYDP_TRAIN_TRAINER_H
#define LAZYDP_TRAIN_TRAINER_H

#include <cstdint>
#include <vector>

#include "common/timer.h"
#include "data/data_loader.h"
#include "data/input_queue.h"
#include "train/algorithm.h"

namespace lazydp {

/** Result of a training run. */
struct TrainResult
{
    StageTimer timer;            //!< per-stage accumulated time
    std::vector<double> losses;  //!< per-iteration training loss
    double wallSeconds = 0.0;    //!< end-to-end wall time
    std::uint64_t iterations = 0;

    /** @return average seconds per iteration. */
    double
    secondsPerIteration() const
    {
        return iterations == 0 ? 0.0
                               : wallSeconds /
                                     static_cast<double>(iterations);
    }
};

/** Drives an Algorithm over a loader for a fixed iteration count. */
class Trainer
{
  public:
    /**
     * @param algorithm algorithm under test (not owned)
     * @param loader mini-batch source (not owned)
     * @param exec execution context handed to every step/finalize
     *        (not owned; nullptr = serial)
     */
    Trainer(Algorithm &algorithm, DataLoader &loader,
            ExecContext *exec = nullptr);

    /**
     * Run @p iterations training steps plus the algorithm's finalize.
     *
     * @param iterations number of optimizer steps
     * @param record_losses keep the loss trajectory (default on; benches
     *        may disable to avoid the allocation)
     */
    TrainResult run(std::uint64_t iterations, bool record_losses = true);

  private:
    Algorithm &algorithm_;
    DataLoader &loader_;
    ExecContext *exec_;
};

} // namespace lazydp

#endif // LAZYDP_TRAIN_TRAINER_H
