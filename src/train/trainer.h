/**
 * @file
 * Stage-timed training loop with an optional two-stage software
 * pipeline.
 *
 * Owns the mini-batch lookahead (InputQueue) so every algorithm sees
 * the same data flow the paper describes: one new batch fetched per
 * iteration, with the next batch visible to algorithms that want it
 * (LazyDP's Algorithm 1, lines 6-7).
 *
 * Pipelined schedule (`TrainOptions::pipeline`): while the main thread
 * runs the weight-dependent half of iteration i (forward/backward,
 * clipping, merged sparse update -- Algorithm::apply), the pool's async
 * lane loads batch i+2 and runs the weight-INDEPENDENT half of
 * iteration i+1 (next-batch dedup, HistoryTable reads, ANS stddev
 * derivation, keyed noise sampling -- Algorithm::prepare):
 *
 *      main thread      apply(1)   apply(2)   apply(3)  ...
 *      async lane     load+prep(2) load+prep(3) ...
 *
 * Prepares execute strictly in iteration order on one lane, all noise
 * is keyed by (iteration, table, row), and prepare owns all
 * HistoryTable state, so the trained model is BIT-identical to the
 * serial schedule at any thread count.
 */

#ifndef LAZYDP_TRAIN_TRAINER_H
#define LAZYDP_TRAIN_TRAINER_H

#include <cstdint>
#include <functional>
#include <vector>

#include "common/timer.h"
#include "data/data_loader.h"
#include "data/input_queue.h"
#include "nn/tiered_store.h"
#include "train/algorithm.h"

namespace lazydp {

class ModelSnapshotStore;

/** Knobs of one Trainer::run invocation. */
struct TrainOptions
{
    /**
     * Overlap prepare(i+1) and the batch-(i+2) load with apply(i) on
     * the pool's async lane. Requires an ExecContext with a pool;
     * silently falls back to the serial schedule without one. Never
     * changes the trained model.
     */
    bool pipeline = false;

    /**
     * Lot-sharded data-parallel worker replicas (train/replica.h):
     * every apply() fans its microbatch-shard gradient production
     * across this many workers (replica 0 = the main thread, the rest
     * on dedicated pool lanes) before the deterministic tree reduction
     * and the single noise-add/update. Must be 1, 2 or 4 (a divisor of
     * the fixed shard count). Requires a pool to actually run
     * concurrently; without one the same dataflow executes inline.
     * Never changes the trained model -- the third orthogonal
     * parallelism axis next to intra-op threads and the pipeline.
     */
    std::size_t replicas = 1;

    /**
     * Run Algorithm::finalize after the last iteration (default). Off
     * for checkpoint-segmented training: finalize flushes LazyDP's
     * pending noise into the weights, which must happen exactly once,
     * at the true end of training -- not at a mid-run checkpoint.
     */
    bool runFinalize = true;

    /** Keep the loss trajectory (benches may disable). */
    bool recordLosses = true;

    /**
     * Iteration-id offset: step k of the run executes as global
     * iteration startIter + k (warm-started HistoryTables require ids
     * beyond the warm-start point).
     */
    std::uint64_t startIter = 0;

    /**
     * First warmupIters iterations accrue into TrainResult::warmupTimer
     * instead of timer, and wallSeconds covers only the remainder.
     */
    std::uint64_t warmupIters = 0;

    /**
     * Fetch one extra batch so even the final iteration sees a `next`
     * (benches measure steady-state lookahead work on every iteration).
     */
    bool previewFinal = false;

    /**
     * Record each measured (post-warmup) iteration's end-to-end wall
     * seconds into TrainResult::iterSeconds, so benches can report
     * per-iteration tail percentiles (p95/p99) next to the mean.
     */
    bool recordIterSeconds = false;

    /**
     * Publish a versioned model snapshot into snapshotStore after
     * every publishEveryIters-th iteration of this run (0 = never).
     * The publish happens after apply() completes -- under the
     * pipelined schedule the only concurrent work is prepare(i+1),
     * which never touches weights, so the copy is race-free. Requires
     * snapshotStore and an algorithm bound to a model.
     */
    std::uint64_t publishEveryIters = 0;

    /** Snapshot exchange serving reads from (not owned; may be null). */
    ModelSnapshotStore *snapshotStore = nullptr;

    /**
     * Optional between-iterations hook, called after iteration i fully
     * completes (apply done, overlapped prepare joined, snapshot
     * published) and before iteration i+1 starts -- never after the
     * final iteration. The isolation governor
     * (serve/isolation_governor.h) injects its token-bucket throttle
     * pause here when serve-side SLO attainment drops. The hook runs
     * with no training state in flight and can only delay WHEN the
     * next iteration starts, so it never changes the trained model --
     * the DP bit-identity matrix holds with any gate installed.
     */
    std::function<void()> iterationGate;
};

/** Result of a training run. */
struct TrainResult
{
    StageTimer timer;            //!< measured (post-warmup) stage time
    StageTimer warmupTimer;      //!< stage time of the warmup iterations
    StageTimer finalizeTimer;    //!< stage time of Algorithm::finalize
    std::vector<double> losses;  //!< per-iteration training loss

    /**
     * Wall seconds of each measured iteration (only with
     * TrainOptions::recordIterSeconds): the percentile source for
     * per-iteration p95/p99 reporting.
     */
    std::vector<double> iterSeconds;
    double wallSeconds = 0.0;    //!< wall time of the measured iterations
    double finalizeSeconds = 0.0;//!< wall time of Algorithm::finalize
    std::uint64_t iterations = 0;//!< measured (post-warmup) iterations

    // Publish-side costs (zero unless TrainOptions::publishEveryIters),
    // summed over every publish of the run: how much the serving
    // freshness actually cost the training loop.
    double publishSeconds = 0.0;  //!< wall time inside publish()
    std::uint64_t publishes = 0;  //!< snapshots published by this run
    std::uint64_t rowsCopied = 0; //!< embedding rows memcpy'd
    std::uint64_t pagesShared = 0;//!< COW pages shared across versions

    /**
     * Out-of-core residency traffic summed over the model's tiered
     * tables (all zeros for an all-DRAM model): hit rate, promotions,
     * evictions, write-backs and warm coverage of the run. Collected
     * once at the end of run(), after the warm lane drained.
     */
    TierStats tierStats;

    /**
     * Sum of all measured stage times: total CPU-side work. Equals
     * wallSeconds (minus untimed data loading) under the serial
     * schedule; under the pipeline the overlapped prepare stages make
     * busySeconds EXCEED wallSeconds -- report both.
     */
    double busySeconds() const { return timer.totalSeconds(); }

    /** @return average wall seconds per measured iteration. */
    double
    secondsPerIteration() const
    {
        return iterations == 0 ? 0.0
                               : wallSeconds /
                                     static_cast<double>(iterations);
    }
};

/** Drives an Algorithm over a loader for a fixed iteration count. */
class Trainer
{
  public:
    /**
     * @param algorithm algorithm under test (not owned)
     * @param loader mini-batch source (not owned)
     * @param exec execution context handed to every step/finalize
     *        (not owned; nullptr = serial)
     */
    Trainer(Algorithm &algorithm, DataLoader &loader,
            ExecContext *exec = nullptr);

    /**
     * Run @p iterations training steps plus the algorithm's finalize.
     *
     * @param iterations number of optimizer steps
     * @param options schedule / accounting knobs
     */
    TrainResult run(std::uint64_t iterations,
                    const TrainOptions &options = {});

  private:
    /** Serial schedule: prepare+apply inline, one batch per iter. */
    void runSerial(std::uint64_t iterations, const TrainOptions &options,
                   TrainResult &result);

    /** Pipelined schedule: see the file comment. */
    void runPipelined(std::uint64_t iterations,
                      const TrainOptions &options, TrainResult &result);

    /**
     * Publish a snapshot after run-local iteration @p iter when the
     * options ask for one (stamped with the global iteration id),
     * accumulating publish costs into @p result .
     */
    void maybePublish(std::uint64_t iter, const TrainOptions &options,
                      TrainResult &result);

    Algorithm &algorithm_;
    DataLoader &loader_;
    ExecContext *exec_;
    /** Per-run copy of *exec_ carrying TrainOptions::replicas. */
    ExecContext runExec_;
};

} // namespace lazydp

#endif // LAZYDP_TRAIN_TRAINER_H
