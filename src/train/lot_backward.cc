#include "train/lot_backward.h"

#include <cstring>

namespace lazydp {

double
shardedLotBackward(
    DlrmModel &model, const MiniBatch &cur,
    const std::array<LotShardState *, kLotShards> &shards,
    std::vector<Tensor> &lot_emb_grad, ExecContext &exec,
    StageTimer &timer,
    const std::function<void(std::size_t, ExecContext &)> &produce)
{
    const std::size_t num_tables = model.config().numTables;
    const std::size_t dim = model.config().embedDim;

    // Slice the lot into the fixed microbatch shards (boundaries from
    // the lot size alone) and size the lot-wide gather buffers.
    timer.start(Stage::Else);
    if (lot_emb_grad.size() != num_tables)
        lot_emb_grad.resize(num_tables);
    for (std::size_t t = 0; t < num_tables; ++t) {
        if (lot_emb_grad[t].rows() != cur.batchSize ||
            lot_emb_grad[t].cols() != dim)
            lot_emb_grad[t].resizeNoShrink(cur.batchSize, dim);
    }
    for (std::size_t s = 0; s < kLotShards; ++s) {
        LotShardState &sh = *shards[s];
        const auto [lo, hi] = lotShardBounds(cur.batchSize, s);
        sh.lo = lo;
        sh.hi = hi;
        if (hi > lo)
            cur.slice(lo, hi, sh.batch);
        sh.lossSum = 0.0;
        sh.timer.reset();
    }
    timer.stop();

    // Fan the shards across the worker replicas. Each shard writes only
    // its own state plus disjoint row ranges of lot_emb_grad.
    runReplicated(exec, [&](std::size_t s, ExecContext &rexec) {
        LotShardState &sh = *shards[s];
        if (sh.lo == sh.hi) {
            // Empty shard (lot smaller than kLotShards): its partial
            // sums are exact zeros so the fixed tree stays intact.
            sh.sums.top.ensureShape(model.topMlp());
            sh.sums.bottom.ensureShape(model.bottomMlp());
            sh.sums.top.zero();
            sh.sums.bottom.zero();
            return;
        }
        produce(s, rexec);
        for (std::size_t t = 0; t < num_tables; ++t) {
            std::memcpy(lot_emb_grad[t].data() + sh.lo * dim,
                        sh.ws.dEmbOut[t].data(),
                        (sh.hi - sh.lo) * dim * sizeof(float));
        }
    });

    // Deterministic post-join bookkeeping: shard timers merge in shard
    // order (their overlapped wall time counts into busySeconds).
    for (LotShardState *sh : shards)
        timer.merge(sh->timer);

    // Fixed-tree reduction of the per-shard MLP gradient sums into the
    // layers' own gradient tensors: out = (q0 + q1) + (q2 + q3),
    // identical for every replica/thread count.
    timer.start(Stage::BackwardPerBatch);
    auto reduce_mlp = [&](Mlp &mlp, auto member) {
        auto &layers = mlp.layers();
        for (std::size_t li = 0; li < layers.size(); ++li) {
            treeReduce4((shards[0]->sums.*member).w[li],
                        (shards[1]->sums.*member).w[li],
                        (shards[2]->sums.*member).w[li],
                        (shards[3]->sums.*member).w[li],
                        layers[li].weightGrad(), exec);
            treeReduce4((shards[0]->sums.*member).b[li],
                        (shards[1]->sums.*member).b[li],
                        (shards[2]->sums.*member).b[li],
                        (shards[3]->sums.*member).b[li],
                        layers[li].biasGrad(), exec);
        }
    };
    reduce_mlp(model.topMlp(), &DlrmGradSums::top);
    reduce_mlp(model.bottomMlp(), &DlrmGradSums::bottom);
    timer.stop();

    return treeReduce4(shards[0]->lossSum, shards[1]->lossSum,
                       shards[2]->lossSum, shards[3]->lossSum) /
           static_cast<double>(cur.batchSize);
}

} // namespace lazydp
