#include "train/dirty_tracker.h"

#include <algorithm>

#include "common/macros.h"

namespace lazydp {

DirtyRowTracker::DirtyRowTracker(
    std::vector<std::uint64_t> rows_per_table, std::size_t page_rows)
    : pageRows_(page_rows), rows_(std::move(rows_per_table))
{
    LAZYDP_ASSERT(pageRows_ > 0, "page size must be positive");
    dirty_.resize(rows_.size());
    for (std::size_t t = 0; t < rows_.size(); ++t) {
        LAZYDP_ASSERT(rows_[t] > 0, "degenerate table in dirty tracker");
        dirty_[t].assign(pageCount(t), 0);
    }
}

std::unique_ptr<DirtyRowTracker>
DirtyRowTracker::forModel(const ModelConfig &config,
                          std::size_t page_rows)
{
    std::vector<std::uint64_t> rows(config.numTables);
    for (std::size_t t = 0; t < rows.size(); ++t)
        rows[t] = config.rowsForTable(t);
    return std::make_unique<DirtyRowTracker>(std::move(rows), page_rows);
}

void
DirtyRowTracker::markRows(std::size_t t,
                          std::span<const std::uint32_t> rows)
{
    LAZYDP_ASSERT(t < dirty_.size(), "table index out of range");
    std::vector<std::uint8_t> &bits = dirty_[t];
    for (const std::uint32_t row : rows) {
        LAZYDP_ASSERT(row < rows_[t], "dirty row out of range");
        bits[row / pageRows_] = 1;
    }
}

void
DirtyRowTracker::markAllDirty()
{
    allDirty_ = true;
}

std::uint64_t
DirtyRowTracker::dirtyPageCount() const
{
    std::uint64_t count = 0;
    if (allDirty_) {
        for (std::size_t t = 0; t < rows_.size(); ++t)
            count += pageCount(t);
        return count;
    }
    for (const auto &bits : dirty_)
        count += static_cast<std::uint64_t>(
            std::count(bits.begin(), bits.end(), std::uint8_t{1}));
    return count;
}

void
DirtyRowTracker::reset()
{
    allDirty_ = false;
    for (auto &bits : dirty_)
        std::fill(bits.begin(), bits.end(), std::uint8_t{0});
}

} // namespace lazydp
