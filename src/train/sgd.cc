#include "train/sgd.h"

#include "common/logging.h"
#include "tensor/simd_kernels.h"

namespace lazydp {

SgdAlgorithm::SgdAlgorithm(DlrmModel &model, const TrainHyper &hyper)
    : model_(model), hyper_(hyper)
{
    if (hyper.weightDecay != 0.0f)
        fatal("SGD baseline does not implement weight decay");
    sparseGrads_.resize(model.config().numTables);
}

bool
SgdAlgorithm::enableDirtyTracking(std::size_t page_rows)
{
    if (dirty_ == nullptr || dirty_->pageRows() != page_rows)
        dirty_ = DirtyRowTracker::forModel(model_.config(), page_rows);
    return true;
}

void
SgdAlgorithm::warmTier(const MiniBatch &next, const PreparedStep *prep,
                       ThreadPool *pool)
{
    (void)prep; // SGD has no prepared lookahead state
    if (!model_.tiered() || pool == nullptr)
        return;
    for (std::size_t t = 0; t < model_.config().numTables; ++t) {
        const auto idx = next.tableIndices(t);
        model_.tables()[t].warmRowsAsync(
            pool, std::vector<std::uint32_t>(idx.begin(), idx.end()));
    }
}

double
SgdAlgorithm::apply(std::uint64_t iter, const MiniBatch &cur,
                    PreparedStep &prepared, ExecContext &exec,
                    StageTimer &timer)
{
    (void)iter;
    (void)prepared;
    const std::size_t batch = cur.batchSize;
    const std::size_t num_tables = model_.config().numTables;

    // Lot-sharded gradient production: per shard, forward + loss +
    // plain per-batch backward (no clipping), through the shared
    // orchestration so SGD's dataflow equals the DP engines'.
    std::array<LotShardState *, kLotShards> view;
    for (std::size_t s = 0; s < kLotShards; ++s)
        view[s] = &shards_[s];
    const double loss = shardedLotBackward(
        model_, cur, view, lotEmbGrad_, exec, timer,
        [&](std::size_t s, ExecContext &rexec) {
            Shard &sh = shards_[s];
            const std::size_t n = sh.batch.batchSize;

            sh.timer.start(Stage::Forward);
            model_.forward(sh.batch, sh.logits, sh.ws, rexec);
            sh.timer.stop();

            sh.timer.start(Stage::Else);
            sh.lossSum = BceWithLogitsLoss::forwardSum(sh.logits,
                                                       sh.batch.labels);
            if (sh.dLogits.rows() != n || sh.dLogits.cols() != 1)
                sh.dLogits.resize(n, 1);
            BceWithLogitsLoss::backwardPerExample(
                sh.logits, sh.batch.labels, sh.dLogits);
            // per-batch averaging folded into the loss gradient; a
            // per-example operation, so it commutes with the sharding
            simd::scale(sh.dLogits.data(), sh.dLogits.size(),
                        1.0f / static_cast<float>(batch));
            sh.timer.stop();

            sh.timer.start(Stage::BackwardPerBatch);
            model_.backward(sh.dLogits, nullptr, false, sh.ws, &sh.sums,
                            rexec);
            sh.timer.stop();
        });

    timer.start(Stage::GradCoalesce);
    for (std::size_t t = 0; t < num_tables; ++t)
        model_.embeddingBackwardFrom(cur, t, lotEmbGrad_[t],
                                     sparseGrads_[t]);
    timer.stop();

    // Sparse model update: the entire point of non-private embedding
    // training -- touch only gathered rows.
    timer.start(Stage::NoisyGradUpdate);
    model_.applyMlps(hyper_.lr);
    for (std::size_t t = 0; t < num_tables; ++t) {
        model_.tables()[t].applySparse(sparseGrads_[t], hyper_.lr);
        if (dirty_ != nullptr)
            dirty_->markRows(t, sparseGrads_[t].rows);
    }
    timer.stop();

    return loss;
}

} // namespace lazydp
