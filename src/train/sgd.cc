#include "train/sgd.h"

#include "common/logging.h"
#include "tensor/simd_kernels.h"

namespace lazydp {

SgdAlgorithm::SgdAlgorithm(DlrmModel &model, const TrainHyper &hyper)
    : model_(model), hyper_(hyper)
{
    if (hyper.weightDecay != 0.0f)
        fatal("SGD baseline does not implement weight decay");
    sparseGrads_.resize(model.config().numTables);
}

double
SgdAlgorithm::apply(std::uint64_t iter, const MiniBatch &cur,
                    PreparedStep &prepared, ExecContext &exec,
                    StageTimer &timer)
{
    (void)iter;
    (void)prepared;
    const std::size_t batch = cur.batchSize;

    timer.start(Stage::Forward);
    model_.forward(cur, logits_, exec);
    timer.stop();

    timer.start(Stage::Else);
    const double loss = BceWithLogitsLoss::forward(logits_, cur.labels);
    if (dLogits_.rows() != batch || dLogits_.cols() != 1)
        dLogits_.resize(batch, 1);
    BceWithLogitsLoss::backwardPerExample(logits_, cur.labels, dLogits_);
    // per-batch averaging folded into the loss gradient
    simd::scale(dLogits_.data(), dLogits_.size(),
                1.0f / static_cast<float>(batch));
    timer.stop();

    timer.start(Stage::BackwardPerBatch);
    model_.backward(dLogits_, nullptr, false, exec);
    timer.stop();

    timer.start(Stage::GradCoalesce);
    for (std::size_t t = 0; t < model_.config().numTables; ++t)
        model_.embeddingBackward(cur, t, sparseGrads_[t]);
    timer.stop();

    // Sparse model update: the entire point of non-private embedding
    // training -- touch only gathered rows.
    timer.start(Stage::NoisyGradUpdate);
    model_.applyMlps(hyper_.lr);
    for (std::size_t t = 0; t < model_.config().numTables; ++t)
        model_.tables()[t].applySparse(sparseGrads_[t], hyper_.lr);
    timer.stop();

    return loss;
}

} // namespace lazydp
