#include "rng/noise_provider.h"

#include <cmath>

#include "common/macros.h"

namespace lazydp {

NoiseProvider::NoiseProvider(std::uint64_t seed, GaussianKernel kernel)
    : philox_(seed), kernel_(resolveGaussianKernel(kernel))
{
}

void
NoiseProvider::composeCounter(std::uint32_t domain, std::uint64_t iter,
                              std::uint32_t table, std::uint64_t row,
                              std::uint64_t &ctr_hi, std::uint64_t &lo_base)
{
    // ctr_hi: [2-bit domain][54-bit iteration][8-bit table]
    // ctr_lo: [52-bit row][12-bit block index] (blocks cover 4 samples,
    //         so dim <= 4 * 2^12 = kMaxDim)
    LAZYDP_ASSERT(iter < (1ull << 54), "iteration id overflows counter");
    LAZYDP_ASSERT(table < kMaxTables, "table id overflows counter");
    LAZYDP_ASSERT(row < (1ull << 52), "row id overflows counter");
    ctr_hi = (static_cast<std::uint64_t>(domain) << 62) | (iter << 8) |
             static_cast<std::uint64_t>(table);
    lo_base = row << 12;
}

void
NoiseProvider::rowNoise(std::uint64_t iter, std::uint32_t table,
                        std::uint64_t row, float sigma, float scale,
                        float *dst, std::size_t dim, bool accumulate) const
{
    LAZYDP_ASSERT(dim <= kMaxDim, "embedding dim exceeds counter layout");
    std::uint64_t hi, lo;
    composeCounter(/*domain=*/0, iter, table, row, hi, lo);
    gaussian_detail::fillKeyed(philox_, hi, lo, dst, dim, sigma, scale,
                               accumulate, kernel_);
}

void
NoiseProvider::rowNoiseParallel(std::uint64_t iter, std::uint32_t table,
                                std::uint64_t row, float sigma,
                                float scale, float *dst, std::size_t dim,
                                bool accumulate, ExecContext &exec) const
{
    LAZYDP_ASSERT(dim <= kMaxDim, "embedding dim exceeds counter layout");
    std::uint64_t hi, lo;
    composeCounter(/*domain=*/0, iter, table, row, hi, lo);
    gaussian_detail::fillKeyedParallel(philox_, hi, lo, dst, dim, sigma,
                                       scale, accumulate, kernel_, exec);
}

void
NoiseProvider::rowNoiseBatch(std::uint64_t iter, std::uint32_t table,
                             std::span<const std::uint32_t> rows,
                             float sigma, float scale, float *dst,
                             std::size_t dim, bool accumulate,
                             ExecContext &exec) const
{
    parallelFor(exec, rows.size(), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            rowNoise(iter, table, rows[i], sigma, scale, dst + i * dim,
                     dim, accumulate);
        }
    });
}

void
NoiseProvider::accumulateRowNoise(std::uint64_t iter_from,
                                  std::uint64_t iter_to, std::uint32_t table,
                                  std::uint64_t row, float sigma, float scale,
                                  float *dst, std::size_t dim) const
{
    LAZYDP_ASSERT(iter_from <= iter_to, "empty iteration range");
    for (std::uint64_t it = iter_from; it <= iter_to; ++it)
        rowNoise(it, table, row, sigma, scale, dst, dim, true);
}

void
NoiseProvider::aggregatedRowNoise(std::uint64_t iter_from,
                                  std::uint64_t iter_to, std::uint32_t table,
                                  std::uint64_t row, float sigma, float scale,
                                  float *dst, std::size_t dim) const
{
    LAZYDP_ASSERT(iter_from <= iter_to, "empty iteration range");
    LAZYDP_ASSERT(dim <= kMaxDim, "embedding dim exceeds counter layout");
    const auto k = static_cast<float>(iter_to - iter_from + 1);
    // Theorem 5.1: sum of k iid N(0, sigma^2) == N(0, k * sigma^2).
    const float agg_sigma = sigma * std::sqrt(k);
    std::uint64_t hi, lo;
    composeCounter(/*domain=*/1, iter_to, table, row, hi, lo);
    gaussian_detail::fillKeyed(philox_, hi, lo, dst, dim, agg_sigma, scale,
                               true, kernel_);
}

void
NoiseProvider::geometricRowNoise(std::uint64_t iter_from,
                                 std::uint64_t iter_to,
                                 std::uint32_t table, std::uint64_t row,
                                 float alpha, float sigma, float scale,
                                 float *dst, std::size_t dim) const
{
    LAZYDP_ASSERT(iter_from <= iter_to, "empty iteration range");
    LAZYDP_ASSERT(alpha > 0.0f && alpha <= 1.0f,
                  "decay factor must be in (0, 1]");
    float weight = 1.0f; // alpha^(iter_to - j), newest draw first
    for (std::uint64_t it = iter_to;; --it) {
        rowNoise(it, table, row, sigma, scale * weight, dst, dim, true);
        if (it == iter_from)
            break;
        weight *= alpha;
    }
}

void
NoiseProvider::aggregatedGeometricRowNoise(
    std::uint64_t iter_from, std::uint64_t iter_to, std::uint32_t table,
    std::uint64_t row, float alpha, float sigma, float scale, float *dst,
    std::size_t dim) const
{
    LAZYDP_ASSERT(iter_from <= iter_to, "empty iteration range");
    LAZYDP_ASSERT(alpha > 0.0f && alpha <= 1.0f,
                  "decay factor must be in (0, 1]");
    const auto k = static_cast<double>(iter_to - iter_from + 1);
    // variance factor: sum_{m=0}^{k-1} alpha^(2m)
    const double a2 = static_cast<double>(alpha) * alpha;
    const double var_factor =
        a2 >= 1.0 ? k : (1.0 - std::pow(a2, k)) / (1.0 - a2);
    const float agg_sigma =
        sigma * static_cast<float>(std::sqrt(var_factor));
    std::uint64_t hi, lo;
    composeCounter(/*domain=*/1, iter_to, table, row, hi, lo);
    gaussian_detail::fillKeyed(philox_, hi, lo, dst, dim, agg_sigma,
                               scale, true, kernel_);
}

} // namespace lazydp
