/**
 * @file
 * Vectorized transcendental kernels for Box-Muller noise sampling.
 *
 * The paper (Section 4.3) observes that torch.normal() spends its time
 * in ~101 AVX compute instructions per vector, dominated by logarithm
 * and trigonometric polynomial chains. These kernels reproduce that
 * profile: Cephes-style single-precision log and sin/cos minimax
 * polynomials evaluated on 8-wide AVX2 lanes.
 *
 * Accuracy: |rel err| < 2e-7 for log on (0,1]; |abs err| < 1e-6 for
 * sinCos2Pi on [0,1). Verified against libm in tests/rng/avx_math_test.
 */

#ifndef LAZYDP_RNG_AVX_MATH_H
#define LAZYDP_RNG_AVX_MATH_H

#if defined(__AVX2__)

#include <immintrin.h>

namespace lazydp {
namespace avxm {

/** @return natural log of each lane; inputs must be positive finite. */
__m256 logPs(__m256 x);

/**
 * Simultaneously compute sin(2*pi*u) and cos(2*pi*u) for u in [0, 1).
 *
 * @param u lanes in [0, 1)
 * @param s out: sin(2*pi*u)
 * @param c out: cos(2*pi*u)
 */
void sinCos2PiPs(__m256 u, __m256 &s, __m256 &c);

} // namespace avxm
} // namespace lazydp

#endif // __AVX2__

#endif // LAZYDP_RNG_AVX_MATH_H
