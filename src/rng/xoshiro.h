/**
 * @file
 * xoshiro256++ generator for bulk, non-reproducibility-critical
 * randomness (workload/index generation, weight init).
 *
 * Reference: Blackman & Vigna, "Scrambled Linear Pseudorandom Number
 * Generators" (2019).
 */

#ifndef LAZYDP_RNG_XOSHIRO_H
#define LAZYDP_RNG_XOSHIRO_H

#include <cstdint>

namespace lazydp {

/** xoshiro256++ PRNG; satisfies UniformRandomBitGenerator. */
class Xoshiro256
{
  public:
    using result_type = std::uint64_t;

    /** Seed via SplitMix64 expansion of @p seed. */
    explicit Xoshiro256(std::uint64_t seed);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** @return next 64-bit value. */
    result_type operator()();

    /** @return uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** @return uniform float in [0, 1). */
    float
    nextFloat()
    {
        return static_cast<float>((*this)() >> 40) * 0x1.0p-24f;
    }

    /** @return uniform integer in [0, n). */
    std::uint64_t
    nextBelow(std::uint64_t n)
    {
        // 128-bit multiply trick (Lemire); bias is negligible for the
        // table sizes involved and irrelevant to DP (workload gen only).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>((*this)()) * n) >> 64);
    }

  private:
    std::uint64_t s_[4];
};

} // namespace lazydp

#endif // LAZYDP_RNG_XOSHIRO_H
