/**
 * @file
 * Box-Muller implementation selector, split from rng/gaussian.h so the
 * kernel registry (and its AVX2 translation unit, which must keep its
 * include set free of nontrivial inline functions) can name the enum
 * without pulling in the sampler/thread-pool headers.
 */

#ifndef LAZYDP_RNG_GAUSSIAN_KERNEL_H
#define LAZYDP_RNG_GAUSSIAN_KERNEL_H

namespace lazydp {

/** Which Box-Muller implementation to run. */
enum class GaussianKernel
{
    Auto,   //!< follow the active kernel-registry backend
    Scalar, //!< libm log/sin/cos per sample
    Avx2    //!< 8-wide vectorized philox + polynomial transcendentals
};

/** @return the concrete kernel Auto resolves to on this host. */
GaussianKernel resolveGaussianKernel(GaussianKernel k);

} // namespace lazydp

#endif // LAZYDP_RNG_GAUSSIAN_KERNEL_H
