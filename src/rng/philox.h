/**
 * @file
 * Philox4x32-10 counter-based pseudo-random generator.
 *
 * A counter-based RNG gives LazyDP a crucial property: the Gaussian
 * noise destined for (iteration i, table t, row r) can be generated at
 * any wall-clock time and always produce the same bits. This is what
 * lets the test suite prove that lazily deferred noise application is
 * bit-for-bit the same randomness the eager DP-SGD baseline would have
 * applied (Section 5.2.1 of the paper).
 *
 * Reference: Salmon et al., "Parallel Random Numbers: As Easy as
 * 1, 2, 3" (SC'11).
 */

#ifndef LAZYDP_RNG_PHILOX_H
#define LAZYDP_RNG_PHILOX_H

#include <array>
#include <cstdint>

namespace lazydp {

/** Stateless Philox4x32 with 10 rounds, keyed by a 64-bit seed. */
class Philox4x32
{
  public:
    /** Four 32-bit outputs per counter block. */
    using Block = std::array<std::uint32_t, 4>;

    /** @param seed 64-bit key; different seeds give independent streams. */
    explicit Philox4x32(std::uint64_t seed)
        : key0_(static_cast<std::uint32_t>(seed)),
          key1_(static_cast<std::uint32_t>(seed >> 32))
    {
    }

    /**
     * Generate the block for 128-bit counter (@p ctr_hi, @p ctr_lo).
     * Pure function of (seed, counter).
     */
    Block block(std::uint64_t ctr_hi, std::uint64_t ctr_lo) const;

    /** @return the seed this generator was keyed with. */
    std::uint64_t
    seed() const
    {
        return (static_cast<std::uint64_t>(key1_) << 32) | key0_;
    }

  private:
    std::uint32_t key0_;
    std::uint32_t key1_;
};

/**
 * Convenience sequential stream over Philox blocks.
 *
 * Draws 32-bit values one at a time, advancing an internal 128-bit
 * counter; satisfies UniformRandomBitGenerator.
 */
class PhiloxStream
{
  public:
    using result_type = std::uint32_t;

    /**
     * @param seed key for the underlying Philox
     * @param stream independent stream selector (occupies ctr_hi)
     */
    explicit PhiloxStream(std::uint64_t seed, std::uint64_t stream = 0)
        : philox_(seed), hi_(stream), lo_(0), idx_(4)
    {
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return 0xFFFFFFFFu; }

    /** @return next 32-bit value in the stream. */
    result_type
    operator()()
    {
        if (idx_ == 4) {
            blk_ = philox_.block(hi_, lo_++);
            idx_ = 0;
        }
        return blk_[idx_++];
    }

    /** @return uniform float in (0, 1). */
    float
    nextUniform()
    {
        // 24 mantissa bits, offset by half an ulp so 0 is excluded
        // (Box-Muller takes log of this value).
        return (static_cast<float>((*this)() >> 8) + 0.5f) *
               (1.0f / 16777216.0f);
    }

  private:
    Philox4x32 philox_;
    std::uint64_t hi_;
    std::uint64_t lo_;
    Philox4x32::Block blk_{};
    int idx_;
};

} // namespace lazydp

#endif // LAZYDP_RNG_PHILOX_H
