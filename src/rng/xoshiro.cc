#include "rng/xoshiro.h"

namespace lazydp {

namespace {

inline std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

Xoshiro256::result_type
Xoshiro256::operator()()
{
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

} // namespace lazydp
