#include "rng/gaussian.h"

#include <cmath>

#include "common/cpu_features.h"
#include "common/macros.h"
#include "rng/avx_math.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace lazydp {

GaussianKernel
resolveGaussianKernel(GaussianKernel k)
{
    if (k != GaussianKernel::Auto)
        return k;
#if defined(__AVX2__)
    if (cpuFeatures().avx2)
        return GaussianKernel::Avx2;
#endif
    return GaussianKernel::Scalar;
}

namespace gaussian_detail {

namespace {

constexpr float kTwoPi = 6.28318530717958647692f;

/** u32 -> uniform float in (0, 1): 24 mantissa bits + half-ulp offset. */
inline float
toUniform(std::uint32_t x)
{
    return (static_cast<float>(x >> 8) + 0.5f) * (1.0f / 16777216.0f);
}

/** Scalar Box-Muller over one Philox block -> 4 samples. */
inline void
blockToGaussians(const Philox4x32::Block &blk, float sigma, float out[4])
{
    const float u0 = toUniform(blk[0]);
    const float u1 = toUniform(blk[1]);
    const float u2 = toUniform(blk[2]);
    const float u3 = toUniform(blk[3]);
    const float r0 = sigma * std::sqrt(-2.0f * std::log(u0));
    const float r1 = sigma * std::sqrt(-2.0f * std::log(u2));
    out[0] = r0 * std::cos(kTwoPi * u1);
    out[1] = r0 * std::sin(kTwoPi * u1);
    out[2] = r1 * std::cos(kTwoPi * u3);
    out[3] = r1 * std::sin(kTwoPi * u3);
}

void
fillKeyedScalar(const Philox4x32 &philox, std::uint64_t ctr_hi,
                std::uint64_t lo_base, float *dst, std::size_t dim,
                float sigma, float scale, bool accumulate)
{
    const std::size_t blocks = (dim + 3) / 4;
    for (std::size_t b = 0; b < blocks; ++b) {
        float z[4];
        blockToGaussians(philox.block(ctr_hi, lo_base + b), sigma, z);
        const std::size_t base = 4 * b;
        const std::size_t lim = std::min<std::size_t>(4, dim - base);
        for (std::size_t j = 0; j < lim; ++j) {
            const float v = scale * z[j];
            dst[base + j] = accumulate ? dst[base + j] + v : v;
        }
    }
}

#if defined(__AVX2__)

/**
 * 8-wide Philox4x32-10: computes blocks (ctr_hi, lo_base + lane) for
 * lanes 0..7 in SoA form (x0..x3 each hold one output word of all
 * 8 blocks).
 */
inline void
philoxAvx2(std::uint32_t key0, std::uint32_t key1, std::uint64_t ctr_hi,
           std::uint64_t lo_base, __m256i &x0, __m256i &x1, __m256i &x2,
           __m256i &x3)
{
    alignas(32) std::uint32_t c0v[8], c1v[8];
    for (int lane = 0; lane < 8; ++lane) {
        const std::uint64_t lo = lo_base + static_cast<std::uint64_t>(lane);
        c0v[lane] = static_cast<std::uint32_t>(lo);
        c1v[lane] = static_cast<std::uint32_t>(lo >> 32);
    }
    __m256i c0 = _mm256_load_si256(reinterpret_cast<const __m256i *>(c0v));
    __m256i c1 = _mm256_load_si256(reinterpret_cast<const __m256i *>(c1v));
    __m256i c2 = _mm256_set1_epi32(static_cast<int>(
        static_cast<std::uint32_t>(ctr_hi)));
    __m256i c3 = _mm256_set1_epi32(static_cast<int>(
        static_cast<std::uint32_t>(ctr_hi >> 32)));
    __m256i k0 = _mm256_set1_epi32(static_cast<int>(key0));
    __m256i k1 = _mm256_set1_epi32(static_cast<int>(key1));

    const __m256i m0 = _mm256_set1_epi32(static_cast<int>(0xD2511F53u));
    const __m256i m1 = _mm256_set1_epi32(static_cast<int>(0xCD9E8D57u));
    const __m256i w0 = _mm256_set1_epi32(static_cast<int>(0x9E3779B9u));
    const __m256i w1 = _mm256_set1_epi32(static_cast<int>(0xBB67AE85u));

    auto mulhilo = [](__m256i a, __m256i m, __m256i &hi, __m256i &lo) {
        // 32x32->64 products for even and odd lanes, then re-blend.
        const __m256i prod_e = _mm256_mul_epu32(a, m);
        const __m256i prod_o =
            _mm256_mul_epu32(_mm256_srli_epi64(a, 32), m);
        lo = _mm256_blend_epi32(prod_e, _mm256_slli_epi64(prod_o, 32),
                                0b10101010);
        hi = _mm256_blend_epi32(_mm256_srli_epi64(prod_e, 32), prod_o,
                                0b10101010);
    };

    for (int round = 0; round < 10; ++round) {
        __m256i hi0, lo0, hi1, lo1;
        mulhilo(c0, m0, hi0, lo0);
        mulhilo(c2, m1, hi1, lo1);
        const __m256i n0 =
            _mm256_xor_si256(_mm256_xor_si256(hi1, c1), k0);
        const __m256i n2 =
            _mm256_xor_si256(_mm256_xor_si256(hi0, c3), k1);
        c1 = lo1;
        c3 = lo0;
        c0 = n0;
        c2 = n2;
        k0 = _mm256_add_epi32(k0, w0);
        k1 = _mm256_add_epi32(k1, w1);
    }
    x0 = c0;
    x1 = c1;
    x2 = c2;
    x3 = c3;
}

/** u32 vector -> uniform (0,1) floats. */
inline __m256
toUniformPs(__m256i x)
{
    const __m256 f = _mm256_cvtepi32_ps(_mm256_srli_epi32(x, 8));
    return _mm256_mul_ps(_mm256_add_ps(f, _mm256_set1_ps(0.5f)),
                         _mm256_set1_ps(1.0f / 16777216.0f));
}

void
fillKeyedAvx2(const Philox4x32 &philox, std::uint64_t ctr_hi,
              std::uint64_t lo_base, float *dst, std::size_t dim,
              float sigma, float scale, bool accumulate)
{
    const std::uint32_t key0 =
        static_cast<std::uint32_t>(philox.seed());
    const std::uint32_t key1 =
        static_cast<std::uint32_t>(philox.seed() >> 32);
    const __m256 vsigma = _mm256_set1_ps(sigma);

    std::size_t b = 0;
    const std::size_t blocks = (dim + 3) / 4;
    // Full groups of 8 blocks -> 32 contiguous output samples.
    for (; b + 8 <= blocks && (dim - 4 * b) >= 32; b += 8) {
        __m256i x0, x1, x2, x3;
        philoxAvx2(key0, key1, ctr_hi, lo_base + b, x0, x1, x2, x3);

        const __m256 u0 = toUniformPs(x0);
        const __m256 u1 = toUniformPs(x1);
        const __m256 u2 = toUniformPs(x2);
        const __m256 u3 = toUniformPs(x3);

        // radius = sigma * sqrt(-2 ln u)
        const __m256 neg2 = _mm256_set1_ps(-2.0f);
        const __m256 r0 = _mm256_mul_ps(
            vsigma,
            _mm256_sqrt_ps(_mm256_mul_ps(neg2, avxm::logPs(u0))));
        const __m256 r1 = _mm256_mul_ps(
            vsigma,
            _mm256_sqrt_ps(_mm256_mul_ps(neg2, avxm::logPs(u2))));

        __m256 s0, c0p, s1, c1p;
        avxm::sinCos2PiPs(u1, s0, c0p);
        avxm::sinCos2PiPs(u3, s1, c1p);

        // lane l of zj corresponds to output element 4*(b+l) + j
        const __m256 z0 = _mm256_mul_ps(r0, c0p);
        const __m256 z1 = _mm256_mul_ps(r0, s0);
        const __m256 z2 = _mm256_mul_ps(r1, c1p);
        const __m256 z3 = _mm256_mul_ps(r1, s1);

        alignas(32) float t0[8], t1[8], t2[8], t3[8];
        _mm256_store_ps(t0, z0);
        _mm256_store_ps(t1, z1);
        _mm256_store_ps(t2, z2);
        _mm256_store_ps(t3, z3);

        float *out = dst + 4 * b;
        if (accumulate) {
            for (int lane = 0; lane < 8; ++lane) {
                out[4 * lane + 0] += scale * t0[lane];
                out[4 * lane + 1] += scale * t1[lane];
                out[4 * lane + 2] += scale * t2[lane];
                out[4 * lane + 3] += scale * t3[lane];
            }
        } else {
            for (int lane = 0; lane < 8; ++lane) {
                out[4 * lane + 0] = scale * t0[lane];
                out[4 * lane + 1] = scale * t1[lane];
                out[4 * lane + 2] = scale * t2[lane];
                out[4 * lane + 3] = scale * t3[lane];
            }
        }
    }
    // Remainder via the scalar kernel (identical counter mapping).
    if (4 * b < dim) {
        fillKeyedScalar(philox, ctr_hi, lo_base + b, dst + 4 * b,
                        dim - 4 * b, sigma, scale, accumulate);
    }
}

#endif // __AVX2__

} // namespace

void
fillKeyed(const Philox4x32 &philox, std::uint64_t ctr_hi,
          std::uint64_t lo_base, float *dst, std::size_t dim, float sigma,
          float scale, bool accumulate, GaussianKernel kernel)
{
    switch (resolveGaussianKernel(kernel)) {
#if defined(__AVX2__)
      case GaussianKernel::Avx2:
        fillKeyedAvx2(philox, ctr_hi, lo_base, dst, dim, sigma, scale,
                      accumulate);
        return;
#endif
      default:
        fillKeyedScalar(philox, ctr_hi, lo_base, dst, dim, sigma, scale,
                        accumulate);
        return;
    }
}

void
fillKeyedParallel(const Philox4x32 &philox, std::uint64_t ctr_hi,
                  std::uint64_t lo_base, float *dst, std::size_t dim,
                  float sigma, float scale, bool accumulate,
                  GaussianKernel kernel, ExecContext &exec)
{
    // Shard on Philox-block boundaries (4 samples each) so every shard
    // consumes exactly the counters the serial path would have used for
    // its output range. Grain: 2048 blocks = 8192 samples per shard.
    const std::size_t blocks = (dim + 3) / 4;
    parallelForShards(
        exec, blocks, 2048,
        [&](std::size_t, std::size_t blo, std::size_t bhi) {
            const std::size_t sample_lo = 4 * blo;
            const std::size_t sample_hi = std::min(dim, 4 * bhi);
            fillKeyed(philox, ctr_hi, lo_base + blo, dst + sample_lo,
                      sample_hi - sample_lo, sigma, scale, accumulate,
                      kernel);
        });
}

} // namespace gaussian_detail

GaussianSampler::GaussianSampler(std::uint64_t seed, std::uint64_t stream,
                                 GaussianKernel kernel)
    : philox_(seed), hi_(stream), lo_(0),
      kernel_(resolveGaussianKernel(kernel))
{
}

void
GaussianSampler::fill(float *dst, std::size_t n, float sigma)
{
    gaussian_detail::fillKeyed(philox_, hi_, lo_, dst, n, sigma, 1.0f,
                               false, kernel_);
    lo_ += (n + 3) / 4;
}

void
GaussianSampler::fill(float *dst, std::size_t n, float sigma,
                      ExecContext &exec)
{
    gaussian_detail::fillKeyedParallel(philox_, hi_, lo_, dst, n, sigma,
                                       1.0f, false, kernel_, exec);
    lo_ += (n + 3) / 4;
}

void
GaussianSampler::accumulate(float *dst, std::size_t n, float sigma,
                            float scale)
{
    gaussian_detail::fillKeyed(philox_, hi_, lo_, dst, n, sigma, scale,
                               true, kernel_);
    lo_ += (n + 3) / 4;
}

} // namespace lazydp
