#include "rng/gaussian.h"

#include <algorithm>

#include "common/macros.h"
#include "kernels/kernels_internal.h"

namespace lazydp {

GaussianKernel
resolveGaussianKernel(GaussianKernel k)
{
    if (k != GaussianKernel::Auto)
        return k;
    // Auto follows the process-wide kernel backend selection
    // (--kernels / LAZYDP_KERNELS / cpuid), so one knob switches the
    // noise path together with the rest of the hot loops.
    return kernels().gaussian;
}

namespace gaussian_detail {

void
fillKeyed(const Philox4x32 &philox, std::uint64_t ctr_hi,
          std::uint64_t lo_base, float *dst, std::size_t dim, float sigma,
          float scale, bool accumulate, GaussianKernel kernel)
{
    if (resolveGaussianKernel(kernel) == GaussianKernel::Avx2) {
        if (const KernelTable *avx2 = kernelTable(KernelBackend::Avx2)) {
            avx2->gaussianFillKeyed(philox, ctr_hi, lo_base, dst, dim,
                                    sigma, scale, accumulate);
            return;
        }
        // Explicit Avx2 request on a host without it: the scalar fill
        // is distributionally identical (same counters).
    }
    kernels_detail::gaussianFillKeyedScalar(philox, ctr_hi, lo_base, dst,
                                            dim, sigma, scale, accumulate);
}

void
fillKeyedParallel(const Philox4x32 &philox, std::uint64_t ctr_hi,
                  std::uint64_t lo_base, float *dst, std::size_t dim,
                  float sigma, float scale, bool accumulate,
                  GaussianKernel kernel, ExecContext &exec)
{
    // Shard on Philox-block boundaries (4 samples each) so every shard
    // consumes exactly the counters the serial path would have used for
    // its output range. Grain: 2048 blocks = 8192 samples per shard.
    const std::size_t blocks = (dim + 3) / 4;
    parallelForShards(
        exec, blocks, 2048,
        [&](std::size_t, std::size_t blo, std::size_t bhi) {
            const std::size_t sample_lo = 4 * blo;
            const std::size_t sample_hi = std::min(dim, 4 * bhi);
            fillKeyed(philox, ctr_hi, lo_base + blo, dst + sample_lo,
                      sample_hi - sample_lo, sigma, scale, accumulate,
                      kernel);
        });
}

} // namespace gaussian_detail

GaussianSampler::GaussianSampler(std::uint64_t seed, std::uint64_t stream,
                                 GaussianKernel kernel)
    : philox_(seed), hi_(stream), lo_(0),
      kernel_(resolveGaussianKernel(kernel))
{
}

void
GaussianSampler::fill(float *dst, std::size_t n, float sigma)
{
    gaussian_detail::fillKeyed(philox_, hi_, lo_, dst, n, sigma, 1.0f,
                               false, kernel_);
    lo_ += (n + 3) / 4;
}

void
GaussianSampler::fill(float *dst, std::size_t n, float sigma,
                      ExecContext &exec)
{
    gaussian_detail::fillKeyedParallel(philox_, hi_, lo_, dst, n, sigma,
                                       1.0f, false, kernel_, exec);
    lo_ += (n + 3) / 4;
}

void
GaussianSampler::accumulate(float *dst, std::size_t n, float sigma,
                            float scale)
{
    gaussian_detail::fillKeyed(philox_, hi_, lo_, dst, n, sigma, scale,
                               true, kernel_);
    lo_ += (n + 3) / 4;
}

} // namespace lazydp
