/**
 * @file
 * Box-Muller Gaussian sampling on top of Philox counters.
 *
 * This is the kernel the paper identifies as the compute-bound half of
 * DP-SGD's model-update bottleneck: each pair of output samples costs a
 * logarithm, a square root and a sin/cos evaluation (~101 vector ops per
 * 8-wide vector in the AVX2 path).
 *
 * Determinism contract: for a fixed (seed, counter, kernel) the output
 * is bit-stable. The Scalar and Avx2 kernels consume identical counter
 * blocks and differ only by libm-vs-polynomial rounding (|diff| < 1e-5
 * per sample), so distributions are identical across kernels.
 */

#ifndef LAZYDP_RNG_GAUSSIAN_H
#define LAZYDP_RNG_GAUSSIAN_H

#include <cstddef>
#include <cstdint>

#include "common/thread_pool.h"
#include "rng/gaussian_kernel.h"
#include "rng/philox.h"

namespace lazydp {

namespace gaussian_detail {

/**
 * Core keyed generator: writes (or accumulates) `scale * z` for
 * `dim` samples into @p dst, where z ~ N(0, sigma^2) and sample 4b+j
 * is derived from Philox block (ctr_hi, lo_base + b).
 *
 * @param accumulate when true, dst[i] += value; else dst[i] = value.
 */
void fillKeyed(const Philox4x32 &philox, std::uint64_t ctr_hi,
               std::uint64_t lo_base, float *dst, std::size_t dim,
               float sigma, float scale, bool accumulate,
               GaussianKernel kernel);

/**
 * Pool-parallel fillKeyed for bulk fills: the counter range is sharded
 * on 4-sample Philox-block boundaries with a fixed grain, so the
 * output is bit-identical to the serial fillKeyed at any thread count
 * (every sample is derived from its keyed counter, not draw order).
 */
void fillKeyedParallel(const Philox4x32 &philox, std::uint64_t ctr_hi,
                       std::uint64_t lo_base, float *dst, std::size_t dim,
                       float sigma, float scale, bool accumulate,
                       GaussianKernel kernel, ExecContext &exec);

} // namespace gaussian_detail

/**
 * Sequential bulk Gaussian stream.
 *
 * Used by the eager DP-SGD baselines to fill table-sized dense noise
 * tensors; consumes consecutive Philox counters.
 */
class GaussianSampler
{
  public:
    /**
     * @param seed Philox key
     * @param stream independent-stream selector (lands in ctr_hi)
     * @param kernel implementation selection
     */
    explicit GaussianSampler(std::uint64_t seed, std::uint64_t stream = 0,
                             GaussianKernel kernel = GaussianKernel::Auto);

    /** dst[i] = z_i with z ~ N(0, sigma^2), advancing the stream. */
    void fill(float *dst, std::size_t n, float sigma);

    /**
     * Parallel bulk fill: same output and stream advance as fill() --
     * counters are keyed by block index, so sharding the range across
     * @p exec changes nothing but wall time.
     */
    void fill(float *dst, std::size_t n, float sigma, ExecContext &exec);

    /** dst[i] += scale * z_i with z ~ N(0, sigma^2). */
    void accumulate(float *dst, std::size_t n, float sigma, float scale);

    /** @return kernel actually in use (Auto resolved). */
    GaussianKernel kernel() const { return kernel_; }

  private:
    Philox4x32 philox_;
    std::uint64_t hi_;
    std::uint64_t lo_;
    GaussianKernel kernel_;
};

} // namespace lazydp

#endif // LAZYDP_RNG_GAUSSIAN_H
