#include "rng/avx_math.h"

#if defined(__AVX2__)

namespace lazydp {
namespace avxm {

__m256
logPs(__m256 x)
{
    // Cephes logf adapted to AVX2 (cf. avx_mathfun): decompose
    // x = m * 2^e with m in [sqrt(1/2), sqrt(2)), evaluate a degree-9
    // minimax polynomial on m-1, then recombine with e*ln2.
    const __m256 one = _mm256_set1_ps(1.0f);
    const __m256 half = _mm256_set1_ps(0.5f);

    __m256i xi = _mm256_castps_si256(x);
    // exponent field, unbiased by 126 so mantissa lands in [0.5, 1)
    __m256i emm0 = _mm256_srli_epi32(xi, 23);
    emm0 = _mm256_sub_epi32(emm0, _mm256_set1_epi32(126));
    __m256 e = _mm256_cvtepi32_ps(emm0);

    // keep mantissa, force exponent of 0.5
    xi = _mm256_and_si256(xi, _mm256_set1_epi32(0x007FFFFF));
    xi = _mm256_or_si256(xi, _mm256_set1_epi32(0x3F000000));
    x = _mm256_castsi256_ps(xi);

    // if x < sqrt(0.5): e -= 1, x = 2x - 1 ; else x = x - 1
    const __m256 sqrt_half = _mm256_set1_ps(0.707106781186547524f);
    __m256 mask = _mm256_cmp_ps(x, sqrt_half, _CMP_LT_OQ);
    __m256 tmp = _mm256_and_ps(x, mask);
    x = _mm256_sub_ps(x, one);
    e = _mm256_sub_ps(e, _mm256_and_ps(one, mask));
    x = _mm256_add_ps(x, tmp);

    const __m256 z = _mm256_mul_ps(x, x);

    __m256 y = _mm256_set1_ps(7.0376836292e-2f);
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(-1.1514610310e-1f));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.1676998740e-1f));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(-1.2420140846e-1f));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.4249322787e-1f));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(-1.6668057665e-1f));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(2.0000714765e-1f));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(-2.4999993993e-1f));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(3.3333331174e-1f));
    y = _mm256_mul_ps(y, x);
    y = _mm256_mul_ps(y, z);

    y = _mm256_fmadd_ps(e, _mm256_set1_ps(-2.12194440e-4f), y);
    y = _mm256_fnmadd_ps(half, z, y);
    x = _mm256_add_ps(x, y);
    x = _mm256_fmadd_ps(e, _mm256_set1_ps(0.693359375f), x);
    return x;
}

void
sinCos2PiPs(__m256 u, __m256 &s, __m256 &c)
{
    // theta = 2*pi*u = (pi/2)*k + phi with k = round(4u) and
    // phi in [-pi/4, pi/4]; evaluate the Cephes sin/cos kernels on phi
    // and rotate by quadrant k mod 4.
    const __m256 four = _mm256_set1_ps(4.0f);
    const __m256 t = _mm256_mul_ps(u, four);
    const __m256 kf = _mm256_round_ps(
        t, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    const __m256i k = _mm256_cvtps_epi32(kf);

    // phi = (t - k) * (pi/2), split the constant for extra precision
    const __m256 r = _mm256_sub_ps(t, kf);
    const __m256 pio2_hi = _mm256_set1_ps(1.5707963267948966f);
    const __m256 phi = _mm256_mul_ps(r, pio2_hi);

    const __m256 phi2 = _mm256_mul_ps(phi, phi);

    // sin kernel on [-pi/4, pi/4]
    __m256 sp = _mm256_set1_ps(-1.9515295891e-4f);
    sp = _mm256_fmadd_ps(sp, phi2, _mm256_set1_ps(8.3321608736e-3f));
    sp = _mm256_fmadd_ps(sp, phi2, _mm256_set1_ps(-1.6666654611e-1f));
    __m256 sin_phi = _mm256_fmadd_ps(_mm256_mul_ps(sp, phi2), phi, phi);

    // cos kernel on [-pi/4, pi/4]
    __m256 cp = _mm256_set1_ps(2.443315711809948e-5f);
    cp = _mm256_fmadd_ps(cp, phi2, _mm256_set1_ps(-1.388731625493765e-3f));
    cp = _mm256_fmadd_ps(cp, phi2, _mm256_set1_ps(4.166664568298827e-2f));
    __m256 cos_phi = _mm256_mul_ps(cp, _mm256_mul_ps(phi2, phi2));
    cos_phi = _mm256_fnmadd_ps(_mm256_set1_ps(0.5f), phi2, cos_phi);
    cos_phi = _mm256_add_ps(cos_phi, _mm256_set1_ps(1.0f));

    // quadrant selection: q = k & 3
    const __m256i q = _mm256_and_si256(k, _mm256_set1_epi32(3));
    const __m256i q1 = _mm256_cmpeq_epi32(q, _mm256_set1_epi32(1));
    const __m256i q2 = _mm256_cmpeq_epi32(q, _mm256_set1_epi32(2));
    const __m256i q3 = _mm256_cmpeq_epi32(q, _mm256_set1_epi32(3));
    const __m256 swap =
        _mm256_castsi256_ps(_mm256_or_si256(q1, q3)); // use cofunction
    const __m256 sin_neg =
        _mm256_castsi256_ps(_mm256_or_si256(q2, q3)); // sin sign flip
    const __m256 cos_neg =
        _mm256_castsi256_ps(_mm256_or_si256(q1, q2)); // cos sign flip

    __m256 sin_base = _mm256_blendv_ps(sin_phi, cos_phi, swap);
    __m256 cos_base = _mm256_blendv_ps(cos_phi, sin_phi, swap);

    const __m256 signbit = _mm256_set1_ps(-0.0f);
    sin_base = _mm256_xor_ps(sin_base, _mm256_and_ps(sin_neg, signbit));
    cos_base = _mm256_xor_ps(cos_base, _mm256_and_ps(cos_neg, signbit));

    s = sin_base;
    c = cos_base;
}

} // namespace avxm
} // namespace lazydp

#endif // __AVX2__
