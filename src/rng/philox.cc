#include "rng/philox.h"

namespace lazydp {

namespace {

constexpr std::uint32_t kPhiloxM0 = 0xD2511F53u;
constexpr std::uint32_t kPhiloxM1 = 0xCD9E8D57u;
constexpr std::uint32_t kPhiloxW0 = 0x9E3779B9u; // golden ratio
constexpr std::uint32_t kPhiloxW1 = 0xBB67AE85u; // sqrt(3) - 1

inline void
mulhilo(std::uint32_t a, std::uint32_t b, std::uint32_t &hi,
        std::uint32_t &lo)
{
    const std::uint64_t p =
        static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b);
    hi = static_cast<std::uint32_t>(p >> 32);
    lo = static_cast<std::uint32_t>(p);
}

} // namespace

Philox4x32::Block
Philox4x32::block(std::uint64_t ctr_hi, std::uint64_t ctr_lo) const
{
    std::uint32_t c0 = static_cast<std::uint32_t>(ctr_lo);
    std::uint32_t c1 = static_cast<std::uint32_t>(ctr_lo >> 32);
    std::uint32_t c2 = static_cast<std::uint32_t>(ctr_hi);
    std::uint32_t c3 = static_cast<std::uint32_t>(ctr_hi >> 32);
    std::uint32_t k0 = key0_;
    std::uint32_t k1 = key1_;

    for (int round = 0; round < 10; ++round) {
        std::uint32_t hi0, lo0, hi1, lo1;
        mulhilo(kPhiloxM0, c0, hi0, lo0);
        mulhilo(kPhiloxM1, c2, hi1, lo1);
        const std::uint32_t n0 = hi1 ^ c1 ^ k0;
        const std::uint32_t n1 = lo1;
        const std::uint32_t n2 = hi0 ^ c3 ^ k1;
        const std::uint32_t n3 = lo0;
        c0 = n0;
        c1 = n1;
        c2 = n2;
        c3 = n3;
        k0 += kPhiloxW0;
        k1 += kPhiloxW1;
    }
    return {c0, c1, c2, c3};
}

} // namespace lazydp
