/**
 * @file
 * Keyed per-(iteration, table, row) Gaussian noise streams.
 *
 * Every DP algorithm in this repository draws its embedding-table noise
 * through this provider, which keys Philox counters by logical identity
 * rather than draw order. Consequences:
 *
 *  - Eager DP-SGD(B/R/F) and LazyDP-without-ANS consume *the same* noise
 *    values for the same (iteration, table, row), no matter when or in
 *    what order they apply them. The LazyDP == DP-SGD equivalence of
 *    Section 5.2.1 therefore holds exactly (up to FP summation order)
 *    and is asserted by the integration tests.
 *
 *  - Aggregated noise sampling (ANS, Section 5.2.2) draws from a
 *    domain-separated counter range so a single N(0, k*sigma^2) draw
 *    never reuses randomness from the per-iteration streams.
 *
 *  - The provider is stateless after construction (counter-keyed
 *    Philox, no internal cursor), so every method is safe to call
 *    concurrently from any thread. The pipelined Trainer exploits
 *    this: prepare(i+1) samples next-iteration noise on the async lane
 *    while apply(i) draws MLP noise on the pool, and both read the
 *    same provider.
 */

#ifndef LAZYDP_RNG_NOISE_PROVIDER_H
#define LAZYDP_RNG_NOISE_PROVIDER_H

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/thread_pool.h"
#include "rng/gaussian.h"
#include "rng/philox.h"

namespace lazydp {

/** Keyed Gaussian noise source for embedding-table DP updates. */
class NoiseProvider
{
  public:
    /** Maximum embedding dimension supported by the counter layout. */
    static constexpr std::size_t kMaxDim = 1u << 14;

    /** Maximum number of embedding tables. */
    static constexpr std::uint32_t kMaxTables = 1u << 8;

    /**
     * @param seed global privacy-noise seed
     * @param kernel Box-Muller implementation selection
     */
    explicit NoiseProvider(std::uint64_t seed,
                           GaussianKernel kernel = GaussianKernel::Auto);

    /**
     * dst[j] op= scale * z_j where z ~ N(0, sigma^2) keyed by
     * (@p iter, @p table, @p row).
     *
     * @param accumulate when true, accumulates into dst; else overwrites
     */
    void rowNoise(std::uint64_t iter, std::uint32_t table,
                  std::uint64_t row, float sigma, float scale, float *dst,
                  std::size_t dim, bool accumulate = true) const;

    /**
     * Pool-parallel rowNoise: identical output (bit-for-bit; the fill
     * is sharded on Philox block boundaries), wall time divided by
     * @p exec. Worth it for dims large enough to amortize dispatch --
     * the single-pseudo-row MLP tensors of addDenseParamNoise.
     */
    void rowNoiseParallel(std::uint64_t iter, std::uint32_t table,
                          std::uint64_t row, float sigma, float scale,
                          float *dst, std::size_t dim, bool accumulate,
                          ExecContext &exec) const;

    /**
     * Batched keyed fill: for each i, dst + i*dim receives the
     * (@p iter, @p table, rows[i]) stream -- exactly the values
     * rowNoise would produce row by row, but sharded across @p exec.
     * Rows must be unique when the destination rows alias per-row
     * output (they are after coalescing), since shards write
     * concurrently.
     */
    void rowNoiseBatch(std::uint64_t iter, std::uint32_t table,
                       std::span<const std::uint32_t> rows, float sigma,
                       float scale, float *dst, std::size_t dim,
                       bool accumulate = true,
                       ExecContext &exec = ExecContext::serial()) const;

    /**
     * Accumulate the per-iteration noises of iterations
     * [@p iter_from, @p iter_to] one by one (the LazyDP *without ANS*
     * path: k separate Box-Muller samplings).
     */
    void accumulateRowNoise(std::uint64_t iter_from, std::uint64_t iter_to,
                            std::uint32_t table, std::uint64_t row,
                            float sigma, float scale, float *dst,
                            std::size_t dim) const;

    /**
     * Accumulate a single aggregated draw z ~ N(0, k*sigma^2) with
     * k = iter_to - iter_from + 1 (the ANS path, Theorem 5.1). Keyed by
     * (@p iter_to, table, row) in a separate counter domain.
     */
    void aggregatedRowNoise(std::uint64_t iter_from, std::uint64_t iter_to,
                            std::uint32_t table, std::uint64_t row,
                            float sigma, float scale, float *dst,
                            std::size_t dim) const;

    /**
     * Geometrically weighted noise sum for deferred *weight decay*
     * (LazyDP extension; not in the paper): accumulates
     *   sum_{j=iter_from}^{iter_to} alpha^(iter_to - j) * z_j
     * with z_j the per-iteration keyed draws -- exactly the noise an
     * eager engine with multiplicative decay alpha per step would have
     * woven into the weights.
     */
    void geometricRowNoise(std::uint64_t iter_from, std::uint64_t iter_to,
                           std::uint32_t table, std::uint64_t row,
                           float alpha, float sigma, float scale,
                           float *dst, std::size_t dim) const;

    /**
     * Single-draw equivalent of geometricRowNoise (ANS + decay):
     * z ~ N(0, sigma^2 * sum_{m=0}^{k-1} alpha^(2m)). Domain-separated
     * like aggregatedRowNoise.
     */
    void aggregatedGeometricRowNoise(std::uint64_t iter_from,
                                     std::uint64_t iter_to,
                                     std::uint32_t table,
                                     std::uint64_t row, float alpha,
                                     float sigma, float scale, float *dst,
                                     std::size_t dim) const;

    /** @return kernel in use (Auto resolved). */
    GaussianKernel kernel() const { return kernel_; }

    /** @return the seed the provider was constructed with. */
    std::uint64_t seed() const { return philox_.seed(); }

  private:
    /** Compose the 128-bit counter prefix for a keyed row draw. */
    static void composeCounter(std::uint32_t domain, std::uint64_t iter,
                               std::uint32_t table, std::uint64_t row,
                               std::uint64_t &ctr_hi, std::uint64_t &lo_base);

    Philox4x32 philox_;
    GaussianKernel kernel_;
};

} // namespace lazydp

#endif // LAZYDP_RNG_NOISE_PROVIDER_H
