#include "dp/dp_engine_base.h"

#include "common/macros.h"
#include "tensor/simd_kernels.h"

namespace lazydp {

DpEngineBase::DpEngineBase(DlrmModel &model, const TrainHyper &hyper)
    : model_(model), hyper_(hyper), noise_(hyper.noiseSeed, hyper.kernel)
{
    sparseGrads_.resize(model.config().numTables);
    LAZYDP_ASSERT(model.config().numTables +
                          model.bottomMlp().layers().size() +
                          model.topMlp().layers().size() <
                      NoiseProvider::kMaxTables,
                  "too many tables+layers for the noise counter layout");
}

std::uint32_t
DpEngineBase::mlpPseudoTable(std::size_t mlp_index) const
{
    // Embedding tables occupy ids [0, numTables); MLP layers follow.
    return static_cast<std::uint32_t>(model_.config().numTables +
                                      mlp_index);
}

double
DpEngineBase::forwardAndLoss(const MiniBatch &cur, ExecContext &exec,
                             StageTimer &timer)
{
    timer.start(Stage::Forward);
    model_.forward(cur, logits_, exec);
    timer.stop();

    timer.start(Stage::Else);
    const double loss = BceWithLogitsLoss::forward(logits_, cur.labels);
    if (dLogits_.rows() != cur.batchSize || dLogits_.cols() != 1)
        dLogits_.resize(cur.batchSize, 1);
    BceWithLogitsLoss::backwardPerExample(logits_, cur.labels, dLogits_);
    timer.stop();
    return loss;
}

void
DpEngineBase::noisyMlpUpdate(std::uint64_t iter, std::size_t batch,
                             ExecContext &exec, StageTimer &timer)
{
    const float sigma = noiseStddev();
    const float step = hyper_.lr / normDenominator(batch);

    std::size_t mlp_index = 0;
    auto update_mlp = [&](Mlp &mlp) {
        for (auto &layer : mlp.layers()) {
            timer.start(Stage::NoiseSampling);
            addDenseParamNoise(noise_, iter, mlpPseudoTable(mlp_index),
                               sigma, 1.0f, layer.weightGrad().data(),
                               layer.weightGrad().size(), 0, exec);
            // biases share the layer's pseudo-table in a disjoint
            // row range
            addDenseParamNoise(noise_, iter, mlpPseudoTable(mlp_index),
                               sigma, 1.0f, layer.biasGrad().data(),
                               layer.biasGrad().size(),
                               /*row_offset=*/1ull << 40, exec);
            timer.stop();

            timer.start(Stage::NoisyGradUpdate);
            layer.apply(step, decayAlpha());
            timer.stop();
            ++mlp_index;
        }
    };
    update_mlp(model_.bottomMlp());
    update_mlp(model_.topMlp());
}

void
DpEngineBase::denseNoisyTableUpdate(std::uint64_t iter, std::uint32_t table,
                                    const SparseGrad &grad,
                                    std::size_t batch, ExecContext &exec,
                                    StageTimer &timer)
{
    EmbeddingTable &tbl = model_.tables()[table];
    if (denseScratch_.rows() != tbl.rows() ||
        denseScratch_.cols() != tbl.dim()) {
        denseScratch_.resize(tbl.rows(), tbl.dim());
    }

    // (1) compute-bound: one Gaussian per element of the entire table
    timer.start(Stage::NoiseSampling);
    fillDenseTableNoise(noise_, iter, table, noiseStddev(), denseScratch_,
                        exec);
    timer.stop();

    // (2) merge the sparse clipped gradient into the dense tensor
    timer.start(Stage::NoisyGradGen);
    addSparseIntoDense(grad, denseScratch_);
    timer.stop();

    // (3) memory-bound: stream the whole table through the optimizer
    timer.start(Stage::NoisyGradUpdate);
    streamingTableUpdate(tbl.weights(), denseScratch_,
                         hyper_.lr / normDenominator(batch),
                         decayAlpha(), exec);
    timer.stop();
}

} // namespace lazydp
