#include "dp/dp_engine_base.h"

#include "common/macros.h"
#include "tensor/simd_kernels.h"

namespace lazydp {

DpEngineBase::DpEngineBase(DlrmModel &model, const TrainHyper &hyper)
    : model_(model), hyper_(hyper), noise_(hyper.noiseSeed, hyper.kernel)
{
    sparseGrads_.resize(model.config().numTables);
    LAZYDP_ASSERT(model.config().numTables +
                          model.bottomMlp().layers().size() +
                          model.topMlp().layers().size() <
                      NoiseProvider::kMaxTables,
                  "too many tables+layers for the noise counter layout");
}

std::uint32_t
DpEngineBase::mlpPseudoTable(std::size_t mlp_index) const
{
    // Embedding tables occupy ids [0, numTables); MLP layers follow.
    return static_cast<std::uint32_t>(model_.config().numTables +
                                      mlp_index);
}

void
DpEngineBase::shardForwardLoss(GradShard &s, ExecContext &exec) const
{
    s.timer.start(Stage::Forward);
    model_.forward(s.batch, s.logits, s.ws, exec);
    s.timer.stop();

    s.timer.start(Stage::Else);
    s.lossSum = BceWithLogitsLoss::forwardSum(s.logits, s.batch.labels);
    if (s.dLogits.rows() != s.batch.batchSize || s.dLogits.cols() != 1)
        s.dLogits.resize(s.batch.batchSize, 1);
    BceWithLogitsLoss::backwardPerExample(s.logits, s.batch.labels,
                                          s.dLogits);
    s.timer.stop();
}

void
DpEngineBase::produceShardGrads(std::uint64_t iter, GradShard &s,
                                ExecContext &exec)
{
    // Ghost-clipping flow (DP-SGD(F), EANA, LazyDP): norm pass without
    // parameter gradients, then a clip-reweighted per-batch backward.
    (void)iter;
    shardForwardLoss(s, exec);

    s.timer.start(Stage::BackwardPerExample);
    s.normSq.assign(s.batch.batchSize, 0.0);
    model_.backward(s.dLogits, &s.normSq, /*skip_param_grads=*/true,
                    s.ws, nullptr, exec);
    model_.accumulateEmbeddingGhostNormSq(s.batch, s.normSq, s.ws);
    clipScales(s.normSq, hyper_.clipNorm, s.scales);
    s.timer.stop();

    s.timer.start(Stage::BackwardPerBatch);
    scaleRows(s.dLogits, s.scales);
    model_.backward(s.dLogits, nullptr, false, s.ws, &s.sums, exec);
    s.timer.stop();
}

double
DpEngineBase::shardedBackward(std::uint64_t iter, const MiniBatch &cur,
                              ExecContext &exec, StageTimer &timer)
{
    std::array<LotShardState *, kLotShards> view;
    for (std::size_t s = 0; s < kLotShards; ++s)
        view[s] = &shards_[s];
    return shardedLotBackward(
        model_, cur, view, lotEmbGrad_, exec, timer,
        [&](std::size_t s, ExecContext &rexec) {
            produceShardGrads(iter, shards_[s], rexec);
        });
}

void
DpEngineBase::noisyMlpUpdate(std::uint64_t iter, std::size_t batch,
                             ExecContext &exec, StageTimer &timer)
{
    const float sigma = noiseStddev();
    const float step = hyper_.lr / normDenominator(batch);

    std::size_t mlp_index = 0;
    auto update_mlp = [&](Mlp &mlp) {
        for (auto &layer : mlp.layers()) {
            timer.start(Stage::NoiseSampling);
            addDenseParamNoise(noise_, iter, mlpPseudoTable(mlp_index),
                               sigma, 1.0f, layer.weightGrad().data(),
                               layer.weightGrad().size(), 0, exec);
            // biases share the layer's pseudo-table in a disjoint
            // row range
            addDenseParamNoise(noise_, iter, mlpPseudoTable(mlp_index),
                               sigma, 1.0f, layer.biasGrad().data(),
                               layer.biasGrad().size(),
                               /*row_offset=*/1ull << 40, exec);
            timer.stop();

            timer.start(Stage::NoisyGradUpdate);
            layer.apply(step, decayAlpha());
            timer.stop();
            ++mlp_index;
        }
    };
    update_mlp(model_.bottomMlp());
    update_mlp(model_.topMlp());
}

void
DpEngineBase::denseNoisyTableUpdate(std::uint64_t iter, std::uint32_t table,
                                    const SparseGrad &grad,
                                    std::size_t batch, ExecContext &exec,
                                    StageTimer &timer)
{
    EmbeddingTable &tbl = model_.tables()[table];
    if (denseScratch_.rows() != tbl.rows() ||
        denseScratch_.cols() != tbl.dim()) {
        denseScratch_.resize(tbl.rows(), tbl.dim());
    }

    // (1) compute-bound: one Gaussian per element of the entire table
    timer.start(Stage::NoiseSampling);
    fillDenseTableNoise(noise_, iter, table, noiseStddev(), denseScratch_,
                        exec);
    timer.stop();

    // (2) merge the sparse clipped gradient into the dense tensor
    timer.start(Stage::NoisyGradGen);
    addSparseIntoDense(grad, denseScratch_);
    timer.stop();

    // (3) memory-bound: stream the whole table through the optimizer
    timer.start(Stage::NoisyGradUpdate);
    streamingTableUpdate(tbl, denseScratch_,
                         hyper_.lr / normDenominator(batch),
                         decayAlpha(), exec);
    timer.stop();
}

} // namespace lazydp
