#include "dp/dp_sgd_b.h"

#include "tensor/simd_kernels.h"

namespace lazydp {

void
DpSgdB::produceShardGrads(std::uint64_t iter, GradShard &s,
                          ExecContext &exec)
{
    (void)iter;
    const std::size_t n = s.batch.batchSize;
    shardForwardLoss(s, exec);

    // Per-example gradient derivation: materialize every MLP layer's
    // per-example weight gradients (the memory-capacity bottleneck of
    // Section 2.5) and derive per-example norms from the materialized
    // tensors plus the per-example embedding gradients.
    s.timer.start(Stage::BackwardPerExample);
    model_.backwardPerExample(s.dLogits, s.topPe, s.bottomPe, s.ws, exec);

    s.normSq.assign(n, 0.0);
    auto add_norms = [&](const PerExampleGrads &grads) {
        for (const auto &w : grads.w) {
            parallelFor(exec, n, [&](std::size_t lo, std::size_t hi) {
                for (std::size_t e = lo; e < hi; ++e) {
                    s.normSq[e] += simd::squaredNorm(
                        w.data() + e * w.cols(), w.cols());
                }
            });
        }
        for (const auto &b : grads.b) {
            parallelFor(exec, n, [&](std::size_t lo, std::size_t hi) {
                for (std::size_t e = lo; e < hi; ++e) {
                    s.normSq[e] += simd::squaredNorm(
                        b.data() + e * b.cols(), b.cols());
                }
            });
        }
    };
    add_norms(s.topPe);
    add_norms(s.bottomPe);
    model_.accumulateEmbeddingGhostNormSq(s.batch, s.normSq, s.ws);

    // Clip + reduce the materialized per-example grads into the shard's
    // gradient sums: w_sum = sum_e scale_e * dW_e.
    clipScales(s.normSq, hyper_.clipNorm, s.scales);

    s.sums.top.ensureShape(model_.topMlp());
    s.sums.bottom.ensureShape(model_.bottomMlp());
    auto reduce = [&](const Mlp &mlp, const PerExampleGrads &grads,
                      MlpGradSums &sums) {
        const auto &layers = mlp.layers();
        for (std::size_t li = 0; li < layers.size(); ++li) {
            reduceScaledRows(grads.w[li], s.scales, sums.w[li], exec);
            reduceScaledRows(grads.b[li], s.scales, sums.b[li], exec);
        }
    };
    reduce(model_.topMlp(), s.topPe, s.sums.top);
    reduce(model_.bottomMlp(), s.bottomPe, s.sums.bottom);

    // Embedding: clip by scaling each example's pooled gradient row.
    for (std::size_t t = 0; t < model_.config().numTables; ++t)
        scaleRows(s.ws.dEmbOut[t], s.scales);
    s.timer.stop();
}

double
DpSgdB::apply(std::uint64_t iter, const MiniBatch &cur,
              PreparedStep &prepared, ExecContext &exec, StageTimer &timer)
{
    (void)prepared;
    const std::size_t batch = cur.batchSize;
    const double loss = shardedBackward(iter, cur, exec, timer);

    timer.start(Stage::GradCoalesce);
    for (std::size_t t = 0; t < model_.config().numTables; ++t)
        model_.embeddingBackwardFrom(cur, t, lotEmbGrad_[t],
                                     sparseGrads_[t]);
    timer.stop();

    // Model update: dense noisy update of every table + noisy MLP step.
    for (std::size_t t = 0; t < model_.config().numTables; ++t) {
        denseNoisyTableUpdate(iter, static_cast<std::uint32_t>(t),
                              sparseGrads_[t], batch, exec, timer);
    }
    noisyMlpUpdate(iter, batch, exec, timer);
    return loss;
}

std::uint64_t
DpSgdB::perExampleBytes() const
{
    std::uint64_t total = 0;
    for (const auto &s : shards_)
        total += s.topPe.bytes() + s.bottomPe.bytes();
    return total;
}

} // namespace lazydp
