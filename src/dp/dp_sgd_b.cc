#include "dp/dp_sgd_b.h"

#include "tensor/simd_kernels.h"

namespace lazydp {

double
DpSgdB::apply(std::uint64_t iter, const MiniBatch &cur,
              PreparedStep &prepared, ExecContext &exec, StageTimer &timer)
{
    (void)prepared;
    const std::size_t batch = cur.batchSize;
    const double loss = forwardAndLoss(cur, exec, timer);

    // Per-example gradient derivation: materialize every MLP layer's
    // per-example weight gradients (the memory-capacity bottleneck of
    // Section 2.5) and derive per-example norms from the materialized
    // tensors plus the per-example embedding gradients.
    timer.start(Stage::BackwardPerExample);
    model_.backwardPerExample(dLogits_, topGrads_, bottomGrads_, exec);

    normSq_.assign(batch, 0.0);
    auto add_norms = [&](const PerExampleGrads &grads) {
        for (const auto &w : grads.w) {
            parallelFor(exec, batch, [&](std::size_t lo, std::size_t hi) {
                for (std::size_t e = lo; e < hi; ++e) {
                    normSq_[e] += simd::squaredNorm(
                        w.data() + e * w.cols(), w.cols());
                }
            });
        }
        for (const auto &b : grads.b) {
            parallelFor(exec, batch, [&](std::size_t lo, std::size_t hi) {
                for (std::size_t e = lo; e < hi; ++e) {
                    normSq_[e] += simd::squaredNorm(
                        b.data() + e * b.cols(), b.cols());
                }
            });
        }
    };
    add_norms(topGrads_);
    add_norms(bottomGrads_);
    model_.accumulateEmbeddingGhostNormSq(cur, normSq_);

    // Clip + reduce the materialized per-example grads into the batch
    // gradients: w_grad = sum_e scale_e * dW_e.
    clipScales(normSq_, hyper_.clipNorm, scales_);

    auto reduce = [&](Mlp &mlp, const PerExampleGrads &grads) {
        auto &layers = mlp.layers();
        for (std::size_t li = 0; li < layers.size(); ++li) {
            reduceScaledRows(grads.w[li], scales_,
                             layers[li].weightGrad(), exec);
            reduceScaledRows(grads.b[li], scales_,
                             layers[li].biasGrad(), exec);
        }
    };
    reduce(model_.topMlp(), topGrads_);
    reduce(model_.bottomMlp(), bottomGrads_);

    // Embedding: clip by scaling each example's pooled gradient row.
    for (std::size_t t = 0; t < model_.config().numTables; ++t)
        scaleRows(model_.embOutGradMutable(t), scales_);
    timer.stop();

    timer.start(Stage::GradCoalesce);
    for (std::size_t t = 0; t < model_.config().numTables; ++t)
        model_.embeddingBackward(cur, t, sparseGrads_[t]);
    timer.stop();

    // Model update: dense noisy update of every table + noisy MLP step.
    for (std::size_t t = 0; t < model_.config().numTables; ++t) {
        denseNoisyTableUpdate(iter, static_cast<std::uint32_t>(t),
                              sparseGrads_[t], batch, exec, timer);
    }
    noisyMlpUpdate(iter, batch, exec, timer);
    return loss;
}

} // namespace lazydp
