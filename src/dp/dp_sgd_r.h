/**
 * @file
 * DP-SGD(R): reweighted DP-SGD (Lee & Kifer, PoPETs'21).
 *
 * Pass 1 materializes per-example gradients only transiently (layer by
 * layer, into a reused scratch buffer) to obtain per-example norms --
 * trading recomputation for the B-times memory of DP-SGD(B). Pass 2
 * reweights each example's loss gradient by its clip factor and runs a
 * standard per-batch backward, which yields exactly
 * sum_e clip_C(g_e) for every parameter. Mathematically identical to
 * DP-SGD(B) (Section 2.5 of the paper).
 */

#ifndef LAZYDP_DP_DP_SGD_R_H
#define LAZYDP_DP_DP_SGD_R_H

#include "dp/dp_engine_base.h"

namespace lazydp {

/** Reweighted two-pass DP-SGD. */
class DpSgdR : public DpEngineBase
{
  public:
    DpSgdR(DlrmModel &model, const TrainHyper &hyper)
        : DpEngineBase(model, hyper)
    {
    }

    std::string name() const override { return "DP-SGD(R)"; }

    /** Eager engine: no lookahead work, the default prepare applies. */
    double apply(std::uint64_t iter, const MiniBatch &cur,
                 PreparedStep &prepared, ExecContext &exec,
                 StageTimer &timer) override;

  protected:
    /** Shard flow: transient-materialization norm pass, then the
     *  reweighted per-batch backward. */
    void produceShardGrads(std::uint64_t iter, GradShard &s,
                           ExecContext &exec) override;
};

} // namespace lazydp

#endif // LAZYDP_DP_DP_SGD_R_H
