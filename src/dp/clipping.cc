#include "dp/clipping.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "tensor/simd_kernels.h"

namespace lazydp {

void
clipScales(const std::vector<double> &norm_sq, float clip_norm,
           std::vector<float> &out)
{
    LAZYDP_ASSERT(clip_norm > 0.0f, "clip norm must be positive");
    out.resize(norm_sq.size());
    const double c = clip_norm;
    for (std::size_t e = 0; e < norm_sq.size(); ++e) {
        const double norm = std::sqrt(norm_sq[e]);
        out[e] = norm > c ? static_cast<float>(c / norm) : 1.0f;
    }
}

void
scaleRows(Tensor &t, const std::vector<float> &scales)
{
    LAZYDP_ASSERT(t.rows() == scales.size(), "scale count != rows");
    for (std::size_t r = 0; r < t.rows(); ++r)
        simd::scale(t.data() + r * t.cols(), t.cols(), scales[r]);
}

void
reduceScaledRows(const Tensor &rows, const std::vector<float> &scales,
                 Tensor &out, ExecContext &exec)
{
    const std::size_t batch = rows.rows();
    const std::size_t params = rows.cols();
    LAZYDP_ASSERT(scales.size() == batch, "scale count != rows");
    LAZYDP_ASSERT(out.size() == params, "output size != param count");
    out.zero();
    // Fixed 16K-parameter shards: each output element's sum runs over e
    // in order inside one shard, so the reduction is deterministic at
    // any thread count.
    parallelForShards(
        exec, params, 1u << 14,
        [&](std::size_t, std::size_t lo, std::size_t hi) {
            const std::size_t len = hi - lo;
            float *dst = out.data() + lo;
            for (std::size_t e = 0; e < batch; ++e) {
                simd::axpy(dst, rows.data() + e * params + lo, len,
                           scales[e]);
            }
        });
}

} // namespace lazydp
