#include "dp/eana.h"

namespace lazydp {

double
EanaAlgorithm::step(std::uint64_t iter, const MiniBatch &cur,
                    const MiniBatch *next, ExecContext &exec,
                    StageTimer &timer)
{
    (void)next;
    const std::size_t batch = cur.batchSize;
    const double loss = forwardAndLoss(cur, exec, timer);

    // Clipping machinery identical to DP-SGD(F).
    timer.start(Stage::BackwardPerExample);
    normSq_.assign(batch, 0.0);
    model_.backward(dLogits_, &normSq_, /*skip_param_grads=*/true, exec);
    model_.accumulateEmbeddingGhostNormSq(cur, normSq_);
    clipScales(normSq_, hyper_.clipNorm, scales_);
    timer.stop();

    timer.start(Stage::BackwardPerBatch);
    scaleRows(dLogits_, scales_);
    model_.backward(dLogits_, nullptr, false, exec);
    timer.stop();

    timer.start(Stage::GradCoalesce);
    for (std::size_t t = 0; t < model_.config().numTables; ++t)
        model_.embeddingBackward(cur, t, sparseGrads_[t]);
    timer.stop();

    // EANA's defining shortcut: noise ONLY on the accessed rows, so the
    // table update stays sparse.
    const float step_scale = hyper_.lr / normDenominator(batch);
    for (std::size_t t = 0; t < model_.config().numTables; ++t) {
        SparseGrad &grad = sparseGrads_[t];
        EmbeddingTable &tbl = model_.tables()[t];
        const std::size_t dim = tbl.dim();

        // Coalesced rows are unique, so the batched fill scatters into
        // disjoint value rows from every pool thread.
        timer.start(Stage::NoiseSampling);
        noise_.rowNoiseBatch(iter, static_cast<std::uint32_t>(t),
                             grad.rows, noiseStddev(), 1.0f,
                             grad.values.data(), dim,
                             /*accumulate=*/true, exec);
        timer.stop();

        timer.start(Stage::NoisyGradUpdate);
        tbl.applySparse(grad, step_scale);
        timer.stop();
    }
    noisyMlpUpdate(iter, batch, exec, timer);
    return loss;
}

} // namespace lazydp
