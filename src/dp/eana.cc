#include "dp/eana.h"

#include "common/macros.h"
#include "nn/embedding.h"
#include "tensor/simd_kernels.h"

namespace lazydp {

void
EanaAlgorithm::prepare(std::uint64_t iter, const MiniBatch &cur,
                       const MiniBatch *next, PreparedStep &out_base,
                       ExecContext &exec, StageTimer &timer)
{
    (void)next; // EANA has no lookahead; its prepared work keys on cur
    auto &out = static_cast<EanaPrepared &>(out_base);
    out.iter = iter;
    out.tables.resize(model_.config().numTables);

    const float sigma = noiseStddev();
    for (std::size_t t = 0; t < out.tables.size(); ++t) {
        EanaPrepared::TableState &pt = out.tables[t];
        const std::size_t dim = model_.tables()[t].dim();

        timer.start(Stage::GradCoalesce);
        uniqueRows(cur.tableIndices(t), pt.rows);
        timer.stop();

        // Keyed per-row draws: identical values whether sampled here
        // (possibly on the pipeline thread) or inline in the old
        // accumulate-into-gradient path.
        timer.start(Stage::NoiseSampling);
        if (pt.noise.rows() < pt.rows.size() || pt.noise.cols() != dim)
            pt.noise.resize(std::max<std::size_t>(pt.rows.size(), 1),
                            dim);
        noise_.rowNoiseBatch(iter, static_cast<std::uint32_t>(t),
                             pt.rows, sigma, 1.0f, pt.noise.data(), dim,
                             /*accumulate=*/false, exec);
        timer.stop();
    }
}

bool
EanaAlgorithm::enableDirtyTracking(std::size_t page_rows)
{
    if (dirty_ == nullptr || dirty_->pageRows() != page_rows)
        dirty_ = DirtyRowTracker::forModel(model_.config(), page_rows);
    return true;
}

void
EanaAlgorithm::warmTier(const MiniBatch &next, const PreparedStep *prep,
                        ThreadPool *pool)
{
    (void)prep; // prepared rows ARE the batch's dedup -- use the batch
    if (!model_.tiered() || pool == nullptr)
        return;
    for (std::size_t t = 0; t < model_.config().numTables; ++t) {
        const auto idx = next.tableIndices(t);
        model_.tables()[t].warmRowsAsync(
            pool, std::vector<std::uint32_t>(idx.begin(), idx.end()));
    }
}

double
EanaAlgorithm::apply(std::uint64_t iter, const MiniBatch &cur,
                     PreparedStep &prepared, ExecContext &exec,
                     StageTimer &timer)
{
    auto &prep = static_cast<EanaPrepared &>(prepared);
    LAZYDP_ASSERT(prep.iter == iter, "prepared state is for another iter");
    const std::size_t batch = cur.batchSize;

    // Lot-sharded clipping machinery identical to DP-SGD(F).
    const double loss = shardedBackward(iter, cur, exec, timer);

    timer.start(Stage::GradCoalesce);
    for (std::size_t t = 0; t < model_.config().numTables; ++t)
        model_.embeddingBackwardFrom(cur, t, lotEmbGrad_[t],
                                     sparseGrads_[t]);
    timer.stop();

    // EANA's defining shortcut: noise ONLY on the accessed rows, so the
    // table update stays sparse. The noise was sampled in prepare();
    // coalesced grad rows and prepared rows are both the sorted unique
    // indices of cur, so the tensors are row-aligned.
    const float step_scale = hyper_.lr / normDenominator(batch);
    for (std::size_t t = 0; t < model_.config().numTables; ++t) {
        SparseGrad &grad = sparseGrads_[t];
        EanaPrepared::TableState &pt = prep.tables[t];
        LAZYDP_ASSERT(grad.rows.size() == pt.rows.size(),
                      "prepared noise rows diverge from gradient rows");
        EmbeddingTable &tbl = model_.tables()[t];
        const std::size_t dim = tbl.dim();

        timer.start(Stage::NoisyGradGen);
        parallelForShards(
            exec, grad.rows.size(), 64,
            [&](std::size_t, std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i) {
                    float *dst = grad.values.data() + i * dim;
                    simd::add(dst, dst, pt.noise.data() + i * dim, dim);
                }
            });
        timer.stop();

        timer.start(Stage::NoisyGradUpdate);
        tbl.applySparse(grad, step_scale);
        if (dirty_ != nullptr)
            dirty_->markRows(t, grad.rows);
        timer.stop();
    }
    noisyMlpUpdate(iter, batch, exec, timer);
    return loss;
}

} // namespace lazydp
