/**
 * @file
 * EANA (Ning et al., RecSys'22): the prior high-performance private
 * RecSys trainer the paper compares against in Section 7.4.
 *
 * EANA modifies DP-SGD to add noise only to the embedding rows
 * *accessed in the current iteration*, making the table update sparse
 * and fast -- but weakening privacy: a row that is never accessed is
 * never noised, revealing that no training example contained that
 * feature, and the protection degrades further under skewed access
 * patterns. LazyDP matches EANA's performance shape while keeping the
 * full DP-SGD guarantee.
 */

#ifndef LAZYDP_DP_EANA_H
#define LAZYDP_DP_EANA_H

#include <vector>

#include "dp/dp_engine_base.h"
#include "tensor/tensor.h"

namespace lazydp {

/**
 * EANA's prepared state: per table, the sorted unique rows of the
 * current batch and their keyed noise -- both derivable from the batch
 * indices alone, so the whole sampling stage pipelines ahead of the
 * weight-dependent compute.
 */
class EanaPrepared : public PreparedStep
{
  public:
    struct TableState
    {
        std::vector<std::uint32_t> rows; //!< sorted unique accessed rows
        Tensor noise;                    //!< (rows x dim) keyed Gaussians
    };

    std::vector<TableState> tables;
};

/** EANA: noise on accessed rows only (weaker privacy, high speed). */
class EanaAlgorithm : public DpEngineBase
{
  public:
    EanaAlgorithm(DlrmModel &model, const TrainHyper &hyper)
        : DpEngineBase(model, hyper)
    {
        if (hyper.weightDecay != 0.0f)
            fatal("EANA does not implement weight decay (its sparse "
                  "update cannot decay unaccessed rows)");
    }

    std::string name() const override { return "EANA"; }

    std::unique_ptr<PreparedStep>
    makePrepared() const override
    {
        return std::make_unique<EanaPrepared>();
    }

    /**
     * Dedup the current batch's indices per table and sample the keyed
     * row noise (the coalesced row list equals what embeddingBackward
     * will produce in apply(), so the noise lands row-aligned with the
     * gradient).
     */
    void prepare(std::uint64_t iter, const MiniBatch &cur,
                 const MiniBatch *next, PreparedStep &out,
                 ExecContext &exec, StageTimer &timer) override;

    /** EANA's table update is sparse: the coalesced gradient rows are
     * exactly the rows each apply() mutates. */
    bool enableDirtyTracking(std::size_t page_rows) override;

    /** Warm the next batch's rows -- exactly the sparse update set of
     * its apply(). Tiered tables only; otherwise a no-op. */
    void warmTier(const MiniBatch &next, const PreparedStep *prep,
                  ThreadPool *pool) override;

    double apply(std::uint64_t iter, const MiniBatch &cur,
                 PreparedStep &prepared, ExecContext &exec,
                 StageTimer &timer) override;
};

} // namespace lazydp

#endif // LAZYDP_DP_EANA_H
