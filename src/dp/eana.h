/**
 * @file
 * EANA (Ning et al., RecSys'22): the prior high-performance private
 * RecSys trainer the paper compares against in Section 7.4.
 *
 * EANA modifies DP-SGD to add noise only to the embedding rows
 * *accessed in the current iteration*, making the table update sparse
 * and fast -- but weakening privacy: a row that is never accessed is
 * never noised, revealing that no training example contained that
 * feature, and the protection degrades further under skewed access
 * patterns. LazyDP matches EANA's performance shape while keeping the
 * full DP-SGD guarantee.
 */

#ifndef LAZYDP_DP_EANA_H
#define LAZYDP_DP_EANA_H

#include "dp/dp_engine_base.h"

namespace lazydp {

/** EANA: noise on accessed rows only (weaker privacy, high speed). */
class EanaAlgorithm : public DpEngineBase
{
  public:
    EanaAlgorithm(DlrmModel &model, const TrainHyper &hyper)
        : DpEngineBase(model, hyper)
    {
        if (hyper.weightDecay != 0.0f)
            fatal("EANA does not implement weight decay (its sparse "
                  "update cannot decay unaccessed rows)");
    }

    std::string name() const override { return "EANA"; }

    double step(std::uint64_t iter, const MiniBatch &cur,
                const MiniBatch *next, ExecContext &exec,
                StageTimer &timer) override;
};

} // namespace lazydp

#endif // LAZYDP_DP_EANA_H
