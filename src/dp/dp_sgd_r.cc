#include "dp/dp_sgd_r.h"

namespace lazydp {

void
DpSgdR::produceShardGrads(std::uint64_t iter, GradShard &s,
                          ExecContext &exec)
{
    (void)iter;
    shardForwardLoss(s, exec);

    // Pass 1: per-example norms via transient materialization.
    s.timer.start(Stage::BackwardPerExample);
    s.normSq.assign(s.batch.batchSize, 0.0);
    model_.backwardNormsOnly(s.dLogits, s.normSq, s.ws, exec);
    model_.accumulateEmbeddingGhostNormSq(s.batch, s.normSq, s.ws);
    clipScales(s.normSq, hyper_.clipNorm, s.scales);
    s.timer.stop();

    // Pass 2: reweighted per-batch backward. Scaling the loss-gradient
    // rows propagates the clip factors to every parameter gradient,
    // including the embedding tables.
    s.timer.start(Stage::BackwardPerBatch);
    scaleRows(s.dLogits, s.scales);
    model_.backward(s.dLogits, nullptr, false, s.ws, &s.sums, exec);
    s.timer.stop();
}

double
DpSgdR::apply(std::uint64_t iter, const MiniBatch &cur,
              PreparedStep &prepared, ExecContext &exec, StageTimer &timer)
{
    (void)prepared;
    const std::size_t batch = cur.batchSize;
    const double loss = shardedBackward(iter, cur, exec, timer);

    timer.start(Stage::GradCoalesce);
    for (std::size_t t = 0; t < model_.config().numTables; ++t)
        model_.embeddingBackwardFrom(cur, t, lotEmbGrad_[t],
                                     sparseGrads_[t]);
    timer.stop();

    for (std::size_t t = 0; t < model_.config().numTables; ++t) {
        denseNoisyTableUpdate(iter, static_cast<std::uint32_t>(t),
                              sparseGrads_[t], batch, exec, timer);
    }
    noisyMlpUpdate(iter, batch, exec, timer);
    return loss;
}

} // namespace lazydp
