#include "dp/accountant.h"

#include <cmath>
#include <limits>

#include "common/macros.h"

namespace lazydp {

namespace {

/** log(a + b) given log a and log b, stable. */
double
logAdd(double log_a, double log_b)
{
    if (log_a == -std::numeric_limits<double>::infinity())
        return log_b;
    if (log_b == -std::numeric_limits<double>::infinity())
        return log_a;
    const double hi = std::max(log_a, log_b);
    const double lo = std::min(log_a, log_b);
    return hi + std::log1p(std::exp(lo - hi));
}

/** log of binomial coefficient C(n, k). */
double
logBinom(int n, int k)
{
    return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) -
           std::lgamma(n - k + 1.0);
}

} // namespace

RdpAccountant::RdpAccountant(double noise_multiplier, double sampling_rate)
    : sigma_(noise_multiplier), q_(sampling_rate)
{
    LAZYDP_ASSERT(sigma_ > 0.0, "noise multiplier must be positive");
    LAZYDP_ASSERT(q_ > 0.0 && q_ <= 1.0, "sampling rate in (0, 1]");
}

double
RdpAccountant::rdpAtOrder(int alpha) const
{
    LAZYDP_ASSERT(alpha >= 2, "integer RDP orders start at 2");

    if (q_ >= 1.0) {
        // Plain Gaussian mechanism: RDP(alpha) = alpha / (2 sigma^2).
        return static_cast<double>(alpha) / (2.0 * sigma_ * sigma_);
    }

    // log E_{k~Binom(alpha, q)} [ exp(k(k-1) / (2 sigma^2)) ]
    // summed in log space:
    //   log sum_k [ C(alpha,k) q^k (1-q)^(alpha-k) e^{k(k-1)/(2s^2)} ]
    const double log_q = std::log(q_);
    const double log_1mq = std::log1p(-q_);
    double log_sum = -std::numeric_limits<double>::infinity();
    for (int k = 0; k <= alpha; ++k) {
        const double term =
            logBinom(alpha, k) + k * log_q + (alpha - k) * log_1mq +
            static_cast<double>(k) * (k - 1.0) / (2.0 * sigma_ * sigma_);
        log_sum = logAdd(log_sum, term);
    }
    return log_sum / (alpha - 1.0);
}

double
RdpAccountant::epsilon(double delta, int *best_order) const
{
    LAZYDP_ASSERT(delta > 0.0 && delta < 1.0, "delta in (0, 1)");
    double best = std::numeric_limits<double>::infinity();
    int best_a = 0;
    for (int alpha : defaultOrders()) {
        const double rdp = static_cast<double>(steps_) * rdpAtOrder(alpha);
        const double eps = rdp + std::log(1.0 / delta) / (alpha - 1.0);
        if (eps < best) {
            best = eps;
            best_a = alpha;
        }
    }
    if (best_order != nullptr)
        *best_order = best_a;
    return best;
}

const std::vector<int> &
RdpAccountant::defaultOrders()
{
    static const std::vector<int> orders = [] {
        std::vector<int> v;
        for (int a = 2; a <= 64; ++a)
            v.push_back(a);
        for (int a = 68; a <= 256; a += 4)
            v.push_back(a);
        for (int a = 272; a <= 1024; a += 16)
            v.push_back(a);
        return v;
    }();
    return orders;
}

} // namespace lazydp
