/**
 * @file
 * DP-SGD(B): the original Abadi et al. algorithm as implemented by
 * stock Opacus -- per-example weight gradients are fully materialized
 * for every MLP layer (batch-size-times the model's memory), clipped,
 * reduced, noised, and applied with a dense embedding-table update.
 *
 * This is the paper's baseline "DP-SGD(B)" series in Figures 3 and 5.
 */

#ifndef LAZYDP_DP_DP_SGD_B_H
#define LAZYDP_DP_DP_SGD_B_H

#include "dp/dp_engine_base.h"

namespace lazydp {

/** Memory-hungry original DP-SGD. */
class DpSgdB : public DpEngineBase
{
  public:
    DpSgdB(DlrmModel &model, const TrainHyper &hyper)
        : DpEngineBase(model, hyper)
    {
    }

    std::string name() const override { return "DP-SGD(B)"; }

    /** Eager engine: no lookahead work, the default prepare applies. */
    double apply(std::uint64_t iter, const MiniBatch &cur,
                 PreparedStep &prepared, ExecContext &exec,
                 StageTimer &timer) override;

    /**
     * @return bytes held by materialized per-example grads last step
     * (summed over the lot shards -- the total covers the same examples
     * the old whole-batch materialization did).
     */
    std::uint64_t perExampleBytes() const;

  protected:
    /** Shard flow: full per-example materialization + clip-reduce. */
    void produceShardGrads(std::uint64_t iter, GradShard &s,
                           ExecContext &exec) override;
};

} // namespace lazydp

#endif // LAZYDP_DP_DP_SGD_B_H
