#include "dp/noise_ops.h"

#include "common/macros.h"
#include "tensor/simd_kernels.h"

namespace lazydp {

void
fillDenseTableNoise(const NoiseProvider &np, std::uint64_t iter,
                    std::uint32_t table, float sigma, Tensor &noise)
{
    const std::size_t rows = noise.rows();
    const std::size_t dim = noise.cols();
    // Keyed streams make every row independent -- embarrassingly
    // parallel, exactly like the paper's optimized torch.normal().
#pragma omp parallel for schedule(static)
    for (std::size_t r = 0; r < rows; ++r) {
        np.rowNoise(iter, table, r, sigma, 1.0f, noise.data() + r * dim,
                    dim, /*accumulate=*/false);
    }
}

void
addSparseIntoDense(const SparseGrad &grad, Tensor &dense)
{
    const std::size_t dim = dense.cols();
    LAZYDP_ASSERT(grad.values.cols() == dim, "sparse/dense dim mismatch");
    for (std::size_t i = 0; i < grad.rows.size(); ++i) {
        simd::add(dense.data() + grad.rows[i] * dim,
                  dense.data() + grad.rows[i] * dim,
                  grad.values.data() + i * dim, dim);
    }
}

void
streamingTableUpdate(Tensor &weights, const Tensor &update, float scale,
                     float decay)
{
    LAZYDP_ASSERT(weights.rows() == update.rows() &&
                      weights.cols() == update.cols(),
                  "update tensor shape mismatch");
    const std::size_t n = weights.size();
    const std::size_t block = 1u << 16;
#pragma omp parallel for schedule(static)
    for (std::size_t b = 0; b < (n + block - 1) / block; ++b) {
        const std::size_t lo = b * block;
        const std::size_t len = std::min(block, n - lo);
        if (decay == 1.0f) {
            simd::axpy(weights.data() + lo, update.data() + lo, len,
                       -scale);
        } else {
            // w = decay * w - scale * update (weight decay folded into
            // the same streaming pass)
            simd::axpby(weights.data() + lo, update.data() + lo, len,
                        -scale, decay);
        }
    }
}

void
addDenseParamNoise(const NoiseProvider &np, std::uint64_t iter,
                   std::uint32_t pseudo_table, float sigma, float scale,
                   float *dst, std::size_t n, std::uint64_t row_offset)
{
    // Chunk the flat array into provider pseudo-rows of kMaxDim.
    const std::size_t chunk = NoiseProvider::kMaxDim;
    const std::size_t n_chunks = (n + chunk - 1) / chunk;
#pragma omp parallel for schedule(static)
    for (std::size_t c = 0; c < n_chunks; ++c) {
        const std::size_t lo = c * chunk;
        const std::size_t len = std::min(chunk, n - lo);
        np.rowNoise(iter, pseudo_table, row_offset + c, sigma, scale,
                    dst + lo, len, /*accumulate=*/true);
    }
}

} // namespace lazydp
