#include "dp/noise_ops.h"

#include "common/macros.h"
#include "kernels/kernel_registry.h"
#include "tensor/simd_kernels.h"

namespace lazydp {

void
fillDenseTableNoise(const NoiseProvider &np, std::uint64_t iter,
                    std::uint32_t table, float sigma, Tensor &noise,
                    ExecContext &exec)
{
    const std::size_t rows = noise.rows();
    const std::size_t dim = noise.cols();
    // Keyed streams make every row independent -- embarrassingly
    // parallel, exactly like the paper's optimized torch.normal().
    parallelFor(exec, rows, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
            np.rowNoise(iter, table, r, sigma, 1.0f,
                        noise.data() + r * dim, dim,
                        /*accumulate=*/false);
        }
    });
}

void
addSparseIntoDense(const SparseGrad &grad, Tensor &dense)
{
    const std::size_t dim = dense.cols();
    LAZYDP_ASSERT(grad.values.cols() == dim, "sparse/dense dim mismatch");
    // a == 1.0f makes the scatter's fmadd bit-equal to a plain add, so
    // this matches the historical per-row simd::add exactly.
    kernels().scatterAxpyRows(dense.data(), grad.rows.data(),
                              grad.values.data(), grad.rows.size(), dim,
                              1.0f);
}

void
streamingTableUpdate(Tensor &weights, const Tensor &update, float scale,
                     float decay, ExecContext &exec)
{
    LAZYDP_ASSERT(weights.rows() == update.rows() &&
                      weights.cols() == update.cols(),
                  "update tensor shape mismatch");
    const std::size_t n = weights.size();
    // Fixed 64K-element shards: boundaries depend on n only, so the
    // streamed result is identical at any thread count.
    parallelForShards(
        exec, n, 1u << 16,
        [&](std::size_t, std::size_t lo, std::size_t hi) {
            const std::size_t len = hi - lo;
            if (decay == 1.0f) {
                simd::axpy(weights.data() + lo, update.data() + lo, len,
                           -scale);
            } else {
                // w = decay * w - scale * update (weight decay folded
                // into the same streaming pass)
                simd::axpby(weights.data() + lo, update.data() + lo, len,
                            -scale, decay);
            }
        });
}

void
streamingTableUpdate(EmbeddingTable &table, const Tensor &update,
                     float scale, float decay, ExecContext &exec)
{
    if (!table.tiered()) {
        streamingTableUpdate(table.weights(), update, scale, decay,
                             exec);
        return;
    }
    TieredStore &store = table.tier();
    const std::size_t dim = table.dim();
    const std::size_t page_floats = store.pageRows() * dim;
    const std::size_t n =
        static_cast<std::size_t>(table.rows()) * dim;
    LAZYDP_ASSERT(update.size() == n, "update tensor shape mismatch");
    // Same 64K shards as the dense overload, each walked page by page.
    // Both cut points (64K shard starts, page boundaries) are multiples
    // of 8 floats, so sub-range starts keep the kernels' 8-wide group
    // alignment and the arithmetic matches the dense sweep bit for bit.
    parallelForShards(
        exec, n, 1u << 16,
        [&](std::size_t, std::size_t lo, std::size_t hi) {
            std::size_t pos = lo;
            while (pos < hi) {
                const std::size_t p = pos / page_floats;
                const std::size_t in_page = pos % page_floats;
                const std::size_t len =
                    std::min(hi - pos, page_floats - in_page);
                float *w = store.pagePtrMut(p) + in_page;
                if (decay == 1.0f) {
                    simd::axpy(w, update.data() + pos, len, -scale);
                } else {
                    simd::axpby(w, update.data() + pos, len, -scale,
                                decay);
                }
                pos += len;
            }
        });
}

void
addDenseParamNoise(const NoiseProvider &np, std::uint64_t iter,
                   std::uint32_t pseudo_table, float sigma, float scale,
                   float *dst, std::size_t n, std::uint64_t row_offset,
                   ExecContext &exec)
{
    // Chunk the flat array into provider pseudo-rows of kMaxDim; every
    // chunk owns a disjoint output range and a keyed counter, so the
    // chunks can run in any order on any thread.
    const std::size_t chunk = NoiseProvider::kMaxDim;
    const std::size_t n_chunks = (n + chunk - 1) / chunk;
    if (n_chunks == 1) {
        // One pseudo-row (biases, small layers): parallelize inside the
        // fill instead of across chunks -- bit-identical either way.
        np.rowNoiseParallel(iter, pseudo_table, row_offset, sigma, scale,
                            dst, n, /*accumulate=*/true, exec);
        return;
    }
    parallelFor(exec, n_chunks, [&](std::size_t clo, std::size_t chi) {
        for (std::size_t c = clo; c < chi; ++c) {
            const std::size_t lo = c * chunk;
            const std::size_t len = std::min(chunk, n - lo);
            np.rowNoise(iter, pseudo_table, row_offset + c, sigma, scale,
                        dst + lo, len, /*accumulate=*/true);
        }
    });
}

} // namespace lazydp
