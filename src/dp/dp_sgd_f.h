/**
 * @file
 * DP-SGD(F): fast DP-SGD for RecSys (Denison et al.).
 *
 * Exploits that DLRM consists of embedding and linear layers only, so
 * each example's gradient norm is computable during standard
 * backpropagation via ghost norms -- no per-example materialization at
 * all. The clipped batch gradient then comes from one reweighted
 * backward pass. The fastest eager baseline; the paper's primary
 * comparison point for LazyDP (Section 7).
 */

#ifndef LAZYDP_DP_DP_SGD_F_H
#define LAZYDP_DP_DP_SGD_F_H

#include "dp/dp_engine_base.h"

namespace lazydp {

/** Ghost-norm fast DP-SGD. */
class DpSgdF : public DpEngineBase
{
  public:
    DpSgdF(DlrmModel &model, const TrainHyper &hyper)
        : DpEngineBase(model, hyper)
    {
    }

    std::string name() const override { return "DP-SGD(F)"; }

    /** Eager engine: no lookahead work, the default prepare applies. */
    double apply(std::uint64_t iter, const MiniBatch &cur,
                 PreparedStep &prepared, ExecContext &exec,
                 StageTimer &timer) override;
};

} // namespace lazydp

#endif // LAZYDP_DP_DP_SGD_F_H
