/**
 * @file
 * Per-example L2 gradient clipping (paper Section 2.4, step 2).
 */

#ifndef LAZYDP_DP_CLIPPING_H
#define LAZYDP_DP_CLIPPING_H

#include <vector>

#include "common/thread_pool.h"
#include "tensor/tensor.h"

namespace lazydp {

/**
 * Clip factors from squared per-example gradient norms:
 * scale_e = min(1, C / ||g_e||).
 *
 * @param norm_sq per-example squared L2 norms
 * @param clip_norm the threshold C (> 0)
 * @param out resized and filled with the factors
 */
void clipScales(const std::vector<double> &norm_sq, float clip_norm,
                std::vector<float> &out);

/**
 * Multiply each row of @p t by @p scales[row].
 *
 * Applied to the per-example loss gradient, this reweights the whole
 * subsequent backward pass -- the DP-SGD(R/F) clipping mechanism.
 */
void scaleRows(Tensor &t, const std::vector<float> &scales);

/**
 * out[j] = sum_e scales[e] * rows(e, j) -- the clip-and-reduce of
 * materialized per-example gradients (DP-SGD(B)). Parallel over
 * parameter blocks.
 *
 * @param rows (batch x P) per-example gradients
 * @param scales per-example clip factors
 * @param out (1 x P) or (r x c) tensor with r*c == P, overwritten
 */
void reduceScaledRows(const Tensor &rows,
                      const std::vector<float> &scales, Tensor &out,
                      ExecContext &exec = ExecContext::serial());

} // namespace lazydp

#endif // LAZYDP_DP_CLIPPING_H
