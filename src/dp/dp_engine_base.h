/**
 * @file
 * Shared machinery of the differentially private training engines.
 *
 * Semantics implemented here (Abadi et al.):
 *   g_tilde = (1/B) * ( sum_e clip_C(g_e) + N(0, sigma^2 C^2 I) )
 *   theta  -= eta * g_tilde
 *
 * Engines keep gradients *unaveraged* through backward and fold the
 * 1/B into the final update scale, matching Algorithm 1 of the paper
 * (noise is scaled by 1/B at generation / update time).
 *
 * Every engine draws noise from the keyed NoiseProvider so the exact
 * same Gaussian destined for (iteration, table, row) is produced no
 * matter which engine -- the basis of the equivalence tests.
 */

#ifndef LAZYDP_DP_DP_ENGINE_BASE_H
#define LAZYDP_DP_DP_ENGINE_BASE_H

#include <cstdint>
#include <vector>

#include "dp/clipping.h"
#include "dp/noise_ops.h"
#include "nn/dlrm.h"
#include "nn/loss.h"
#include "rng/noise_provider.h"
#include "train/algorithm.h"

namespace lazydp {

/** Base class for DP-SGD(B/R/F), EANA and LazyDP. */
class DpEngineBase : public Algorithm
{
  public:
    /**
     * @param model model to train (not owned)
     * @param hyper DP hyperparameters
     */
    DpEngineBase(DlrmModel &model, const TrainHyper &hyper);

    /** @return the keyed noise source (tests inspect determinism). */
    const NoiseProvider &noiseProvider() const { return noise_; }

  protected:
    /** Provider pseudo-table id of MLP layer @p mlp_index. */
    std::uint32_t mlpPseudoTable(std::size_t mlp_index) const;

    /**
     * Forward + loss + per-example (unscaled) logit gradients.
     * Fills logits_ and dLogits_; attributes Stage::Forward/Else.
     *
     * @return batch mean loss
     */
    double forwardAndLoss(const MiniBatch &cur, ExecContext &exec,
                          StageTimer &timer);

    /**
     * Noisy update of every MLP layer: assumes each layer's batch
     * gradients already hold sum_e clip(g_e); adds N(0, sigma^2 C^2)
     * and applies with step lr/B.
     */
    void noisyMlpUpdate(std::uint64_t iter, std::size_t batch,
                        ExecContext &exec, StageTimer &timer);

    /**
     * Eager dense noisy update of one embedding table (DP-SGD(B/R/F)):
     * noise for EVERY row + sparse clipped gradient, streamed into the
     * weights (paper Figure 4(b)). Stages: NoiseSampling, NoisyGradGen,
     * NoisyGradUpdate.
     *
     * @param grad coalesced clipped gradient of this table
     */
    void denseNoisyTableUpdate(std::uint64_t iter, std::uint32_t table,
                               const SparseGrad &grad, std::size_t batch,
                               ExecContext &exec, StageTimer &timer);

    /** sigma * C: the per-iteration noise stddev. */
    float
    noiseStddev() const
    {
        return hyper_.noiseMultiplier * hyper_.clipNorm;
    }

    /** Per-step multiplicative decay alpha = 1 - lr * lambda. */
    float
    decayAlpha() const
    {
        return 1.0f - hyper_.lr * hyper_.weightDecay;
    }

    /**
     * DP normalization denominator: the fixed lot size when set
     * (Poisson sampling), else the realized batch size.
     */
    float
    normDenominator(std::size_t realized_batch) const
    {
        return static_cast<float>(
            hyper_.lotSize != 0 ? hyper_.lotSize : realized_batch);
    }

    DlrmModel &model_;
    TrainHyper hyper_;
    NoiseProvider noise_;

    Tensor logits_;
    Tensor dLogits_;
    std::vector<double> normSq_;
    std::vector<float> scales_;
    std::vector<SparseGrad> sparseGrads_;
    Tensor denseScratch_; // rows x dim dense noisy-gradient staging
};

} // namespace lazydp

#endif // LAZYDP_DP_DP_ENGINE_BASE_H
