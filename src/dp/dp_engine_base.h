/**
 * @file
 * Shared machinery of the differentially private training engines.
 *
 * Semantics implemented here (Abadi et al.):
 *   g_tilde = (1/B) * ( sum_e clip_C(g_e) + N(0, sigma^2 C^2 I) )
 *   theta  -= eta * g_tilde
 *
 * Engines keep gradients *unaveraged* through backward and fold the
 * 1/B into the final update scale, matching Algorithm 1 of the paper
 * (noise is scaled by 1/B at generation / update time).
 *
 * Every engine draws noise from the keyed NoiseProvider so the exact
 * same Gaussian destined for (iteration, table, row) is produced no
 * matter which engine -- the basis of the equivalence tests.
 *
 * Lot-sharded gradient production (train/replica.h): every engine's
 * apply() splits the lot into kLotShards position-stable microbatch
 * shards; each shard runs forward + loss + per-example clipping +
 * backward into its OWN workspace and gradient buffers (engine-specific
 * via produceShardGrads), optionally fanned across worker replicas.
 * The fixed-tree reduction then merges the per-shard MLP gradient sums
 * into the layers and gathers the per-example pooled embedding
 * gradients into lot-wide buffers, after which the engine's single
 * keyed-noise add and model update run exactly once on the aggregate.
 * The decomposition never depends on the replica or thread count, so
 * the trained model is bit-identical at any parallelism setting.
 */

#ifndef LAZYDP_DP_DP_ENGINE_BASE_H
#define LAZYDP_DP_DP_ENGINE_BASE_H

#include <array>
#include <cstdint>
#include <vector>

#include "dp/clipping.h"
#include "dp/noise_ops.h"
#include "nn/dlrm.h"
#include "nn/loss.h"
#include "rng/noise_provider.h"
#include "train/algorithm.h"
#include "train/lot_backward.h"
#include "train/replica.h"

namespace lazydp {

/** Base class for DP-SGD(B/R/F), EANA and LazyDP. */
class DpEngineBase : public Algorithm
{
  public:
    /**
     * @param model model to train (not owned)
     * @param hyper DP hyperparameters
     */
    DpEngineBase(DlrmModel &model, const TrainHyper &hyper);

    /** @return the keyed noise source (tests inspect determinism). */
    const NoiseProvider &noiseProvider() const { return noise_; }

    const DlrmModel *model() const override { return &model_; }

  protected:
    /**
     * Gradient-production state of ONE microbatch shard of the current
     * lot: the shared LotShardState plus the DP engines' per-example
     * clipping scratch. Everything a shard touches while replicas run
     * concurrently lives here (or in lot-wide buffers at disjoint row
     * ranges), so shard execution is race-free by construction.
     */
    struct GradShard : LotShardState
    {
        Tensor logits;              //!< (shard x 1)
        Tensor dLogits;             //!< (shard x 1) per-example loss grads
        std::vector<double> normSq; //!< per-example squared grad norms
        std::vector<float> scales;  //!< per-example clip factors
        PerExampleGrads topPe;      //!< DP-SGD(B) materialization
        PerExampleGrads bottomPe;   //!< DP-SGD(B) materialization
    };

    /** Provider pseudo-table id of MLP layer @p mlp_index. */
    std::uint32_t mlpPseudoTable(std::size_t mlp_index) const;

    /**
     * Shard stage 1: forward + loss sum + per-example (unscaled) logit
     * gradients into @p s. Attributes Stage::Forward/Else to s.timer.
     */
    void shardForwardLoss(GradShard &s, ExecContext &exec) const;

    /**
     * Engine-specific shard gradient production: from the shard's
     * materialized sub-batch to (a) clipped per-layer MLP gradient sums
     * in s.sums and (b) clipped pooled per-example embedding gradients
     * in s.ws.dEmbOut. The default implements the ghost-clipping flow
     * shared by DP-SGD(F), EANA and LazyDP; DP-SGD(B/R) override.
     *
     * Must be safe to run concurrently with other shards: only @p s,
     * read-only model weights, and @p exec may be touched.
     */
    virtual void produceShardGrads(std::uint64_t iter, GradShard &s,
                                   ExecContext &exec);

    /**
     * The lot-sharded first half of every engine's apply(): the shared
     * shardedLotBackward orchestration (train/lot_backward.h) driving
     * this engine's produceShardGrads over shards_, with the pooled
     * embedding gradients gathered into lotEmbGrad_.
     *
     * @return the lot mean loss (tree-reduced shard sums / batch)
     */
    double shardedBackward(std::uint64_t iter, const MiniBatch &cur,
                           ExecContext &exec, StageTimer &timer);

    /**
     * Noisy update of every MLP layer: assumes each layer's batch
     * gradients already hold sum_e clip(g_e); adds N(0, sigma^2 C^2)
     * and applies with step lr/B.
     */
    void noisyMlpUpdate(std::uint64_t iter, std::size_t batch,
                        ExecContext &exec, StageTimer &timer);

    /**
     * Eager dense noisy update of one embedding table (DP-SGD(B/R/F)):
     * noise for EVERY row + sparse clipped gradient, streamed into the
     * weights (paper Figure 4(b)). Stages: NoiseSampling, NoisyGradGen,
     * NoisyGradUpdate.
     *
     * @param grad coalesced clipped gradient of this table
     */
    void denseNoisyTableUpdate(std::uint64_t iter, std::uint32_t table,
                               const SparseGrad &grad, std::size_t batch,
                               ExecContext &exec, StageTimer &timer);

    /** sigma * C: the per-iteration noise stddev. */
    float
    noiseStddev() const
    {
        return hyper_.noiseMultiplier * hyper_.clipNorm;
    }

    /** Per-step multiplicative decay alpha = 1 - lr * lambda. */
    float
    decayAlpha() const
    {
        return 1.0f - hyper_.lr * hyper_.weightDecay;
    }

    /**
     * DP normalization denominator: the fixed lot size when set
     * (Poisson sampling), else the realized batch size.
     */
    float
    normDenominator(std::size_t realized_batch) const
    {
        return static_cast<float>(
            hyper_.lotSize != 0 ? hyper_.lotSize : realized_batch);
    }

    DlrmModel &model_;
    TrainHyper hyper_;
    NoiseProvider noise_;

    std::array<GradShard, kLotShards> shards_;
    /** Per table: (lot x dim) pooled gradients gathered from shards. */
    std::vector<Tensor> lotEmbGrad_;
    std::vector<SparseGrad> sparseGrads_;
    Tensor denseScratch_; // rows x dim dense noisy-gradient staging
};

} // namespace lazydp

#endif // LAZYDP_DP_DP_ENGINE_BASE_H
