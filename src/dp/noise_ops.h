/**
 * @file
 * Bulk noise/update kernels shared by the DP engines.
 *
 * These are the two operators the paper's Section 4.3 roofline analysis
 * targets: dense keyed noise generation over an entire embedding table
 * (compute-bound) and the streaming noisy-gradient model update
 * (memory-bound). Both run on the repository thread pool (ExecContext),
 * mirroring the paper's "heavily optimized" TBB/OpenMP baseline
 * (Section 6); shard boundaries are fixed, so output is bit-identical
 * at any thread count.
 */

#ifndef LAZYDP_DP_NOISE_OPS_H
#define LAZYDP_DP_NOISE_OPS_H

#include <cstdint>

#include "common/thread_pool.h"
#include "nn/embedding.h"
#include "rng/noise_provider.h"
#include "tensor/tensor.h"

namespace lazydp {

/**
 * Overwrite @p noise (rows x dim) with keyed per-row Gaussian noise for
 * @p iter: row r gets the (iter, table, r) stream. Parallel over rows.
 *
 * This is the DP-SGD(B/R/F) *noise sampling* stage for one table.
 */
void fillDenseTableNoise(const NoiseProvider &np, std::uint64_t iter,
                         std::uint32_t table, float sigma, Tensor &noise,
                         ExecContext &exec = ExecContext::serial());

/**
 * Scatter-add a coalesced sparse gradient into the dense noise tensor
 * (the *noisy gradient generation* stage).
 */
void addSparseIntoDense(const SparseGrad &grad, Tensor &dense);

/**
 * weights -= scale * update, streaming over the whole table (the
 * *noisy gradient update* stage; N=2 ops per element, memory-bound).
 * Parallel over row blocks.
 */
void streamingTableUpdate(Tensor &weights, const Tensor &update,
                          float scale, float decay = 1.0f,
                          ExecContext &exec = ExecContext::serial());

/**
 * Storage-mode-aware variant: dense tables delegate to the Tensor
 * overload above; TIERED tables stream the same fixed 64K-element
 * shards but split each shard at hot-page boundaries, writing through
 * the page table (resident pages in place + dirty-marked, cold pages
 * straight into the file mapping -- a dense sweep must not thrash the
 * hot tier). Page boundaries are multiples of 8 floats (pageRows is a
 * multiple of 8), as are the 64K shard starts, so every sub-range
 * keeps the SIMD kernels' 8-wide group alignment and the result is
 * bit-identical to the dense overload.
 */
void streamingTableUpdate(EmbeddingTable &table, const Tensor &update,
                          float scale, float decay = 1.0f,
                          ExecContext &exec = ExecContext::serial());

/**
 * Accumulate keyed noise over an arbitrary flat parameter array
 * (MLP weights/biases), chunking into pseudo-rows of the provider.
 *
 * @param pseudo_table provider table id reserved for this tensor
 * @param dst dst[i] += scale * z_i, z ~ N(0, sigma^2)
 */
void addDenseParamNoise(const NoiseProvider &np, std::uint64_t iter,
                        std::uint32_t pseudo_table, float sigma,
                        float scale, float *dst, std::size_t n,
                        std::uint64_t row_offset = 0,
                        ExecContext &exec = ExecContext::serial());

} // namespace lazydp

#endif // LAZYDP_DP_NOISE_OPS_H
