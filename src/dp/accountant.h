/**
 * @file
 * Renyi differential privacy (RDP) accountant for the subsampled
 * Gaussian mechanism -- the standard way (Abadi et al., Mironov et al.)
 * to convert "T iterations of DP-SGD with sampling rate q and noise
 * multiplier sigma" into an (epsilon, delta) guarantee.
 *
 * The examples use this to report the privacy budget of a training run;
 * LazyDP consumes exactly the same per-iteration mechanism as DP-SGD,
 * so the accounting is shared by every engine.
 */

#ifndef LAZYDP_DP_ACCOUNTANT_H
#define LAZYDP_DP_ACCOUNTANT_H

#include <cstdint>
#include <vector>

namespace lazydp {

/** RDP accountant over integer Renyi orders. */
class RdpAccountant
{
  public:
    /**
     * @param noise_multiplier sigma (noise stddev / clip norm)
     * @param sampling_rate q, each example's per-iteration inclusion
     *        probability (Poisson subsampling)
     */
    RdpAccountant(double noise_multiplier, double sampling_rate);

    /** Account for @p steps more iterations. */
    void addSteps(std::uint64_t steps) { steps_ += steps; }

    /** @return total accounted iterations. */
    std::uint64_t steps() const { return steps_; }

    /**
     * @return the (epsilon, best_order) pair for target @p delta using
     * the standard RDP->DP conversion
     * eps = min_alpha [ rdp(alpha) + log(1/delta) / (alpha - 1) ].
     */
    double epsilon(double delta, int *best_order = nullptr) const;

    /**
     * RDP of the subsampled Gaussian at integer order @p alpha for ONE
     * step (Mironov et al., "R\'enyi DP of the Sampled Gaussian
     * Mechanism", Sec. 3.3 binomial expansion; exact for q < 1,
     * alpha integer >= 2).
     */
    double rdpAtOrder(int alpha) const;

    /** Orders scanned by epsilon(). */
    static const std::vector<int> &defaultOrders();

  private:
    double sigma_;
    double q_;
    std::uint64_t steps_ = 0;
};

} // namespace lazydp

#endif // LAZYDP_DP_ACCOUNTANT_H
