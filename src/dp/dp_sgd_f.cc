#include "dp/dp_sgd_f.h"

namespace lazydp {

double
DpSgdF::apply(std::uint64_t iter, const MiniBatch &cur,
              PreparedStep &prepared, ExecContext &exec, StageTimer &timer)
{
    (void)prepared;
    const std::size_t batch = cur.batchSize;
    const double loss = forwardAndLoss(cur, exec, timer);

    // Pass 1: activation-gradient backward with ghost-norm
    // accumulation; parameter gradients are skipped entirely.
    timer.start(Stage::BackwardPerExample);
    normSq_.assign(batch, 0.0);
    model_.backward(dLogits_, &normSq_, /*skip_param_grads=*/true, exec);
    model_.accumulateEmbeddingGhostNormSq(cur, normSq_);
    clipScales(normSq_, hyper_.clipNorm, scales_);
    timer.stop();

    // Pass 2: reweighted per-batch backward.
    timer.start(Stage::BackwardPerBatch);
    scaleRows(dLogits_, scales_);
    model_.backward(dLogits_, nullptr, false, exec);
    timer.stop();

    timer.start(Stage::GradCoalesce);
    for (std::size_t t = 0; t < model_.config().numTables; ++t)
        model_.embeddingBackward(cur, t, sparseGrads_[t]);
    timer.stop();

    for (std::size_t t = 0; t < model_.config().numTables; ++t) {
        denseNoisyTableUpdate(iter, static_cast<std::uint32_t>(t),
                              sparseGrads_[t], batch, exec, timer);
    }
    noisyMlpUpdate(iter, batch, exec, timer);
    return loss;
}

} // namespace lazydp
