#include "dp/dp_sgd_f.h"

namespace lazydp {

double
DpSgdF::apply(std::uint64_t iter, const MiniBatch &cur,
              PreparedStep &prepared, ExecContext &exec, StageTimer &timer)
{
    (void)prepared;
    const std::size_t batch = cur.batchSize;

    // Lot-sharded gradient production (ghost-clipping default): per
    // shard, an activation-gradient backward with ghost-norm
    // accumulation (parameter gradients skipped), then the reweighted
    // per-batch backward; shard sums tree-reduce into the layers.
    const double loss = shardedBackward(iter, cur, exec, timer);

    timer.start(Stage::GradCoalesce);
    for (std::size_t t = 0; t < model_.config().numTables; ++t)
        model_.embeddingBackwardFrom(cur, t, lotEmbGrad_[t],
                                     sparseGrads_[t]);
    timer.stop();

    // Post-reduce model update, once per lot: dense noisy update of
    // every table + noisy MLP step.
    for (std::size_t t = 0; t < model_.config().numTables; ++t) {
        denseNoisyTableUpdate(iter, static_cast<std::uint32_t>(t),
                              sparseGrads_[t], batch, exec, timer);
    }
    noisyMlpUpdate(iter, batch, exec, timer);
    return loss;
}

} // namespace lazydp
