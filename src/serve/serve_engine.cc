#include "serve/serve_engine.h"

#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>
#include <utility>

#include "common/macros.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lazydp {

namespace {

/** Registry mirrors of the per-engine ServeStats completion counters.
 *  Global and additive: with several engines in one process they sum,
 *  while each engine's stats() keeps its own exact view. */
struct ServeMetrics
{
    obs::MetricId served;
    obs::MetricId deadlineOk;
    obs::MetricId batches;
    obs::MetricId forwardNs;
    obs::MetricId latencyNs;
    obs::MetricId batchSize;
};

const ServeMetrics &
serveMetrics()
{
    static const ServeMetrics ids = {
        obs::internMetric("serve.requests_served",
                          obs::MetricKind::Counter),
        obs::internMetric("serve.deadline_ok",
                          obs::MetricKind::Counter),
        obs::internMetric("serve.batches", obs::MetricKind::Counter),
        obs::internMetric("serve.forward_ns",
                          obs::MetricKind::Histogram),
        obs::internMetric("serve.latency_ns",
                          obs::MetricKind::Histogram),
        obs::internMetric("serve.batch_size",
                          obs::MetricKind::Histogram),
    };
    return ids;
}

} // namespace

ServeEngine::ServeEngine(const ModelSnapshotStore &store,
                         const ModelConfig &config, ThreadPool &pool,
                         const ServeOptions &options)
    : store_(store), config_(config), options_(options),
      batcher_(options.batch, options.threads)
{
    LAZYDP_ASSERT(options_.threads >= 1, "need at least one serve lane");
    LAZYDP_ASSERT(options_.firstLane + options_.threads <=
                      ThreadPool::kMaxLanes,
                  "serve lanes exceed ThreadPool::kMaxLanes");
    workers_.reserve(options_.threads);
    for (std::size_t w = 0; w < options_.threads; ++w) {
        workers_.push_back(pool.submitLane(
            options_.firstLane + w, [this, w] { workerLoop(w); }));
    }
}

ServeEngine::~ServeEngine() { stop(); }

PendingRequestPtr
ServeEngine::submit(ServeQuery query, SloClass slo)
{
    LAZYDP_ASSERT(query.dense.size() == config_.numDense,
                  "query dense width != model");
    LAZYDP_ASSERT(query.indices.size() ==
                      config_.numTables * config_.pooling,
                  "query index count != numTables * pooling");
    auto request = std::make_shared<PendingRequest>();
    request->query = std::move(query);
    request->slo = slo;
    // A rejected push (shed / post-stop) already completed the request
    // with its status; the caller gets the handle either way and
    // wait() never hangs.
    batcher_.push(request);
    return request;
}

void
ServeEngine::stop()
{
    if (stopping_.exchange(true))
        return;
    batcher_.stop();
    for (auto &w : workers_)
        w.wait();
}

ServeStats
ServeEngine::stats() const
{
    ServeStats out;
    {
        std::lock_guard<std::mutex> lock(statsMu_);
        out = stats_;
    }
    const BatcherStats b = batcher_.stats();
    out.shed = b.shed;
    out.expired = b.expired;
    out.shutdown = b.shutdown;
    out.stolenBatches = b.stolenBatches;
    return out;
}

void
ServeEngine::workerLoop(std::size_t lane)
{
    // Lane-private scoring state: workspace, logits, batch assembly.
    // Buffers never shrink, so steady-state serving allocates nothing
    // once sizes stabilize at the batching cap.
    DlrmWorkspace ws;
    Tensor logits;
    MiniBatch mb;
    std::vector<PendingRequestPtr> batch;

    while (batcher_.pop(lane, batch) > 0) {
        // One snapshot per micro-batch: every query in it is scored by
        // the same fully-published version (consistency contract).
        auto snap = store_.current();
        while (snap == nullptr &&
               !stopping_.load(std::memory_order_relaxed)) {
            // Requests arrived before the first publish; briefly yield
            // until the trainer (or serve-only driver) publishes v1.
            std::this_thread::sleep_for(std::chrono::microseconds(50));
            snap = store_.current();
        }
        if (snap == nullptr) {
            // Shutting down before anything was ever published: these
            // requests can never be scored. Complete them with the
            // version-0 marker so no client blocks forever. They still
            // count as served/batched (completion accounting must
            // reconcile with submissions); min/maxVersion track only
            // SCORED requests, so they stay untouched.
            // Stats BEFORE complete(): complete() wakes the client,
            // and a client that observed its own completion must see
            // itself counted (stats() would otherwise transiently
            // under-report served).
            {
                std::lock_guard<std::mutex> lock(statsMu_);
                stats_.served += batch.size();
                stats_.batches += 1;
            }
            if (obs::metricsEnabled()) {
                const ServeMetrics &ids = serveMetrics();
                obs::counterAdd(ids.served, batch.size());
                obs::counterAdd(ids.batches);
            }
            ServeResult unscored;
            unscored.status = ServeResult::Status::Shutdown;
            for (auto &request : batch)
                request->complete(unscored);
            continue;
        }

        // Assemble the micro-batch in the standard MiniBatch layout
        // ([table][example][slot]) from the per-query [table][slot]
        // rows, reusing buffers across batches (cf. MiniBatch::slice).
        const std::size_t n = batch.size();
        obs::TraceSpan batchSpan(obs::TraceCat::Serve, "batch",
                                 {"batch", n},
                                 {"version", snap->version});
        const std::size_t pooling = config_.pooling;
        mb.batchSize = n;
        mb.numTables = config_.numTables;
        mb.pooling = pooling;
        mb.dense.resizeNoShrink(n, config_.numDense);
        mb.labels.resize(n);
        mb.indices.resize(config_.numTables * n * pooling);
        for (std::size_t e = 0; e < n; ++e) {
            const ServeQuery &q = batch[e]->query;
            std::memcpy(mb.dense.row(e).data(), q.dense.data(),
                        config_.numDense * sizeof(float));
            for (std::size_t t = 0; t < config_.numTables; ++t) {
                std::memcpy(mb.indices.data() +
                                (t * n + e) * pooling,
                            q.indices.data() + t * pooling,
                            pooling * sizeof(std::uint32_t));
            }
        }

        // Lanes flatten nested dispatch anyway; serial is the honest
        // execution context for a latency-bound micro-batch.
        const auto fwd_begin = PendingRequest::Clock::now();
        {
            LAZYDP_TRACE_SPAN1(obs::TraceCat::Serve, "forward", "batch",
                               n);
            snap->model.forward(mb, logits, ws, ExecContext::serial());
        }
        const auto fwd_end = PendingRequest::Clock::now();

        // Deadline check for the attainment signal: one timestamp for
        // the whole micro-batch, taken before any completion is
        // delivered (the same instant the stats are counted at, so a
        // window sampler can never see a completion that beat its own
        // attainment accounting). deadlineAt is time_point::max() for
        // no-deadline requests -- they always attain.
        const auto scored_at = PendingRequest::Clock::now();
        std::uint64_t in_deadline = 0;
        for (std::size_t e = 0; e < n; ++e)
            if (scored_at <= batch[e]->deadlineAt)
                ++in_deadline;

        // Stats BEFORE complete(): complete() is the client's wakeup,
        // so any observer that saw its own result must also see it
        // counted -- updating after the wakeup let stats().served
        // transiently read N-1 after the N-th client returned.
        {
            std::lock_guard<std::mutex> lock(statsMu_);
            stats_.served += n;
            stats_.okDeadline += in_deadline;
            stats_.batches += 1;
            if (stats_.minVersion == 0 ||
                snap->version < stats_.minVersion)
                stats_.minVersion = snap->version;
            if (snap->version > stats_.maxVersion)
                stats_.maxVersion = snap->version;
        }
        // Registry mirror at the same instant (still before any
        // complete()), so scrape-derived attainment obeys the same
        // counted-before-woken contract the local stats do.
        if (obs::metricsEnabled()) {
            const ServeMetrics &ids = serveMetrics();
            obs::counterAdd(ids.served, n);
            obs::counterAdd(ids.deadlineOk, in_deadline);
            obs::counterAdd(ids.batches);
            obs::histogramRecord(
                ids.forwardNs,
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(fwd_end - fwd_begin)
                        .count()));
            obs::histogramRecord(ids.batchSize, n);
            for (std::size_t e = 0; e < n; ++e) {
                const auto wait = scored_at - batch[e]->enqueuedAt;
                obs::histogramRecord(
                    ids.latencyNs,
                    static_cast<std::uint64_t>(
                        std::chrono::duration_cast<
                            std::chrono::nanoseconds>(wait)
                            .count()));
            }
        }

        ServeResult result;
        result.version = snap->version;
        result.iteration = snap->iteration;
        result.batchSize = static_cast<std::uint32_t>(n);
        for (std::size_t e = 0; e < n; ++e) {
            const float z = logits.at(e, 0);
            result.score = 1.0f / (1.0f + std::exp(-z));
            batch[e]->complete(result);
            obs::traceInstant(
                obs::TraceCat::Serve, "complete",
                {"in_deadline",
                 scored_at <= batch[e]->deadlineAt ? 1u : 0u},
                {"version", snap->version});
        }
    }
}

} // namespace lazydp
