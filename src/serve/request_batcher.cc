#include "serve/request_batcher.h"

#include <algorithm>

#include "common/macros.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lazydp {

namespace {

using Clock = PendingRequest::Clock;

/** Registry mirrors of the batcher's admission-side counters. */
struct BatcherMetrics
{
    obs::MetricId enqueued;
    obs::MetricId shed;
    obs::MetricId expired;
    obs::MetricId shutdown;
    obs::MetricId stolen;
};

const BatcherMetrics &
batcherMetrics()
{
    static const BatcherMetrics ids = {
        obs::internMetric("serve.requests_enqueued",
                          obs::MetricKind::Counter),
        obs::internMetric("serve.requests_shed",
                          obs::MetricKind::Counter),
        obs::internMetric("serve.requests_expired",
                          obs::MetricKind::Counter),
        obs::internMetric("serve.requests_shutdown",
                          obs::MetricKind::Counter),
        obs::internMetric("serve.batches_stolen",
                          obs::MetricKind::Counter),
    };
    return ids;
}

/** Complete @p request with just a status (never scored). */
void
completeWithStatus(const PendingRequestPtr &request,
                   ServeResult::Status status)
{
    ServeResult r;
    r.status = status;
    request->complete(r);
}

/**
 * Iterator to the shed victim among @p queue and the incoming
 * @p request (end() means the incoming request itself is the victim).
 * Caller holds the shard lock; the queue is at cap and non-empty.
 */
std::deque<PendingRequestPtr>::iterator
chooseVictim(std::deque<PendingRequestPtr> &queue,
             const PendingRequestPtr &request, ShedPolicy policy)
{
    // Oldest request of the lowest queued priority: front-to-back scan
    // with a strict < keeps the FIRST (oldest) one per priority level.
    auto lowest = queue.begin();
    for (auto it = std::next(queue.begin()); it != queue.end(); ++it)
        if ((*it)->slo.priority < (*lowest)->slo.priority)
            lowest = it;

    switch (policy) {
    case ShedPolicy::RejectNewest:
        // The arrival is the victim unless it outranks queued work.
        return (*lowest)->slo.priority < request->slo.priority
                   ? lowest
                   : queue.end();
    case ShedPolicy::DropOldest:
        // Queued work is the victim unless the arrival ranks lower
        // still -- a low-priority arrival never displaces
        // higher-priority queued requests.
        return request->slo.priority < (*lowest)->slo.priority
                   ? queue.end()
                   : lowest;
    }
    return queue.end();
}

} // namespace

RequestBatcher::RequestBatcher(const BatchPolicy &policy,
                               std::size_t lanes)
    : policy_(policy)
{
    LAZYDP_ASSERT(policy_.maxBatch >= 1, "maxBatch must be >= 1");
    LAZYDP_ASSERT(lanes >= 1, "need at least one shard");
    shards_.reserve(lanes);
    for (std::size_t i = 0; i < lanes; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

bool
RequestBatcher::push(PendingRequestPtr request)
{
    const std::size_t lane =
        routeFor(seq_.fetch_add(1, std::memory_order_relaxed),
                 shards_.size());
    Shard &s = *shards_[lane];
    const auto prio = request->slo.priority;

    // Completions happen OUTSIDE the shard lock: complete() takes the
    // request's own mutex and wakes a client thread -- no reason to
    // serialize that against producers.
    PendingRequestPtr victim;
    ServeResult::Status victimStatus = ServeResult::Status::Shed;
    bool admitted = false;
    {
        std::lock_guard<std::mutex> lock(s.mu);
        const auto now = Clock::now();
        request->enqueuedAt = now;
        request->deadlineAt =
            request->slo.deadlineUs == 0
                ? Clock::time_point::max()
                : now + std::chrono::microseconds(
                            request->slo.deadlineUs);
        if (stopped_.load(std::memory_order_relaxed)) {
            victim = std::move(request);
            victimStatus = ServeResult::Status::Shutdown;
        } else if (policy_.queueCap > 0 &&
                   s.queue.size() >= policy_.queueCap) {
            const auto it =
                chooseVictim(s.queue, request, policy_.shedPolicy);
            if (it == s.queue.end()) {
                victim = std::move(request);
            } else {
                victim = std::move(*it);
                s.queue.erase(it);
                s.queue.push_back(std::move(request));
                admitted = true;
            }
        } else {
            s.queue.push_back(std::move(request));
            admitted = true;
        }
    }
    if (admitted) {
        accepted_.fetch_add(1, std::memory_order_relaxed);
        obs::counterAdd(batcherMetrics().enqueued);
        obs::traceInstant(obs::TraceCat::Serve, "enqueue",
                          {"prio", prio});
        // Wake one consumer; a batch-forming consumer re-checks
        // fullness.
        s.cv.notify_one();
    }
    if (victim != nullptr) {
        const bool isShutdown =
            victimStatus == ServeResult::Status::Shutdown;
        (isShutdown ? shutdown_ : shed_)
            .fetch_add(1, std::memory_order_relaxed);
        obs::counterAdd(isShutdown ? batcherMetrics().shutdown
                                   : batcherMetrics().shed);
        obs::traceInstant(obs::TraceCat::Serve,
                          isShutdown ? "reject_shutdown" : "shed",
                          {"prio", victim->slo.priority});
        completeWithStatus(victim, victimStatus);
    }
    return admitted;
}

void
RequestBatcher::takeFrom(std::deque<PendingRequestPtr> &queue,
                         std::vector<PendingRequestPtr> &out,
                         std::vector<PendingRequestPtr> &expired)
{
    const auto now = Clock::now();
    // Expired requests never reach the forward pass and do not count
    // against the batch: keep taking until maxBatch LIVE requests.
    while (!queue.empty() && out.size() < policy_.maxBatch) {
        PendingRequestPtr r = std::move(queue.front());
        queue.pop_front();
        if (r->deadlineAt <= now)
            expired.push_back(std::move(r));
        else
            out.push_back(std::move(r));
    }
}

void
RequestBatcher::completeExpired(
    std::vector<PendingRequestPtr> &expired)
{
    for (auto &r : expired) {
        expired_.fetch_add(1, std::memory_order_relaxed);
        obs::counterAdd(batcherMetrics().expired);
        obs::traceInstant(obs::TraceCat::Serve, "expired",
                          {"prio", r->slo.priority});
        completeWithStatus(r, ServeResult::Status::Expired);
    }
    expired.clear();
}

bool
RequestBatcher::steal(std::size_t lane,
                      std::vector<PendingRequestPtr> &out,
                      bool drainAll)
{
    const std::size_t n = shards_.size();
    std::vector<PendingRequestPtr> expired;
    for (std::size_t k = 1; k < n; ++k) {
        Shard &s = *shards_[(lane + k) % n];
        {
            std::lock_guard<std::mutex> lock(s.mu);
            if (s.queue.empty())
                continue;
            if (!drainAll) {
                // Only steal READY work: a full batch, or one whose
                // oldest request is ripe. Grabbing an immature batch
                // would defeat deadline batching (premature
                // under-sized dispatches).
                const bool ready =
                    s.queue.size() >= policy_.maxBatch ||
                    Clock::now() >=
                        s.queue.front()->enqueuedAt +
                            std::chrono::microseconds(
                                policy_.maxDelayUs);
                if (!ready)
                    continue;
            }
            takeFrom(s.queue, out, expired);
            if (!s.queue.empty())
                s.cv.notify_one();
        }
        completeExpired(expired);
        if (!out.empty()) {
            stolen_.fetch_add(1, std::memory_order_relaxed);
            obs::counterAdd(batcherMetrics().stolen);
            return true;
        }
        // Everything taken was expired: keep scanning.
    }
    return false;
}

std::size_t
RequestBatcher::pop(std::size_t lane,
                    std::vector<PendingRequestPtr> &out)
{
    out.clear();
    LAZYDP_ASSERT(lane < shards_.size(), "pop lane out of range");
    Shard &own = *shards_[lane];
    // Bounded waits on the own-shard condvar so a dry consumer
    // periodically checks siblings for stealable work (a sibling push
    // only notifies the sibling's condvar).
    const auto stealPoll = std::chrono::microseconds(std::clamp<
        std::uint64_t>(policy_.maxDelayUs, 50, 1000));
    std::vector<PendingRequestPtr> expired;
    for (;;) {
        std::unique_lock<std::mutex> lock(own.mu);
        // Phase 1: wait for the first request on the own shard,
        // stealing from siblings between polls (or shutdown).
        while (own.queue.empty() &&
               !stopped_.load(std::memory_order_relaxed)) {
            own.cv.wait_for(lock, stealPoll);
            if (!own.queue.empty() ||
                stopped_.load(std::memory_order_relaxed))
                break;
            lock.unlock();
            if (shards_.size() > 1 &&
                steal(lane, out, /*drainAll=*/false))
                return out.size();
            lock.lock();
        }
        if (own.queue.empty()) {
            // Stopped and the own shard is dry: sweep the siblings
            // (drain-on-stop covers ALL shards -- a lane that exited
            // early must not strand queued requests), then exit.
            lock.unlock();
            if (shards_.size() > 1 &&
                steal(lane, out, /*drainAll=*/true))
                return out.size();
            return 0; // stopped and drained: the only 0 return
        }

        // Phase 2: the batch forms around the OLDEST queued request;
        // hold at most maxDelayUs past its enqueue before dispatching.
        // The deadline is recomputed from the CURRENT front on every
        // wake: a concurrent consumer may have dispatched the request
        // the wait began on, and a stale deadline would let fresh
        // requests time out instantly (premature under-sized batches).
        while (own.queue.size() < policy_.maxBatch &&
               !stopped_.load(std::memory_order_relaxed)) {
            const auto deadline =
                own.queue.front()->enqueuedAt +
                std::chrono::microseconds(policy_.maxDelayUs);
            if (own.cv.wait_until(lock, deadline) ==
                std::cv_status::timeout)
                break; // the oldest queued request is ripe
            // A concurrent consumer may have drained the queue while
            // this one slept past the phase-1 predicate.
            if (own.queue.empty())
                break;
        }
        // Lost the race for this batch entirely: go back to phase 1
        // rather than handing a live consumer the 0 exit signal.
        if (own.queue.empty())
            continue;

        takeFrom(own.queue, out, expired);
        // Leftover requests may already form a ripe batch for another
        // consumer blocked in phase 1.
        const bool leftover = !own.queue.empty();
        lock.unlock();
        if (leftover)
            own.cv.notify_one();
        completeExpired(expired);
        if (!out.empty())
            return out.size();
        // The whole batch had expired: go round again.
    }
}

void
RequestBatcher::stop()
{
    stopped_.store(true, std::memory_order_relaxed);
    for (auto &s : shards_) {
        // Empty critical section: pairs the flag store with every
        // consumer's predicate check under the shard mutex, so no
        // consumer can re-sleep after missing the notify.
        { std::lock_guard<std::mutex> lock(s->mu); }
        s->cv.notify_all();
    }
}

std::size_t
RequestBatcher::depth() const
{
    std::size_t total = 0;
    for (std::size_t i = 0; i < shards_.size(); ++i)
        total += depth(i);
    return total;
}

std::size_t
RequestBatcher::depth(std::size_t lane) const
{
    const Shard &s = *shards_[lane];
    std::lock_guard<std::mutex> lock(s.mu);
    return s.queue.size();
}

BatcherStats
RequestBatcher::stats() const
{
    BatcherStats out;
    out.accepted = accepted_.load(std::memory_order_relaxed);
    out.shed = shed_.load(std::memory_order_relaxed);
    out.expired = expired_.load(std::memory_order_relaxed);
    out.shutdown = shutdown_.load(std::memory_order_relaxed);
    out.stolenBatches = stolen_.load(std::memory_order_relaxed);
    return out;
}

} // namespace lazydp
