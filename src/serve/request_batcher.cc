#include "serve/request_batcher.h"

#include "common/macros.h"

namespace lazydp {

RequestBatcher::RequestBatcher(const BatchPolicy &policy)
    : policy_(policy)
{
    LAZYDP_ASSERT(policy_.maxBatch >= 1, "maxBatch must be >= 1");
}

bool
RequestBatcher::push(PendingRequestPtr request)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopped_)
            return false;
        request->enqueuedAt = PendingRequest::Clock::now();
        queue_.push_back(std::move(request));
    }
    // Wake one consumer; a batch-forming consumer re-checks fullness.
    cv_.notify_one();
    return true;
}

std::size_t
RequestBatcher::pop(std::vector<PendingRequestPtr> &out)
{
    out.clear();
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        // Phase 1: wait for the first request (or shutdown).
        cv_.wait(lock, [this] { return !queue_.empty() || stopped_; });
        if (queue_.empty())
            return 0; // stopped and drained: the only 0 return

        // Phase 2: the batch forms around the OLDEST queued request;
        // hold at most maxDelayUs past its enqueue before dispatching.
        // The deadline is recomputed from the CURRENT front on every
        // wake: a concurrent consumer may have dispatched the request
        // the wait began on, and a stale deadline would let fresh
        // requests time out instantly (premature under-sized batches).
        while (queue_.size() < policy_.maxBatch && !stopped_) {
            const auto deadline =
                queue_.front()->enqueuedAt +
                std::chrono::microseconds(policy_.maxDelayUs);
            if (cv_.wait_until(lock, deadline) ==
                std::cv_status::timeout)
                break; // the oldest queued request is ripe
            // A concurrent consumer may have drained the queue while
            // this one slept past the phase-1 predicate.
            if (queue_.empty())
                break;
        }
        // Lost the race for this batch entirely: go back to phase 1
        // rather than handing a live consumer the 0 exit signal.
        if (queue_.empty())
            continue;

        const std::size_t n =
            queue_.size() < policy_.maxBatch ? queue_.size()
                                             : policy_.maxBatch;
        for (std::size_t i = 0; i < n; ++i) {
            out.push_back(std::move(queue_.front()));
            queue_.pop_front();
        }
        // Leftover requests may already form a ripe batch for another
        // consumer blocked in phase 1.
        if (!queue_.empty())
            cv_.notify_one();
        return n;
    }
}

void
RequestBatcher::stop()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopped_ = true;
    }
    cv_.notify_all();
}

std::size_t
RequestBatcher::depth() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
}

} // namespace lazydp
