/**
 * @file
 * Deadline-batched request coalescing for online DLRM inference.
 *
 * Recommendation queries arrive one user at a time, but the DLRM
 * forward pass is far more efficient over a micro-batch (the MLP GEMMs
 * amortize, the embedding gathers pipeline). The classic serving
 * trade-off is latency vs. throughput, governed by two knobs:
 *
 *   max_batch     coalesce at most this many queries per micro-batch;
 *   max_delay_us  never hold the FIRST query of a forming batch longer
 *                 than this before dispatching whatever has arrived.
 *
 * pop() blocks until it can hand a worker a batch that is either full
 * (max_batch queries) or ripe (oldest query has waited max_delay_us).
 * max_batch = 1 degenerates to no batching: every query dispatches
 * immediately -- the latency-optimal, throughput-worst policy.
 *
 * The batcher is a plain mutex + condvar MPMC queue: producers are the
 * load-generator / client threads, consumers the serve lanes. stop()
 * wakes everyone; queued requests are still drained (pop keeps
 * returning batches until the queue empties, then returns 0).
 */

#ifndef LAZYDP_SERVE_REQUEST_BATCHER_H
#define LAZYDP_SERVE_REQUEST_BATCHER_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "serve/serve_types.h"

namespace lazydp {

/** Micro-batching policy (see file comment). */
struct BatchPolicy
{
    std::size_t maxBatch = 32;      //!< queries per micro-batch cap
    std::uint64_t maxDelayUs = 200; //!< deadline from first enqueue
};

/** Deadline-batching MPMC queue of pending requests. */
class RequestBatcher
{
  public:
    explicit RequestBatcher(const BatchPolicy &policy);

    /**
     * Enqueue @p request and stamp its enqueue time.
     *
     * @return false (request not accepted) once stop() has been called
     */
    bool push(PendingRequestPtr request);

    /**
     * Block until a batch is ready, then move up to maxBatch requests
     * into @p out (cleared first), in arrival order.
     *
     * A batch is ready when the queue holds maxBatch requests, when the
     * oldest queued request has waited maxDelayUs, or when stop() was
     * called (remaining requests drain in maxBatch-sized chunks).
     *
     * @return number of requests handed out; 0 only after stop() with
     *         an empty queue (the consumer's exit signal)
     */
    std::size_t pop(std::vector<PendingRequestPtr> &out);

    /** Stop accepting pushes and wake every blocked consumer. */
    void stop();

    /** @return current queue depth (monitoring only, racy by nature). */
    std::size_t depth() const;

    const BatchPolicy &policy() const { return policy_; }

  private:
    BatchPolicy policy_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<PendingRequestPtr> queue_;
    bool stopped_ = false;
};

} // namespace lazydp

#endif // LAZYDP_SERVE_REQUEST_BATCHER_H
