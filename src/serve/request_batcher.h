/**
 * @file
 * Deadline-batched, SLO-aware request queuing for online DLRM
 * inference: per-lane sharded queues + admission control + priority
 * shedding + deadline expiry.
 *
 * Recommendation queries arrive one user at a time, but the DLRM
 * forward pass is far more efficient over a micro-batch (the MLP GEMMs
 * amortize, the embedding gathers pipeline). The classic serving
 * trade-off is latency vs. throughput, governed by two knobs:
 *
 *   max_batch     coalesce at most this many queries per micro-batch;
 *   max_delay_us  never hold the FIRST query of a forming batch longer
 *                 than this before dispatching whatever has arrived.
 *
 * pop(lane) blocks until it can hand a worker a batch that is either
 * full (maxBatch queries) or ripe (oldest query has waited
 * maxDelayUs). maxBatch = 1 degenerates to no batching: every query
 * dispatches immediately -- the latency-optimal, throughput-worst
 * policy.
 *
 * ## Sharding + work stealing
 *
 * One queue (mutex + condvar + deque) per serve lane. Producers route
 * each push to a shard with a cheap multiplicative hash of an arrival
 * sequence number -- so under N lanes the single-queue lock is split N
 * ways and producers on different shards never contend. Each consumer
 * pops its OWN shard; when that shard is dry it steals a READY batch
 * (full or ripe -- never an immature one, which would defeat deadline
 * batching) from a sibling, so one slow forward pass cannot strand
 * queued work behind an idle lane.
 *
 * ## Admission control + shedding (queueCap > 0)
 *
 * An unbounded queue turns overload into unbounded memory growth and
 * unbounded latency. With queueCap set, a push to a full shard sheds
 * exactly one request, chosen by policy:
 *
 *   RejectNewest  shed the incoming request -- unless a STRICTLY
 *                 lower-priority request is queued, in which case that
 *                 one (oldest such) is shed and the newcomer admitted;
 *   DropOldest    shed the oldest request of the lowest queued
 *                 priority class -- unless the incoming request's
 *                 priority is lower still, in which case it is shed
 *                 itself (a low-priority arrival never displaces
 *                 higher-priority queued work).
 *
 * Either way low-priority requests shed first, and the shed request is
 * completed immediately with ServeResult::Status::Shed -- never
 * silently dropped (a closed-loop client blocked in wait() must always
 * wake).
 *
 * ## Deadline expiry
 *
 * A request whose SloClass deadline passed while it queued is wasted
 * work: pop() completes it with Status::Expired instead of handing it
 * to the forward pass (expired requests do not count against the
 * batch it was forming).
 *
 * stop() wakes everyone; queued requests still drain (consumers keep
 * returning batches -- stealing across ALL shards -- until every
 * shard empties, then return 0). push() after stop() completes the
 * request with Status::Shutdown and returns false.
 */

#ifndef LAZYDP_SERVE_REQUEST_BATCHER_H
#define LAZYDP_SERVE_REQUEST_BATCHER_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "serve/serve_types.h"

namespace lazydp {

/** What to shed when a push finds its shard at queueCap. */
enum class ShedPolicy : std::uint8_t
{
    RejectNewest, //!< shed the arrival (unless a lower-prio victim queues)
    DropOldest,   //!< shed the oldest lowest-priority queued request
};

/** Micro-batching + admission policy (see file comment). */
struct BatchPolicy
{
    std::size_t maxBatch = 32;      //!< queries per micro-batch cap
    std::uint64_t maxDelayUs = 200; //!< deadline from first enqueue

    /** Per-shard queue-depth cap; 0 = unbounded (no admission control). */
    std::size_t queueCap = 0;

    /** Victim selection when a shard is at queueCap. */
    ShedPolicy shedPolicy = ShedPolicy::RejectNewest;
};

/** Cumulative batcher counters (monitoring; each is monotone). */
struct BatcherStats
{
    std::uint64_t accepted = 0; //!< pushes admitted into a queue
    std::uint64_t shed = 0;     //!< requests completed Shed (admission)
    std::uint64_t expired = 0;  //!< requests completed Expired (pop)
    std::uint64_t shutdown = 0; //!< pushes completed Shutdown (post-stop)
    std::uint64_t stolenBatches = 0; //!< batches popped off a sibling shard
};

/** Sharded, bounded, deadline-batching request queue set. */
class RequestBatcher
{
  public:
    /**
     * @param policy batching + admission policy
     * @param lanes number of shards == number of consumers (>= 1)
     */
    explicit RequestBatcher(const BatchPolicy &policy,
                            std::size_t lanes = 1);

    /**
     * Enqueue @p request on its hash-routed shard and stamp its
     * enqueue time + expiry instant (from request->slo, which the
     * caller sets beforehand).
     *
     * @return true if admitted; false if the request itself was shed
     *         (admission control) or rejected (after stop()). A false
     *         return ALWAYS means the request was already completed
     *         with Status::Shed / Status::Shutdown -- the caller never
     *         needs to complete it. A true return can still shed a
     *         DIFFERENT (queued, lower-priority or older) request.
     */
    bool push(PendingRequestPtr request);

    /**
     * Block until a batch is ready on @p lane's shard (or stolen from
     * a sibling), then move up to maxBatch live requests into @p out
     * (cleared first), in arrival order. Requests past their deadline
     * are completed Expired on the way and never returned.
     *
     * @return number of requests handed out; 0 only after stop() with
     *         EVERY shard empty (the consumer's exit signal)
     */
    std::size_t pop(std::size_t lane,
                    std::vector<PendingRequestPtr> &out);

    /** Single-shard convenience overload (lane 0). */
    std::size_t
    pop(std::vector<PendingRequestPtr> &out)
    {
        return pop(0, out);
    }

    /** Stop accepting pushes and wake every blocked consumer. */
    void stop();

    /** @return total queue depth (monitoring only, racy by nature). */
    std::size_t depth() const;

    /** @return queue depth of one shard (monitoring only). */
    std::size_t depth(std::size_t lane) const;

    /** @return number of shards (== consumer lanes). */
    std::size_t lanes() const { return shards_.size(); }

    /** @return a snapshot of the cumulative counters. */
    BatcherStats stats() const;

    /**
     * Shard the @p seq-th push routes to under @p lanes shards --
     * exposed so tests can pin routing determinism. Fibonacci
     * multiplicative hash: cheap, and decorrelates the low bits of a
     * sequential counter so bursts spread across shards.
     */
    static std::size_t
    routeFor(std::uint64_t seq, std::size_t lanes)
    {
        return static_cast<std::size_t>(
                   (seq * 0x9E3779B97F4A7C15ull) >> 33) %
               lanes;
    }

    const BatchPolicy &policy() const { return policy_; }

  private:
    struct Shard
    {
        mutable std::mutex mu;
        std::condition_variable cv;
        std::deque<PendingRequestPtr> queue;
    };

    /**
     * Move up to maxBatch live requests from @p queue into @p out,
     * diverting expired ones into @p expired (completed by the caller
     * OUTSIDE the shard lock). Caller holds the shard mutex.
     */
    void takeFrom(std::deque<PendingRequestPtr> &queue,
                  std::vector<PendingRequestPtr> &out,
                  std::vector<PendingRequestPtr> &expired);

    /**
     * Scan sibling shards of @p lane for work: with @p drainAll only
     * READY batches are taken (see file comment); with it, anything
     * queued (the stop()-drain sweep). Expired requests found on the
     * way are completed. @return true iff @p out gained requests.
     */
    bool steal(std::size_t lane, std::vector<PendingRequestPtr> &out,
               bool drainAll);

    /** Complete @p expired with Status::Expired and count them. */
    void completeExpired(std::vector<PendingRequestPtr> &expired);

    BatchPolicy policy_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::atomic<std::uint64_t> seq_{0}; //!< arrival counter (routing)
    std::atomic<bool> stopped_{false};

    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> shed_{0};
    std::atomic<std::uint64_t> expired_{0};
    std::atomic<std::uint64_t> shutdown_{0};
    std::atomic<std::uint64_t> stolen_{0};
};

} // namespace lazydp

#endif // LAZYDP_SERVE_REQUEST_BATCHER_H
