/**
 * @file
 * Versioned model snapshots: the read side of train-and-serve.
 *
 * The Trainer mutates one DlrmModel in place every iteration; serving
 * needs a CONSISTENT model for the whole lifetime of an inference
 * micro-batch. ModelSnapshotStore bridges the two with RCU-style
 * publication:
 *
 *  - publish() (single writer: the training thread) deep-copies the
 *    current weights into a fresh (or recycled) ModelSnapshot and swaps
 *    it into an std::atomic<std::shared_ptr<const ModelSnapshot>>.
 *    Copy-on-publish means the training step never waits for readers.
 *  - current() (any number of readers: the serve lanes) atomically
 *    loads the shared_ptr. A reader holds its snapshot for as long as
 *    it wants; the weights it sees can never change underneath it, and
 *    a snapshot's memory is reclaimed only after the last reader drops
 *    it (shared_ptr refcount = the RCU grace period).
 *
 * Consistency contract: every snapshot a reader can obtain was
 * published by a completed publish() call -- there are no torn or
 * partially-copied states reachable through current(), because the
 * copy finishes before the atomic swap. Version numbers are dense
 * (1, 2, 3, ...) and strictly increasing; a reader comparing versions
 * can therefore detect both staleness and update frequency.
 *
 * Two publication modes (SnapshotOptions::mode):
 *
 *  - Full (default): every publish deep-copies every parameter into a
 *    dense model. O(model size) per publish, but the snapshot is a
 *    self-contained dense model (weights() works; checkpoint-parity
 *    tests compare it bytewise).
 *  - Delta: O(dirty rows) per publish. MLP weights (kilobytes, fully
 *    dirty every iteration) are still copied outright; embedding
 *    tables (the gigabytes) are page-granular copy-on-write -- pages
 *    untouched since the previous published version (per the
 *    DirtyRowTracker the trainer threads in) are SHARED with it via
 *    refcounted TablePage handles, only dirty pages are
 *    re-materialized. Without a tracker (engines that update tables
 *    densely, or mutations outside training) every page is copied:
 *    the full-copy fallback is always correct, just not cheap.
 *    Optionally (sealPages) each materialized page is mprotect'ed
 *    read-only so a torn-write bug faults instead of corrupting
 *    serving.
 *
 * Retired snapshot shells and pages are recycled through a free-list
 * (SnapshotPool) instead of being freed: the custom shared_ptr deleter
 * runs AFTER the last reader's refcount release (an acquire/release
 * pair), and hand-off back to the writer goes through the pool mutex,
 * so -- unlike the subtly racy use_count()==1 probing this replaces --
 * a recycled buffer's refill is properly ordered after every prior
 * reader's last load.
 *
 * Privacy note (paper Section 3 threat model): mid-training LazyDP
 * weights carry *pending* noise, exactly like a saveModel() checkpoint
 * taken at the same iteration. A snapshot is a faithful copy of the
 * training state -- consumers inside the trust boundary (the serving
 * tier of the training system) may read it, but it is NOT a releasable
 * private artifact until finalize() has flushed pending noise.
 */

#ifndef LAZYDP_SERVE_SNAPSHOT_STORE_H
#define LAZYDP_SERVE_SNAPSHOT_STORE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "nn/dlrm.h"

// TSan-awareness: see SnapshotSlot below.
#if defined(__SANITIZE_THREAD__)
#define LAZYDP_TSAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LAZYDP_TSAN_ACTIVE 1
#endif
#endif

namespace lazydp {

class DirtyRowTracker;

/** How ModelSnapshotStore materializes a published version. */
enum class SnapshotMode
{
    Full, //!< dense deep copy of every parameter (O(model))
    Delta //!< page-granular copy-on-write tables (O(dirty rows))
};

/** Construction-time knobs of a ModelSnapshotStore. */
struct SnapshotOptions
{
    SnapshotMode mode = SnapshotMode::Full;

    /**
     * Rows per copy-on-write page (Delta mode). Must match the
     * DirtyRowTracker handed to publish. Smaller pages share more but
     * cost more handle bookkeeping per publish.
     */
    std::size_t pageRows = 256;

    /**
     * Delta mode: back pages with mmap and mprotect each one read-only
     * once filled, so any torn-write bug becomes a hard fault instead
     * of silent serving corruption.
     */
    bool sealPages = false;

    /** Free-list caps (retired buffers beyond these are freed). */
    std::size_t maxFreeSnapshots = 2;
    std::size_t maxFreePages = 4096;
};

/** Per-publish cost receipt (writer-side accounting). */
struct PublishReceipt
{
    double seconds = 0.0;           //!< wall time of this publish
    std::uint64_t rowsCopied = 0;   //!< embedding rows memcpy'd
    std::uint64_t pagesCopied = 0;  //!< pages re-materialized
    std::uint64_t pagesShared = 0;  //!< pages shared with the previous
                                    //!< version (pointer-identical)
};

/** Cumulative publish-side totals of one store. */
struct PublishTotals
{
    std::uint64_t publishes = 0;
    double seconds = 0.0;
    std::uint64_t rowsCopied = 0;
    std::uint64_t pagesCopied = 0;
    std::uint64_t pagesShared = 0;
    std::uint64_t snapshotsRecycled = 0; //!< shell free-list hits
    std::uint64_t pagesRecycled = 0;     //!< page free-list hits
};

/** One published, immutable-by-contract model version. */
struct ModelSnapshot
{
    /** Full-mode shell: dense tables, RNG init skipped. */
    explicit ModelSnapshot(const ModelConfig &config)
        : model(config, DlrmModel::UninitializedTables{})
    {
    }

    /** Delta-mode shell: paged tables, pages bound at publish. */
    ModelSnapshot(const ModelConfig &config, DlrmModel::PagedTables tag)
        : mode(SnapshotMode::Delta), model(config, tag)
    {
    }

    std::uint64_t version = 0;   //!< dense 1-based publication ordinal
    std::uint64_t iteration = 0; //!< global training iteration copied
    SnapshotMode mode = SnapshotMode::Full; //!< storage layout
    /**
     * Copy of the training model's parameters (dense in Full mode,
     * refcount-shared pages in Delta mode). Readers must use only the
     * const entry points (workspace forward). Mutable only during
     * publish(), before the snapshot becomes reachable.
     */
    DlrmModel model;
};

/**
 * Free-list of retired snapshot shells and table pages.
 *
 * Owned via shared_ptr by the store AND captured by the custom
 * deleters of everything the store publishes, so it outlives the store
 * for as long as any reader still holds a snapshot. The last reader's
 * shared_ptr release (an acquire/release refcount pair) runs the
 * deleter, which hands the buffer back through the pool mutex -- the
 * writer's refill of a recycled buffer is therefore ordered strictly
 * after every prior reader's last load. (This is the correct form of
 * the use_count()==1 probing an earlier revision rejected: probing has
 * no such ordering, reclamation does.)
 */
class SnapshotPool
{
  public:
    /** Apply the store's free-list caps. */
    void configure(std::size_t max_snapshots, std::size_t max_pages);

    /** @return a retired shell, or nullptr (caller allocates). */
    std::unique_ptr<ModelSnapshot> acquireSnapshot();

    /**
     * Park a retired shell (or free it beyond the cap). Unbinds all
     * page handles first so a pooled shell never pins pages newer
     * snapshots still share.
     */
    void retireSnapshot(std::unique_ptr<ModelSnapshot> s);

    /**
     * @return a retired page with capacity >= @p floats and matching
     * mmap backing, unsealed and ready to fill, or nullptr.
     */
    std::unique_ptr<TablePage> acquirePage(std::size_t floats,
                                           bool mmapped);

    /** Park a retired page (or free it beyond the cap). */
    void retirePage(std::unique_ptr<TablePage> p);

    /** @return free-list hit counters (under the pool mutex). */
    std::uint64_t snapshotsRecycled() const;
    std::uint64_t pagesRecycled() const;

  private:
    mutable std::mutex mu_;
    std::size_t maxSnapshots_ = 2;
    std::size_t maxPages_ = 4096;
    std::vector<std::unique_ptr<ModelSnapshot>> snapshots_;
    std::vector<std::unique_ptr<TablePage>> pages_;
    std::uint64_t snapshotsRecycled_ = 0;
    std::uint64_t pagesRecycled_ = 0;
};

/**
 * The store's atomic shared_ptr slot.
 *
 * Production builds use std::atomic<std::shared_ptr> -- libstdc++
 * implements it as a tagged-pointer spinlock, so readers never touch
 * an OS lock. Under ThreadSanitizer that implementation is a known
 * FALSE positive: _Sp_atomic guards its internal pointer handoff with
 * an atomic lock bit whose wait loop TSan cannot model as a
 * happens-before edge, so even a minimal store()/load() pair reports
 * a race (GCC 12, reproduced in isolation). TSan builds therefore
 * substitute a mutex around a plain shared_ptr -- identical
 * semantics and API, critical sections of a pointer copy only -- so
 * the REST of the serving path stays fully race-checked instead of
 * drowning in one library false positive.
 */
class SnapshotSlot
{
  public:
#if defined(LAZYDP_TSAN_ACTIVE)
    std::shared_ptr<const ModelSnapshot>
    load() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return ptr_;
    }

    void
    store(std::shared_ptr<const ModelSnapshot> next)
    {
        std::lock_guard<std::mutex> lock(mu_);
        ptr_ = std::move(next);
    }

  private:
    mutable std::mutex mu_;
    std::shared_ptr<const ModelSnapshot> ptr_;
#else
    std::shared_ptr<const ModelSnapshot>
    load() const
    {
        return ptr_.load();
    }

    void
    store(std::shared_ptr<const ModelSnapshot> next)
    {
        ptr_.store(std::move(next));
    }

  private:
    std::atomic<std::shared_ptr<const ModelSnapshot>> ptr_{nullptr};
#endif
};

/**
 * Single-writer / multi-reader snapshot exchange (see file comment).
 *
 * Writer API (publish) must be called from one thread at a time -- in
 * this repository, the thread driving Trainer::run. Reader API
 * (current / version) is wait-free for the writer and safe from any
 * thread.
 */
class ModelSnapshotStore
{
  public:
    /** Full-mode store with default options. */
    ModelSnapshotStore() : ModelSnapshotStore(SnapshotOptions{}) {}

    explicit ModelSnapshotStore(const SnapshotOptions &options);

    ModelSnapshotStore(const ModelSnapshotStore &) = delete;
    ModelSnapshotStore &operator=(const ModelSnapshotStore &) = delete;

    /**
     * Copy @p src 's parameters into a fresh-or-recycled buffer and
     * publish it as the next version. Readers never block this call;
     * this call never blocks on readers. Retired buffers are recycled
     * (or freed) when their last reader drops them (the shared_ptr
     * release IS the RCU grace period).
     *
     * Full mode copies everything and ignores @p dirty . Delta mode
     * copies the MLPs plus every table page @p dirty marks (all pages
     * when @p dirty is null -- the dense-engine fallback), shares the
     * rest with the previous version, then resets the tracker. The
     * tracker's page size must equal SnapshotOptions::pageRows and its
     * marks must cover every mutation since the previous publish.
     *
     * @param src model to copy (training model, between iterations)
     * @param iteration global training iteration the weights belong to
     * @param dirty rows mutated since the last publish (may be null)
     * @return the cost receipt of this publish
     */
    PublishReceipt publish(const DlrmModel &src, std::uint64_t iteration,
                           DirtyRowTracker *dirty = nullptr);

    const SnapshotOptions &options() const { return options_; }

    /**
     * @return cumulative publish costs. Writer-side accounting: call
     * from the publishing thread, or after it quiesced.
     */
    PublishTotals totals() const;

    /**
     * @return the latest published snapshot (nullptr before the first
     * publish). The returned shared_ptr keeps the snapshot alive for
     * as long as the caller holds it.
     */
    std::shared_ptr<const ModelSnapshot>
    current() const
    {
        return current_.load();
    }

    /** @return version of the latest completed publish (0 = none). */
    std::uint64_t
    version() const
    {
        return version_.load(std::memory_order_acquire);
    }

  private:
    /** @return a recycled-or-new shell matching @p src 's shape. */
    std::unique_ptr<ModelSnapshot> acquireShell(const DlrmModel &src);

    /** Wrap @p page so its release recycles it through pool_. */
    std::shared_ptr<const TablePage>
    wrapPage(std::unique_ptr<TablePage> page);

    /** Delta-mode table materialization; accounts into @p receipt . */
    void buildDeltaTables(const DlrmModel &src, ModelSnapshot &shell,
                          const ModelSnapshot *prev,
                          const DirtyRowTracker *dirty,
                          PublishReceipt &receipt);

    SnapshotOptions options_;
    std::shared_ptr<SnapshotPool> pool_;
    SnapshotSlot current_;
    std::atomic<std::uint64_t> version_{0};
    PublishTotals totals_; //!< writer-thread accounting
};

} // namespace lazydp

#endif // LAZYDP_SERVE_SNAPSHOT_STORE_H
