/**
 * @file
 * Versioned model snapshots: the read side of train-and-serve.
 *
 * The Trainer mutates one DlrmModel in place every iteration; serving
 * needs a CONSISTENT model for the whole lifetime of an inference
 * micro-batch. ModelSnapshotStore bridges the two with RCU-style
 * publication:
 *
 *  - publish() (single writer: the training thread) deep-copies the
 *    current weights into a fresh (or recycled) ModelSnapshot and swaps
 *    it into an std::atomic<std::shared_ptr<const ModelSnapshot>>.
 *    Copy-on-publish means the training step never waits for readers.
 *  - current() (any number of readers: the serve lanes) atomically
 *    loads the shared_ptr. A reader holds its snapshot for as long as
 *    it wants; the weights it sees can never change underneath it, and
 *    a snapshot's memory is reclaimed only after the last reader drops
 *    it (shared_ptr refcount = the RCU grace period).
 *
 * Consistency contract: every snapshot a reader can obtain was
 * published by a completed publish() call -- there are no torn or
 * partially-copied states reachable through current(), because the
 * copy finishes before the atomic swap. Version numbers are dense
 * (1, 2, 3, ...) and strictly increasing; a reader comparing versions
 * can therefore detect both staleness and update frequency.
 *
 * Privacy note (paper Section 3 threat model): mid-training LazyDP
 * weights carry *pending* noise, exactly like a saveModel() checkpoint
 * taken at the same iteration. A snapshot is a faithful copy of the
 * training state -- consumers inside the trust boundary (the serving
 * tier of the training system) may read it, but it is NOT a releasable
 * private artifact until finalize() has flushed pending noise.
 */

#ifndef LAZYDP_SERVE_SNAPSHOT_STORE_H
#define LAZYDP_SERVE_SNAPSHOT_STORE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "nn/dlrm.h"

// TSan-awareness: see SnapshotSlot below.
#if defined(__SANITIZE_THREAD__)
#define LAZYDP_TSAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LAZYDP_TSAN_ACTIVE 1
#endif
#endif

namespace lazydp {

/** One published, immutable-by-contract model version. */
struct ModelSnapshot
{
    /** @param config shape of the model this snapshot will replicate. */
    explicit ModelSnapshot(const ModelConfig &config)
        : model(config, DlrmModel::UninitializedTables{})
    {
    }

    std::uint64_t version = 0;   //!< dense 1-based publication ordinal
    std::uint64_t iteration = 0; //!< global training iteration copied
    /**
     * Deep copy of the training model's parameters. Readers must use
     * only the const entry points (workspace forward). Mutable only
     * during publish(), before the snapshot becomes reachable.
     */
    DlrmModel model;
};

/**
 * The store's atomic shared_ptr slot.
 *
 * Production builds use std::atomic<std::shared_ptr> -- libstdc++
 * implements it as a tagged-pointer spinlock, so readers never touch
 * an OS lock. Under ThreadSanitizer that implementation is a known
 * FALSE positive: _Sp_atomic guards its internal pointer handoff with
 * an atomic lock bit whose wait loop TSan cannot model as a
 * happens-before edge, so even a minimal store()/load() pair reports
 * a race (GCC 12, reproduced in isolation). TSan builds therefore
 * substitute a mutex around a plain shared_ptr -- identical
 * semantics and API, critical sections of a pointer copy only -- so
 * the REST of the serving path stays fully race-checked instead of
 * drowning in one library false positive.
 */
class SnapshotSlot
{
  public:
#if defined(LAZYDP_TSAN_ACTIVE)
    std::shared_ptr<const ModelSnapshot>
    load() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return ptr_;
    }

    void
    store(std::shared_ptr<const ModelSnapshot> next)
    {
        std::lock_guard<std::mutex> lock(mu_);
        ptr_ = std::move(next);
    }

  private:
    mutable std::mutex mu_;
    std::shared_ptr<const ModelSnapshot> ptr_;
#else
    std::shared_ptr<const ModelSnapshot>
    load() const
    {
        return ptr_.load();
    }

    void
    store(std::shared_ptr<const ModelSnapshot> next)
    {
        ptr_.store(std::move(next));
    }

  private:
    std::atomic<std::shared_ptr<const ModelSnapshot>> ptr_{nullptr};
#endif
};

/**
 * Single-writer / multi-reader snapshot exchange (see file comment).
 *
 * Writer API (publish) must be called from one thread at a time -- in
 * this repository, the thread driving Trainer::run. Reader API
 * (current / version) is wait-free for the writer and safe from any
 * thread.
 */
class ModelSnapshotStore
{
  public:
    ModelSnapshotStore() = default;

    ModelSnapshotStore(const ModelSnapshotStore &) = delete;
    ModelSnapshotStore &operator=(const ModelSnapshotStore &) = delete;

    /**
     * Deep-copy @p src 's parameters into a fresh buffer and publish
     * it as the next version. Readers never block this call; this call
     * never blocks on readers. Retired snapshots are freed when their
     * last reader drops them (the shared_ptr release IS the RCU grace
     * period).
     *
     * @param src model to copy (training model, between iterations)
     * @param iteration global training iteration the weights belong to
     */
    void publish(const DlrmModel &src, std::uint64_t iteration);

    /**
     * @return the latest published snapshot (nullptr before the first
     * publish). The returned shared_ptr keeps the snapshot alive for
     * as long as the caller holds it.
     */
    std::shared_ptr<const ModelSnapshot>
    current() const
    {
        return current_.load();
    }

    /** @return version of the latest completed publish (0 = none). */
    std::uint64_t
    version() const
    {
        return version_.load(std::memory_order_acquire);
    }

  private:
    SnapshotSlot current_;
    std::atomic<std::uint64_t> version_{0};
};

} // namespace lazydp

#endif // LAZYDP_SERVE_SNAPSHOT_STORE_H
