#include "serve/load_generator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/macros.h"

namespace lazydp {

namespace {

using Clock = PendingRequest::Clock;

/** Merge per-request versions into the report's min/max. */
void
foldVersion(LoadReport &report, std::uint64_t version)
{
    if (version == 0)
        return; // never scored: no version observed
    if (report.minVersion == 0 || version < report.minVersion)
        report.minVersion = version;
    if (version > report.maxVersion)
        report.maxVersion = version;
}

/** SplitMix64 finalizer: the id -> class-assignment hash. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/**
 * Instantaneous arrival rate at run fraction @p f in [0, 1) -- the
 * scenario's rate profile around the base qps.
 */
double
rateAt(const LoadOptions &o, double f)
{
    switch (o.scenario) {
    case Scenario::Diurnal: {
        // Day curve: trough 0.25x at the run edges, peak 1x mid-run.
        const double s = std::sin(M_PI * f);
        return o.qps * (0.25 + 0.75 * s * s);
    }
    case Scenario::FlashCrowd:
        // Burst window over the middle fifth of the run.
        return (f >= 0.4 && f < 0.6) ? o.qps * o.flashMultiplier
                                     : o.qps;
    case Scenario::Steady:
    case Scenario::SkewDrift:
    case Scenario::MixedClass:
        return o.qps;
    }
    return o.qps;
}

/** One request's measured outcome (folded into the report). */
struct Sample
{
    ServeResult::Status status = ServeResult::Status::Ok;
    double latency = 0.0; //!< seconds; valid for every status
    std::uint64_t version = 0;
    bool low = false; //!< low-priority class member
};

} // namespace

Scenario
scenarioFromString(const std::string &name)
{
    if (name == "steady")
        return Scenario::Steady;
    if (name == "diurnal")
        return Scenario::Diurnal;
    if (name == "flash")
        return Scenario::FlashCrowd;
    if (name == "drift")
        return Scenario::SkewDrift;
    if (name == "mixed")
        return Scenario::MixedClass;
    fatal("unknown scenario '", name,
          "' (want steady|diurnal|flash|drift|mixed)");
}

const char *
scenarioName(Scenario s)
{
    switch (s) {
    case Scenario::Steady: return "steady";
    case Scenario::Diurnal: return "diurnal";
    case Scenario::FlashCrowd: return "flash";
    case Scenario::SkewDrift: return "drift";
    case Scenario::MixedClass: return "mixed";
    }
    return "?";
}

LoadGenerator::LoadGenerator(ServeEngine &engine,
                             const ModelConfig &config,
                             const LoadOptions &options)
    : engine_(engine), config_(config), options_(options)
{
    LAZYDP_ASSERT(options_.requests > 0, "no requests to issue");
    LAZYDP_ASSERT(options_.qps > 0.0 || options_.concurrency >= 1,
                  "closed loop needs at least one client");
    LAZYDP_ASSERT(options_.lowFraction >= 0.0 &&
                      options_.lowFraction <= 1.0,
                  "lowFraction must be in [0, 1]");
    lowFraction_ = options_.lowFraction;
    if (options_.scenario == Scenario::MixedClass &&
        lowFraction_ == 0.0)
        lowFraction_ = 0.5;
    generators_.reserve(config_.numTables);
    for (std::size_t t = 0; t < config_.numTables; ++t)
        generators_.emplace_back(options_.access,
                                 config_.rowsForTable(t));
}

bool
LoadGenerator::isLow(std::uint64_t id) const
{
    return lowFraction_ > 0.0 &&
           static_cast<double>(mix64(id ^ options_.seed) >> 11) *
                   0x1.0p-53 <
               lowFraction_;
}

SloClass
LoadGenerator::sloFor(std::uint64_t id) const
{
    return isLow(id) ? options_.lowSlo : options_.slo;
}

ServeQuery
LoadGenerator::makeQuery(std::uint64_t id) const
{
    // Pure in (seed, id): golden-splat the id into the stream seed so
    // neighbouring ids get decorrelated streams.
    Xoshiro256 rng(options_.seed * 0x9E3779B97F4A7C15ull + id + 1);
    ServeQuery q;
    q.dense.resize(config_.numDense);
    for (auto &d : q.dense)
        d = static_cast<float>(rng.nextDouble() * 2.0 - 1.0);
    q.indices.resize(config_.numTables * config_.pooling);
    for (std::size_t t = 0; t < config_.numTables; ++t) {
        const std::uint64_t rows = config_.rowsForTable(t);
        // SkewDrift: the hot set rotates through half the id space
        // over the run, so row popularity is non-stationary while the
        // marginal skew (Zipf slope etc.) is preserved.
        const std::uint64_t rot =
            options_.scenario == Scenario::SkewDrift
                ? (id * (rows / 2)) / options_.requests
                : 0;
        for (std::size_t s = 0; s < config_.pooling; ++s) {
            const std::uint64_t draw = generators_[t].draw(rng);
            q.indices[t * config_.pooling + s] =
                static_cast<std::uint32_t>((draw + rot) % rows);
        }
    }
    return q;
}

std::vector<double>
LoadGenerator::arrivalOffsets(const LoadOptions &options)
{
    LAZYDP_ASSERT(options.qps > 0.0,
                  "arrival offsets need an open-loop rate");
    std::vector<double> offsets(options.requests);
    if (options.scenario == Scenario::Steady ||
        options.scenario == Scenario::SkewDrift ||
        options.scenario == Scenario::MixedClass) {
        // Constant rate: each offset is computed directly from the
        // absolute request id -- zero accumulated error by
        // construction (the drift regression test pins this).
        for (std::uint64_t id = 0; id < options.requests; ++id)
            offsets[id] =
                static_cast<double>(id) / options.qps;
        return offsets;
    }
    // Rate-modulated profiles: integrate 1/rate over the PLANNED
    // schedule (pure arithmetic, done before the clock starts -- the
    // sum carries only double rounding, about 1e-16 relative per
    // term, not sleep wake-up jitter).
    double t = 0.0;
    for (std::uint64_t id = 0; id < options.requests; ++id) {
        offsets[id] = t;
        const double f = static_cast<double>(id) /
                         static_cast<double>(options.requests);
        t += 1.0 / rateAt(options, f);
    }
    return offsets;
}

LoadReport
LoadGenerator::run()
{
    return options_.qps > 0.0 ? runOpen() : runClosed();
}

namespace {

/** Fold id-indexed samples into the final report. */
LoadReport
summarize(const std::vector<Sample> &samples, double wall,
          const LoadOptions &options, const SloClass &lowSlo)
{
    LoadReport report;
    report.completed = samples.size();
    report.wallSeconds = wall;

    LoadReport::ClassStats main;
    main.priority = options.slo.priority;
    main.deadlineUs = options.slo.deadlineUs;
    LoadReport::ClassStats low;
    low.priority = lowSlo.priority;
    low.deadlineUs = lowSlo.deadlineUs;

    std::vector<double> okLatencies;
    okLatencies.reserve(samples.size());
    for (const Sample &s : samples) {
        LoadReport::ClassStats &cls = s.low ? low : main;
        ++cls.issued;
        const std::uint64_t deadlineUs =
            s.low ? lowSlo.deadlineUs : options.slo.deadlineUs;
        switch (s.status) {
        case ServeResult::Status::Ok:
            ++report.ok;
            ++cls.ok;
            okLatencies.push_back(s.latency);
            if (deadlineUs == 0 ||
                s.latency <= static_cast<double>(deadlineUs) * 1e-6) {
                ++report.attained;
                ++cls.attained;
            }
            break;
        case ServeResult::Status::Shed:
            ++report.shed;
            ++cls.shed;
            break;
        case ServeResult::Status::Expired:
            ++report.expired;
            ++cls.expired;
            break;
        case ServeResult::Status::Shutdown:
            ++report.shutdown;
            ++cls.shutdown;
            break;
        }
        foldVersion(report, s.version);
    }
    report.latency = stats::computePercentiles(std::move(okLatencies));
    report.classes.push_back(main);
    if (low.issued > 0)
        report.classes.push_back(low);
    return report;
}

} // namespace

LoadReport
LoadGenerator::runClosed()
{
    const std::size_t clients =
        static_cast<std::size_t>(std::min<std::uint64_t>(
            options_.concurrency, options_.requests));
    std::atomic<std::uint64_t> next{0};
    // Id-indexed so clients can write without coordination: ids are
    // unique, so each slot has exactly one writer.
    std::vector<Sample> samples(options_.requests);
    std::vector<float> scores(
        options_.collectScores ? options_.requests : 0);
    std::vector<std::thread> threads;
    threads.reserve(clients);

    const auto start = Clock::now();
    for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([this, &next, &samples, &scores] {
            std::uint64_t id;
            while ((id = next.fetch_add(1)) < options_.requests) {
                auto request = engine_.submit(makeQuery(id), sloFor(id));
                const ServeResult &r = request->wait();
                Sample &s = samples[id];
                s.status = r.status;
                s.latency = request->latencySeconds();
                s.version = r.version;
                s.low = isLow(id);
                if (options_.collectScores)
                    scores[id] = r.score;
            }
        });
    }
    for (auto &t : threads)
        t.join();
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();

    LoadReport report =
        summarize(samples, wall, options_, options_.lowSlo);
    report.meanBatch = engine_.stats().meanBatch();
    report.scores = std::move(scores);
    return report;
}

LoadReport
LoadGenerator::runOpen()
{
    const std::vector<double> offsets = arrivalOffsets(options_);
    std::vector<PendingRequestPtr> inflight(options_.requests);
    std::vector<Clock::time_point> scheduled(options_.requests);

    // Pre-generate every query (pure in (seed, id)) BEFORE the clock
    // starts: at high qps the RNG dense fill + Zipf rejection draws
    // would otherwise run on the timing-critical dispatch path and
    // inflate the measured tail with load-generator overhead.
    std::vector<ServeQuery> queries;
    queries.reserve(options_.requests);
    for (std::uint64_t id = 0; id < options_.requests; ++id)
        queries.push_back(makeQuery(id));

    // Dispatcher: fixed arrival schedule, independent of completions.
    // Each scheduled instant is start + the PRECOMPUTED absolute
    // offset -- never last-wakeup + interval, which accumulates both
    // duration truncation and sleep overshoot into phantom spare
    // capacity (quietly under-reporting coordinated-omission tails).
    const auto start = Clock::now();
    for (std::uint64_t id = 0; id < options_.requests; ++id) {
        scheduled[id] =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(offsets[id]));
        std::this_thread::sleep_until(scheduled[id]);
        inflight[id] =
            engine_.submit(std::move(queries[id]), sloFor(id));
    }

    std::vector<Sample> samples(options_.requests);
    std::vector<float> scores(
        options_.collectScores ? options_.requests : 0);
    for (std::uint64_t id = 0; id < options_.requests; ++id) {
        const ServeResult &r = inflight[id]->wait();
        Sample &s = samples[id];
        s.status = r.status;
        // Coordinated-omission-safe: measure from the intended arrival
        // time, so dispatcher lag counts against the tail.
        s.latency = std::chrono::duration<double>(
                        inflight[id]->completedAt() - scheduled[id])
                        .count();
        s.version = r.version;
        s.low = isLow(id);
        if (options_.collectScores)
            scores[id] = r.score;
    }
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();

    LoadReport report =
        summarize(samples, wall, options_, options_.lowSlo);
    report.meanBatch = engine_.stats().meanBatch();
    report.scores = std::move(scores);
    return report;
}

} // namespace lazydp
