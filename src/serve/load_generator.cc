#include "serve/load_generator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "common/macros.h"

namespace lazydp {

namespace {

using Clock = PendingRequest::Clock;

/** Merge per-request versions into the report's min/max. */
void
foldVersion(LoadReport &report, std::uint64_t version)
{
    if (report.minVersion == 0 || version < report.minVersion)
        report.minVersion = version;
    if (version > report.maxVersion)
        report.maxVersion = version;
}

} // namespace

LoadGenerator::LoadGenerator(ServeEngine &engine,
                             const ModelConfig &config,
                             const LoadOptions &options)
    : engine_(engine), config_(config), options_(options)
{
    LAZYDP_ASSERT(options_.requests > 0, "no requests to issue");
    LAZYDP_ASSERT(options_.qps > 0.0 || options_.concurrency >= 1,
                  "closed loop needs at least one client");
    generators_.reserve(config_.numTables);
    for (std::size_t t = 0; t < config_.numTables; ++t)
        generators_.emplace_back(options_.access,
                                 config_.rowsForTable(t));
}

ServeQuery
LoadGenerator::makeQuery(std::uint64_t id) const
{
    // Pure in (seed, id): golden-splat the id into the stream seed so
    // neighbouring ids get decorrelated streams.
    Xoshiro256 rng(options_.seed * 0x9E3779B97F4A7C15ull + id + 1);
    ServeQuery q;
    q.dense.resize(config_.numDense);
    for (auto &d : q.dense)
        d = static_cast<float>(rng.nextDouble() * 2.0 - 1.0);
    q.indices.resize(config_.numTables * config_.pooling);
    for (std::size_t t = 0; t < config_.numTables; ++t)
        for (std::size_t s = 0; s < config_.pooling; ++s)
            q.indices[t * config_.pooling + s] =
                generators_[t].draw(rng);
    return q;
}

LoadReport
LoadGenerator::run()
{
    return options_.qps > 0.0 ? runOpen() : runClosed();
}

LoadReport
LoadGenerator::runClosed()
{
    const std::size_t clients =
        static_cast<std::size_t>(std::min<std::uint64_t>(
            options_.concurrency, options_.requests));
    std::atomic<std::uint64_t> next{0};
    std::vector<std::vector<double>> latencies(clients);
    std::vector<std::vector<std::uint64_t>> versions(clients);
    // Id-indexed so clients can write without coordination: ids are
    // unique, so each slot has exactly one writer.
    std::vector<float> scores(
        options_.collectScores ? options_.requests : 0);
    std::vector<std::thread> threads;
    threads.reserve(clients);

    const auto start = Clock::now();
    for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([this, c, &next, &latencies, &versions,
                              &scores] {
            std::uint64_t id;
            while ((id = next.fetch_add(1)) < options_.requests) {
                auto request = engine_.submit(makeQuery(id));
                LAZYDP_ASSERT(request != nullptr,
                              "engine stopped under load");
                const ServeResult &r = request->wait();
                latencies[c].push_back(request->latencySeconds());
                versions[c].push_back(r.version);
                if (options_.collectScores)
                    scores[id] = r.score;
            }
        });
    }
    for (auto &t : threads)
        t.join();
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();

    LoadReport report;
    std::vector<double> all;
    all.reserve(options_.requests);
    for (std::size_t c = 0; c < clients; ++c) {
        all.insert(all.end(), latencies[c].begin(), latencies[c].end());
        for (const std::uint64_t v : versions[c])
            foldVersion(report, v);
    }
    report.completed = all.size();
    report.wallSeconds = wall;
    report.latency = stats::computePercentiles(std::move(all));
    report.meanBatch = engine_.stats().meanBatch();
    report.scores = std::move(scores);
    return report;
}

LoadReport
LoadGenerator::runOpen()
{
    const auto interval = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(1.0 / options_.qps));
    std::vector<PendingRequestPtr> inflight(options_.requests);
    std::vector<Clock::time_point> scheduled(options_.requests);

    // Pre-generate every query (pure in (seed, id)) BEFORE the clock
    // starts: at high qps the RNG dense fill + Zipf rejection draws
    // would otherwise run on the timing-critical dispatch path and
    // inflate the measured tail with load-generator overhead.
    std::vector<ServeQuery> queries;
    queries.reserve(options_.requests);
    for (std::uint64_t id = 0; id < options_.requests; ++id)
        queries.push_back(makeQuery(id));

    // Dispatcher: fixed arrival schedule, independent of completions.
    const auto start = Clock::now();
    for (std::uint64_t id = 0; id < options_.requests; ++id) {
        scheduled[id] = start + interval * id;
        std::this_thread::sleep_until(scheduled[id]);
        inflight[id] = engine_.submit(std::move(queries[id]));
        LAZYDP_ASSERT(inflight[id] != nullptr,
                      "engine stopped under load");
    }

    LoadReport report;
    if (options_.collectScores)
        report.scores.resize(options_.requests);
    std::vector<double> latencies;
    latencies.reserve(options_.requests);
    for (std::uint64_t id = 0; id < options_.requests; ++id) {
        const ServeResult &r = inflight[id]->wait();
        if (options_.collectScores)
            report.scores[id] = r.score;
        // Coordinated-omission-safe: measure from the intended arrival
        // time, so dispatcher lag counts against the tail.
        latencies.push_back(std::chrono::duration<double>(
                                inflight[id]->completedAt() -
                                scheduled[id])
                                .count());
        foldVersion(report, r.version);
    }
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();

    report.completed = options_.requests;
    report.wallSeconds = wall;
    report.latency = stats::computePercentiles(std::move(latencies));
    report.meanBatch = engine_.stats().meanBatch();
    return report;
}

} // namespace lazydp
