#include "serve/isolation_governor.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "common/macros.h"
#include "obs/metrics.h"
#include "obs/stats_sampler.h"
#include "obs/trace.h"

namespace lazydp {

namespace {

/** Registry mirrors of the governor decision counters. */
struct GovernorMetrics
{
    obs::MetricId windows;
    obs::MetricId engagements;
    obs::MetricId engaged; //!< gauge: 1 while the throttle is on
};

const GovernorMetrics &
governorMetrics()
{
    static const GovernorMetrics ids = {
        obs::internMetric("governor.windows",
                          obs::MetricKind::Counter),
        obs::internMetric("governor.engagements",
                          obs::MetricKind::Counter),
        obs::internMetric("governor.engaged", obs::MetricKind::Gauge),
    };
    return ids;
}

} // namespace

IsolationPolicy
parseIsolationPolicy(const std::string &name)
{
    if (name == "none")
        return IsolationPolicy::None;
    if (name == "pin")
        return IsolationPolicy::Pin;
    if (name == "throttle")
        return IsolationPolicy::Throttle;
    if (name == "pin+throttle")
        return IsolationPolicy::PinThrottle;
    fatal("unknown isolation policy '", name,
          "' (expected none|pin|throttle|pin+throttle)");
}

const char *
isolationPolicyName(IsolationPolicy policy)
{
    switch (policy) {
    case IsolationPolicy::None: return "none";
    case IsolationPolicy::Pin: return "pin";
    case IsolationPolicy::Throttle: return "throttle";
    case IsolationPolicy::PinThrottle: return "pin+throttle";
    }
    return "?";
}

AttainmentSample
windowAttainment(const ServeStats &prev, const ServeStats &cur)
{
    AttainmentSample out;
    // Cumulative counters are monotone; guard against a sampler handing
    // back stale/reset stats rather than underflowing.
    const std::uint64_t served =
        cur.served >= prev.served ? cur.served - prev.served : 0;
    const std::uint64_t expired =
        cur.expired >= prev.expired ? cur.expired - prev.expired : 0;
    const std::uint64_t attained =
        cur.okDeadline >= prev.okDeadline
            ? cur.okDeadline - prev.okDeadline
            : 0;
    out.accepted = served + expired;
    out.attained = std::min(attained, out.accepted);
    if (out.accepted == 0) {
        // Total overload (everything shed) or an idle tier: there is no
        // deadline evidence either way. 0 + noTraffic, never NaN -- a
        // NaN here poisons every downstream comparison (controller
        // thresholds, CI gates) because NaN > x is false for all x.
        out.noTraffic = true;
        out.attainment = 0.0;
        return out;
    }
    out.attainment = static_cast<double>(out.attained) /
                     static_cast<double>(out.accepted);
    return out;
}

HysteresisController::HysteresisController(double engage_below,
                                           double release_above)
    : engageBelow_(engage_below), releaseAbove_(release_above)
{
    LAZYDP_ASSERT(engage_below <= release_above,
                  "hysteresis band is inverted");
}

bool
HysteresisController::update(const AttainmentSample &sample)
{
    if (sample.noTraffic) {
        // No completed-accepted traffic: nothing to protect. Holding
        // the throttle through an idle spell would starve training for
        // no serve-side benefit.
        engaged_ = false;
        return engaged_;
    }
    if (engaged_) {
        if (sample.attainment >= releaseAbove_)
            engaged_ = false;
    } else {
        if (sample.attainment < engageBelow_)
            engaged_ = true;
    }
    return engaged_;
}

TokenBucket::TokenBucket(double rate, double capacity)
    : rate_(rate), capacity_(std::max(capacity, 1.0)),
      tokens_(std::max(capacity, 1.0))
{
    LAZYDP_ASSERT(rate > 0.0, "token rate must be positive");
}

double
TokenBucket::acquireDelaySeconds(double now_seconds)
{
    if (!primed_) {
        primed_ = true;
        last_ = now_seconds;
    }
    const double elapsed = std::max(0.0, now_seconds - last_);
    last_ = now_seconds;
    tokens_ = std::min(capacity_, tokens_ + elapsed * rate_);
    tokens_ -= 1.0;
    if (tokens_ >= 0.0)
        return 0.0;
    // The debt IS the pause: after sleeping -tokens_/rate_ seconds the
    // bucket is exactly empty again, so a steady caller settles at
    // `rate_` acquisitions per second.
    return -tokens_ / rate_;
}

void
TokenBucket::reset()
{
    tokens_ = capacity_;
    primed_ = false;
}

void
TokenBucket::drain()
{
    tokens_ = 0.0;
    primed_ = false;
}

IsolationGovernor::IsolationGovernor(std::function<ServeStats()> sampler,
                                     const GovernorOptions &options)
    : sampler_(std::move(sampler)), options_(options),
      controller_(options.engageBelow, options.releaseAbove),
      bucket_(options.throttledItersPerSec, options.burstIters)
{
    LAZYDP_ASSERT(sampler_ != nullptr, "governor needs a stats source");
    LAZYDP_ASSERT(options_.windowUs > 0, "window must be positive");
    prev_ = sampler_();
    if (options_.startSampler)
        thread_ = std::thread([this] { samplerLoop(); });
}

IsolationGovernor::~IsolationGovernor() { stop(); }

void
IsolationGovernor::stop()
{
    if (stopping_.exchange(true))
        return;
    // Release the trainer first: a gate sleeping on an engaged
    // throttle should not serve out a pause for a governor that is
    // going away.
    engaged_.store(false, std::memory_order_relaxed);
    wake_.notify_all();
    if (thread_.joinable())
        thread_.join();
}

void
IsolationGovernor::samplerLoop()
{
    obs::traceSetThreadName("governor");
    while (!stopping_.load(std::memory_order_relaxed)) {
        {
            std::unique_lock<std::mutex> lock(wakeMu_);
            wake_.wait_for(lock,
                           std::chrono::microseconds(options_.windowUs),
                           [this] {
                               return stopping_.load(
                                   std::memory_order_relaxed);
                           });
        }
        if (stopping_.load(std::memory_order_relaxed))
            return;
        sampleOnce();
    }
}

void
IsolationGovernor::sampleOnce()
{
    updateWith(sampler_());
}

void
IsolationGovernor::updateWith(const ServeStats &cur)
{
    // A stopped governor has already released the trainer for good; a
    // late attached-sampler scrape must not re-engage it.
    if (stopping_.load(std::memory_order_relaxed))
        return;
    bool was_engaged;
    bool now_engaged;
    AttainmentSample sample;
    {
        std::lock_guard<std::mutex> lock(mu_);
        sample = windowAttainment(prev_, cur);
        prev_ = cur;
        was_engaged = controller_.engaged();
        now_engaged = controller_.update(sample);
        ++stats_.windows;
        if (sample.noTraffic)
            ++stats_.noTrafficWindows;
        stats_.lastAttainment = sample.attainment;
        stats_.engaged = now_engaged;
        if (!was_engaged && now_engaged) {
            ++stats_.engagements;
            // Engagement == attainment is already suffering: start with
            // an EMPTY bucket so the very next gated iteration pays a
            // pause. A full burst here would hand every engagement one
            // free iteration -- and an engagement shorter than one
            // training iteration (flash spikes vs. ~100ms iterations)
            // would then never throttle anything. Credit left from a
            // previous engagement is deliberately discarded too.
            bucket_.drain();
        }
        engaged_.store(now_engaged, std::memory_order_relaxed);
    }
    // Telemetry outside mu_: the gate contends on that mutex.
    if (obs::metricsEnabled()) {
        const GovernorMetrics &ids = governorMetrics();
        obs::counterAdd(ids.windows);
        if (!was_engaged && now_engaged)
            obs::counterAdd(ids.engagements);
        obs::gaugeSet(ids.engaged, now_engaged ? 1 : 0);
    }
    if (obs::traceEnabled()) {
        // Attainment as per-mille: trace args are integral. One
        // "window" instant per decision draws the attainment signal
        // the hysteresis controller saw on the Perfetto timeline (and
        // guarantees the governor category appears in any traced run,
        // which the CI trace gate requires); engage/release mark the
        // transitions.
        const std::uint64_t attainPm =
            static_cast<std::uint64_t>(sample.attainment * 1000.0);
        obs::traceInstant(obs::TraceCat::Governor, "window",
                          {"attainment_pm", attainPm},
                          {"engaged", now_engaged ? 1u : 0u});
        if (was_engaged != now_engaged)
            obs::traceInstant(obs::TraceCat::Governor,
                              now_engaged ? "engage" : "release",
                              {"attainment_pm", attainPm});
    }
}

void
IsolationGovernor::attachTo(obs::StatsSampler &sampler)
{
    sampler.addObserver([this](const obs::MetricsSnapshot &snap) {
        updateWith(serveStatsFromSnapshot(snap));
    });
}

ServeStats
serveStatsFromSnapshot(const obs::MetricsSnapshot &snap)
{
    ServeStats out;
    out.served = snap.counter("serve.requests_served");
    out.okDeadline = snap.counter("serve.deadline_ok");
    out.expired = snap.counter("serve.requests_expired");
    out.shed = snap.counter("serve.requests_shed");
    out.shutdown = snap.counter("serve.requests_shutdown");
    out.batches = snap.counter("serve.batches");
    out.stolenBatches = snap.counter("serve.batches_stolen");
    return out;
}

std::function<void()>
IsolationGovernor::gate()
{
    return [this] { runGate(); };
}

void
IsolationGovernor::runGate()
{
    // Fast path: disengaged throttle costs one relaxed load per
    // training iteration.
    if (!engaged_.load(std::memory_order_relaxed))
        return;
    double delay;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const double now =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count();
        delay = bucket_.acquireDelaySeconds(now);
        if (delay > 0.0) {
            ++stats_.gatePauses;
            stats_.pausedSeconds += delay;
        }
    }
    if (delay > 0.0)
        std::this_thread::sleep_for(std::chrono::duration<double>(delay));
}

GovernorStats
IsolationGovernor::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
applyCorePinning(ThreadPool &pool, const CpuSet &train_cores,
                 const CpuSet &serve_cores)
{
    // Train side: the loop-dispatch workers, every train-owned lane
    // (pipeline 0, replicas 1..3, spares, tier prefetch 7), and the
    // calling thread, which participates in every parallelFor dispatch
    // and runs apply() itself.
    pool.setWorkerAffinity(train_cores);
    pool.reserveLanes(0, ThreadPool::kServeLaneBase, train_cores);
    pinCurrentThread(train_cores);
    // Serve side: every current and future serve lane.
    pool.reserveLanes(ThreadPool::kServeLaneBase, ThreadPool::kMaxLanes,
                      serve_cores);
}

CoreSplit
defaultCoreSplit(std::size_t serve_threads)
{
    CoreSplit split;
    const std::size_t n = hardwareThreads();
    if (n < 2) {
        warn("cpu pinning requested on a single-CPU host: nothing to "
             "split, isolation falls back to throttling only");
        return split;
    }
    const std::size_t serve =
        std::max<std::size_t>(1, std::min(serve_threads, n / 2));
    for (std::size_t cpu = 0; cpu < n - serve; ++cpu)
        split.train.add(cpu);
    for (std::size_t cpu = n - serve; cpu < n; ++cpu)
        split.serve.add(cpu);
    return split;
}

} // namespace lazydp
