/**
 * @file
 * Train-vs-serve isolation: CPU placement policies plus an
 * attainment-driven trainer throttle.
 *
 * The serving tier shares one process (and one ThreadPool) with the
 * trainer, and the serve+train bench legs show the trainer stealing
 * tail latency from the serve lanes. This module closes the loop in
 * two composable ways, selected by IsolationPolicy:
 *
 *  - **pin**: static CPU placement. The loop-dispatch workers, the
 *    train-side lanes (pipeline, replicas, tier prefetch) and the
 *    calling train thread are pinned to one core set; the serve lanes
 *    are reserved onto a disjoint set (ThreadPool::reserveLanes), so
 *    a training burst can no longer preempt a scoring worker.
 *
 *  - **throttle**: dynamic feedback. An IsolationGovernor samples the
 *    engine's cumulative ServeStats on a fixed cadence, forms a
 *    sliding-window SLO attainment signal (per-window deltas, see
 *    windowAttainment), and runs it through a hysteresis controller:
 *    attainment below `engageBelow` engages the throttle, recovery
 *    above `releaseAbove` releases it. While engaged, the trainer's
 *    between-iterations hook (TrainOptions::iterationGate) is paced by
 *    a token bucket to at most `throttledItersPerSec` iterations per
 *    second -- the pause happens with no training state in flight, so
 *    the trained model stays bit-identical to an unthrottled run
 *    (asserted by tests/serve/isolation_governor_test.cc).
 *
 * The pure pieces (windowAttainment, HysteresisController, TokenBucket)
 * are exposed for unit testing with fake stats and fake clocks.
 */

#ifndef LAZYDP_SERVE_ISOLATION_GOVERNOR_H
#define LAZYDP_SERVE_ISOLATION_GOVERNOR_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "common/cpu_set.h"
#include "common/thread_pool.h"
#include "serve/serve_engine.h"

namespace lazydp {

namespace obs {
struct MetricsSnapshot;
class StatsSampler;
} // namespace obs

/** How the trainer and the serve lanes are kept out of each other's
 *  way. Pin and throttle compose (see file comment). */
enum class IsolationPolicy : std::uint8_t
{
    None = 0,    //!< shared cores, unthrottled trainer (the baseline)
    Pin,         //!< disjoint train/serve core sets, no feedback
    Throttle,    //!< attainment-driven trainer throttle, shared cores
    PinThrottle, //!< both
};

/** Parse "none" / "pin" / "throttle" / "pin+throttle" (fatal on
 *  anything else). */
IsolationPolicy parseIsolationPolicy(const std::string &name);

/** @return the canonical CLI name of @p policy . */
const char *isolationPolicyName(IsolationPolicy policy);

/** @return true when @p policy pins cores. */
inline bool
policyPins(IsolationPolicy policy)
{
    return policy == IsolationPolicy::Pin ||
           policy == IsolationPolicy::PinThrottle;
}

/** @return true when @p policy throttles the trainer. */
inline bool
policyThrottles(IsolationPolicy policy)
{
    return policy == IsolationPolicy::Throttle ||
           policy == IsolationPolicy::PinThrottle;
}

/**
 * One sliding-window attainment observation, formed from two cumulative
 * ServeStats samples (window = the delta between them).
 *
 * Attainment is defined over **completed-accepted** requests: those the
 * admission controller let in AND that reached a terminal completion in
 * the window -- scored (served) or expired. Shed and shutdown requests
 * were never accepted for scoring and say nothing about how well the
 * serve lanes met deadlines. A window with no completed-accepted
 * traffic reports attainment 0 with `noTraffic` set -- NEVER NaN -- so
 * the signal can be consumed blindly by controllers and CI gates
 * (`NaN > x` is false for every x, which would defeat both).
 */
struct AttainmentSample
{
    double attainment = 0.0;     //!< attained / accepted; 0 if no traffic
    bool noTraffic = false;      //!< window had no completed-accepted reqs
    std::uint64_t accepted = 0;  //!< completed-accepted reqs in the window
    std::uint64_t attained = 0;  //!< of those, scored within deadline
};

/** Windowed attainment between cumulative samples @p prev and @p cur
 *  (see AttainmentSample for the definition). */
AttainmentSample windowAttainment(const ServeStats &prev,
                                  const ServeStats &cur);

/**
 * Derive the cumulative completion counters the attainment window
 * needs from a metrics-registry scrape (serve.requests_served /
 * serve.deadline_ok / serve.requests_expired, which the serve engine
 * and batcher mirror at the same instants they count locally). This is
 * how an attached governor consumes the shared StatsSampler feed
 * instead of polling ServeEngine::stats() on a private thread.
 */
ServeStats serveStatsFromSnapshot(const obs::MetricsSnapshot &snap);

/**
 * Two-threshold hysteresis: engaged when the signal drops below
 * `engageBelow`, released only once it recovers to `releaseAbove` --
 * the dead band keeps the throttle from chattering when attainment
 * hovers at the threshold. No-traffic windows release (an idle serve
 * tier needs no protection).
 */
class HysteresisController
{
  public:
    /** @param engage_below engage when signal < this
     *  @param release_above release when signal >= this (>= engage) */
    HysteresisController(double engage_below, double release_above);

    /** Feed one window; @return the new engaged state. */
    bool update(const AttainmentSample &sample);

    bool engaged() const { return engaged_; }

  private:
    double engageBelow_;
    double releaseAbove_;
    bool engaged_ = false;
};

/**
 * Token-bucket pacer with an injected clock: one token per admitted
 * event, refilled at `rate` tokens/second up to `capacity`. Tokens may
 * go negative -- the debt converts to the wait the caller must serve
 * before proceeding, which paces a loop to `rate` events/second while
 * allowing a `capacity`-deep burst after idle periods.
 */
class TokenBucket
{
  public:
    /** @param rate tokens per second (> 0)
     *  @param capacity burst depth (>= 1 token) */
    TokenBucket(double rate, double capacity);

    /**
     * Consume one token at time @p now_seconds (monotonic, any epoch).
     * @return seconds the caller must pause to honor the rate (0 when
     *   a token was available).
     */
    double acquireDelaySeconds(double now_seconds);

    /** Refill to a full burst (a fresh, unengaged bucket). */
    void reset();

    /**
     * Empty the bucket and forget the refill epoch. Used on throttle
     * engagement: engaging means attainment is ALREADY suffering, so
     * the very next gated iteration pays a full pause instead of
     * spending a burst token -- an engagement shorter than one
     * training iteration would otherwise never throttle anything.
     */
    void drain();

  private:
    double rate_;
    double capacity_;
    double tokens_;
    double last_ = 0.0;
    bool primed_ = false; //!< first acquire sets the refill epoch
};

/** IsolationGovernor knobs. */
struct GovernorOptions
{
    /** Attainment sampling window in microseconds. */
    std::uint64_t windowUs = 5000;

    /** Engage the throttle when window attainment < this. */
    double engageBelow = 0.90;

    /** Release it once window attainment >= this. */
    double releaseAbove = 0.97;

    /** Trainer pace while engaged (iterations per second). */
    double throttledItersPerSec = 200.0;

    /** Token-bucket burst depth (iterations). */
    double burstIters = 1.0;

    /**
     * Spawn the sampling thread in the constructor (default). Unit
     * tests pass false and drive sampleOnce() by hand.
     */
    bool startSampler = true;
};

/** Governor decision counters (lazydp_serve reports these). */
struct GovernorStats
{
    std::uint64_t windows = 0;          //!< attainment windows sampled
    std::uint64_t noTrafficWindows = 0; //!< of those, empty (flagged, not NaN)
    std::uint64_t engagements = 0;      //!< off->on throttle transitions
    std::uint64_t gatePauses = 0;       //!< gate calls that actually slept
    double pausedSeconds = 0.0;         //!< total trainer pause injected
    double lastAttainment = 0.0;        //!< most recent window's attainment
    bool engaged = false;               //!< throttle currently engaged
};

/**
 * The feedback controller: samples a ServeStats source on its own
 * thread, maintains the hysteresis state, and exposes a gate() closure
 * for TrainOptions::iterationGate that pauses the trainer while
 * engaged. Thread-safe: the sampler thread, the training thread (gate)
 * and stats() readers may all run concurrently.
 */
class IsolationGovernor
{
  public:
    /**
     * @param sampler returns the engine's CUMULATIVE ServeStats; called
     *   once per window from the sampling thread (typically
     *   `[&engine] { return engine.stats(); }`)
     * @param options thresholds / pacing / window length
     */
    IsolationGovernor(std::function<ServeStats()> sampler,
                      const GovernorOptions &options);

    /** Stops the sampling thread (see stop()). */
    ~IsolationGovernor();

    IsolationGovernor(const IsolationGovernor &) = delete;
    IsolationGovernor &operator=(const IsolationGovernor &) = delete;

    /**
     * The between-iterations hook to install as
     * TrainOptions::iterationGate. Near-free while the throttle is
     * disengaged (one relaxed atomic load); while engaged, sleeps per
     * the token bucket. The closure must not outlive the governor.
     */
    std::function<void()> gate();

    /** Stop sampling and release the trainer. Idempotent; the dtor
     *  calls it. A gate stuck in a pause finishes that pause. */
    void stop();

    /** Pull one sample and update the controller (the sampler thread's
     *  body; public so unit tests can drive windows by hand). */
    void sampleOnce();

    /** Feed one CUMULATIVE sample directly: forms the next attainment
     *  window against the previous sample and updates the hysteresis
     *  state. sampleOnce() and the attached-observer path both land
     *  here. */
    void updateWith(const ServeStats &cur);

    /**
     * Subscribe this governor to @p sampler 's scrape feed: every
     * scrape becomes one attainment window (via
     * serveStatsFromSnapshot), replacing the private sampling thread
     * -- construct with GovernorOptions::startSampler = false when
     * attaching. The governor must be stop()ped (or outlive) the
     * sampler, since scrapes call back into it.
     */
    void attachTo(obs::StatsSampler &sampler);

    /** @return a consistent copy of the decision counters. */
    GovernorStats stats() const;

  private:
    void samplerLoop();
    void runGate();

    std::function<ServeStats()> sampler_;
    GovernorOptions options_;

    /** Fast-path flag the gate reads without taking mu_. */
    std::atomic<bool> engaged_{false};
    std::atomic<bool> stopping_{false};

    mutable std::mutex mu_;
    HysteresisController controller_;
    TokenBucket bucket_;
    ServeStats prev_;
    GovernorStats stats_;

    std::mutex wakeMu_;
    std::condition_variable wake_;
    std::thread thread_;
};

/**
 * Apply the pinning half of a policy: loop workers, train-side lanes
 * (0 .. kServeLaneBase-1) and the CALLING thread (assumed to be the
 * one that will run the Trainer) onto @p train_cores; every current
 * and future serve lane (kServeLaneBase ..) onto @p serve_cores.
 * Either set may be empty (that side is left to the OS scheduler).
 */
void applyCorePinning(ThreadPool &pool, const CpuSet &train_cores,
                      const CpuSet &serve_cores);

/**
 * Default disjoint split of the host's CPUs [0, hardwareThreads()):
 * the LAST min(serve_threads, nproc/2) CPUs go to serving, the rest to
 * training. On a single-CPU host there is nothing to split -- both
 * sets come back empty and pinning degrades to a no-op (the throttle
 * still works; it is the only lever such a host has).
 */
struct CoreSplit
{
    CpuSet train;
    CpuSet serve;
};
CoreSplit defaultCoreSplit(std::size_t serve_threads);

} // namespace lazydp

#endif // LAZYDP_SERVE_ISOLATION_GOVERNOR_H
