/**
 * @file
 * Online DLRM inference engine: deadline-batched scoring against
 * versioned model snapshots, running concurrently with training.
 *
 * Dataflow per serve lane (worker):
 *
 *   RequestBatcher::pop  ->  micro-batch of 1..maxBatch queries
 *   ModelSnapshotStore::current  ->  one immutable snapshot
 *   assemble MiniBatch  ->  const DlrmModel::forward into the lane's
 *                           own DlrmWorkspace
 *   sigmoid(logit)  ->  PendingRequest::complete
 *
 * Consistency contract: the snapshot is grabbed ONCE per micro-batch,
 * so every query in a batch is scored by the same fully-published
 * version, and the response carries that version id. Because the
 * store's readers are wait-free and the forward path is const over a
 * caller-owned workspace, serving never blocks training and training
 * never tears a serve read (asserted under TSan by tests/serve).
 *
 * Threading: each worker is a dedicated ThreadPool lane
 * (ThreadPool::submitLane), the same primitive the Trainer uses for
 * its pipeline (lane 0) and replica workers (lanes 1..3). Serve lanes
 * default to lane 8 upward so train-and-serve shares one pool without
 * lane collisions; nested-dispatch flattening makes the forward run
 * serially within the lane, which is the right schedule for
 * latency-bound micro-batches.
 */

#ifndef LAZYDP_SERVE_SERVE_ENGINE_H
#define LAZYDP_SERVE_SERVE_ENGINE_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/thread_pool.h"
#include "data/minibatch.h"
#include "nn/dlrm.h"
#include "serve/request_batcher.h"
#include "serve/snapshot_store.h"

namespace lazydp {

/** ServeEngine configuration. */
struct ServeOptions
{
    /** Number of serve lanes (dedicated worker threads). */
    std::size_t threads = 1;

    /**
     * Micro-batching + admission policy (coalescing cap, batching
     * deadline, per-lane queue cap, shed policy). The batcher shards
     * one queue per serve lane (hash-routed push, work-stealing pop).
     */
    BatchPolicy batch;

    /**
     * First ThreadPool lane used for serving; lanes
     * [firstLane, firstLane + threads) must not collide with the
     * trainer's lanes (kPipelineLane, the replica lanes, and the
     * out-of-core warm lane kTierPrefetchLane). The shared lane map
     * lives in common/thread_pool.h.
     */
    std::size_t firstLane = ThreadPool::kServeLaneBase;
};

/** Cumulative serving counters (one engine lifetime). */
struct ServeStats
{
    std::uint64_t served = 0;     //!< requests completed by serve lanes
    std::uint64_t batches = 0;    //!< micro-batches executed

    /**
     * Of `served`, how many were scored within their SLO deadline
     * (taken just before their completions are delivered; requests
     * with no deadline always count). served - okDeadline is the
     * "scored but too late to be useful" tail -- together with the
     * expired count this is the sliding-window attainment signal the
     * isolation governor samples (serve/isolation_governor.h).
     */
    std::uint64_t okDeadline = 0;
    std::uint64_t minVersion = 0; //!< oldest snapshot version served (0 = none)
    std::uint64_t maxVersion = 0; //!< newest snapshot version served

    // Admission-control outcomes (from the batcher; these requests
    // completed WITHOUT reaching a forward pass and are not in
    // `served`).
    std::uint64_t shed = 0;     //!< rejected by admission control
    std::uint64_t expired = 0;  //!< past their SLO deadline before scoring
    std::uint64_t shutdown = 0; //!< rejected after stop()
    std::uint64_t stolenBatches = 0; //!< batches work-stolen across lanes

    /** @return mean micro-batch size (the batching policy's yield). */
    double
    meanBatch() const
    {
        return batches == 0
                   ? 0.0
                   : static_cast<double>(served) /
                         static_cast<double>(batches);
    }
};

/** Deadline-batched inference engine over a snapshot store. */
class ServeEngine
{
  public:
    /**
     * Start the serve lanes. The store may be empty at construction;
     * lanes serving before the first publish spin-sleep until it
     * arrives OR until stop(), so a train-and-serve startup has no
     * ordering requirement between the first publish and the first
     * request, and shutdown never deadlocks on a store that never
     * published (such requests complete with Status::Shutdown and
     * ServeResult::version 0, the "never scored" marker).
     *
     * @param store snapshot exchange (not owned; written by trainer)
     * @param config model shape queries must match
     * @param pool shared thread pool providing the serve lanes
     * @param options lanes / batching policy
     */
    ServeEngine(const ModelSnapshotStore &store, const ModelConfig &config,
                ThreadPool &pool, const ServeOptions &options);

    /** Stops and drains (see stop()). */
    ~ServeEngine();

    ServeEngine(const ServeEngine &) = delete;
    ServeEngine &operator=(const ServeEngine &) = delete;

    /**
     * Enqueue one query for scoring.
     *
     * ALWAYS returns a request handle whose wait() returns: if the
     * query is shed by admission control or rejected because the
     * engine stopped, the handle is already completed with
     * Status::Shed / Status::Shutdown -- there is no silent-drop path
     * for a client to block on.
     *
     * @param query one example; dense.size() must equal numDense and
     *        indices.size() must equal numTables * pooling
     * @param slo deadline + shed priority class of this request
     * @return handle to wait on (never nullptr)
     */
    PendingRequestPtr submit(ServeQuery query, SloClass slo = {});

    /**
     * Stop accepting new queries, drain everything already queued,
     * and join the serve lanes. Idempotent.
     */
    void stop();

    /** @return a consistent copy of the cumulative counters. */
    ServeStats stats() const;

    const ServeOptions &options() const { return options_; }
    const ModelConfig &config() const { return config_; }

  private:
    /** One serve lane: pop own shard -> snapshot -> forward -> complete. */
    void workerLoop(std::size_t lane);

    const ModelSnapshotStore &store_;
    ModelConfig config_;
    ServeOptions options_;
    RequestBatcher batcher_;
    std::vector<TaskHandle> workers_;
    /**
     * Single stop flag: exchange(true) gives stop() its idempotence
     * check, and the wait-for-first-publish spin observes it.
     */
    std::atomic<bool> stopping_{false};

    mutable std::mutex statsMu_;
    ServeStats stats_;
};

} // namespace lazydp

#endif // LAZYDP_SERVE_SERVE_ENGINE_H
