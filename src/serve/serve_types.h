/**
 * @file
 * Request/response types shared by the batcher, the serve engine and
 * the load generator.
 *
 * One ServeQuery is one user's recommendation request: a dense feature
 * vector plus `pooling` embedding-row ids per table -- exactly one
 * DLRM example. The serving tier coalesces many of these into
 * micro-batches (serve/request_batcher.h) and scores them against an
 * immutable model snapshot (serve/snapshot_store.h).
 */

#ifndef LAZYDP_SERVE_SERVE_TYPES_H
#define LAZYDP_SERVE_SERVE_TYPES_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace lazydp {

/** One single-user inference query (one DLRM example). */
struct ServeQuery
{
    /** Dense features, length numDense. */
    std::vector<float> dense;

    /**
     * Sparse row ids, length numTables * pooling, layout
     * [table][slot]: the ids of table t occupy
     * indices[t * pooling .. (t + 1) * pooling).
     */
    std::vector<std::uint32_t> indices;
};

/**
 * Service-level objective class of a request. The deadline is the
 * latency budget the client considers useful (a response later than
 * this is wasted work -- the serving tier EXPIRES such requests
 * instead of scoring them); the priority orders shedding under
 * admission-control pressure: lower-priority requests are shed first.
 */
struct SloClass
{
    /** Latency budget in microseconds; 0 = no deadline (never expires). */
    std::uint64_t deadlineUs = 0;

    /** Shed order under pressure: LOWER sheds first. */
    std::uint32_t priority = 1;
};

/** Completed scoring result. */
struct ServeResult
{
    /**
     * How the request's life ended. Every accepted request completes
     * with EXACTLY one of these -- there is no silent-drop path, so a
     * blocked client's wait() always returns.
     */
    enum class Status : std::uint8_t
    {
        Ok = 0,   //!< scored against a snapshot; `score` is valid
        Shed,     //!< rejected by admission control (queue over cap)
        Expired,  //!< past its SloClass deadline before scoring
        Shutdown, //!< engine stopped before it could be accepted/scored
    };

    float score = 0.0f;          //!< sigmoid(logit): predicted CTR

    /**
     * Snapshot version that scored it (>= 1), or 0 when the request
     * never reached a forward pass (status != Ok, or the engine shut
     * down before any snapshot was ever published).
     */
    std::uint64_t version = 0;
    std::uint64_t iteration = 0; //!< training iteration of that version
    std::uint32_t batchSize = 0; //!< micro-batch size it rode in
    Status status = Status::Ok;  //!< lifecycle outcome (see above)
};

/** Short lowercase name of @p s ("ok" / "shed" / ...). */
inline const char *
serveStatusName(ServeResult::Status s)
{
    switch (s) {
    case ServeResult::Status::Ok: return "ok";
    case ServeResult::Status::Shed: return "shed";
    case ServeResult::Status::Expired: return "expired";
    case ServeResult::Status::Shutdown: return "shutdown";
    }
    return "?";
}

/**
 * In-flight request: query + completion rendezvous + timing. Shared
 * (via shared_ptr) between the issuing client thread and the serve
 * lane that completes it.
 */
class PendingRequest
{
  public:
    using Clock = std::chrono::steady_clock;

    ServeQuery query;

    /** SLO class (set by the issuer BEFORE push; push reads it). */
    SloClass slo;

    /** Set by the issuer (RequestBatcher::push stamps it). */
    Clock::time_point enqueuedAt{};

    /**
     * Absolute expiry instant (RequestBatcher::push stamps it from
     * slo.deadlineUs; time_point::max() when the class has no
     * deadline). A request past this is completed Expired instead of
     * scored.
     */
    Clock::time_point deadlineAt = Clock::time_point::max();

    /** Complete with @p r and wake the waiter (serve-lane side). */
    void
    complete(const ServeResult &r)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            result_ = r;
            completedAt_ = Clock::now();
            done_ = true;
        }
        cv_.notify_all();
    }

    /** Block until complete() ran; @return the result (client side). */
    const ServeResult &
    wait()
    {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return done_; });
        return result_;
    }

    /** @return true once complete() ran (non-blocking). */
    bool
    done() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return done_;
    }

    /**
     * End-to-end seconds from enqueue to completion. Valid only after
     * wait() / done() observed completion.
     */
    double
    latencySeconds() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return std::chrono::duration<double>(completedAt_ - enqueuedAt)
            .count();
    }

    /** @return completion timestamp (valid after completion). */
    Clock::time_point
    completedAt() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return completedAt_;
    }

  private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    bool done_ = false;
    ServeResult result_;
    Clock::time_point completedAt_{};
};

using PendingRequestPtr = std::shared_ptr<PendingRequest>;

} // namespace lazydp

#endif // LAZYDP_SERVE_SERVE_TYPES_H
