#include "serve/snapshot_store.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/macros.h"
#include "common/timer.h"
#include "train/dirty_tracker.h"

namespace lazydp {

// --- SnapshotPool ------------------------------------------------------

void
SnapshotPool::configure(std::size_t max_snapshots, std::size_t max_pages)
{
    std::lock_guard<std::mutex> lock(mu_);
    maxSnapshots_ = max_snapshots;
    maxPages_ = max_pages;
}

std::unique_ptr<ModelSnapshot>
SnapshotPool::acquireSnapshot()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (snapshots_.empty())
        return nullptr;
    auto s = std::move(snapshots_.back());
    snapshots_.pop_back();
    ++snapshotsRecycled_;
    return s;
}

void
SnapshotPool::retireSnapshot(std::unique_ptr<ModelSnapshot> s)
{
    // Unbind page handles BEFORE taking the pool mutex: dropping the
    // last reference to a page re-enters retirePage, which locks mu_
    // itself (std::mutex is non-recursive). Also keeps a pooled shell
    // from pinning pages newer snapshots still share.
    for (auto &tbl : s->model.tables())
        if (tbl.paged())
            tbl.unbindPages();
    std::lock_guard<std::mutex> lock(mu_);
    if (snapshots_.size() < maxSnapshots_)
        snapshots_.push_back(std::move(s));
    // else: unique_ptr frees the shell here, beyond the cap.
}

std::unique_ptr<TablePage>
SnapshotPool::acquirePage(std::size_t floats, bool mmapped)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = pages_.size(); i-- > 0;) {
        if (pages_[i]->floats() >= floats &&
            pages_[i]->mmapped() == mmapped) {
            auto p = std::move(pages_[i]);
            pages_[i] = std::move(pages_.back());
            pages_.pop_back();
            ++pagesRecycled_;
            p->unseal(); // recycled pages may come back sealed
            return p;
        }
    }
    return nullptr;
}

void
SnapshotPool::retirePage(std::unique_ptr<TablePage> p)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (pages_.size() < maxPages_)
        pages_.push_back(std::move(p));
}

std::uint64_t
SnapshotPool::snapshotsRecycled() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return snapshotsRecycled_;
}

std::uint64_t
SnapshotPool::pagesRecycled() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return pagesRecycled_;
}

// --- ModelSnapshotStore ------------------------------------------------

namespace {

/** @return true when @p shell can be refilled from @p src . */
bool
shellMatches(const ModelSnapshot &shell, const DlrmModel &src)
{
    const auto &st = shell.model.tables();
    const auto &mt = src.tables();
    if (st.size() != mt.size())
        return false;
    for (std::size_t t = 0; t < st.size(); ++t) {
        if (st[t].rows() != mt[t].rows() || st[t].dim() != mt[t].dim())
            return false;
    }
    return shell.model.mlpParamCount() == src.mlpParamCount();
}

} // namespace

ModelSnapshotStore::ModelSnapshotStore(const SnapshotOptions &options)
    : options_(options), pool_(std::make_shared<SnapshotPool>())
{
    LAZYDP_ASSERT(options_.pageRows > 0, "pageRows must be positive");
    pool_->configure(options_.maxFreeSnapshots, options_.maxFreePages);
}

std::unique_ptr<ModelSnapshot>
ModelSnapshotStore::acquireShell(const DlrmModel &src)
{
    std::unique_ptr<ModelSnapshot> shell = pool_->acquireSnapshot();
    if (shell != nullptr && !shellMatches(*shell, src))
        shell.reset(); // store reused across model shapes: reallocate
    if (shell == nullptr) {
        shell = options_.mode == SnapshotMode::Delta
                    ? std::make_unique<ModelSnapshot>(
                          src.config(), DlrmModel::PagedTables{})
                    : std::make_unique<ModelSnapshot>(src.config());
    }
    return shell;
}

std::shared_ptr<const TablePage>
ModelSnapshotStore::wrapPage(std::unique_ptr<TablePage> page)
{
    return std::shared_ptr<const TablePage>(
        page.release(), [pool = pool_](const TablePage *p) {
            pool->retirePage(
                std::unique_ptr<TablePage>(const_cast<TablePage *>(p)));
        });
}

void
ModelSnapshotStore::buildDeltaTables(const DlrmModel &src,
                                     ModelSnapshot &shell,
                                     const ModelSnapshot *prev,
                                     const DirtyRowTracker *dirty,
                                     PublishReceipt &receipt)
{
    const std::size_t page_rows = options_.pageRows;
    // Sharing is only sound against a previous DELTA snapshot of the
    // same shape and page geometry; anything else degrades to a full
    // page copy (correct, just not cheap).
    const bool can_share = prev != nullptr &&
                           prev->mode == SnapshotMode::Delta &&
                           shellMatches(*prev, src) &&
                           !prev->model.tables().empty() &&
                           prev->model.tables()[0].pageRows() ==
                               page_rows;
    if (dirty != nullptr) {
        LAZYDP_ASSERT(dirty->pageRows() == page_rows,
                      "tracker page size != store page size");
        LAZYDP_ASSERT(dirty->numTables() == src.tables().size(),
                      "tracker table count != model");
    }

    for (std::size_t t = 0; t < src.tables().size(); ++t) {
        const EmbeddingTable &st = src.tables()[t];
        const std::uint64_t rows = st.rows();
        const std::size_t dim = st.dim();
        const auto npages = static_cast<std::size_t>(
            (rows + page_rows - 1) / page_rows);
        const std::vector<std::shared_ptr<const TablePage>>
            *prev_pages = can_share ? &prev->model.tables()[t].pages()
                                    : nullptr;

        std::vector<std::shared_ptr<const TablePage>> pages;
        pages.reserve(npages);
        for (std::size_t p = 0; p < npages; ++p) {
            const bool copy = prev_pages == nullptr ||
                              dirty == nullptr || dirty->pageDirty(t, p);
            if (!copy) {
                pages.push_back((*prev_pages)[p]);
                ++receipt.pagesShared;
                continue;
            }
            const std::uint64_t lo =
                static_cast<std::uint64_t>(p) * page_rows;
            const std::size_t span = static_cast<std::size_t>(
                std::min<std::uint64_t>(page_rows, rows - lo));
            std::unique_ptr<TablePage> page =
                pool_->acquirePage(page_rows * dim, options_.sealPages);
            if (page == nullptr)
                page = std::make_unique<TablePage>(page_rows * dim,
                                                   options_.sealPages);
            // copyRowsOut instead of a weights() memcpy: tiered source
            // tables have no contiguous buffer (rows come from the hot
            // frame or the cold mapping page by page); for dense
            // sources it degenerates to the same single memcpy.
            st.copyRowsOut(lo, span, page->data());
            if (options_.sealPages)
                page->seal();
            ++receipt.pagesCopied;
            receipt.rowsCopied += span;
            pages.push_back(wrapPage(std::move(page)));
        }
        shell.model.tables()[t].bindPages(page_rows, std::move(pages));
    }
}

PublishReceipt
ModelSnapshotStore::publish(const DlrmModel &src, std::uint64_t iteration,
                            DirtyRowTracker *dirty)
{
    WallTimer wall;
    PublishReceipt receipt;
    const bool delta = options_.mode == SnapshotMode::Delta;

    // The writer's own previous publish: the sharing base. Loading it
    // here (single writer) is cheap and keeps the store free of any
    // second retention path for old versions.
    std::shared_ptr<const ModelSnapshot> prev;
    if (delta)
        prev = current_.load();

    std::unique_ptr<ModelSnapshot> shell = acquireShell(src);
    if (delta) {
        shell->model.copyMlpWeightsFrom(src);
        buildDeltaTables(src, *shell, prev.get(), dirty, receipt);
        // The marks were consumed into this version; from here on the
        // tracker accumulates dirt against it.
        if (dirty != nullptr)
            dirty->reset();
    } else {
        shell->model.copyWeightsFrom(src);
        for (const auto &t : src.tables())
            receipt.rowsCopied += t.rows();
    }
    shell->iteration = iteration;
    shell->version = version_.load(std::memory_order_relaxed) + 1;

    // The copy above completed before this swap, so every snapshot
    // reachable through current() is fully published -- readers can
    // never observe a torn state. The custom deleter recycles the
    // shell through the pool once the last reader releases it.
    std::shared_ptr<const ModelSnapshot> snap(
        shell.release(), [pool = pool_](const ModelSnapshot *s) {
            pool->retireSnapshot(std::unique_ptr<ModelSnapshot>(
                const_cast<ModelSnapshot *>(s)));
        });
    current_.store(snap);
    version_.store(snap->version, std::memory_order_release);

    receipt.seconds = wall.seconds();
    ++totals_.publishes;
    totals_.seconds += receipt.seconds;
    totals_.rowsCopied += receipt.rowsCopied;
    totals_.pagesCopied += receipt.pagesCopied;
    totals_.pagesShared += receipt.pagesShared;
    return receipt;
}

PublishTotals
ModelSnapshotStore::totals() const
{
    PublishTotals t = totals_;
    t.snapshotsRecycled = pool_->snapshotsRecycled();
    t.pagesRecycled = pool_->pagesRecycled();
    return t;
}

} // namespace lazydp
