#include "serve/snapshot_store.h"

#include <utility>

namespace lazydp {

void
ModelSnapshotStore::publish(const DlrmModel &src, std::uint64_t iteration)
{
    // Always a fresh buffer. A use_count()==1 recycling scheme was
    // tried and is SUBTLY WRONG: use_count() is a relaxed read, so
    // observing 1 does not happen-after the last reader's final loads
    // from the buffer -- the writer could overwrite memory a reader is
    // still reading (caught by TSan). Retired snapshots are instead
    // reclaimed by the last reader's shared_ptr release, the classic
    // RCU grace period; publish happens once per N training
    // iterations, so the allocation is off every hot path.
    auto snap = std::make_shared<ModelSnapshot>(src.config());

    snap->model.copyWeightsFrom(src);
    snap->iteration = iteration;
    snap->version = version_.load(std::memory_order_relaxed) + 1;

    // The copy above completed before this swap, so every snapshot
    // reachable through current() is fully published -- readers can
    // never observe a torn state.
    current_.store(snap);
    version_.store(snap->version, std::memory_order_release);
}

} // namespace lazydp
