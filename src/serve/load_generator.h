/**
 * @file
 * Open/closed-loop load generation + tail-latency / SLO-attainment
 * measurement for the serving tier, with scripted traffic scenarios.
 *
 * Two canonical load models (the SPEC/TailBench distinction the HPC
 * serving-characterization literature insists on):
 *
 *  - CLOSED loop (qps = 0): `concurrency` client threads each keep
 *    exactly one request in flight (issue, wait, repeat). Throughput
 *    is demand-limited by the service rate; latency excludes queueing
 *    that an overloaded open system would see. Latency per request is
 *    completion - enqueue.
 *  - OPEN loop (qps > 0): one dispatcher issues requests on a fixed
 *    schedule regardless of completions, like independent users
 *    arriving. Every request's scheduled arrival is computed from the
 *    ABSOLUTE start time (arrivalOffsets(); never from accumulated
 *    sleep wake-ups, which drift under load), and latency is measured
 *    from that scheduled time -- the standard guard against
 *    coordinated omission: if the system falls behind, the backlog
 *    correctly counts against tail latency AND against attainment.
 *
 * ## Scenarios
 *
 * Production traffic is not a constant rate. The open-loop schedule
 * can follow scripted profiles:
 *
 *  - Steady:     constant qps (the baseline);
 *  - Diurnal:    a day-curve ramp, rate swinging 0.25x..1x qps over
 *                the run (sin^2 profile);
 *  - FlashCrowd: steady qps with a burst window (middle fifth of the
 *                run) at flashMultiplier x qps -- the overload regime
 *                admission control exists for;
 *  - SkewDrift:  steady rate, but the HOT ROWS drift: query row ids
 *                rotate through half the table over the run, so a
 *                cache/hot-tier tuned to minute-0 traffic decays;
 *  - MixedClass: steady rate, two SLO classes interleaved (see
 *                lowFraction / lowSlo) -- priority shedding's regime.
 *
 * Class mixing (lowFraction) and skew drift compose with any arrival
 * profile; the scenario enum just names the canonical bundles.
 *
 * Queries are deterministic functions of (seed, request id): dense
 * features uniform in [-1, 1), table rows drawn through the same
 * AccessGenerator families training data uses (uniform / hot-cold /
 * Zipf), so a skewed serving workload hammers the same hot rows the
 * paper's skewed training datasets do.
 */

#ifndef LAZYDP_SERVE_LOAD_GENERATOR_H
#define LAZYDP_SERVE_LOAD_GENERATOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "data/access_generator.h"
#include "nn/model_config.h"
#include "serve/serve_engine.h"

namespace lazydp {

/** Scripted open-loop traffic profile (see file comment). */
enum class Scenario : std::uint8_t
{
    Steady = 0,
    Diurnal,
    FlashCrowd,
    SkewDrift,
    MixedClass,
};

/** Parse "steady|diurnal|flash|drift|mixed" (fatal on junk). */
Scenario scenarioFromString(const std::string &name);

/** Inverse of scenarioFromString. */
const char *scenarioName(Scenario s);

/** Load-generation knobs. */
struct LoadOptions
{
    /** Total requests to issue. */
    std::uint64_t requests = 1000;

    /**
     * Open-loop aggregate arrival rate in queries/second; 0 selects
     * the closed loop. Scenario profiles modulate around this rate.
     */
    double qps = 0.0;

    /** Closed loop: number of one-in-flight client threads. */
    std::size_t concurrency = 4;

    /** Query-generation seed (queries are pure in (seed, id)). */
    std::uint64_t seed = 1;

    /** Table-access skew of the generated queries. */
    AccessConfig access;

    /** Traffic profile (open loop; Mixed/Drift also shape closed). */
    Scenario scenario = Scenario::Steady;

    /** SLO class of every request (deadlineUs 0 = no deadline). */
    SloClass slo{};

    /**
     * Low-priority class for two-class traffic; lowFraction of the
     * requests (deterministically hashed per id) carry it. 0 disables
     * mixing -- except under Scenario::MixedClass, which defaults it
     * to 0.5.
     */
    SloClass lowSlo{0, 0};
    double lowFraction = 0.0;

    /** FlashCrowd: burst rate = flashMultiplier * qps. */
    double flashMultiplier = 8.0;

    /**
     * Keep every request's predicted score in LoadReport::scores
     * (indexed by request id). With a fixed model version the scores
     * are a pure function of (seed, id), which is what the bit-identity
     * smokes compare across snapshot-store modes.
     */
    bool collectScores = false;
};

/** Measured outcome of one LoadGenerator::run. */
struct LoadReport
{
    /** Per-SLO-class outcome breakdown. */
    struct ClassStats
    {
        std::uint32_t priority = 0;
        std::uint64_t deadlineUs = 0;
        std::uint64_t issued = 0;
        std::uint64_t ok = 0;       //!< completed with a score
        std::uint64_t shed = 0;     //!< rejected by admission control
        std::uint64_t expired = 0;  //!< past deadline before scoring
        std::uint64_t shutdown = 0; //!< engine stopped first
        std::uint64_t attained = 0; //!< ok AND under the class deadline

        /** @return completed-accepted requests of this class (the
         *  attainment denominator -- see LoadReport::attainment). */
        std::uint64_t accepted() const { return ok + expired; }

        /**
         * @return SLO attainment in [0, 1] over the class's
         *   completed-accepted requests; 0 when it had none (see
         *   LoadReport::noTraffic -- never NaN).
         */
        double
        attainment() const
        {
            return accepted() == 0
                       ? 0.0
                       : static_cast<double>(attained) /
                             static_cast<double>(accepted());
        }
    };

    std::uint64_t completed = 0; //!< requests that completed (ANY status)
    double wallSeconds = 0.0;    //!< first issue to last completion

    // Status breakdown; ok + shed + expired + shutdown == completed.
    std::uint64_t ok = 0;
    std::uint64_t shed = 0;
    std::uint64_t expired = 0;
    std::uint64_t shutdown = 0;

    /**
     * Requests that completed Ok WITHIN their class deadline
     * (coordinated-omission-safe: open-loop latency counts from the
     * scheduled arrival; a class without a deadline attains on Ok).
     */
    std::uint64_t attained = 0;

    /**
     * Requests the admission controller accepted AND that reached a
     * terminal completion: scored (ok) or deadline-expired. This is
     * the attainment denominator -- shed and shutdown requests never
     * competed for a deadline, so they are reported through their own
     * counts (and the shed rate), not folded into attainment.
     */
    std::uint64_t accepted() const { return ok + expired; }

    /**
     * @return true when NO request was completed-accepted (total
     *   overload: everything shed, or the engine stopped first).
     *   attainment() reports 0 for such a window -- never NaN, which
     *   would silently defeat numeric gates (`NaN > x` is false for
     *   every x) and poison the isolation governor's feedback signal.
     */
    bool noTraffic() const { return accepted() == 0; }

    /** @return SLO attainment in [0, 1] over completed-accepted
     *  requests (0 when noTraffic()). */
    double
    attainment() const
    {
        return noTraffic() ? 0.0
                           : static_cast<double>(attained) /
                                 static_cast<double>(accepted());
    }

    /** Per-class breakdown (one entry per distinct priority issued). */
    std::vector<ClassStats> classes;

    /**
     * Latency percentiles in SECONDS over the Ok requests only
     * (closed loop: completion - enqueue; open loop: completion -
     * scheduled arrival). Shed/expired requests complete in
     * microseconds and would fraudulently DEFLATE the tail if
     * included; they are reported through the counts + attainment
     * instead.
     */
    stats::Percentiles latency;

    std::uint64_t minVersion = 0; //!< oldest snapshot version observed
    std::uint64_t maxVersion = 0; //!< newest snapshot version observed
    double meanBatch = 0.0;       //!< mean micro-batch size observed

    /**
     * Per-request scores indexed by request id (empty unless
     * LoadOptions::collectScores).
     */
    std::vector<float> scores;

    /** @return achieved throughput in queries/second (ANY status). */
    double
    qps() const
    {
        return wallSeconds <= 0.0
                   ? 0.0
                   : static_cast<double>(completed) / wallSeconds;
    }
};

/** Drives a ServeEngine with synthetic single-user queries. */
class LoadGenerator
{
  public:
    /**
     * @param engine serving engine under load (not owned)
     * @param config model shape (query dimensions)
     * @param options load model + scenario + skew
     */
    LoadGenerator(ServeEngine &engine, const ModelConfig &config,
                  const LoadOptions &options);

    /**
     * Issue options.requests queries, wait for all completions, and
     * summarize. Blocking; spawns its own client threads (clients
     * simulate external users, so they deliberately do NOT run on the
     * serving pool's lanes).
     */
    LoadReport run();

    /** @return the deterministic query for @p id (tests replay these). */
    ServeQuery makeQuery(std::uint64_t id) const;

    /** @return the SLO class request @p id is issued with. */
    SloClass sloFor(std::uint64_t id) const;

    /**
     * Scheduled arrival offsets in seconds from the run start, one
     * per request id, following the scenario's rate profile. Every
     * offset is an absolute position on the timeline (Steady: exactly
     * id / qps) -- the dispatcher sleeps until start + offset[id], so
     * truncation or sleep-overshoot on one arrival never leaks into
     * the next (no cumulative drift, the coordinated-omission
     * contract's precondition). Pure in options; exposed for tests.
     */
    static std::vector<double> arrivalOffsets(const LoadOptions &options);

  private:
    LoadReport runClosed();
    LoadReport runOpen();

    /** Deterministic low-class membership of request @p id. */
    bool isLow(std::uint64_t id) const;

    ServeEngine &engine_;
    ModelConfig config_;
    LoadOptions options_;
    double lowFraction_ = 0.0; //!< effective (scenario-defaulted)
    std::vector<AccessGenerator> generators_; // one per table
};

} // namespace lazydp

#endif // LAZYDP_SERVE_LOAD_GENERATOR_H
